#!/bin/sh
# benchjson.sh — run a set of benchmarks and render the results as a JSON
# map keyed by benchmark name (GOMAXPROCS suffix stripped), so perf numbers
# can be committed alongside the code and diffed across PRs.
#
# Usage:
#   scripts/benchjson.sh [BENCH_REGEX] [OUT_FILE] [PKG]
#
# Schema (documented in DESIGN.md §8):
#   {
#     "<BenchmarkName>": { "ns_per_op": <number>, "allocs_per_op": <number> },
#     ...
#   }
#
# Multiple -count runs of the same benchmark are averaged. Exits nonzero if
# the benchmarks fail.
set -u

GO=${GO:-go}
BENCH=${1:-'BenchmarkAnneal'}
OUT=${2:-BENCH.json}
PKG=${3:-.}
COUNT=${COUNT:-1}

tmp=$(mktemp "${TMPDIR:-/tmp}/benchjson.XXXXXX") || exit 1
trap 'rm -f "$tmp"' EXIT INT TERM

# -p 1: run package test binaries one at a time — the annealing benchmarks
# saturate every core, so concurrent packages contend and skew ns/op.
$GO test -p 1 -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" "$PKG" >"$tmp" 2>&1
status=$?
if [ $status -ne 0 ]; then
    echo "benchjson: benchmarks failed:" >&2
    tail -20 "$tmp" >&2
    exit $status
fi

awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op")     { ns[name] += $(i-1); nc[name]++ }
            if ($(i) == "allocs/op") { al[name] += $(i-1); ac[name]++ }
        }
        if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
    }
    END {
        printf "{\n"
        for (i = 1; i <= n; i++) {
            name = order[i]
            mns = (nc[name] ? ns[name] / nc[name] : 0)
            mal = (ac[name] ? al[name] / ac[name] : 0)
            printf "  \"%s\": { \"ns_per_op\": %.0f, \"allocs_per_op\": %.1f }%s\n", \
                name, mns, mal, (i < n ? "," : "")
        }
        printf "}\n"
    }
' "$tmp" >"$OUT"

echo "benchjson: wrote $OUT"
cat "$OUT"
