#!/bin/sh
# benchcompare.sh — compare benchmark results between a baseline git ref and
# the working tree.
#
# Usage:
#   scripts/benchcompare.sh [BASE_REF] [BENCH_REGEX]
#
# BASE_REF defaults to HEAD~1; BENCH_REGEX defaults to the hot-path
# benchmarks shared across revisions. The baseline is built from a temporary
# git worktree so the working tree is never touched. Results go to
# bench-old.txt / bench-new.txt in the current directory.
#
# If a `benchstat` binary is on PATH it renders the statistical comparison;
# otherwise a plain old/new/delta table is printed per benchmark. The script
# is a report, not a gate: it always exits 0 unless the benchmarks
# themselves fail to run.
set -u

GO=${GO:-go}
BASE_REF=${1:-HEAD~1}
BENCH=${2:-'Energy|ProvisionTopology|ProvisionEffective|GreedyAlloc|Greedy|AnnealISP100|AnnealISP200|ClaimRepair|UpdatePlan|SimSlot'}
COUNT=${COUNT:-6}
PKGS=${PKGS:-'./...'}
OLD_OUT=${OLD_OUT:-bench-old.txt}
NEW_OUT=${NEW_OUT:-bench-new.txt}

repo_root=$(git rev-parse --show-toplevel) || exit 1
cd "$repo_root" || exit 1

worktree=$(mktemp -d "${TMPDIR:-/tmp}/benchbase.XXXXXX")
cleanup() {
    git worktree remove --force "$worktree" >/dev/null 2>&1
    rm -rf "$worktree"
}
trap cleanup EXIT INT TERM

echo "== baseline: $BASE_REF"
if ! git worktree add --detach "$worktree" "$BASE_REF" >/dev/null 2>&1; then
    echo "benchcompare: cannot create worktree for $BASE_REF" >&2
    exit 1
fi
( cd "$worktree" && $GO test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" $PKGS ) >"$OLD_OUT" 2>&1
old_status=$?

echo "== head: working tree"
$GO test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" $PKGS >"$NEW_OUT" 2>&1
new_status=$?

if [ $old_status -ne 0 ]; then
    echo "benchcompare: baseline benchmarks failed (see $OLD_OUT); continuing with HEAD only" >&2
fi
if [ $new_status -ne 0 ]; then
    echo "benchcompare: HEAD benchmarks failed" >&2
    tail -20 "$NEW_OUT" >&2
    exit 1
fi

if command -v benchstat >/dev/null 2>&1; then
    benchstat "$OLD_OUT" "$NEW_OUT"
    exit 0
fi

# Fallback: geometric-mean-free old/new/delta table from the raw `go test`
# output (benchstat is not vendored; install golang.org/x/perf/cmd/benchstat
# for confidence intervals).
echo "(benchstat not found; showing mean old/new/delta per benchmark)"
awk '
    FNR == 1 { file++ }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op")     { t[file, name] += $(i-1); tc[file, name]++ }
            if ($(i) == "B/op")      { b[file, name] += $(i-1); bc[file, name]++ }
            if ($(i) == "allocs/op") { a[file, name] += $(i-1); ac[file, name]++ }
        }
        names[name] = 1
    }
    END {
        printf "%-34s %14s %14s %9s   %12s %12s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta"
        for (n in names) {
            if (tc[1, n] == 0 || tc[2, n] == 0) continue
            ot = t[1, n] / tc[1, n]; nt = t[2, n] / tc[2, n]
            oa = (ac[1, n] ? a[1, n] / ac[1, n] : 0); na = (ac[2, n] ? a[2, n] / ac[2, n] : 0)
            dt = (ot > 0) ? (nt - ot) / ot * 100 : 0
            da = (oa > 0) ? (na - oa) / oa * 100 : 0
            printf "%-34s %14.0f %14.0f %+8.1f%%   %12.1f %12.1f %+8.1f%%\n", n, ot, nt, dt, oa, na, da
        }
    }
' "$OLD_OUT" "$NEW_OUT" | sort
exit 0
