package owan

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestBuildAllMains compiles every package in the module, including the
// cmd/* and examples/* main packages that `go test ./...` otherwise never
// touches (they have no test files). This catches example drift: an API
// change that breaks a demo now fails tier-1 instead of rotting silently.
func TestBuildAllMains(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}

	// The test runs with the repository root as its working directory
	// (this file lives in the root package). Guard against relocation.
	if _, err := os.Stat("go.mod"); err != nil {
		t.Fatalf("not running at the module root: %v", err)
	}

	// Every cmd/* and examples/* subdirectory must hold a buildable main;
	// enumerate them so an empty or renamed directory is also caught.
	var mains []string
	for _, glob := range []string{"cmd/*", "examples/*"} {
		dirs, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dirs {
			if fi, err := os.Stat(d); err == nil && fi.IsDir() {
				mains = append(mains, "./"+d)
			}
		}
	}
	if len(mains) < 10 {
		t.Fatalf("only %d cmd/example packages found (%v); expected the full demo set", len(mains), mains)
	}

	args := append([]string{"build", "./..."}, mains...)
	cmd := exec.Command(goBin, args...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build failed:\n%s", out)
	}
}
