// Command owan-sim runs a single simulation: one topology, one traffic
// engineering approach, one load point, and prints the summary metrics the
// paper reports (average and 95th-percentile completion time, makespan,
// and — for deadline workloads — the deadline-met percentages).
//
// Usage:
//
//	owan-sim -topo internet2 -approach owan -load 1.0
//	owan-sim -topo interdc -approach amoeba -load 1.0 -sigma 20
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"owan/internal/experiments"
	"owan/internal/metrics"
	"owan/internal/prof"
	"owan/internal/transfer"
	"owan/internal/workload"
)

func main() {
	var (
		topo     = flag.String("topo", "internet2", "topology: internet2|isp|interdc")
		approach = flag.String("approach", "owan", "approach: owan|maxflow|maxminfract|swan|tempus|amoeba|rate-only|rate-routing|greedy-separate")
		load     = flag.Float64("load", 1.0, "traffic load factor λ")
		sigma    = flag.Float64("sigma", 0, "deadline factor σ (0 disables deadlines)")
		seed     = flag.Int64("seed", 1, "workload/search seed")
		full     = flag.Bool("full", false, "paper-scale parameters")
		traceIn  = flag.String("trace", "", "replay transfer requests from a JSON trace file")
		traceOut = flag.String("save-trace", "", "write the generated workload to a JSON trace file")
		workers  = flag.Int("workers", 0, "annealing energy-evaluation goroutines (0 = serial)")
		batch    = flag.Int("batch", 0, "annealing candidate batch per temperature step (0 = workers; pin it when comparing -workers values — batch is part of the search semantics)")
		cache    = flag.Int("cache", 0, "annealing energy memoization cache entries (0 = off)")
		provc    = flag.Int("provcache", 0, "cross-slot provision cache entries (0 = default on, negative = off; same results, less wall-clock)")
		delta    = flag.Bool("delta", false, "incremental candidate evaluation (snapshot deltas; same results, less wall-clock)")
		replicas = flag.Int("replicas", 0, "parallel-tempering replica count (0 or 1 = single chain; part of the search semantics)")
		warm     = flag.Bool("warmstart", false, "seed each slot's cooling schedule from the previous slot (shorter schedules on low-drift slots)")
		pf       = prof.Register()
	)
	flag.Parse()
	stopProf, err := pf.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	sc := experiments.QuickScale()
	if *full {
		sc = experiments.FullScale()
	}
	sc.OwanWorkers = *workers
	sc.OwanBatch = *batch
	sc.OwanEnergyCache = *cache
	sc.OwanProvisionCache = *provc
	sc.OwanDeltaEval = *delta
	sc.OwanReplicas = *replicas
	sc.OwanWarmStart = *warm
	var reqs []transfer.Request
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		reqs = tr.Requests
	} else if *traceOut != "" {
		net, err := experiments.BuildTopology(experiments.TopoKind(*topo), sc, *seed)
		if err != nil {
			log.Fatal(err)
		}
		reqs, err = experiments.Workload(experiments.TopoKind(*topo), net, sc, *load, *sigma, *seed+100)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		desc := fmt.Sprintf("owan-sim -topo %s -load %g -sigma %g -seed %d", *topo, *load, *sigma, *seed)
		if err := workload.WriteTrace(f, &workload.Trace{Description: desc, Requests: reqs}); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %d requests to %s\n", len(reqs), *traceOut)
	}
	res, err := experiments.Run(experiments.RunSpec{
		Topo:           experiments.TopoKind(*topo),
		Approach:       *approach,
		Load:           *load,
		DeadlineFactor: *sigma,
		Seed:           *seed,
		Scale:          sc,
		Requests:       reqs,
	})
	if err != nil {
		log.Fatal(err)
	}

	ct := metrics.CompletionTimes(res.Transfers, experiments.SlotSeconds)
	done := len(res.Completed())
	fmt.Printf("approach            %s\n", res.Name)
	fmt.Printf("topology            %s (load %.2g, sigma %.2g, seed %d)\n", *topo, *load, *sigma, *seed)
	fmt.Printf("transfers           %d submitted, %d completed\n", len(res.Transfers), done)
	fmt.Printf("slots simulated     %d x %.0fs\n", res.Slots, experiments.SlotSeconds)
	fmt.Printf("avg completion      %.1f s\n", metrics.Mean(ct))
	fmt.Printf("p95 completion      %.1f s\n", metrics.Percentile(ct, 95))
	if math.IsInf(res.MakespanSeconds, 1) {
		fmt.Printf("makespan            (incomplete)\n")
	} else {
		fmt.Printf("makespan            %.1f s\n", res.MakespanSeconds)
	}
	if *sigma > 0 {
		d := metrics.Deadlines(res.Transfers, experiments.SlotSeconds)
		fmt.Printf("deadlines met       %.1f%% of transfers\n", d.TransfersMetPct)
		fmt.Printf("bytes by deadline   %.1f%%\n", d.BytesMetPct)
	}
	churn := 0
	for _, c := range res.Churn {
		churn += c
	}
	fmt.Printf("optical churn       %d circuit changes across run\n", churn)
	if done < len(res.Transfers) {
		fmt.Fprintln(os.Stderr, "warning: some transfers did not complete within the slot budget")
		stopProf() // deferred calls do not run across os.Exit
		os.Exit(1)
	}
}
