// Command owan-loadgen drives the controller's sharded admission
// pipeline with a fleet of synthetic clients over an in-memory
// transport, optionally degraded by faultnet (drops, delays, byte
// corruption, partitions), and audits the run for exactly-once
// admission: every acked submit durable, no idempotency token admitted
// twice. It reports admission throughput, p50/p99 submit latency, and
// overload-rejection counts, and can append a results row and gate CI.
//
// Usage:
//
//	owan-loadgen -clients 10000 -submits 1 -seed 1
//	owan-loadgen -clients 10000 -drop 0.05 -fault-frac 0.5 \
//	    -partition-frac 0.2 -partition-ms 200 -label degraded \
//	    -out results/loadgen.dat
//	owan-loadgen -clients 1000 -check -max-p99 30s   # CI smoke gate
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"owan/internal/faultnet"
	"owan/internal/loadgen"
)

func main() {
	var (
		clients  = flag.Int("clients", 1000, "fleet size (concurrent clients)")
		submits  = flag.Int("submits", 1, "transfers each client submits")
		seed     = flag.Int64("seed", 1, "seed for request sizes, retry jitter, and fault schedules")
		shards   = flag.Int("shards", 0, "admission shards (0 = controller default)")
		qdepth   = flag.Int("queue-depth", 0, "per-shard queue depth (0 = controller default)")
		maxcli   = flag.Int("max-clients", 0, "controller client cap (0 = unlimited)")
		tick     = flag.Duration("tick", 0, "run controller slot ticks at this interval during the load (0 = off)")
		slot     = flag.Float64("slot", 300, "modeled slot duration in seconds")
		rpcTO    = flag.Duration("rpc-timeout", 5*time.Second, "per-attempt client timeout")
		subDL    = flag.Duration("submit-deadline", 2*time.Minute, "per-submit overall patience before a client counts the submit lost")
		drop     = flag.Float64("drop", 0, "per-write drop probability for the degraded fraction")
		delay    = flag.Float64("delay", 0, "per-write delay probability for the degraded fraction")
		corrupt  = flag.Float64("corrupt", 0, "per-write corruption probability for the degraded fraction")
		ffrac    = flag.Float64("fault-frac", 0, "fraction of the fleet dialing through the fault injector")
		pfrac    = flag.Float64("partition-frac", 0, "fraction of the fleet severed by a partition")
		pafter   = flag.Duration("partition-after", 0, "partition onset after run start (0 = from the start)")
		pms      = flag.Duration("partition-ms", 200*time.Millisecond, "partition duration before healing")
		out      = flag.String("out", "", "append a results row to this .dat file")
		label    = flag.String("label", "run", "row label for -out")
		check    = flag.Bool("check", false, "exit nonzero unless zero lost/duplicated submits and p99 under -max-p99")
		maxP99   = flag.Duration("max-p99", 30*time.Second, "p99 submit-latency bound enforced by -check")
		quiet    = flag.Bool("quiet", false, "suppress the human-readable summary")
	)
	flag.Parse()

	cfg := loadgen.Config{
		Clients:          *clients,
		SubmitsPerClient: *submits,
		Seed:             *seed,
		Shards:           *shards,
		QueueDepth:       *qdepth,
		MaxClients:       *maxcli,
		SlotSeconds:      *slot,
		TickEvery:        *tick,
		RPCTimeout:       *rpcTO,
		SubmitDeadline:   *subDL,
		Fault: faultnet.Config{
			DropProb:    *drop,
			DelayProb:   *delay,
			CorruptProb: *corrupt,
		},
		FaultFrac:      *ffrac,
		PartitionFrac:  *pfrac,
		PartitionAfter: *pafter,
		PartitionFor:   *pms,
	}
	res, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "owan-loadgen:", err)
		os.Exit(1)
	}

	if !*quiet {
		a := res.Admission
		fmt.Printf("owan-loadgen: %d clients x %d submits in %.2fs\n",
			res.Clients, *submits, res.Elapsed.Seconds())
		fmt.Printf("  admitted   %d (%.0f/s), lost %d, duplicated %d\n",
			a.Submits, a.ThroughputPerSec, res.Lost, res.Duplicated)
		fmt.Printf("  latency    p50 %.2fms  p99 %.2fms  mean %.2fms\n",
			a.P50LatencySec*1000, a.P99LatencySec*1000, a.MeanLatencySec*1000)
		fmt.Printf("  overloads  %d (rate %.4f), resyncs checked %d\n",
			a.Overloads, a.OverloadRate, res.ResyncChecked)
	}

	if *out != "" {
		if err := loadgen.AppendDat(*out, *label, res); err != nil {
			fmt.Fprintln(os.Stderr, "owan-loadgen:", err)
			os.Exit(1)
		}
	}

	if *check {
		fail := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "owan-loadgen: CHECK FAILED: "+format+"\n", args...)
			fmt.Fprintf(os.Stderr, "  server counters: %+v\n", res.Counters)
			fmt.Fprintf(os.Stderr, "  fault stats:     %+v\n", res.Faults)
			fmt.Fprintf(os.Stderr, "  partition stats: %+v\n", res.PartitionFaults)
			fmt.Fprintf(os.Stderr, "  admission:       %+v\n", res.Admission)
			os.Exit(1)
		}
		if res.Lost != 0 {
			fail("%d submits lost", res.Lost)
		}
		if res.Duplicated != 0 {
			fail("%d submits duplicated", res.Duplicated)
		}
		if want := res.Clients * *submits; res.Admission.Submits != want {
			fail("admitted %d of %d submits", res.Admission.Submits, want)
		}
		if p99 := time.Duration(res.Admission.P99LatencySec * float64(time.Second)); p99 > *maxP99 {
			fail("p99 submit latency %s exceeds bound %s", p99, *maxP99)
		}
		if !*quiet {
			fmt.Println("  check      PASS")
		}
	}
}
