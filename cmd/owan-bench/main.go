// Command owan-bench regenerates every table and figure of the paper's
// evaluation (§5): Figures 7, 8 and 9 on the three topologies, the four
// microbenchmarks of Figure 10, and the simulator-vs-testbed validation.
//
// Output is one aligned text table per figure (gnuplot-compatible columns),
// written to stdout and optionally to per-figure files under -outdir.
//
// Usage:
//
//	owan-bench            # quick scale (minutes)
//	owan-bench -full      # paper scale (tens of minutes)
//	owan-bench -fig fig7 -topo isp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"owan/internal/experiments"
	"owan/internal/figdata"
	"owan/internal/prof"
)

func main() {
	var (
		full    = flag.Bool("full", false, "run at paper scale (slower)")
		figSel  = flag.String("fig", "all", "figure to run: fig7|fig8|fig9|fig10a|fig10b|fig10c|fig10d|validation|failure|failure-correlated|tempering|all")
		topo    = flag.String("topo", "all", "topology for fig7/8/9/10b: internet2|isp|interdc|isp200|all (isp200 is the opt-in stress scale; pair it with the trim flags)")
		slots   = flag.Int("slots", 0, "override the arrival-window slot count (0 = scale default; trims large-topology runs)")
		iters   = flag.Int("iters", 0, "override the annealing iteration cap (0 = scale default)")
		seeds   = flag.Int("seeds", 0, "override the per-cell seed count (0 = scale default)")
		outdir  = flag.String("outdir", "", "directory for per-figure data files (optional)")
		workers = flag.Int("workers", 0, "annealing energy-evaluation goroutines and per-figure simulation runs in flight (0 = serial; see core.Config.Workers)")
		batch   = flag.Int("batch", 0, "annealing candidate batch per temperature step (0 = workers; pin it when comparing -workers values — batch is part of the search semantics)")
		cache   = flag.Int("cache", 0, "annealing energy memoization cache entries (0 = off)")
		provc   = flag.Int("provcache", 0, "cross-slot provision cache entries (0 = default on, negative = off; results identical either way)")
		delta    = flag.Bool("delta", false, "incremental candidate evaluation (core.Config.DeltaEval); results identical for a seed either way")
		replicas = flag.Int("replicas", 0, "parallel-tempering replica count (0 or 1 = single chain; part of the search semantics)")
		warm     = flag.Bool("warmstart", false, "seed each slot's cooling schedule from the previous slot (core.Config.WarmStart)")
		pf       = prof.Register()
	)
	flag.Parse()
	stopProf, err := pf.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	sc := experiments.QuickScale()
	if *full {
		sc = experiments.FullScale()
	}
	sc.OwanWorkers = *workers
	sc.OwanBatch = *batch
	sc.OwanEnergyCache = *cache
	sc.OwanProvisionCache = *provc
	sc.OwanDeltaEval = *delta
	sc.OwanReplicas = *replicas
	sc.OwanWarmStart = *warm
	sc.FigWorkers = *workers
	if *slots > 0 {
		sc.HorizonSlots = *slots
	}
	if *iters > 0 {
		sc.OwanIterations = *iters
	}
	if *seeds > 0 {
		sc.Seeds = *seeds
	}
	topos := experiments.AllTopos
	if *topo != "all" {
		topos = []experiments.TopoKind{experiments.TopoKind(*topo)}
	}

	emit := func(figs ...*figdata.Figure) {
		for _, f := range figs {
			fmt.Println(f.Render())
			if *outdir != "" {
				path := filepath.Join(*outdir, f.ID+".dat")
				if err := os.WriteFile(path, []byte(f.Render()), 0o644); err != nil {
					log.Fatalf("write %s: %v", path, err)
				}
			}
		}
	}
	want := func(name string) bool { return *figSel == "all" || *figSel == name }

	start := time.Now()
	if want("fig7") {
		for _, k := range topos {
			figs, err := experiments.Fig7(k, sc)
			if err != nil {
				log.Fatalf("fig7 %s: %v", k, err)
			}
			emit(figs...)
		}
	}
	if want("fig8") {
		for _, k := range topos {
			f, err := experiments.Fig8(k, sc)
			if err != nil {
				log.Fatalf("fig8 %s: %v", k, err)
			}
			emit(f)
		}
	}
	if want("fig9") {
		for _, k := range topos {
			figs, err := experiments.Fig9(k, sc)
			if err != nil {
				log.Fatalf("fig9 %s: %v", k, err)
			}
			emit(figs...)
		}
	}
	if want("fig10a") {
		f, err := experiments.Fig10a(sc)
		if err != nil {
			log.Fatal(err)
		}
		emit(f)
	}
	if want("fig10b") {
		// fig10b is an inter-DC microbenchmark by default; a single -topo
		// selection retargets it (e.g. -topo isp200 for the stress row).
		fig10bTopo := experiments.InterDC
		if *topo != "all" {
			fig10bTopo = experiments.TopoKind(*topo)
		}
		f, err := experiments.Fig10bAt(fig10bTopo, sc)
		if err != nil {
			log.Fatal(err)
		}
		emit(f)
	}
	if want("fig10c") {
		f, err := experiments.Fig10c(sc)
		if err != nil {
			log.Fatal(err)
		}
		emit(f)
	}
	if want("fig10d") {
		f, err := experiments.Fig10d(sc)
		if err != nil {
			log.Fatal(err)
		}
		emit(f)
	}
	if want("validation") {
		f, err := experiments.Validation(sc)
		if err != nil {
			log.Fatal(err)
		}
		emit(f)
	}
	if want("failure") {
		f, err := experiments.FailureRecovery(sc)
		if err != nil {
			log.Fatal(err)
		}
		emit(f)
	}
	if *figSel == "failure-correlated" {
		sites := sc.ISPSites
		if *topo == string(experiments.ISP200) {
			sites = 200
		}
		f, err := experiments.FailureCorrelated(sc, sites)
		if err != nil {
			log.Fatal(err)
		}
		emit(f)
	}
	if want("tempering") {
		f, err := experiments.FigTempering(sc)
		if err != nil {
			log.Fatal(err)
		}
		emit(f)
	}
	scale := "quick"
	if *full {
		scale = "full"
	}
	fmt.Fprintf(os.Stderr, "owan-bench: %s scale, figures %s, done in %s\n",
		scale, strings.TrimSpace(*figSel), time.Since(start).Round(time.Second))
}
