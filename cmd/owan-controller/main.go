// Command owan-controller runs the centralized Owan controller: it listens
// for client connections (see cmd/owan-client), accepts transfer requests,
// and every slot computes the joint optical/network configuration and
// pushes rate allocations back to the submitting clients.
//
// Usage:
//
//	owan-controller -listen 127.0.0.1:9200 -topo internet2 -slot 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"owan/internal/controlplane"
	"owan/internal/core"
	"owan/internal/metrics"
	"owan/internal/topology"
	"owan/internal/transfer"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9200", "listen address")
		kind      = flag.String("topo", "internet2", "topology: internet2|isp|interdc")
		ports     = flag.Int("ports", 10, "router ports per site")
		slot      = flag.Duration("slot", 5*time.Second, "slot duration (paper: 5m; demos use seconds)")
		seed      = flag.Int64("seed", 1, "annealing seed")
		workers   = flag.Int("workers", 0, "energy-evaluation goroutines (0 = serial; results identical for a seed either way)")
		batch     = flag.Int("batch", 0, "candidate batch per temperature step (0 = workers; part of the search semantics)")
		cache     = flag.Int("cache", 0, "energy memoization cache entries (0 = off)")
		provc     = flag.Int("provcache", 0, "cross-slot provision cache entries (0 = default on, negative = off; results identical either way)")
		delta     = flag.Bool("delta", false, "incremental candidate evaluation (core.Config.DeltaEval); results identical for a seed either way")
		replicas  = flag.Int("replicas", 0, "parallel-tempering replica count (0 or 1 = single chain; part of the search semantics)")
		warm      = flag.Bool("warmstart", false, "seed each slot's cooling schedule from the previous slot (shorter schedules on low-drift slots)")
		heartbeat = flag.Duration("heartbeat", controlplane.DefaultReadTimeout, "declare a client dead after this much silence (clients ping every 10s by default)")
		wtimeout  = flag.Duration("write-timeout", controlplane.DefaultWriteTimeout, "per-client write deadline for rate pushes; a slower client is dropped and marked for resync")
		maxcli    = flag.Int("max-clients", 0, "registered-client cap; excess hellos get a typed overloaded error (0 = unlimited)")
		shards    = flag.Int("shards", controlplane.DefaultShards, "admission-queue shards (submissions hash by owner site)")
		qdepth    = flag.Int("queue-depth", controlplane.DefaultQueueDepth, "per-shard admission queue depth; a full queue answers overloaded with a retry-after hint")
	)
	flag.Parse()

	var nw *topology.Network
	switch *kind {
	case "internet2":
		nw = topology.Internet2(*ports)
	case "isp":
		nw = topology.ISP(40, *ports, *seed)
	case "interdc":
		nw = topology.InterDC(25, 5, *ports, *seed)
	default:
		log.Fatalf("unknown topology %q", *kind)
	}

	// Canonical defaults + flag overlay; NewController validates, so a
	// nonsense knob (negative workers, ...) dies here with a clear error.
	cfg := core.DefaultConfig(nw)
	cfg.Policy = transfer.SJF
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.BatchSize = *batch
	cfg.EnergyCacheSize = *cache
	cfg.ProvisionCacheSize = *provc
	cfg.DeltaEval = *delta
	cfg.Replicas = *replicas
	cfg.WarmStart = *warm
	ctrl, err := controlplane.NewServer(context.Background(), nil,
		controlplane.WithCoreConfig(cfg),
		controlplane.WithSlotSeconds(slot.Seconds()),
		controlplane.WithReadTimeout(*heartbeat),
		controlplane.WithWriteTimeout(*wtimeout),
		controlplane.WithMaxClients(*maxcli),
		controlplane.WithShards(*shards),
		controlplane.WithQueueDepth(*qdepth),
	)
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owan-controller: %s, %d sites, slot %s, listening on %s\n",
		nw.Name, nw.NumSites(), slot, lis.Addr())

	go ctrl.Serve(lis)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(*slot)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			st := ctrl.Tick()
			up := ctrl.LastUpdatePlan()
			eff := metrics.ComputeSearchEfficiency(st.CacheHits, st.CacheMisses, st.WorkerEvals)
			temper := ""
			if st.Replicas > 1 || st.WarmStarted {
				teff := metrics.ComputeTemperingEfficiency(st.ExchangeAttempts, st.Exchanges, st.Iterations, st.Replicas, cfg.MaxIterations)
				mode := "cold"
				if st.WarmStarted {
					mode = "warm"
				}
				if st.EarlyExit {
					mode += "+converged"
				}
				temper = fmt.Sprintf(", %dx replicas (%s, exch %.0f%%, budget %.0f%%)",
					st.Replicas, mode, 100*teff.ExchangeRate, 100*teff.BudgetUsed)
			}
			log.Printf("slot %d: energy %.1f Gbps (from %.1f), %d SA iterations (%d evals, cache %.0f%%, pool balance %.2f)%s, churn %d, update %d ops/%d rounds, completed %d",
				ctrl.Slot()-1, st.BestEnergy, st.InitialEnergy, st.Iterations,
				eff.Evaluations, 100*eff.HitRate, eff.WorkerBalance, temper,
				st.Churn, up.Ops, up.Rounds, ctrl.Completed())
		case <-sig:
			fmt.Println("\nshutting down")
			ctrl.Close()
			return
		}
	}
}
