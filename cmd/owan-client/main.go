// Command owan-client is the site agent: it connects to a running
// owan-controller, submits one or more bulk-transfer requests, and prints
// the rate allocations it receives each slot (a production agent would
// program them into host rate limiters).
//
// The client survives controller churn: lost connections reconnect with
// capped exponential backoff, submissions are idempotent across retries,
// and heartbeats detect a dead controller even while idle.
//
// Usage:
//
//	owan-client -controller 127.0.0.1:9200 -site 0 -submit 1:4000    # 4000 Gbit to site 1
//	owan-client -controller 127.0.0.1:9200 -site 2 -submit 5:800:12  # with a 12-slot deadline
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"owan/internal/controlplane"
)

func main() {
	var (
		addr      = flag.String("controller", "127.0.0.1:9200", "controller address")
		site      = flag.Int("site", 0, "this client's site id")
		submit    = flag.String("submit", "", "comma-separated transfers dst:gbits[:deadline-slots]")
		watch     = flag.Duration("watch", 30*time.Second, "how long to print rate updates before exiting")
		statusQ   = flag.Bool("status", false, "query controller status and exit")
		heartbeat = flag.Duration("heartbeat", controlplane.DefaultHeartbeatInterval, "ping interval for controller liveness (0 disables)")
		retryMax  = flag.Int("retry-max", 0, "give up after this many consecutive reconnect attempts (0 = retry forever)")
		rpcTO     = flag.Duration("rpc-timeout", controlplane.DefaultRPCTimeout, "per-request deadline")
	)
	flag.Parse()

	ctx := context.Background()
	cl, err := controlplane.Dial(ctx, *addr,
		controlplane.WithSite(*site),
		controlplane.WithHeartbeatInterval(*heartbeat),
		controlplane.WithRetryMax(*retryMax),
		controlplane.WithRPCTimeout(*rpcTO),
		controlplane.WithOnDisconnect(func(err error) {
			log.Printf("connection lost: %v (reconnecting)", err)
		}),
		controlplane.WithOnRates(func(rates []controlplane.WireRate) {
			for _, r := range rates {
				fmt.Printf("rate: transfer %d -> %.2f Gbps on path %v\n", r.TransferID, r.RateGbps, r.Path)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	if *statusQ {
		st, err := cl.Status(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("slot=%d active=%d completed=%d circuits=%d\n", st.Slot, st.Active, st.Completed, st.Circuits)
		return
	}

	if *submit != "" {
		for _, spec := range strings.Split(*submit, ",") {
			parts := strings.Split(spec, ":")
			if len(parts) < 2 || len(parts) > 3 {
				log.Fatalf("bad transfer spec %q (want dst:gbits[:deadline])", spec)
			}
			dst, err := strconv.Atoi(parts[0])
			if err != nil {
				log.Fatalf("bad destination in %q: %v", spec, err)
			}
			gbits, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				log.Fatalf("bad size in %q: %v", spec, err)
			}
			req := controlplane.WireRequest{Src: *site, Dst: dst, SizeGbits: gbits}
			if len(parts) == 3 {
				dl, err := strconv.Atoi(parts[2])
				if err != nil {
					log.Fatalf("bad deadline in %q: %v", spec, err)
				}
				req.DeadlineSlots = dl
			}
			id, err := cl.Submit(ctx, req)
			if err != nil {
				log.Fatalf("submit %q: %v", spec, err)
			}
			fmt.Printf("submitted transfer %d: site %d -> %d, %.0f Gbit\n", id, *site, dst, gbits)
		}
	}
	if *watch > 0 {
		fmt.Printf("watching rate updates for %s...\n", watch)
		time.Sleep(*watch)
	}
}
