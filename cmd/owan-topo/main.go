// Command owan-topo inspects the evaluation topologies: sites, router
// ports, fibers, regenerator concentration sites, and the initial
// network-layer topology derived from the fiber map.
//
// Usage:
//
//	owan-topo -topo internet2
//	owan-topo -topo isp -sites 40 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"owan/internal/topology"
)

func main() {
	var (
		kind    = flag.String("topo", "internet2", "topology: internet2|isp|interdc|square")
		sites   = flag.Int("sites", 40, "site count (isp/interdc)")
		ports   = flag.Int("ports", 10, "router ports per site")
		seed    = flag.Int64("seed", 1, "generator seed (isp/interdc)")
		asJSON  = flag.Bool("json", false, "emit the network as JSON (editable, reloadable)")
		fromFil = flag.String("load", "", "load a network from a JSON file instead of generating one")
	)
	flag.Parse()

	var net *topology.Network
	if *fromFil != "" {
		f, err := os.Open(*fromFil)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		net, err = topology.ReadNetwork(f)
		if err != nil {
			log.Fatal(err)
		}
		printNetwork(net)
		return
	}
	switch *kind {
	case "internet2":
		net = topology.Internet2(*ports)
	case "isp":
		net = topology.ISP(*sites, *ports, *seed)
	case "interdc":
		net = topology.InterDC(*sites, 5, *ports, *seed)
	case "square":
		net = topology.Square()
	default:
		log.Fatalf("unknown topology %q", *kind)
	}
	if err := net.Validate(); err != nil {
		log.Fatalf("invalid topology: %v", err)
	}
	if *asJSON {
		if _, err := net.WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	printNetwork(net)
}

func printNetwork(net *topology.Network) {
	fmt.Printf("topology %s: %d sites, %d fibers, θ=%.0f Gbps, reach %.0f km\n",
		net.Name, net.NumSites(), len(net.Fibers), net.ThetaGbps, net.ReachKm)
	fmt.Println("\nsites:")
	for _, s := range net.Sites {
		regen := ""
		if s.Regenerators > 0 {
			regen = fmt.Sprintf("  regenerators=%d", s.Regenerators)
		}
		fmt.Printf("  %2d %-8s ports=%d%s\n", s.ID, s.Name, s.RouterPorts, regen)
	}
	fmt.Println("\nfibers:")
	for _, f := range net.Fibers {
		fmt.Printf("  %2d %-8s - %-8s %6.0f km  %d wavelengths\n",
			f.ID, net.Sites[f.A].Name, net.Sites[f.B].Name, f.LengthKm, f.Wavelengths)
	}
	ls := topology.InitialTopology(net)
	fmt.Printf("\ninitial network-layer topology (%d circuits):\n", ls.TotalCircuits())
	for _, l := range ls.Links() {
		fmt.Printf("  %-8s - %-8s x%d\n", net.Sites[l.U].Name, net.Sites[l.V].Name, l.Count)
	}
}
