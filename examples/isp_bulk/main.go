// ISP bulk distribution: video-library style bulk transfers across a
// ~synthetic ISP backbone, comparing the completion-time distribution of
// Owan against SWAN (the strongest fixed-topology baseline). Prints the
// CDF the paper plots in Figure 7(f).
package main

import (
	"fmt"
	"log"

	"owan/internal/experiments"
	"owan/internal/metrics"
)

func main() {
	sc := experiments.QuickScale()
	fmt.Println("ISP bulk distribution: completion-time CDF, load factor 1.0")
	fmt.Println()

	cdfs := map[string][]metrics.CDFPoint{}
	avgs := map[string]float64{}
	for _, ap := range []string{"owan", "swan"} {
		res, err := experiments.Run(experiments.RunSpec{
			Topo:     experiments.ISP,
			Approach: ap,
			Load:     1.0,
			Seed:     5,
			Scale:    sc,
		})
		if err != nil {
			log.Fatal(err)
		}
		ct := metrics.CompletionTimes(res.Transfers, experiments.SlotSeconds)
		cdfs[ap] = metrics.CDF(ct)
		avgs[ap] = metrics.Mean(ct)
	}

	fmt.Printf("%10s %12s %12s\n", "percentile", "owan (s)", "swan (s)")
	for _, p := range []float64{10, 25, 50, 75, 90, 95, 99} {
		fmt.Printf("%9.0f%% %12.0f %12.0f\n", p,
			quantile(cdfs["owan"], p/100), quantile(cdfs["swan"], p/100))
	}
	fmt.Println()
	fmt.Printf("average completion: owan %.0f s, swan %.0f s (%.2fx improvement; paper reports up to 4.03x on ISP)\n",
		avgs["owan"], avgs["swan"], avgs["swan"]/avgs["owan"])
}

func quantile(cdf []metrics.CDFPoint, f float64) float64 {
	for _, p := range cdf {
		if p.F >= f {
			return p.X
		}
	}
	if len(cdf) == 0 {
		return 0
	}
	return cdf[len(cdf)-1].X
}
