// Coflow replication (§3.4 "group of transfers"): a search-index push from
// one datacenter to several replicas only counts when the *last* replica
// finishes. This example compares plain SJF ordering against the
// Smallest-Effective-Bottleneck-First (SEBF) group ordering on the average
// group completion time.
package main

import (
	"fmt"
	"log"

	"owan/internal/alloc"
	"owan/internal/coflow"
	"owan/internal/core"
	"owan/internal/topology"
	"owan/internal/transfer"
)

func buildScenario() (*topology.Network, *coflow.Set, []*transfer.Transfer) {
	// Tight ports make the CORE0 egress the shared bottleneck both groups
	// fight over.
	net := topology.InterDC(15, 5, 2, 3)
	set := coflow.NewSet()
	var all []*transfer.Transfer
	id := 0
	mk := func(src, dst int, size float64) *transfer.Transfer {
		t := transfer.NewTransfer(transfer.Request{
			ID: id, Src: src, Dst: dst, SizeGbits: size, Deadline: transfer.NoDeadline,
		})
		id++
		all = append(all, t)
		return t
	}
	// Group 0: small config push from CORE0 to three leaves.
	if _, err := set.AddGroup(mk(0, 6, 2000), mk(0, 7, 2000), mk(0, 8, 2000)); err != nil {
		log.Fatal(err)
	}
	// Group 1: a wide index replication, also from CORE0. Each member is
	// individually smaller than group 0's members, so per-transfer SJF
	// serves all of them first and delays group 0 — even though group 1 as
	// a whole takes far longer to finish. SEBF orders by group bottleneck
	// instead.
	var wide []*transfer.Transfer
	for d := 6; d <= 13; d++ {
		wide = append(wide, mk(0, d, 1800))
	}
	if _, err := set.AddGroup(wide...); err != nil {
		log.Fatal(err)
	}
	return net, set, all
}

// simulateOrdering drives slot-by-slot allocation with a fixed transfer
// ordering function, returning the average group completion time.
func simulateOrdering(name string, order func(set *coflow.Set, ts []*transfer.Transfer, net *topology.Network, ls *topology.LinkSet)) float64 {
	net, set, all := buildScenario()
	o := core.New(core.Config{Net: net, Policy: transfer.SJF, Seed: 11, MaxIterations: 200})
	topo := topology.InitialTopology(net)
	const slotSeconds = 60.0
	now := 0.0
	for slot := 0; slot < 200; slot++ {
		// Snap sub-kilobyte residues, as internal/sim does, so allocator
		// rate floors cannot leave a transfer asymptotically unfinished.
		for _, t := range all {
			if !t.Done && t.Remaining <= 1e-5 {
				t.Remaining = 0
				t.Done = true
				t.FinishTime = now
			}
		}
		active := transfer.Active(all, slot)
		if len(active) == 0 {
			break
		}
		order(set, active, net, topo)
		st := o.ComputeNetworkState(topo, active, slot, slotSeconds)
		topo = st.Topology
		// Re-apply the ordering to the demand list: ComputeNetworkState
		// orders internally by SJF, so for the SEBF variant we allocate
		// explicitly on the chosen topology.
		demands := alloc.DemandsFromTransfers(active, slotSeconds)
		res := alloc.Greedy(st.Effective, net.ThetaGbps, demands)
		for _, t := range active {
			t.Alloc = res.Alloc[t.ID]
			t.Advance(now, slotSeconds, slot)
			t.Alloc = nil
		}
		now += slotSeconds
	}
	sum, n := 0.0, 0
	for _, g := range set.Groups() {
		ct := g.CompletionTime()
		fmt.Printf("  [%s] group %d: completion %.0f s\n", name, g.ID, ct)
		sum += ct
		n++
	}
	return sum / float64(n)
}

func main() {
	fmt.Println("Coflow replication on the inter-DC topology (3 groups, 9 transfers)")
	fmt.Println()
	sjf := simulateOrdering("sjf", func(set *coflow.Set, ts []*transfer.Transfer, net *topology.Network, ls *topology.LinkSet) {
		transfer.Order(ts, transfer.SJF, 0, 0)
	})
	fmt.Println()
	sebf := simulateOrdering("sebf", func(set *coflow.Set, ts []*transfer.Transfer, net *topology.Network, ls *topology.LinkSet) {
		set.OrderSEBF(ts, net, ls)
	})
	fmt.Println()
	fmt.Printf("average group completion: SJF %.0f s, SEBF %.0f s\n", sjf, sebf)
	if sebf <= sjf {
		fmt.Println("SEBF meets or beats per-transfer SJF on group completion, as §3.4 suggests")
	} else {
		fmt.Println("note: on this draw SJF won; SEBF's advantage grows with group contention")
	}
}
