// Inter-DC nightly backup: deadline-constrained transfers on the
// inter-datacenter topology (super cores in a ring, dual-homed leaves,
// moving hotspots). Compares Owan against Amoeba — the strongest
// deadline-aware network-layer baseline — on the fraction of transfers
// meeting their deadlines and the bytes delivered in time (Figure 9 g-i).
package main

import (
	"fmt"
	"log"

	"owan/internal/experiments"
	"owan/internal/metrics"
)

func main() {
	sc := experiments.QuickScale()
	const sigma = 20 // deadline factor: deadlines uniform in [T, 20T]

	fmt.Println("Inter-DC backup scenario: deadline-constrained transfers, sigma=20")
	fmt.Println()
	type row struct {
		name   string
		met    float64
		bytes  float64
		avgSec float64
	}
	var rows []row
	for _, ap := range []string{"owan", "amoeba", "swan"} {
		res, err := experiments.Run(experiments.RunSpec{
			Topo:           experiments.InterDC,
			Approach:       ap,
			Load:           1.0,
			DeadlineFactor: sigma,
			Seed:           9,
			Scale:          sc,
		})
		if err != nil {
			log.Fatal(err)
		}
		d := metrics.Deadlines(res.Transfers, experiments.SlotSeconds)
		ct := metrics.CompletionTimes(res.Transfers, experiments.SlotSeconds)
		rows = append(rows, row{res.Name, d.TransfersMetPct, d.BytesMetPct, metrics.Mean(ct)})
	}
	fmt.Printf("%-12s %18s %18s %18s\n", "approach", "deadlines met %", "bytes in time %", "avg completion s")
	for _, r := range rows {
		fmt.Printf("%-12s %18.1f %18.1f %18.1f\n", r.name, r.met, r.bytes, r.avgSec)
	}
	fmt.Println()
	if rows[0].met >= rows[1].met {
		fmt.Printf("Owan meets %.2fx as many deadlines as Amoeba (paper: up to 1.36x overall)\n",
			ratio(rows[0].met, rows[1].met))
	} else {
		fmt.Println("note: on this draw Amoeba edged out Owan; the paper averages many runs")
	}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
