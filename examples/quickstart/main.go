// Quickstart: build the Internet2 topology, submit a handful of bulk
// transfers, and let the Owan controller core jointly pick the optical
// topology, routing paths, and rates for one scheduling slot.
package main

import (
	"fmt"
	"log"

	"owan/internal/core"
	"owan/internal/topology"
	"owan/internal/transfer"
)

func main() {
	// 1. The physical network: 9 sites, fibers with 80 wavelengths of
	// 10 Gbps, 2000 km optical reach, pre-placed regenerators.
	net := topology.Internet2(8)
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d sites, %d fibers, %d router ports\n",
		net.NumSites(), len(net.Fibers), net.TotalPorts())

	// 2. A few bulk transfers (sizes in gigabits; 500 GB = 4000 Gbit).
	reqs := []transfer.Request{
		{ID: 0, Src: 0, Dst: 8, SizeGbits: 24000, Deadline: transfer.NoDeadline}, // SEAT -> NEWY, 3 TB
		{ID: 1, Src: 1, Dst: 5, SizeGbits: 8000, Deadline: transfer.NoDeadline},  // LOSA -> CHIC, 1 TB
		{ID: 2, Src: 4, Dst: 6, SizeGbits: 4000, Deadline: transfer.NoDeadline},  // HOUS -> ATLA, 500 GB
		{ID: 3, Src: 0, Dst: 8, SizeGbits: 4000, Deadline: transfer.NoDeadline},  // SEAT -> NEWY, 500 GB
	}
	var ts []*transfer.Transfer
	for _, r := range reqs {
		ts = append(ts, transfer.NewTransfer(r))
	}

	// 3. The controller core: simulated annealing over topologies with
	// SJF-ordered greedy routing/rate assignment as the energy function.
	owan := core.New(core.Config{Net: net, Policy: transfer.SJF, Seed: 42})
	current := topology.InitialTopology(net)
	state := owan.ComputeNetworkState(current, ts, 0, 300)

	fmt.Printf("\nsearch: %d iterations, energy %.1f -> %.1f Gbps, %d circuit changes\n",
		state.Stats.Iterations, state.Stats.InitialEnergy, state.Stats.BestEnergy, state.Stats.Churn)

	fmt.Println("\nchosen network-layer topology:")
	for _, l := range state.Effective.Links() {
		fmt.Printf("  %-5s - %-5s x%d\n", net.Sites[l.U].Name, net.Sites[l.V].Name, l.Count)
	}

	fmt.Println("\nallocations for this slot:")
	for _, t := range ts {
		total := 0.0
		for _, pr := range state.Alloc[t.ID] {
			total += pr.Rate
		}
		fmt.Printf("  transfer %d (%s -> %s, %5.0f Gbit): %.1f Gbps over %d paths\n",
			t.ID, net.Sites[t.Src].Name, net.Sites[t.Dst].Name, t.SizeGbits, total, len(state.Alloc[t.ID]))
		for _, pr := range state.Alloc[t.ID] {
			fmt.Printf("      %.1f Gbps via %v\n", pr.Rate, names(net, pr.Path))
		}
	}
}

func names(net *topology.Network, path []int) []string {
	out := make([]string, len(path))
	for i, v := range path {
		out[i] = net.Sites[v].Name
	}
	return out
}
