// Failure handling demo (§3.4): runs the full controller/client stack over
// loopback TCP, injects a fiber failure mid-run, then kills the controller
// and promotes a replica of its store — showing that transfers survive
// both events, the same client reconnects to the replacement controller on
// its own, and the schedule reconverges incrementally.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"owan/internal/controlplane"
	"owan/internal/core"
	"owan/internal/store"
	"owan/internal/topology"
	"owan/internal/transfer"
)

func main() {
	nw := topology.Internet2(8)
	st := store.New()
	cfg := core.DefaultConfig(nw)
	cfg.Policy = transfer.SJF
	cfg.Seed = 3
	cfg.MaxIterations = 300
	ctrl, err := controlplane.NewServer(context.Background(), st,
		controlplane.WithCoreConfig(cfg),
		controlplane.WithSlotSeconds(10),
	)
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := lis.Addr().String()
	go ctrl.Serve(lis)
	fmt.Printf("controller up on %s (Internet2, 10 s slots)\n", addr)

	ctx := context.Background()
	cl, err := controlplane.Dial(ctx, addr,
		controlplane.WithSite(0),
		controlplane.WithHeartbeatInterval(200*time.Millisecond),
		controlplane.WithBackoff(50*time.Millisecond, 500*time.Millisecond),
		controlplane.WithOnDisconnect(func(err error) {
			fmt.Printf("  client: connection lost (%v), reconnecting with backoff...\n", err)
		}),
		controlplane.WithOnRates(func(rates []controlplane.WireRate) {
			for _, r := range rates {
				fmt.Printf("  rate push: transfer %d -> %.1f Gbps via %v\n", r.TransferID, r.RateGbps, r.Path)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// A cross-country transfer big enough to span several slots.
	id, err := cl.Submit(ctx, controlplane.WireRequest{Src: 0, Dst: 8, SizeGbits: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted transfer %d: SEAT -> NEWY, 2000 Gbit\n\n", id)

	fmt.Println("--- two normal slots ---")
	ctrl.Tick()
	ctrl.Tick()
	if p := ctrl.LastUpdatePlan(); p.Err == "" {
		fmt.Printf("consistent update: %d ops in %d rounds (%.1f s rollout, %d detours)\n",
			p.Ops, p.Rounds, p.Seconds, p.Detours)
	}
	time.Sleep(50 * time.Millisecond) // let rate pushes print

	fmt.Println("\n--- fiber failure: WASH-NEWY (id 11) ---")
	if err := cl.ReportFiberFailure(ctx, 11); err != nil {
		log.Fatal(err)
	}
	ctrl.Tick()
	time.Sleep(50 * time.Millisecond)

	fmt.Println("\n--- controller crash; promoting replica on the same address ---")
	ctrl.Close()
	replica := store.New()
	if err := store.Sync(st, replica); err != nil {
		log.Fatal(err)
	}
	cfg2 := core.DefaultConfig(topology.Internet2(8))
	cfg2.Policy = transfer.SJF
	cfg2.Seed = 4
	cfg2.MaxIterations = 300
	ctrl2, err := controlplane.NewServer(context.Background(), replica,
		controlplane.WithCoreConfig(cfg2),
		controlplane.WithSlotSeconds(10),
	)
	if err != nil {
		log.Fatal(err)
	}
	// Rebind the old address; the client notices the dead connection via
	// its heartbeat and re-dials on its own — no new Dial call here.
	var lis2 net.Listener
	for i := 0; i < 100; i++ {
		if lis2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		log.Fatal(err)
	}
	go ctrl2.Serve(lis2)
	fmt.Printf("replacement controller resumes at slot %d with the transfer still live\n", ctrl2.Slot())

	for i := 0; i < 30 && ctrl2.Completed() == 0; i++ {
		ctrl2.Tick()
		time.Sleep(20 * time.Millisecond)
	}
	if ctrl2.Completed() == 1 {
		fmt.Printf("transfer completed after failover at slot %d\n", ctrl2.Slot())
	} else {
		fmt.Println("transfer still in flight (unexpected)")
	}

	// The reconnected client still works against the new controller.
	st2, err := cl.Status(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status via reconnected client: slot=%d completed=%d\n", st2.Slot, st2.Completed)
	ctrl2.Close()
}
