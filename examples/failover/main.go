// Failure handling demo (§3.4): runs the full controller/client stack over
// loopback TCP, injects a fiber failure mid-run, then kills the controller
// and promotes a replica of its store — showing that transfers survive
// both events and the schedule reconverges incrementally.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"owan/internal/controlplane"
	"owan/internal/core"
	"owan/internal/store"
	"owan/internal/topology"
	"owan/internal/transfer"
)

func main() {
	nw := topology.Internet2(8)
	st := store.New()
	ctrl, err := controlplane.NewController(core.Config{
		Net: nw, Policy: transfer.SJF, Seed: 3, MaxIterations: 300,
	}, 10, st)
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go ctrl.Serve(lis)
	fmt.Printf("controller up on %s (Internet2, 10 s slots)\n", lis.Addr())

	cl, err := controlplane.Dial(lis.Addr().String(), 0, func(rates []controlplane.WireRate) {
		for _, r := range rates {
			fmt.Printf("  rate push: transfer %d -> %.1f Gbps via %v\n", r.TransferID, r.RateGbps, r.Path)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// A cross-country transfer big enough to span several slots.
	id, err := cl.Submit(controlplane.WireRequest{Src: 0, Dst: 8, SizeGbits: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted transfer %d: SEAT -> NEWY, 2000 Gbit\n\n", id)

	fmt.Println("--- two normal slots ---")
	ctrl.Tick()
	ctrl.Tick()
	if p := ctrl.LastUpdatePlan(); p.Err == "" {
		fmt.Printf("consistent update: %d ops in %d rounds (%.1f s rollout, %d detours)\n",
			p.Ops, p.Rounds, p.Seconds, p.Detours)
	}
	time.Sleep(50 * time.Millisecond) // let rate pushes print

	fmt.Println("\n--- fiber failure: WASH-NEWY (id 11) ---")
	if err := cl.ReportFiberFailure(11); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	ctrl.Tick()
	time.Sleep(50 * time.Millisecond)

	fmt.Println("\n--- controller crash; promoting replica ---")
	cl.Close()
	ctrl.Close()
	replica := store.New()
	if err := store.Sync(st, replica); err != nil {
		log.Fatal(err)
	}
	ctrl2, err := controlplane.NewController(core.Config{
		Net: topology.Internet2(8), Policy: transfer.SJF, Seed: 4, MaxIterations: 300,
	}, 10, replica)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replacement controller resumes at slot %d with the transfer still live\n", ctrl2.Slot())
	for i := 0; i < 30 && ctrl2.Completed() == 0; i++ {
		ctrl2.Tick()
	}
	if ctrl2.Completed() == 1 {
		fmt.Printf("transfer completed after failover at slot %d\n", ctrl2.Slot())
	} else {
		fmt.Println("transfer still in flight (unexpected)")
	}
}
