// Data-plane demo: the complete Owan stack over loopback TCP — controller,
// three site agents, and real rate-limited byte streams. The controller
// computes the optical topology and rate allocations each slot; agents
// enforce them with token buckets on live TCP connections (the role Linux
// Traffic Control plays on the paper's testbed).
//
// Transfers are scaled down (1 "Gbit" = 20 kB) so the demo moves real
// megabytes in seconds while the controller reasons at WAN scale.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"owan/internal/controlplane"
	"owan/internal/core"
	"owan/internal/topology"
	"owan/internal/transfer"
)

func main() {
	nw := topology.Internet2(8)
	ctrl, err := controlplane.NewServer(context.Background(), nil,
		controlplane.WithCoreConfig(core.Config{
			Net: nw, Policy: transfer.SJF, Seed: 7, MaxIterations: 300,
		}),
		controlplane.WithSlotSeconds(2), // 2 s slots for the demo
	)
	if err != nil {
		log.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go ctrl.Serve(lis)
	defer ctrl.Close()
	fmt.Printf("controller on %s (Internet2, 2 s slots)\n", lis.Addr())

	// Agents for SEAT(0), CHIC(5) and NEWY(8).
	sites := []int{0, 5, 8}
	dataLis := map[int]net.Listener{}
	peers := map[int]string{}
	for _, s := range sites {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		dataLis[s] = l
		peers[s] = l.Addr().String()
	}
	const scale = 20 << 10 // bytes per modelled Gbit
	agents := map[int]*controlplane.Agent{}
	for _, s := range sites {
		a, err := controlplane.NewAgent(lis.Addr().String(), s, dataLis[s], peers, scale)
		if err != nil {
			log.Fatal(err)
		}
		agents[s] = a
		defer a.Close()
	}

	// Submit: SEAT->NEWY 40 Gbit (800 kB), CHIC->NEWY 20 Gbit (400 kB).
	id1, err := agents[0].Transfer(8, 40, 0)
	if err != nil {
		log.Fatal(err)
	}
	id2, err := agents[5].Transfer(8, 20, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming: transfer %d SEAT->NEWY (800 kB), transfer %d CHIC->NEWY (400 kB)\n\n", id1, id2)

	// Drive slots until both streams drain.
	start := time.Now()
	for slot := 0; slot < 20; slot++ {
		st := ctrl.Tick()
		fmt.Printf("slot %d: network energy %.1f Gbps, churn %d\n", slot, st.BestEnergy, st.Churn)
		time.Sleep(600 * time.Millisecond)
		r1, _ := agents[8].Receipt(id1)
		r2, _ := agents[8].Receipt(id2)
		fmt.Printf("        NEWY received: %6d + %6d bytes\n", r1.Bytes, r2.Bytes)
		if r1.Complete && r2.Complete {
			break
		}
	}
	r1, _ := agents[8].Receipt(id1)
	r2, _ := agents[8].Receipt(id2)
	fmt.Printf("\ndone in %s: %d and %d bytes delivered (complete=%v/%v)\n",
		time.Since(start).Round(time.Millisecond), r1.Bytes, r2.Bytes, r1.Complete, r2.Complete)
}
