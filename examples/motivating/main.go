// Motivating example (§2.2, Figure 3): four routers in a square, two bulk
// transfers. Plan A controls routing only, Plan B adds multi-path rate
// control, and Plan C reconfigures the optical topology. The completion
// time ratios 1 : 0.75 : 0.5 reproduce the paper's time series.
package main

import (
	"fmt"
	"log"

	"owan/internal/core"
	"owan/internal/metrics"
	"owan/internal/sim"
	"owan/internal/te"
	"owan/internal/topology"
	"owan/internal/transfer"
)

func requests() []transfer.Request {
	// Each transfer has "10 units" of traffic; with θ=10 Gbps and 10 s
	// slots a unit is 100 Gbit and one "time unit" is two slots (20 s).
	return []transfer.Request{
		{ID: 0, Src: 0, Dst: 1, SizeGbits: 200, Deadline: transfer.NoDeadline}, // F0
		{ID: 1, Src: 2, Dst: 3, SizeGbits: 200, Deadline: transfer.NoDeadline}, // F1
	}
}

func run(name string, sched sim.Scheduler) float64 {
	net := topology.Square()
	res, err := sim.Run(sim.Config{
		Net: net, Initial: topology.InitialTopology(net),
		Scheduler: sched, Requests: requests(),
		SlotSeconds: 10, MaxSlots: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	ct := metrics.CompletionTimes(res.Transfers, 10)
	avg := metrics.Mean(ct)
	fmt.Printf("%-30s avg completion %5.1f s  (per transfer: %v)\n", name, avg, ct)
	return avg
}

func main() {
	fmt.Println("Paper §2.2 motivating example on the 4-router square network")
	fmt.Println("F0: R0->R1 and F1: R2->R3, 200 Gbit each, links 10 Gbps")
	fmt.Println()

	planA := run("Plan A (routing only)", &sim.TEScheduler{
		Approach: te.RateOnly{Policy: transfer.SJF}, Theta: 10, SlotSeconds: 10,
	})
	planB := run("Plan B (+ rate control)", &sim.TEScheduler{
		Approach: te.MaxFlow{}, Theta: 10, SlotSeconds: 10,
	})
	owan := core.New(core.Config{Net: topology.Square(), Policy: transfer.SJF, Seed: 7})
	planC := run("Plan C (+ topology, Owan)", &sim.OwanScheduler{O: owan, SlotSeconds: 10})

	fmt.Println()
	fmt.Printf("Plan B is %.2fx faster than Plan A (paper: 1.33x)\n", planA/planB)
	fmt.Printf("Plan C is %.2fx faster than Plan A (paper: 2.00x)\n", planA/planC)
	fmt.Printf("Plan C is %.2fx faster than Plan B (paper: 1.50x)\n", planB/planC)
}
