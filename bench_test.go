// Package owan's repository-level benchmarks regenerate every table and
// figure of the paper's evaluation (§5) at a reduced scale, reporting the
// headline shape metrics via b.ReportMetric so `go test -bench=.` doubles
// as a reproduction smoke test. cmd/owan-bench runs the same generators at
// full scale.
package owan

import (
	"math"
	"runtime"
	"testing"

	"owan/internal/alloc"
	"owan/internal/core"
	"owan/internal/experiments"
	"owan/internal/figdata"
	"owan/internal/metrics"
	"owan/internal/sim"
	"owan/internal/topology"
	"owan/internal/transfer"
	"owan/internal/workload"
)

// benchScale trims the quick scale further so a full -bench=. sweep stays
// in the minutes range.
func benchScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.ISPSites = 15
	sc.InterDCSites = 12
	sc.HorizonSlots = 3
	sc.OwanIterations = 120
	sc.Seeds = 1
	return sc
}

// meanImprovement averages the "vs-*-avg" series of a Fig7-style figure.
func meanImprovement(f *figdata.Figure, suffix string) float64 {
	sum, n := 0.0, 0
	for _, name := range f.SeriesNames() {
		if len(name) < len(suffix) || name[len(name)-len(suffix):] != suffix {
			continue
		}
		for _, x := range f.Xs() {
			if y, ok := f.Get(name, x); ok && !math.IsInf(y, 1) && !math.IsNaN(y) {
				sum += y
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func benchFig7(b *testing.B, topo experiments.TopoKind) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig7(topo, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanImprovement(figs[0], "-avg"), "x-improvement-avg")
		b.ReportMetric(meanImprovement(figs[0], "-p95"), "x-improvement-p95")
	}
}

func BenchmarkFig7Internet2(b *testing.B) { benchFig7(b, experiments.Internet2) }
func BenchmarkFig7ISP(b *testing.B)       { benchFig7(b, experiments.ISP) }
func BenchmarkFig7InterDC(b *testing.B)   { benchFig7(b, experiments.InterDC) }

func BenchmarkFig8Makespan(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		total, n := 0.0, 0
		for _, topo := range experiments.AllTopos {
			f, err := experiments.Fig8(topo, sc)
			if err != nil {
				b.Fatal(err)
			}
			for _, name := range f.SeriesNames() {
				for _, x := range f.Xs() {
					if y, ok := f.Get(name, x); ok && !math.IsInf(y, 1) {
						total += y
						n++
					}
				}
			}
		}
		b.ReportMetric(total/float64(n), "x-makespan-improvement")
	}
}

func benchFig9(b *testing.B, topo experiments.TopoKind) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		figs, err := experiments.Fig9(topo, sc)
		if err != nil {
			b.Fatal(err)
		}
		// Report Owan's and the best alternative's deadline-met percentage
		// averaged over the sigma sweep.
		owan, best := 0.0, 0.0
		n := 0.0
		for _, sigma := range experiments.DeadlineFactors {
			if y, ok := figs[0].Get("owan", sigma); ok {
				owan += y
				n++
			}
			alt := 0.0
			for _, name := range figs[0].SeriesNames() {
				if name == "owan" {
					continue
				}
				if y, ok := figs[0].Get(name, sigma); ok && y > alt {
					alt = y
				}
			}
			best += alt
		}
		b.ReportMetric(owan/n, "pct-owan-met")
		b.ReportMetric(best/n, "pct-best-baseline-met")
	}
}

func BenchmarkFig9Internet2(b *testing.B) { benchFig9(b, experiments.Internet2) }
func BenchmarkFig9ISP(b *testing.B)       { benchFig9(b, experiments.ISP) }
func BenchmarkFig9InterDC(b *testing.B)   { benchFig9(b, experiments.InterDC) }

func BenchmarkFig10aJointVsGreedy(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig10a(sc)
		if err != nil {
			b.Fatal(err)
		}
		// Average throughput ratio across the run.
		sumSA, sumGreedy := 0.0, 0.0
		for _, x := range f.Xs() {
			if y, ok := f.Get("simulated-annealing", x); ok {
				sumSA += y
			}
			if y, ok := f.Get("greedy", x); ok {
				sumGreedy += y
			}
		}
		if sumGreedy > 0 {
			b.ReportMetric(sumSA/sumGreedy, "x-joint-over-greedy")
		}
	}
}

func BenchmarkFig10bConsistentUpdate(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig10b(sc)
		if err != nil {
			b.Fatal(err)
		}
		minOf := func(series string) float64 {
			m := math.Inf(1)
			for _, x := range f.Xs() {
				if y, ok := f.Get(series, x); ok && y < m {
					m = y
				}
			}
			return m
		}
		b.ReportMetric(minOf("consistent"), "gbps-min-consistent")
		b.ReportMetric(minOf("one-shot"), "gbps-min-oneshot")
	}
}

// BenchmarkSimSlotISP200 measures the end-to-end per-slot pipeline at the
// 200-site stress scale with the consistent-update planner on: annealing
// search, rate allocation, slot application, and the flat update schedule
// (plus its throughput timeline) every slot. ns/slot is the figure the flat
// scheduler (DESIGN.md §15) targets; one op is one full short simulation so
// workload generation and scheduler construction stay out of the per-slot
// number only insofar as they amortize over its slots.
func BenchmarkSimSlotISP200(b *testing.B) {
	net := topology.ISP(200, 8, 1)
	reqs, err := workload.Generate(workload.Config{
		Sites: net.NumSites(), MeanSizeGbits: 2 * workload.TB,
		TotalDemandGbits: 400 * workload.TB, Load: 1, DurationSlots: 3, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	slots := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := core.New(core.Config{
			Net: net, Policy: transfer.SJF, Seed: 11,
			MaxIterations: 30, BatchSize: 8, Workers: runtime.GOMAXPROCS(0),
			DeltaEval: true,
		})
		sched := &sim.OwanScheduler{O: o, SlotSeconds: experiments.SlotSeconds}
		res, err := sim.Run(sim.Config{
			Net: net, Initial: topology.InitialTopology(net),
			Scheduler: sched, Requests: reqs,
			SlotSeconds: experiments.SlotSeconds, MaxSlots: 60,
			ReconfigSeconds: 4,
			PlanUpdates:     true,
		})
		sched.Close()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Updates) != res.Slots {
			b.Fatalf("planner covered %d of %d slots", len(res.Updates), res.Slots)
		}
		slots += res.Slots
	}
	if slots > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(slots), "ns/slot")
	}
	b.ReportMetric(float64(slots)/float64(b.N), "slots/op")
}

func BenchmarkFig10cBreakdown(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig10c(sc)
		if err != nil {
			b.Fatal(err)
		}
		// Report normalized completion time of each control level at load 1.
		if y, ok := f.Get("rate", 1); ok {
			b.ReportMetric(y, "norm-ct-rate")
		}
		if y, ok := f.Get("+rout.", 1); ok {
			b.ReportMetric(y, "norm-ct-routing")
		}
		if y, ok := f.Get("+topo.", 1); ok {
			b.ReportMetric(y, "norm-ct-topology")
		}
	}
}

func BenchmarkFig10dSARuntime(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig10d(sc)
		if err != nil {
			b.Fatal(err)
		}
		if y, ok := f.Get("owan", 0.02); ok {
			b.ReportMetric(y, "sec-avg-ct-20ms")
		}
		if y, ok := f.Get("owan", 5.12); ok {
			b.ReportMetric(y, "sec-avg-ct-5120ms")
		}
	}
}

func BenchmarkValidationEmuVsSim(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Validation(sc)
		if err != nil {
			b.Fatal(err)
		}
		if y, ok := f.Get("divergence-pct", 0); ok {
			b.ReportMetric(y, "pct-divergence")
		}
	}
}

func BenchmarkFailureRecovery(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		f, err := experiments.FailureRecovery(sc)
		if err != nil {
			b.Fatal(err)
		}
		// Post-failure goodput ratio (owan / swan) averaged over the slots
		// after the cut.
		failT := float64(sc.HorizonSlots/2) * experiments.SlotSeconds
		var owan, swan float64
		for _, x := range f.Xs() {
			if x < failT {
				continue
			}
			if y, ok := f.Get("owan", x); ok {
				owan += y
			}
			if y, ok := f.Get("swan", x); ok {
				swan += y
			}
		}
		if swan > 0 {
			b.ReportMetric(owan/swan, "x-postfailure-goodput")
		}
	}
}

// --- Parallel annealing engine (ISSUE 1 tentpole) ---

// benchAnneal measures raw annealing throughput (iterations per second) on
// the full 40-site ISP topology. All variants share (Seed, BatchSize) so
// they walk the identical chain; only the evaluation machinery differs.
// MaxChurn is disabled so every iteration pays a full energy evaluation
// (churn-rejected moves are nearly free and would mask the speedup).
func benchAnneal(b *testing.B, workers int, delta bool) {
	net := topology.ISP(40, 10, 1)
	ts := ablationWorkload(b, net)
	cfg := core.Config{
		Net: net, Policy: transfer.SJF, Seed: 11,
		MaxIterations: 160, BatchSize: 8, Workers: workers, MaxChurn: -1,
		DeltaEval: delta,
	}
	b.ResetTimer()
	iters, dHits, dFalls := 0, 0, 0
	for i := 0; i < b.N; i++ {
		o := core.New(cfg)
		st := o.ComputeNetworkState(topology.InitialTopology(net), ts, 0, experiments.SlotSeconds)
		iters += st.Stats.Iterations
		dHits += st.Stats.DeltaHits
		dFalls += st.Stats.DeltaFallbacks
		o.Close()
	}
	b.ReportMetric(float64(iters)/b.Elapsed().Seconds(), "anneal-iters/s")
	b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
	if delta {
		b.ReportMetric(float64(dFalls)/float64(b.N), "delta-fallbacks/op")
		if n := dHits + dFalls; n > 0 {
			b.ReportMetric(100*float64(dHits)/float64(n), "delta-hit-%")
		}
	}
}

func BenchmarkAnnealSerial(b *testing.B) { benchAnneal(b, 1, false) }

// BenchmarkAnnealDelta is the serial incremental evaluator: same chain as
// AnnealSerial, candidates evaluated via snapshot deltas.
func BenchmarkAnnealDelta(b *testing.B) { benchAnneal(b, 1, true) }

// BenchmarkAnnealParallel is the production configuration and the PR's
// headline number: worker-pool evaluation with DeltaEval on (lazy move-list
// candidates, snapshot delta provisioning, patched warm allocation).
func BenchmarkAnnealParallel(b *testing.B) { benchAnneal(b, runtime.GOMAXPROCS(0), true) }

// BenchmarkAnnealParallelCold isolates the worker pool without the delta
// path, i.e. the pre-delta parallel engine.
func BenchmarkAnnealParallelCold(b *testing.B) { benchAnneal(b, runtime.GOMAXPROCS(0), false) }

// BenchmarkAnnealISP100 runs the annealing search on a 100-site ISP — past
// the single-word bitset limit — with one long-lived controller reused
// across iterations, the way a scheduler drives consecutive slots. Warm
// iterations exercise the persistent evaluator: the base snapshot is reused
// when the slot starts from the same topology, and re-provisions of
// previously seen candidate topologies are answered by the cross-slot
// provision cache.
func BenchmarkAnnealISP100(b *testing.B) {
	net := topology.ISP(100, 10, 1)
	ts := ablationWorkload(b, net)
	cfg := core.Config{
		Net: net, Policy: transfer.SJF, Seed: 11,
		MaxIterations: 60, BatchSize: 8, Workers: runtime.GOMAXPROCS(0),
		MaxChurn: -1, DeltaEval: true,
	}
	o := core.New(cfg)
	defer o.Close()
	start := topology.InitialTopology(net)
	o.ComputeNetworkState(start, ts, 0, experiments.SlotSeconds) // warm the evaluator
	b.ResetTimer()
	iters, pHits, pMisses := 0, 0, 0
	for i := 0; i < b.N; i++ {
		st := o.ComputeNetworkState(start, ts, 0, experiments.SlotSeconds)
		iters += st.Stats.Iterations
		pHits += st.Stats.ProvisionHits
		pMisses += st.Stats.ProvisionMisses
	}
	b.ReportMetric(float64(iters)/b.Elapsed().Seconds(), "anneal-iters/s")
	if n := pHits + pMisses; n > 0 {
		b.ReportMetric(100*float64(pHits)/float64(n), "provision-hit-%")
	}
}

// BenchmarkAnnealISP200 is AnnealISP100 at the 200-site scale the frontier-
// compacted engines target (four 64-bit mask words): one long-lived
// controller, warm persistent evaluator, cross-slot provision cache. The
// iteration budget is halved against ISP100 so a full -bench sweep stays in
// the minutes range; anneal-iters/s is the comparable figure.
func BenchmarkAnnealISP200(b *testing.B) {
	net := topology.ISP(200, 10, 1)
	ts := ablationWorkload(b, net)
	cfg := core.Config{
		Net: net, Policy: transfer.SJF, Seed: 11,
		MaxIterations: 30, BatchSize: 8, Workers: runtime.GOMAXPROCS(0),
		MaxChurn: -1, DeltaEval: true,
	}
	o := core.New(cfg)
	defer o.Close()
	start := topology.InitialTopology(net)
	o.ComputeNetworkState(start, ts, 0, experiments.SlotSeconds) // warm the evaluator
	b.ResetTimer()
	iters, pHits, pMisses := 0, 0, 0
	for i := 0; i < b.N; i++ {
		st := o.ComputeNetworkState(start, ts, 0, experiments.SlotSeconds)
		iters += st.Stats.Iterations
		pHits += st.Stats.ProvisionHits
		pMisses += st.Stats.ProvisionMisses
	}
	b.ReportMetric(float64(iters)/b.Elapsed().Seconds(), "anneal-iters/s")
	if n := pHits + pMisses; n > 0 {
		b.ReportMetric(100*float64(pHits)/float64(n), "provision-hit-%")
	}
}

// --- Warm-start + replica exchange (ISSUE 6 tentpole) ---

// benchAnnealTempered measures the tempering engine on the 40-site ISP:
// one persistent controller driven across b.N slots, the way a scheduler
// does, so warm starts see the previous slot's accepted energy. Reports
// chain throughput plus the exchange/early-exit telemetry.
func benchAnnealTempered(b *testing.B, replicas int, warm bool) {
	net := topology.ISP(40, 10, 1)
	ts := ablationWorkload(b, net)
	cfg := core.Config{
		Net: net, Policy: transfer.SJF, Seed: 11,
		// Let the temperature schedule (and the early exit), not the
		// iteration cap, end each search: warm-started slots run genuinely
		// shorter schedules and that is the effect being measured.
		MaxIterations: 2000, BatchSize: 8, Workers: runtime.GOMAXPROCS(0),
		MaxChurn: -1, Replicas: replicas, WarmStart: warm,
	}
	o := core.New(cfg)
	defer o.Close()
	start := topology.InitialTopology(net)
	o.ComputeNetworkState(start, ts, 0, experiments.SlotSeconds) // warm the evaluator
	b.ResetTimer()
	iters, attempts, exchanges, early := 0, 0, 0, 0
	energy := 0.0
	for i := 0; i < b.N; i++ {
		st := o.ComputeNetworkState(start, ts, i+1, experiments.SlotSeconds)
		iters += st.Stats.Iterations
		attempts += st.Stats.ExchangeAttempts
		exchanges += st.Stats.Exchanges
		if st.Stats.EarlyExit {
			early++
		}
		energy = st.Stats.BestEnergy
	}
	b.ReportMetric(float64(iters)/b.Elapsed().Seconds(), "anneal-iters/s")
	b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
	b.ReportMetric(energy, "gbps-energy")
	if attempts > 0 {
		b.ReportMetric(100*float64(exchanges)/float64(attempts), "exchange-%")
	}
	b.ReportMetric(100*float64(early)/float64(b.N), "early-exit-%")
}

// BenchmarkAnnealTemperedR4 is the full tentpole configuration: a 4-rung
// ladder with warm-started schedules across slots.
func BenchmarkAnnealTemperedR4(b *testing.B) { benchAnnealTempered(b, 4, true) }

// BenchmarkAnnealTemperedR4Cold isolates the ladder from the warm start:
// every slot runs the full cold schedule on 4 rungs.
func BenchmarkAnnealTemperedR4Cold(b *testing.B) { benchAnnealTempered(b, 4, false) }

// BenchmarkAnnealTemperedWarmOnly isolates the warm start from the ladder:
// a single chain whose repeated-demand slots start low and early-exit.
func BenchmarkAnnealTemperedWarmOnly(b *testing.B) { benchAnnealTempered(b, 1, true) }

// TestMemoizedCacheNoRegression guards the energy cache against the cost
// regression BENCH_PR4.json recorded (cache-on allocating ~38% more than
// cache-off from per-put key copies): on the memoization-friendly workload
// the cache must not allocate more than the uncached search, and must not
// be meaningfully slower.
func TestMemoizedCacheNoRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two measured benchmarks")
	}
	net := topology.Internet2(8)
	var ts []*transfer.Transfer
	reqs, err := workload.Generate(workload.Config{
		Sites:            net.NumSites(),
		MeanSizeGbits:    2 * workload.TB,
		TotalDemandGbits: 800 * workload.TB,
		Load:             1,
		DurationSlots:    1,
		Seed:             7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		ts = append(ts, transfer.NewTransfer(r))
	}
	// One controller per variant, driven across slots the way a scheduler
	// does: the persistent evaluator retains the cache arena between slots
	// (reset keeps every buffer), so steady-state slots must not pay any
	// cache allocation at all. The warm-up slot absorbs the one-time arena
	// setup. Both variants consume identical RNG streams (caching never
	// changes the trajectory), so their per-slot work is comparable.
	measure := func(cacheSize int) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			cfg := core.Config{
				Net: net, Policy: transfer.SJF, Seed: 11,
				MaxIterations: 400, MaxChurn: -1, EnergyCacheSize: cacheSize,
			}
			o := core.New(cfg)
			defer o.Close()
			start := topology.InitialTopology(net)
			o.ComputeNetworkState(start, ts, 0, experiments.SlotSeconds)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.ComputeNetworkState(start, ts, 0, experiments.SlotSeconds)
			}
		})
	}
	off := measure(0)
	on := measure(4096)
	if off.N == 0 || on.N == 0 {
		t.Fatal("benchmark did not run")
	}
	// Allow a handful of allocs of slack: one-time growth (map buckets,
	// arena refills) amortizes over an adaptively chosen b.N, so the
	// per-op figure jitters by a few against a ~4300 baseline. The PR 4
	// regression this guards was +38%.
	const allocSlack = 16
	if on.AllocsPerOp() > off.AllocsPerOp()+allocSlack {
		t.Errorf("cache-on allocates more than cache-off: %d > %d+%d allocs/op",
			on.AllocsPerOp(), off.AllocsPerOp(), allocSlack)
	}
	// Time is noisy in CI; only catch gross regressions.
	if float64(on.NsPerOp()) > 1.3*float64(off.NsPerOp()) {
		t.Errorf("cache-on is >30%% slower than cache-off: %v vs %v ns/op",
			on.NsPerOp(), off.NsPerOp())
	}
	t.Logf("cache-off: %v ns/op %d allocs/op; cache-on: %v ns/op %d allocs/op",
		off.NsPerOp(), off.AllocsPerOp(), on.NsPerOp(), on.AllocsPerOp())
}

// BenchmarkAnnealMemoized shows what the energy cache buys on a small
// topology whose swap moves frequently revisit states while cooling.
func BenchmarkAnnealMemoized(b *testing.B) {
	net := topology.Internet2(8)
	ts := ablationWorkload(b, net)
	for _, cacheSize := range []int{0, 4096} {
		name := "off"
		if cacheSize > 0 {
			name = "on"
		}
		b.Run("cache-"+name, func(b *testing.B) {
			cfg := core.Config{
				Net: net, Policy: transfer.SJF, Seed: 11,
				MaxIterations: 400, MaxChurn: -1, EnergyCacheSize: cacheSize,
			}
			b.ResetTimer()
			hits, misses := 0, 0
			for i := 0; i < b.N; i++ {
				o := core.New(cfg)
				st := o.ComputeNetworkState(topology.InitialTopology(net), ts, 0, experiments.SlotSeconds)
				hits += st.Stats.CacheHits
				misses += st.Stats.CacheMisses
				o.Close()
			}
			b.ReportMetric(100*metrics.ComputeSearchEfficiency(hits, misses, nil).HitRate, "cache-hit-%")
		})
	}
}

// --- Ablation benches (DESIGN.md §4) ---

// ablationWorkload builds a stable transfer set on the ISP topology.
func ablationWorkload(b *testing.B, net *topology.Network) []*transfer.Transfer {
	b.Helper()
	reqs, err := workload.Generate(workload.Config{
		Sites:            net.NumSites(),
		MeanSizeGbits:    2 * workload.TB,
		TotalDemandGbits: 800 * workload.TB,
		Load:             1,
		DurationSlots:    1,
		Seed:             7,
	})
	if err != nil {
		b.Fatal(err)
	}
	var ts []*transfer.Transfer
	for _, r := range reqs {
		ts = append(ts, transfer.NewTransfer(r))
	}
	return ts
}

// runSA runs one annealing search with the given config tweaks and returns
// the best energy.
func runSA(b *testing.B, tweak func(*core.Config), start func(*topology.Network) *topology.LinkSet) float64 {
	b.Helper()
	net := topology.ISP(15, 6, 3)
	cfg := core.Config{Net: net, Policy: transfer.SJF, MaxIterations: 150, Seed: 11}
	if tweak != nil {
		tweak(&cfg)
	}
	o := core.New(cfg)
	ts := ablationWorkload(b, net)
	st := o.ComputeNetworkState(start(net), ts, 0, experiments.SlotSeconds)
	return st.Stats.BestEnergy
}

func BenchmarkAblationWarmStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		warm := runSA(b, nil, topology.InitialTopology)
		cold := runSA(b, nil, func(n *topology.Network) *topology.LinkSet {
			return topology.RandomTopology(n, 5)
		})
		b.ReportMetric(warm, "gbps-warm")
		b.ReportMetric(cold, "gbps-cold")
	}
}

func BenchmarkAblationNeighborMove(b *testing.B) {
	for i := 0; i < b.N; i++ {
		single := runSA(b, nil, topology.InitialTopology)
		double := runSA(b, func(c *core.Config) { c.NeighborMoves = 2 }, topology.InitialTopology)
		b.ReportMetric(single, "gbps-4link-move")
		b.ReportMetric(double, "gbps-8link-move")
	}
}

func BenchmarkAblationPolicy(b *testing.B) {
	for _, p := range []transfer.Policy{transfer.SJF, transfer.EDF, transfer.FIFO, transfer.LJF} {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			sc := benchScale()
			for i := 0; i < b.N; i++ {
				net, err := experiments.BuildTopology(experiments.Internet2, sc, 1)
				if err != nil {
					b.Fatal(err)
				}
				o := core.New(core.Config{Net: net, Policy: p, MaxIterations: sc.OwanIterations, Seed: 3})
				ts := ablationWorkload(b, net)
				st := o.ComputeNetworkState(topology.InitialTopology(net), ts, 0, experiments.SlotSeconds)
				b.ReportMetric(st.Stats.BestEnergy, "gbps-energy")
			}
		})
	}
}

func BenchmarkAblationRegenWeight(b *testing.B) {
	// Long-haul circuits on Internet2 exercise regenerator placement.
	for i := 0; i < b.N; i++ {
		run := func(unit bool) float64 {
			net := topology.Internet2(8)
			o := core.New(core.Config{Net: net, Policy: transfer.SJF, MaxIterations: 120, Seed: 9})
			o.SetUnitRegenWeights(unit)
			ts := ablationWorkload(b, net)
			st := o.ComputeNetworkState(topology.InitialTopology(net), ts, 0, experiments.SlotSeconds)
			return st.Stats.BestEnergy
		}
		b.ReportMetric(run(false), "gbps-balanced")
		b.ReportMetric(run(true), "gbps-unit")
	}
}

func BenchmarkAblationPathTiers(b *testing.B) {
	// Tiered (Algorithm 3) vs strictly sequential greedy assignment.
	net := topology.ISP(15, 6, 3)
	ts := ablationWorkload(b, net)
	ordered := append([]*transfer.Transfer(nil), ts...)
	transfer.Order(ordered, transfer.SJF, 0, 0)
	demands := alloc.DemandsFromTransfers(ordered, experiments.SlotSeconds)
	ls := topology.InitialTopology(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tiered := alloc.Greedy(ls, net.ThetaGbps, demands)
		seq := alloc.GreedySequential(ls, net.ThetaGbps, demands)
		b.ReportMetric(tiered.Throughput, "gbps-tiered")
		b.ReportMetric(seq.Throughput, "gbps-sequential")
	}
}

func BenchmarkAblationCooling(b *testing.B) {
	for _, alpha := range []float64{0.90, 0.95, 0.99} {
		alpha := alpha
		b.Run(figLabel(alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := runSA(b, func(c *core.Config) { c.Alpha = alpha; c.MaxIterations = 1 << 20 }, topology.InitialTopology)
				b.ReportMetric(e, "gbps-energy")
			}
		})
	}
}

func figLabel(alpha float64) string {
	switch alpha {
	case 0.90:
		return "alpha90"
	case 0.95:
		return "alpha95"
	default:
		return "alpha99"
	}
}
