GO ?= go

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The annealing engine evaluates energies on a worker pool; run the whole
# internal tree under the race detector so any shared-state regression in
# the concurrent code is caught before it ships.
race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# check is the tier-1 gate: clean build, vet, full tests, race-detected
# internal tests.
check: build vet test race
