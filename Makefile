GO ?= go

.PHONY: build vet test race bench bench-compare bench-json bench-smoke temper claims update faults loadgen-smoke check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The annealing engine evaluates energies on a worker pool; run the whole
# internal tree under the race detector so any shared-state regression in
# the concurrent code is caught before it ships.
race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-compare benchmarks the hot paths at BASE (default HEAD~1, from a
# temporary worktree) and at the working tree, then prints a benchstat
# comparison (or a plain old/new/delta table when benchstat is absent).
# Non-gating: the report never fails the build.
BASE ?= HEAD~1
bench-compare:
	sh scripts/benchcompare.sh $(BASE)

# bench-json runs the hot-path benchmarks — the >64-site ISP100/ISP200
# energy and annealing benchmarks, the flat update planner (and its retained
# map-based reference), and the end-to-end ISP200 slot pipeline — and writes
# the results as a JSON map (name -> ns/op, allocs/op; schema in DESIGN.md
# §8) so the numbers can be committed and diffed across PRs.
BENCH_JSON ?= BENCH_PR10.json
bench-json:
	sh scripts/benchjson.sh 'BenchmarkAnneal|BenchmarkEnergyISP|BenchmarkProvisionTopology|BenchmarkClaimRepair|BenchmarkUpdatePlan|BenchmarkSimSlot' $(BENCH_JSON) './...'

# bench-smoke compiles and runs every benchmark exactly once — a fast CI
# guard that the benchmark harness itself keeps working. internal/core
# carries the scale benchmarks (ISP100/ISP200 energy); the root package
# carries the annealing-engine ones (AnnealISP100/AnnealISP200) and the
# ISP200 slot pipeline; internal/update carries the flat planner.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x . ./internal/core ./internal/update

# claims replays the PR 9 incremental-engine differentials with the test
# cache defeated: the claim-tree repair store against cold rebuilds, the
# wavelength-availability index against the from-scratch occupancy scan, and
# the alternate-tier provision-cache migration against cold provisioning.
claims:
	$(GO) test -count=1 \
		-run 'TestClaimRepairDifferential|TestClaimReuseMatchesReference|TestLambdaIndexMatchesOccupancy|TestWithoutFiberAlternateCacheMigration' \
		./internal/alloc/ ./internal/optical/ ./internal/core/

# update replays the flat update scheduler's pinning suite with the test
# cache defeated: the 300-seed randomized differential (flat engine vs the
# retained map-based reference, bit-identical rounds/op order/detours/
# timelines — including fiber-failure and forced-detour deadlock cases) and
# the randomized step-consistency property of the planner's timeline.
update:
	$(GO) test -count=1 \
		-run 'TestFlatPlannerDifferential|TestTimelineStepConsistency' \
		./internal/update/

# temper replays the committed 300-seed golden digests: the refactored
# search loop in compat mode (Replicas=1, WarmStart=false) must reproduce
# the pre-tempering annealer bit for bit, across ISP40 and a >64-site
# network, through a WithoutFiber failure event. -count=1 defeats the test
# cache so the differential actually runs.
temper:
	$(GO) test -count=1 -run 'TestTemperGoldenDifferential' ./internal/core/

# Fault-injection integration matrix: the end-to-end scenario (controller
# killed mid-slot, one client partitioned, frames corrupted) must pass
# deterministically for each seed, under the race detector. One `go test`
# per seed so a failure names the seed that broke.
FAULT_SEEDS ?= 1 2 3
faults:
	@for s in $(FAULT_SEEDS); do \
		echo "--- fault injection, seed $$s"; \
		FAULTNET_SEED=$$s $(GO) test -race -count=1 \
			-run 'TestFaultInjectionEndToEnd' ./internal/controlplane/ || exit 1; \
	done

# loadgen-smoke drives a fixed-seed 1k-client fleet through the admission
# pipeline over the in-memory transport and audits the store token by
# token: -check exits nonzero (dumping server counters, fault stats, and
# the latency summary) on any lost or duplicated submit or a p99 above
# the bound. Small enough for CI; `owan-loadgen -clients 100000` is the
# full-scale run behind results/loadgen.dat.
loadgen-smoke:
	$(GO) run ./cmd/owan-loadgen -clients 1000 -seed 1 -check -max-p99 20s -quiet

# check is the tier-1 gate: clean build, vet, full tests, race-detected
# internal tests (including the delta differential harnesses), the
# tempering golden differential, the flat-planner differential, a one-shot
# benchmark smoke, the seeded fault-injection matrix, and the admission
# load-generator smoke.
check: build vet test race temper claims update bench-smoke faults loadgen-smoke
