module owan

go 1.22
