package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"owan/internal/controlplane"
)

// liteClient speaks the control-plane wire protocol directly with a
// single goroutine and no background machinery — the full
// controlplane.Client spends three goroutines (manager, read loop,
// heartbeat) per instance, which at 10^5 clients is 3x10^5 goroutines
// of pure overhead. The lite client gives up push handling (rate
// frames are drained and discarded while waiting for a reply) in
// exchange for a fleet that scales to the paper's client counts on one
// machine.
type liteClient struct {
	site  int
	dial  func(context.Context, string) (net.Conn, error)
	rng   *rand.Rand
	rpcTO time.Duration

	conn net.Conn
	seq  uint64
}

func (lc *liteClient) nextSeq() uint64 { lc.seq++; return lc.seq }

func (lc *liteClient) drop() {
	if lc.conn != nil {
		lc.conn.Close()
		lc.conn = nil
	}
}

func (lc *liteClient) close() { lc.drop() }

// sleep waits d plus up to 50% deterministic jitter, so retry storms
// from a big fleet decorrelate without losing reproducibility.
func (lc *liteClient) sleep(d time.Duration) {
	if d <= 0 {
		d = time.Millisecond
	}
	time.Sleep(d + time.Duration(lc.rng.Int63n(int64(d)/2+1)))
}

// connect dials and completes the hello/welcome handshake.
func (lc *liteClient) connect(deadline time.Time) error {
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	c, err := lc.dial(ctx, "mem")
	if err != nil {
		return err
	}
	c.SetDeadline(time.Now().Add(lc.rpcTO))
	if err := controlplane.WriteMsg(c, &controlplane.Message{
		Type: controlplane.MsgHello, Seq: lc.nextSeq(),
		Version: controlplane.ProtoVersion, Site: lc.site,
	}); err != nil {
		c.Close()
		return err
	}
	m, err := controlplane.ReadMsg(c)
	if err != nil {
		c.Close()
		return err
	}
	if m.Type != controlplane.MsgWelcome {
		c.Close()
		return fmt.Errorf("loadgen: handshake reply %q (%s: %s)", m.Type, m.Code, m.Err)
	}
	c.SetDeadline(time.Time{})
	lc.conn = c
	return nil
}

// submit delivers one request under an idempotency token, retrying
// through overload rejections (honoring the server's retry-after hint),
// reconnects, and injected faults until acked or past the deadline.
// Every retry carries the same token, so the controller admits the
// transfer at most once no matter how many attempts the network cost.
func (lc *liteClient) submit(req controlplane.WireRequest, token string, deadline time.Time) (id, overloads int, err error) {
	backoff := 2 * time.Millisecond
	bump := func() {
		lc.sleep(backoff)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
	// Overload backoff starts at the server's retry-after hint and grows
	// exponentially across consecutive rejections: with 10^5 clients and
	// a few thousand queue slots, retrying on the flat hint keeps the
	// whole fleet hammering at the same cadence and >95% of RPCs become
	// wasted rejections.
	var obackoff time.Duration
	for time.Now().Before(deadline) {
		if lc.conn == nil {
			if err := lc.connect(deadline); err != nil {
				bump()
				continue
			}
			backoff = 2 * time.Millisecond
		}
		seq := lc.nextSeq()
		lc.conn.SetWriteDeadline(time.Now().Add(lc.rpcTO))
		if err := controlplane.WriteMsg(lc.conn, &controlplane.Message{
			Type: controlplane.MsgSubmit, Seq: seq, Token: token, Request: &req,
		}); err != nil {
			lc.drop()
			continue
		}
	recv:
		for {
			lc.conn.SetReadDeadline(time.Now().Add(lc.rpcTO))
			m, err := controlplane.ReadMsg(lc.conn)
			if err != nil {
				lc.drop()
				break recv
			}
			switch {
			case m.Type == controlplane.MsgRates || m.Seq != seq:
				// Async push, or a stale reply from an earlier attempt.
			case m.Type == controlplane.MsgSubmitAck:
				return m.ID, overloads, nil
			case m.Type == controlplane.MsgError && m.Code == controlplane.ErrCodeOverloaded:
				overloads++
				hint := time.Duration(m.RetryAfterMs) * time.Millisecond
				if hint <= 0 {
					hint = backoff
				}
				if obackoff < hint {
					obackoff = hint
				}
				lc.sleep(obackoff)
				if obackoff < 4*time.Second {
					obackoff *= 2
				}
				break recv // resend on the same connection
			case m.Type == controlplane.MsgError:
				return 0, overloads, fmt.Errorf("loadgen: submit rejected (%s): %s", m.Code, m.Err)
			}
		}
	}
	return 0, overloads, fmt.Errorf("loadgen: submit %s: deadline exceeded", token)
}

// resync performs the v2 snapshot exchange on a fresh connection.
func (lc *liteClient) resync(deadline time.Time) (*controlplane.WireSnapshot, error) {
	if lc.conn == nil {
		if err := lc.connect(deadline); err != nil {
			return nil, err
		}
	}
	seq := lc.nextSeq()
	lc.conn.SetDeadline(time.Now().Add(lc.rpcTO))
	defer lc.conn.SetDeadline(time.Time{})
	if err := controlplane.WriteMsg(lc.conn, &controlplane.Message{
		Type: controlplane.MsgResync, Seq: seq, Site: lc.site,
	}); err != nil {
		lc.drop()
		return nil, err
	}
	for {
		m, err := controlplane.ReadMsg(lc.conn)
		if err != nil {
			lc.drop()
			return nil, err
		}
		if m.Type == controlplane.MsgRates || m.Seq != seq {
			continue
		}
		if m.Type != controlplane.MsgSnapshot || m.Snapshot == nil {
			return nil, fmt.Errorf("loadgen: resync reply %q (%s: %s)", m.Type, m.Code, m.Err)
		}
		return m.Snapshot, nil
	}
}
