// Package loadgen drives the controller's sharded admission pipeline
// with large fleets of synthetic clients — 10^4 to 10^5 — over an
// in-memory transport, optionally degraded by faultnet (drops, delays,
// corruption, partitions). Every submission carries an idempotency
// token, so after the run the harness can audit the controller's
// durable store and prove the exactly-once property the protocol
// promises: no acked submit lost, no token admitted twice, whatever the
// network did. Results summarize admission throughput, client-observed
// submit latency (p50/p99), and overload-rejection counts.
package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"owan/internal/controlplane"
	"owan/internal/core"
	"owan/internal/faultnet"
	"owan/internal/metrics"
	"owan/internal/topology"
	"owan/internal/transfer"
)

// Config tunes a load-generation run. Zero values take defaults.
type Config struct {
	// Clients is the fleet size; SubmitsPerClient how many transfers each
	// client submits (each under a fresh idempotency token).
	Clients          int
	SubmitsPerClient int
	// Seed drives every random decision: request sizes, retry jitter, and
	// the fault schedule. Two runs with the same config are equivalent.
	Seed int64

	// Controller knobs (see controlplane.NewServer options).
	Shards      int
	QueueDepth  int
	MaxClients  int
	SlotSeconds float64
	// TickEvery, when positive, runs controller slot ticks (rate pushes
	// included) concurrently with the submission load. Off by default:
	// with 10^4+ pending transfers a tick's annealing search dominates
	// the run on small machines.
	TickEvery time.Duration

	// Client-side patience.
	RPCTimeout     time.Duration
	SubmitDeadline time.Duration
	WriteTimeout   time.Duration

	// Fault is the schedule applied to the degraded fraction of the
	// fleet (FaultFrac in [0,1]); the rest dial clean.
	Fault     faultnet.Config
	FaultFrac float64
	// PartitionFrac of the fleet is severed PartitionAfter into the run
	// (0 = from the very start, before any dial) and healed PartitionFor
	// later. Partitioned clients back off and retry under the same
	// tokens, so they must converge after the heal.
	PartitionFrac  float64
	PartitionAfter time.Duration
	PartitionFor   time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.Clients <= 0 {
		cfg.Clients = 1000
	}
	if cfg.SubmitsPerClient <= 0 {
		cfg.SubmitsPerClient = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = controlplane.DefaultShards
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = controlplane.DefaultQueueDepth
	}
	if cfg.SlotSeconds <= 0 {
		cfg.SlotSeconds = 300
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 5 * time.Second
	}
	if cfg.SubmitDeadline <= 0 {
		cfg.SubmitDeadline = 120 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 2 * time.Second
	}
	return cfg
}

// Result is the outcome of one run.
type Result struct {
	Clients int
	// Submits is the attempted submission count
	// (Clients * SubmitsPerClient); Admission.Submits is how many were
	// durably admitted.
	Submits   int
	Admission metrics.AdmissionStats
	Counters  controlplane.ServerCounters
	// Faults/PartitionFaults are the injector stats for the degraded and
	// partitioned fleet fractions (zero when those fractions are empty).
	Faults          faultnet.Stats
	PartitionFaults faultnet.Stats
	// Lost counts acked-or-attempted submits with no durable record
	// (client gave up, or ack without a store row); Duplicated counts
	// tokens admitted under more than one id or resolving to a different
	// id than the client's ack. Both must be zero for a healthy run.
	Lost       int
	Duplicated int
	// ResyncChecked counts snapshot entries cross-checked against client
	// acks through the v2 resync exchange after the run.
	ResyncChecked int
	Elapsed       time.Duration
}

// clientOutcome is one client's tally, merged after the fleet joins.
type clientOutcome struct {
	acked     map[string]int
	latencies []float64
	overloads int
	failed    int
}

// Run executes one load-generation run and audits the result.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	nw := topology.Internet2(8)
	ctrl, err := controlplane.NewServer(context.Background(), nil,
		controlplane.WithCoreConfig(core.Config{
			Net: nw, Policy: transfer.SJF, Seed: cfg.Seed, MaxIterations: 20,
		}),
		controlplane.WithSlotSeconds(cfg.SlotSeconds),
		controlplane.WithShards(cfg.Shards),
		controlplane.WithQueueDepth(cfg.QueueDepth),
		controlplane.WithMaxClients(cfg.MaxClients),
		controlplane.WithWriteTimeout(cfg.WriteTimeout),
	)
	if err != nil {
		return nil, err
	}
	defer ctrl.Close()
	lis := NewMemListener()
	go ctrl.Serve(lis)

	// Fleet assignment: the first PartitionFrac of clients dial through
	// the partition injector, the next FaultFrac through the degraded
	// one, the rest clean. Deterministic in the client index.
	nPart := int(cfg.PartitionFrac * float64(cfg.Clients))
	nFault := int(cfg.FaultFrac * float64(cfg.Clients))
	var partInj, faultInj *faultnet.Injector
	if nPart > 0 {
		partInj = faultnet.New(faultnet.Config{Seed: cfg.Seed + 1})
	}
	if nFault > 0 {
		fc := cfg.Fault
		fc.Seed = cfg.Seed + 2
		faultInj = faultnet.New(fc)
	}
	dialFor := func(i int) func(context.Context, string) (net.Conn, error) {
		switch {
		case i < nPart:
			return partInj.DialerFrom(lis.Dial)
		case i < nPart+nFault:
			return faultInj.DialerFrom(lis.Dial)
		default:
			return lis.Dial
		}
	}

	runDone := make(chan struct{})
	defer close(runDone)
	if partInj != nil && cfg.PartitionFor > 0 {
		sever := func() {
			partInj.Partition(true)
			go func() {
				time.Sleep(cfg.PartitionFor)
				partInj.Partition(false)
			}()
		}
		if cfg.PartitionAfter > 0 {
			go func() {
				select {
				case <-time.After(cfg.PartitionAfter):
					sever()
				case <-runDone:
				}
			}()
		} else {
			// Sever before the first dial: the partitioned fraction is
			// guaranteed to start life refused and converge via retries.
			sever()
		}
	}
	if cfg.TickEvery > 0 {
		go func() {
			tick := time.NewTicker(cfg.TickEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					ctrl.Tick()
				case <-runDone:
					return
				}
			}
		}()
	}

	outcomes := make([]clientOutcome, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runClient(i, i%nw.NumSites(), nw.NumSites(), dialFor(i), cfg, &outcomes[i])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge the fleet's tallies.
	acked := map[string]int{}
	var latencies []float64
	overloads, failed := 0, 0
	for i := range outcomes {
		for tok, id := range outcomes[i].acked {
			acked[tok] = id
		}
		latencies = append(latencies, outcomes[i].latencies...)
		overloads += outcomes[i].overloads
		failed += outcomes[i].failed
	}

	res := &Result{
		Clients:   cfg.Clients,
		Submits:   cfg.Clients * cfg.SubmitsPerClient,
		Admission: metrics.ComputeAdmission(latencies, overloads, elapsed.Seconds()),
		Counters:  ctrl.Counters(),
		Elapsed:   elapsed,
	}
	if faultInj != nil {
		res.Faults = faultInj.Stats()
	}
	if partInj != nil {
		res.PartitionFaults = partInj.Stats()
	}

	// Audit the durable store: every acked token must map to exactly the
	// acked id, and no token may have been admitted twice.
	byToken := map[string]map[int]bool{}
	for _, v := range ctrl.Store().SnapshotPrefix("transfer/") {
		rec, err := controlplane.DecodeTransferRecord(v)
		if err != nil {
			return nil, err
		}
		if rec.Token == "" {
			continue
		}
		if byToken[rec.Token] == nil {
			byToken[rec.Token] = map[int]bool{}
		}
		byToken[rec.Token][rec.ID] = true
	}
	for tok, ids := range byToken {
		if len(ids) > 1 {
			res.Duplicated++
		} else if id, ok := acked[tok]; ok && !ids[id] {
			res.Duplicated++
		}
		_ = tok
	}
	for tok := range acked {
		if len(byToken[tok]) == 0 {
			res.Lost++
		}
	}
	res.Lost += failed

	// Exercise the v2 resync path end to end: a fresh connection per
	// sampled site replays that site's pending set; every entry must
	// agree with the client-side acks.
	checked, mismatched, err := resyncAudit(lis.Dial, nw.NumSites(), cfg, acked)
	if err != nil {
		return nil, err
	}
	res.ResyncChecked = checked
	res.Duplicated += mismatched
	res.Counters = ctrl.Counters() // refresh: includes the audit resyncs
	return res, nil
}

// runClient submits the client's quota sequentially, retrying each
// token until acked or past the submit deadline. The connection stays
// up across submits, so the fleet size is also the peak concurrent
// connection count.
func runClient(i, site, nsites int, dial func(context.Context, string) (net.Conn, error), cfg Config, out *clientOutcome) {
	out.acked = map[string]int{}
	lc := &liteClient{
		site:  site,
		dial:  dial,
		rpcTO: cfg.RPCTimeout,
		rng:   rand.New(rand.NewSource(cfg.Seed*7919 + int64(i))),
	}
	defer lc.close()
	for s := 0; s < cfg.SubmitsPerClient; s++ {
		token := fmt.Sprintf("lg-%d-%d", i, s)
		req := controlplane.WireRequest{
			Src:       site,
			Dst:       (site + 1 + lc.rng.Intn(nsites-1)) % nsites,
			SizeGbits: 1 + lc.rng.Float64()*99,
		}
		start := time.Now()
		id, overloads, err := lc.submit(req, token, start.Add(cfg.SubmitDeadline))
		out.overloads += overloads
		if err != nil {
			out.failed++
			continue
		}
		out.acked[token] = id
		out.latencies = append(out.latencies, time.Since(start).Seconds())
	}
}

// resyncAudit cross-checks up to three sites' resync snapshots against
// the fleet's acks: each snapshot entry carrying one of our tokens must
// report the id the submitting client was acked.
func resyncAudit(dial func(context.Context, string) (net.Conn, error), nsites int, cfg Config, acked map[string]int) (checked, mismatched int, err error) {
	sample := nsites
	if sample > 3 {
		sample = 3
	}
	for site := 0; site < sample; site++ {
		lc := &liteClient{
			site:  site,
			dial:  dial,
			rpcTO: cfg.RPCTimeout,
			rng:   rand.New(rand.NewSource(cfg.Seed * 104729)),
		}
		snap, rerr := lc.resync(time.Now().Add(cfg.RPCTimeout))
		lc.close()
		if rerr != nil {
			return checked, mismatched, fmt.Errorf("loadgen: resync audit site %d: %w", site, rerr)
		}
		for _, p := range snap.Pending {
			if p.Token == "" {
				continue
			}
			if id, ok := acked[p.Token]; ok {
				if id != p.ID {
					mismatched++
				}
				checked++
			}
		}
	}
	return checked, mismatched, nil
}
