package loadgen

import (
	"strings"
	"testing"
	"time"

	"owan/internal/faultnet"
)

// TestCleanRunExactlyOnce: a modest clean fleet admits every submission
// exactly once and the audit agrees with the counters.
func TestCleanRunExactlyOnce(t *testing.T) {
	res, err := Run(Config{Clients: 200, SubmitsPerClient: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 || res.Duplicated != 0 {
		t.Fatalf("lost=%d dup=%d, want 0/0", res.Lost, res.Duplicated)
	}
	if got, want := res.Admission.Submits, 400; got != want {
		t.Errorf("admitted %d, want %d", got, want)
	}
	if res.Counters.Admitted != 400 {
		t.Errorf("counter admitted = %d, want 400", res.Counters.Admitted)
	}
	if res.ResyncChecked == 0 {
		t.Error("resync audit checked nothing")
	}
	if res.Counters.Resyncs == 0 {
		t.Error("no resyncs counted despite the audit")
	}
	if res.Admission.ThroughputPerSec <= 0 {
		t.Errorf("throughput = %v", res.Admission.ThroughputPerSec)
	}
}

// TestTinyQueueForcesOverloads: a single shard with a depth-1 queue
// under a concurrent burst must shed with typed overloads — and the
// shed submissions still land exactly once via token retries.
func TestTinyQueueForcesOverloads(t *testing.T) {
	res, err := Run(Config{
		Clients: 150, SubmitsPerClient: 2, Seed: 3,
		Shards: 1, QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 || res.Duplicated != 0 {
		t.Fatalf("lost=%d dup=%d, want 0/0", res.Lost, res.Duplicated)
	}
	if res.Admission.Overloads == 0 {
		t.Error("no overloads despite a depth-1 queue under 150 concurrent clients")
	}
	if res.Counters.Overloads != uint64(res.Admission.Overloads) {
		t.Errorf("server counted %d overloads, clients absorbed %d",
			res.Counters.Overloads, res.Admission.Overloads)
	}
}

// TestDegradedAndPartitionedRunConverges: drops, delays, corruption,
// and a mid-run partition cost retries but never exactly-once.
func TestDegradedAndPartitionedRunConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("degraded run waits out a partition")
	}
	res, err := Run(Config{
		Clients: 120, SubmitsPerClient: 2, Seed: 11,
		Fault: faultnet.Config{
			DropProb: 0.05, DelayProb: 0.2, MaxDelay: 2 * time.Millisecond,
			CorruptProb: 0.02,
		},
		FaultFrac:     0.5,
		PartitionFrac: 0.25, // severed from the start, healed after 150ms
		PartitionFor:  150 * time.Millisecond,
		RPCTimeout:    700 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 || res.Duplicated != 0 {
		t.Fatalf("lost=%d dup=%d under faults, want 0/0", res.Lost, res.Duplicated)
	}
	if got, want := res.Admission.Submits, 240; got != want {
		t.Errorf("admitted %d, want %d", got, want)
	}
	if res.Faults.Conns == 0 {
		t.Error("degraded fraction never dialed through the injector")
	}
	if res.PartitionFaults.Refusals == 0 {
		t.Error("partition never refused a dial or write")
	}
}

// TestFormatRowAndHeader: the dat row stays aligned with the header's
// column count.
func TestFormatRowAndHeader(t *testing.T) {
	res := &Result{Clients: 10, Submits: 10}
	row := FormatRow("clean", res)
	lines := strings.Split(strings.TrimSpace(DatHeader), "\n")
	header := strings.Fields(strings.TrimPrefix(lines[len(lines)-1], "#"))
	if got, want := len(strings.Fields(row)), len(header); got != want {
		t.Errorf("row has %d fields, header names %d", got, want)
	}
}
