package loadgen

import (
	"context"
	"net"
	"sync"
)

// MemListener is an in-memory net.Listener whose connections are
// net.Pipe pairs. The load generator runs tens of thousands of
// concurrent clients against one controller process; real TCP sockets
// would burn two file descriptors per client and trip typical fd
// limits long before 10^5, while pipes cost only memory. Pipe ends
// honor deadlines, so the controller's read/write timeouts and the
// fault injector behave exactly as they do over TCP.
type MemListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

// NewMemListener returns an open in-memory listener.
func NewMemListener() *MemListener {
	return &MemListener{ch: make(chan net.Conn, 256), done: make(chan struct{})}
}

// Accept returns the server end of the next dialed pipe.
func (l *MemListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close unblocks Accept and fails subsequent dials.
func (l *MemListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr returns a placeholder address.
func (l *MemListener) Addr() net.Addr { return memAddr{} }

// Dial is the client-side dial function (compatible with the
// control-plane client's WithDialer and faultnet's DialerFrom): it
// creates a pipe, hands the server end to Accept, and returns the
// client end. The addr argument is ignored.
func (l *MemListener) Dial(ctx context.Context, addr string) (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }
