package loadgen

import (
	"fmt"
	"io"
	"os"
)

// DatHeader is the comment block opening results/loadgen.dat, matching
// the format of the repo's other results files.
const DatHeader = `# loadgen: sharded admission pipeline under synthetic client fleets
# one row per run; latencies are client-observed submit latencies
# (first attempt to durable ack, retries and backoff included)
#
# label            clients  submits  admit_per_s   p50_ms    p99_ms   mean_ms  overloads  ovl_rate  lost  dup  resyncs  elapsed_s
`

// FormatRow renders one run as a results row.
func FormatRow(label string, res *Result) string {
	return fmt.Sprintf("%-18s %7d %8d %12.1f %8.2f %9.2f %9.2f %10d %9.4f %5d %4d %8d %10.2f\n",
		label, res.Clients, res.Admission.Submits,
		res.Admission.ThroughputPerSec,
		res.Admission.P50LatencySec*1000,
		res.Admission.P99LatencySec*1000,
		res.Admission.MeanLatencySec*1000,
		res.Admission.Overloads, res.Admission.OverloadRate,
		res.Lost, res.Duplicated, res.Counters.Resyncs,
		res.Elapsed.Seconds())
}

// AppendDat appends a row to path, writing the header first if the file
// is new or empty.
func AppendDat(path, label string, res *Result) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		if _, err := io.WriteString(f, DatHeader); err != nil {
			return err
		}
	}
	_, err = io.WriteString(f, FormatRow(label, res))
	return err
}
