package core

import (
	"bytes"
	"sync"

	"owan/internal/topology"
)

// provisionCache memoizes ProvisionEffective results across slots: the map
// from a requested network-layer topology to its effective (optically
// realized) link enumeration is a pure function of (Network, topology) — it
// depends on neither the demand set nor the occupancy left by earlier calls,
// because provisioning always starts from an empty optical state. That makes
// it the one piece of evaluator state that is safe AND profitable to persist
// across ComputeNetworkState invocations: the warm-started slot N+1 topology
// is slot N's output, so the first (and most expensive, cold) energy of
// every slot is a near-guaranteed hit.
//
// Structurally it is the same arena LRU as energyCache — index-linked
// entries, retained key and link buffers, full key verification on hit — but
// mutex-guarded: evaluator workers consult it concurrently on their cold
// fallback paths. get copies the links out under the lock, so an eviction
// racing a hit can never hand a caller a recycled buffer.
//
// The cache is invalidated by dropping it: a controller for a different
// physical network (WithoutFiber) is a new Owan with a fresh cache, and
// SetUnitRegenWeights clears it because the knob changes provisioning.
type provisionCache struct {
	mu         sync.Mutex
	cap        int
	m          map[uint64]int32
	entries    []provEntry
	used       int
	head, tail int32
}

type provEntry struct {
	hash  uint64
	key   []byte
	n     int // number of sites of the cached topology
	links []topology.Link
	// directOnly and segmentOnly record the provisioning run's audit tier
	// (optical.State.DirectOnly/SegmentOnly): directOnly means every circuit
	// was a single direct segment on its pair's PRIMARY route; segmentOnly
	// means every circuit was a direct segment on its primary or one of its
	// precomputed ALTERNATES (no regenerator graph). Only these two classes
	// can be proven still valid after a fiber removal — the first against
	// the primary tables alone, the second against primaries plus the full
	// alternate tables (see migrateFrom).
	directOnly  bool
	segmentOnly bool
	prev, next  int32
	bnext       int32
}

func newProvisionCache(capacity int) *provisionCache {
	if capacity <= 0 {
		return nil
	}
	return &provisionCache{cap: capacity, m: make(map[uint64]int32, capacity), head: -1, tail: -1}
}

func (c *provisionCache) find(hash uint64, key []byte) int32 {
	idx, ok := c.m[hash]
	if !ok {
		return -1
	}
	for ; idx >= 0; idx = c.entries[idx].bnext {
		if bytes.Equal(c.entries[idx].key, key) {
			return idx
		}
	}
	return -1
}

func (c *provisionCache) moveToFront(idx int32) {
	if c.head == idx {
		return
	}
	e := &c.entries[idx]
	if e.prev >= 0 {
		c.entries[e.prev].next = e.next
	}
	if e.next >= 0 {
		c.entries[e.next].prev = e.prev
	}
	if c.tail == idx {
		c.tail = e.prev
	}
	e.prev = -1
	e.next = c.head
	if c.head >= 0 {
		c.entries[c.head].prev = idx
	}
	c.head = idx
	if c.tail < 0 {
		c.tail = idx
	}
}

func (c *provisionCache) bucketRemove(idx int32) {
	e := &c.entries[idx]
	if head := c.m[e.hash]; head == idx {
		if e.bnext < 0 {
			delete(c.m, e.hash)
		} else {
			c.m[e.hash] = e.bnext
		}
		return
	}
	for p := c.m[e.hash]; p >= 0; p = c.entries[p].bnext {
		if c.entries[p].bnext == idx {
			c.entries[p].bnext = e.bnext
			return
		}
	}
}

// get appends the cached effective links for the topology key to dst and
// returns (links, sites, true) on a hit. The copy happens under the lock;
// the returned slice is dst's backing array, owned by the caller.
func (c *provisionCache) get(hash uint64, key []byte, dst []topology.Link) ([]topology.Link, int, bool) {
	c.mu.Lock()
	idx := c.find(hash, key)
	if idx < 0 {
		c.mu.Unlock()
		return dst, 0, false
	}
	c.moveToFront(idx)
	e := &c.entries[idx]
	dst = append(dst, e.links...)
	n := e.n
	c.mu.Unlock()
	return dst, n, true
}

// put records the effective links of a topology, copying key and links into
// the slot's retained buffers (evicted entries donate theirs). directOnly
// and segmentOnly carry the provisioning run's audit tier (see provEntry).
func (c *provisionCache) put(hash uint64, key []byte, n int, links []topology.Link, directOnly, segmentOnly bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx := c.find(hash, key); idx >= 0 {
		// Pure function: an existing entry already holds exactly these
		// links. Just refresh its recency.
		c.moveToFront(idx)
		return
	}
	var idx int32
	if c.used < c.cap {
		if c.used == len(c.entries) {
			c.entries = append(c.entries, provEntry{})
		}
		idx = int32(c.used)
		c.used++
	} else {
		idx = c.tail
		c.bucketRemove(idx)
		e := &c.entries[idx]
		c.tail = e.prev
		if c.tail >= 0 {
			c.entries[c.tail].next = -1
		}
		if c.head == idx {
			c.head = -1
		}
	}
	e := &c.entries[idx]
	e.hash = hash
	e.key = append(e.key[:0], key...)
	e.n = n
	e.links = append(e.links[:0], links...)
	e.directOnly = directOnly
	e.segmentOnly = segmentOnly
	if h, ok := c.m[hash]; ok {
		e.bnext = h
	} else {
		e.bnext = -1
	}
	c.m[hash] = idx
	e.prev = -1
	e.next = c.head
	if c.head >= 0 {
		c.entries[c.head].prev = idx
	}
	c.head = idx
	if c.tail < 0 {
		c.tail = idx
	}
}

// migrateFrom copies the still-valid entries of old into c, preserving
// recency order (oldest first, so old's most-recent entry ends up at c's
// LRU front). An entry qualifies when its provisioning run stayed on the
// direct-segment fast path — primary-only (directOnly) or primaries plus
// alternates (segmentOnly) — AND the caller-supplied predicate confirms the
// entry's topology routes identically on the new network at that tier:
// together those prove the cached effective links are what provisioning the
// topology from scratch on the new network would produce, so migration can
// never serve a stale result. The predicate receives the entry's tier so it
// can audit only the tables the run actually consulted. Everything else
// (regenerator-routed entries, entries whose routes moved) is dropped,
// exactly as the old drop-the-world invalidation did for all.
func (c *provisionCache) migrateFrom(old *provisionCache, valid func(key []byte, n int, direct bool) bool) {
	if c == nil || old == nil {
		return
	}
	old.mu.Lock()
	defer old.mu.Unlock()
	for idx := old.tail; idx >= 0; idx = old.entries[idx].prev {
		e := &old.entries[idx]
		if (e.directOnly || e.segmentOnly) && valid(e.key, e.n, e.directOnly) {
			c.put(e.hash, e.key, e.n, e.links, e.directOnly, e.segmentOnly)
		}
	}
}

// clear empties the cache (provisioning-semantics knobs changed); buffers
// are retained.
func (c *provisionCache) clear() {
	c.mu.Lock()
	clear(c.m)
	c.used = 0
	c.head, c.tail = -1, -1
	c.mu.Unlock()
}
