package core

import (
	"fmt"

	"owan/internal/topology"
	"owan/internal/transfer"
)

// DefaultConfig returns a fully populated Config with the paper's default
// knobs for a network. Entry points start from this instead of hand-rolling
// defaults; zero-valued fields in a hand-built Config still resolve to the
// same values via withDefaults, so the two paths cannot drift.
func DefaultConfig(net *topology.Network) Config {
	return Config{
		Net:           net,
		Policy:        transfer.SJF,
		StarveSlots:   DefaultStarveSlots,
		Alpha:         DefaultAlpha,
		EpsilonFrac:   DefaultEpsilonFrac,
		MaxIterations: DefaultMaxIter,
		InitTempFrac:  DefaultInitTemp,
		NeighborMoves: 1,
		MaxChurn:      DefaultMaxChurn,
		// Workers and BatchSize stay 0 ("resolve at New"): BatchSize
		// follows Workers by contract, and pinning either here would
		// change the search trajectory for callers that only set Workers.
		Replicas:         1,
		ExchangeInterval: DefaultExchangeInterval,
		WarmTempFloor:    DefaultWarmTempFloor,
		ConvergeWindows:  DefaultConvergeWindows,
		Seed:             1,
	}
}

// Validate rejects nonsense knob combinations before they reach the
// search. Zero values mean "use the default" and pass; out-of-range
// values fail fast with a message naming the knob, so every entry point
// (controlplane, experiments, the cmd/ mains) reports bad flags the same
// way instead of silently misbehaving slots later.
func (c Config) Validate() error {
	if c.Net == nil {
		return fmt.Errorf("core: config: Net is required")
	}
	if c.Alpha != 0 && (c.Alpha <= 0 || c.Alpha >= 1) {
		return fmt.Errorf("core: config: Alpha must be in (0,1), got %v", c.Alpha)
	}
	if c.EpsilonFrac != 0 && (c.EpsilonFrac <= 0 || c.EpsilonFrac >= 1) {
		return fmt.Errorf("core: config: EpsilonFrac must be in (0,1), got %v", c.EpsilonFrac)
	}
	if c.InitTempFrac < 0 {
		return fmt.Errorf("core: config: InitTempFrac must be non-negative, got %v", c.InitTempFrac)
	}
	if c.StarveSlots < 0 {
		return fmt.Errorf("core: config: StarveSlots must be non-negative, got %d", c.StarveSlots)
	}
	if c.MaxIterations < 0 {
		return fmt.Errorf("core: config: MaxIterations must be non-negative, got %d", c.MaxIterations)
	}
	if c.TimeBudget < 0 {
		return fmt.Errorf("core: config: TimeBudget must be non-negative, got %v", c.TimeBudget)
	}
	if c.NeighborMoves < 0 {
		return fmt.Errorf("core: config: NeighborMoves must be non-negative, got %d", c.NeighborMoves)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: config: Workers must be non-negative, got %d", c.Workers)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("core: config: BatchSize must be non-negative, got %d", c.BatchSize)
	}
	if c.EnergyCacheSize < 0 {
		return fmt.Errorf("core: config: EnergyCacheSize must be non-negative, got %d", c.EnergyCacheSize)
	}
	if c.Replicas < 0 {
		return fmt.Errorf("core: config: Replicas must be non-negative (0 = single chain), got %d", c.Replicas)
	}
	if c.ExchangeInterval < 0 {
		return fmt.Errorf("core: config: ExchangeInterval must be non-negative, got %d", c.ExchangeInterval)
	}
	if c.WarmTempFloor < 0 || c.WarmTempFloor > 1 {
		return fmt.Errorf("core: config: WarmTempFloor must be in [0,1], got %v", c.WarmTempFloor)
	}
	// MaxChurn, ProvisionCacheSize and ConvergeWindows may be negative by
	// contract: negative disables the churn bound / the provision cache /
	// the early-exit convergence check (each zero value means "default",
	// since defaults never weaken the paper's schedule).
	return nil
}
