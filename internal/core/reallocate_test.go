package core

import (
	"testing"

	"owan/internal/topology"
)

func TestReallocateNoSearch(t *testing.T) {
	net := topology.Square()
	o := newOwan(net, 3)
	ts := mkTransfers([3]int{0, 1, 200}, [3]int{2, 3, 200})
	planC := topology.NewLinkSet(4)
	planC.Add(0, 1, 2)
	planC.Add(2, 3, 2)
	st := o.Reallocate(planC, ts, 0, 10)
	if !st.Topology.Equal(planC) {
		t.Error("Reallocate must not change the topology")
	}
	if st.Stats.Iterations != 0 {
		t.Error("Reallocate must not search")
	}
	if st.Stats.BestEnergy != 40 {
		t.Errorf("throughput = %v, want 40 on the Plan C topology", st.Stats.BestEnergy)
	}
	total := 0.0
	for _, prs := range st.Alloc {
		for _, pr := range prs {
			total += pr.Rate
		}
	}
	if total != 40 {
		t.Errorf("allocated %v, want 40", total)
	}
}

func TestReallocateRespectsOpticalLimits(t *testing.T) {
	// Request more circuits than wavelengths allow: the effective topology
	// shrinks and so does the allocation.
	net := topology.Square() // 4 wavelengths per fiber, 2 ports per site
	o := newOwan(net, 4)
	ts := mkTransfers([3]int{0, 1, 10000})
	huge := topology.NewLinkSet(4)
	huge.Add(0, 1, 50) // far beyond both ports and wavelengths
	st := o.Reallocate(huge, ts, 0, 10)
	if eff := st.Effective.Get(0, 1); eff > 8 {
		t.Errorf("effective circuits = %d, want <= 8 (wavelength limit)", eff)
	}
}
