package core

import (
	"fmt"
	"math/rand"
	"testing"

	"owan/internal/topology"
	"owan/internal/transfer"
)

// TestSwapInvariantsProperty checks the Algorithm 2 invariant directly: a
// neighbor move rewires circuit endpoints but never changes any site's
// port usage. For many seeds and all three evaluation topologies, walk a
// long chain of ComputeNeighbor moves (both from the warm-start and from a
// random initial topology) and assert per-site Degree and TotalCircuits
// are invariant and PortViolations never increases.
func TestSwapInvariantsProperty(t *testing.T) {
	type build struct {
		name string
		net  func(seed int64) *topology.Network
	}
	builds := []build{
		{"internet2", func(int64) *topology.Network { return topology.Internet2(8) }},
		{"isp", func(seed int64) *topology.Network { return topology.ISP(18, 6, seed) }},
		{"interdc", func(seed int64) *topology.Network { return topology.InterDC(14, 4, 6, seed) }},
	}
	for _, b := range builds {
		for seed := int64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", b.name, seed), func(t *testing.T) {
				net := b.net(seed)
				moves := 1 + int(seed)%3 // exercise multi-swap neighbors too
				o := New(Config{Net: net, Policy: transfer.SJF, Seed: seed, NeighborMoves: moves})
				starts := []*topology.LinkSet{
					topology.InitialTopology(net),
					topology.RandomTopology(net, seed),
				}
				for si, s := range starts {
					degrees := make([]int, net.NumSites())
					for v := range degrees {
						degrees[v] = s.Degree(v)
					}
					circuits := s.TotalCircuits()
					violations := s.PortViolations(net)
					for iter := 0; iter < 150; iter++ {
						n := o.ComputeNeighbor(s)
						if n == nil {
							if circuits >= 2 {
								t.Fatalf("start %d iter %d: nil neighbor on a swappable topology", si, iter)
							}
							break
						}
						for v := range degrees {
							if n.Degree(v) != degrees[v] {
								t.Fatalf("start %d iter %d: degree of site %d changed %d -> %d",
									si, iter, v, degrees[v], n.Degree(v))
							}
						}
						if got := n.TotalCircuits(); got != circuits {
							t.Fatalf("start %d iter %d: total circuits changed %d -> %d", si, iter, circuits, got)
						}
						if got := n.PortViolations(net); got > violations {
							t.Fatalf("start %d iter %d: port violations increased %d -> %d", si, iter, violations, got)
						}
						s = n
					}
				}
			})
		}
	}
}

// TestSwapOnceRejectsDegenerate drives swapOnce itself over random
// multisets: whenever it returns a state, the multiset invariants hold and
// no self links appear; degenerate inputs yield nil rather than panic.
func TestSwapOnceRejectsDegenerate(t *testing.T) {
	net := topology.Internet2(8)
	o := New(Config{Net: net, Policy: transfer.SJF, Seed: 99})
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		s := topology.NewLinkSet(n)
		for i := 0; i < rng.Intn(10); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				s.Add(u, v, 1+rng.Intn(2))
			}
		}
		before := s.TotalCircuits()
		out := o.swapOnce(o.rng, s)
		if out == nil {
			continue
		}
		if out.TotalCircuits() != before {
			t.Fatalf("trial %d: circuit count changed %d -> %d", trial, before, out.TotalCircuits())
		}
		for _, l := range out.Links() {
			if l.U == l.V {
				t.Fatalf("trial %d: self link %v", trial, l)
			}
			if l.Count <= 0 {
				t.Fatalf("trial %d: nonpositive count %v", trial, l)
			}
		}
	}
}
