// Package core implements the paper's primary contribution: Owan's joint
// optimization of optical circuit setup, routing and rate allocation via a
// simulated-annealing search over network-layer topologies (Algorithms 1–3).
//
// The annealing state is the network-layer topology (a multiset of
// router-to-router circuits). Neighbors swap the endpoints of two circuits
// (the minimal move preserving per-site port counts). The energy of a state
// is the total throughput achievable after provisioning its circuits in the
// optical layer and greedily assigning multi-path routes and rates to the
// outstanding transfers. Warm-starting at the current topology both speeds
// convergence and keeps reconfigurations incremental.
package core

import (
	"math"
	"math/rand"
	"time"

	"owan/internal/alloc"
	"owan/internal/optical"
	"owan/internal/topology"
	"owan/internal/transfer"
)

// Config tunes the Owan controller algorithms.
type Config struct {
	// Net is the physical network.
	Net *topology.Network
	// Policy orders transfers inside the energy function (SJF for
	// completion time, EDF for deadlines).
	Policy transfer.Policy
	// StarveSlots is t̂: a transfer unserved for this many slots is
	// promoted to the head of the order (0 disables).
	StarveSlots int
	// Alpha is the cooling rate (the paper uses a schedule equivalent to a
	// few hundred iterations; 0.99 with EpsilonFrac 1e-3 gives ~690).
	Alpha float64
	// EpsilonFrac stops the search when the temperature falls below
	// EpsilonFrac × the initial temperature.
	EpsilonFrac float64
	// MaxIterations caps annealing iterations regardless of temperature.
	MaxIterations int
	// TimeBudget, if positive, stops the search after this wall-clock
	// duration (the knob of Figure 10d).
	TimeBudget time.Duration
	// InitTempFrac scales the initial temperature relative to the current
	// throughput. Algorithm 1 uses the raw throughput (frac 1), but energy
	// deltas of a 2-circuit move are a few percent of total throughput, so
	// a fraction keeps more of the cooling schedule at useful temperatures.
	InitTempFrac float64
	// NeighborMoves is how many 2-circuit swaps one neighbor applies
	// (ablation knob; 1 is the paper's minimal 4-link move).
	NeighborMoves int
	// MaxChurn bounds how far the search may wander from the slot's
	// starting topology, in circuit adds+removes. This operationalizes the
	// paper's "keep the changes to the network incremental" consideration
	// (§3.2): without it, a long search drifts to high-throughput
	// topologies whose wholesale reconfiguration costs more than the
	// throughput gain. Negative disables the bound; 0 selects the default.
	MaxChurn int
	// Workers is the number of goroutines evaluating candidate energies
	// concurrently, each owning a cloned optical.State. 0 or 1 evaluates
	// inline on the controller's own state (the pre-parallel behavior).
	// Workers only changes wall-clock time, never the result: the search
	// trajectory is a pure function of (Seed, BatchSize).
	Workers int
	// BatchSize is how many candidate neighbors are generated per
	// temperature batch and evaluated together (the paper's Figure 10d
	// knob is wall-clock per slot; batching buys more evaluations per
	// second). 0 defaults to max(Workers, 1), so serial configurations
	// keep the one-candidate-at-a-time chain. BatchSize is part of the
	// search semantics: changing it changes the trajectory.
	BatchSize int
	// EnergyCacheSize bounds the per-search energy memoization cache in
	// entries (2-circuit swaps frequently revisit topologies while
	// cooling). 0 disables caching. The cache never changes results —
	// only whether an energy is recomputed.
	EnergyCacheSize int
	// ProvisionCacheSize bounds the controller-lifetime provision memoization
	// cache in entries: a map from network-layer topologies to their effective
	// (optically realized) link enumerations. Provisioning is a pure function
	// of the topology — independent of demands and of prior provisioning — so
	// unlike the energy cache this one persists across slots, and the
	// warm-started first evaluation of a slot is typically a hit. 0 selects
	// DefaultProvisionCache; negative disables the cache. Like the energy
	// cache it never changes results, only whether a provisioning is
	// recomputed.
	ProvisionCacheSize int
	// DeltaEval enables incremental candidate evaluation: per accepted base
	// topology the optical layer is provisioned once and frozen as a
	// snapshot, and each candidate (which differs by a few swapped circuits)
	// is evaluated by releasing/provisioning only the changed links with an
	// undo journal, feeding a patched warm path in the allocator. Candidates
	// are generated as move lists and materialized only on acceptance. A
	// delta whose trust gate fails (scarce wavelengths or regenerators,
	// alternate routes, wavelength contention with a released fiber) falls
	// back to the cold path and is counted in SearchStats.DeltaFallbacks.
	// The trajectory is bit-identical to DeltaEval off: move generation
	// consumes the RNG draw-for-draw like ComputeNeighbor, and trusted delta
	// energies equal cold energies exactly (see internal/optical/delta.go).
	DeltaEval bool
	// Replicas is the parallel-tempering replica count R: the search runs R
	// annealing chains at a geometric temperature ladder (rung 0 coldest, at
	// the normal schedule temperature) and periodically proposes neighbor-rung
	// state exchanges under the Metropolis criterion on (ΔE, Δβ). Candidate
	// energies of all rungs are evaluated together on the worker pool.
	// 0 or 1 selects the single-chain search (today's behavior, exactly).
	// Replicas is part of the search semantics: the result is a pure function
	// of (Seed, BatchSize, Replicas), bit-identical at any Workers/GOMAXPROCS.
	// With Replicas > 1 candidates are evaluated on the classic materialized
	// path (DeltaEval applies to the single-chain search only).
	Replicas int
	// ExchangeInterval is how many candidate batches each replica runs
	// between exchange attempts; the same interval paces the early-exit
	// convergence check (warm-started and tempered searches only). 0 selects
	// DefaultExchangeInterval.
	ExchangeInterval int
	// WarmStart seeds each slot's cooling schedule from the previous slot's
	// accepted energy and final temperature instead of restarting the full
	// InitTempFrac schedule: the starting temperature is scaled by the
	// relative drift between this slot's initial energy and the previous
	// slot's accepted energy (floored at WarmTempFloor × the cold T0, capped
	// at the cold T0), and the stop temperature ε stays anchored to the cold
	// schedule, so a low-drift slot runs a genuinely shorter schedule. A
	// warm-started search also early-exits when the (coldest) chain's best
	// energy stops improving. The first slot of a controller is always cold.
	WarmStart bool
	// WarmTempFloor floors the warm-started initial temperature as a
	// fraction of the cold initial temperature, so a zero-drift slot still
	// explores a little. 0 selects DefaultWarmTempFloor; must be ≤ 1
	// (1 makes warm start inert).
	WarmTempFloor float64
	// ConvergeWindows is the early-exit patience for warm-started and
	// tempered searches: after this many consecutive exchange windows whose
	// best-energy improvement stays within EpsilonFrac (relative), the
	// search stops and reports SearchStats.EarlyExit. 0 selects
	// DefaultConvergeWindows; negative disables early exit.
	ConvergeWindows int
	// Seed makes the probabilistic search reproducible.
	Seed int64
}

// Defaults from the paper.
const (
	DefaultAlpha       = 0.99
	DefaultEpsilonFrac = 1e-3
	DefaultMaxIter     = 2000
	DefaultStarveSlots = 3
	DefaultInitTemp    = 0.02
	DefaultMaxChurn    = 16
	// DefaultProvisionCache is the provision-cache capacity when
	// Config.ProvisionCacheSize is 0. Entries are an effective-link
	// enumeration each (a few KB on ISP100), so the default stays small.
	DefaultProvisionCache = 128
	// DefaultExchangeInterval is how many batches each tempering replica
	// runs between exchange attempts (and between early-exit checks).
	DefaultExchangeInterval = 4
	// DefaultWarmTempFloor floors the warm-started initial temperature at
	// this fraction of the cold one.
	DefaultWarmTempFloor = 0.05
	// DefaultConvergeWindows is the early-exit patience in exchange windows.
	DefaultConvergeWindows = 3
	// temperLadderStep is the geometric spacing of the tempering ladder:
	// rung r runs at T × temperLadderStep^r. Wide enough that the hottest of
	// a handful of rungs explores freely, close enough that neighbor-rung
	// exchanges still accept.
	temperLadderStep = 1.7
)

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.EpsilonFrac == 0 {
		c.EpsilonFrac = DefaultEpsilonFrac
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = DefaultMaxIter
	}
	if c.InitTempFrac == 0 {
		c.InitTempFrac = DefaultInitTemp
	}
	if c.NeighborMoves == 0 {
		c.NeighborMoves = 1
	}
	if c.MaxChurn == 0 {
		c.MaxChurn = DefaultMaxChurn
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.BatchSize < 1 {
		c.BatchSize = c.Workers
	}
	if c.ProvisionCacheSize == 0 {
		c.ProvisionCacheSize = DefaultProvisionCache
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.ExchangeInterval < 1 {
		c.ExchangeInterval = DefaultExchangeInterval
	}
	if c.WarmTempFloor == 0 {
		c.WarmTempFloor = DefaultWarmTempFloor
	}
	if c.ConvergeWindows == 0 {
		c.ConvergeWindows = DefaultConvergeWindows
	}
	return c
}

// SearchStats reports what one ComputeNetworkState invocation did.
type SearchStats struct {
	Iterations    int
	Accepted      int
	InitialEnergy float64
	BestEnergy    float64
	// Churn is the number of circuit adds+removes between the input and the
	// returned topology.
	Churn   int
	Elapsed time.Duration
	// CacheHits counts candidate energies served from the memoization
	// cache; CacheMisses counts full energy evaluations (with the cache
	// disabled every evaluated candidate is a miss).
	CacheHits   int
	CacheMisses int
	// WorkerEvals[i] is how many energies evaluator worker i computed
	// (one slot for serial runs). Its spread shows pool utilization.
	WorkerEvals []int
	// DeltaHits counts candidate energies computed on the trusted
	// incremental path; DeltaFallbacks counts deltas whose trust gate failed
	// and were recomputed cold. Both stay zero with DeltaEval off.
	// DeltaHits + DeltaFallbacks == the delta-mode energy evaluations.
	DeltaHits      int
	DeltaFallbacks int
	// SnapshotBuilds counts full base provisions frozen for the delta path
	// (one per accepted base topology the search evaluated candidates from).
	// With the persistent evaluator a warm-started slot whose base topology
	// matches the retained snapshot reports 0 builds.
	SnapshotBuilds int
	// ProvisionHits counts cold evaluations whose effective links were served
	// from the controller-lifetime provision cache; ProvisionMisses counts
	// the full provisionings that filled it. Both stay zero with the cache
	// disabled.
	ProvisionHits   int
	ProvisionMisses int
	// Replicas is the effective tempering replica count of this search
	// (1 = single chain). With Replicas > 1, Iterations and Accepted sum
	// over every replica's chain.
	Replicas int
	// ExchangeAttempts counts proposed neighbor-rung state exchanges;
	// Exchanges counts the ones the Metropolis criterion accepted. Both stay
	// zero for single-chain searches.
	ExchangeAttempts int
	Exchanges        int
	// InitialTemp is the temperature the (coldest) cooling schedule actually
	// started from; WarmStarted reports whether it was seeded from the
	// previous slot instead of the cold InitTempFrac schedule.
	InitialTemp float64
	WarmStarted bool
	// EarlyExit reports that the search stopped because the best energy
	// converged (warm-started and tempered searches only).
	EarlyExit bool
}

// NetworkState is the controller's output for one slot: the target
// network-layer topology, its optical realization, and the per-transfer
// allocation on the effective topology.
type NetworkState struct {
	Topology  *topology.LinkSet
	Plan      *optical.TopologyPlan
	Effective *topology.LinkSet
	Alloc     map[int][]transfer.PathRate
	Stats     SearchStats
}

// Owan is the controller core. It is not safe for concurrent use; the
// controller invokes it once per time slot. The evaluator behind
// ComputeNetworkState — worker goroutines, per-worker optical and allocator
// scratch, the delta snapshot, the cache arenas — lives as long as the Owan
// and is reused across slots; call Close when discarding a controller whose
// Workers > 1 searches have run, to stop the pool goroutines.
type Owan struct {
	cfg Config
	opt *optical.State
	al  *alloc.Allocator
	rng *rand.Rand
	// ev is the persistent evaluator, created lazily on the first
	// ComputeNetworkState call; provCache is the controller-lifetime
	// topology -> effective-links memo it consults (nil when disabled).
	ev        *evaluator
	provCache *provisionCache
	// disablePersist (tests) restores the pre-persistence behavior: a
	// throwaway evaluator per ComputeNetworkState and no provision cache.
	// The cross-slot differential harness runs both variants on equal seeds
	// to pin that persistence never changes a trajectory.
	disablePersist bool
	// onCacheHit, when set (tests), observes every energy-cache hit with
	// the candidate topology and the energy the cache returned. Only the
	// classic (materialized) path invokes it; delta-mode cache activity is
	// visible through SearchStats instead.
	onCacheHit func(s *topology.LinkSet, energy float64)
	// Scratch for delta-mode neighbor generation (see delta.go).
	nbAcc    []pairDelta
	nbPatch  []topology.Link
	nbMerged []topology.Link
	// nbLinks is swapOnce's enumeration scratch: one sorted-view copy per
	// proposal was the other per-candidate allocation next to Clone.
	nbLinks []topology.Link
	// lsPool recycles candidate LinkSets through the annealing loop: a
	// batch's rejected candidates and computeNeighbor's intermediate hops
	// come back here and the next swapOnce copies over them instead of
	// allocating a fresh Clone (map, buckets, sorted view) per proposal.
	// Only pointers whose last reference is provably dropped may enter the
	// pool; anything that escapes — the returned best state, any replica's
	// current state — never does. Bounded by the largest batch in flight
	// (Replicas×BatchSize plus NeighborMoves intermediates).
	lsPool []*topology.LinkSet
	// Warm-start state: the previous slot's accepted (best) energy and the
	// temperature its cooling schedule ended at. Recorded by every search
	// (recording is inert), consumed only when Config.WarmStart is set.
	// warmValid is false until the first search completes, so the first slot
	// of any controller always runs the cold schedule.
	warmE     float64
	warmT     float64
	warmValid bool
	// slotSeq counts ComputeNetworkState invocations; tempering derives its
	// per-replica and exchange RNG streams from (Seed, slotSeq, rung) so
	// consecutive slots explore independently yet reproducibly.
	slotSeq int64
}

// New creates a controller core for a network.
func New(cfg Config) *Owan {
	cfg = cfg.withDefaults()
	return &Owan{
		cfg:       cfg,
		opt:       optical.NewState(cfg.Net),
		al:        alloc.NewAllocator(),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		provCache: newProvisionCache(cfg.ProvisionCacheSize),
	}
}

// Close stops the evaluator worker pool. The controller stays usable — the
// next ComputeNetworkState restarts the pool on the same warm contexts — so
// Close is about goroutine hygiene, not teardown. Safe to call repeatedly,
// and a no-op for serial configurations.
func (o *Owan) Close() {
	if o.ev != nil {
		o.ev.close()
	}
}

// demands builds the ordered demand list for the energy function.
func (o *Owan) demands(active []*transfer.Transfer, slot int, slotSeconds float64) []alloc.Demand {
	ordered := append([]*transfer.Transfer(nil), active...)
	transfer.Order(ordered, o.cfg.Policy, slot, o.cfg.StarveSlots)
	return alloc.DemandsFromTransfers(ordered, slotSeconds)
}

// Energy computes the total throughput achievable on a candidate topology
// (Algorithm 3): provision circuits for every link, then greedily assign
// paths and rates to the ordered demands on the effective topology.
func (o *Owan) Energy(s *topology.LinkSet, demands []alloc.Demand) float64 {
	return energyOn(o.opt, o.al, o.cfg.Net.ThetaGbps, s, demands)
}

// energyOn is the allocation-free energy evaluation shared by the serial
// search loop and the parallel evaluator workers: realize the topology
// without materializing circuit records, then run the flat greedy allocator
// for the throughput alone. The (opt, al) pair must be exclusively owned by
// the calling goroutine; both provide reusable scratch, so steady-state
// evaluations perform near-zero heap allocations.
func energyOn(opt *optical.State, al *alloc.Allocator, theta float64, s *topology.LinkSet, demands []alloc.Demand) float64 {
	eff := opt.ProvisionEffectiveEnum(s)
	return al.ThroughputLinks(s.N, eff, theta, demands)
}

// SetUnitRegenWeights forwards the regenerator-balancing ablation knob to
// the optical layer. The knob changes what provisioning produces, so every
// piece of provisioning-derived persistent state is invalidated: the
// provision cache is cleared and the evaluator (whose retained snapshot and
// worker clones embed the old weights) is dropped and lazily rebuilt.
func (o *Owan) SetUnitRegenWeights(on bool) {
	o.opt.SetUnitRegenWeights(on)
	if o.ev != nil {
		o.ev.close()
		o.ev = nil
	}
	if o.provCache != nil {
		o.provCache.clear()
	}
	// The recorded warm energy was measured under the old weights; a
	// warm-started schedule seeded from it would under-explore.
	o.warmValid = false
}

// WithoutFiber returns a new controller core whose physical network lacks
// the given fiber (failure handling, §3.4). The annealing seed is carried
// over; topology state lives with the caller, so warm starts persist.
//
// The provision cache is migrated rather than dropped: an entry survives
// when its provisioning run stayed on the direct-segment fast path and
// every link of its topology routes identically on the reduced network —
// audited against the primary routes alone (optical.SameDirectRouting) for
// primary-only runs, or against the primary plus the full alternate table
// (optical.SameSegmentRouting) for runs that also drew on alternates —
// conditions under which re-provisioning provably reproduces the cached
// effective links. On a typical single-fiber failure most site pairs keep
// their routes, so the failure-response search starts with a warm cache
// instead of re-provisioning every candidate it has already seen.
func (o *Owan) WithoutFiber(fiberID int) *Owan {
	idx := -1
	for i, f := range o.cfg.Net.Fibers {
		if f.ID == fiberID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return o
	}
	clone := *o.cfg.Net
	clone.Fibers = append(append([]topology.Fiber(nil), o.cfg.Net.Fibers[:idx]...), o.cfg.Net.Fibers[idx+1:]...)
	cfg := o.cfg
	cfg.Net = &clone
	nw := New(cfg)
	if nw.provCache != nil && o.provCache != nil {
		var links []topology.Link
		nw.provCache.migrateFrom(o.provCache, func(key []byte, n int, direct bool) bool {
			var kn int
			var ok bool
			kn, links, ok = topology.DecodeKey(key, links[:0])
			if !ok || kn != n || n != clone.NumSites() {
				return false
			}
			for _, l := range links {
				if direct {
					if !o.opt.SameDirectRouting(nw.opt, l.U, l.V) {
						return false
					}
				} else if !o.opt.SameSegmentRouting(nw.opt, l.U, l.V) {
					return false
				}
			}
			return true
		})
	}
	return nw
}

// ComputeNeighbor generates a random neighbor state by applying
// cfg.NeighborMoves elementary swaps (Algorithm 2): each swap picks two
// circuits (u,v) and (p,q), removes one unit of capacity from each, and
// adds (u,p) and (v,q). Per-site port usage is unchanged. nil is returned
// if the topology has too few circuits to rewire.
func (o *Owan) ComputeNeighbor(s *topology.LinkSet) *topology.LinkSet {
	return o.computeNeighbor(o.rng, s)
}

// computeNeighbor is ComputeNeighbor drawing from an explicit RNG, so every
// tempering replica can run its own reproducible chain. The single-chain
// search passes o.rng and is draw-for-draw the pre-tempering generator.
func (o *Owan) computeNeighbor(rng *rand.Rand, s *topology.LinkSet) *topology.LinkSet {
	out := s
	for m := 0; m < o.cfg.NeighborMoves; m++ {
		n := o.swapOnce(rng, out)
		if n == nil {
			if m > 0 {
				return out
			}
			return nil
		}
		if out != s {
			// Intermediate hop: its content was just copied into n and
			// nothing else can reference it.
			o.putLinkSet(out)
		}
		out = n
	}
	return out
}

// takeLinkSet returns a mutable copy of src, reusing pooled storage when
// available. The copy is content-identical to src.Clone(), sorted view
// included, so pooling never changes a trajectory.
func (o *Owan) takeLinkSet(src *topology.LinkSet) *topology.LinkSet {
	if k := len(o.lsPool) - 1; k >= 0 {
		n := o.lsPool[k]
		o.lsPool = o.lsPool[:k]
		n.CopyFrom(src)
		return n
	}
	return src.Clone()
}

// putLinkSet surrenders a LinkSet to the recycling pool. The caller asserts
// it holds the last live reference.
func (o *Owan) putLinkSet(s *topology.LinkSet) {
	o.lsPool = append(o.lsPool, s)
}

// swapOnce applies one elementary 2-circuit swap, drawing from rng.
func (o *Owan) swapOnce(rng *rand.Rand, s *topology.LinkSet) *topology.LinkSet {
	links := s.AppendLinks(o.nbLinks[:0])
	o.nbLinks = links
	if len(links) == 0 || s.TotalCircuits() < 2 {
		return nil
	}
	// Sample circuit instances weighted by multiplicity.
	sample := func() (int, int) {
		k := rng.Intn(s.TotalCircuits())
		for _, l := range links {
			if k < l.Count {
				// Random orientation.
				if rng.Intn(2) == 0 {
					return l.U, l.V
				}
				return l.V, l.U
			}
			k -= l.Count
		}
		panic("unreachable")
	}
	for try := 0; try < 32; try++ {
		u, v := sample()
		p, q := sample()
		// Moving capacity from (u,v)+(p,q) to (u,p)+(v,q).
		if u == p || v == q {
			continue
		}
		if u == v || p == q {
			continue
		}
		// Reject a no-op (picking the same circuit twice when count==1 is
		// fine to allow; the result still differs unless identical pairs).
		// Validation reads the source topology, so rejected tries (up to 31
		// per swap) never pay for a clone; only a committed swap does.
		if s.Get(u, v) == 0 || s.Get(p, q) == 0 {
			continue
		}
		// If (u,v) == (p,q) as a link, it must hold at least 2 circuits.
		if canonEq(u, v, p, q) && s.Get(u, v) < 2 {
			continue
		}
		n := o.takeLinkSet(s)
		n.Add(u, v, -1)
		n.Add(p, q, -1)
		n.Add(u, p, 1)
		n.Add(v, q, 1)
		return n
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func canonEq(a, b, c, d int) bool {
	if a > b {
		a, b = b, a
	}
	if c > d {
		c, d = d, c
	}
	return a == c && b == d
}

// ComputeNetworkState runs the simulated-annealing search (Algorithm 1)
// starting from the current topology and returns the best state found
// together with the optical plan and the final allocation.
//
// The search proceeds in batches: per temperature step it generates up to
// Config.BatchSize candidate neighbors of the current state, evaluates
// their energies (concurrently when Config.Workers > 1, with memoization
// when Config.EnergyCacheSize > 0), and then reduces the batch in fixed
// generation order with the standard Metropolis acceptance rule. Candidate
// generation and acceptance share the single seeded RNG on this goroutine,
// so for a given (Seed, BatchSize) the result is bit-identical regardless
// of Workers or GOMAXPROCS. With BatchSize 1 the chain is exactly the
// classic serial annealing loop.
func (o *Owan) ComputeNetworkState(current *topology.LinkSet, active []*transfer.Transfer, slot int, slotSeconds float64) *NetworkState {
	start := time.Now()
	o.slotSeq++
	demands := o.demands(active, slot, slotSeconds)

	// The evaluator is controller-lifetime state: created once, then re-armed
	// per slot by begin(). Its worker pool, per-worker optical and allocator
	// scratch, delta snapshot and cache arenas all carry over, so a
	// warm-started slot skips the snapshot rebuild and its first energy is
	// usually a provision-cache hit.
	ev := o.ev
	if ev == nil || o.disablePersist {
		ev = newEvaluator(o)
		if o.disablePersist {
			defer ev.close()
		} else {
			o.ev = ev
		}
	}
	ev.begin(demands)

	sCur := current.Clone()
	eCur := ev.energyFull(&ev.ctx0, sCur)
	stats := SearchStats{InitialEnergy: eCur, Replicas: o.cfg.Replicas}

	coldT0 := eCur * o.cfg.InitTempFrac
	if coldT0 <= 0 {
		// No throughput achievable from the current state (e.g. no demands
		// yet): fall back to a nominal temperature so the loop still
		// explores a little when demands exist.
		coldT0 = 1
	}
	// The stop temperature stays anchored to the cold schedule even when
	// warm-starting: a warm schedule begins lower and therefore runs
	// genuinely fewer cooling steps to the same ε.
	epsilon := o.cfg.EpsilonFrac * coldT0
	T, warmStarted := o.warmStartTemp(eCur, coldT0)
	stats.InitialTemp = T
	stats.WarmStarted = warmStarted
	deadline := time.Time{}
	if o.cfg.TimeBudget > 0 {
		deadline = start.Add(o.cfg.TimeBudget)
	}

	var sBest *topology.LinkSet
	var eBest, finalT float64
	if o.cfg.Replicas > 1 {
		sBest, eBest, finalT = o.temperedAnneal(ev, current, sCur, eCur, T, coldT0, epsilon, deadline, &stats)
	} else {
		sBest, eBest, finalT = o.classicAnneal(ev, current, sCur, eCur, T, coldT0, epsilon, deadline, &stats)
	}
	ev.finish(&stats)

	plan := o.opt.ProvisionTopology(sBest)
	eff := plan.Effective(sBest.N)
	if o.provCache != nil {
		// Seed the cross-slot cache with the returned topology's effective
		// links: the next slot warm-starts from sBest, so its first (and most
		// expensive) evaluation becomes a hit. plan.Effective is pinned
		// identical to ProvisionEffective, so the entry equals what the cold
		// path would have stored.
		key := sBest.AppendKey(ev.ctx0.keyBuf[:0])
		ev.ctx0.keyBuf = key
		ev.ctx0.eff = eff.AppendLinks(ev.ctx0.eff[:0])
		o.provCache.put(topology.KeyHash(key), key, eff.N, ev.ctx0.eff, o.opt.DirectOnly(), o.opt.SegmentOnly())
	}
	res := o.al.Greedy(eff, o.cfg.Net.ThetaGbps, demands)
	stats.BestEnergy = eBest
	stats.Churn = current.Diff(sBest)
	stats.Elapsed = time.Since(start)
	// Record the warm-start state for the next slot (consumed only under
	// Config.WarmStart; see warmStartTemp).
	o.warmE, o.warmT, o.warmValid = eBest, finalT, true
	return &NetworkState{
		Topology:  sBest,
		Plan:      plan,
		Effective: eff,
		Alloc:     res.Alloc,
		Stats:     stats,
	}
}

// warmStartTemp derives the slot's starting temperature. Cold slots (warm
// start off, or nothing recorded yet) start at coldT0. A warm slot scales
// coldT0 by the relative drift between this slot's initial energy and the
// previous slot's accepted energy — similar demands need little reheating,
// a demand shock re-runs most of the schedule — floored at WarmTempFloor
// (so zero-drift slots still explore), never below the temperature the
// previous schedule ended at, and capped at coldT0.
func (o *Owan) warmStartTemp(eCur, coldT0 float64) (float64, bool) {
	if !o.cfg.WarmStart || !o.warmValid || coldT0 <= 0 {
		return coldT0, false
	}
	drift := math.Abs(eCur-o.warmE) / math.Max(math.Abs(o.warmE), 1e-9)
	frac := math.Min(1, math.Max(o.cfg.WarmTempFloor, drift))
	T := math.Max(coldT0*frac, o.warmT)
	if T > coldT0 {
		T = coldT0
	}
	return T, true
}

// classicAnneal is the single-chain annealing loop (Algorithm 1), batched
// over the evaluator. It starts from (sCur, eCur) at temperature T and
// returns the best state found, its energy, and the final temperature.
// Candidate generation and acceptance share o.rng on this goroutine, so the
// trajectory is the documented pure function of (Seed, BatchSize). On slots
// that warm-started, the loop additionally checks convergence every
// ExchangeInterval batches and stops early once the best energy stalls for
// ConvergeWindows consecutive windows.
func (o *Owan) classicAnneal(ev *evaluator, current, sCur *topology.LinkSet, eCur, T, T0, epsilon float64, deadline time.Time, stats *SearchStats) (*topology.LinkSet, float64, float64) {
	sBest, eBest := sCur, eCur
	useDelta := o.cfg.DeltaEval
	cands := make([]*topology.LinkSet, 0, o.cfg.BatchSize)
	needEval := make([]bool, 0, o.cfg.BatchSize)
	var energies []float64
	// Delta-mode candidate state: candidates exist as move lists until
	// accepted (movesBuf reuses per-slot buffers across batches; mats holds
	// this batch's lazily materialized topologies). linksCur/totalCur/
	// churnCur cache the enumeration, circuit count and churn of sCur, and
	// baseSeq counts sCur replacements so the evaluator knows when to
	// rebuild its snapshot (pointer identity is unreliable once old bases
	// are garbage).
	var (
		movesBuf [][]swapMove
		mats     []*topology.LinkSet
		linksCur []topology.Link
		curValid bool
		totalCur int
		churnCur int
		baseSeq  int
	)
	if useDelta {
		movesBuf = make([][]swapMove, o.cfg.BatchSize)
		mats = make([]*topology.LinkSet, o.cfg.BatchSize)
	}
	// Early-exit convergence windows, only on slots that actually
	// warm-started: a cold slot (including every first slot, and every slot
	// with WarmStart off) runs draw-for-draw the pre-tempering schedule.
	earlyExit := stats.WarmStarted && o.cfg.ConvergeWindows > 0
	batches, streak := 0, 0
	windowBest := eBest
	stop := false
	for !stop && stats.Iterations < o.cfg.MaxIterations {
		if T <= epsilon {
			if deadline.IsZero() {
				break
			}
			// With a wall-clock budget, a quenched schedule reheats and
			// keeps searching from the current state until time runs out
			// (longer budgets monotonically improve the best state found,
			// the behaviour Figure 10d measures).
			T = T0
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}

		// Generate the batch. Every candidate derives from the same sCur;
		// candidates outside the churn trust region around the slot's
		// starting topology are rejected without an energy evaluation (the
		// move would not be deployable as an incremental update) but still
		// consume an iteration and a cooling step, exactly like the serial
		// chain. In delta mode a candidate is its move list and the churn
		// bound is applied incrementally over the touched pairs; both paths
		// draw from the RNG identically, so the trajectories coincide.
		k := o.cfg.BatchSize
		if rem := o.cfg.MaxIterations - stats.Iterations; k > rem {
			k = rem
		}
		nCand := 0
		cands = cands[:0]
		needEval = needEval[:0]
		if useDelta {
			if !curValid {
				linksCur = sCur.AppendLinks(linksCur[:0])
				totalCur = sCur.TotalCircuits()
				if o.cfg.MaxChurn > 0 {
					churnCur = current.Diff(sCur)
				}
				curValid = true
			}
			for nCand < k {
				mv, ok := o.neighborMoves(sCur, linksCur, totalCur, movesBuf[nCand][:0])
				movesBuf[nCand] = mv
				if !ok {
					stop = true
					break
				}
				ne := true
				if o.cfg.MaxChurn > 0 {
					churnN := churnCur
					o.nbAcc = accumMoves(mv, o.nbAcc[:0])
					for _, pd := range o.nbAcc {
						cur := current.Get(pd.u, pd.v)
						b := sCur.Get(pd.u, pd.v)
						churnN += abs(cur-b-pd.d) - abs(cur-b)
					}
					ne = churnN <= o.cfg.MaxChurn
				}
				needEval = append(needEval, ne)
				nCand++
			}
			if nCand == 0 {
				break
			}
			energies = ev.energiesDelta(sCur, linksCur, baseSeq, movesBuf[:nCand], needEval, energies)
		} else {
			for len(cands) < k {
				sN := o.ComputeNeighbor(sCur)
				if sN == nil {
					stop = true
					break
				}
				cands = append(cands, sN)
				needEval = append(needEval, !(o.cfg.MaxChurn > 0 && current.Diff(sN) > o.cfg.MaxChurn))
			}
			if len(cands) == 0 {
				break
			}
			energies = ev.energies(cands, needEval, energies)
		}

		// Deterministic reduction: walk the batch in generation order,
		// applying acceptance against the evolving current state. An
		// accepted candidate replaces sCur for the rest of the batch even
		// though later candidates were generated from the older state —
		// they are complete topologies, so adopting them stays valid.
		// Delta-mode candidates materialize here, only when they become the
		// best or the current state (best and accept share the clone).
		batchBase := sCur
		for i := range needEval {
			stats.Iterations++
			if !needEval[i] {
				T *= o.cfg.Alpha
				continue
			}
			eN := energies[i]
			var sN *topology.LinkSet
			if !useDelta {
				sN = cands[i]
			}
			if eN > eBest {
				if useDelta {
					if mats[i] == nil {
						mats[i] = materializeMoves(batchBase, movesBuf[i])
					}
					sN = mats[i]
				}
				sBest, eBest = sN, eN
			}
			if accept(eCur, eN, T, o.rng) {
				if useDelta && sN == nil {
					if mats[i] == nil {
						mats[i] = materializeMoves(batchBase, movesBuf[i])
					}
					sN = mats[i]
				}
				sCur, eCur = sN, eN
				stats.Accepted++
				if useDelta {
					curValid = false
					baseSeq++
				}
			}
			T *= o.cfg.Alpha
			if T <= epsilon {
				if deadline.IsZero() {
					stop = true
					break
				}
				T = T0
			}
		}
		for i := 0; i < nCand; i++ {
			mats[i] = nil
		}
		if !useDelta {
			// Recycle the batch: every candidate the reduction did not
			// retain as the current or best state is dead.
			for _, c := range cands {
				if c != sCur && c != sBest {
					o.putLinkSet(c)
				}
			}
		}
		batches++
		if earlyExit && batches%o.cfg.ExchangeInterval == 0 {
			if eBest-windowBest <= o.cfg.EpsilonFrac*math.Max(math.Abs(eBest), 1e-9) {
				streak++
				if streak >= o.cfg.ConvergeWindows {
					stats.EarlyExit = true
					stop = true
				}
			} else {
				streak = 0
			}
			windowBest = eBest
		}
	}
	return sBest, eBest, T
}

// Reallocate provisions a given topology and computes the allocation on
// it without any search — used when the topology decision was already
// made (e.g. an externally chosen incremental reconfiguration).
func (o *Owan) Reallocate(topo *topology.LinkSet, active []*transfer.Transfer, slot int, slotSeconds float64) *NetworkState {
	demands := o.demands(active, slot, slotSeconds)
	plan := o.opt.ProvisionTopology(topo)
	eff := plan.Effective(topo.N)
	res := o.al.Greedy(eff, o.cfg.Net.ThetaGbps, demands)
	return &NetworkState{
		Topology:  topo,
		Plan:      plan,
		Effective: eff,
		Alloc:     res.Alloc,
		Stats:     SearchStats{BestEnergy: res.Throughput, InitialEnergy: res.Throughput},
	}
}

// accept implements the annealing acceptance probability: always accept
// improvements; accept a worse neighbor with probability e^{(eN-eCur)/T}.
func accept(eCur, eN, T float64, rng *rand.Rand) bool {
	if eN >= eCur {
		return true
	}
	return math.Exp((eN-eCur)/T) > rng.Float64()
}
