package core

import (
	"math/rand"
	"testing"

	"owan/internal/alloc"
	"owan/internal/topology"
	"owan/internal/transfer"
)

// quickScaleEnergyCase builds the ISP quick-scale configuration (25 sites, 8
// ports — the scale the experiments package uses for fast figure runs) with
// a reproducible demand set.
func quickScaleEnergyCase() (*Owan, *topology.LinkSet, []alloc.Demand) {
	net := topology.ISP(25, 8, 1)
	o := newOwan(net, 1)
	rng := rand.New(rand.NewSource(2))
	var ts []*transfer.Transfer
	for i := 0; i < 100; i++ {
		s, d := rng.Intn(25), rng.Intn(25)
		if s == d {
			continue
		}
		ts = append(ts, transfer.NewTransfer(transfer.Request{
			ID: i, Src: s, Dst: d, SizeGbits: 5000, Deadline: transfer.NoDeadline,
		}))
	}
	return o, topology.InitialTopology(net), alloc.DemandsFromTransfers(ts, 300)
}

// TestEnergyMatchesPlanPath pins the lean energy evaluation (record-free
// provisioning + flat allocator) to the recording path the controller uses
// for its final answer: both must compute the same throughput for the same
// topology, on the initial topology and on random neighbors of it.
func TestEnergyMatchesPlanPath(t *testing.T) {
	o, s, demands := quickScaleEnergyCase()
	cur := s
	for i := 0; i < 40; i++ {
		lean := o.Energy(cur, demands)
		plan := o.opt.ProvisionTopology(cur)
		eff := plan.Effective(cur.N)
		ref := alloc.Greedy(eff, o.cfg.Net.ThetaGbps, demands).Throughput
		if lean != ref {
			t.Fatalf("step %d: lean energy %v != plan-path energy %v", i, lean, ref)
		}
		if n := o.ComputeNeighbor(cur); n != nil {
			cur = n
		}
	}
}

// TestEnergySteadyStateAllocs bounds the allocations of a full energy
// evaluation (optical realization + greedy allocation). A handful of map
// writes for the effective LinkSet remain; the per-candidate graph, queue,
// and path structures must not be reallocated.
func TestEnergySteadyStateAllocs(t *testing.T) {
	o, s, demands := quickScaleEnergyCase()
	o.Energy(s, demands) // warm the scratch buffers
	if avg := testing.AllocsPerRun(10, func() {
		o.Energy(s, demands)
	}); avg > 4 {
		t.Errorf("Energy allocates %v objects/op in steady state, want <= 4", avg)
	}
}

// BenchmarkEnergy measures one annealing energy evaluation on the ISP
// quick-scale topology — the inner loop of the search, executed thousands
// of times per slot.
func BenchmarkEnergy(b *testing.B) {
	o, s, demands := quickScaleEnergyCase()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Energy(s, demands)
	}
}

// ispScaleEnergyCase builds an ISP100-class energy case: a >64-site network
// where the allocator and optical layer run their multi-word mask paths.
func ispScaleEnergyCase(sites int) (*Owan, *topology.LinkSet, []alloc.Demand) {
	net := topology.ISP(sites, 10, 1)
	o := newOwan(net, 1)
	rng := rand.New(rand.NewSource(2))
	var ts []*transfer.Transfer
	for i := 0; i < 2*sites; i++ {
		s, d := rng.Intn(sites), rng.Intn(sites)
		if s == d {
			continue
		}
		ts = append(ts, transfer.NewTransfer(transfer.Request{
			ID: i, Src: s, Dst: d, SizeGbits: 5000, Deadline: transfer.NoDeadline,
		}))
	}
	return o, topology.InitialTopology(net), alloc.DemandsFromTransfers(ts, 300)
}

func benchEnergyScale(b *testing.B, sites int, scalar bool) {
	o, s, demands := ispScaleEnergyCase(sites)
	o.al.SetScalarFallback(scalar)
	o.opt.SetScalarFallback(scalar)
	o.Energy(s, demands) // warm the scratch buffers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Energy(s, demands)
	}
}

// BenchmarkEnergyISP100 measures the energy evaluation past the 64-site
// single-word limit: "mask" is the production configuration (multi-word
// bitset BFS in the allocator, multi-word reach masks in the optical layer),
// "scalar" forces both layers onto their scalar/materialized fallbacks — the
// pre-bitset behavior for >64 sites. Results are bit-identical (pinned by
// the wide differential tests); the ratio isolates the per-BFS scan
// advantage of the bitset walk. The scalar fallback keeps its failure-cut
// memo and CSR adjacency, which already answer a large share of queries, so
// the measured gap is the word-parallel labeling itself (see DESIGN.md §9
// for the measured numbers and why greedy's bottleneck-take bounds them).
func BenchmarkEnergyISP100(b *testing.B) {
	b.Run("mask", func(b *testing.B) { benchEnergyScale(b, 100, false) })
	b.Run("scalar", func(b *testing.B) { benchEnergyScale(b, 100, true) })
}

// BenchmarkEnergyISP200 extends the scaling curve to 200 sites (mask path
// only; the scalar fallback is measured at 100 sites).
func BenchmarkEnergyISP200(b *testing.B) {
	benchEnergyScale(b, 200, false)
}

// TestEnergyISP100SteadyStateAllocs holds the >64-site energy evaluation to
// the same allocation bound as the quick-scale one: the multi-word rows grow
// once and are reused — scale must not reintroduce per-candidate allocation.
func TestEnergyISP100SteadyStateAllocs(t *testing.T) {
	o, s, demands := ispScaleEnergyCase(100)
	o.Energy(s, demands) // warm the scratch buffers
	if avg := testing.AllocsPerRun(10, func() {
		o.Energy(s, demands)
	}); avg > 4 {
		t.Errorf("ISP100 Energy allocates %v objects/op in steady state, want <= 4", avg)
	}
}
