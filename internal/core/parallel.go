package core

import (
	"bytes"

	"owan/internal/alloc"
	"owan/internal/optical"
	"owan/internal/topology"
)

// This file implements the batch evaluation machinery behind the annealing
// search: a worker pool where every worker owns a cloned optical.State (so
// provisioning never shares mutable state across goroutines) and an LRU
// energy memoization cache keyed by the canonical topology encoding.
//
// Determinism contract: the search trajectory is a pure function of
// (Config.Seed, Config.BatchSize). Neighbor generation and acceptance both
// happen on the coordinating goroutine using the single seeded RNG; workers
// only compute energies, which are pure functions of (topology, demands) and
// therefore identical no matter which goroutine computes them or in which
// order results arrive. Workers and GOMAXPROCS never change the result.
//
// With Config.DeltaEval the pool additionally carries the incremental
// evaluation state: one immutable optical.Snapshot of the current base
// topology, rebuilt whenever the search accepts a move (ev.snapGen counts
// rebuilds), which workers load once and then evaluate candidates against
// via ProvisionDelta + ThroughputPatched + RevertDelta. A delta whose trust
// gate fails is recomputed on the cold path and counted in DeltaFallbacks —
// never silently diverged.

// energyCache is an LRU map from canonical topology keys to energies,
// bucketed by a 64-bit hash with full key-byte verification on every hit, so
// a hash collision can never return the wrong energy. It is only ever
// touched by the coordinating goroutine, so it needs no locking.
//
// The implementation is a slice arena with intrusive index-based links — no
// container/list nodes, no interface boxing, and no per-put key copy to a
// fresh allocation: an inserted key reuses its slot's retained buffer
// (evicted entries donate theirs), so a warmed-up cache performs zero heap
// allocations per operation. Energies depend on the demand set, which
// changes every slot, so the persistent evaluator calls reset() at the start
// of each search — the arena and its key buffers survive, the entries do
// not.
type energyCache struct {
	cap     int
	m       map[uint64]int32 // hash -> index of the bucket's chain head
	entries []cacheEntry     // arena; slots [0, used) are live
	used    int
	// Intrusive LRU list over arena indices: head = most recently used.
	head, tail int32
	// Shared backing for first-touch key copies: entries carve their key
	// capacity from here in blocks, so filling a fresh cache costs O(log n)
	// allocations rather than one per entry. Once carved, a slot's buffer is
	// retained and reused across evictions and resets.
	keyBlock []byte
}

type cacheEntry struct {
	hash       uint64
	key        []byte
	energy     float64
	prev, next int32 // LRU neighbors, -1 terminated
	bnext      int32 // next entry in the same hash bucket, -1 terminated
}

func newEnergyCache(capacity int) *energyCache {
	if capacity <= 0 {
		return nil
	}
	return &energyCache{
		cap:     capacity,
		m:       make(map[uint64]int32, capacity),
		entries: make([]cacheEntry, 0, capacity),
		head:    -1,
		tail:    -1,
	}
}

// find returns the arena index of the exact key (hash selects the bucket,
// the full key bytes decide), or -1.
func (c *energyCache) find(hash uint64, key []byte) int32 {
	idx, ok := c.m[hash]
	if !ok {
		return -1
	}
	for ; idx >= 0; idx = c.entries[idx].bnext {
		if bytes.Equal(c.entries[idx].key, key) {
			return idx
		}
	}
	return -1
}

func (c *energyCache) moveToFront(idx int32) {
	if c.head == idx {
		return
	}
	e := &c.entries[idx]
	if e.prev >= 0 {
		c.entries[e.prev].next = e.next
	}
	if e.next >= 0 {
		c.entries[e.next].prev = e.prev
	}
	if c.tail == idx {
		c.tail = e.prev
	}
	e.prev = -1
	e.next = c.head
	if c.head >= 0 {
		c.entries[c.head].prev = idx
	}
	c.head = idx
	if c.tail < 0 {
		c.tail = idx
	}
}

// get returns the cached energy for the exact key, verifying the full key
// bytes — the hash only selects the bucket.
func (c *energyCache) get(hash uint64, key []byte) (float64, bool) {
	idx := c.find(hash, key)
	if idx < 0 {
		return 0, false
	}
	c.moveToFront(idx)
	return c.entries[idx].energy, true
}

// bucketRemove unlinks an entry from its hash bucket's chain.
func (c *energyCache) bucketRemove(idx int32) {
	e := &c.entries[idx]
	if head := c.m[e.hash]; head == idx {
		if e.bnext < 0 {
			delete(c.m, e.hash)
		} else {
			c.m[e.hash] = e.bnext
		}
		return
	}
	for p := c.m[e.hash]; p >= 0; p = c.entries[p].bnext {
		if c.entries[p].bnext == idx {
			c.entries[p].bnext = e.bnext
			return
		}
	}
}

// put inserts or refreshes an entry. The key bytes are copied into the
// slot's retained buffer, so callers reuse their key buffers across batches
// and the cache reuses its own across evictions.
func (c *energyCache) put(hash uint64, key []byte, energy float64) {
	if idx := c.find(hash, key); idx >= 0 {
		c.entries[idx].energy = energy
		c.moveToFront(idx)
		return
	}
	var idx int32
	if c.used < c.cap {
		if c.used == len(c.entries) {
			c.entries = append(c.entries, cacheEntry{})
		}
		idx = int32(c.used)
		c.used++
	} else {
		// Evict the LRU tail, reusing its slot and key buffer.
		idx = c.tail
		c.bucketRemove(idx)
		e := &c.entries[idx]
		c.tail = e.prev
		if c.tail >= 0 {
			c.entries[c.tail].next = -1
		}
		if c.head == idx {
			c.head = -1
		}
	}
	e := &c.entries[idx]
	e.hash = hash
	c.copyKey(e, key)
	e.energy = energy
	if h, ok := c.m[hash]; ok {
		e.bnext = h
	} else {
		e.bnext = -1
	}
	c.m[hash] = idx
	e.prev = -1
	e.next = c.head
	if c.head >= 0 {
		c.entries[c.head].prev = idx
	}
	c.head = idx
	if c.tail < 0 {
		c.tail = idx
	}
}

// copyKey stores key into the slot's retained buffer. Slots whose buffer is
// too small (first touch, or a longer key after eviction) carve a fresh
// capacity from the shared key block; keys within one search have near-equal
// lengths (same network, port-bound link counts), so a quarter of slack
// makes re-carving rare.
func (c *energyCache) copyKey(e *cacheEntry, key []byte) {
	if cap(e.key) >= len(key) {
		e.key = append(e.key[:0], key...)
		return
	}
	need := len(key) + len(key)/4
	if len(c.keyBlock)+need > cap(c.keyBlock) {
		// Old carvings keep referencing their own backing arrays.
		c.keyBlock = make([]byte, 0, min(max(64*need, 4096), max(1<<16, need)))
	}
	carved := c.keyBlock[len(c.keyBlock) : len(c.keyBlock) : len(c.keyBlock)+need]
	c.keyBlock = c.keyBlock[:len(c.keyBlock)+need]
	e.key = append(carved, key...)
}

// reset empties the cache while keeping the arena and every slot's key
// buffer for reuse — the per-slot refresh of the persistent evaluator.
func (c *energyCache) reset() {
	clear(c.m)
	c.used = 0
	c.head, c.tail = -1, -1
}

// evalJob asks a worker for the energy of one candidate: a materialized
// topology (classic mode) or a move list against the current snapshot base
// (delta mode; s stays nil and the worker materializes only on fallback).
type evalJob struct {
	idx   int
	s     *topology.LinkSet
	moves []swapMove
}

type evalResult struct {
	idx    int
	energy float64
}

// workerCtx is the per-goroutine evaluation state: an exclusively owned
// (optical state, allocator) pair plus the delta journal and scratch.
// loadedGen tracks which snapshot generation the optical state currently
// holds (-1 after a cold evaluation trashed it); baseGen tracks which
// generation the allocator's warm base corresponds to.
type workerCtx struct {
	id  int // worker slot for the per-worker counters
	opt *optical.State
	al  *alloc.Allocator

	j              optical.Journal
	acc            []pairDelta
	removed, added []topology.Link
	// Cold-fallback scratch: the candidate's requested-count patch, its
	// merged (U, V)-sorted enumeration, and the effective enumeration the
	// provisioner builds from it. keyBuf holds provision-cache keys.
	patch, merged, eff []topology.Link
	keyBuf             []byte
	loadedGen          int
	baseGen            int
}

// evaluator computes candidate energies, either inline on the controller's
// own optical state (workers <= 1) or on a pool of workers with cloned
// states. One evaluator lives as long as its Owan: the worker goroutines,
// per-worker (optical.State, Allocator) scratch, delta snapshot, and cache
// arenas all persist across ComputeNetworkState calls — begin() refreshes
// the per-search state (counters, memoized energies, which depend on the
// slot's demand set) without discarding any warm buffer, and the snapshot
// is only rebuilt when the base topology's canonical key actually changed,
// which it almost never has at the start of a warm-started slot.
type evaluator struct {
	o       *Owan
	demands []alloc.Demand
	workers int
	cache   *energyCache

	jobs    chan evalJob
	results chan evalResult
	done    chan struct{}
	running bool
	wctxs   []*workerCtx // persistent pool contexts (workers > 1)

	hits, misses int
	evals        []int // energy computations per worker slot

	// pending reuses the per-batch job buffer across batches.
	pending []evalJob

	// Delta-mode state. snap is rebuilt (generation snapGen) whenever the
	// base topology's canonical key changes (snapKey remembers it across
	// slots); between batch barriers it is immutable and shared read-only
	// with the workers, as is base (read only on the cold fallback path).
	// ctx0 is the inline context for workers <= 1 and wraps the controller's
	// own state.
	delta              bool
	snap               optical.Snapshot
	snapGen            int
	snapSeq            int    // baseSeq the snapshot was built for (per search)
	snapKey            []byte // canonical key of the snapshot's base (cross-slot)
	baseKeyBuf         []byte
	base               *topology.LinkSet
	baseLinks          []topology.Link // base's sorted enumeration, set per batch
	builds             int
	dHits, dFalls      []int // per worker slot, like evals
	provHits, provMiss []int // provision-cache activity per worker slot
	ctx0               workerCtx
	keyBufs            [][]byte
	hashes             []uint64
	candLinks          []topology.Link // scratch for classic-mode cache keys
	baseKeyLinks       []topology.Link // scratch for the snapshot-gate key
	accKey             []pairDelta
	patchKey           []topology.Link
	mergedKey          []topology.Link
}

// newEvaluator builds the evaluator without starting any goroutine; begin
// starts (or restarts) the pool lazily.
func newEvaluator(o *Owan) *evaluator {
	ev := &evaluator{
		o:       o,
		workers: o.cfg.Workers,
		cache:   newEnergyCache(o.cfg.EnergyCacheSize),
		delta:   o.cfg.DeltaEval,
	}
	if ev.workers < 1 {
		ev.workers = 1
	}
	ev.evals = make([]int, ev.workers)
	ev.dHits = make([]int, ev.workers)
	ev.dFalls = make([]int, ev.workers)
	ev.provHits = make([]int, ev.workers)
	ev.provMiss = make([]int, ev.workers)
	ev.snapSeq = -1
	ev.ctx0 = workerCtx{opt: o.opt, al: o.al, loadedGen: -1, baseGen: -1}
	if ev.workers > 1 {
		for w := 0; w < ev.workers; w++ {
			ev.wctxs = append(ev.wctxs, &workerCtx{
				id: w, opt: o.opt.Clone(), al: alloc.NewAllocator(),
				loadedGen: -1, baseGen: -1,
			})
		}
	}
	return ev
}

// begin readies the evaluator for one search: fresh demand set and counters,
// an emptied (but buffer-retaining) energy cache — energies depend on the
// demands, so entries never survive a slot — and a running pool. The
// controller's own optical state was overwritten by the previous slot's
// final provisioning, so the inline context forgets what it holds; worker
// clones still hold exactly the snapshot occupancy (RevertDelta restores it
// after every delta), so their generation counters stay valid and a
// retained snapshot lets them skip the reload entirely.
func (ev *evaluator) begin(demands []alloc.Demand) {
	ev.demands = demands
	ev.hits, ev.misses, ev.builds = 0, 0, 0
	for i := range ev.evals {
		ev.evals[i], ev.dHits[i], ev.dFalls[i] = 0, 0, 0
		ev.provHits[i], ev.provMiss[i] = 0, 0
	}
	ev.snapSeq = -1
	ev.ctx0.loadedGen = -1
	ev.ctx0.baseGen = -1 // the final Reallocate of the previous slot ran on o.al
	if ev.cache != nil {
		ev.cache.reset()
	}
	ev.ensureStarted()
}

// ensureStarted (re)spawns the worker goroutines. The pool contexts persist
// across restarts, so a closed-then-reused controller keeps its warm scratch.
func (ev *evaluator) ensureStarted() {
	if ev.workers <= 1 || ev.running {
		return
	}
	// runPending pushes a whole batch before draining any result, so the
	// channels must hold the largest batch the search can submit: the
	// tempered loop flattens all replicas' candidates into one call.
	depth := ev.o.cfg.BatchSize * ev.o.cfg.Replicas
	ev.jobs = make(chan evalJob, depth)
	ev.results = make(chan evalResult, depth)
	ev.done = make(chan struct{})
	for _, ctx := range ev.wctxs {
		go ev.worker(ctx.id, ctx)
	}
	ev.running = true
}

// worker evaluates jobs on its private optical state and allocator until
// the pool closes. Owning both means a worker's steady-state energy
// evaluations reuse the same scratch buffers job after job, so the hot loop
// does not allocate.
func (ev *evaluator) worker(id int, ctx *workerCtx) {
	for {
		select {
		case job := <-ev.jobs:
			ev.evals[id]++ // exclusive slot; read by coordinator after the batch barrier
			if job.moves != nil {
				e, hit := ev.deltaEnergy(ctx, job.moves)
				if hit {
					ev.dHits[id]++
				} else {
					ev.dFalls[id]++
				}
				ev.results <- evalResult{idx: job.idx, energy: e}
			} else {
				ev.results <- evalResult{idx: job.idx, energy: ev.energyFull(ctx, job.s)}
			}
		case <-ev.done:
			return
		}
	}
}

// energyFull is the classic (materialized-candidate) energy with the
// demand-independent provision LRU consulted first: on a hit the optical
// provisioning — the expensive half of an energy — is skipped entirely and
// the allocator runs on the cached effective enumeration, which is exactly
// what ProvisionEffective would have produced (the map is a pure function
// of the topology). Used by pool workers, the inline path, and the initial
// evaluation of every search; safe concurrently, the cache locks.
func (ev *evaluator) energyFull(ctx *workerCtx, s *topology.LinkSet) float64 {
	theta := ev.o.cfg.Net.ThetaGbps
	pc := ev.o.provCache
	if pc == nil {
		ctx.loadedGen = -1 // provisioning overwrites this context's occupancy
		return energyOn(ctx.opt, ctx.al, theta, s, ev.demands)
	}
	// Enumerate into the retained scratch and key from it: s.AppendKey would
	// allocate a fresh link slice per evaluation (LinkSet.Links).
	ctx.merged = s.AppendLinks(ctx.merged[:0])
	key := topology.AppendKeyFromLinks(ctx.keyBuf[:0], s.N, ctx.merged)
	ctx.keyBuf = key
	h := topology.KeyHash(key)
	if links, n, ok := pc.get(h, key, ctx.eff[:0]); ok {
		ctx.eff = links
		ev.provHits[ctx.id]++
		return ctx.al.ThroughputLinks(n, links, theta, ev.demands)
	}
	ev.provMiss[ctx.id]++
	ctx.loadedGen = -1 // provisioning overwrites this context's occupancy
	ctx.eff = ctx.opt.ProvisionEffectiveLinks(ctx.merged, ctx.eff[:0])
	pc.put(h, key, s.N, ctx.eff, ctx.opt.DirectOnly(), ctx.opt.SegmentOnly())
	return ctx.al.ThroughputLinks(s.N, ctx.eff, theta, ev.demands)
}

// deltaEnergy evaluates one move-list candidate against the current
// snapshot: load the snapshot occupancy if this context doesn't hold it,
// apply the net link deltas through ProvisionDelta, and — when the trust
// gate passes — run the allocator's patched warm path. An untrusted delta is
// reverted and recomputed cold (materializing the candidate), which trashes
// the context's occupancy and warm base; the generation counters bring both
// back on the next trusted evaluation. Reports whether the trusted fast path
// was taken.
func (ev *evaluator) deltaEnergy(ctx *workerCtx, moves []swapMove) (float64, bool) {
	theta := ev.o.cfg.Net.ThetaGbps
	ctx.acc = accumMoves(moves, ctx.acc[:0])
	// The snapshot's own trust bits gate every delta against it: if the base
	// provisioning had a resource-driven shortfall or a resource is near
	// exhaustion, no delta can ever be trusted, so skip the attempt (and the
	// snapshot load it needs) and go straight to the cold evaluation.
	// Statically infeasible base links are fine — they build zero circuits
	// in every provisioning order (see optical.Snapshot.TrustedBase).
	if ev.snap.TrustedBase() {
		if ctx.loadedGen != ev.snapGen {
			ctx.opt.LoadSnapshot(&ev.snap)
			ctx.loadedGen = ev.snapGen
		}
		if ctx.baseGen != ev.snapGen {
			ctx.al.SetBaseLinks(ev.snap.N(), ev.snap.EffLinks(), theta)
			ctx.baseGen = ev.snapGen
		}
		ctx.removed, ctx.added = ctx.removed[:0], ctx.added[:0]
		for _, pd := range ctx.acc {
			if pd.d < 0 {
				ctx.removed = append(ctx.removed, topology.Link{U: pd.u, V: pd.v, Count: -pd.d})
			} else {
				ctx.added = append(ctx.added, topology.Link{U: pd.u, V: pd.v, Count: pd.d})
			}
		}
		patch, trusted := ctx.opt.ProvisionDelta(&ev.snap, ctx.removed, ctx.added, &ctx.j)
		if trusted {
			e := ctx.al.ThroughputPatched(patch, ev.demands)
			ctx.opt.RevertDelta(&ctx.j)
			return e, true
		}
		ctx.opt.RevertDelta(&ctx.j)
	}
	// Cold fallback, on flat enumerations end to end: merge the move patch
	// into the base enumeration (exactly what materializing the candidate
	// and re-enumerating it would produce), provision it, and allocate on
	// the effective links — the same circuit and allocation sequence as a
	// from-scratch evaluation, with no LinkSet built on either side. The
	// provision LRU short-circuits the provisioning when this candidate's
	// effective links are already known — in which case the context's
	// occupancy (and its claim on the loaded snapshot) survives untouched.
	ctx.patch = ctx.patch[:0]
	for _, pd := range ctx.acc {
		ctx.patch = append(ctx.patch, topology.Link{U: pd.u, V: pd.v, Count: linksGet(ev.baseLinks, pd.u, pd.v) + pd.d})
	}
	ctx.merged = topology.MergePatch(ctx.merged[:0], ev.baseLinks, ctx.patch)
	if pc := ev.o.provCache; pc != nil {
		key := topology.AppendKeyFromLinks(ctx.keyBuf[:0], ev.snap.N(), ctx.merged)
		ctx.keyBuf = key
		h := topology.KeyHash(key)
		if links, n, ok := pc.get(h, key, ctx.eff[:0]); ok {
			ctx.eff = links
			ev.provHits[ctx.id]++
			return ctx.al.ThroughputLinks(n, links, theta, ev.demands), false
		}
		ev.provMiss[ctx.id]++
		ctx.loadedGen = -1 // the cold provisioning below overwrites the occupancy
		ctx.eff = ctx.opt.ProvisionEffectiveLinks(ctx.merged, ctx.eff[:0])
		pc.put(h, key, ev.snap.N(), ctx.eff, ctx.opt.DirectOnly(), ctx.opt.SegmentOnly())
		return ctx.al.ThroughputLinks(ev.snap.N(), ctx.eff, theta, ev.demands), false
	}
	ctx.loadedGen = -1 // the cold provisioning below overwrites the occupancy
	ctx.eff = ctx.opt.ProvisionEffectiveLinks(ctx.merged, ctx.eff[:0])
	return ctx.al.ThroughputLinks(ev.snap.N(), ctx.eff, theta, ev.demands), false
}

// runPending evaluates the batch's uncached jobs, inline or on the pool.
func (ev *evaluator) runPending(out []float64) {
	if ev.workers <= 1 {
		for _, job := range ev.pending {
			ev.evals[0]++
			if job.moves != nil {
				e, hit := ev.deltaEnergy(&ev.ctx0, job.moves)
				if hit {
					ev.dHits[0]++
				} else {
					ev.dFalls[0]++
				}
				out[job.idx] = e
			} else {
				out[job.idx] = ev.energyFull(&ev.ctx0, job.s)
			}
		}
		return
	}
	for _, job := range ev.pending {
		ev.jobs <- job
	}
	for range ev.pending {
		r := <-ev.results
		out[r.idx] = r.energy
	}
}

func (ev *evaluator) sizeOut(n int, out []float64) []float64 {
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = 0
	}
	return out
}

// energies returns the energy of every candidate with needEval[i] set; other
// slots are left at zero. Cache lookups and fills happen here on the
// coordinating goroutine, so a batch containing a previously seen topology
// costs no evaluation at all.
func (ev *evaluator) energies(cands []*topology.LinkSet, needEval []bool, out []float64) []float64 {
	out = ev.sizeOut(len(cands), out)
	ev.pending = ev.pending[:0]
	if ev.cache != nil {
		ev.growKeys(len(cands))
	}
	for i, s := range cands {
		if !needEval[i] {
			continue
		}
		if ev.cache != nil {
			ev.candLinks = s.AppendLinks(ev.candLinks[:0])
			key := topology.AppendKeyFromLinks(ev.keyBufs[i][:0], s.N, ev.candLinks)
			ev.keyBufs[i] = key
			ev.hashes[i] = topology.KeyHash(key)
			if e, ok := ev.cache.get(ev.hashes[i], key); ok {
				ev.hits++
				out[i] = e
				if ev.o.onCacheHit != nil {
					ev.o.onCacheHit(s, e)
				}
				continue
			}
		}
		ev.pending = append(ev.pending, evalJob{idx: i, s: s})
	}
	ev.misses += len(ev.pending)
	ev.runPending(out)
	if ev.cache != nil {
		for _, job := range ev.pending {
			ev.cache.put(ev.hashes[job.idx], ev.keyBufs[job.idx], out[job.idx])
		}
	}
	return out
}

// energiesDelta is the DeltaEval counterpart of energies: candidates are
// move lists against base. baseLinks must be base's sorted enumeration, and
// baseSeq a counter the caller bumps whenever base changes — it gates the
// snapshot rebuild (pointer identity is not enough, since a later base clone
// can reuse a freed address). The snapshot build runs on the controller's
// own optical state between batch barriers, so no worker is touching its
// clone concurrently.
func (ev *evaluator) energiesDelta(base *topology.LinkSet, baseLinks []topology.Link, baseSeq int, moves [][]swapMove, needEval []bool, out []float64) []float64 {
	out = ev.sizeOut(len(moves), out)
	ev.baseLinks = baseLinks
	if baseSeq != ev.snapSeq {
		// The per-search sequence number says the base may have changed, but
		// across slots it usually hasn't: a warm-started slot anneals from the
		// previous slot's accepted topology, whose snapshot this evaluator
		// still holds. Compare canonical keys and rebuild only on a real
		// change — on a match snapGen stays put, so pool workers keep their
		// loaded occupancy and warm allocator base too.
		ev.baseKeyLinks = base.AppendLinks(ev.baseKeyLinks[:0])
		key := topology.AppendKeyFromLinks(ev.baseKeyBuf[:0], base.N, ev.baseKeyLinks)
		ev.baseKeyBuf = key
		if ev.snapKey == nil || !bytes.Equal(key, ev.snapKey) {
			ev.o.opt.BuildSnapshot(&ev.snap, base)
			ev.snapGen++
			ev.builds++
			ev.snapKey = append(ev.snapKey[:0], key...)
			// BuildSnapshot left the controller's state holding exactly the
			// snapshot occupancy; the inline context is that same state.
			if ev.workers <= 1 {
				ev.ctx0.loadedGen = ev.snapGen
			}
		}
		ev.snapSeq = baseSeq
		ev.base = base
	}
	ev.pending = ev.pending[:0]
	if ev.cache != nil {
		ev.growKeys(len(moves))
	}
	for i, mv := range moves {
		if !needEval[i] {
			continue
		}
		if ev.cache != nil {
			key, h := ev.deltaKey(i, base, baseLinks, mv)
			if e, ok := ev.cache.get(h, key); ok {
				ev.hits++
				out[i] = e
				continue
			}
		}
		ev.pending = append(ev.pending, evalJob{idx: i, moves: mv})
	}
	ev.misses += len(ev.pending)
	ev.runPending(out)
	if ev.cache != nil {
		for _, job := range ev.pending {
			ev.cache.put(ev.hashes[job.idx], ev.keyBufs[job.idx], out[job.idx])
		}
	}
	return out
}

// deltaKey computes candidate i's canonical cache key without materializing
// it: merge the move patch into the retained base enumeration and encode.
// The encoding is pinned byte-identical to LinkSet.Key, so delta-mode and
// classic entries interoperate.
func (ev *evaluator) deltaKey(i int, base *topology.LinkSet, baseLinks []topology.Link, moves []swapMove) ([]byte, uint64) {
	ev.accKey = accumMoves(moves, ev.accKey[:0])
	ev.patchKey = ev.patchKey[:0]
	for _, pd := range ev.accKey {
		ev.patchKey = append(ev.patchKey, topology.Link{U: pd.u, V: pd.v, Count: base.Get(pd.u, pd.v) + pd.d})
	}
	ev.mergedKey = topology.MergePatch(ev.mergedKey[:0], baseLinks, ev.patchKey)
	key := topology.AppendKeyFromLinks(ev.keyBufs[i][:0], base.N, ev.mergedKey)
	ev.keyBufs[i] = key
	h := topology.KeyHash(key)
	ev.hashes[i] = h
	return key, h
}

func (ev *evaluator) growKeys(n int) {
	for len(ev.keyBufs) < n {
		ev.keyBufs = append(ev.keyBufs, nil)
	}
	if cap(ev.hashes) < n {
		ev.hashes = make([]uint64, n)
	}
	ev.hashes = ev.hashes[:n]
}

// finish copies the search's counters into stats. The pool keeps running —
// the evaluator is controller-lifetime state, stopped by Owan.Close.
func (ev *evaluator) finish(stats *SearchStats) {
	stats.CacheHits = ev.hits
	stats.CacheMisses = ev.misses
	stats.WorkerEvals = append([]int(nil), ev.evals...)
	stats.SnapshotBuilds = ev.builds
	for _, h := range ev.dHits {
		stats.DeltaHits += h
	}
	for _, f := range ev.dFalls {
		stats.DeltaFallbacks += f
	}
	for _, h := range ev.provHits {
		stats.ProvisionHits += h
	}
	for _, m := range ev.provMiss {
		stats.ProvisionMisses += m
	}
}

// close stops the worker pool; it is idempotent, and ensureStarted can spin
// the same contexts back up afterwards.
func (ev *evaluator) close() {
	if !ev.running {
		return
	}
	ev.running = false
	close(ev.done)
}
