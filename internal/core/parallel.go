package core

import (
	"bytes"
	"container/list"

	"owan/internal/alloc"
	"owan/internal/optical"
	"owan/internal/topology"
)

// This file implements the batch evaluation machinery behind the annealing
// search: a worker pool where every worker owns a cloned optical.State (so
// provisioning never shares mutable state across goroutines) and an LRU
// energy memoization cache keyed by the canonical topology encoding.
//
// Determinism contract: the search trajectory is a pure function of
// (Config.Seed, Config.BatchSize). Neighbor generation and acceptance both
// happen on the coordinating goroutine using the single seeded RNG; workers
// only compute energies, which are pure functions of (topology, demands) and
// therefore identical no matter which goroutine computes them or in which
// order results arrive. Workers and GOMAXPROCS never change the result.
//
// With Config.DeltaEval the pool additionally carries the incremental
// evaluation state: one immutable optical.Snapshot of the current base
// topology, rebuilt whenever the search accepts a move (ev.snapGen counts
// rebuilds), which workers load once and then evaluate candidates against
// via ProvisionDelta + ThroughputPatched + RevertDelta. A delta whose trust
// gate fails is recomputed on the cold path and counted in DeltaFallbacks —
// never silently diverged.

// energyCache is an LRU map from canonical topology keys to energies,
// bucketed by a 64-bit hash with full key-byte verification on every hit, so
// a hash collision can never return the wrong energy. It is only ever
// touched by the coordinating goroutine, so it needs no locking. Energies
// depend on the demand set, which changes every slot, so the cache lives for
// one ComputeNetworkState invocation.
type energyCache struct {
	cap int
	m   map[uint64][]*list.Element
	ll  *list.List // front = most recently used
}

type cacheEntry struct {
	hash   uint64
	key    []byte
	energy float64
}

func newEnergyCache(capacity int) *energyCache {
	if capacity <= 0 {
		return nil
	}
	return &energyCache{cap: capacity, m: make(map[uint64][]*list.Element, capacity), ll: list.New()}
}

// get returns the cached energy for the exact key, verifying the full key
// bytes — the hash only selects the bucket.
func (c *energyCache) get(hash uint64, key []byte) (float64, bool) {
	for _, el := range c.m[hash] {
		if e := el.Value.(cacheEntry); bytes.Equal(e.key, key) {
			c.ll.MoveToFront(el)
			return e.energy, true
		}
	}
	return 0, false
}

// put inserts or refreshes an entry. The key is copied: callers reuse their
// key buffers across batches.
func (c *energyCache) put(hash uint64, key []byte, energy float64) {
	bucket := c.m[hash]
	for _, el := range bucket {
		if e := el.Value.(cacheEntry); bytes.Equal(e.key, key) {
			el.Value = cacheEntry{hash: hash, key: e.key, energy: energy}
			c.ll.MoveToFront(el)
			return
		}
	}
	el := c.ll.PushFront(cacheEntry{hash: hash, key: append([]byte(nil), key...), energy: energy})
	c.m[hash] = append(bucket, el)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(cacheEntry)
		b := c.m[e.hash]
		for i, x := range b {
			if x == oldest {
				b[i] = b[len(b)-1]
				b = b[:len(b)-1]
				break
			}
		}
		if len(b) == 0 {
			delete(c.m, e.hash)
		} else {
			c.m[e.hash] = b
		}
	}
}

// evalJob asks a worker for the energy of one candidate: a materialized
// topology (classic mode) or a move list against the current snapshot base
// (delta mode; s stays nil and the worker materializes only on fallback).
type evalJob struct {
	idx   int
	s     *topology.LinkSet
	moves []swapMove
}

type evalResult struct {
	idx    int
	energy float64
}

// workerCtx is the per-goroutine evaluation state: an exclusively owned
// (optical state, allocator) pair plus the delta journal and scratch.
// loadedGen tracks which snapshot generation the optical state currently
// holds (-1 after a cold evaluation trashed it); baseGen tracks which
// generation the allocator's warm base corresponds to.
type workerCtx struct {
	opt *optical.State
	al  *alloc.Allocator

	j              optical.Journal
	acc            []pairDelta
	removed, added []topology.Link
	// Cold-fallback scratch: the candidate's requested-count patch, its
	// merged (U, V)-sorted enumeration, and the effective enumeration the
	// provisioner builds from it.
	patch, merged, eff []topology.Link
	loadedGen          int
	baseGen            int
}

// evaluator computes candidate energies for one search invocation, either
// inline on the controller's own optical state (workers <= 1) or on a pool
// of workers with cloned states.
type evaluator struct {
	o       *Owan
	demands []alloc.Demand
	workers int
	cache   *energyCache

	jobs    chan evalJob
	results chan evalResult
	done    chan struct{}

	hits, misses int
	evals        []int // energy computations per worker slot
	closed       bool

	// pending reuses the per-batch job buffer across batches.
	pending []evalJob

	// Delta-mode state. snap is rebuilt (generation snapGen) whenever the
	// base topology changes; between batch barriers it is immutable and
	// shared read-only with the workers, as is base (read only on the cold
	// fallback path). ctx0 is the inline context for workers <= 1 and wraps
	// the controller's own state.
	delta         bool
	snap          optical.Snapshot
	snapGen       int
	snapSeq       int // baseSeq the snapshot was built for
	base          *topology.LinkSet
	baseLinks     []topology.Link // base's sorted enumeration, set per batch
	builds        int
	dHits, dFalls []int // per worker slot, like evals
	ctx0          workerCtx
	keyBufs       [][]byte
	hashes        []uint64
	accKey        []pairDelta
	patchKey      []topology.Link
	mergedKey     []topology.Link
}

// newEvaluator starts the pool. With workers <= 1 no goroutines are spawned
// and evaluation runs inline, which is exactly the pre-parallel engine.
func newEvaluator(o *Owan, demands []alloc.Demand) *evaluator {
	ev := &evaluator{
		o:       o,
		demands: demands,
		workers: o.cfg.Workers,
		cache:   newEnergyCache(o.cfg.EnergyCacheSize),
		delta:   o.cfg.DeltaEval,
	}
	if ev.workers < 1 {
		ev.workers = 1
	}
	ev.evals = make([]int, ev.workers)
	ev.dHits = make([]int, ev.workers)
	ev.dFalls = make([]int, ev.workers)
	ev.snapSeq = -1
	ev.ctx0 = workerCtx{opt: o.opt, al: o.al, loadedGen: -1, baseGen: -1}
	if ev.workers > 1 {
		ev.jobs = make(chan evalJob, o.cfg.BatchSize)
		ev.results = make(chan evalResult, o.cfg.BatchSize)
		ev.done = make(chan struct{})
		for w := 0; w < ev.workers; w++ {
			go ev.worker(w, &workerCtx{
				opt: o.opt.Clone(), al: alloc.NewAllocator(),
				loadedGen: -1, baseGen: -1,
			})
		}
	}
	return ev
}

// worker evaluates jobs on its private optical state and allocator until
// the pool closes. Owning both means a worker's steady-state energy
// evaluations reuse the same scratch buffers job after job, so the hot loop
// does not allocate.
func (ev *evaluator) worker(id int, ctx *workerCtx) {
	theta := ev.o.cfg.Net.ThetaGbps
	for {
		select {
		case job := <-ev.jobs:
			ev.evals[id]++ // exclusive slot; read by coordinator after the batch barrier
			if job.moves != nil {
				e, hit := ev.deltaEnergy(ctx, job.moves)
				if hit {
					ev.dHits[id]++
				} else {
					ev.dFalls[id]++
				}
				ev.results <- evalResult{idx: job.idx, energy: e}
			} else {
				ev.results <- evalResult{idx: job.idx, energy: energyOn(ctx.opt, ctx.al, theta, job.s, ev.demands)}
			}
		case <-ev.done:
			return
		}
	}
}

// deltaEnergy evaluates one move-list candidate against the current
// snapshot: load the snapshot occupancy if this context doesn't hold it,
// apply the net link deltas through ProvisionDelta, and — when the trust
// gate passes — run the allocator's patched warm path. An untrusted delta is
// reverted and recomputed cold (materializing the candidate), which trashes
// the context's occupancy and warm base; the generation counters bring both
// back on the next trusted evaluation. Reports whether the trusted fast path
// was taken.
func (ev *evaluator) deltaEnergy(ctx *workerCtx, moves []swapMove) (float64, bool) {
	theta := ev.o.cfg.Net.ThetaGbps
	ctx.acc = accumMoves(moves, ctx.acc[:0])
	// The snapshot's own trust bits gate every delta against it: if the base
	// provisioning had a resource-driven shortfall or a resource is near
	// exhaustion, no delta can ever be trusted, so skip the attempt (and the
	// snapshot load it needs) and go straight to the cold evaluation.
	// Statically infeasible base links are fine — they build zero circuits
	// in every provisioning order (see optical.Snapshot.TrustedBase).
	if ev.snap.TrustedBase() {
		if ctx.loadedGen != ev.snapGen {
			ctx.opt.LoadSnapshot(&ev.snap)
			ctx.loadedGen = ev.snapGen
		}
		if ctx.baseGen != ev.snapGen {
			ctx.al.SetBaseLinks(ev.snap.N(), ev.snap.EffLinks(), theta)
			ctx.baseGen = ev.snapGen
		}
		ctx.removed, ctx.added = ctx.removed[:0], ctx.added[:0]
		for _, pd := range ctx.acc {
			if pd.d < 0 {
				ctx.removed = append(ctx.removed, topology.Link{U: pd.u, V: pd.v, Count: -pd.d})
			} else {
				ctx.added = append(ctx.added, topology.Link{U: pd.u, V: pd.v, Count: pd.d})
			}
		}
		patch, trusted := ctx.opt.ProvisionDelta(&ev.snap, ctx.removed, ctx.added, &ctx.j)
		if trusted {
			e := ctx.al.ThroughputPatched(patch, ev.demands)
			ctx.opt.RevertDelta(&ctx.j)
			return e, true
		}
		ctx.opt.RevertDelta(&ctx.j)
	}
	// Cold fallback, on flat enumerations end to end: merge the move patch
	// into the base enumeration (exactly what materializing the candidate
	// and re-enumerating it would produce), provision it, and allocate on
	// the effective links — the same circuit and allocation sequence as a
	// from-scratch evaluation, with no LinkSet built on either side.
	ctx.patch = ctx.patch[:0]
	for _, pd := range ctx.acc {
		ctx.patch = append(ctx.patch, topology.Link{U: pd.u, V: pd.v, Count: linksGet(ev.baseLinks, pd.u, pd.v) + pd.d})
	}
	ctx.merged = topology.MergePatch(ctx.merged[:0], ev.baseLinks, ctx.patch)
	ctx.loadedGen = -1 // the cold provisioning below overwrites the occupancy
	ctx.eff = ctx.opt.ProvisionEffectiveLinks(ctx.merged, ctx.eff[:0])
	return ctx.al.ThroughputLinks(ev.snap.N(), ctx.eff, theta, ev.demands), false
}

// runPending evaluates the batch's uncached jobs, inline or on the pool.
func (ev *evaluator) runPending(out []float64) {
	if ev.workers <= 1 {
		for _, job := range ev.pending {
			ev.evals[0]++
			if job.moves != nil {
				e, hit := ev.deltaEnergy(&ev.ctx0, job.moves)
				if hit {
					ev.dHits[0]++
				} else {
					ev.dFalls[0]++
				}
				out[job.idx] = e
			} else {
				out[job.idx] = ev.o.Energy(job.s, ev.demands)
			}
		}
		return
	}
	for _, job := range ev.pending {
		ev.jobs <- job
	}
	for range ev.pending {
		r := <-ev.results
		out[r.idx] = r.energy
	}
}

func (ev *evaluator) sizeOut(n int, out []float64) []float64 {
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = 0
	}
	return out
}

// energies returns the energy of every candidate with needEval[i] set; other
// slots are left at zero. Cache lookups and fills happen here on the
// coordinating goroutine, so a batch containing a previously seen topology
// costs no evaluation at all.
func (ev *evaluator) energies(cands []*topology.LinkSet, needEval []bool, out []float64) []float64 {
	out = ev.sizeOut(len(cands), out)
	ev.pending = ev.pending[:0]
	if ev.cache != nil {
		ev.growKeys(len(cands))
	}
	for i, s := range cands {
		if !needEval[i] {
			continue
		}
		if ev.cache != nil {
			key := s.AppendKey(ev.keyBufs[i][:0])
			ev.keyBufs[i] = key
			ev.hashes[i] = topology.KeyHash(key)
			if e, ok := ev.cache.get(ev.hashes[i], key); ok {
				ev.hits++
				out[i] = e
				if ev.o.onCacheHit != nil {
					ev.o.onCacheHit(s, e)
				}
				continue
			}
		}
		ev.pending = append(ev.pending, evalJob{idx: i, s: s})
	}
	ev.misses += len(ev.pending)
	ev.runPending(out)
	if ev.cache != nil {
		for _, job := range ev.pending {
			ev.cache.put(ev.hashes[job.idx], ev.keyBufs[job.idx], out[job.idx])
		}
	}
	return out
}

// energiesDelta is the DeltaEval counterpart of energies: candidates are
// move lists against base. baseLinks must be base's sorted enumeration, and
// baseSeq a counter the caller bumps whenever base changes — it gates the
// snapshot rebuild (pointer identity is not enough, since a later base clone
// can reuse a freed address). The snapshot build runs on the controller's
// own optical state between batch barriers, so no worker is touching its
// clone concurrently.
func (ev *evaluator) energiesDelta(base *topology.LinkSet, baseLinks []topology.Link, baseSeq int, moves [][]swapMove, needEval []bool, out []float64) []float64 {
	out = ev.sizeOut(len(moves), out)
	ev.baseLinks = baseLinks
	if baseSeq != ev.snapSeq {
		ev.o.opt.BuildSnapshot(&ev.snap, base)
		ev.snapGen++
		ev.snapSeq = baseSeq
		ev.base = base
		ev.builds++
		// BuildSnapshot left the controller's state holding exactly the
		// snapshot occupancy; the inline context is that same state.
		if ev.workers <= 1 {
			ev.ctx0.loadedGen = ev.snapGen
		}
	}
	ev.pending = ev.pending[:0]
	if ev.cache != nil {
		ev.growKeys(len(moves))
	}
	for i, mv := range moves {
		if !needEval[i] {
			continue
		}
		if ev.cache != nil {
			key, h := ev.deltaKey(i, base, baseLinks, mv)
			if e, ok := ev.cache.get(h, key); ok {
				ev.hits++
				out[i] = e
				continue
			}
		}
		ev.pending = append(ev.pending, evalJob{idx: i, moves: mv})
	}
	ev.misses += len(ev.pending)
	ev.runPending(out)
	if ev.cache != nil {
		for _, job := range ev.pending {
			ev.cache.put(ev.hashes[job.idx], ev.keyBufs[job.idx], out[job.idx])
		}
	}
	return out
}

// deltaKey computes candidate i's canonical cache key without materializing
// it: merge the move patch into the retained base enumeration and encode.
// The encoding is pinned byte-identical to LinkSet.Key, so delta-mode and
// classic entries interoperate.
func (ev *evaluator) deltaKey(i int, base *topology.LinkSet, baseLinks []topology.Link, moves []swapMove) ([]byte, uint64) {
	ev.accKey = accumMoves(moves, ev.accKey[:0])
	ev.patchKey = ev.patchKey[:0]
	for _, pd := range ev.accKey {
		ev.patchKey = append(ev.patchKey, topology.Link{U: pd.u, V: pd.v, Count: base.Get(pd.u, pd.v) + pd.d})
	}
	ev.mergedKey = topology.MergePatch(ev.mergedKey[:0], baseLinks, ev.patchKey)
	key := topology.AppendKeyFromLinks(ev.keyBufs[i][:0], base.N, ev.mergedKey)
	ev.keyBufs[i] = key
	h := topology.KeyHash(key)
	ev.hashes[i] = h
	return key, h
}

func (ev *evaluator) growKeys(n int) {
	for len(ev.keyBufs) < n {
		ev.keyBufs = append(ev.keyBufs, nil)
	}
	if cap(ev.hashes) < n {
		ev.hashes = make([]uint64, n)
	}
	ev.hashes = ev.hashes[:n]
}

// finish stops the workers and copies the counters into stats.
func (ev *evaluator) finish(stats *SearchStats) {
	ev.close()
	stats.CacheHits = ev.hits
	stats.CacheMisses = ev.misses
	stats.WorkerEvals = append([]int(nil), ev.evals...)
	stats.SnapshotBuilds = ev.builds
	for _, h := range ev.dHits {
		stats.DeltaHits += h
	}
	for _, f := range ev.dFalls {
		stats.DeltaFallbacks += f
	}
}

// close stops the worker pool; it is idempotent.
func (ev *evaluator) close() {
	if ev.closed {
		return
	}
	ev.closed = true
	if ev.done != nil {
		close(ev.done)
	}
}
