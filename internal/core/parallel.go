package core

import (
	"container/list"

	"owan/internal/alloc"
	"owan/internal/optical"
	"owan/internal/topology"
)

// This file implements the batch evaluation machinery behind the annealing
// search: a worker pool where every worker owns a cloned optical.State (so
// ProvisionTopology never shares mutable state across goroutines) and an LRU
// energy memoization cache keyed by topology.LinkSet.Key().
//
// Determinism contract: the search trajectory is a pure function of
// (Config.Seed, Config.BatchSize). Neighbor generation and acceptance both
// happen on the coordinating goroutine using the single seeded RNG; workers
// only compute energies, which are pure functions of (topology, demands) and
// therefore identical no matter which goroutine computes them or in which
// order results arrive. Workers and GOMAXPROCS never change the result.

// energyCache is an LRU map from canonical topology keys to energies. It is
// only ever touched by the coordinating goroutine, so it needs no locking.
// Energies depend on the demand set, which changes every slot, so the cache
// lives for one ComputeNetworkState invocation.
type energyCache struct {
	cap int
	m   map[string]*list.Element
	ll  *list.List // front = most recently used
}

type cacheEntry struct {
	key    string
	energy float64
}

func newEnergyCache(capacity int) *energyCache {
	if capacity <= 0 {
		return nil
	}
	return &energyCache{cap: capacity, m: make(map[string]*list.Element, capacity), ll: list.New()}
}

func (c *energyCache) get(key string) (float64, bool) {
	el, ok := c.m[key]
	if !ok {
		return 0, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(cacheEntry).energy, true
}

func (c *energyCache) put(key string, energy float64) {
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value = cacheEntry{key: key, energy: energy}
		return
	}
	c.m[key] = c.ll.PushFront(cacheEntry{key: key, energy: energy})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(cacheEntry).key)
	}
}

// evalJob asks a worker to compute the energy of candidate cands[idx].
type evalJob struct {
	idx int
	s   *topology.LinkSet
}

type evalResult struct {
	idx    int
	energy float64
}

// evaluator computes candidate energies for one search invocation, either
// inline on the controller's own optical state (workers <= 1) or on a pool
// of workers with cloned states.
type evaluator struct {
	o       *Owan
	demands []alloc.Demand
	workers int
	cache   *energyCache

	jobs    chan evalJob
	results chan evalResult
	done    chan struct{}

	hits, misses int
	evals        []int // energy computations per worker slot
	closed       bool

	// pending reuses the per-batch job buffer across batches.
	pending []evalJob
}

// newEvaluator starts the pool. With workers <= 1 no goroutines are spawned
// and evaluation runs inline, which is exactly the pre-parallel engine.
func newEvaluator(o *Owan, demands []alloc.Demand) *evaluator {
	ev := &evaluator{
		o:       o,
		demands: demands,
		workers: o.cfg.Workers,
		cache:   newEnergyCache(o.cfg.EnergyCacheSize),
	}
	if ev.workers < 1 {
		ev.workers = 1
	}
	ev.evals = make([]int, ev.workers)
	if ev.workers > 1 {
		ev.jobs = make(chan evalJob, o.cfg.BatchSize)
		ev.results = make(chan evalResult, o.cfg.BatchSize)
		ev.done = make(chan struct{})
		for w := 0; w < ev.workers; w++ {
			go ev.worker(w, o.opt.Clone(), alloc.NewAllocator())
		}
	}
	return ev
}

// worker evaluates jobs on its private optical state and allocator until
// the pool closes. Owning both means a worker's steady-state energy
// evaluations reuse the same scratch buffers job after job, so the hot loop
// does not allocate.
func (ev *evaluator) worker(id int, opt *optical.State, al *alloc.Allocator) {
	theta := ev.o.cfg.Net.ThetaGbps
	for {
		select {
		case job := <-ev.jobs:
			ev.evals[id]++ // exclusive slot; read by coordinator after the batch barrier
			ev.results <- evalResult{idx: job.idx, energy: energyOn(opt, al, theta, job.s, ev.demands)}
		case <-ev.done:
			return
		}
	}
}

// energies returns the energy of every candidate with needEval[i] set; other
// slots are left at zero. Cache lookups and fills happen here on the
// coordinating goroutine, so a batch containing a previously seen topology
// costs no evaluation at all.
func (ev *evaluator) energies(cands []*topology.LinkSet, needEval []bool, out []float64) []float64 {
	if cap(out) < len(cands) {
		out = make([]float64, len(cands))
	}
	out = out[:len(cands)]
	for i := range out {
		out[i] = 0
	}
	ev.pending = ev.pending[:0]
	var keys []string
	if ev.cache != nil {
		keys = make([]string, len(cands))
	}
	for i, s := range cands {
		if !needEval[i] {
			continue
		}
		if ev.cache != nil {
			keys[i] = s.Key()
			if e, ok := ev.cache.get(keys[i]); ok {
				ev.hits++
				out[i] = e
				if ev.o.onCacheHit != nil {
					ev.o.onCacheHit(s, e)
				}
				continue
			}
		}
		ev.pending = append(ev.pending, evalJob{idx: i, s: s})
	}
	ev.misses += len(ev.pending)
	if ev.workers <= 1 {
		for _, job := range ev.pending {
			out[job.idx] = ev.o.Energy(job.s, ev.demands)
			ev.evals[0]++
		}
	} else {
		for _, job := range ev.pending {
			ev.jobs <- job
		}
		for range ev.pending {
			r := <-ev.results
			out[r.idx] = r.energy
		}
	}
	if ev.cache != nil {
		for _, job := range ev.pending {
			ev.cache.put(keys[job.idx], out[job.idx])
		}
	}
	return out
}

// finish stops the workers and copies the counters into stats.
func (ev *evaluator) finish(stats *SearchStats) {
	ev.close()
	stats.CacheHits = ev.hits
	stats.CacheMisses = ev.misses
	stats.WorkerEvals = append([]int(nil), ev.evals...)
}

// close stops the worker pool; it is idempotent.
func (ev *evaluator) close() {
	if ev.closed {
		return
	}
	ev.closed = true
	if ev.done != nil {
		close(ev.done)
	}
}
