package core

import (
	"owan/internal/topology"
)

// This file implements the lazy-candidate machinery behind Config.DeltaEval.
// The classic search materializes every neighbor as a full LinkSet clone
// before evaluating it; at ISP scale that clone (plus the per-candidate
// Links() enumeration and churn Diff) dominates the coordinator and caps the
// speedup of both the worker pool and the optical/allocation delta paths. In
// delta mode a candidate is just its move list — the base topology plus up
// to NeighborMoves swapMoves — and is materialized only if it is accepted or
// becomes the best state.
//
// Determinism: neighborMoves consumes the seeded RNG draw-for-draw exactly
// like ComputeNeighbor/swapOnce (same sample walk over the same sorted
// enumeration, same orientation draws, same validation order, same 32-try
// budget), so for a given (Seed, BatchSize) the delta-mode trajectory is
// bit-identical to the classic one. The ≥300-seed differential harness in
// delta_search_test.go asserts exactly that.

// swapMove is one elementary 2-circuit swap: remove one circuit from (U, V)
// and one from (P, Q), add one to (U, P) and one to (V, Q).
type swapMove struct {
	U, V, P, Q int
}

// pairDelta is the net circuit-count change of one canonical pair.
type pairDelta struct {
	u, v, d int
}

// accumMoves folds a move list into net per-pair deltas, (u, v)-sorted with
// zero entries dropped (a pair removed by one move and re-added by another
// nets out). The returned slice aliases buf.
func accumMoves(moves []swapMove, buf []pairDelta) []pairDelta {
	add := func(x, y, d int) {
		if x > y {
			x, y = y, x
		}
		lo := 0
		for lo < len(buf) && (buf[lo].u < x || (buf[lo].u == x && buf[lo].v < y)) {
			lo++
		}
		if lo < len(buf) && buf[lo].u == x && buf[lo].v == y {
			buf[lo].d += d
			return
		}
		buf = append(buf, pairDelta{})
		copy(buf[lo+1:], buf[lo:])
		buf[lo] = pairDelta{u: x, v: y, d: d}
	}
	for _, mv := range moves {
		add(mv.U, mv.V, -1)
		add(mv.P, mv.Q, -1)
		add(mv.U, mv.P, 1)
		add(mv.V, mv.Q, 1)
	}
	w := 0
	for i := range buf {
		if buf[i].d != 0 {
			buf[w] = buf[i]
			w++
		}
	}
	return buf[:w]
}

// linksGet returns the count of canonical pair (u, v) in a (U, V)-sorted
// enumeration, by binary search.
func linksGet(links []topology.Link, u, v int) int {
	if u > v {
		u, v = v, u
	}
	lo, hi := 0, len(links)
	for lo < hi {
		mid := (lo + hi) / 2
		if links[mid].U < u || (links[mid].U == u && links[mid].V < v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(links) && links[lo].U == u && links[lo].V == v {
		return links[lo].Count
	}
	return 0
}

// swapOnceMove is swapOnce against a sorted enumeration instead of a
// LinkSet. The RNG consumption is identical: Intn(total) plus an orientation
// Intn(2) per sample, two samples per try, up to 32 tries.
func (o *Owan) swapOnceMove(links []topology.Link, total int) (swapMove, bool) {
	if len(links) == 0 || total < 2 {
		return swapMove{}, false
	}
	sample := func() (int, int) {
		k := o.rng.Intn(total)
		for _, l := range links {
			if k < l.Count {
				if o.rng.Intn(2) == 0 {
					return l.U, l.V
				}
				return l.V, l.U
			}
			k -= l.Count
		}
		panic("unreachable")
	}
	for try := 0; try < 32; try++ {
		u, v := sample()
		p, q := sample()
		if u == p || v == q {
			continue
		}
		if u == v || p == q {
			continue
		}
		if linksGet(links, u, v) == 0 || linksGet(links, p, q) == 0 {
			continue
		}
		if canonEq(u, v, p, q) && linksGet(links, u, v) < 2 {
			continue
		}
		return swapMove{U: u, V: v, P: p, Q: q}, true
	}
	return swapMove{}, false
}

// neighborMoves is ComputeNeighbor without materialization: it appends the
// moves of one neighbor of the base topology to buf. baseLinks must be the
// sorted enumeration of base and total its circuit count (invariant under
// swaps, so it never changes mid-candidate). For NeighborMoves > 1 the later
// swaps sample from the merged enumeration of base plus the moves so far —
// byte-identical to the Links() of the intermediate topology swapOnce sees.
// ok is false only when the first swap finds no valid move, matching
// ComputeNeighbor returning nil.
func (o *Owan) neighborMoves(base *topology.LinkSet, baseLinks []topology.Link, total int, buf []swapMove) ([]swapMove, bool) {
	for m := 0; m < o.cfg.NeighborMoves; m++ {
		links := baseLinks
		if len(buf) > 0 {
			o.nbAcc = accumMoves(buf, o.nbAcc[:0])
			o.nbPatch = o.nbPatch[:0]
			for _, pd := range o.nbAcc {
				o.nbPatch = append(o.nbPatch, topology.Link{U: pd.u, V: pd.v, Count: base.Get(pd.u, pd.v) + pd.d})
			}
			o.nbMerged = topology.MergePatch(o.nbMerged[:0], baseLinks, o.nbPatch)
			links = o.nbMerged
		}
		mv, ok := o.swapOnceMove(links, total)
		if !ok {
			if m > 0 {
				return buf, true
			}
			return buf, false
		}
		buf = append(buf, mv)
	}
	return buf, true
}

// materializeMoves clones the base and applies the moves in the same Add
// order as swapOnce, so the result is exactly the LinkSet the classic path
// would have produced for this candidate.
func materializeMoves(base *topology.LinkSet, moves []swapMove) *topology.LinkSet {
	s := base.Clone()
	for _, mv := range moves {
		s.Add(mv.U, mv.V, -1)
		s.Add(mv.P, mv.Q, -1)
		s.Add(mv.U, mv.P, 1)
		s.Add(mv.V, mv.Q, 1)
	}
	return s
}
