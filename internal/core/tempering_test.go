package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"owan/internal/topology"
	"owan/internal/transfer"
)

// TestTemperedGoldenDeterminism extends the PR 1 determinism contract to
// tempering: for a fixed (Seed, BatchSize, Replicas) the search result —
// topology, energy, chain stats, and the exchange counters — is
// bit-identical across Workers ∈ {1, 4, GOMAXPROCS} and across cache
// configurations. This test also runs under `make race`, where it doubles
// as the data-race check on the flattened multi-replica batches.
func TestTemperedGoldenDeterminism(t *testing.T) {
	net, ts := searchFixture()
	base := Config{Seed: 42, MaxIterations: 240, BatchSize: 4, Replicas: 4, Workers: 1}

	ref := runSearch(net, ts, base)
	if ref.Stats.Iterations == 0 || ref.Stats.Accepted == 0 {
		t.Fatalf("degenerate reference search: %+v", ref.Stats)
	}
	if ref.Stats.Replicas != 4 {
		t.Fatalf("Stats.Replicas = %d, want 4", ref.Stats.Replicas)
	}
	if ref.Stats.ExchangeAttempts == 0 {
		t.Fatalf("tempered search attempted no exchanges: %+v", ref.Stats)
	}

	variants := map[string]Config{
		"rerun":           base,
		"parallel-4":      {Seed: 42, MaxIterations: 240, BatchSize: 4, Replicas: 4, Workers: 4},
		"gomaxprocs":      {Seed: 42, MaxIterations: 240, BatchSize: 4, Replicas: 4, Workers: runtime.GOMAXPROCS(0)},
		"parallel-cached": {Seed: 42, MaxIterations: 240, BatchSize: 4, Replicas: 4, Workers: 4, EnergyCacheSize: 512},
		"oversized-pool":  {Seed: 42, MaxIterations: 240, BatchSize: 4, Replicas: 4, Workers: 16},
	}
	for name, cfg := range variants {
		got := runSearch(net, ts, cfg)
		if !got.Topology.Equal(ref.Topology) {
			t.Errorf("%s: topology diverged from reference\n ref=%v\n got=%v",
				name, ref.Topology.Links(), got.Topology.Links())
		}
		if got.Stats.BestEnergy != ref.Stats.BestEnergy {
			t.Errorf("%s: best energy %v != reference %v", name, got.Stats.BestEnergy, ref.Stats.BestEnergy)
		}
		if got.Stats.Iterations != ref.Stats.Iterations || got.Stats.Accepted != ref.Stats.Accepted {
			t.Errorf("%s: chain stats diverged: got %d/%d iterations/accepted, ref %d/%d",
				name, got.Stats.Iterations, got.Stats.Accepted, ref.Stats.Iterations, ref.Stats.Accepted)
		}
		if got.Stats.ExchangeAttempts != ref.Stats.ExchangeAttempts || got.Stats.Exchanges != ref.Stats.Exchanges {
			t.Errorf("%s: exchange counters diverged: got %d/%d attempts/accepted, ref %d/%d",
				name, got.Stats.ExchangeAttempts, got.Stats.Exchanges, ref.Stats.ExchangeAttempts, ref.Stats.Exchanges)
		}
		if got.Stats.EarlyExit != ref.Stats.EarlyExit {
			t.Errorf("%s: early-exit diverged: got %v, ref %v", name, got.Stats.EarlyExit, ref.Stats.EarlyExit)
		}
	}

	// Replica count is part of the trajectory: a different R must diverge,
	// or the assertions above prove nothing.
	other := runSearch(net, ts, Config{Seed: 42, MaxIterations: 240, BatchSize: 4, Replicas: 2, Workers: 1})
	if other.Topology.Equal(ref.Topology) && other.Stats.Accepted == ref.Stats.Accepted {
		t.Log("warning: Replicas=2 matched Replicas=4 exactly; fixture may be too easy")
	}
}

// TestTemperedCounters pins the bookkeeping of a tempered search: iteration
// accounting sums over rungs, the exchange counters are consistent, and a
// single-chain search reports the zero values for all tempering fields.
func TestTemperedCounters(t *testing.T) {
	net, ts := searchFixture()
	st := runSearch(net, ts, Config{Seed: 7, MaxIterations: 120, BatchSize: 4, Replicas: 3, ConvergeWindows: -1})
	if st.Stats.Replicas != 3 {
		t.Errorf("Replicas = %d, want 3", st.Stats.Replicas)
	}
	// Per-rung iterations are capped at MaxIterations; with early exit
	// disabled and no generation failure every rung runs the full cap.
	if st.Stats.Iterations != 3*120 {
		t.Errorf("Iterations = %d, want %d (summed over 3 rungs)", st.Stats.Iterations, 3*120)
	}
	if st.Stats.Exchanges > st.Stats.ExchangeAttempts {
		t.Errorf("Exchanges %d > ExchangeAttempts %d", st.Stats.Exchanges, st.Stats.ExchangeAttempts)
	}
	if st.Stats.ExchangeAttempts == 0 {
		t.Error("no exchange attempts in a 3-replica search")
	}
	if st.Stats.EarlyExit {
		t.Error("EarlyExit reported with ConvergeWindows disabled")
	}
	if st.Stats.InitialTemp <= 0 {
		t.Errorf("InitialTemp = %v, want > 0", st.Stats.InitialTemp)
	}

	single := runSearch(net, ts, Config{Seed: 7, MaxIterations: 120, BatchSize: 4})
	if single.Stats.Replicas != 1 {
		t.Errorf("single-chain Replicas = %d, want 1", single.Stats.Replicas)
	}
	if single.Stats.ExchangeAttempts != 0 || single.Stats.Exchanges != 0 {
		t.Errorf("single-chain search reports exchange activity: %d/%d",
			single.Stats.ExchangeAttempts, single.Stats.Exchanges)
	}
	if single.Stats.WarmStarted || single.Stats.EarlyExit {
		t.Errorf("single cold search reports WarmStarted=%v EarlyExit=%v",
			single.Stats.WarmStarted, single.Stats.EarlyExit)
	}
}

// TestTemperedBestAtLeastInitial: the tempered search, like the single
// chain, can only improve on the slot's starting energy, for any replica
// count and with warm starts on.
func TestTemperedBestAtLeastInitial(t *testing.T) {
	net, ts := searchFixture()
	for _, r := range []int{1, 2, 4, 6} {
		st := runSearch(net, ts, Config{Seed: int64(100 + r), MaxIterations: 160, BatchSize: 4, Replicas: r, WarmStart: true})
		if st.Stats.BestEnergy < st.Stats.InitialEnergy {
			t.Errorf("R=%d: best %v < initial %v", r, st.Stats.BestEnergy, st.Stats.InitialEnergy)
		}
	}
}

// warmWalk runs nSlots searches on one controller, feeding each slot's best
// topology into the next, with demandSeed(slot) selecting the workload.
func warmWalk(cfg Config, net *topology.Network, nSlots int, demandSeed func(slot int) int64) []*NetworkState {
	cfg.Net = net
	cfg.Policy = transfer.SJF
	o := New(cfg)
	defer o.Close()
	cur := topology.InitialTopology(net)
	out := make([]*NetworkState, 0, nSlots)
	for slot := 0; slot < nSlots; slot++ {
		ts := randTransfers(rand.New(rand.NewSource(demandSeed(slot))), len(net.Sites))
		st := o.ComputeNetworkState(cur, ts, slot, 300)
		out = append(out, st)
		cur = st.Topology
	}
	return out
}

// TestWarmStartNeverDegradesRepeatedSlot is the warm-start property test:
// when a slot repeats the previous slot's demands exactly, the warm-started
// slot starts from the cold slot's accepted topology — so its initial
// energy equals the cold slot's accepted energy bit-for-bit, its best can
// only be equal or better, and with nothing left to improve the early exit
// fires instead of burning the full schedule.
func TestWarmStartNeverDegradesRepeatedSlot(t *testing.T) {
	net := topology.ISP(30, 8, 1)
	for seed := int64(0); seed < 8; seed++ {
		cfg := Config{Seed: seed, MaxIterations: 600, BatchSize: 4, WarmStart: true}
		// Both slots draw the identical demand set.
		sts := warmWalk(cfg, net, 2, func(int) int64 { return 5000 + seed })
		cold, warm := sts[0], sts[1]
		if cold.Stats.WarmStarted {
			t.Fatalf("seed %d: first slot claims a warm start", seed)
		}
		if !warm.Stats.WarmStarted {
			t.Fatalf("seed %d: repeated slot did not warm-start", seed)
		}
		if warm.Stats.InitialEnergy != cold.Stats.BestEnergy {
			t.Errorf("seed %d: repeated slot's initial energy %v != previous accepted %v",
				seed, warm.Stats.InitialEnergy, cold.Stats.BestEnergy)
		}
		if warm.Stats.BestEnergy < cold.Stats.BestEnergy {
			t.Errorf("seed %d: warm start degraded accepted energy: %v < %v",
				seed, warm.Stats.BestEnergy, cold.Stats.BestEnergy)
		}
		coldT0 := warm.Stats.InitialEnergy * DefaultInitTemp
		if warm.Stats.InitialTemp >= coldT0 {
			t.Errorf("seed %d: warm slot started at %v, not below the cold T0 %v",
				seed, warm.Stats.InitialTemp, coldT0)
		}
		if !warm.Stats.EarlyExit && warm.Stats.Iterations >= cold.Stats.Iterations {
			t.Errorf("seed %d: repeated-demand slot neither early-exited nor ran a shorter schedule (%d vs %d iterations)",
				seed, warm.Stats.Iterations, cold.Stats.Iterations)
		}
	}
}

// TestWarmStartTracksColdUnderDrift walks 5 slots of drifting demands twice
// — one controller warm-starting, one cold — and asserts the warm walk's
// accepted energy stays within the acceptance tolerance of the cold walk's
// on every slot, while spending fewer total iterations. Warm starting trades
// schedule length for locality; this pins that the trade never costs more
// than a few percent of energy on workloads with slot-to-slot locality.
func TestWarmStartTracksColdUnderDrift(t *testing.T) {
	net := topology.ISP(30, 8, 1)
	const slots = 5
	for seed := int64(0); seed < 4; seed++ {
		// Drift: consecutive slots share most of their demand draw.
		demand := func(slot int) int64 { return 9000 + seed*17 + int64(slot/2) }
		warm := warmWalk(Config{Seed: seed, MaxIterations: 600, BatchSize: 4, WarmStart: true}, net, slots, demand)
		cold := warmWalk(Config{Seed: seed, MaxIterations: 600, BatchSize: 4}, net, slots, demand)
		warmIters, coldIters := 0, 0
		for s := 0; s < slots; s++ {
			warmIters += warm[s].Stats.Iterations
			coldIters += cold[s].Stats.Iterations
			if tol := 0.95 * cold[s].Stats.BestEnergy; warm[s].Stats.BestEnergy < tol {
				t.Errorf("seed %d slot %d: warm energy %v fell below 95%% of cold %v",
					seed, s, warm[s].Stats.BestEnergy, cold[s].Stats.BestEnergy)
			}
		}
		if warmIters >= coldIters {
			t.Errorf("seed %d: warm walk spent %d iterations, cold %d — no schedule saving",
				seed, warmIters, coldIters)
		}
	}
}

// TestWarmStartTempBounds unit-tests the temperature seeding rule directly:
// floored at WarmTempFloor x coldT0, scaled by relative drift, never above
// coldT0, never below the previous final temperature, and inert without a
// recorded previous slot.
func TestWarmStartTempBounds(t *testing.T) {
	o := New(Config{Net: topology.Internet2(4), WarmStart: true, Seed: 1})
	coldT0 := 10.0
	if T, warm := o.warmStartTemp(100, coldT0); warm || T != coldT0 {
		t.Errorf("no recorded slot: got (%v, %v), want cold start at %v", T, warm, coldT0)
	}
	o.warmE, o.warmT, o.warmValid = 100, 1e-3, true
	if T, warm := o.warmStartTemp(100, coldT0); !warm || T != coldT0*DefaultWarmTempFloor {
		t.Errorf("zero drift: got (%v, %v), want floor %v", T, warm, coldT0*DefaultWarmTempFloor)
	}
	if T, _ := o.warmStartTemp(80, coldT0); math.Abs(T-coldT0*0.2) > 1e-12 {
		t.Errorf("20%% drift: got %v, want %v", T, coldT0*0.2)
	}
	if T, _ := o.warmStartTemp(500, coldT0); T != coldT0 {
		t.Errorf("huge drift: got %v, want cap at coldT0 %v", T, coldT0)
	}
	o.warmT = 5
	if T, _ := o.warmStartTemp(100, coldT0); T != 5 {
		t.Errorf("previous final temp above floor: got %v, want 5", T)
	}
	o2 := New(Config{Net: topology.Internet2(4), Seed: 1})
	o2.warmE, o2.warmT, o2.warmValid = 100, 1e-3, true
	if T, warm := o2.warmStartTemp(100, coldT0); warm || T != coldT0 {
		t.Errorf("WarmStart off: got (%v, %v), want cold start", T, warm)
	}
}

// TestWarmStateResetOnRegenWeights: flipping the regenerator-weight ablation
// invalidates the recorded warm energy, so the next slot runs cold.
func TestWarmStateResetOnRegenWeights(t *testing.T) {
	net, ts := searchFixture()
	cfg := Config{Net: net, Policy: transfer.SJF, Seed: 3, MaxIterations: 60, BatchSize: 2, WarmStart: true}
	o := New(cfg)
	defer o.Close()
	cur := topology.InitialTopology(net)
	st := o.ComputeNetworkState(cur, ts, 0, 300)
	o.SetUnitRegenWeights(true)
	st2 := o.ComputeNetworkState(st.Topology, ts, 1, 300)
	if st2.Stats.WarmStarted {
		t.Error("slot after SetUnitRegenWeights warm-started from stale energy")
	}
	st3 := o.ComputeNetworkState(st2.Topology, ts, 2, 300)
	if !st3.Stats.WarmStarted {
		t.Error("warm start did not resume after a fresh slot rebuilt the state")
	}
}

// TestTemperedSteadyStateAllocs bounds the per-slot allocations of a warm
// tempered search on a persistent controller. The candidate recycling pool,
// the enumeration scratch in swapOnce, and the static optical errors took
// the tempered batch path from tens of thousands of allocations per slot to
// a small residue (accepted states that escape the pool, cache bookkeeping);
// the bound has headroom over that residue but is far below what any
// per-proposal Clone or per-failure Errorf regression would produce.
func TestTemperedSteadyStateAllocs(t *testing.T) {
	net, ts := searchFixture()
	o := New(Config{
		Net: net, Policy: transfer.SJF, Seed: 42,
		MaxIterations: 240, BatchSize: 4, Replicas: 4, Workers: 1,
		WarmStart: true,
	})
	defer o.Close()
	start := topology.InitialTopology(net)
	slot := 0
	for ; slot < 3; slot++ { // warm the evaluator, caches, and pool
		o.ComputeNetworkState(start, ts, slot, 300)
	}
	iters := 0
	avg := testing.AllocsPerRun(5, func() {
		st := o.ComputeNetworkState(start, ts, slot, 300)
		slot++
		iters += st.Stats.Iterations
	})
	if iters == 0 {
		t.Fatal("warm slots ran no iterations; the bound would be vacuous")
	}
	t.Logf("allocs per warm tempered slot: %.0f (%d iterations total)", avg, iters)
	if avg > 2000 {
		t.Errorf("warm tempered slot allocates %.0f objects, want <= 2000", avg)
	}
}
