package core

import (
	"math"
	"math/rand"
	"time"

	"owan/internal/topology"
)

// This file implements replica-exchange (parallel tempering) annealing on
// top of the batch evaluator: R chains run side by side at a geometric
// temperature ladder — rung 0 is the coldest, at the normal schedule
// temperature, rung r at temperLadderStep^r times that — and every
// ExchangeInterval rounds neighbor rungs propose to swap their current
// states under the Metropolis criterion on (ΔE, Δβ). Hot rungs cross energy
// barriers the cold rung cannot; exchanges funnel their discoveries down.
//
// Determinism discipline, extending the (Seed, BatchSize) contract of
// parallel.go to (Seed, BatchSize, Replicas): every RNG draw happens on the
// coordinating goroutine. Each replica owns a private RNG derived from
// (Config.Seed, the controller's slot sequence number, its rung index) and
// draws from it for its own candidate generation and acceptance, in rung
// order; exchange decisions draw from a separate RNG derived the same way.
// Workers only ever compute energies — pure functions of (topology,
// demands) — so Workers/GOMAXPROCS change wall-clock time, never the
// result. Candidates are evaluated on the classic materialized path
// (ev.energies); the energy and provision caches apply as usual since both
// are keyed by topology alone, which is replica-agnostic.

// temperReplica is one tempering chain: its RNG, its current state, its
// rung's cooling schedule, and how many iterations it has run.
type temperReplica struct {
	rng   *rand.Rand
	sCur  *topology.LinkSet
	eCur  float64
	T, T0 float64
	iters int
}

// mixSeed derives an independent, reproducible RNG seed from the controller
// seed, the slot sequence number, and a stream index (rung index, or -1 for
// the exchange stream) via a splitmix64-style finalizer. Plain addition
// would make stream k of seed s collide with stream k+1 of seed s-1.
func mixSeed(seed, slotSeq int64, stream int) int64 {
	z := uint64(seed)
	z ^= (uint64(slotSeq) + 1) * 0x9e3779b97f4a7c15
	z ^= (uint64(int64(stream)) + 0x632be59bd9b4e019) * 0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// temperedAnneal runs Config.Replicas chains from (sInit, eInit), rung 0
// starting at temperature T (warm-started or cold; see warmStartTemp) with
// the stop temperature epsilon anchored to the cold schedule T0. It returns
// the best state seen by any rung, its energy, and rung 0's final
// temperature. stats.Iterations and stats.Accepted accumulate over all
// rungs; exchange and early-exit activity lands in the tempering counters.
func (o *Owan) temperedAnneal(ev *evaluator, current, sInit *topology.LinkSet, eInit, T, T0, epsilon float64, deadline time.Time, stats *SearchStats) (*topology.LinkSet, float64, float64) {
	R := o.cfg.Replicas
	reps := make([]*temperReplica, R)
	for r := 0; r < R; r++ {
		scale := math.Pow(temperLadderStep, float64(r))
		reps[r] = &temperReplica{
			rng:  rand.New(rand.NewSource(mixSeed(o.cfg.Seed, o.slotSeq, r))),
			sCur: sInit,
			eCur: eInit,
			T:    T * scale,
			T0:   T0 * scale,
		}
	}
	exRng := rand.New(rand.NewSource(mixSeed(o.cfg.Seed, o.slotSeq, -1)))
	sBest, eBest := sInit, eInit

	cands := make([]*topology.LinkSet, 0, R*o.cfg.BatchSize)
	needEval := make([]bool, 0, R*o.cfg.BatchSize)
	counts := make([]int, R)
	var energies []float64
	rounds, streak := 0, 0
	windowBest := eBest
	stop := false
	for !stop {
		cold := reps[0]
		if cold.T <= epsilon {
			if deadline.IsZero() {
				break
			}
			// Wall-clock budget: reheat every rung to its ladder T0 and keep
			// searching, mirroring the single-chain schedule of Figure 10d.
			for _, rep := range reps {
				rep.T = rep.T0
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		if cold.iters >= o.cfg.MaxIterations {
			break
		}

		// Generate every rung's batch in rung order, each from its own RNG,
		// into one flat candidate list; a single evaluator call spreads the
		// R×BatchSize energies over the worker pool. The churn trust region
		// is measured against the slot's starting topology exactly as in the
		// single-chain loop.
		cands, needEval = cands[:0], needEval[:0]
		exhausted := false
		for r, rep := range reps {
			k := o.cfg.BatchSize
			if rem := o.cfg.MaxIterations - rep.iters; k > rem {
				k = rem
			}
			n := 0
			for n < k {
				sN := o.computeNeighbor(rep.rng, rep.sCur)
				if sN == nil {
					exhausted = true
					break
				}
				cands = append(cands, sN)
				needEval = append(needEval, !(o.cfg.MaxChurn > 0 && current.Diff(sN) > o.cfg.MaxChurn))
				n++
			}
			counts[r] = n
		}
		if len(cands) == 0 {
			break
		}
		energies = ev.energies(cands, needEval, energies)

		// Reduce each rung's slice of the batch in rung order with its own
		// RNG — the same in-order Metropolis walk as the single chain, with
		// each rung cooling by Alpha per iteration on its own ladder level.
		off := 0
		for r, rep := range reps {
			for i := off; i < off+counts[r]; i++ {
				rep.iters++
				stats.Iterations++
				if !needEval[i] {
					rep.T *= o.cfg.Alpha
					continue
				}
				eN := energies[i]
				if eN > eBest {
					sBest, eBest = cands[i], eN
				}
				if accept(rep.eCur, eN, rep.T, rep.rng) {
					rep.sCur, rep.eCur = cands[i], eN
					stats.Accepted++
				}
				rep.T *= o.cfg.Alpha
			}
			off += counts[r]
		}
		// Recycle the round's dead candidates: anything no replica holds as
		// its current state and that is not the running best has dropped its
		// last reference. (Exchanges below only swap pointers already held
		// by replicas, so this accounting stays exact across sweeps.)
		for _, c := range cands {
			if c == sBest {
				continue
			}
			retained := false
			for _, rep := range reps {
				if rep.sCur == c {
					retained = true
					break
				}
			}
			if !retained {
				o.putLinkSet(c)
			}
		}
		if exhausted {
			stop = true
		}

		rounds++
		if rounds%o.cfg.ExchangeInterval == 0 {
			// Exchange sweep over neighbor-rung pairs, alternating parity so
			// a state can ladder all the way down over successive sweeps.
			// One exchange-RNG draw per attempt, accepted or not, keeps the
			// stream's consumption independent of the energies.
			par := (rounds / o.cfg.ExchangeInterval) % 2
			for i := par; i+1 < R; i += 2 {
				a, b := reps[i], reps[i+1] // a is the colder rung
				stats.ExchangeAttempts++
				// Joint-weight ratio for swapping states between inverse
				// temperatures βa > βb when energy is maximized (cost −E):
				// accept with min(1, exp((βa−βb)(Eb−Ea))) — a hotter rung
				// holding the higher energy always hands it down.
				dBeta := 1/a.T - 1/b.T
				p := math.Exp(dBeta * (b.eCur - a.eCur))
				if exRng.Float64() < p {
					a.sCur, b.sCur = b.sCur, a.sCur
					a.eCur, b.eCur = b.eCur, a.eCur
					stats.Exchanges++
				}
			}
			if o.cfg.ConvergeWindows > 0 {
				if eBest-windowBest <= o.cfg.EpsilonFrac*math.Max(math.Abs(eBest), 1e-9) {
					streak++
					if streak >= o.cfg.ConvergeWindows {
						stats.EarlyExit = true
						stop = true
					}
				} else {
					streak = 0
				}
				windowBest = eBest
			}
		}
	}
	return sBest, eBest, reps[0].T
}
