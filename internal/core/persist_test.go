package core

import (
	"fmt"
	"math/rand"
	"testing"

	"owan/internal/topology"
)

// disablePersistence flips a controller into the pre-persistence mode used as
// the differential reference: a throwaway evaluator per ComputeNetworkState
// call and no cross-slot provision cache. Everything else — RNG, config,
// optical state — is untouched, so the two modes share a trajectory exactly
// when persistence is inert.
func disablePersistence(o *Owan) {
	o.disablePersist = true
	o.provCache = nil
}

// persistNets mixes the small comfortable networks of the delta harness with
// a >64-site ISP so the cross-slot contract is also pinned on the multi-word
// mask paths.
func persistNets() []*topology.Network {
	return []*topology.Network{
		topology.Internet2(6),
		topology.Internet2(10),
		topology.ISP(12, 6, 1),
		topology.ISP(18, 8, 2),
		topology.ISP(70, 8, 1),
		topology.Square(),
	}
}

// TestPersistentEvaluatorMatchesFresh is the cross-slot differential for the
// persistent evaluator and provision cache: across 300 randomized seeds, a
// controller that keeps its evaluator (worker pool, delta snapshot, provision
// LRU) across slots must produce bit-identical per-slot results to one that
// rebuilds everything each slot — including across a WithoutFiber failure
// event, after which both continue on fresh controllers for the smaller
// network. The persistent side must also actually hit its provision cache
// somewhere in the run, so the contract cannot pass vacuously.
func TestPersistentEvaluatorMatchesFresh(t *testing.T) {
	nets := persistNets()
	seeds := int64(300)
	if testing.Short() {
		seeds = 60
	}
	totalProvHits, totalWarmSlots := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(11000 + seed))
		net := nets[int(seed)%len(nets)]
		sites := len(net.Sites)
		iters := 40 + rng.Intn(40)
		if sites > 64 {
			iters = 20 // big nets pay O(n^2) per energy; keep the run bounded
		}
		cfg := Config{
			Net:           net,
			Seed:          seed,
			MaxIterations: iters,
			BatchSize:     1 + rng.Intn(4),
			Workers:       []int{1, 1, 4}[rng.Intn(3)],
			DeltaEval:     rng.Intn(2) == 0,
		}
		if rng.Intn(3) == 0 {
			cfg.EnergyCacheSize = 64
		}

		pers := New(cfg)
		fresh := New(cfg)
		disablePersistence(fresh)

		curP := topology.InitialTopology(net)
		curF := curP.Clone()
		for slot := 0; slot < 4; slot++ {
			if slot == 2 && len(net.Fibers) > 1 {
				// Fail a fiber mid-run on both sides. WithoutFiber returns a
				// fresh controller; the persistent one must keep matching even
				// though it migrates still-valid provision-cache entries across
				// the failure (the fresh side gets no cache at all), and the
				// old pool is closed.
				fid := net.Fibers[len(net.Fibers)/2].ID
				oldP, oldF := pers, fresh
				pers = pers.WithoutFiber(fid)
				fresh = fresh.WithoutFiber(fid)
				oldP.Close()
				oldF.Close()
				disablePersistence(fresh)
			}
			slotRng := rand.New(rand.NewSource(seed*31 + int64(slot)))
			ts := randTransfers(slotRng, sites)
			if len(ts) == 0 {
				continue
			}
			ref := fresh.ComputeNetworkState(curF, ts, slot, 300)
			got := pers.ComputeNetworkState(curP, ts, slot, 300)
			name := fmt.Sprintf("seed %d slot %d net %s w%d b%d delta=%v",
				seed, slot, net.Name, cfg.Workers, cfg.BatchSize, cfg.DeltaEval)
			sameSearch(t, name, ref, got)
			if ref.Stats.ProvisionHits != 0 || ref.Stats.ProvisionMisses != 0 {
				t.Fatalf("%s: provision counters nonzero with persistence off: %+v", name, ref.Stats)
			}
			totalProvHits += got.Stats.ProvisionHits
			if slot > 0 && got.Stats.SnapshotBuilds < ref.Stats.SnapshotBuilds {
				totalWarmSlots++ // retained snapshot saved a rebuild
			}
			curP, curF = got.Topology, ref.Topology
		}
		pers.Close()
		fresh.Close()
	}
	if totalProvHits == 0 {
		t.Fatal("no provision-cache hits across the run — the persistent cache never fired")
	}
	t.Logf("provision hits=%d, slots with a saved snapshot build=%d", totalProvHits, totalWarmSlots)
}

// TestPersistentSnapshotReuse pins the warm-start fast path directly: when a
// slot starts from exactly the topology whose snapshot the evaluator retained,
// the delta search must not rebuild it, and the slot's first energy must be a
// provision-cache hit (seeded by the previous slot's final plan).
func TestPersistentSnapshotReuse(t *testing.T) {
	net, ts := searchFixture()
	o := New(Config{Net: net, Seed: 3, MaxIterations: 120, BatchSize: 2, DeltaEval: true})
	defer o.Close()
	cur := topology.InitialTopology(net)
	first := o.ComputeNetworkState(cur, ts, 0, 300)
	if first.Stats.SnapshotBuilds == 0 {
		t.Fatalf("cold slot built no snapshot: %+v", first.Stats)
	}
	// Same demands, warm start from the slot's own output: the first base is
	// the retained snapshot whenever the search ended on its last accepted
	// state; regardless, the initial energy must hit the seeded cache.
	second := o.ComputeNetworkState(first.Topology, ts, 1, 300)
	if second.Stats.ProvisionHits == 0 {
		t.Fatalf("warm slot had no provision hits: %+v", second.Stats)
	}
	if second.Stats.Iterations <= 0 {
		t.Fatalf("degenerate warm slot: %+v", second.Stats)
	}
}
