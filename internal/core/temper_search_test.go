package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"owan/internal/topology"
)

// This file is the PR 6 differential battery for warm-start + replica
// exchange. Its anchor is a *golden* harness: testdata/temper_golden.json was
// generated from the pre-tempering annealer (the code as of PR 5), so
// asserting the digests here proves that `Replicas=1, WarmStart=false` —
// today's default configuration — still walks the exact pre-PR trajectories,
// bit for bit, through every refactor tempering required (RNG plumbing,
// temperature seeding, the dispatch into the tempered loop). A
// self-referential differential (new code vs new code) could not catch a
// refactor that changed everything consistently; the committed digests can.
//
// Regenerate with UPDATE_TEMPER_GOLDEN=1 go test -run TemperGolden ./internal/core
// — but only when a PR deliberately changes search semantics, never to make
// a red run green.

const temperGoldenSeeds = 300

var temperGoldenPath = filepath.Join("testdata", "temper_golden.json")

// temperGoldenNets returns the two differential networks: the paper's ISP40
// benchmark topology and a >64-site ISP, so the multi-word mask paths are
// under the contract too. Built once; the walks only read them (WithoutFiber
// clones the network before dropping a fiber).
var temperGoldenNets = sync.OnceValue(func() []*topology.Network {
	return []*topology.Network{
		topology.ISP(40, 10, 1),
		topology.ISP(70, 8, 1),
	}
})

// temperGoldenConfig derives the canonical per-seed configuration. Knobs are
// drawn from a seed-local RNG so the 300 seeds sweep worker counts, batch
// sizes, caching and delta evaluation.
func temperGoldenConfig(seed int64, net *topology.Network) Config {
	rng := rand.New(rand.NewSource(23000 + seed))
	cfg := Config{
		Net:           net,
		Seed:          seed,
		MaxIterations: 24 + rng.Intn(24),
		BatchSize:     1 + rng.Intn(4),
		Workers:       []int{1, 1, 4}[rng.Intn(3)],
		DeltaEval:     rng.Intn(2) == 0,
		// Explicit compatibility mode: these are the zero values, so the
		// resolved config is identical to a pre-tempering Config literal.
		Replicas:  1,
		WarmStart: false,
	}
	if rng.Intn(3) == 0 {
		cfg.EnergyCacheSize = 64
	}
	return cfg
}

// temperGoldenWalk runs the canonical 3-slot sequence for one seed — warm
// slot-to-slot starts on one persistent controller, with a WithoutFiber
// failure event before the middle slot — and folds every slot's full result
// (canonical topology key, energy bits, chain stats) into one digest.
func temperGoldenWalk(seed int64) uint64 {
	nets := temperGoldenNets()
	net := nets[int(seed)%len(nets)]
	cfg := temperGoldenConfig(seed, net)
	o := New(cfg)
	defer func() { o.Close() }()

	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	cur := topology.InitialTopology(net)
	for slot := 0; slot < 3; slot++ {
		if slot == 1 {
			// Fail a fiber mid-sequence: the annealer continues on a fresh
			// controller for the degraded network, carrying the topology.
			fid := net.Fibers[len(net.Fibers)/2].ID
			old := o
			o = o.WithoutFiber(fid)
			old.Close()
		}
		ts := randTransfers(rand.New(rand.NewSource(seed*131+int64(slot))), len(net.Sites))
		if len(ts) == 0 {
			continue
		}
		st := o.ComputeNetworkState(cur, ts, slot, 300)
		h.Write([]byte(st.Topology.Key()))
		h.Write([]byte(st.Effective.Key()))
		word(math.Float64bits(st.Stats.BestEnergy))
		word(math.Float64bits(st.Stats.InitialEnergy))
		word(uint64(st.Stats.Iterations))
		word(uint64(st.Stats.Accepted))
		word(uint64(st.Stats.Churn))
		cur = st.Topology
	}
	return h.Sum64()
}

func readTemperGolden(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(temperGoldenPath)
	if err != nil {
		t.Fatalf("golden digests missing (generate with UPDATE_TEMPER_GOLDEN=1): %v", err)
	}
	var m map[string]string
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("parse %s: %v", temperGoldenPath, err)
	}
	return m
}

// TestTemperGoldenDifferential is the 300-seed differential harness: the
// compatibility configuration must reproduce the committed pre-PR digests —
// same topologies, same energies, same chain stats — across ISP40 and a
// >64-site network, including the WithoutFiber event mid-sequence.
func TestTemperGoldenDifferential(t *testing.T) {
	seeds := int64(temperGoldenSeeds)
	if testing.Short() {
		seeds = 60
	}
	if os.Getenv("UPDATE_TEMPER_GOLDEN") != "" {
		out := make(map[string]string, temperGoldenSeeds)
		for seed := int64(0); seed < temperGoldenSeeds; seed++ {
			out[fmt.Sprint(seed)] = fmt.Sprintf("%016x", temperGoldenWalk(seed))
		}
		raw, err := json.MarshalIndent(out, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(temperGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(temperGoldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden digests to %s", len(out), temperGoldenPath)
		return
	}
	golden := readTemperGolden(t)
	for seed := int64(0); seed < seeds; seed++ {
		want, ok := golden[fmt.Sprint(seed)]
		if !ok {
			t.Fatalf("seed %d missing from %s", seed, temperGoldenPath)
		}
		if got := fmt.Sprintf("%016x", temperGoldenWalk(seed)); got != want {
			t.Fatalf("seed %d: trajectory diverged from the pre-tempering annealer: digest %s != golden %s",
				seed, got, want)
		}
	}
}
