package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"owan/internal/alloc"
	"owan/internal/topology"
	"owan/internal/transfer"
)

func newOwan(net *topology.Network, seed int64) *Owan {
	return New(Config{Net: net, Policy: transfer.SJF, StarveSlots: 3, Seed: seed})
}

func mkTransfers(reqs ...[3]int) []*transfer.Transfer {
	var ts []*transfer.Transfer
	for i, r := range reqs {
		ts = append(ts, transfer.NewTransfer(transfer.Request{
			ID: i, Src: r[0], Dst: r[1], SizeGbits: float64(r[2]), Deadline: transfer.NoDeadline,
		}))
	}
	return ts
}

func TestComputeNeighborPreservesPorts(t *testing.T) {
	net := topology.Internet2(15)
	o := newOwan(net, 1)
	s := topology.InitialTopology(net)
	degrees := make([]int, net.NumSites())
	for i := range degrees {
		degrees[i] = s.Degree(i)
	}
	for iter := 0; iter < 200; iter++ {
		n := o.ComputeNeighbor(s)
		if n == nil {
			t.Fatal("neighbor generation failed on a healthy topology")
		}
		for i := range degrees {
			if n.Degree(i) != degrees[i] {
				t.Fatalf("iteration %d: degree of %d changed %d -> %d", iter, i, degrees[i], n.Degree(i))
			}
		}
		if n.TotalCircuits() != s.TotalCircuits() {
			t.Fatalf("circuit count changed: %d -> %d", s.TotalCircuits(), n.TotalCircuits())
		}
		s = n
	}
}

func TestComputeNeighborIsSmallMove(t *testing.T) {
	net := topology.Internet2(15)
	o := newOwan(net, 2)
	s := topology.InitialTopology(net)
	for iter := 0; iter < 50; iter++ {
		n := o.ComputeNeighbor(s)
		if n == nil {
			t.Fatal("nil neighbor")
		}
		if d := s.Diff(n); d > 4 {
			t.Fatalf("neighbor differs by %d circuit moves, want <= 4", d)
		}
	}
}

func TestComputeNeighborNoSelfLinks(t *testing.T) {
	net := topology.Square()
	o := newOwan(net, 3)
	s := topology.InitialTopology(net)
	for iter := 0; iter < 100; iter++ {
		n := o.ComputeNeighbor(s)
		if n == nil {
			continue
		}
		for _, l := range n.Links() {
			if l.U == l.V {
				t.Fatal("self link created")
			}
		}
		s = n
	}
}

func TestComputeNeighborDegenerate(t *testing.T) {
	net := topology.Square()
	o := newOwan(net, 4)
	empty := topology.NewLinkSet(4)
	if n := o.ComputeNeighbor(empty); n != nil {
		t.Error("neighbor of empty topology should be nil")
	}
	one := topology.NewLinkSet(4)
	one.Add(0, 1, 1)
	if n := o.ComputeNeighbor(one); n != nil {
		t.Error("neighbor of single-circuit topology should be nil")
	}
}

func TestEnergyMotivatingExample(t *testing.T) {
	// Paper §2.2: with both R0 ports to R1 and both R2 ports to R3 (Plan C
	// topology), two 10-unit transfers R0->R1 and R2->R3 achieve 40 units of
	// throughput; the square topology achieves only 20.
	net := topology.Square()
	o := newOwan(net, 5)
	ts := mkTransfers([3]int{0, 1, 200}, [3]int{2, 3, 200})
	demands := alloc.DemandsFromTransfers(ts, 10)

	square := topology.InitialTopology(net)
	planC := topology.NewLinkSet(4)
	planC.Add(0, 1, 2)
	planC.Add(2, 3, 2)

	eSquare := o.Energy(square, demands)
	ePlanC := o.Energy(planC, demands)
	if eSquare != 20 {
		t.Errorf("square energy = %v, want 20", eSquare)
	}
	if ePlanC != 40 {
		t.Errorf("plan C energy = %v, want 40", ePlanC)
	}
}

func TestAnnealingFindsPlanC(t *testing.T) {
	// Starting from the square topology with the two parallel transfers,
	// the search should discover a topology with energy 40 (Plan C or an
	// equivalent rewiring).
	net := topology.Square()
	o := newOwan(net, 6)
	ts := mkTransfers([3]int{0, 1, 200}, [3]int{2, 3, 200})
	st := o.ComputeNetworkState(topology.InitialTopology(net), ts, 0, 10)
	if st.Stats.BestEnergy < 40-1e-9 {
		t.Errorf("best energy = %v, want 40 (found topo %v)", st.Stats.BestEnergy, st.Topology.Links())
	}
	if st.Stats.BestEnergy < st.Stats.InitialEnergy {
		t.Error("best energy below initial: search must never regress")
	}
}

func TestAnnealingNeverRegresses(t *testing.T) {
	check := func(seed int64) bool {
		net := topology.Internet2(8)
		o := newOwan(net, seed)
		rng := rand.New(rand.NewSource(seed))
		var ts []*transfer.Transfer
		for i := 0; i < 12; i++ {
			s, d := rng.Intn(9), rng.Intn(9)
			if s == d {
				continue
			}
			ts = append(ts, transfer.NewTransfer(transfer.Request{
				ID: i, Src: s, Dst: d, SizeGbits: 100 + rng.Float64()*5000, Deadline: transfer.NoDeadline,
			}))
		}
		cur := topology.InitialTopology(net)
		st := o.ComputeNetworkState(cur, ts, 0, 300)
		if st.Stats.BestEnergy+1e-9 < st.Stats.InitialEnergy {
			return false
		}
		// Port budgets hold on the result.
		return st.Topology.PortViolations(net) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestTimeBudgetRespected(t *testing.T) {
	net := topology.ISP(40, 10, 1)
	o := New(Config{Net: net, Policy: transfer.SJF, Seed: 1, TimeBudget: 50 * time.Millisecond, MaxIterations: 1 << 20})
	rng := rand.New(rand.NewSource(2))
	var ts []*transfer.Transfer
	for i := 0; i < 100; i++ {
		s, d := rng.Intn(40), rng.Intn(40)
		if s == d {
			continue
		}
		ts = append(ts, transfer.NewTransfer(transfer.Request{
			ID: i, Src: s, Dst: d, SizeGbits: 1000, Deadline: transfer.NoDeadline,
		}))
	}
	start := time.Now()
	o.ComputeNetworkState(topology.InitialTopology(net), ts, 0, 300)
	if e := time.Since(start); e > 500*time.Millisecond {
		t.Errorf("search took %v with a 50 ms budget", e)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	net := topology.Internet2(8)
	ts1 := mkTransfers([3]int{0, 8, 5000}, [3]int{1, 4, 3000}, [3]int{2, 6, 800})
	ts2 := mkTransfers([3]int{0, 8, 5000}, [3]int{1, 4, 3000}, [3]int{2, 6, 800})
	a := newOwan(net, 42).ComputeNetworkState(topology.InitialTopology(net), ts1, 0, 300)
	b := newOwan(net, 42).ComputeNetworkState(topology.InitialTopology(net), ts2, 0, 300)
	if !a.Topology.Equal(b.Topology) {
		t.Error("same seed produced different topologies")
	}
	if a.Stats.BestEnergy != b.Stats.BestEnergy {
		t.Error("same seed produced different energies")
	}
}

func TestChurnReported(t *testing.T) {
	net := topology.Square()
	o := newOwan(net, 7)
	ts := mkTransfers([3]int{0, 1, 200}, [3]int{2, 3, 200})
	cur := topology.InitialTopology(net)
	st := o.ComputeNetworkState(cur, ts, 0, 10)
	if st.Stats.Churn != cur.Diff(st.Topology) {
		t.Errorf("churn %d != diff %d", st.Stats.Churn, cur.Diff(st.Topology))
	}
}

func TestGreedySeparateBuildsDemandTopology(t *testing.T) {
	net := topology.Square()
	o := newOwan(net, 8)
	ts := mkTransfers([3]int{0, 1, 2000}, [3]int{2, 3, 2000})
	st := o.GreedySeparate(ts, 0, 10)
	// Demand is only on (0,1) and (2,3): the greedy should give each pair
	// both ports.
	if st.Topology.Get(0, 1) != 2 || st.Topology.Get(2, 3) != 2 {
		t.Errorf("greedy topology = %v", st.Topology.Links())
	}
	if st.Topology.PortViolations(net) != 0 {
		t.Error("port violations in greedy topology")
	}
}

func TestJointBeatsGreedyOnCouplingWorkload(t *testing.T) {
	// Figure 10(a): joint optimization beats separate optimization on
	// average. Owan operates slot after slot warm-starting from the
	// previous topology, so emulate several slots of stable heavy demand
	// and compare steady-state energy, averaged over workloads (a single
	// draw can tie: the greedy is near-optimal when demand pairs fit the
	// port budget exactly).
	ratioSum := 0.0
	const seeds = 3
	for seed := int64(1); seed <= seeds; seed++ {
		net := topology.ISP(20, 6, 3)
		rng := rand.New(rand.NewSource(seed))
		var ts []*transfer.Transfer
		for i := 0; i < 60; i++ {
			s, d := rng.Intn(20), rng.Intn(20)
			if s == d {
				continue
			}
			ts = append(ts, transfer.NewTransfer(transfer.Request{
				ID: i, Src: s, Dst: d, SizeGbits: 2000 + rng.Float64()*18000, Deadline: transfer.NoDeadline,
			}))
		}
		o := newOwan(net, seed*7)
		cur := topology.InitialTopology(net)
		var joint *NetworkState
		for slot := 0; slot < 8; slot++ {
			joint = o.ComputeNetworkState(cur, ts, slot, 300)
			cur = joint.Topology
		}
		greedy := o.GreedySeparate(ts, 0, 300)
		ratioSum += joint.Stats.BestEnergy / greedy.Stats.BestEnergy
	}
	if avg := ratioSum / seeds; avg < 1.05 {
		t.Errorf("joint/greedy average ratio = %v, want > 1.05", avg)
	}
}

func BenchmarkEnergyISP40(b *testing.B) {
	net := topology.ISP(40, 10, 1)
	o := newOwan(net, 1)
	rng := rand.New(rand.NewSource(2))
	var ts []*transfer.Transfer
	for i := 0; i < 150; i++ {
		s, d := rng.Intn(40), rng.Intn(40)
		if s == d {
			continue
		}
		ts = append(ts, transfer.NewTransfer(transfer.Request{
			ID: i, Src: s, Dst: d, SizeGbits: 5000, Deadline: transfer.NoDeadline,
		}))
	}
	demands := alloc.DemandsFromTransfers(ts, 300)
	s := topology.InitialTopology(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Energy(s, demands)
	}
}
