package core

import (
	"fmt"
	"math/rand"
	"testing"

	"owan/internal/optical"
	"owan/internal/topology"
)

// migrationNet builds an ISP-style network tuned for the provision-cache
// migration scenario: optical reach is raised so the topology walk provisions
// direct-only (the migratable class), and one fiber is duplicated in
// parallel. The duplicate never carries a primary route — shortest-path
// relaxation is strictly-improving, so the earlier-inserted original wins
// every tie — which makes failing it the canonical "fiber off the primary
// routing tree" event that migration is for.
func migrationNet(sites int) (*topology.Network, int) {
	net := topology.ISP(sites, 8, 1)
	net.ReachKm *= 10
	dup := net.Fibers[0]
	maxID := 0
	for _, f := range net.Fibers {
		if f.ID > maxID {
			maxID = f.ID
		}
	}
	dup.ID = maxID + 1
	net.Fibers = append(net.Fibers, dup)
	return net, dup.ID
}

// TestWithoutFiberCacheMigration pins the soundness and the non-vacuity of
// the provision-cache migration across a fiber failure. Soundness: every
// entry WithoutFiber carries over must hold exactly the effective links that
// provisioning its topology from scratch on the REDUCED network produces.
// Non-vacuity, both ways: failing the redundant parallel fiber (no primary
// route touches it) must migrate entries, and failing a fiber that carries
// primary routes must drop the entries routed over it — so the validity
// predicate is neither rejecting nor accepting blindly.
func TestWithoutFiberCacheMigration(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 3
	}
	migratedTotal, droppedTotal := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		sites := []int{12, 18, 70}[int(seed)%3] // 70 exercises the multi-word mask tables
		net, dupID := migrationNet(sites)
		o := New(Config{Net: net, Seed: 500 + seed})
		rng := rand.New(rand.NewSource(900 + seed))

		// Populate the cache with a neighbor walk, exactly as searches do:
		// provision each visited topology and record its effective links
		// with the run's direct-only audit bit.
		s := topology.InitialTopology(net)
		for i := 0; i < 25 && s != nil; i++ {
			eff := o.opt.ProvisionEffective(s)
			links := eff.AppendLinks(nil)
			key := s.AppendKey(nil)
			o.provCache.put(topology.KeyHash(key), key, eff.N, links, o.opt.DirectOnly(), o.opt.SegmentOnly())
			s = o.computeNeighbor(rng, s)
		}
		directEntries := 0
		for i := 0; i < o.provCache.used; i++ {
			if o.provCache.entries[i].directOnly {
				directEntries++
			}
		}
		if directEntries == 0 {
			t.Fatalf("seed %d: raised reach produced no direct-only runs; scenario broken", seed)
		}

		// Fail the redundant duplicate plus a sample of primary-carrying
		// fibers; validate every migrated entry against cold provisioning.
		fids := []int{dupID}
		for fi := 0; fi < len(net.Fibers)-1; fi += 1 + len(net.Fibers)/4 {
			fids = append(fids, net.Fibers[fi].ID)
		}
		for _, fid := range fids {
			nw := o.WithoutFiber(fid)
			migrated := nw.provCache.used
			migratedTotal += migrated
			droppedTotal += o.provCache.used - migrated
			if fid == dupID && migrated < directEntries {
				t.Fatalf("seed %d: failing the redundant fiber migrated %d < %d direct-only entries",
					seed, migrated, directEntries)
			}

			ref := optical.NewState(nw.cfg.Net)
			for idx := 0; idx < migrated; idx++ {
				e := &nw.provCache.entries[idx]
				n, reqLinks, ok := topology.DecodeKey(e.key, nil)
				if !ok || n != nw.cfg.Net.NumSites() {
					t.Fatalf("seed %d fiber %d: bad migrated key", seed, fid)
				}
				req := topology.NewLinkSet(n)
				for _, l := range reqLinks {
					req.Add(l.U, l.V, l.Count)
				}
				want := ref.ProvisionEffective(req).AppendLinks(nil)
				name := fmt.Sprintf("seed %d sites %d fiber %d entry %d", seed, sites, fid, idx)
				if len(want) != len(e.links) {
					t.Fatalf("%s: migrated entry has %d links, cold provisioning %d",
						name, len(e.links), len(want))
				}
				for i, l := range want {
					if e.links[i] != l {
						t.Fatalf("%s: link %d: migrated %+v, cold %+v", name, i, e.links[i], l)
					}
				}
			}
			nw.Close()
		}
		o.Close()
	}
	if migratedTotal == 0 {
		t.Fatalf("no cache entry ever migrated; predicate is vacuously rejecting")
	}
	if droppedTotal == 0 {
		t.Fatalf("no cache entry ever dropped; predicate is vacuously accepting")
	}
	t.Logf("migrated %d entries, dropped %d", migratedTotal, droppedTotal)
}

// alternateMigrationNet is migrationNet with ONLY the duplicated fiber's
// original squeezed to a few wavelengths. Routes through that edge keep
// preferring the original (primary tables are load-blind), so once its λ run
// out segmentFeasible answers from the alternate tables — whose routes cross
// the roomy duplicate — and the run ends segment-only but not direct-only:
// the class the alternate-path audit exists for. Every other fiber keeps the
// default supply, so nothing exhausts globally and the regenerator graph
// (which would demote the run below the migratable tiers) is never consulted.
//
// Two more roomy parallels of the same edge are appended after the
// duplicate. The first pads the edge to kFiberPaths parallel fibers, so the
// second — the highest-index fiber of the network — can never appear in any
// pair's route table: every route through it has an identical-length sibling
// over a lower-index parallel, and the tables hold at most kFiberPaths
// routes. Failing that fiber (returned as cleanID) is therefore the
// alternate-tier analogue of failing migrationNet's duplicate: no primary
// moves, no alternate table changes, no fiber index shifts — the one event
// where even alternate-routed entries are provably still valid.
func alternateMigrationNet(sites, waves int) (*topology.Network, int, int) {
	net, dupID := migrationNet(sites)
	net.Fibers[0].Wavelengths = waves
	pad := net.Fibers[len(net.Fibers)-1] // the roomy duplicate
	pad.ID = dupID + 1
	clean := pad
	clean.ID = dupID + 2
	net.Fibers = append(net.Fibers, pad, clean)
	return net, dupID, clean.ID
}

// TestWithoutFiberAlternateCacheMigration extends the migration pin to the
// segment-only tier: entries whose provisioning run drew on alternate fiber
// routes must also survive a fiber failure — audited by SameSegmentRouting
// against the full alternate tables, not just the primaries — and every
// migrated entry must still reproduce cold provisioning on the reduced
// network link for link. Non-vacuity is asserted at three levels: the
// scenario must actually produce segment-only (not direct-only) runs, some
// of those entries must migrate, and some entries must still be dropped.
func TestWithoutFiberAlternateCacheMigration(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 3
	}
	migratedTotal, droppedTotal, segMigrated := 0, 0, 0
	segEntriesTotal := 0
	for seed := int64(0); seed < seeds; seed++ {
		sites := []int{12, 18, 70}[int(seed)%3]
		net, dupID, cleanID := alternateMigrationNet(sites, 3)
		o := New(Config{Net: net, Seed: 700 + seed})
		rng := rand.New(rand.NewSource(1100 + seed))

		s := topology.InitialTopology(net)
		for i := 0; i < 25 && s != nil; i++ {
			eff := o.opt.ProvisionEffective(s)
			links := eff.AppendLinks(nil)
			key := s.AppendKey(nil)
			o.provCache.put(topology.KeyHash(key), key, eff.N, links, o.opt.DirectOnly(), o.opt.SegmentOnly())
			s = o.computeNeighbor(rng, s)
		}
		segEntries := 0
		for i := 0; i < o.provCache.used; i++ {
			e := &o.provCache.entries[i]
			if e.segmentOnly && !e.directOnly {
				segEntries++
			}
		}
		segEntriesTotal += segEntries

		fids := []int{cleanID, dupID}
		for fi := 0; fi < len(net.Fibers)-1; fi += 1 + len(net.Fibers)/4 {
			fids = append(fids, net.Fibers[fi].ID)
		}
		for _, fid := range fids {
			nw := o.WithoutFiber(fid)
			migrated := nw.provCache.used
			migratedTotal += migrated
			droppedTotal += o.provCache.used - migrated
			if fid == cleanID && migrated < segEntries {
				t.Fatalf("seed %d: failing the table-less parallel migrated %d entries, < %d segment-only ones",
					seed, migrated, segEntries)
			}

			ref := optical.NewState(nw.cfg.Net)
			for idx := 0; idx < migrated; idx++ {
				e := &nw.provCache.entries[idx]
				if e.segmentOnly && !e.directOnly {
					segMigrated++
				}
				n, reqLinks, ok := topology.DecodeKey(e.key, nil)
				if !ok || n != nw.cfg.Net.NumSites() {
					t.Fatalf("seed %d fiber %d: bad migrated key", seed, fid)
				}
				req := topology.NewLinkSet(n)
				for _, l := range reqLinks {
					req.Add(l.U, l.V, l.Count)
				}
				want := ref.ProvisionEffective(req).AppendLinks(nil)
				name := fmt.Sprintf("seed %d sites %d fiber %d entry %d", seed, sites, fid, idx)
				if len(want) != len(e.links) {
					t.Fatalf("%s: migrated entry has %d links, cold provisioning %d",
						name, len(e.links), len(want))
				}
				for i, l := range want {
					if e.links[i] != l {
						t.Fatalf("%s: link %d: migrated %+v, cold %+v", name, i, e.links[i], l)
					}
				}
			}
			nw.Close()
		}
		o.Close()
	}
	if segEntriesTotal == 0 {
		t.Fatalf("squeezed wavelengths produced no segment-only runs; scenario broken")
	}
	if segMigrated == 0 {
		t.Fatalf("no segment-only entry ever migrated; the alternate audit never fires")
	}
	if droppedTotal == 0 {
		t.Fatalf("no cache entry ever dropped; predicate is vacuously accepting")
	}
	t.Logf("segment-only entries %d, segment-only migrated %d, migrated %d, dropped %d",
		segEntriesTotal, segMigrated, migratedTotal, droppedTotal)
}
