package core

import (
	"owan/internal/alloc"
	"owan/internal/topology"
	"owan/internal/transfer"
)

// GreedySeparate is the comparison algorithm of Figure 10(a): it optimizes
// the optical layer and the network layer separately. First it builds a
// network-layer topology purely from the pairwise traffic demand (assigning
// circuits to the site pairs with the most unserved demand until ports run
// out), then it runs the same routing/rate assignment as Owan on the
// resulting topology. It neither searches jointly nor tries to stay close
// to the current topology.
func (o *Owan) GreedySeparate(active []*transfer.Transfer, slot int, slotSeconds float64) *NetworkState {
	demands := o.demands(active, slot, slotSeconds)

	n := o.cfg.Net.NumSites()
	free := make([]int, n)
	for i, s := range o.cfg.Net.Sites {
		free[i] = s.RouterPorts
	}
	// Pairwise demanded rate.
	want := map[[2]int]float64{}
	for _, d := range demands {
		k := canonPair(d.Src, d.Dst)
		want[k] += d.RateGbps
	}
	ls := topology.NewLinkSet(n)
	theta := o.cfg.Net.ThetaGbps
	// Greedily add circuits to the pair with the largest unserved demand.
	for {
		var bestK [2]int
		best := 0.0
		for k, w := range want {
			unserved := w - float64(ls.Get(k[0], k[1]))*theta
			if unserved > best && free[k[0]] > 0 && free[k[1]] > 0 {
				best = unserved
				bestK = k
			}
		}
		if best <= 0 {
			break
		}
		ls.Add(bestK[0], bestK[1], 1)
		free[bestK[0]]--
		free[bestK[1]]--
	}
	// Spend leftover ports on the fiber map so stranded sites stay
	// reachable (multi-hop traffic needs transit links).
	for _, f := range o.cfg.Net.Fibers {
		if free[f.A] > 0 && free[f.B] > 0 && ls.Get(f.A, f.B) == 0 {
			ls.Add(f.A, f.B, 1)
			free[f.A]--
			free[f.B]--
		}
	}

	plan := o.opt.ProvisionTopology(ls)
	eff := plan.Effective(n)
	res := alloc.Greedy(eff, theta, demands)
	return &NetworkState{
		Topology:  ls,
		Plan:      plan,
		Effective: eff,
		Alloc:     res.Alloc,
		Stats:     SearchStats{BestEnergy: res.Throughput},
	}
}

func canonPair(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}
