package core

import (
	"testing"

	"owan/internal/topology"
)

// TestEnergyCacheCollisionGuard is the regression test for the PR 1 cache's
// collision hazard: two different topologies whose keys land in the same
// bucket must never be confused. Real 64-bit FNV collisions are impractical
// to construct, but the cache API takes the hash as an argument, so the test
// simulates a collision exactly as one would occur: two distinct link-set
// keys inserted under one hash value. The full key-byte verification on hit
// must keep them apart.
func TestEnergyCacheCollisionGuard(t *testing.T) {
	a := topology.NewLinkSet(4)
	a.Add(0, 1, 1)
	a.Add(2, 3, 1)
	b := topology.NewLinkSet(4)
	b.Add(0, 2, 1)
	b.Add(1, 3, 1)
	keyA := a.AppendKey(nil)
	keyB := b.AppendKey(nil)
	if string(keyA) == string(keyB) {
		t.Fatal("fixture broken: the two link sets encode identically")
	}

	c := newEnergyCache(8)
	const collidingHash = 0xdeadbeef
	c.put(collidingHash, keyA, 1.5)
	c.put(collidingHash, keyB, 2.5)

	if e, ok := c.get(collidingHash, keyA); !ok || e != 1.5 {
		t.Fatalf("colliding key A: got (%v, %v), want (1.5, true)", e, ok)
	}
	if e, ok := c.get(collidingHash, keyB); !ok || e != 2.5 {
		t.Fatalf("colliding key B: got (%v, %v), want (2.5, true)", e, ok)
	}
	// A third key sharing the hash but never inserted must miss, not match.
	other := topology.NewLinkSet(4)
	other.Add(0, 3, 2)
	if _, ok := c.get(collidingHash, other.AppendKey(nil)); ok {
		t.Fatal("uninserted key hit on hash match alone")
	}
}

// TestEnergyCacheKeyBufferReuse: put must copy the key, because the
// evaluator reuses its per-candidate key buffers every batch.
func TestEnergyCacheKeyBufferReuse(t *testing.T) {
	c := newEnergyCache(8)
	buf := []byte("topology-one")
	c.put(7, buf, 1.0)
	copy(buf, "TOPOLOGY-two") // clobber the caller's buffer
	if e, ok := c.get(7, []byte("topology-one")); !ok || e != 1.0 {
		t.Fatalf("entry lost after caller buffer reuse: (%v, %v)", e, ok)
	}
	if _, ok := c.get(7, buf); ok {
		t.Fatal("clobbered buffer contents found in cache")
	}
}

// TestEnergyCacheEviction: LRU eviction must remove entries from both the
// list and their hash bucket, including when several keys share a bucket.
func TestEnergyCacheEviction(t *testing.T) {
	c := newEnergyCache(2)
	c.put(1, []byte("a"), 1)
	c.put(1, []byte("b"), 2) // same bucket
	c.put(2, []byte("c"), 3) // evicts "a" (oldest)
	if _, ok := c.get(1, []byte("a")); ok {
		t.Fatal("evicted entry still served")
	}
	if e, ok := c.get(1, []byte("b")); !ok || e != 2 {
		t.Fatalf("surviving bucket-mate lost: (%v, %v)", e, ok)
	}
	if e, ok := c.get(2, []byte("c")); !ok || e != 3 {
		t.Fatalf("newest entry lost: (%v, %v)", e, ok)
	}
	if got := bucketLen(c, 1); got != 1 {
		t.Fatalf("bucket 1 holds %d entries after eviction, want 1", got)
	}
	// Refreshing an existing key must not grow the cache or duplicate it.
	c.put(1, []byte("b"), 20)
	if e, _ := c.get(1, []byte("b")); e != 20 {
		t.Fatalf("refresh did not update energy: %v", e)
	}
	if c.used != 2 {
		t.Fatalf("cache holds %d entries after refresh, want 2", c.used)
	}
}

// bucketLen counts the entries chained under one hash bucket.
func bucketLen(c *energyCache, hash uint64) int {
	n := 0
	idx, ok := c.m[hash]
	if !ok {
		return 0
	}
	for ; idx >= 0; idx = c.entries[idx].bnext {
		n++
	}
	return n
}

// TestEnergyCacheResetKeepsBuffers: reset must drop every entry but retain
// the arena slots and their key buffers, so the next slot's fills allocate
// nothing for keys that fit.
func TestEnergyCacheResetKeepsBuffers(t *testing.T) {
	c := newEnergyCache(4)
	c.put(1, []byte("alpha-key"), 1)
	c.put(2, []byte("beta-key"), 2)
	kept := cap(c.entries[0].key)
	c.reset()
	if c.used != 0 {
		t.Fatalf("used = %d after reset", c.used)
	}
	if _, ok := c.get(1, []byte("alpha-key")); ok {
		t.Fatal("entry survived reset")
	}
	c.put(3, []byte("gamma"), 3)
	if e, ok := c.get(3, []byte("gamma")); !ok || e != 3 {
		t.Fatalf("cache unusable after reset: (%v, %v)", e, ok)
	}
	if cap(c.entries[0].key) != kept {
		t.Fatalf("slot 0 key buffer not reused: cap %d, want %d", cap(c.entries[0].key), kept)
	}
}

// TestEnergyCacheSteadyStateAllocs: a warmed-up cache must not allocate per
// get/put, including through evictions — the fix for the PR 4 regression
// where every put copied its key to a fresh allocation.
func TestEnergyCacheSteadyStateAllocs(t *testing.T) {
	c := newEnergyCache(8)
	keys := make([][]byte, 32)
	for i := range keys {
		keys[i] = []byte{byte(i), 'k', 'e', 'y', byte(i)}
	}
	for i, k := range keys { // warm: force evictions so every slot has a buffer
		c.put(uint64(i%4), k, float64(i))
	}
	i := 0
	if avg := testing.AllocsPerRun(100, func() {
		k := keys[i%len(keys)]
		c.get(uint64(i%4), k)
		c.put(uint64(i%4), k, float64(i))
		i++
	}); avg != 0 {
		t.Fatalf("cache allocates %.1f per op cycle in steady state, want 0", avg)
	}
}
