package core

import (
	"testing"

	"owan/internal/topology"
)

// TestEnergyCacheCollisionGuard is the regression test for the PR 1 cache's
// collision hazard: two different topologies whose keys land in the same
// bucket must never be confused. Real 64-bit FNV collisions are impractical
// to construct, but the cache API takes the hash as an argument, so the test
// simulates a collision exactly as one would occur: two distinct link-set
// keys inserted under one hash value. The full key-byte verification on hit
// must keep them apart.
func TestEnergyCacheCollisionGuard(t *testing.T) {
	a := topology.NewLinkSet(4)
	a.Add(0, 1, 1)
	a.Add(2, 3, 1)
	b := topology.NewLinkSet(4)
	b.Add(0, 2, 1)
	b.Add(1, 3, 1)
	keyA := a.AppendKey(nil)
	keyB := b.AppendKey(nil)
	if string(keyA) == string(keyB) {
		t.Fatal("fixture broken: the two link sets encode identically")
	}

	c := newEnergyCache(8)
	const collidingHash = 0xdeadbeef
	c.put(collidingHash, keyA, 1.5)
	c.put(collidingHash, keyB, 2.5)

	if e, ok := c.get(collidingHash, keyA); !ok || e != 1.5 {
		t.Fatalf("colliding key A: got (%v, %v), want (1.5, true)", e, ok)
	}
	if e, ok := c.get(collidingHash, keyB); !ok || e != 2.5 {
		t.Fatalf("colliding key B: got (%v, %v), want (2.5, true)", e, ok)
	}
	// A third key sharing the hash but never inserted must miss, not match.
	other := topology.NewLinkSet(4)
	other.Add(0, 3, 2)
	if _, ok := c.get(collidingHash, other.AppendKey(nil)); ok {
		t.Fatal("uninserted key hit on hash match alone")
	}
}

// TestEnergyCacheKeyBufferReuse: put must copy the key, because the
// evaluator reuses its per-candidate key buffers every batch.
func TestEnergyCacheKeyBufferReuse(t *testing.T) {
	c := newEnergyCache(8)
	buf := []byte("topology-one")
	c.put(7, buf, 1.0)
	copy(buf, "TOPOLOGY-two") // clobber the caller's buffer
	if e, ok := c.get(7, []byte("topology-one")); !ok || e != 1.0 {
		t.Fatalf("entry lost after caller buffer reuse: (%v, %v)", e, ok)
	}
	if _, ok := c.get(7, buf); ok {
		t.Fatal("clobbered buffer contents found in cache")
	}
}

// TestEnergyCacheEviction: LRU eviction must remove entries from both the
// list and their hash bucket, including when several keys share a bucket.
func TestEnergyCacheEviction(t *testing.T) {
	c := newEnergyCache(2)
	c.put(1, []byte("a"), 1)
	c.put(1, []byte("b"), 2) // same bucket
	c.put(2, []byte("c"), 3) // evicts "a" (oldest)
	if _, ok := c.get(1, []byte("a")); ok {
		t.Fatal("evicted entry still served")
	}
	if e, ok := c.get(1, []byte("b")); !ok || e != 2 {
		t.Fatalf("surviving bucket-mate lost: (%v, %v)", e, ok)
	}
	if e, ok := c.get(2, []byte("c")); !ok || e != 3 {
		t.Fatalf("newest entry lost: (%v, %v)", e, ok)
	}
	if got := len(c.m[1]); got != 1 {
		t.Fatalf("bucket 1 holds %d entries after eviction, want 1", got)
	}
	// Refreshing an existing key must not grow the cache or duplicate it.
	c.put(1, []byte("b"), 20)
	if e, _ := c.get(1, []byte("b")); e != 20 {
		t.Fatalf("refresh did not update energy: %v", e)
	}
	if c.ll.Len() != 2 {
		t.Fatalf("cache holds %d entries after refresh, want 2", c.ll.Len())
	}
}
