package core

import (
	"fmt"
	"math/rand"
	"testing"

	"owan/internal/topology"
	"owan/internal/transfer"
)

// deltaHarnessNets mixes comfortable networks (where the snapshot trust gate
// passes and deltas evaluate warm) with the wavelength-starved Square (where
// every delta falls back cold), the full ISP40 benchmark topology, and a
// regenerator-starved ISP (two regenerators per concentration site, so the
// per-delta regenScarce flag and the regen-aware fallbacks actually fire) —
// the differential harness exercises both sides of every gate plus their
// interleaving on shared worker state.
func deltaHarnessNets() []*topology.Network {
	regenStarved := topology.ISP(16, 8, 3)
	regenStarved.PlaceRegenerators(2)
	return []*topology.Network{
		topology.Internet2(6),
		topology.Internet2(10),
		topology.ISP(12, 6, 1),
		topology.ISP(18, 8, 2),
		topology.ISP(40, 10, 1),
		regenStarved,
		topology.Square(),
	}
}

func randTransfers(rng *rand.Rand, sites int) []*transfer.Transfer {
	var reqs [][3]int
	for i := 0; i < 3+rng.Intn(8); i++ {
		s, d := rng.Intn(sites), rng.Intn(sites)
		if s == d {
			continue
		}
		reqs = append(reqs, [3]int{s, d, 200 + rng.Intn(5000)})
	}
	var ts []*transfer.Transfer
	for i, r := range reqs {
		ts = append(ts, transfer.NewTransfer(transfer.Request{
			ID: i, Src: r[0], Dst: r[1], SizeGbits: float64(r[2]), Deadline: transfer.NoDeadline,
		}))
	}
	return ts
}

func sameSearch(t *testing.T, name string, ref, got *NetworkState) {
	t.Helper()
	if !got.Topology.Equal(ref.Topology) {
		t.Fatalf("%s: topology diverged\n ref=%v\n got=%v", name, ref.Topology.Links(), got.Topology.Links())
	}
	if got.Stats.BestEnergy != ref.Stats.BestEnergy || got.Stats.InitialEnergy != ref.Stats.InitialEnergy {
		t.Fatalf("%s: energies diverged: best %v/%v initial %v/%v",
			name, got.Stats.BestEnergy, ref.Stats.BestEnergy, got.Stats.InitialEnergy, ref.Stats.InitialEnergy)
	}
	if got.Stats.Iterations != ref.Stats.Iterations || got.Stats.Accepted != ref.Stats.Accepted {
		t.Fatalf("%s: chain stats diverged: got %d/%d iterations/accepted, ref %d/%d",
			name, got.Stats.Iterations, got.Stats.Accepted, ref.Stats.Iterations, ref.Stats.Accepted)
	}
	if got.Stats.Churn != ref.Stats.Churn {
		t.Fatalf("%s: churn diverged: %d != %d", name, got.Stats.Churn, ref.Stats.Churn)
	}
	if !got.Effective.Equal(ref.Effective) {
		t.Fatalf("%s: effective topology diverged", name)
	}
}

// TestDeltaSearchMatchesClassic is the tentpole differential harness: across
// 300 randomized (network, workload, configuration) seeds, the full search
// with DeltaEval on must reproduce the DeltaEval-off search bit-identically —
// same trajectory, same best state, same stats. Any divergence means a delta
// evaluation was trusted when it should not have been (the one failure mode
// the trust gate must make impossible); untrusted deltas are allowed and show
// up in the fallback counter instead. The run requires both counters to be
// exercised so neither path can silently go vacuous.
func TestDeltaSearchMatchesClassic(t *testing.T) {
	nets := deltaHarnessNets()
	totalHits, totalFalls := 0, 0
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(7000 + seed))
		net := nets[int(seed)%len(nets)]
		ts := randTransfers(rng, len(net.Sites))
		if len(ts) == 0 {
			continue
		}
		cfg := Config{
			Seed:          seed,
			MaxIterations: 60 + rng.Intn(60),
			BatchSize:     1 + rng.Intn(6),
			Workers:       []int{1, 1, 4}[rng.Intn(3)],
			NeighborMoves: 1 + rng.Intn(2),
		}
		if rng.Intn(3) == 0 {
			cfg.EnergyCacheSize = 64
		}
		if rng.Intn(4) == 0 {
			cfg.MaxChurn = -1 // unbounded: every candidate evaluates
		}

		ref := runSearch(net, ts, cfg)
		cfg.DeltaEval = true
		got := runSearch(net, ts, cfg)

		name := fmt.Sprintf("seed %d net %s w%d b%d", seed, net.Name, cfg.Workers, cfg.BatchSize)
		sameSearch(t, name, ref, got)
		if ref.Stats.DeltaHits != 0 || ref.Stats.DeltaFallbacks != 0 || ref.Stats.SnapshotBuilds != 0 {
			t.Fatalf("%s: delta counters nonzero with DeltaEval off: %+v", name, ref.Stats)
		}
		if n := got.Stats.DeltaHits + got.Stats.DeltaFallbacks; got.Stats.CacheMisses != n {
			t.Fatalf("%s: %d delta evaluations but %d cache misses", name, n, got.Stats.CacheMisses)
		}
		totalHits += got.Stats.DeltaHits
		totalFalls += got.Stats.DeltaFallbacks
	}
	if totalHits == 0 {
		t.Fatal("no trusted delta evaluations across 300 seeds — the fast path never ran")
	}
	if totalFalls == 0 {
		t.Fatal("no delta fallbacks across 300 seeds — the fallback path never ran")
	}
	t.Logf("delta hits=%d fallbacks=%d", totalHits, totalFalls)
}

// TestGoldenDeterminismDelta extends the golden determinism contract to
// DeltaEval: the delta-mode search must walk the exact chain of the classic
// reference for every worker/cache configuration.
func TestGoldenDeterminismDelta(t *testing.T) {
	net, ts := searchFixture()
	ref := runSearch(net, ts, Config{Seed: 42, MaxIterations: 240, BatchSize: 4, Workers: 1})
	variants := map[string]Config{
		"delta-serial":     {Seed: 42, MaxIterations: 240, BatchSize: 4, Workers: 1, DeltaEval: true},
		"delta-parallel":   {Seed: 42, MaxIterations: 240, BatchSize: 4, Workers: 8, DeltaEval: true},
		"delta-cached":     {Seed: 42, MaxIterations: 240, BatchSize: 4, Workers: 8, EnergyCacheSize: 512, DeltaEval: true},
		"delta-batch-one":  {Seed: 42, MaxIterations: 240, BatchSize: 4, Workers: 1, EnergyCacheSize: 2, DeltaEval: true},
		"delta-multi-move": {Seed: 42, MaxIterations: 240, BatchSize: 4, Workers: 4, NeighborMoves: 1, DeltaEval: true},
	}
	for name, cfg := range variants {
		got := runSearch(net, ts, cfg)
		sameSearch(t, name, ref, got)
	}
}

// TestDeltaSearchCounters validates the delta bookkeeping: every delta-mode
// energy evaluation is either a trusted hit or a counted fallback, and the
// snapshot is rebuilt at most once per accepted base (plus the initial one).
func TestDeltaSearchCounters(t *testing.T) {
	net, ts := searchFixture()
	for _, workers := range []int{1, 4} {
		st := runSearch(net, ts, Config{
			Seed: 5, MaxIterations: 150, Workers: workers, BatchSize: 4, DeltaEval: true,
		})
		name := fmt.Sprintf("w%d", workers)
		sum := 0
		for _, e := range st.Stats.WorkerEvals {
			sum += e
		}
		if sum != st.Stats.CacheMisses {
			t.Errorf("%s: worker evals sum %d != cache misses %d", name, sum, st.Stats.CacheMisses)
		}
		if n := st.Stats.DeltaHits + st.Stats.DeltaFallbacks; n != sum {
			t.Errorf("%s: delta hits+fallbacks %d != evaluations %d", name, n, sum)
		}
		if st.Stats.SnapshotBuilds == 0 {
			t.Errorf("%s: no snapshot builds recorded", name)
		}
		if st.Stats.SnapshotBuilds > st.Stats.Accepted+1 {
			t.Errorf("%s: %d snapshot builds for %d acceptances — rebuilt without a base change",
				name, st.Stats.SnapshotBuilds, st.Stats.Accepted)
		}
		if st.Stats.DeltaHits == 0 {
			t.Errorf("%s: no trusted delta evaluations on a comfortable network", name)
		}
	}
}

// TestNeighborMovesMatchesComputeNeighbor pins the move generator to the
// materializing generator draw-for-draw: two controllers sharing a seed must
// produce identical candidate sequences, one as topologies and one as move
// lists, across a random walk of accepted bases.
func TestNeighborMovesMatchesComputeNeighbor(t *testing.T) {
	for _, moves := range []int{1, 2, 3} {
		net := topology.Internet2(6)
		a := New(Config{Net: net, Seed: 99, NeighborMoves: moves})
		b := New(Config{Net: net, Seed: 99, NeighborMoves: moves})
		cur := topology.InitialTopology(net)
		var links []topology.Link
		var buf []swapMove
		for step := 0; step < 200; step++ {
			want := a.ComputeNeighbor(cur)
			links = cur.AppendLinks(links[:0])
			var ok bool
			buf, ok = b.neighborMoves(cur, links, cur.TotalCircuits(), buf[:0])
			if (want == nil) != !ok {
				t.Fatalf("moves=%d step %d: generators disagree on feasibility", moves, step)
			}
			if want == nil {
				continue
			}
			got := materializeMoves(cur, buf)
			if !got.Equal(want) {
				t.Fatalf("moves=%d step %d: candidates diverged\n want=%v\n got=%v",
					moves, step, want.Links(), got.Links())
			}
			// Walk both chains to a new base occasionally so later steps
			// sample from evolved topologies.
			if step%3 == 0 {
				cur = want
			}
		}
	}
}
