package core

import (
	"strings"
	"testing"
	"time"

	"owan/internal/topology"
)

func TestDefaultConfigValidatesAndMatchesWithDefaults(t *testing.T) {
	net := topology.Internet2(4)
	cfg := DefaultConfig(net)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	// DefaultConfig must agree with the zero-value resolution path, so
	// the explicit and implicit default routes cannot drift.
	implicit := (Config{Net: net, Seed: 1}).withDefaults()
	if cfg.Alpha != implicit.Alpha || cfg.EpsilonFrac != implicit.EpsilonFrac ||
		cfg.MaxIterations != implicit.MaxIterations || cfg.InitTempFrac != implicit.InitTempFrac ||
		cfg.NeighborMoves != implicit.NeighborMoves || cfg.MaxChurn != implicit.MaxChurn ||
		cfg.Replicas != implicit.Replicas || cfg.ExchangeInterval != implicit.ExchangeInterval ||
		cfg.WarmTempFloor != implicit.WarmTempFloor || cfg.ConvergeWindows != implicit.ConvergeWindows {
		t.Errorf("DefaultConfig drifted from withDefaults:\n explicit %+v\n implicit %+v", cfg, implicit)
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	net := topology.Internet2(4)
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"nil net", func(c *Config) { c.Net = nil }, "Net"},
		{"alpha=1", func(c *Config) { c.Alpha = 1 }, "Alpha"},
		{"alpha negative", func(c *Config) { c.Alpha = -0.5 }, "Alpha"},
		{"alpha above 1", func(c *Config) { c.Alpha = 1.5 }, "Alpha"},
		{"epsilon=2", func(c *Config) { c.EpsilonFrac = 2 }, "EpsilonFrac"},
		{"negative init temp", func(c *Config) { c.InitTempFrac = -1 }, "InitTempFrac"},
		{"negative starve", func(c *Config) { c.StarveSlots = -1 }, "StarveSlots"},
		{"negative iterations", func(c *Config) { c.MaxIterations = -1 }, "MaxIterations"},
		{"negative budget", func(c *Config) { c.TimeBudget = -time.Second }, "TimeBudget"},
		{"negative moves", func(c *Config) { c.NeighborMoves = -1 }, "NeighborMoves"},
		{"negative workers", func(c *Config) { c.Workers = -1 }, "Workers"},
		{"negative batch", func(c *Config) { c.BatchSize = -1 }, "BatchSize"},
		{"negative cache", func(c *Config) { c.EnergyCacheSize = -1 }, "EnergyCacheSize"},
		{"negative replicas", func(c *Config) { c.Replicas = -1 }, "Replicas"},
		{"negative exchange interval", func(c *Config) { c.ExchangeInterval = -2 }, "ExchangeInterval"},
		{"warm floor negative", func(c *Config) { c.WarmTempFloor = -0.1 }, "WarmTempFloor"},
		{"warm floor above 1", func(c *Config) { c.WarmTempFloor = 1.5 }, "WarmTempFloor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(net)
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("nonsense config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name knob %q", err, tc.want)
			}
		})
	}
}

func TestValidateAllowsZeroDefaultsAndNegativeChurn(t *testing.T) {
	cfg := Config{Net: topology.Internet2(4)}
	if err := cfg.Validate(); err != nil {
		t.Errorf("zero-value config rejected: %v", err)
	}
	cfg.MaxChurn = -1 // contract: negative disables the churn bound
	if err := cfg.Validate(); err != nil {
		t.Errorf("negative MaxChurn rejected: %v", err)
	}
	cfg.ConvergeWindows = -1 // contract: negative disables early exit
	if err := cfg.Validate(); err != nil {
		t.Errorf("negative ConvergeWindows rejected: %v", err)
	}
	cfg.WarmTempFloor = 1 // boundary: floor 1 makes warm start inert, still legal
	if err := cfg.Validate(); err != nil {
		t.Errorf("WarmTempFloor=1 rejected: %v", err)
	}
}
