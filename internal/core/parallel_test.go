package core

import (
	"fmt"
	"testing"

	"owan/internal/topology"
	"owan/internal/transfer"
)

// searchFixture is a deterministic workload on the Internet2 topology with
// enough demand diversity that the annealing search makes real moves.
func searchFixture() (*topology.Network, []*transfer.Transfer) {
	net := topology.Internet2(8)
	ts := mkTransfers(
		[3]int{0, 8, 5000}, [3]int{1, 4, 3000}, [3]int{2, 6, 800},
		[3]int{3, 7, 2600}, [3]int{5, 0, 1200}, [3]int{6, 1, 4200},
	)
	return net, ts
}

func runSearch(net *topology.Network, ts []*transfer.Transfer, cfg Config) *NetworkState {
	cfg.Net = net
	cfg.Policy = transfer.SJF
	o := New(cfg)
	defer o.Close()
	return o.ComputeNetworkState(topology.InitialTopology(net), ts, 0, 300)
}

// TestGoldenDeterminism is the determinism contract: for a fixed
// (Seed, BatchSize) the search result is bit-identical across repeated
// runs, across worker counts (serial vs parallel evaluation), and across
// cache configurations. Only Seed and BatchSize may change the trajectory.
func TestGoldenDeterminism(t *testing.T) {
	net, ts := searchFixture()
	base := Config{Seed: 42, MaxIterations: 240, BatchSize: 4, Workers: 1}

	ref := runSearch(net, ts, base)
	if ref.Stats.Iterations == 0 || ref.Stats.Accepted == 0 {
		t.Fatalf("degenerate reference search: %+v", ref.Stats)
	}

	variants := map[string]Config{
		"rerun":           base,
		"parallel-2":      {Seed: 42, MaxIterations: 240, BatchSize: 4, Workers: 2},
		"parallel-8":      {Seed: 42, MaxIterations: 240, BatchSize: 4, Workers: 8},
		"parallel-cached": {Seed: 42, MaxIterations: 240, BatchSize: 4, Workers: 8, EnergyCacheSize: 512},
		"serial-cached":   {Seed: 42, MaxIterations: 240, BatchSize: 4, Workers: 1, EnergyCacheSize: 512},
		"oversized-pool":  {Seed: 42, MaxIterations: 240, BatchSize: 4, Workers: 16},
		"tiny-cache":      {Seed: 42, MaxIterations: 240, BatchSize: 4, Workers: 4, EnergyCacheSize: 2},
	}
	for name, cfg := range variants {
		got := runSearch(net, ts, cfg)
		if !got.Topology.Equal(ref.Topology) {
			t.Errorf("%s: topology diverged from reference\n ref=%v\n got=%v",
				name, ref.Topology.Links(), got.Topology.Links())
		}
		if got.Stats.BestEnergy != ref.Stats.BestEnergy {
			t.Errorf("%s: best energy %v != reference %v", name, got.Stats.BestEnergy, ref.Stats.BestEnergy)
		}
		if got.Stats.Iterations != ref.Stats.Iterations || got.Stats.Accepted != ref.Stats.Accepted {
			t.Errorf("%s: chain stats diverged: got %d/%d iterations/accepted, ref %d/%d",
				name, got.Stats.Iterations, got.Stats.Accepted, ref.Stats.Iterations, ref.Stats.Accepted)
		}
		if got.Topology.Key() != ref.Topology.Key() {
			t.Errorf("%s: canonical keys differ for equal-looking topologies", name)
		}
	}

	// Sanity check of the test itself: a different seed must diverge
	// somewhere, otherwise the assertions above prove nothing.
	other := runSearch(net, ts, Config{Seed: 43, MaxIterations: 240, BatchSize: 4, Workers: 1})
	if other.Topology.Equal(ref.Topology) && other.Stats.Accepted == ref.Stats.Accepted {
		t.Log("warning: seed 43 matched seed 42 exactly; fixture may be too easy")
	}
}

// TestEnergyCacheCorrectness records every cache hit during a search and
// recomputes the energy from scratch on a fresh optical.State, asserting
// exact equality. This guards against stale-state bugs in worker-pool
// State reuse: a worker whose Reset missed occupancy would poison the
// cache with energies that a clean evaluation cannot reproduce.
func TestEnergyCacheCorrectness(t *testing.T) {
	// The 4-site square revisits topologies constantly, so the cache gets
	// real hits within a few hundred iterations.
	net := topology.Square()
	ts := mkTransfers([3]int{0, 1, 2000}, [3]int{2, 3, 2000}, [3]int{0, 2, 900})
	cfg := Config{
		Net: net, Policy: transfer.SJF, Seed: 7,
		MaxIterations: 400, BatchSize: 4, Workers: 4, EnergyCacheSize: 128,
	}
	o := New(cfg)

	type hit struct {
		s      *topology.LinkSet
		energy float64
	}
	var hits []hit
	o.onCacheHit = func(s *topology.LinkSet, energy float64) {
		hits = append(hits, hit{s: s.Clone(), energy: energy})
	}
	st := o.ComputeNetworkState(topology.InitialTopology(net), ts, 0, 300)
	if st.Stats.CacheHits == 0 {
		t.Fatal("search produced no cache hits; fixture lost its power")
	}
	if len(hits) != st.Stats.CacheHits {
		t.Fatalf("hook observed %d hits, stats counted %d", len(hits), st.Stats.CacheHits)
	}

	// Recompute every hit on a completely fresh controller (fresh
	// optical.State, no shared occupancy) with the identical demand list.
	fresh := New(cfg)
	demands := fresh.demands(ts, 0, 300)
	for i, h := range hits {
		if got := fresh.Energy(h.s, demands); got != h.energy {
			t.Fatalf("hit %d: cached energy %v != fresh evaluation %v for %v",
				i, h.energy, got, h.s.Links())
		}
	}
}

// TestSearchCounters validates the bookkeeping the engine exports: every
// evaluated candidate is either a cache hit or a miss, every miss is one
// worker evaluation, and the pool reports one slot per worker.
func TestSearchCounters(t *testing.T) {
	net, ts := searchFixture()
	for _, cfg := range []Config{
		{Seed: 5, MaxIterations: 150, Workers: 1},
		{Seed: 5, MaxIterations: 150, Workers: 4, BatchSize: 4},
		{Seed: 5, MaxIterations: 150, Workers: 4, BatchSize: 4, EnergyCacheSize: 64},
		{Seed: 5, MaxIterations: 150, Workers: 1, EnergyCacheSize: 64},
	} {
		name := fmt.Sprintf("w%d-b%d-c%d", cfg.Workers, cfg.BatchSize, cfg.EnergyCacheSize)
		st := runSearch(net, ts, cfg)
		wantSlots := cfg.Workers
		if wantSlots < 1 {
			wantSlots = 1
		}
		if len(st.Stats.WorkerEvals) != wantSlots {
			t.Errorf("%s: %d worker slots, want %d", name, len(st.Stats.WorkerEvals), wantSlots)
		}
		sum := 0
		for _, e := range st.Stats.WorkerEvals {
			sum += e
		}
		if sum != st.Stats.CacheMisses {
			t.Errorf("%s: worker evals sum %d != cache misses %d", name, sum, st.Stats.CacheMisses)
		}
		if st.Stats.CacheMisses == 0 {
			t.Errorf("%s: no energy evaluations recorded", name)
		}
		if cfg.EnergyCacheSize == 0 && st.Stats.CacheHits != 0 {
			t.Errorf("%s: cache disabled but %d hits reported", name, st.Stats.CacheHits)
		}
		if lookups := st.Stats.CacheHits + st.Stats.CacheMisses; lookups > st.Stats.Iterations {
			t.Errorf("%s: %d lookups exceed %d iterations", name, lookups, st.Stats.Iterations)
		}
	}
}

// TestBatchSizeOneMatchesLegacyChain pins the default configuration to the
// classic serial annealing loop: BatchSize 1 with any worker count must
// walk the same chain as the plain serial run.
func TestBatchSizeOneMatchesLegacyChain(t *testing.T) {
	net, ts := searchFixture()
	serial := runSearch(net, ts, Config{Seed: 21, MaxIterations: 200})
	pooled := runSearch(net, ts, Config{Seed: 21, MaxIterations: 200, Workers: 3, BatchSize: 1})
	if !serial.Topology.Equal(pooled.Topology) || serial.Stats.BestEnergy != pooled.Stats.BestEnergy {
		t.Error("BatchSize 1 with a pool diverged from the serial chain")
	}
}
