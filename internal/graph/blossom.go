package graph

// MaxMatching computes a maximum-cardinality matching in a general
// (non-bipartite) undirected graph using Edmonds' blossom algorithm in
// O(V^3). The input is an adjacency list adj where adj[v] lists the
// neighbors of v (parallel entries and self loops are tolerated; self loops
// are ignored). It returns match, where match[v] is the vertex matched to v
// or -1 if v is unmatched.
//
// The Owan controller uses maximum matching when pairing spare router ports
// during topology synthesis (§4.2 of the paper implements the blossom
// algorithm for this purpose).
func MaxMatching(n int, adj [][]int) []int {
	match := make([]int, n)
	parent := make([]int, n)
	base := make([]int, n)
	q := make([]int, 0, n)
	used := make([]bool, n)
	blossom := make([]bool, n)
	for i := range match {
		match[i] = -1
	}

	lca := func(a, b int) int {
		usedPath := make([]bool, n)
		for {
			a = base[a]
			usedPath[a] = true
			if match[a] == -1 {
				break
			}
			a = parent[match[a]]
		}
		for {
			b = base[b]
			if usedPath[b] {
				return b
			}
			b = parent[match[b]]
		}
	}

	markPath := func(v, b, child int) {
		for base[v] != b {
			blossom[base[v]] = true
			blossom[base[match[v]]] = true
			parent[v] = child
			child = match[v]
			v = parent[match[v]]
		}
	}

	findPath := func(root int) int {
		for i := range used {
			used[i] = false
			parent[i] = -1
			base[i] = i
		}
		used[root] = true
		q = q[:0]
		q = append(q, root)
		for len(q) > 0 {
			v := q[0]
			q = q[1:]
			for _, to := range adj[v] {
				if to == v {
					continue
				}
				if base[v] == base[to] || match[v] == to {
					continue
				}
				if to == root || (match[to] != -1 && parent[match[to]] != -1) {
					// Found a blossom: contract it.
					curBase := lca(v, to)
					for i := range blossom {
						blossom[i] = false
					}
					markPath(v, curBase, to)
					markPath(to, curBase, v)
					for i := 0; i < n; i++ {
						if blossom[base[i]] {
							base[i] = curBase
							if !used[i] {
								used[i] = true
								q = append(q, i)
							}
						}
					}
				} else if parent[to] == -1 {
					parent[to] = v
					if match[to] == -1 {
						return to // augmenting path found
					}
					used[match[to]] = true
					q = append(q, match[to])
				}
			}
		}
		return -1
	}

	for v := 0; v < n; v++ {
		if match[v] != -1 {
			continue
		}
		u := findPath(v)
		if u == -1 {
			continue
		}
		// Augment along the path ending at u.
		for u != -1 {
			pv := parent[u]
			ppv := match[pv]
			match[u] = pv
			match[pv] = u
			u = ppv
		}
	}
	return match
}

// MatchingSize returns the number of matched pairs in a match slice as
// produced by MaxMatching.
func MatchingSize(match []int) int {
	c := 0
	for v, m := range match {
		if m > v {
			c++
		}
	}
	return c
}
