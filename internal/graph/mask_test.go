package graph

import (
	"math/rand"
	"testing"
)

// maskCase draws a random reachability relation over n vertices in multi-word
// bitset form plus a random vertex mask and node-weight vector.
func maskCase(rng *rand.Rand, n int) (reach []uint64, words int, nodeMask []uint64, w []float64) {
	words = (n + 63) / 64
	reach = make([]uint64, n*words)
	nodeMask = make([]uint64, words)
	w = make([]float64, n)
	for v := 0; v < n; v++ {
		w[v] = rng.Float64() * 10
		if rng.Float64() < 0.8 {
			nodeMask[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < 0.15 {
				reach[u*words+v>>6] |= 1 << (uint(v) & 63)
			}
		}
	}
	return reach, words, nodeMask, w
}

// materializedShortest builds the transit graph the mask Dijkstra avoids —
// directed edges u->v with head-node weight for every reachable pair inside
// the mask, neighbors in ascending id order — and runs ShortestPathScratch,
// returning the vertex sequence. This is the reference the optical layer's
// slow path uses, so agreement here is agreement with findRegenRoute's
// materialized branch.
func materializedShortest(sc *Scratch, g *Graph, reach []uint64, words int, nodeMask []uint64, w []float64, src, dst int) ([]int, bool) {
	n := len(reach) / words
	g.Reset(n)
	id := 0
	for u := 0; u < n; u++ {
		if nodeMask[u>>6]>>(uint(u)&63)&1 == 0 {
			continue
		}
		for v := 0; v < n; v++ {
			if v == u || nodeMask[v>>6]>>(uint(v)&63)&1 == 0 {
				continue
			}
			if reach[u*words+v>>6]>>(uint(v)&63)&1 == 1 {
				g.AddEdge(u, v, w[v], id)
				id++
			}
		}
	}
	p := g.ShortestPathScratch(sc, src, dst)
	if p == nil {
		return nil, false
	}
	hops := []int{src}
	for _, e := range p.Edges {
		hops = append(hops, e.To)
	}
	return hops, true
}

// TestMaskShortestWMatchesMaterialized is the multi-word mask Dijkstra
// differential: across sizes on both sides of the word boundary the mask
// search must return exactly the path the materialized transit graph does.
func TestMaskShortestWMatchesMaterialized(t *testing.T) {
	var sc, scRef Scratch
	g := New(0)
	for _, n := range []int{5, 40, 64, 65, 100, 130} {
		for seed := int64(0); seed < 60; seed++ {
			rng := rand.New(rand.NewSource(seed*1000 + int64(n)))
			reach, words, nodeMask, w := maskCase(rng, n)
			for q := 0; q < 8; q++ {
				src, dst := rng.Intn(n), rng.Intn(n)
				if src == dst || nodeMask[src>>6]>>(uint(src)&63)&1 == 0 ||
					nodeMask[dst>>6]>>(uint(dst)&63)&1 == 0 {
					continue
				}
				want, wok := materializedShortest(&scRef, g, reach, words, nodeMask, w, src, dst)
				got, gok := MaskShortestNodeWeightedW(&sc, reach, words, nodeMask, w, src, dst, nil)
				if wok != gok {
					t.Fatalf("n=%d seed %d (%d,%d): reachable %v, reference %v", n, seed, src, dst, gok, wok)
				}
				if !gok {
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("n=%d seed %d (%d,%d): hops %v, reference %v", n, seed, src, dst, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d seed %d (%d,%d): hops %v, reference %v", n, seed, src, dst, got, want)
					}
				}
			}
		}
	}
}

// TestMaskShortestWMatchesSingleWord pins the multi-word routine to the
// single-word one on graphs that fit a word: the specialized n<=64 path and
// the general path must be interchangeable.
func TestMaskShortestWMatchesSingleWord(t *testing.T) {
	var scW, sc1 Scratch
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(61)
		reach, words, nodeMask, w := maskCase(rng, n)
		if words != 1 {
			t.Fatalf("n=%d produced %d words", n, words)
		}
		for q := 0; q < 6; q++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src == dst || nodeMask[0]>>uint(src)&1 == 0 || nodeMask[0]>>uint(dst)&1 == 0 {
				continue
			}
			want, wok := MaskShortestNodeWeighted(&sc1, reach, nodeMask[0], w, src, dst, nil)
			got, gok := MaskShortestNodeWeightedW(&scW, reach, 1, nodeMask, w, src, dst, nil)
			if wok != gok || len(want) != len(got) {
				t.Fatalf("seed %d (%d,%d): W variant diverged: %v vs %v", seed, src, dst, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d (%d,%d): W variant path %v, single-word %v", seed, src, dst, got, want)
				}
			}
		}
	}
}
