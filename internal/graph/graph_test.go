package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddUndirected(i, (i+1)%n, 1, i)
	}
	return g
}

func TestShortestPathLine(t *testing.T) {
	g := New(4)
	g.AddUndirected(0, 1, 1, 0)
	g.AddUndirected(1, 2, 2, 1)
	g.AddUndirected(2, 3, 3, 2)
	p := g.ShortestPath(0, 3)
	if p == nil {
		t.Fatal("no path found")
	}
	if p.Weight != 6 {
		t.Errorf("weight = %v, want 6", p.Weight)
	}
	if got := p.Vertices(); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Errorf("vertices = %v", got)
	}
}

func TestShortestPathPrefersLighter(t *testing.T) {
	g := New(3)
	g.AddUndirected(0, 2, 10, 0)
	g.AddUndirected(0, 1, 1, 1)
	g.AddUndirected(1, 2, 1, 2)
	p := g.ShortestPath(0, 2)
	if p.Weight != 2 {
		t.Errorf("weight = %v, want 2 (via middle vertex)", p.Weight)
	}
	if p.Len() != 2 {
		t.Errorf("len = %d, want 2", p.Len())
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	g.AddUndirected(0, 1, 1, 0)
	if p := g.ShortestPath(0, 2); p != nil {
		t.Errorf("expected nil path, got %v", p)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := ring(5)
	p := g.ShortestPath(2, 2)
	if p == nil || p.Weight != 0 || p.Len() != 0 {
		t.Errorf("self path = %+v, want empty zero-weight path", p)
	}
}

func TestShortestDistancesRing(t *testing.T) {
	g := ring(6)
	d := g.ShortestDistances(0)
	want := []float64{0, 1, 2, 3, 2, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("d[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestBFSAndConnected(t *testing.T) {
	g := ring(5)
	d := g.BFS(0)
	if d[2] != 2 || d[4] != 1 {
		t.Errorf("bfs = %v", d)
	}
	if !g.Connected() {
		t.Error("ring should be connected")
	}
	g2 := New(4)
	g2.AddUndirected(0, 1, 1, 0)
	g2.AddUndirected(2, 3, 1, 1)
	if g2.Connected() {
		t.Error("disjoint pairs should not be connected")
	}
}

func TestMultiEdgeShortest(t *testing.T) {
	g := New(2)
	g.AddUndirected(0, 1, 5, 0)
	g.AddUndirected(0, 1, 2, 1)
	p := g.ShortestPath(0, 1)
	if p.Weight != 2 || p.Edges[0].ID != 1 {
		t.Errorf("should take the lighter parallel edge, got %+v", p)
	}
}

func TestKShortestPathsSquare(t *testing.T) {
	// Square: 0-1-3 (len 2) and 0-2-3 (len 2) and direct 0-3 (len 3).
	g := New(4)
	g.AddUndirected(0, 1, 1, 0)
	g.AddUndirected(1, 3, 1, 1)
	g.AddUndirected(0, 2, 1, 2)
	g.AddUndirected(2, 3, 1, 3)
	g.AddUndirected(0, 3, 3, 4)
	ps := g.KShortestPaths(0, 3, 3)
	if len(ps) != 3 {
		t.Fatalf("got %d paths, want 3", len(ps))
	}
	if ps[0].Weight != 2 || ps[1].Weight != 2 || ps[2].Weight != 3 {
		t.Errorf("weights = %v %v %v, want 2 2 3", ps[0].Weight, ps[1].Weight, ps[2].Weight)
	}
	// Paths must be distinct and loopless.
	seen := map[string]bool{}
	for _, p := range ps {
		vs := p.Vertices()
		visited := map[int]bool{}
		for _, v := range vs {
			if visited[v] {
				t.Errorf("path %v has a loop", vs)
			}
			visited[v] = true
		}
		key := ""
		for _, v := range vs {
			key += string(rune('a' + v))
		}
		if seen[key] {
			t.Errorf("duplicate path %v", vs)
		}
		seen[key] = true
	}
}

func TestKShortestFewerThanK(t *testing.T) {
	g := New(3)
	g.AddUndirected(0, 1, 1, 0)
	g.AddUndirected(1, 2, 1, 1)
	ps := g.KShortestPaths(0, 2, 5)
	if len(ps) != 1 {
		t.Errorf("got %d paths, want 1 (only one loopless path exists)", len(ps))
	}
}

func TestKShortestOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New(12)
	id := 0
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			if rng.Float64() < 0.4 {
				g.AddUndirected(i, j, 1+rng.Float64()*9, id)
				id++
			}
		}
	}
	ps := g.KShortestPaths(0, 11, 8)
	for i := 1; i < len(ps); i++ {
		if ps[i].Weight < ps[i-1].Weight-1e-9 {
			t.Errorf("paths out of order: %v then %v", ps[i-1].Weight, ps[i].Weight)
		}
	}
}

func TestMaxFlowSimple(t *testing.T) {
	// Classic diamond: s=0, t=3.
	f := NewFlowNetwork(4)
	f.AddArc(0, 1, 10)
	f.AddArc(0, 2, 10)
	f.AddArc(1, 3, 10)
	f.AddArc(2, 3, 10)
	f.AddArc(1, 2, 1)
	if got := f.MaxFlow(0, 3); math.Abs(got-20) > 1e-9 {
		t.Errorf("maxflow = %v, want 20", got)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	f := NewFlowNetwork(3)
	f.AddArc(0, 1, 5)
	f.AddArc(1, 2, 3)
	if got := f.MaxFlow(0, 2); math.Abs(got-3) > 1e-9 {
		t.Errorf("maxflow = %v, want 3", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	f := NewFlowNetwork(4)
	f.AddArc(0, 1, 5)
	f.AddArc(2, 3, 5)
	if got := f.MaxFlow(0, 3); got != 0 {
		t.Errorf("maxflow = %v, want 0", got)
	}
}

func TestBlossomTriangle(t *testing.T) {
	// Triangle: max matching = 1.
	adj := [][]int{{1, 2}, {0, 2}, {0, 1}}
	m := MaxMatching(3, adj)
	if MatchingSize(m) != 1 {
		t.Errorf("matching size = %d, want 1", MatchingSize(m))
	}
}

func TestBlossomPentagonPlusEdge(t *testing.T) {
	// 5-cycle with a pendant: odd cycle forces a blossom contraction.
	// Vertices 0..4 form a cycle, 5 attached to 0. Max matching = 3? No:
	// 6 vertices, 5-cycle 0-1-2-3-4-0 plus edge 0-5. Matching {1-2, 3-4, 0-5}
	// has size 3.
	adj := [][]int{
		{1, 4, 5},
		{0, 2},
		{1, 3},
		{2, 4},
		{3, 0},
		{0},
	}
	m := MaxMatching(6, adj)
	if MatchingSize(m) != 3 {
		t.Errorf("matching size = %d, want 3 (match=%v)", MatchingSize(m), m)
	}
}

func TestBlossomPerfectOnEvenCycle(t *testing.T) {
	n := 10
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		adj[i] = []int{(i + 1) % n, (i + n - 1) % n}
	}
	m := MaxMatching(n, adj)
	if MatchingSize(m) != n/2 {
		t.Errorf("matching size = %d, want %d", MatchingSize(m), n/2)
	}
}

func TestBlossomConsistency(t *testing.T) {
	// match must be a symmetric involution along edges of the graph.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		adjSet := make([]map[int]bool, n)
		for i := range adjSet {
			adjSet[i] = map[int]bool{}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					adjSet[i][j] = true
					adjSet[j][i] = true
				}
			}
		}
		adj := make([][]int, n)
		for i := range adj {
			for j := range adjSet[i] {
				adj[i] = append(adj[i], j)
			}
		}
		m := MaxMatching(n, adj)
		for v, u := range m {
			if u == -1 {
				continue
			}
			if m[u] != v {
				return false
			}
			if !adjSet[v][u] {
				return false // matched along a non-edge
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBlossomMaximality(t *testing.T) {
	// Property: no augmenting edge remains between two unmatched vertices.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		adj := make([][]int, n)
		type pair struct{ a, b int }
		var edges []pair
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.35 {
					adj[i] = append(adj[i], j)
					adj[j] = append(adj[j], i)
					edges = append(edges, pair{i, j})
				}
			}
		}
		m := MaxMatching(n, adj)
		for _, e := range edges {
			if m[e.a] == -1 && m[e.b] == -1 {
				return false // trivially augmentable: not even maximal
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		id := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.25 {
					g.AddUndirected(i, j, 1, id)
					id++
				}
			}
		}
		d := g.ShortestDistances(0)
		b := g.BFS(0)
		for v := 0; v < n; v++ {
			if b[v] < 0 {
				if !math.IsInf(d[v], 1) {
					return false
				}
				continue
			}
			if d[v] != float64(b[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPathVerticesNilSafety(t *testing.T) {
	var p *Path
	if p.Vertices() != nil {
		t.Error("nil path should have nil vertices")
	}
	empty := &Path{}
	if empty.Vertices() != nil {
		t.Error("empty path should have nil vertices")
	}
}
