package graph

import (
	"math/rand"
	"testing"
)

func randomGraph(rng *rand.Rand) *Graph {
	n := 3 + rng.Intn(10)
	g := New(n)
	id := 0
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < 0.35 {
				g.AddEdge(u, v, 1+rng.Float64()*100, id)
				id++
			}
		}
	}
	return g
}

func samePath(a, b *Path) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Weight != b.Weight || len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

// TestScratchVariantsMatch asserts the scratch-buffer shortest-path routines
// return exactly what the allocating ones do, across random graphs with one
// Scratch reused throughout (including across graph sizes).
func TestScratchVariantsMatch(t *testing.T) {
	var sc Scratch
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		for q := 0; q < 6; q++ {
			src, dst := rng.Intn(g.n), rng.Intn(g.n)
			want := g.ShortestPath(src, dst)
			got := g.ShortestPathScratch(&sc, src, dst)
			if !samePath(want, got) {
				t.Fatalf("seed %d: ShortestPathScratch(%d,%d) diverged", seed, src, dst)
			}
			k := 1 + rng.Intn(4)
			wantK := g.KShortestPaths(src, dst, k)
			gotK := g.KShortestPathsScratch(&sc, src, dst, k)
			if len(wantK) != len(gotK) {
				t.Fatalf("seed %d: KShortestPathsScratch(%d,%d,%d): %d paths, want %d",
					seed, src, dst, k, len(gotK), len(wantK))
			}
			for i := range wantK {
				if !samePath(wantK[i], gotK[i]) {
					t.Fatalf("seed %d: KShortestPathsScratch(%d,%d,%d): path %d diverged", seed, src, dst, k, i)
				}
			}
		}
	}
}

// TestGraphResetReusesRows asserts Reset keeps adjacency backing arrays and
// clears edges, including when shrinking and regrowing.
func TestGraphResetReusesRows(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 2, 1, 1)
	g.Reset(2)
	if g.n != 2 {
		t.Fatalf("n = %d after Reset(2)", g.n)
	}
	if p := g.ShortestPath(0, 1); p != nil {
		t.Fatal("edges survived Reset")
	}
	g.AddEdge(0, 1, 5, 7)
	if p := g.ShortestPath(0, 1); p == nil || p.Weight != 5 {
		t.Fatalf("graph unusable after Reset: %+v", p)
	}
	g.Reset(6) // regrow past the original size
	g.AddEdge(4, 5, 2, 9)
	if p := g.ShortestPath(4, 5); p == nil || p.Weight != 2 {
		t.Fatalf("graph unusable after regrow: %+v", p)
	}
}
