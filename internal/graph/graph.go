// Package graph provides the graph substrate used throughout Owan: weighted
// multigraphs, shortest paths (plain and node-weighted), Yen's k-shortest
// paths, max-flow, connectivity helpers, and a Blossom maximum-matching
// implementation for general graphs.
//
// Vertices are dense integer ids in [0, N). Edges are directed internally;
// undirected graphs insert both arcs. Multi-edges are supported because the
// network layer of a WAN routinely has parallel links (several circuits
// between the same router pair).
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is a directed arc with a weight (distance, cost) and an application
// payload id (for example, the index of the link it represents).
type Edge struct {
	From, To int
	Weight   float64
	ID       int
}

// Graph is a directed weighted multigraph over vertices [0, N).
type Graph struct {
	n   int
	adj [][]Edge
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts a directed arc.
func (g *Graph) AddEdge(from, to int, w float64, id int) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", from, to, g.n))
	}
	g.adj[from] = append(g.adj[from], Edge{From: from, To: to, Weight: w, ID: id})
}

// AddUndirected inserts both arcs of an undirected edge.
func (g *Graph) AddUndirected(u, v int, w float64, id int) {
	g.AddEdge(u, v, w, id)
	g.AddEdge(v, u, w, id)
}

// Out returns the out-arcs of v. The returned slice must not be mutated.
func (g *Graph) Out(v int) []Edge { return g.adj[v] }

// EdgeCount returns the total number of directed arcs.
func (g *Graph) EdgeCount() int {
	c := 0
	for _, a := range g.adj {
		c += len(a)
	}
	return c
}

// Path is a sequence of edges from a source to a destination.
type Path struct {
	Edges  []Edge
	Weight float64
}

// Vertices returns the vertex sequence of the path, starting at the source.
// A nil path returns nil; an empty path (src==dst) returns nil as well
// because the source is unknown.
func (p *Path) Vertices() []int {
	if p == nil || len(p.Edges) == 0 {
		return nil
	}
	vs := make([]int, 0, len(p.Edges)+1)
	vs = append(vs, p.Edges[0].From)
	for _, e := range p.Edges {
		vs = append(vs, e.To)
	}
	return vs
}

// Len returns the hop count.
func (p *Path) Len() int { return len(p.Edges) }

// item is a binary-heap entry for Dijkstra.
type item struct {
	v    int
	dist float64
}

type heap []item

func (h *heap) push(it item) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist <= (*h)[i].dist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *heap) pop() item {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && old[l].dist < old[small].dist {
			small = l
		}
		if r < n && old[r].dist < old[small].dist {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// ShortestPath runs Dijkstra from src to dst using edge weights. It returns
// nil if dst is unreachable. Ties are broken by insertion order, which keeps
// results deterministic for a deterministically built graph. Repeated
// callers should hold a Scratch and use ShortestPathScratch.
func (g *Graph) ShortestPath(src, dst int) *Path {
	var sc Scratch
	return g.ShortestPathScratch(&sc, src, dst)
}

// ShortestDistances runs Dijkstra from src and returns the distance to every
// vertex (Inf for unreachable vertices).
func (g *Graph) ShortestDistances(src int) []float64 {
	dist := make([]float64, g.n)
	seen := make([]bool, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := heap{}
	h.push(item{src, 0})
	for len(h) > 0 {
		it := h.pop()
		if seen[it.v] {
			continue
		}
		seen[it.v] = true
		for _, e := range g.adj[it.v] {
			if nd := dist[it.v] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				h.push(item{e.To, nd})
			}
		}
	}
	return dist
}

// BFS returns hop distances from src (-1 for unreachable).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if dist[e.To] < 0 {
				dist[e.To] = dist[v] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

// Connected reports whether every vertex is reachable from vertex 0
// (treating arcs as traversable in their stored direction; undirected
// graphs store both arcs so this is full connectivity for them).
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	d := g.BFS(0)
	for _, x := range d {
		if x < 0 {
			return false
		}
	}
	return true
}

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// nondecreasing weight order (Yen's algorithm). Repeated callers should
// hold a Scratch and use KShortestPathsScratch.
func (g *Graph) KShortestPaths(src, dst, k int) []*Path {
	var sc Scratch
	return g.KShortestPathsScratch(&sc, src, dst, k)
}

// stableSortByWeight orders candidate paths by nondecreasing weight,
// preserving discovery order among ties (Yen's determinism contract).
func stableSortByWeight(ps []*Path) {
	sort.SliceStable(ps, func(a, b int) bool {
		return ps[a].Weight < ps[b].Weight
	})
}

func pathHasPrefix(p *Path, prefix []Edge) bool {
	if len(p.Edges) < len(prefix) {
		return false
	}
	for i, e := range prefix {
		o := p.Edges[i]
		if o.From != e.From || o.To != e.To || o.ID != e.ID {
			return false
		}
	}
	return true
}

func containsPath(ps []*Path, q *Path) bool {
	for _, p := range ps {
		if len(p.Edges) != len(q.Edges) {
			continue
		}
		same := true
		for i := range p.Edges {
			if p.Edges[i] != q.Edges[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

func reverse(e []Edge) {
	for i, j := 0, len(e)-1; i < j; i, j = i+1, j-1 {
		e[i], e[j] = e[j], e[i]
	}
}
