package graph

import "math"

// FlowNetwork is a capacitated directed graph for max-flow computations.
// It uses adjacency lists with residual arcs (Dinic's algorithm).
type FlowNetwork struct {
	n    int
	head [][]int
	arcs []flowArc
}

type flowArc struct {
	to  int
	cap float64
}

// NewFlowNetwork creates a flow network with n vertices.
func NewFlowNetwork(n int) *FlowNetwork {
	return &FlowNetwork{n: n, head: make([][]int, n)}
}

// AddArc adds a directed arc with the given capacity and returns its index.
// A residual arc of capacity 0 is added automatically.
func (f *FlowNetwork) AddArc(from, to int, capacity float64) int {
	idx := len(f.arcs)
	f.arcs = append(f.arcs, flowArc{to: to, cap: capacity})
	f.arcs = append(f.arcs, flowArc{to: from, cap: 0})
	f.head[from] = append(f.head[from], idx)
	f.head[to] = append(f.head[to], idx^1)
	return idx
}

// MaxFlow computes the maximum s-t flow value with Dinic's algorithm.
// Capacities are real-valued; the epsilon guards against float drift.
func (f *FlowNetwork) MaxFlow(s, t int) float64 {
	const eps = 1e-9
	total := 0.0
	level := make([]int, f.n)
	iter := make([]int, f.n)
	for f.bfsLevel(s, t, level) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := f.dfsAugment(s, t, math.Inf(1), level, iter)
			if pushed <= eps {
				break
			}
			total += pushed
		}
	}
	return total
}

func (f *FlowNetwork) bfsLevel(s, t int, level []int) bool {
	const eps = 1e-9
	for i := range level {
		level[i] = -1
	}
	level[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ai := range f.head[v] {
			a := f.arcs[ai]
			if a.cap > eps && level[a.to] < 0 {
				level[a.to] = level[v] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return level[t] >= 0
}

func (f *FlowNetwork) dfsAugment(v, t int, limit float64, level, iter []int) float64 {
	const eps = 1e-9
	if v == t {
		return limit
	}
	for ; iter[v] < len(f.head[v]); iter[v]++ {
		ai := f.head[v][iter[v]]
		a := &f.arcs[ai]
		if a.cap <= eps || level[a.to] != level[v]+1 {
			continue
		}
		pushed := f.dfsAugment(a.to, t, math.Min(limit, a.cap), level, iter)
		if pushed > eps {
			a.cap -= pushed
			f.arcs[ai^1].cap += pushed
			return pushed
		}
	}
	return 0
}
