package graph

import (
	"math"
	"math/bits"
)

// Scratch holds the per-query buffers of the shortest-path routines so that
// repeated queries — the regenerator-route searches the optical layer issues
// for every circuit of every candidate topology — stop allocating fresh
// dist/seen/prev arrays and heaps each time. A Scratch may be reused across
// graphs of different sizes (buffers grow monotonically) but must not be
// shared between goroutines.
type Scratch struct {
	dist []float64
	prev []Edge
	seen []bool
	h    heap
	// Yen's-algorithm spur filters, reused by KShortestPathsScratch: the
	// root-path vertices removed for the current spur search and the
	// (from,to,id) triples of banned deviation edges. The banned set holds at
	// most one edge per already-found path (≤ k entries), so a linear scan
	// beats any hashed structure.
	removed []bool
	banned  [][3]int
	// Multi-word visited set of MaskShortestNodeWeightedW (the >64-vertex
	// twin of the single-word seen register).
	seenW []uint64
}

// grow sizes the buffers for a graph with n vertices.
func (sc *Scratch) grow(n int) {
	if cap(sc.dist) < n {
		sc.dist = make([]float64, n)
		sc.prev = make([]Edge, n)
		sc.seen = make([]bool, n)
	}
	sc.dist = sc.dist[:n]
	sc.prev = sc.prev[:n]
	sc.seen = sc.seen[:n]
}

// Reset reshapes the graph to n vertices with no edges while retaining the
// adjacency backing arrays, so rebuilding a transit graph of similar size
// allocates nothing in steady state.
func (g *Graph) Reset(n int) {
	if cap(g.adj) >= n {
		g.adj = g.adj[:n]
	} else {
		g.adj = append(g.adj[:cap(g.adj)], make([][]Edge, n-cap(g.adj))...)
	}
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	g.n = n
}

// MaskShortestNodeWeighted runs Dijkstra over the vertex set given by the
// set bits of nodeMask (vertex ids below 64), where a directed edge u->v
// exists iff bit v of reach[u]&nodeMask is set and carries the weight of
// its HEAD node, w[v] — the node-weighted transit-graph transform of the
// optical layer, evaluated without materializing the graph. The vertex
// sequence src..dst is appended to hops; ok reports reachability.
//
// Results are bit-identical to building the transit graph over the same
// vertex set (neighbors enumerated in ascending id order) and running
// ShortestPathScratch on it: the push sequence this loop feeds the heap is
// value- and order-identical, the heap breaks distance ties purely by array
// position, and the relaxation test is the same strict comparison — so the
// same path falls out, just without the O(V²) edge-list build.
func MaskShortestNodeWeighted(sc *Scratch, reach []uint64, nodeMask uint64, w []float64, src, dst int, hops []int) (_ []int, ok bool) {
	n := len(reach)
	sc.grow(n)
	dist, prev := sc.dist, sc.prev
	for m := nodeMask; m != 0; m &= m - 1 {
		v := bits.TrailingZeros64(m)
		dist[v] = math.Inf(1)
		prev[v].From = -1
	}
	dist[src] = 0
	var seen uint64
	sc.h = sc.h[:0]
	sc.h.push(item{src, 0})
	for len(sc.h) > 0 {
		it := sc.h.pop()
		if seen>>uint(it.v)&1 == 1 {
			continue
		}
		seen |= 1 << uint(it.v)
		if it.v == dst {
			break
		}
		du := dist[it.v]
		for m := reach[it.v] & nodeMask; m != 0; m &= m - 1 {
			v := bits.TrailingZeros64(m)
			if nd := du + w[v]; nd < dist[v] {
				dist[v] = nd
				prev[v].From = it.v
				sc.h.push(item{v, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return hops, false
	}
	i := len(hops)
	for v := dst; v != src; v = prev[v].From {
		hops = append(hops, v)
	}
	hops = append(hops, src)
	for a, b := i, len(hops)-1; a < b; a, b = a+1, b-1 {
		hops[a], hops[b] = hops[b], hops[a]
	}
	return hops, true
}

// MaskShortestNodeWeightedW is MaskShortestNodeWeighted for vertex sets past
// one word: reach holds `words` uint64 per vertex (bitset layout, row-major),
// nodeMask is one `words`-long bitset, and vertex ids run to 64*words. The
// relaxation loop scans each reach row word-ascending then bit-ascending —
// ascending vertex id, the same neighbor order as the single-word loop and
// the materialized transit graph — so the heap push sequence, tie-breaks,
// and resulting path are bit-identical to both.
func MaskShortestNodeWeightedW(sc *Scratch, reach []uint64, words int, nodeMask []uint64, w []float64, src, dst int, hops []int) (_ []int, ok bool) {
	n := len(reach) / words
	sc.grow(n)
	dist, prev := sc.dist, sc.prev
	for wi, mw := range nodeMask {
		base := wi << 6
		for m := mw; m != 0; m &= m - 1 {
			v := base + bits.TrailingZeros64(m)
			dist[v] = math.Inf(1)
			prev[v].From = -1
		}
	}
	dist[src] = 0
	if cap(sc.seenW) < words {
		sc.seenW = make([]uint64, words)
	}
	seen := sc.seenW[:words]
	for i := range seen {
		seen[i] = 0
	}
	sc.h = sc.h[:0]
	sc.h.push(item{src, 0})
	for len(sc.h) > 0 {
		it := sc.h.pop()
		if seen[it.v>>6]>>(uint(it.v)&63)&1 == 1 {
			continue
		}
		seen[it.v>>6] |= 1 << (uint(it.v) & 63)
		if it.v == dst {
			break
		}
		du := dist[it.v]
		row := reach[it.v*words : it.v*words+words]
		for wi := 0; wi < words; wi++ {
			m := row[wi] & nodeMask[wi]
			if m == 0 {
				continue
			}
			base := wi << 6
			for ; m != 0; m &= m - 1 {
				v := base + bits.TrailingZeros64(m)
				if nd := du + w[v]; nd < dist[v] {
					dist[v] = nd
					prev[v].From = it.v
					sc.h.push(item{v, nd})
				}
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return hops, false
	}
	i := len(hops)
	for v := dst; v != src; v = prev[v].From {
		hops = append(hops, v)
	}
	hops = append(hops, src)
	for a, b := i, len(hops)-1; a < b; a, b = a+1, b-1 {
		hops[a], hops[b] = hops[b], hops[a]
	}
	return hops, true
}

// ShortestPathScratch is ShortestPath with caller-owned scratch buffers: the
// Dijkstra state lives in sc and only the returned *Path (which escapes to
// the caller) is freshly allocated. Results are identical to ShortestPath.
func (g *Graph) ShortestPathScratch(sc *Scratch, src, dst int) *Path {
	sc.grow(g.n)
	dist, prev, seen := sc.dist, sc.prev, sc.seen
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = Edge{From: -1}
		seen[i] = false
	}
	dist[src] = 0
	sc.h = sc.h[:0]
	sc.h.push(item{src, 0})
	for len(sc.h) > 0 {
		it := sc.h.pop()
		if seen[it.v] {
			continue
		}
		seen[it.v] = true
		if it.v == dst {
			break
		}
		for _, e := range g.adj[it.v] {
			if nd := dist[it.v] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = e
				sc.h.push(item{e.To, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil
	}
	var edges []Edge
	for v := dst; v != src; v = prev[v].From {
		edges = append(edges, prev[v])
	}
	reverse(edges)
	return &Path{Edges: edges, Weight: dist[dst]}
}

// shortestPathFiltered is ShortestPathScratch restricted to the subgraph
// obtained by deleting the vertices marked in removed and the individual
// edges listed in banned. Removed vertices are skipped on the relaxation
// side; since no edge into them ever relaxes, they are never expanded, which
// is exactly equivalent to deleting them (the spur source is never removed).
func (g *Graph) shortestPathFiltered(sc *Scratch, src, dst int, removed []bool, banned [][3]int) *Path {
	sc.grow(g.n)
	dist, prev, seen := sc.dist, sc.prev, sc.seen
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = Edge{From: -1}
		seen[i] = false
	}
	dist[src] = 0
	sc.h = sc.h[:0]
	sc.h.push(item{src, 0})
	for len(sc.h) > 0 {
		it := sc.h.pop()
		if seen[it.v] {
			continue
		}
		seen[it.v] = true
		if it.v == dst {
			break
		}
		for _, e := range g.adj[it.v] {
			if removed[e.To] || bannedEdge(banned, e) {
				continue
			}
			if nd := dist[it.v] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = e
				sc.h.push(item{e.To, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil
	}
	var edges []Edge
	for v := dst; v != src; v = prev[v].From {
		edges = append(edges, prev[v])
	}
	reverse(edges)
	return &Path{Edges: edges, Weight: dist[dst]}
}

func bannedEdge(banned [][3]int, e Edge) bool {
	for _, b := range banned {
		if b[0] == e.From && b[1] == e.To && b[2] == e.ID {
			return true
		}
	}
	return false
}

// KShortestPathsScratch is KShortestPaths with caller-owned scratch: all
// internal Dijkstra runs share sc's buffers, and the per-spur-node filtering
// happens inline during edge relaxation instead of materializing a filtered
// copy of the graph. Results are identical to KShortestPaths: the filtered
// search relaxes exactly the edges the subgraph copy would contain, in the
// same order, so ties break the same way.
func (g *Graph) KShortestPathsScratch(sc *Scratch, src, dst, k int) []*Path {
	if k <= 0 {
		return nil
	}
	first := g.ShortestPathScratch(sc, src, dst)
	if first == nil {
		return nil
	}
	if cap(sc.removed) < g.n {
		sc.removed = make([]bool, g.n)
	}
	removed := sc.removed[:g.n]
	for i := range removed {
		removed[i] = false
	}
	result := []*Path{first}
	var candidates []*Path
	for len(result) < k {
		prevPath := result[len(result)-1]
		prevVerts := prevPath.Vertices()
		for i := 0; i < len(prevPath.Edges); i++ {
			spurNode := prevVerts[i]
			rootEdges := prevPath.Edges[:i]
			banned := sc.banned[:0]
			for _, p := range result {
				if pathHasPrefix(p, rootEdges) && len(p.Edges) > i {
					e := p.Edges[i]
					banned = append(banned, [3]int{e.From, e.To, e.ID})
				}
			}
			sc.banned = banned
			for _, v := range prevVerts[:i] {
				removed[v] = true
			}
			spur := g.shortestPathFiltered(sc, spurNode, dst, removed, banned)
			for _, v := range prevVerts[:i] {
				removed[v] = false
			}
			if spur == nil {
				continue
			}
			var total []Edge
			total = append(total, rootEdges...)
			total = append(total, spur.Edges...)
			w := spur.Weight
			for _, e := range rootEdges {
				w += e.Weight
			}
			cand := &Path{Edges: total, Weight: w}
			if !containsPath(candidates, cand) && !containsPath(result, cand) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		stableSortByWeight(candidates)
		result = append(result, candidates[0])
		candidates = candidates[1:]
	}
	return result
}
