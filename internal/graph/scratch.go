package graph

import "math"

// Scratch holds the per-query buffers of the shortest-path routines so that
// repeated queries — the regenerator-route searches the optical layer issues
// for every circuit of every candidate topology — stop allocating fresh
// dist/seen/prev arrays and heaps each time. A Scratch may be reused across
// graphs of different sizes (buffers grow monotonically) but must not be
// shared between goroutines.
type Scratch struct {
	dist []float64
	prev []Edge
	seen []bool
	h    heap
	sub  *Graph // filtered-copy graph reused by KShortestPathsScratch
}

// grow sizes the buffers for a graph with n vertices.
func (sc *Scratch) grow(n int) {
	if cap(sc.dist) < n {
		sc.dist = make([]float64, n)
		sc.prev = make([]Edge, n)
		sc.seen = make([]bool, n)
	}
	sc.dist = sc.dist[:n]
	sc.prev = sc.prev[:n]
	sc.seen = sc.seen[:n]
}

// Reset reshapes the graph to n vertices with no edges while retaining the
// adjacency backing arrays, so rebuilding a transit graph of similar size
// allocates nothing in steady state.
func (g *Graph) Reset(n int) {
	if cap(g.adj) >= n {
		g.adj = g.adj[:n]
	} else {
		g.adj = append(g.adj[:cap(g.adj)], make([][]Edge, n-cap(g.adj))...)
	}
	for i := range g.adj {
		g.adj[i] = g.adj[i][:0]
	}
	g.n = n
}

// ShortestPathScratch is ShortestPath with caller-owned scratch buffers: the
// Dijkstra state lives in sc and only the returned *Path (which escapes to
// the caller) is freshly allocated. Results are identical to ShortestPath.
func (g *Graph) ShortestPathScratch(sc *Scratch, src, dst int) *Path {
	sc.grow(g.n)
	dist, prev, seen := sc.dist, sc.prev, sc.seen
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = Edge{From: -1}
		seen[i] = false
	}
	dist[src] = 0
	sc.h = sc.h[:0]
	sc.h.push(item{src, 0})
	for len(sc.h) > 0 {
		it := sc.h.pop()
		if seen[it.v] {
			continue
		}
		seen[it.v] = true
		if it.v == dst {
			break
		}
		for _, e := range g.adj[it.v] {
			if nd := dist[it.v] + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = e
				sc.h.push(item{e.To, nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil
	}
	var edges []Edge
	for v := dst; v != src; v = prev[v].From {
		edges = append(edges, prev[v])
	}
	reverse(edges)
	return &Path{Edges: edges, Weight: dist[dst]}
}

// KShortestPathsScratch is KShortestPaths with caller-owned scratch: all
// internal Dijkstra runs share sc's buffers and the filtered spur graphs
// reuse one retained Graph instead of allocating a fresh one per spur node.
// Results are identical to KShortestPaths.
func (g *Graph) KShortestPathsScratch(sc *Scratch, src, dst, k int) []*Path {
	if k <= 0 {
		return nil
	}
	first := g.ShortestPathScratch(sc, src, dst)
	if first == nil {
		return nil
	}
	if sc.sub == nil {
		sc.sub = New(g.n)
	}
	result := []*Path{first}
	var candidates []*Path
	for len(result) < k {
		prevPath := result[len(result)-1]
		prevVerts := prevPath.Vertices()
		for i := 0; i < len(prevPath.Edges); i++ {
			spurNode := prevVerts[i]
			rootEdges := prevPath.Edges[:i]
			banned := make(map[[3]int]bool) // from,to,id
			for _, p := range result {
				if pathHasPrefix(p, rootEdges) && len(p.Edges) > i {
					e := p.Edges[i]
					banned[[3]int{e.From, e.To, e.ID}] = true
				}
			}
			removedVerts := make(map[int]bool)
			for _, v := range prevVerts[:i] {
				removedVerts[v] = true
			}
			sub := sc.sub
			sub.Reset(g.n)
			for v := 0; v < g.n; v++ {
				if removedVerts[v] {
					continue
				}
				for _, e := range g.adj[v] {
					if removedVerts[e.To] || banned[[3]int{e.From, e.To, e.ID}] {
						continue
					}
					sub.AddEdge(e.From, e.To, e.Weight, e.ID)
				}
			}
			spur := sub.ShortestPathScratch(sc, spurNode, dst)
			if spur == nil {
				continue
			}
			var total []Edge
			total = append(total, rootEdges...)
			total = append(total, spur.Edges...)
			w := spur.Weight
			for _, e := range rootEdges {
				w += e.Weight
			}
			cand := &Path{Edges: total, Weight: w}
			if !containsPath(candidates, cand) && !containsPath(result, cand) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		stableSortByWeight(candidates)
		result = append(result, candidates[0])
		candidates = candidates[1:]
	}
	return result
}
