package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// enumeratePaths lists every loopless path src->dst by DFS (small graphs
// only), returning total weights sorted ascending.
func enumeratePaths(g *Graph, src, dst int) []float64 {
	var weights []float64
	visited := make([]bool, g.N())
	var dfs func(v int, w float64)
	dfs = func(v int, w float64) {
		if v == dst {
			weights = append(weights, w)
			return
		}
		visited[v] = true
		for _, e := range g.Out(v) {
			if !visited[e.To] {
				dfs(e.To, w+e.Weight)
			}
		}
		visited[v] = false
	}
	dfs(src, 0)
	sort.Float64s(weights)
	return weights
}

// TestYenMatchesBruteForce verifies that KShortestPaths returns exactly the
// k smallest loopless path weights.
func TestYenMatchesBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4) // small enough for exhaustive enumeration
		g := New(n)
		id := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.55 {
					g.AddUndirected(i, j, 1+rng.Float64()*9, id)
					id++
				}
			}
		}
		src, dst := 0, n-1
		want := enumeratePaths(g, src, dst)
		const k = 5
		got := g.KShortestPaths(src, dst, k)
		limit := k
		if len(want) < limit {
			limit = len(want)
		}
		if len(got) != limit {
			return false
		}
		for i := 0; i < limit; i++ {
			if math.Abs(got[i].Weight-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestYenPathsAreLoopless double-checks the looplessness invariant on
// larger random graphs where brute force is impractical.
func TestYenPathsAreLoopless(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		g := New(n)
		id := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.AddUndirected(i, j, 1+rng.Float64()*5, id)
					id++
				}
			}
		}
		for _, p := range g.KShortestPaths(0, n-1, 6) {
			seen := map[int]bool{}
			for _, v := range p.Vertices() {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
			// Weight must equal the sum of edge weights.
			sum := 0.0
			for _, e := range p.Edges {
				sum += e.Weight
			}
			if math.Abs(sum-p.Weight) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
