package metrics

import "testing"

func TestComputeAdmission(t *testing.T) {
	lat := []float64{0.010, 0.020, 0.030, 0.040}
	st := ComputeAdmission(lat, 1, 2.0)
	if st.Submits != 4 {
		t.Errorf("Submits = %d, want 4", st.Submits)
	}
	if !almost(st.ThroughputPerSec, 2.0) {
		t.Errorf("ThroughputPerSec = %v, want 2", st.ThroughputPerSec)
	}
	if !almost(st.MeanLatencySec, 0.025) {
		t.Errorf("MeanLatencySec = %v, want 0.025", st.MeanLatencySec)
	}
	if !almost(st.P50LatencySec, 0.020) {
		t.Errorf("P50LatencySec = %v, want 0.020 (nearest rank)", st.P50LatencySec)
	}
	if !almost(st.P99LatencySec, 0.040) {
		t.Errorf("P99LatencySec = %v, want 0.040", st.P99LatencySec)
	}
	if st.Overloads != 1 || !almost(st.OverloadRate, 0.2) {
		t.Errorf("Overloads = %d rate %v, want 1 / 0.2", st.Overloads, st.OverloadRate)
	}
}

func TestComputeAdmissionEmpty(t *testing.T) {
	st := ComputeAdmission(nil, 0, 0)
	if st.Submits != 0 || st.ThroughputPerSec != 0 || st.OverloadRate != 0 ||
		st.MeanLatencySec != 0 || st.P50LatencySec != 0 || st.P99LatencySec != 0 {
		t.Errorf("empty run produced nonzero stats: %+v", st)
	}
	// Overloads with zero admits still yield a rate.
	st = ComputeAdmission(nil, 5, 1)
	if !almost(st.OverloadRate, 1.0) {
		t.Errorf("all-overload run rate = %v, want 1", st.OverloadRate)
	}
}
