// Package metrics computes the evaluation quantities the paper reports:
// transfer completion times (average, 95th percentile, CDF), size-bin
// breakdowns, factors of improvement, deadline-met percentages, bytes
// finished before deadlines, and makespan.
package metrics

import (
	"math"
	"sort"

	"owan/internal/transfer"
)

// CompletionTimes returns the completion durations (finish − arrival, in
// seconds) of all completed transfers. Incomplete transfers are excluded;
// callers comparing approaches should run simulations long enough that all
// transfers finish.
func CompletionTimes(ts []*transfer.Transfer, slotSeconds float64) []float64 {
	var out []float64
	for _, t := range ts {
		if t.Done {
			out = append(out, t.FinishTime-float64(t.Arrival)*slotSeconds)
		}
	}
	return out
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) using nearest-rank on a
// copy of the data.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	rank := int(math.Ceil(p / 100 * float64(len(c))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(c) {
		rank = len(c)
	}
	return c[rank-1]
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	F float64 // cumulative fraction <= X
}

// CDF returns the empirical CDF of the data.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	out := make([]CDFPoint, len(c))
	for i, x := range c {
		out[i] = CDFPoint{X: x, F: float64(i+1) / float64(len(c))}
	}
	return out
}

// Bin labels transfers by size tercile (the paper's small/middle/large
// bins).
type Bin int

// Size bins.
const (
	Small Bin = iota
	Middle
	Large
)

func (b Bin) String() string {
	switch b {
	case Small:
		return "small"
	case Middle:
		return "middle"
	case Large:
		return "large"
	}
	return "?"
}

// BinBySize splits transfers into size terciles: the smallest third, the
// middle third, and the largest third, by original transfer size.
func BinBySize(ts []*transfer.Transfer) map[Bin][]*transfer.Transfer {
	c := append([]*transfer.Transfer(nil), ts...)
	sort.SliceStable(c, func(i, j int) bool {
		if c[i].SizeGbits != c[j].SizeGbits {
			return c[i].SizeGbits < c[j].SizeGbits
		}
		return c[i].ID < c[j].ID
	})
	out := map[Bin][]*transfer.Transfer{}
	n := len(c)
	for i, t := range c {
		switch {
		case i < n/3:
			out[Small] = append(out[Small], t)
		case i < 2*n/3:
			out[Middle] = append(out[Middle], t)
		default:
			out[Large] = append(out[Large], t)
		}
	}
	return out
}

// FactorOfImprovement is other / owan for a "lower is better" metric
// (e.g. completion time): values above 1 mean Owan is better.
func FactorOfImprovement(owan, other float64) float64 {
	if owan <= 0 {
		return math.Inf(1)
	}
	return other / owan
}

// DeadlineStats summarizes deadline-constrained runs.
type DeadlineStats struct {
	// TransfersMetPct is the percentage of deadline transfers completed by
	// their deadline.
	TransfersMetPct float64
	// BytesMetPct is the percentage of deadline bytes delivered by their
	// transfer's deadline (a transfer's bytes count proportionally to how
	// much of it was delivered in time).
	BytesMetPct float64
}

// Deadlines computes deadline statistics over transfers that have
// deadlines. The bytes metric uses Transfer.DeliveredByDeadline, which the
// simulator maintains exactly (bits sent during slots up to and including
// the deadline slot).
func Deadlines(ts []*transfer.Transfer, slotSeconds float64) DeadlineStats {
	var total, met int
	var totalBits, metBits float64
	for _, t := range ts {
		if t.Deadline == transfer.NoDeadline {
			continue
		}
		total++
		totalBits += t.SizeGbits
		if t.MetDeadline(slotSeconds) {
			met++
		}
		metBits += t.DeliveredByDeadline
	}
	st := DeadlineStats{}
	if total > 0 {
		st.TransfersMetPct = 100 * float64(met) / float64(total)
	}
	if totalBits > 0 {
		st.BytesMetPct = 100 * metBits / totalBits
	}
	return st
}
