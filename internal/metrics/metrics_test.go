package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"owan/internal/transfer"
)

func TestMeanAndPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Mean(xs) != 3 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Percentile(xs, 50) != 3 {
		t.Errorf("p50 = %v", Percentile(xs, 50))
	}
	if Percentile(xs, 95) != 5 {
		t.Errorf("p95 = %v", Percentile(xs, 95))
	}
	if Percentile(xs, 0) != 1 {
		t.Errorf("p0 = %v", Percentile(xs, 0))
	}
	if Mean(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Error("empty inputs should yield 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 95)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("input mutated")
	}
}

func TestCDFMonotone(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(40))
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		cdf := CDF(xs)
		if len(cdf) != len(xs) {
			return false
		}
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X < cdf[i-1].X || cdf[i].F <= cdf[i-1].F {
				return false
			}
		}
		return math.Abs(cdf[len(cdf)-1].F-1) < 1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func mk(id int, size float64, deadline int) *transfer.Transfer {
	return transfer.NewTransfer(transfer.Request{ID: id, Src: 0, Dst: 1, SizeGbits: size, Deadline: deadline})
}

func TestBinBySize(t *testing.T) {
	var ts []*transfer.Transfer
	for i := 0; i < 9; i++ {
		ts = append(ts, mk(i, float64(i+1)*100, transfer.NoDeadline))
	}
	bins := BinBySize(ts)
	if len(bins[Small]) != 3 || len(bins[Middle]) != 3 || len(bins[Large]) != 3 {
		t.Fatalf("bin sizes %d/%d/%d", len(bins[Small]), len(bins[Middle]), len(bins[Large]))
	}
	var smallMax, largeMin float64 = 0, math.Inf(1)
	for _, x := range bins[Small] {
		smallMax = math.Max(smallMax, x.SizeGbits)
	}
	for _, x := range bins[Large] {
		largeMin = math.Min(largeMin, x.SizeGbits)
	}
	if smallMax >= largeMin {
		t.Errorf("bins overlap: small max %v >= large min %v", smallMax, largeMin)
	}
}

func TestBinBySizePartitions(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		var ts []*transfer.Transfer
		for i := 0; i < n; i++ {
			ts = append(ts, mk(i, rng.Float64()*1000+1, transfer.NoDeadline))
		}
		bins := BinBySize(ts)
		ids := map[int]bool{}
		for _, b := range []Bin{Small, Middle, Large} {
			for _, x := range bins[b] {
				if ids[x.ID] {
					return false
				}
				ids[x.ID] = true
			}
		}
		return len(ids) == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCompletionTimes(t *testing.T) {
	a := mk(0, 100, transfer.NoDeadline)
	a.Done = true
	a.FinishTime = 500
	b := mk(1, 100, transfer.NoDeadline)
	b.Arrival = 2
	b.Done = true
	b.FinishTime = 900
	c := mk(2, 100, transfer.NoDeadline) // incomplete
	cts := CompletionTimes([]*transfer.Transfer{a, b, c}, 300)
	sort.Float64s(cts)
	if len(cts) != 2 || cts[0] != 300 || cts[1] != 500 {
		t.Errorf("completion times = %v, want [300 500]", cts)
	}
}

func TestFactorOfImprovement(t *testing.T) {
	if FactorOfImprovement(2, 8) != 4 {
		t.Error("factor should be other/owan")
	}
	if !math.IsInf(FactorOfImprovement(0, 8), 1) {
		t.Error("zero owan time should be +Inf")
	}
}

func TestDeadlines(t *testing.T) {
	slotSeconds := 300.0
	// Met: finished within deadline slot 1 (end 600 s).
	a := mk(0, 100, 1)
	a.Done = true
	a.FinishTime = 400
	a.DeliveredByDeadline = 100
	// Missed: finished at 2000 s with deadline slot 1.
	b := mk(1, 100, 1)
	b.Done = true
	b.FinishTime = 2000
	b.DeliveredByDeadline = 40
	// No deadline: ignored entirely.
	c := mk(2, 100, transfer.NoDeadline)
	st := Deadlines([]*transfer.Transfer{a, b, c}, slotSeconds)
	if st.TransfersMetPct != 50 {
		t.Errorf("transfers met = %v, want 50", st.TransfersMetPct)
	}
	if st.BytesMetPct != 70 {
		t.Errorf("bytes met = %v, want 70 ((100+40)/200)", st.BytesMetPct)
	}
}

func TestDeadlinesEmpty(t *testing.T) {
	st := Deadlines(nil, 300)
	if st.TransfersMetPct != 0 || st.BytesMetPct != 0 {
		t.Error("empty input should yield zeros")
	}
}
