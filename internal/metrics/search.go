package metrics

import "math"

// SearchEfficiency summarizes the annealing engine's evaluation counters:
// how much of the work the memoization cache absorbed and how evenly the
// energy evaluations spread over the worker pool. internal/core reports the
// raw counters in its SearchStats; this helper turns them into the ratios
// the controller logs and the bench harness aggregates.
type SearchEfficiency struct {
	// Evaluations is the number of full energy computations (cache misses).
	Evaluations int
	// HitRate is cache hits over all energy lookups, in [0,1]; 0 when the
	// cache is disabled or nothing was looked up.
	HitRate float64
	// WorkerBalance is mean/max evaluations across workers, in (0,1]:
	// 1 means a perfectly even pool, values near 1/N mean one worker did
	// everything. 0 when nothing was evaluated.
	WorkerBalance float64
}

// ComputeSearchEfficiency derives the ratios from raw counters. workerEvals
// holds per-worker evaluation counts (one slot for a serial run).
func ComputeSearchEfficiency(cacheHits, cacheMisses int, workerEvals []int) SearchEfficiency {
	eff := SearchEfficiency{Evaluations: cacheMisses}
	if total := cacheHits + cacheMisses; total > 0 {
		eff.HitRate = float64(cacheHits) / float64(total)
	}
	sum, max := 0, 0
	for _, e := range workerEvals {
		sum += e
		if e > max {
			max = e
		}
	}
	if max > 0 {
		mean := float64(sum) / float64(len(workerEvals))
		eff.WorkerBalance = mean / float64(max)
	}
	return eff
}

// TemperingEfficiency summarizes a replica-exchange search: how often the
// proposed neighbor-rung exchanges were accepted and how much of the
// iteration budget the early exit saved.
type TemperingEfficiency struct {
	// ExchangeRate is accepted exchanges over attempts, in [0,1]; 0 when no
	// exchange was attempted (single-chain searches). Healthy ladders sit
	// well away from both ends: near 0 the rungs are too far apart to
	// communicate, near 1 they are so close the ladder adds nothing.
	ExchangeRate float64
	// BudgetUsed is the fraction of the per-replica iteration budget the
	// search actually ran, in [0,1]; below 1 only when the search stopped
	// early (converged, schedule exhausted, or out of wall-clock budget).
	BudgetUsed float64
}

// ComputeTemperingEfficiency derives the ratios from SearchStats counters:
// exchange attempts/accepts, total iterations summed over all replicas, and
// the configured per-replica cap.
func ComputeTemperingEfficiency(attempts, exchanges, iterations, replicas, maxIterations int) TemperingEfficiency {
	var eff TemperingEfficiency
	if attempts > 0 {
		eff.ExchangeRate = float64(exchanges) / float64(attempts)
	}
	if budget := replicas * maxIterations; budget > 0 {
		eff.BudgetUsed = math.Min(1, float64(iterations)/float64(budget))
	}
	return eff
}
