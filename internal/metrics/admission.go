package metrics

// AdmissionStats summarizes a load-generator run against the controller's
// sharded admission pipeline: how fast submissions were durably admitted,
// the submit-latency distribution as clients observed it (including any
// overload backoff and reconnects), and how often the controller pushed
// back. cmd/owan-loadgen reports one of these per run; the loadgen smoke
// gate asserts on its fields.
type AdmissionStats struct {
	// Submits is the number of submissions that were eventually admitted.
	Submits int
	// ThroughputPerSec is admitted submissions over the wall-clock span of
	// the run (0 when the span is not positive).
	ThroughputPerSec float64
	// MeanLatencySec, P50LatencySec, P99LatencySec describe the
	// client-observed submit latency: first attempt to durable ack,
	// retries included.
	MeanLatencySec float64
	P50LatencySec  float64
	P99LatencySec  float64
	// Overloads counts overloaded rejections clients absorbed (each one a
	// backoff-and-retry, not a loss).
	Overloads int
	// OverloadRate is overloads over all attempts (admits + overloads),
	// in [0,1].
	OverloadRate float64
}

// ComputeAdmission derives the summary from per-submit latencies (seconds),
// the overload-rejection count, and the run's wall-clock span in seconds.
func ComputeAdmission(latenciesSec []float64, overloads int, elapsedSec float64) AdmissionStats {
	st := AdmissionStats{
		Submits:        len(latenciesSec),
		MeanLatencySec: Mean(latenciesSec),
		P50LatencySec:  Percentile(latenciesSec, 50),
		P99LatencySec:  Percentile(latenciesSec, 99),
		Overloads:      overloads,
	}
	if elapsedSec > 0 {
		st.ThroughputPerSec = float64(len(latenciesSec)) / elapsedSec
	}
	if attempts := len(latenciesSec) + overloads; attempts > 0 {
		st.OverloadRate = float64(overloads) / float64(attempts)
	}
	return st
}
