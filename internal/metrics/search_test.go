package metrics

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestComputeSearchEfficiency(t *testing.T) {
	cases := []struct {
		name         string
		hits, misses int
		evals        []int
		want         SearchEfficiency
	}{
		{"empty", 0, 0, nil, SearchEfficiency{}},
		{"serial-no-cache", 0, 10, []int{10}, SearchEfficiency{Evaluations: 10, HitRate: 0, WorkerBalance: 1}},
		{"half-hits", 5, 5, []int{5}, SearchEfficiency{Evaluations: 5, HitRate: 0.5, WorkerBalance: 1}},
		{"balanced-pool", 0, 8, []int{2, 2, 2, 2}, SearchEfficiency{Evaluations: 8, HitRate: 0, WorkerBalance: 1}},
		{"skewed-pool", 0, 4, []int{4, 0, 0, 0}, SearchEfficiency{Evaluations: 4, HitRate: 0, WorkerBalance: 0.25}},
		{"all-hits", 7, 0, []int{0}, SearchEfficiency{Evaluations: 0, HitRate: 1, WorkerBalance: 0}},
	}
	for _, c := range cases {
		got := ComputeSearchEfficiency(c.hits, c.misses, c.evals)
		if got.Evaluations != c.want.Evaluations || !almost(got.HitRate, c.want.HitRate) || !almost(got.WorkerBalance, c.want.WorkerBalance) {
			t.Errorf("%s: got %+v, want %+v", c.name, got, c.want)
		}
	}
}
