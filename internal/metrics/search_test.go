package metrics

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestComputeSearchEfficiency(t *testing.T) {
	cases := []struct {
		name         string
		hits, misses int
		evals        []int
		want         SearchEfficiency
	}{
		{"empty", 0, 0, nil, SearchEfficiency{}},
		{"serial-no-cache", 0, 10, []int{10}, SearchEfficiency{Evaluations: 10, HitRate: 0, WorkerBalance: 1}},
		{"half-hits", 5, 5, []int{5}, SearchEfficiency{Evaluations: 5, HitRate: 0.5, WorkerBalance: 1}},
		{"balanced-pool", 0, 8, []int{2, 2, 2, 2}, SearchEfficiency{Evaluations: 8, HitRate: 0, WorkerBalance: 1}},
		{"skewed-pool", 0, 4, []int{4, 0, 0, 0}, SearchEfficiency{Evaluations: 4, HitRate: 0, WorkerBalance: 0.25}},
		{"all-hits", 7, 0, []int{0}, SearchEfficiency{Evaluations: 0, HitRate: 1, WorkerBalance: 0}},
	}
	for _, c := range cases {
		got := ComputeSearchEfficiency(c.hits, c.misses, c.evals)
		if got.Evaluations != c.want.Evaluations || !almost(got.HitRate, c.want.HitRate) || !almost(got.WorkerBalance, c.want.WorkerBalance) {
			t.Errorf("%s: got %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestComputeTemperingEfficiency(t *testing.T) {
	cases := []struct {
		name                                string
		attempts, exchanges, iters, r, maxI int
		want                                TemperingEfficiency
	}{
		{"single-chain", 0, 0, 200, 1, 200, TemperingEfficiency{ExchangeRate: 0, BudgetUsed: 1}},
		{"half-accepted", 10, 5, 400, 4, 100, TemperingEfficiency{ExchangeRate: 0.5, BudgetUsed: 1}},
		{"early-exit", 8, 8, 120, 4, 100, TemperingEfficiency{ExchangeRate: 1, BudgetUsed: 0.3}},
		{"empty", 0, 0, 0, 0, 0, TemperingEfficiency{}},
		{"over-budget-clamped", 4, 1, 500, 2, 100, TemperingEfficiency{ExchangeRate: 0.25, BudgetUsed: 1}},
	}
	for _, c := range cases {
		got := ComputeTemperingEfficiency(c.attempts, c.exchanges, c.iters, c.r, c.maxI)
		if !almost(got.ExchangeRate, c.want.ExchangeRate) || !almost(got.BudgetUsed, c.want.BudgetUsed) {
			t.Errorf("%s: got %+v, want %+v", c.name, got, c.want)
		}
	}
}
