package bitset

import (
	"math/rand"
	"testing"
)

// model is the naive reference: a set over [0, n) as map[int]bool.
type model struct {
	n int
	m map[int]bool
}

func newModel(n int) *model { return &model{n: n, m: map[int]bool{}} }

func (md *model) or(o *model) {
	for i := range o.m {
		md.m[i] = true
	}
}

func (md *model) and(o *model) {
	for i := range md.m {
		if !o.m[i] {
			delete(md.m, i)
		}
	}
}

func (md *model) andNot(o *model) {
	for i := range o.m {
		delete(md.m, i)
	}
}

func (md *model) elems() []int {
	out := []int{}
	for i := 0; i < md.n; i++ {
		if md.m[i] {
			out = append(out, i)
		}
	}
	return out
}

// checkAgainst asserts the Set and the model agree element for element, in
// count, emptiness, and iteration order (ForEach/AppendBits must enumerate
// ascending).
func checkAgainst(t *testing.T, s Set, md *model) {
	t.Helper()
	want := md.elems()
	if got := s.Count(); got != len(want) {
		t.Fatalf("Count: got %d, want %d", got, len(want))
	}
	if got := s.Any(); got != (len(want) > 0) {
		t.Fatalf("Any: got %v with %d elements", got, len(want))
	}
	for i := 0; i < md.n; i++ {
		if s.Test(i) != md.m[i] {
			t.Fatalf("Test(%d): got %v, want %v", i, s.Test(i), md.m[i])
		}
	}
	got := s.AppendBits(nil)
	if len(got) != len(want) {
		t.Fatalf("AppendBits: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendBits order: got %v, want %v (ascending)", got, want)
		}
	}
	j := 0
	s.ForEach(func(i int) {
		if j >= len(want) || want[j] != i {
			t.Fatalf("ForEach visited %d at position %d, want sequence %v", i, j, want)
		}
		j++
	})
	if j != len(want) {
		t.Fatalf("ForEach visited %d elements, want %d", j, len(want))
	}
}

// TestSetMatchesModel drives random op sequences against the map model over
// sizes on both sides of the one-word boundary (the n <= 64 inline paths and
// the multi-word general path share this layout).
func TestSetMatchesModel(t *testing.T) {
	for _, n := range []int{1, 7, 63, 64, 65, 100, 128, 129, 200} {
		rng := rand.New(rand.NewSource(int64(n)))
		s, md := New(n), newModel(n)
		o, od := New(n), newModel(n)
		for step := 0; step < 2000; step++ {
			i := rng.Intn(n)
			switch rng.Intn(8) {
			case 0, 1:
				s.Set(i)
				md.m[i] = true
			case 2:
				s.Clear(i)
				delete(md.m, i)
			case 3:
				o.Set(i)
				od.m[i] = true
			case 4:
				s.Or(o)
				md.or(od)
			case 5:
				s.And(o)
				md.and(od)
			case 6:
				s.AndNot(o)
				md.andNot(od)
			case 7:
				o.Clear(i)
				delete(od.m, i)
			}
			checkAgainst(t, s, md)
		}
		s.Zero()
		md.m = map[int]bool{}
		checkAgainst(t, s, md)
	}
}

func TestWordsAndGrow(t *testing.T) {
	cases := []struct{ n, w int }{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}}
	for _, c := range cases {
		if got := Words(c.n); got != c.w {
			t.Fatalf("Words(%d) = %d, want %d", c.n, got, c.w)
		}
	}
	s := New(65)
	s.Set(64)
	s = Grow(s, 40) // shrink within capacity: must come back zeroed
	if s.Any() {
		t.Fatal("Grow returned a non-empty set")
	}
	if len(s) != Words(40) {
		t.Fatalf("Grow length %d, want %d", len(s), Words(40))
	}
	g := Grow(s, 300)
	if len(g) != Words(300) || g.Any() {
		t.Fatalf("Grow(300): len %d any %v", len(g), g.Any())
	}
}

func TestCopy(t *testing.T) {
	a, b := New(130), New(130)
	for _, i := range []int{0, 63, 64, 99, 129} {
		b.Set(i)
	}
	a.Copy(b)
	for _, i := range []int{0, 63, 64, 99, 129} {
		if !a.Test(i) {
			t.Fatalf("Copy lost element %d", i)
		}
	}
	if a.Count() != b.Count() {
		t.Fatalf("Copy count %d != %d", a.Count(), b.Count())
	}
}

// TestPool: pooled sets come back zeroed and sized, whatever state they were
// returned in.
func TestPool(t *testing.T) {
	var p Pool
	s := p.Get(100)
	s.Set(3)
	s.Set(99)
	p.Put(s)
	s2 := p.Get(70)
	if s2.Any() {
		t.Fatal("pooled set not zeroed")
	}
	if len(s2) != Words(70) {
		t.Fatalf("pooled set len %d, want %d", len(s2), Words(70))
	}
	s3 := p.Get(256) // pool empty again → fresh allocation
	if len(s3) != Words(256) || s3.Any() {
		t.Fatalf("fresh set len %d any %v", len(s3), s3.Any())
	}
}
