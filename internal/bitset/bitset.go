// Package bitset provides the word-array bitset primitives behind every
// mask fast path in the repository: the allocator's live-adjacency and
// failure-cut masks, the optical layer's reach and regenerator-reach rows,
// and the node-weighted mask Dijkstra in internal/graph.
//
// The packages on the energy hot path keep their innermost loops as manual
// word arithmetic over []uint64 (an extra call or bounds check per BFS arc
// is measurable there), but they all share this package's layout: a set over
// [0, n) is Words(n) little-endian uint64 words, bit i of word i/64 is
// element i, and iteration is word-ascending then bit-ascending via
// TrailingZeros64 — which enumerates elements in ascending order, the
// property the bit-reproducibility proofs of the mask paths rest on.
package bitset

import "math/bits"

// Set is a fixed-capacity bitset over [0, n) stored as Words(n) uint64
// words. The zero value of length 0 is an empty set over nothing; use New or
// Grow to size one.
type Set []uint64

// Words returns the number of 64-bit words a set over [0, n) needs.
func Words(n int) int { return (n + 63) / 64 }

// New returns an empty set over [0, n).
func New(n int) Set { return make(Set, Words(n)) }

// Grow returns a zeroed set over [0, n), reusing s's backing array when it
// is large enough (the growF/grow32 idiom of the flat allocators).
func Grow(s Set, n int) Set {
	w := Words(n)
	if cap(s) < w {
		return make(Set, w)
	}
	s = s[:w]
	s.Zero()
	return s
}

// Test reports whether element i is in the set.
func (s Set) Test(i int) bool { return s[i>>6]>>(uint(i)&63)&1 == 1 }

// Set inserts element i.
func (s Set) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes element i.
func (s Set) Clear(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Zero empties the set.
func (s Set) Zero() {
	for i := range s {
		s[i] = 0
	}
}

// Or sets s to s ∪ t. The sets must have equal length.
func (s Set) Or(t Set) {
	for i, w := range t {
		s[i] |= w
	}
}

// And sets s to s ∩ t. The sets must have equal length.
func (s Set) And(t Set) {
	for i, w := range t {
		s[i] &= w
	}
}

// AndNot sets s to s \ t. The sets must have equal length.
func (s Set) AndNot(t Set) {
	for i, w := range t {
		s[i] &^= w
	}
}

// Copy overwrites s with t. The sets must have equal length.
func (s Set) Copy(t Set) { copy(s, t) }

// Any reports whether the set is nonempty.
func (s Set) Any() bool {
	for _, w := range s {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of elements.
func (s Set) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls f for every element in ascending order — word-ascending,
// then bit-ascending within a word via TrailingZeros64. This is the exact
// iteration order of the inlined mask loops, so anything proven about their
// visit order holds for ForEach too.
func (s Set) ForEach(f func(i int)) {
	for wi, w := range s {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			f(base + bits.TrailingZeros64(w))
		}
	}
}

// AppendBits appends the elements of the set to dst in ascending order.
func (s Set) AppendBits(dst []int) []int {
	for wi, w := range s {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			dst = append(dst, base+bits.TrailingZeros64(w))
		}
	}
	return dst
}

// Pool recycles scratch sets so transient mask computations allocate only
// until the pool warms up. It is not safe for concurrent use: each goroutine
// that needs pooled scratch owns its own Pool, exactly as the flat
// allocators own their scratch buffers.
type Pool struct {
	free []Set
}

// Get returns a zeroed set over [0, n).
func (p *Pool) Get(n int) Set {
	if k := len(p.free); k > 0 {
		s := p.free[k-1]
		p.free = p.free[:k-1]
		return Grow(s, n)
	}
	return New(n)
}

// Put returns a set to the pool for reuse.
func (p *Pool) Put(s Set) {
	if s != nil {
		p.free = append(p.free, s)
	}
}
