package coflow

import (
	"math"
	"testing"

	"owan/internal/topology"
	"owan/internal/transfer"
)

func mk(id, src, dst int, size float64) *transfer.Transfer {
	return transfer.NewTransfer(transfer.Request{
		ID: id, Src: src, Dst: dst, SizeGbits: size, Deadline: transfer.NoDeadline,
	})
}

func TestGroupBasics(t *testing.T) {
	s := NewSet()
	a, b := mk(0, 0, 1, 100), mk(1, 0, 2, 200)
	g, err := s.AddGroup(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Remaining() != 300 {
		t.Errorf("remaining = %v", g.Remaining())
	}
	if g.Done() {
		t.Error("fresh group is not done")
	}
	if !math.IsInf(g.CompletionTime(), 1) {
		t.Error("unfinished group has no completion time")
	}
	a.Done, a.FinishTime = true, 50
	b.Done, b.FinishTime = true, 120
	if g.CompletionTime() != 120 {
		t.Errorf("group completion = %v, want last member's 120", g.CompletionTime())
	}
	got, ok := s.GroupOf(1)
	if !ok || got.ID != g.ID {
		t.Error("GroupOf lookup failed")
	}
	if _, ok := s.GroupOf(99); ok {
		t.Error("unknown transfer found a group")
	}
}

func TestAddGroupRejects(t *testing.T) {
	s := NewSet()
	if _, err := s.AddGroup(); err == nil {
		t.Error("empty group accepted")
	}
	a := mk(0, 0, 1, 100)
	if _, err := s.AddGroup(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddGroup(a); err == nil {
		t.Error("duplicate membership accepted")
	}
}

func TestEffectiveBottleneck(t *testing.T) {
	net := topology.Square() // θ=10, 2 ports per site
	ls := topology.InitialTopology(net)
	s := NewSet()
	// Fan-out from R0: 2 ports × 10 Gbps = 20 Gbps egress; 400 Gbit total
	// -> 20 s bottleneck at the source.
	g, _ := s.AddGroup(mk(0, 0, 1, 200), mk(1, 0, 2, 200))
	sec := g.EffectiveBottleneckSeconds(net, ls)
	if math.Abs(sec-20) > 1e-9 {
		t.Errorf("bottleneck = %v s, want 20 (source-limited)", sec)
	}
}

func TestEffectiveBottleneckDisconnected(t *testing.T) {
	net := topology.Square()
	ls := topology.NewLinkSet(4) // empty: no ports in use anywhere
	s := NewSet()
	g, _ := s.AddGroup(mk(0, 0, 1, 100))
	if !math.IsInf(g.EffectiveBottleneckSeconds(net, ls), 1) {
		t.Error("zero-capacity site should give infinite bottleneck")
	}
}

func TestOrderSEBF(t *testing.T) {
	net := topology.Square()
	ls := topology.InitialTopology(net)
	s := NewSet()
	// Group A: small fan-out (bottleneck 5 s). Group B: heavy (20 s).
	a1, a2 := mk(0, 0, 1, 50), mk(1, 0, 2, 50)
	b1, b2 := mk(2, 3, 1, 200), mk(3, 3, 2, 200)
	if _, err := s.AddGroup(a1, a2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddGroup(b1, b2); err != nil {
		t.Fatal(err)
	}
	ts := []*transfer.Transfer{b1, a1, b2, a2}
	s.OrderSEBF(ts, net, ls)
	// All of group A before all of group B.
	pos := map[int]int{}
	for i, tr := range ts {
		pos[tr.ID] = i
	}
	if pos[0] > pos[2] || pos[0] > pos[3] || pos[1] > pos[2] || pos[1] > pos[3] {
		t.Errorf("SEBF order wrong: %v", []int{ts[0].ID, ts[1].ID, ts[2].ID, ts[3].ID})
	}
}

func TestOrderSEBFSingletons(t *testing.T) {
	net := topology.Square()
	ls := topology.InitialTopology(net)
	s := NewSet()
	// Ungrouped transfers order by their own service time.
	fast := mk(0, 0, 1, 20)  // 20/20 = 1 s
	slow := mk(1, 2, 3, 400) // 400/20 = 20 s
	ts := []*transfer.Transfer{slow, fast}
	s.OrderSEBF(ts, net, ls)
	if ts[0].ID != 0 {
		t.Errorf("fast singleton should come first, got %d", ts[0].ID)
	}
}

func TestGroupCompletionImprovesWithSEBF(t *testing.T) {
	// Two groups sharing the R0 egress: serving the small group first
	// lowers the average group completion time (the coflow argument).
	// This is a scheduling-order property we verify arithmetically:
	// small group 100 Gbit, big group 400 Gbit, 20 Gbps egress.
	// SEBF: small done at 5 s, big at 25 s -> avg 15 s.
	// Reverse: big at 20 s, small at 25 s -> avg 22.5 s.
	small, big := 100.0, 400.0
	rate := 20.0
	sebf := (small/rate + (small+big)/rate) / 2
	rev := (big/rate + (small+big)/rate) / 2
	if sebf >= rev {
		t.Fatalf("SEBF %v should beat reverse %v", sebf, rev)
	}
}
