// Package coflow implements the "group of transfers" extension the paper
// sketches in §3.4: applications that fan data out to several destinations
// care about the completion time of the *last* transfer in the group (the
// coflow abstraction of Chowdhury et al.). The package provides group
// bookkeeping, the group completion-time metric, and the
// Smallest-Effective-Bottleneck-First (SEBF) ordering heuristic from Varys
// that the paper suggests, adapted to WAN transfers: groups are ordered by
// the time their most-constrained member would need on the current
// topology, and every member of a group shares the group's priority.
package coflow

import (
	"fmt"
	"math"
	"sort"

	"owan/internal/topology"
	"owan/internal/transfer"
)

// Group is a set of transfers completing together.
type Group struct {
	ID        int
	Transfers []*transfer.Transfer
}

// Remaining returns the total unsent gigabits of the group.
func (g *Group) Remaining() float64 {
	t := 0.0
	for _, tr := range g.Transfers {
		t += tr.Remaining
	}
	return t
}

// Done reports whether every member finished.
func (g *Group) Done() bool {
	for _, tr := range g.Transfers {
		if !tr.Done {
			return false
		}
	}
	return true
}

// CompletionTime returns the finish time of the last member (the coflow
// completion time), or +Inf if unfinished.
func (g *Group) CompletionTime() float64 {
	m := 0.0
	for _, tr := range g.Transfers {
		if !tr.Done {
			return math.Inf(1)
		}
		if tr.FinishTime > m {
			m = tr.FinishTime
		}
	}
	return m
}

// Set manages the group memberships of transfers.
type Set struct {
	groups  map[int]*Group
	byXfer  map[int]int // transfer id -> group id
	nextGID int
}

// NewSet returns an empty group set.
func NewSet() *Set {
	return &Set{groups: map[int]*Group{}, byXfer: map[int]int{}}
}

// AddGroup registers a new group and returns it.
func (s *Set) AddGroup(ts ...*transfer.Transfer) (*Group, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("coflow: empty group")
	}
	g := &Group{ID: s.nextGID, Transfers: ts}
	for _, tr := range ts {
		if _, dup := s.byXfer[tr.ID]; dup {
			return nil, fmt.Errorf("coflow: transfer %d already grouped", tr.ID)
		}
	}
	for _, tr := range ts {
		s.byXfer[tr.ID] = g.ID
	}
	s.groups[g.ID] = g
	s.nextGID++
	return g, nil
}

// GroupOf returns the group of a transfer, if any.
func (s *Set) GroupOf(transferID int) (*Group, bool) {
	gid, ok := s.byXfer[transferID]
	if !ok {
		return nil, false
	}
	return s.groups[gid], true
}

// Groups returns all groups sorted by id.
func (s *Set) Groups() []*Group {
	out := make([]*Group, 0, len(s.groups))
	for _, g := range s.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EffectiveBottleneckSeconds estimates how long the group needs on the
// given topology if each member could use the full min-cut-ish bandwidth
// of its ingress/egress ports: for each member, remaining / min(port
// capacity at src not shared, port capacity at dst). Aggregating per
// endpoint captures contention among members of the same group (Varys'
// "effective bottleneck").
func (g *Group) EffectiveBottleneckSeconds(net *topology.Network, ls *topology.LinkSet) float64 {
	// Gigabits leaving/entering each site for this group.
	egress := map[int]float64{}
	ingress := map[int]float64{}
	for _, tr := range g.Transfers {
		if tr.Done {
			continue
		}
		egress[tr.Src] += tr.Remaining
		ingress[tr.Dst] += tr.Remaining
	}
	worst := 0.0
	for site, bits := range egress {
		cap := float64(ls.Degree(site)) * net.ThetaGbps
		if cap <= 0 {
			return math.Inf(1)
		}
		if t := bits / cap; t > worst {
			worst = t
		}
	}
	for site, bits := range ingress {
		cap := float64(ls.Degree(site)) * net.ThetaGbps
		if cap <= 0 {
			return math.Inf(1)
		}
		if t := bits / cap; t > worst {
			worst = t
		}
	}
	return worst
}

// OrderSEBF orders transfers so that members of the group with the
// smallest effective bottleneck come first (then SJF within a group;
// ungrouped transfers are treated as singleton groups). The result is the
// ordering to feed to alloc.Greedy or core's energy function.
func (s *Set) OrderSEBF(ts []*transfer.Transfer, net *topology.Network, ls *topology.LinkSet) {
	bottleneck := map[int]float64{} // group id -> seconds
	for gid, g := range s.groups {
		bottleneck[gid] = g.EffectiveBottleneckSeconds(net, ls)
	}
	key := func(t *transfer.Transfer) (float64, float64) {
		if gid, ok := s.byXfer[t.ID]; ok {
			return bottleneck[gid], t.Remaining
		}
		// Singleton: its own service time on its best-case port capacity.
		cap := float64(ls.Degree(t.Src)) * net.ThetaGbps
		if c2 := float64(ls.Degree(t.Dst)) * net.ThetaGbps; c2 < cap {
			cap = c2
		}
		if cap <= 0 {
			return math.Inf(1), t.Remaining
		}
		return t.Remaining / cap, t.Remaining
	}
	sort.SliceStable(ts, func(i, j int) bool {
		bi, ri := key(ts[i])
		bj, rj := key(ts[j])
		if bi != bj {
			return bi < bj
		}
		if ri != rj {
			return ri < rj
		}
		return ts[i].ID < ts[j].ID
	})
}
