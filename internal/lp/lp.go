// Package lp implements a dense two-phase simplex linear-programming solver
// from scratch, sufficient for the path-formulation traffic-engineering LPs
// that Owan's baselines (MaxFlow, MaxMinFract, SWAN, Tempus) require.
//
// The solver maximizes c·x subject to linear constraints with senses
// <=, =, >= and x >= 0. Bland's anti-cycling rule guarantees termination;
// the tableaus involved in TE problems are small enough (hundreds of rows,
// a few thousand columns) that a dense tableau is the simplest robust
// choice given the constraint that this module uses the standard library
// only.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the relation of a constraint row to its right-hand side.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a·x <= b
	GE              // a·x >= b
	EQ              // a·x == b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Constraint is a single linear constraint. Coeffs is sparse: only nonzero
// coefficients need to be present.
type Constraint struct {
	Coeffs map[int]float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program: maximize Objective·x subject to Constraints,
// with all variables nonnegative.
type Problem struct {
	nvars       int
	objective   []float64
	constraints []Constraint
}

// NewProblem creates a problem with n nonnegative variables and a zero
// objective.
func NewProblem(n int) *Problem {
	return &Problem{nvars: n, objective: make([]float64, n)}
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return p.nvars }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// SetObjective sets the coefficient of variable v in the (maximized)
// objective.
func (p *Problem) SetObjective(v int, c float64) {
	p.objective[v] = c
}

// AddConstraint appends a constraint row. The coefficient map is copied.
func (p *Problem) AddConstraint(coeffs map[int]float64, sense Sense, rhs float64) {
	cp := make(map[int]float64, len(coeffs))
	for k, v := range coeffs {
		if k < 0 || k >= p.nvars {
			panic(fmt.Sprintf("lp: variable %d out of range (n=%d)", k, p.nvars))
		}
		if v != 0 {
			cp[k] = v
		}
	}
	p.constraints = append(p.constraints, Constraint{Coeffs: cp, Sense: sense, RHS: rhs})
}

// Status describes the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Solution holds the result of solving a Problem.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
}

// ErrIterationLimit is returned if the simplex fails to terminate within the
// safety iteration budget. With Bland's rule this indicates a bug or a
// pathologically large instance rather than cycling.
var ErrIterationLimit = errors.New("lp: iteration limit exceeded")

const eps = 1e-9

// Solve runs two-phase simplex and returns the solution. An error is only
// returned for internal failures (iteration limit); infeasibility and
// unboundedness are reported via Solution.Status.
func (p *Problem) Solve() (*Solution, error) {
	m := len(p.constraints)
	n := p.nvars

	// Count auxiliary columns. Every row gets either a slack (LE), a
	// surplus+artificial (GE), or an artificial (EQ). Rows with negative RHS
	// are normalized first (multiply by -1, flipping the sense).
	type rowSpec struct {
		coeffs map[int]float64
		sense  Sense
		rhs    float64
	}
	rows := make([]rowSpec, m)
	for i, c := range p.constraints {
		r := rowSpec{coeffs: c.Coeffs, sense: c.Sense, rhs: c.RHS}
		if r.rhs < 0 {
			neg := make(map[int]float64, len(r.coeffs))
			for k, v := range r.coeffs {
				neg[k] = -v
			}
			r.coeffs = neg
			r.rhs = -r.rhs
			switch r.sense {
			case LE:
				r.sense = GE
			case GE:
				r.sense = LE
			}
		}
		rows[i] = r
	}

	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}

	total := n + nSlack + nArt
	// tab has m rows of total+1 columns (last is RHS).
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackIdx, artIdx := n, n+nSlack
	artCols := make([]int, 0, nArt)
	for i, r := range rows {
		row := make([]float64, total+1)
		for k, v := range r.coeffs {
			row[k] = v
		}
		row[total] = r.rhs
		switch r.sense {
		case LE:
			row[slackIdx] = 1
			basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		case EQ:
			row[artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		}
		tab[i] = row
	}

	maxIter := 200 * (m + total + 10)

	if nArt > 0 {
		// Phase 1: minimize sum of artificials == maximize -sum.
		obj := make([]float64, total)
		for _, a := range artCols {
			obj[a] = -1
		}
		status, iters := simplex(tab, basis, obj, maxIter)
		if iters >= maxIter {
			return nil, ErrIterationLimit
		}
		_ = status // phase 1 is always bounded (objective <= 0)
		sum := 0.0
		for i, b := range basis {
			for _, a := range artCols {
				if b == a {
					sum += tab[i][total]
				}
			}
		}
		if sum > 1e-7 {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive remaining artificials out of the basis where possible.
		isArt := make(map[int]bool, len(artCols))
		for _, a := range artCols {
			isArt[a] = true
		}
		for i := 0; i < m; i++ {
			if !isArt[basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: the artificial stays basic at value 0,
				// harmless as long as its column is zeroed for phase 2.
				continue
			}
		}
		// Zero out artificial columns so they can never re-enter.
		for _, a := range artCols {
			for i := 0; i < m; i++ {
				tab[i][a] = 0
			}
		}
	}

	// Phase 2: maximize the real objective.
	obj := make([]float64, total)
	copy(obj, p.objective)
	status, iters := simplex(tab, basis, obj, maxIter)
	if iters >= maxIter {
		return nil, ErrIterationLimit
	}
	if status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.objective[j] * x[j]
	}
	return &Solution{Status: Optimal, Objective: objVal, X: x}, nil
}

// simplex runs primal simplex iterations on the tableau with the given
// objective. A reduced-cost row is computed once from the basis and then
// maintained incrementally across pivots, which keeps each iteration at
// O(m×width) for the pivot plus an O(width) scan. Bland's rule picks the
// lowest-index entering and leaving candidates, guaranteeing termination.
func simplex(tab [][]float64, basis []int, obj []float64, maxIter int) (Status, int) {
	m := len(tab)
	if m == 0 {
		return Optimal, 0
	}
	total := len(tab[0]) - 1
	// rc[j] = obj_j - sum_i obj[basis[i]] * tab[i][j]; rc[total] tracks -z.
	rc := make([]float64, total+1)
	copy(rc, obj)
	for i := 0; i < m; i++ {
		ob := obj[basis[i]]
		if ob == 0 {
			continue
		}
		ri := tab[i]
		for j := 0; j <= total; j++ {
			rc[j] -= ob * ri[j]
		}
	}
	iters := 0
	degenerateStreak := 0
	for ; iters < maxIter; iters++ {
		// Entering column: Dantzig's rule (largest reduced cost) normally,
		// falling back to Bland's rule (lowest index) after a long run of
		// degenerate pivots to guarantee termination.
		bland := degenerateStreak > 2*(m+8)
		enter := -1
		best := eps
		for j := 0; j < total; j++ {
			if rc[j] > best {
				enter = j
				if bland {
					break
				}
				best = rc[j]
			}
		}
		if enter < 0 {
			return Optimal, iters
		}
		// Ratio test with Bland tie-break on basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a <= eps {
				continue
			}
			ratio := tab[i][total] / a
			if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave < 0 || basis[i] < basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded, iters
		}
		if bestRatio < eps {
			degenerateStreak++
		} else {
			degenerateStreak = 0
		}
		pivot(tab, basis, leave, enter)
		// Update the reduced-cost row against the (now normalized) pivot row.
		f := rc[enter]
		if f != 0 {
			rr := tab[leave]
			for j := 0; j <= total; j++ {
				rc[j] -= f * rr[j]
			}
			rc[enter] = 0
		}
	}
	return Optimal, iters
}

// pivot performs a Gauss-Jordan pivot on tab[row][col] and updates the basis.
func pivot(tab [][]float64, basis []int, row, col int) {
	m := len(tab)
	width := len(tab[row])
	pv := tab[row][col]
	inv := 1 / pv
	for j := 0; j < width; j++ {
		tab[row][j] *= inv
	}
	tab[row][col] = 1 // exact
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		ri, rr := tab[i], tab[row]
		for j := 0; j < width; j++ {
			ri[j] -= f * rr[j]
		}
		ri[col] = 0 // exact
	}
	basis[row] = col
}
