package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMax(t *testing.T) {
	// maximize 3x + 2y s.t. x+y <= 4, x+3y <= 6 -> x=4, y=0, obj=12.
	p := NewProblem(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4)
	p.AddConstraint(map[int]float64{0: 1, 1: 3}, LE, 6)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(s.Objective, 12) {
		t.Errorf("got %v obj=%v, want optimal 12 (x=%v)", s.Status, s.Objective, s.X)
	}
}

func TestInteriorOptimum(t *testing.T) {
	// maximize x + y s.t. 2x+y <= 4, x+2y <= 4 -> x=y=4/3, obj=8/3.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddConstraint(map[int]float64{0: 2, 1: 1}, LE, 4)
	p.AddConstraint(map[int]float64{0: 1, 1: 2}, LE, 4)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !near(s.Objective, 8.0/3) || !near(s.X[0], 4.0/3) || !near(s.X[1], 4.0/3) {
		t.Errorf("obj=%v x=%v, want 8/3 at (4/3,4/3)", s.Objective, s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// maximize x s.t. x + y == 5, x <= 3 -> x=3, y=2.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 5)
	p.AddConstraint(map[int]float64{0: 1}, LE, 3)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(s.X[0], 3) || !near(s.X[1], 2) {
		t.Errorf("got %v x=%v", s.Status, s.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// minimize x+y (== maximize -(x+y)) s.t. x+2y >= 4, 3x+y >= 6.
	// Optimum at intersection: x=8/5, y=6/5, value 14/5.
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	p.AddConstraint(map[int]float64{0: 1, 1: 2}, GE, 4)
	p.AddConstraint(map[int]float64{0: 3, 1: 1}, GE, 6)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(-s.Objective, 14.0/5) {
		t.Errorf("got %v obj=%v x=%v, want -14/5", s.Status, s.Objective, s.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective(0, 1)
	p.AddConstraint(map[int]float64{0: 1}, LE, 1)
	p.AddConstraint(map[int]float64{0: 1}, GE, 2)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("got %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddConstraint(map[int]float64{1: 1}, LE, 1)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("got %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -1 with x,y>=0 means y >= x+1. Maximize x with y <= 3: x=2.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddConstraint(map[int]float64{0: 1, 1: -1}, LE, -1)
	p.AddConstraint(map[int]float64{1: 1}, LE, 3)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(s.X[0], 2) {
		t.Errorf("got %v x=%v, want x=2", s.Status, s.X)
	}
}

func TestDegenerate(t *testing.T) {
	// Classic degenerate LP (Beale-like); Bland must terminate.
	p := NewProblem(4)
	p.SetObjective(0, 0.75)
	p.SetObjective(1, -150)
	p.SetObjective(2, 0.02)
	p.SetObjective(3, -6)
	p.AddConstraint(map[int]float64{0: 0.25, 1: -60, 2: -0.04, 3: 9}, LE, 0)
	p.AddConstraint(map[int]float64{0: 0.5, 1: -90, 2: -0.02, 3: 3}, LE, 0)
	p.AddConstraint(map[int]float64{2: 1}, LE, 1)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(s.Objective, 0.05) {
		t.Errorf("got %v obj=%v, want 0.05", s.Status, s.Objective)
	}
}

func TestZeroConstraints(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective(0, -1)
	p.SetObjective(1, -1)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// With a purely negative objective and no constraints, optimum is 0.
	if s.Status != Optimal || !near(s.Objective, 0) {
		t.Errorf("got %v obj=%v", s.Status, s.Objective)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows leave a redundant artificial basic at zero.
	p := NewProblem(2)
	p.SetObjective(0, 1)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 4)
	p.AddConstraint(map[int]float64{0: 2, 1: 2}, EQ, 8)
	p.AddConstraint(map[int]float64{0: 1}, LE, 3)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !near(s.X[0], 3) || !near(s.X[1], 1) {
		t.Errorf("got %v x=%v", s.Status, s.X)
	}
}

// TestMaxFlowEquivalence checks the LP against a known max-flow value on a
// diamond network, the same formulation the TE baselines use.
func TestMaxFlowEquivalence(t *testing.T) {
	// Variables: f0 = flow on path s-a-t, f1 = s-b-t, f2 = s-a-b-t.
	// Caps: sa=10, sb=10, at=10, bt=10, ab=1. Max total = 20 (f2 unused
	// beyond nothing; f0=10, f1=10).
	p := NewProblem(3)
	for i := 0; i < 3; i++ {
		p.SetObjective(i, 1)
	}
	p.AddConstraint(map[int]float64{0: 1, 2: 1}, LE, 10) // sa
	p.AddConstraint(map[int]float64{1: 1}, LE, 10)       // sb
	p.AddConstraint(map[int]float64{0: 1}, LE, 10)       // at
	p.AddConstraint(map[int]float64{1: 1, 2: 1}, LE, 10) // bt
	p.AddConstraint(map[int]float64{2: 1}, LE, 1)        // ab
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !near(s.Objective, 20) {
		t.Errorf("obj=%v, want 20", s.Objective)
	}
}

// Property: solutions are always primal feasible and never exceed an easy
// upper bound (sum of per-variable caps weighted by objective).
func TestRandomFeasibility(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, rng.Float64()*10-2)
			// Box every variable so the LP is bounded.
			p.AddConstraint(map[int]float64{j: 1}, LE, 1+rng.Float64()*9)
		}
		type row struct {
			coeffs map[int]float64
			sense  Sense
			rhs    float64
		}
		var rows []row
		for i := 0; i < m; i++ {
			coeffs := map[int]float64{}
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.5 {
					coeffs[j] = rng.Float64() * 4
				}
			}
			if len(coeffs) == 0 {
				continue
			}
			rhs := rng.Float64() * 20
			p.AddConstraint(coeffs, LE, rhs)
			rows = append(rows, row{coeffs, LE, rhs})
		}
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			// All-LE with nonnegative RHS is always feasible (x=0).
			return false
		}
		for _, r := range rows {
			lhs := 0.0
			for j, c := range r.coeffs {
				lhs += c * s.X[j]
			}
			if lhs > r.rhs+1e-6 {
				return false
			}
		}
		for _, x := range s.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the reported objective matches c·x and is at least as good as
// the zero vector (feasible for all-LE nonnegative-RHS problems).
func TestObjectiveConsistency(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, rng.Float64()*6-3)
			p.AddConstraint(map[int]float64{j: 1}, LE, rng.Float64()*5)
		}
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			return false
		}
		dot := 0.0
		for j := 0; j < n; j++ {
			dot += s.X[j] * p.objective[j]
		}
		return near(dot, s.Objective) && s.Objective >= -1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 200, 80
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObjective(j, 1)
	}
	for i := 0; i < m; i++ {
		coeffs := map[int]float64{}
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.1 {
				coeffs[j] = 1
			}
		}
		p.AddConstraint(coeffs, LE, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
