// Package experiments defines the reproduction harness for every figure in
// the paper's evaluation (§5): canonical topologies and workloads, the
// per-approach simulation runner, and one generator per figure. Both
// cmd/owan-bench and the repository-level benchmarks drive this package.
package experiments

import (
	"fmt"
	"io"
	"time"

	"owan/internal/core"
	"owan/internal/sim"
	"owan/internal/te"
	"owan/internal/topology"
	"owan/internal/transfer"
	"owan/internal/workload"
)

// TopoKind selects one of the paper's three evaluation topologies.
type TopoKind string

// Evaluation topologies.
const (
	Internet2 TopoKind = "internet2"
	ISP       TopoKind = "isp"
	InterDC   TopoKind = "interdc"
	// ISP200 is the 200-site stress variant of the ISP backbone: the scale
	// the flat annealing/update paths are benchmarked at. It is opt-in
	// (not part of AllTopos) because full figure sweeps at 200 sites are
	// expensive; use owan-bench's -topo isp200 with the -slots/-iters/-seeds
	// trim flags.
	ISP200 TopoKind = "isp200"
)

// AllTopos lists the evaluation topologies in paper order. ISP200 is
// excluded: it is the opt-in stress scale, not a paper topology.
var AllTopos = []TopoKind{Internet2, ISP, InterDC}

// Scale selects full paper-scale parameters or a reduced quick scale for
// unit benchmarks and CI.
type Scale struct {
	// Sites/ports per topology.
	ISPSites, InterDCSites int
	Ports                  int
	// HorizonSlots is the arrival window ("two hours" at full scale).
	HorizonSlots int
	// MeanSizeGbits per topology class.
	MeanSizeInternet2 float64
	MeanSizeWAN       float64
	// Utilization is the λ=1 demand volume as a fraction of what the
	// network could carry over the horizon.
	Utilization float64
	// OwanIterations caps the annealing schedule.
	OwanIterations int
	// Seeds is the number of workload seeds averaged per data point.
	Seeds int
	// OwanWorkers is the parallelism degree of the annealing energy
	// evaluation (0 or 1 = serial — see core.Config.Workers). Results are
	// invariant to it only when OwanBatch pins the batch size: BatchSize
	// defaults to Workers, and the batch size IS part of the search
	// semantics.
	OwanWorkers int
	// OwanBatch pins the annealing candidate batch per temperature step
	// (0 = core's default, which tracks OwanWorkers). Pin it when
	// comparing worker counts: for a fixed (seed, batch) the trajectory
	// is bit-identical at any OwanWorkers.
	OwanBatch int
	// OwanEnergyCache bounds the per-search energy memoization cache in
	// entries (0 disables).
	OwanEnergyCache int
	// OwanDeltaEval enables incremental candidate evaluation in the
	// annealing search (see core.Config.DeltaEval). The trajectory is
	// bit-identical either way; only wall-clock changes.
	OwanDeltaEval bool
	// OwanProvisionCache sizes the demand-independent provision cache that
	// persists across slots (entries; 0 = core's default on, negative
	// disables — see core.Config.ProvisionCacheSize). Like the energy
	// cache it never changes a trajectory, only wall-clock.
	OwanProvisionCache int
	// OwanReplicas sets the parallel-tempering replica count (0 or 1 =
	// single chain — see core.Config.Replicas). Part of the search
	// semantics: the trajectory is a pure function of (seed, batch,
	// replicas).
	OwanReplicas int
	// OwanWarmStart seeds each slot's cooling schedule from the previous
	// slot's accepted energy and final temperature (see
	// core.Config.WarmStart); warm-started slots may early-exit once the
	// best energy converges.
	OwanWarmStart bool
	// FigWorkers bounds the number of simulation runs a figure generator
	// executes concurrently (0 or 1 = serial). Figure output is
	// bit-identical for any value: runs are independent simulations and
	// per-figure aggregation always happens in the serial order.
	FigWorkers int
}

// FullScale is the paper-faithful configuration.
func FullScale() Scale {
	return Scale{
		ISPSites: 40, InterDCSites: 25, Ports: 10,
		HorizonSlots:      24, // 2 h of 5-minute slots
		MeanSizeInternet2: 500 * workload.GB,
		MeanSizeWAN:       5 * workload.TB,
		Utilization:       0.6,
		OwanIterations:    700,
		Seeds:             3,
	}
}

// QuickScale is a reduced configuration for fast benchmarks.
func QuickScale() Scale {
	return Scale{
		ISPSites: 25, InterDCSites: 20, Ports: 8,
		HorizonSlots:      10,
		MeanSizeInternet2: 500 * workload.GB,
		MeanSizeWAN:       2 * workload.TB,
		Utilization:       0.6,
		OwanIterations:    200,
		Seeds:             1,
	}
}

// SlotSeconds is the reconfiguration period (five minutes).
const SlotSeconds = 300.0

// BuildTopology constructs a named topology at the given scale.
func BuildTopology(kind TopoKind, sc Scale, seed int64) (*topology.Network, error) {
	switch kind {
	case Internet2:
		return topology.Internet2(sc.Ports), nil
	case ISP:
		return topology.ISP(sc.ISPSites, sc.Ports, seed), nil
	case ISP200:
		return topology.ISP(200, sc.Ports, seed), nil
	case InterDC:
		return topology.InterDC(sc.InterDCSites, 5, sc.Ports, seed), nil
	}
	return nil, fmt.Errorf("experiments: unknown topology %q", kind)
}

// meanSize returns the per-topology mean transfer size.
func meanSize(kind TopoKind, sc Scale) float64 {
	if kind == Internet2 {
		return sc.MeanSizeInternet2
	}
	return sc.MeanSizeWAN
}

// demandGbits sizes the λ=1 workload volume relative to network capacity
// over the horizon. Each transfer charges both endpoints' budgets, so the
// per-site budget total is twice the target volume.
func demandGbits(net *topology.Network, sc Scale) float64 {
	circuits := float64(net.TotalPorts()) / 2
	capacity := circuits * net.ThetaGbps * float64(sc.HorizonSlots) * SlotSeconds
	return 2 * sc.Utilization * capacity
}

// Workload generates the requests for a run.
func Workload(kind TopoKind, net *topology.Network, sc Scale, load, deadlineFactor float64, seed int64) ([]transfer.Request, error) {
	return workload.Generate(workload.Config{
		Sites:            net.NumSites(),
		MeanSizeGbits:    meanSize(kind, sc),
		TotalDemandGbits: demandGbits(net, sc),
		Load:             load,
		DurationSlots:    sc.HorizonSlots,
		DeadlineFactor:   deadlineFactor,
		Hotspots:         kind == InterDC,
		HotspotSites:     5,
		Seed:             seed,
	})
}

// ApproachNames lists every runnable approach.
var ApproachNames = []string{
	"owan", "maxflow", "maxminfract", "swan", "tempus", "amoeba",
	"rate-only", "rate-routing", "greedy-separate",
}

// Scheduler builds a sim.Scheduler by name. Deadline-aware runs use EDF
// inside Owan; others use SJF (the paper's default for completion time).
func Scheduler(name string, net *topology.Network, sc Scale, deadlines bool, seed int64, budget time.Duration) (sim.Scheduler, error) {
	policy := transfer.SJF
	if deadlines {
		policy = transfer.EDF
	}
	// Start from the canonical defaults and overlay the experiment's
	// knobs; Validate fails fast on nonsense (negative workers, bad
	// iteration counts) instead of feeding it to the search.
	owanCfg := core.DefaultConfig(net)
	owanCfg.Policy = policy
	owanCfg.MaxIterations = sc.OwanIterations
	owanCfg.TimeBudget = budget
	owanCfg.Workers = sc.OwanWorkers
	owanCfg.BatchSize = sc.OwanBatch
	owanCfg.EnergyCacheSize = sc.OwanEnergyCache
	owanCfg.DeltaEval = sc.OwanDeltaEval
	owanCfg.ProvisionCacheSize = sc.OwanProvisionCache
	owanCfg.Replicas = sc.OwanReplicas
	owanCfg.WarmStart = sc.OwanWarmStart
	owanCfg.Seed = seed
	if err := owanCfg.Validate(); err != nil {
		return nil, err
	}
	mkOwan := func() *core.Owan {
		return core.New(owanCfg)
	}
	switch name {
	case "owan":
		return &sim.OwanScheduler{O: mkOwan(), SlotSeconds: SlotSeconds}, nil
	case "greedy-separate":
		return &sim.GreedyScheduler{O: mkOwan(), SlotSeconds: SlotSeconds}, nil
	case "maxflow":
		return &sim.TEScheduler{Approach: te.MaxFlow{}, Theta: net.ThetaGbps, SlotSeconds: SlotSeconds}, nil
	case "maxminfract":
		return &sim.TEScheduler{Approach: te.MaxMinFract{}, Theta: net.ThetaGbps, SlotSeconds: SlotSeconds}, nil
	case "swan":
		return &sim.TEScheduler{Approach: te.SWAN{}, Theta: net.ThetaGbps, SlotSeconds: SlotSeconds}, nil
	case "tempus":
		return &sim.TEScheduler{Approach: te.Tempus{}, Theta: net.ThetaGbps, SlotSeconds: SlotSeconds}, nil
	case "amoeba":
		return &sim.TEScheduler{Approach: &te.Amoeba{}, Theta: net.ThetaGbps, SlotSeconds: SlotSeconds}, nil
	case "rate-only":
		return &sim.TEScheduler{Approach: te.RateOnly{Policy: policy}, Theta: net.ThetaGbps, SlotSeconds: SlotSeconds}, nil
	case "rate-routing":
		return &sim.TEScheduler{Approach: te.RateRouting{Policy: policy, StarveSlots: core.DefaultStarveSlots}, Theta: net.ThetaGbps, SlotSeconds: SlotSeconds}, nil
	}
	return nil, fmt.Errorf("experiments: unknown approach %q", name)
}

// RunSpec is one simulation run.
type RunSpec struct {
	Topo           TopoKind
	Approach       string
	Load           float64
	DeadlineFactor float64 // 0 = no deadlines
	Seed           int64
	Scale          Scale
	// OwanBudget optionally caps the annealing wall-clock time (Fig 10d).
	OwanBudget time.Duration
	// Requests, when non-nil, replaces the synthetic workload (trace
	// replay). DeadlineFactor still selects EDF scheduling when positive.
	Requests []transfer.Request
}

// Run executes one simulation run end to end.
func Run(spec RunSpec) (*sim.Result, error) {
	net, err := BuildTopology(spec.Topo, spec.Scale, spec.Seed)
	if err != nil {
		return nil, err
	}
	reqs := spec.Requests
	if reqs == nil {
		reqs, err = Workload(spec.Topo, net, spec.Scale, spec.Load, spec.DeadlineFactor, spec.Seed+100)
		if err != nil {
			return nil, err
		}
	}
	sched, err := Scheduler(spec.Approach, net, spec.Scale, spec.DeadlineFactor > 0, spec.Seed+200, spec.OwanBudget)
	if err != nil {
		return nil, err
	}
	if c, ok := sched.(io.Closer); ok {
		defer c.Close() // stop Owan-backed schedulers' evaluator pools
	}
	maxSlots := 50 * spec.Scale.HorizonSlots
	if spec.DeadlineFactor > 0 {
		// Deadline runs measure deadline hits, not drain time: a bounded
		// tail keeps Amoeba/Tempus ledgers small.
		maxSlots = spec.Scale.HorizonSlots + int(spec.DeadlineFactor) + 50
	}
	return sim.Run(sim.Config{
		Net:             net,
		Initial:         topology.InitialTopology(net),
		Scheduler:       sched,
		Requests:        reqs,
		SlotSeconds:     SlotSeconds,
		MaxSlots:        maxSlots,
		ReconfigSeconds: 4,
	})
}
