package experiments

import (
	"reflect"
	"testing"
)

// TestFigWorkersDeterministic asserts the figure-collection contract: the
// per-cell aggregates are bit-identical whether the (cell × seed) runs
// execute serially or on a worker pool. Two seeds per cell so the
// seed-order aggregation path is exercised, not just the dispatch.
func TestFigWorkersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	sc := quick()
	sc.HorizonSlots = 3
	sc.OwanIterations = 60
	sc.Seeds = 2
	cells := []cellSpec{
		{"owan", 1, 0},
		{"maxflow", 1, 0},
		{"swan", 0.5, 0},
		{"owan", 1, 10},
	}

	sc.FigWorkers = 1
	serial, err := collectCells(Internet2, cells, sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.FigWorkers = 4
	parallel, err := collectCells(Internet2, cells, sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("cell %d (%+v): serial %+v != parallel %+v", i, cells[i], serial[i], parallel[i])
		}
	}
}
