package experiments

import (
	"math"
	"testing"

	"owan/internal/topology"
)

func TestFailureRecoveryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	sc := quick()
	f, err := FailureRecovery(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Both series exist, and Owan's post-failure goodput beats SWAN's.
	failT := float64(sc.HorizonSlots/2) * SlotSeconds
	var owan, swan float64
	var n int
	for _, x := range f.Xs() {
		if x < failT {
			continue
		}
		yo, ok1 := f.Get("owan", x)
		ys, ok2 := f.Get("swan", x)
		if !ok1 || !ok2 {
			continue
		}
		owan += yo
		swan += ys
		n++
	}
	if n == 0 {
		t.Fatal("no post-failure samples")
	}
	if math.IsNaN(owan) || owan <= swan {
		t.Errorf("post-failure goodput: owan %v <= swan %v", owan, swan)
	}
}

func TestFailureCorrelatedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	sc := quick()
	f, err := FailureCorrelated(sc, sc.ISPSites)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "failure-isp25" {
		t.Errorf("figure id %q", f.ID)
	}
	// Both approaches carry goodput, and the planner produced at least one
	// real (positive-duration) consistent schedule for each.
	for _, ap := range []string{"owan", "swan"} {
		var goodput, updSecs float64
		for _, x := range f.Xs() {
			if y, ok := f.Get(ap, x); ok {
				goodput += y
			}
			if y, ok := f.Get(ap+"-update-seconds", x); ok {
				updSecs += y
			}
		}
		if goodput <= 0 {
			t.Errorf("%s: no goodput recorded", ap)
		}
		if updSecs <= 0 {
			t.Errorf("%s: no update schedule carried any wall-clock time", ap)
		}
	}
}

func TestCorrelatedHubCutKeepsConnectivity(t *testing.T) {
	for _, sites := range []int{12, 25, 40} {
		net := topology.ISP(sites, 8, 1)
		cut := correlatedHubCut(net)
		if len(cut) != 2 {
			t.Fatalf("isp%d: got %d cut fibers", sites, len(cut))
		}
		// Re-check: the surviving fiber graph stays connected.
		isCut := map[int]bool{cut[0]: true, cut[1]: true}
		seen := make([]bool, len(net.Sites))
		seen[0] = true
		queue := []int{0}
		n := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, fb := range net.Fibers {
				if isCut[fb.ID] {
					continue
				}
				w := -1
				if fb.A == v {
					w = fb.B
				} else if fb.B == v {
					w = fb.A
				}
				if w >= 0 && !seen[w] {
					seen[w] = true
					n++
					queue = append(queue, w)
				}
			}
		}
		if n != len(net.Sites) {
			t.Errorf("isp%d: cut %v disconnects the fiber graph (%d/%d reachable)",
				sites, cut, n, len(net.Sites))
		}
	}
}
