package experiments

import (
	"math"
	"testing"
)

func TestFailureRecoveryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	sc := quick()
	f, err := FailureRecovery(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Both series exist, and Owan's post-failure goodput beats SWAN's.
	failT := float64(sc.HorizonSlots/2) * SlotSeconds
	var owan, swan float64
	var n int
	for _, x := range f.Xs() {
		if x < failT {
			continue
		}
		yo, ok1 := f.Get("owan", x)
		ys, ok2 := f.Get("swan", x)
		if !ok1 || !ok2 {
			continue
		}
		owan += yo
		swan += ys
		n++
	}
	if n == 0 {
		t.Fatal("no post-failure samples")
	}
	if math.IsNaN(owan) || owan <= swan {
		t.Errorf("post-failure goodput: owan %v <= swan %v", owan, swan)
	}
}
