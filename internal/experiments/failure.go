package experiments

import (
	"fmt"
	"io"

	"owan/internal/figdata"
	"owan/internal/sim"
	"owan/internal/topology"
)

// correlatedHubCut picks a correlated failure: two fibers incident to the
// network's highest-degree site (the hub) whose loss keeps the fiber graph
// connected — the cut degrades capacity and forces detours without
// stranding a site (a stranded site can never drain). Candidates are tried
// in descending fiber-id order, i.e. the short augmentation edges the hub
// attracted first, which is exactly the redundancy a real conduit cut near
// a POP takes out.
func correlatedHubCut(net *topology.Network) []int {
	deg := make([]int, len(net.Sites))
	for _, fb := range net.Fibers {
		deg[fb.A]++
		deg[fb.B]++
	}
	hub := 0
	for i, d := range deg {
		if d > deg[hub] {
			hub = i
		}
	}
	cut := map[int]bool{}
	connected := func() bool {
		seen := make([]bool, len(net.Sites))
		queue := []int{0}
		seen[0] = true
		n := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, fb := range net.Fibers {
				if cut[fb.ID] {
					continue
				}
				w := -1
				if fb.A == v {
					w = fb.B
				} else if fb.B == v {
					w = fb.A
				}
				if w >= 0 && !seen[w] {
					seen[w] = true
					n++
					queue = append(queue, w)
				}
			}
		}
		return n == len(net.Sites)
	}
	var ids []int
	for i := len(net.Fibers) - 1; i >= 0 && len(ids) < 2; i-- {
		fb := net.Fibers[i]
		if fb.A != hub && fb.B != hub {
			continue
		}
		cut[fb.ID] = true
		if connected() {
			ids = append(ids, fb.ID)
		} else {
			delete(cut, fb.ID)
		}
	}
	return ids
}

// FailureCorrelated goes beyond the paper's single-fiber cuts (the ROADMAP
// failure-scale item): a correlated two-fiber cut at one hub site of the
// synthetic ISP backbone at `sites` sites — the conduit-cut case where one
// physical event takes out multiple fiber pairs at a POP. Owan versus SWAN,
// both with the end-to-end consistent-update planner on, so the figure
// carries per-slot goodput and the wall-clock seconds of each slot's update
// schedule while the network heals.
func FailureCorrelated(sc Scale, sites int) (*figdata.Figure, error) {
	f := figdata.NewFigure(fmt.Sprintf("failure-isp%d", sites),
		fmt.Sprintf("Goodput and update time across a correlated 2-fiber hub cut (ISP %d)", sites),
		"seconds", "Gbps / seconds")
	net0 := topology.ISP(sites, sc.Ports, 1)
	// λ=1.2 keeps a standing backlog through the cut (so the goodput dip
	// and recovery are visible) while leaving the post-cut network enough
	// capacity that even the static baseline eventually drains.
	reqs, err := Workload(ISP, net0, sc, 1.2, 0, 71)
	if err != nil {
		return nil, err
	}
	cut := correlatedHubCut(net0)
	if len(cut) < 2 {
		return nil, fmt.Errorf("experiments: no safe correlated cut on isp%d", sites)
	}
	failSlot := sc.HorizonSlots / 2
	failures := map[int][]int{failSlot: cut}

	for _, ap := range []string{"owan", "swan"} {
		net := topology.ISP(sites, sc.Ports, 1)
		sched, err := Scheduler(ap, net, sc, false, 3, 0)
		if err != nil {
			return nil, err
		}
		if ts, ok := sched.(*sim.TEScheduler); ok {
			ts.Net = net // enable failure awareness for the baseline
		}
		if c, ok := sched.(io.Closer); ok {
			defer c.Close()
		}
		res, err := sim.Run(sim.Config{
			Net:             net,
			Initial:         topology.InitialTopology(net),
			Scheduler:       sched,
			Requests:        reqs,
			SlotSeconds:     SlotSeconds,
			MaxSlots:        50 * sc.HorizonSlots,
			ReconfigSeconds: 4,
			FiberFailures:   failures,
			PlanUpdates:     true,
		})
		if err != nil {
			return nil, err
		}
		if len(res.Completed()) != len(res.Transfers) {
			return nil, fmt.Errorf("experiments: %s did not drain after correlated cut", ap)
		}
		for i, thr := range res.SlotThroughput {
			if i >= sc.HorizonSlots+4 {
				break // arrival window plus the recovery tail
			}
			f.Add(ap, float64(i)*SlotSeconds, thr)
		}
		for i, u := range res.Updates {
			if i >= sc.HorizonSlots+4 {
				break
			}
			f.Add(ap+"-update-seconds", float64(i)*SlotSeconds, u.Seconds)
		}
	}
	return f, nil
}

// FailureRecovery is an extension experiment beyond the paper's figures:
// §3.4 argues that because Owan's search minimizes the amount of change,
// it converges to a new feasible schedule with only incremental updates
// after a failure. This experiment cuts two fibers mid-run on the
// Internet2 topology and plots per-slot goodput for Owan versus SWAN
// (whose operator can only re-derive the static topology on the surviving
// fibers).
func FailureRecovery(sc Scale) (*figdata.Figure, error) {
	f := figdata.NewFigure("failure", "Goodput across a 2-fiber failure (Internet2)", "seconds", "Gbps")
	net0, err := BuildTopology(Internet2, sc, 1)
	if err != nil {
		return nil, err
	}
	reqs, err := Workload(Internet2, net0, sc, 1.5, 0, 71)
	if err != nil {
		return nil, err
	}
	failSlot := sc.HorizonSlots / 2
	// Fail SEAT-SALT (fiber 0) and LOSA-HOUS (fiber 3): the west coast
	// keeps connectivity but loses capacity and must detour.
	failures := map[int][]int{failSlot: {0, 3}}

	for _, ap := range []string{"owan", "swan"} {
		net, err := BuildTopology(Internet2, sc, 1)
		if err != nil {
			return nil, err
		}
		sched, err := Scheduler(ap, net, sc, false, 3, 0)
		if err != nil {
			return nil, err
		}
		if ts, ok := sched.(*sim.TEScheduler); ok {
			ts.Net = net // enable failure awareness for the baseline
		}
		if c, ok := sched.(io.Closer); ok {
			defer c.Close()
		}
		res, err := sim.Run(sim.Config{
			Net:             net,
			Initial:         topology.InitialTopology(net),
			Scheduler:       sched,
			Requests:        reqs,
			SlotSeconds:     SlotSeconds,
			MaxSlots:        50 * sc.HorizonSlots,
			ReconfigSeconds: 4,
			FiberFailures:   failures,
		})
		if err != nil {
			return nil, err
		}
		if len(res.Completed()) != len(res.Transfers) {
			return nil, fmt.Errorf("experiments: %s did not drain after failure", ap)
		}
		for i, thr := range res.SlotThroughput {
			if i >= sc.HorizonSlots+4 {
				break // show the arrival window plus the recovery tail
			}
			f.Add(ap, float64(i)*SlotSeconds, thr)
		}
	}
	return f, nil
}
