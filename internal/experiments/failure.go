package experiments

import (
	"fmt"
	"io"

	"owan/internal/figdata"
	"owan/internal/sim"
	"owan/internal/topology"
)

// FailureRecovery is an extension experiment beyond the paper's figures:
// §3.4 argues that because Owan's search minimizes the amount of change,
// it converges to a new feasible schedule with only incremental updates
// after a failure. This experiment cuts two fibers mid-run on the
// Internet2 topology and plots per-slot goodput for Owan versus SWAN
// (whose operator can only re-derive the static topology on the surviving
// fibers).
func FailureRecovery(sc Scale) (*figdata.Figure, error) {
	f := figdata.NewFigure("failure", "Goodput across a 2-fiber failure (Internet2)", "seconds", "Gbps")
	net0, err := BuildTopology(Internet2, sc, 1)
	if err != nil {
		return nil, err
	}
	reqs, err := Workload(Internet2, net0, sc, 1.5, 0, 71)
	if err != nil {
		return nil, err
	}
	failSlot := sc.HorizonSlots / 2
	// Fail SEAT-SALT (fiber 0) and LOSA-HOUS (fiber 3): the west coast
	// keeps connectivity but loses capacity and must detour.
	failures := map[int][]int{failSlot: {0, 3}}

	for _, ap := range []string{"owan", "swan"} {
		net, err := BuildTopology(Internet2, sc, 1)
		if err != nil {
			return nil, err
		}
		sched, err := Scheduler(ap, net, sc, false, 3, 0)
		if err != nil {
			return nil, err
		}
		if ts, ok := sched.(*sim.TEScheduler); ok {
			ts.Net = net // enable failure awareness for the baseline
		}
		if c, ok := sched.(io.Closer); ok {
			defer c.Close()
		}
		res, err := sim.Run(sim.Config{
			Net:             net,
			Initial:         topology.InitialTopology(net),
			Scheduler:       sched,
			Requests:        reqs,
			SlotSeconds:     SlotSeconds,
			MaxSlots:        50 * sc.HorizonSlots,
			ReconfigSeconds: 4,
			FiberFailures:   failures,
		})
		if err != nil {
			return nil, err
		}
		if len(res.Completed()) != len(res.Transfers) {
			return nil, fmt.Errorf("experiments: %s did not drain after failure", ap)
		}
		for i, thr := range res.SlotThroughput {
			if i >= sc.HorizonSlots+4 {
				break // show the arrival window plus the recovery tail
			}
			f.Add(ap, float64(i)*SlotSeconds, thr)
		}
	}
	return f, nil
}
