package experiments

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"owan/internal/core"
	"owan/internal/emu"
	"owan/internal/figdata"
	"owan/internal/metrics"
	"owan/internal/optical"
	"owan/internal/sim"
	"owan/internal/topology"
	"owan/internal/transfer"
	"owan/internal/update"
)

// Loads is the traffic-load sweep of Figures 7 and 8.
var Loads = []float64{0.5, 1.0, 1.5, 2.0}

// DeadlineFactors is the σ sweep of Figure 9.
var DeadlineFactors = []float64{5, 10, 20, 30, 40, 50}

// fig7Baselines are the deadline-unconstrained comparison approaches.
var fig7Baselines = []string{"maxflow", "maxminfract", "swan"}

// fig9Approaches are the deadline-constrained approaches (Owan first).
var fig9Approaches = []string{"owan", "maxflow", "maxminfract", "swan", "tempus", "amoeba"}

// runStats aggregates one (approach, load/σ, topo) cell over seeds.
type runStats struct {
	avgCT, p95CT    float64
	makespan        float64
	binAvgCT        map[metrics.Bin]float64
	cdf             []figdata.Series
	deadline        metrics.DeadlineStats
	binMetPct       map[metrics.Bin]float64
	completionTimes []float64
}

// cellSpec names one (approach, load, σ) simulation cell of a figure.
type cellSpec struct {
	approach    string
	load, sigma float64
}

// accumulate folds one seed's simulation result into a cell aggregate.
// n is the seed count; calling it once per seed in seed order reproduces
// the original serial collect loop float-for-float.
func (agg *runStats) accumulate(res *sim.Result, sigma, n float64) {
	ct := metrics.CompletionTimes(res.Transfers, SlotSeconds)
	agg.completionTimes = append(agg.completionTimes, ct...)
	agg.avgCT += metrics.Mean(ct) / n
	agg.p95CT += metrics.Percentile(ct, 95) / n
	if !math.IsInf(res.MakespanSeconds, 1) {
		agg.makespan += res.MakespanSeconds / n
	}
	bins := metrics.BinBySize(res.Transfers)
	for _, b := range []metrics.Bin{metrics.Small, metrics.Middle, metrics.Large} {
		agg.binAvgCT[b] += metrics.Mean(metrics.CompletionTimes(bins[b], SlotSeconds)) / n
		if sigma > 0 {
			agg.binMetPct[b] += metrics.Deadlines(bins[b], SlotSeconds).TransfersMetPct / n
		}
	}
	if sigma > 0 {
		d := metrics.Deadlines(res.Transfers, SlotSeconds)
		agg.deadline.TransfersMetPct += d.TransfersMetPct / n
		agg.deadline.BytesMetPct += d.BytesMetPct / n
	}
}

// collectCells runs every (cell × seed) simulation of a figure on a bounded
// worker pool (sc.FigWorkers goroutines; 0 or 1 = serial) and returns one
// aggregate per cell, in cell order. Runs are independent end-to-end
// simulations, and each cell is folded over its seeds in seed order after
// all runs finish, so the output is bit-identical for any worker count.
// On error, the first failing run in (cell, seed) order wins, so error
// reporting is deterministic too.
func collectCells(topo TopoKind, cells []cellSpec, sc Scale) ([]*runStats, error) {
	type job struct{ cell, seed int }
	jobs := make([]job, 0, len(cells)*sc.Seeds)
	for c := range cells {
		for s := 0; s < sc.Seeds; s++ {
			jobs = append(jobs, job{c, s})
		}
	}
	results := make([]*sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	run := func(i int) {
		j := jobs[i]
		results[i], errs[i] = Run(RunSpec{
			Topo: topo, Approach: cells[j.cell].approach, Load: cells[j.cell].load,
			DeadlineFactor: cells[j.cell].sigma, Seed: int64(j.seed*997 + 13), Scale: sc,
		})
	}
	if workers := min(sc.FigWorkers, len(jobs)); workers > 1 {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					run(i)
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i := range jobs {
			run(i)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]*runStats, len(cells))
	n := float64(sc.Seeds)
	for c := range cells {
		agg := &runStats{binAvgCT: map[metrics.Bin]float64{}, binMetPct: map[metrics.Bin]float64{}}
		for s := 0; s < sc.Seeds; s++ {
			agg.accumulate(results[c*sc.Seeds+s], cells[c].sigma, n)
		}
		out[c] = agg
	}
	return out, nil
}

// collect runs one approach over the configured seeds and averages.
func collect(topo TopoKind, approach string, load, sigma float64, sc Scale) (*runStats, error) {
	out, err := collectCells(topo, []cellSpec{{approach, load, sigma}}, sc)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// Fig7 reproduces Figure 7 for one topology: (a) factor of improvement on
// average and 95th-percentile completion time versus load, (b) per-size-bin
// improvement at load 1, and (c) the completion-time CDF at load 1.
func Fig7(topo TopoKind, sc Scale) ([]*figdata.Figure, error) {
	sub := string(topo)
	fa := figdata.NewFigure("fig7a-"+sub, "Improvement on completion time ("+sub+")", "load", "factor")
	fb := figdata.NewFigure("fig7b-"+sub, "Improvement by size bin at load 1 ("+sub+")", "bin", "factor")
	fc := figdata.NewFigure("fig7c-"+sub, "Completion time CDF at load 1 ("+sub+")", "seconds", "fraction")

	var cells []cellSpec
	for _, load := range Loads {
		cells = append(cells, cellSpec{"owan", load, 0})
		for _, base := range fig7Baselines {
			cells = append(cells, cellSpec{base, load, 0})
		}
	}
	stats, err := collectCells(topo, cells, sc)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, load := range Loads {
		owan := stats[k]
		k++
		for _, base := range fig7Baselines {
			st := stats[k]
			k++
			fa.Add("vs-"+base+"-avg", load, metrics.FactorOfImprovement(owan.avgCT, st.avgCT))
			fa.Add("vs-"+base+"-p95", load, metrics.FactorOfImprovement(owan.p95CT, st.p95CT))
			if load == 1 {
				for i, b := range []metrics.Bin{metrics.Small, metrics.Middle, metrics.Large} {
					fb.Add("vs-"+base, float64(i), metrics.FactorOfImprovement(owan.binAvgCT[b], st.binAvgCT[b]))
				}
				addCDF(fc, base, st.completionTimes)
			}
		}
		if load == 1 {
			addCDF(fc, "owan", owan.completionTimes)
		}
	}
	return []*figdata.Figure{fa, fb, fc}, nil
}

// addCDF downsamples a CDF to at most 30 points for readable tables.
func addCDF(f *figdata.Figure, name string, xs []float64) {
	cdf := metrics.CDF(xs)
	if len(cdf) == 0 {
		return
	}
	step := len(cdf)/30 + 1
	for i := 0; i < len(cdf); i += step {
		f.Add(name, cdf[i].X, cdf[i].F)
	}
	f.Add(name, cdf[len(cdf)-1].X, 1)
}

// Fig8 reproduces Figure 8: makespan improvement factor versus load.
func Fig8(topo TopoKind, sc Scale) (*figdata.Figure, error) {
	f := figdata.NewFigure("fig8-"+string(topo), "Improvement on makespan ("+string(topo)+")", "load", "factor")
	var cells []cellSpec
	for _, load := range Loads {
		cells = append(cells, cellSpec{"owan", load, 0})
		for _, base := range fig7Baselines {
			cells = append(cells, cellSpec{base, load, 0})
		}
	}
	stats, err := collectCells(topo, cells, sc)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, load := range Loads {
		owan := stats[k]
		k++
		for _, base := range fig7Baselines {
			st := stats[k]
			k++
			f.Add("vs-"+base, load, metrics.FactorOfImprovement(owan.makespan, st.makespan))
		}
	}
	return f, nil
}

// Fig9 reproduces Figure 9 for one topology: (a) % of transfers meeting
// deadlines versus σ, (b) % of bytes finishing before deadlines versus σ,
// and (c) the per-size-bin breakdown at σ=20.
func Fig9(topo TopoKind, sc Scale) ([]*figdata.Figure, error) {
	sub := string(topo)
	fa := figdata.NewFigure("fig9a-"+sub, "% transfers meeting deadlines ("+sub+")", "sigma", "percent")
	fb := figdata.NewFigure("fig9b-"+sub, "% bytes before deadlines ("+sub+")", "sigma", "percent")
	fc := figdata.NewFigure("fig9c-"+sub, "% transfers meeting deadlines by bin at sigma=20 ("+sub+")", "bin", "percent")
	var cells []cellSpec
	for _, sigma := range DeadlineFactors {
		for _, ap := range fig9Approaches {
			cells = append(cells, cellSpec{ap, 1.0, sigma})
		}
	}
	stats, err := collectCells(topo, cells, sc)
	if err != nil {
		return nil, err
	}
	k := 0
	for _, sigma := range DeadlineFactors {
		for _, ap := range fig9Approaches {
			st := stats[k]
			k++
			fa.Add(ap, sigma, st.deadline.TransfersMetPct)
			fb.Add(ap, sigma, st.deadline.BytesMetPct)
			if sigma == 20 {
				for i, b := range []metrics.Bin{metrics.Small, metrics.Middle, metrics.Large} {
					fc.Add(ap, float64(i), st.binMetPct[b])
				}
			}
		}
	}
	return []*figdata.Figure{fa, fb, fc}, nil
}

// Fig10a reproduces Figure 10(a): total throughput over time under joint
// (simulated annealing) versus separate (greedy) optimization on the
// inter-DC topology.
func Fig10a(sc Scale) (*figdata.Figure, error) {
	f := figdata.NewFigure("fig10a", "Joint (SA) vs separate (greedy) optimization", "seconds", "Gbps")
	for _, ap := range []string{"owan", "greedy-separate"} {
		// Overload (λ=1.5) keeps a standing backlog, so per-slot goodput
		// reflects achievable network throughput — the quantity the
		// paper's Figure 10(a) plots — rather than the demand tail. Only
		// the arrival window is shown for the same reason. The annealing
		// gets a full-depth schedule: this microbenchmark measures search
		// quality, not the per-slot time budget.
		scA := sc
		if scA.OwanIterations < 700 {
			scA.OwanIterations = 700
		}
		res, err := Run(RunSpec{Topo: InterDC, Approach: ap, Load: 1.5, Seed: 17, Scale: scA})
		if err != nil {
			return nil, err
		}
		name := "simulated-annealing"
		if ap != "owan" {
			name = "greedy"
		}
		for i, thr := range res.SlotThroughput {
			if i >= sc.HorizonSlots {
				break
			}
			f.Add(name, float64(i)*SlotSeconds, thr)
		}
	}
	return f, nil
}

// Fig10b reproduces Figure 10(b): throughput during a topology update with
// the consistent cross-layer schedule versus a one-shot update. The states
// come from two consecutive Owan slots on the inter-DC topology.
func Fig10b(sc Scale) (*figdata.Figure, error) {
	return Fig10bAt(InterDC, sc)
}

// Fig10bAt is Fig10b parameterized by topology, so the update scheduler can
// be exercised at stress scales (e.g. ISP200) with the same harness. The
// inter-DC run keeps the paper figure's id; other topologies get a suffix.
func Fig10bAt(topo TopoKind, sc Scale) (*figdata.Figure, error) {
	net, err := BuildTopology(topo, sc, 3)
	if err != nil {
		return nil, err
	}
	reqs, err := Workload(topo, net, sc, 1, 0, 31)
	if err != nil {
		return nil, err
	}
	o := core.New(core.Config{Net: net, Policy: transfer.SJF, MaxIterations: sc.OwanIterations, Seed: 5})
	var ts []*transfer.Transfer
	for _, r := range reqs {
		if r.Arrival == 0 {
			ts = append(ts, transfer.NewTransfer(r))
		}
	}
	cur := topology.InitialTopology(net)
	stA := o.ComputeNetworkState(cur, ts, 0, SlotSeconds)
	// The paper's Figure 10(b) measures one testbed reconfiguration: a
	// handful of circuits move while traffic keeps flowing. Apply a few
	// annealing moves to stA's topology (the same elementary reconfigu-
	// ration Owan performs incrementally) and reallocate, rather than
	// running a full fresh search whose churn would swamp the comparison.
	topoB := stA.Topology
	for i := 0; i < 3; i++ {
		if n := o.ComputeNeighbor(topoB); n != nil {
			topoB = n
		}
	}
	for i, t := range ts {
		if i%2 == 0 {
			t.Remaining *= 0.8
		}
	}
	stB := o.Reallocate(topoB, ts, 1, SlotSeconds)

	opt := optical.NewState(net)
	toUpdateState := func(ns *core.NetworkState) *update.State {
		circuits := map[[2]int]int{}
		fibers := map[[2]int][]int{}
		for _, l := range ns.Effective.Links() {
			k := [2]int{l.U, l.V}
			circuits[k] = l.Count
			fibers[k] = append([]int(nil), opt.FiberPathIDs(l.U, l.V)...)
		}
		// Flatten the allocation in sorted transfer-id order: map
		// iteration order would otherwise make the emitted route list —
		// and with it the plan's op order — vary run to run.
		ids := make([]int, 0, len(ns.Alloc))
		for id := range ns.Alloc {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		var routes []update.Route
		for _, id := range ids {
			for _, pr := range ns.Alloc[id] {
				routes = append(routes, update.Route{TransferID: id, Path: pr.Path, Rate: pr.Rate})
			}
		}
		return &update.State{Circuits: circuits, CircuitFibers: fibers, Routes: routes}
	}
	oldState, newState := toUpdateState(stA), toUpdateState(stB)

	// Spare wavelengths per fiber: φ minus what the old state uses.
	used := map[int]int{}
	for k, n := range oldState.Circuits {
		for _, fid := range oldState.CircuitFibers[k] {
			used[fid] += n
		}
	}
	free := map[int]int{}
	for _, fb := range net.Fibers {
		free[fb.ID] = fb.Wavelengths - used[fb.ID]
		if free[fb.ID] < 0 {
			free[fb.ID] = 0
		}
	}
	plan, err := update.BuildPlan(update.Config{Theta: net.ThetaGbps, FiberFree: free}, oldState, newState)
	if err != nil {
		return nil, err
	}
	id, title := "fig10b", "Throughput during update: consistent vs one-shot"
	if topo != InterDC {
		id += "-" + string(topo)
		title += " (" + string(topo) + ")"
	}
	f := figdata.NewFigure(id, title, "seconds", "Gbps")
	for _, s := range plan.Timeline(oldState) {
		f.Add("consistent", s.T, s.Throughput)
	}
	for _, s := range update.OneShotTimeline(oldState, newState) {
		f.Add("one-shot", s.T, s.Throughput)
	}
	// With transport behaviour: the affected TCP flows time out during the
	// dark window and recover through slow start (50 ms RTT).
	tcpSamples, err := update.OneShotTCPTimeline(oldState, newState, 0.05)
	if err != nil {
		return nil, err
	}
	step := len(tcpSamples)/24 + 1
	for i := 0; i < len(tcpSamples); i += step {
		f.Add("one-shot-tcp", tcpSamples[i].T, tcpSamples[i].Throughput)
	}
	return f, nil
}

// Fig10c reproduces Figure 10(c): the breakdown of gains. Average
// completion time under rate-only, rate+routing, and full (topology)
// control, normalized by the full-control value at load 0.5.
func Fig10c(sc Scale) (*figdata.Figure, error) {
	f := figdata.NewFigure("fig10c", "Breakdown of gains (inter-DC)", "load", "normalized avg completion time")
	norm := 0.0
	type cell struct {
		name string
		load float64
		avg  float64
	}
	approaches := []string{"rate-only", "rate-routing", "owan"}
	var specs []cellSpec
	for _, load := range Loads {
		for _, ap := range approaches {
			specs = append(specs, cellSpec{ap, load, 0})
		}
	}
	stats, err := collectCells(InterDC, specs, sc)
	if err != nil {
		return nil, err
	}
	var cells []cell
	k := 0
	for _, load := range Loads {
		for _, ap := range approaches {
			st := stats[k]
			k++
			label := map[string]string{"rate-only": "rate", "rate-routing": "+rout.", "owan": "+topo."}[ap]
			cells = append(cells, cell{label, load, st.avgCT})
			if ap == "owan" && load == Loads[0] {
				norm = st.avgCT
			}
		}
	}
	if norm <= 0 {
		return nil, fmt.Errorf("experiments: degenerate normalization")
	}
	for _, c := range cells {
		f.Add(c.name, c.load, c.avg/norm)
	}
	return f, nil
}

// Fig10d reproduces Figure 10(d): average completion time versus the
// simulated-annealing running-time budget.
func Fig10d(sc Scale) (*figdata.Figure, error) {
	f := figdata.NewFigure("fig10d", "Impact of SA running time (inter-DC)", "budget seconds", "avg completion seconds")
	// The wall-clock budget must be the binding constraint, so lift the
	// iteration cap for this experiment. A single seed is too noisy to
	// expose the budget effect; average a few.
	sc.OwanIterations = 1 << 20
	const seeds = 3
	for _, budget := range []time.Duration{
		20 * time.Millisecond, 80 * time.Millisecond, 320 * time.Millisecond,
		1280 * time.Millisecond, 5120 * time.Millisecond,
	} {
		sum := 0.0
		for seed := int64(0); seed < seeds; seed++ {
			res, err := Run(RunSpec{
				Topo: InterDC, Approach: "owan", Load: 1, Seed: 23 + seed*101, Scale: sc,
				OwanBudget: budget,
			})
			if err != nil {
				return nil, err
			}
			sum += metrics.Mean(metrics.CompletionTimes(res.Transfers, SlotSeconds))
		}
		f.Add("owan", budget.Seconds(), sum/seeds)
	}
	return f, nil
}

// FigTempering compares the plain per-slot annealer against the warm-started
// replica-exchange annealer on a drifting multi-slot workload: each series is
// (cumulative search wall-clock, accepted slot energy), so "tempered reaches
// the plain annealer's energy in less wall-clock" reads directly off the
// curves. Run on the paper's ISP topology at 40 sites and an ISP100-class
// network, so both the single-word and multi-word bitset paths are measured.
func FigTempering(sc Scale) (*figdata.Figure, error) {
	f := figdata.NewFigure("tempering", "Warm-start + replica exchange vs plain annealing", "cumulative seconds", "Gbps")
	const slots = 6
	variants := []struct {
		name     string
		replicas int
		warm     bool
	}{
		{"plain", 1, false},
		{"tempered", temperingReplicas(sc), true},
	}
	for _, tc := range []struct {
		name  string
		sites int
	}{
		{"isp40", 40},
		{"isp100", 100},
	} {
		net := topology.ISP(tc.sites, sc.Ports, 1)
		// Per-slot demand sets with slot-to-slot locality: consecutive slot
		// pairs draw the same workload, so half the slots repeat the previous
		// demands exactly and half drift — the regime §3.2's incremental
		// reconfiguration argument targets.
		slotTransfers := make([][]*transfer.Transfer, slots)
		for s := 0; s < slots; s++ {
			reqs, err := Workload(ISP, net, sc, 1, 0, 61+int64(s/2))
			if err != nil {
				return nil, err
			}
			for _, r := range reqs {
				if r.Arrival == 0 {
					slotTransfers[s] = append(slotTransfers[s], transfer.NewTransfer(r))
				}
			}
		}
		for _, v := range variants {
			cfg := core.DefaultConfig(net)
			cfg.MaxIterations = sc.OwanIterations
			if v.replicas == 1 {
				// Equal total search budget: the single chain gets the same
				// candidate-evaluation count the whole ladder does, so the
				// curves compare solution quality per unit work instead of
				// penalizing the ladder for running R chains per slot.
				cfg.MaxIterations = sc.OwanIterations * temperingReplicas(sc)
			}
			cfg.Workers = sc.OwanWorkers
			cfg.BatchSize = sc.OwanBatch
			cfg.EnergyCacheSize = sc.OwanEnergyCache
			cfg.Replicas = v.replicas
			cfg.WarmStart = v.warm
			cfg.Seed = 7
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			o := core.New(cfg)
			cur := topology.InitialTopology(net)
			elapsed := 0.0
			for s := 0; s < slots; s++ {
				st := o.ComputeNetworkState(cur, slotTransfers[s], s, SlotSeconds)
				elapsed += st.Stats.Elapsed.Seconds()
				f.Add(v.name+"-"+tc.name, elapsed, st.Stats.BestEnergy)
				cur = st.Topology
			}
			o.Close()
		}
	}
	return f, nil
}

// temperingReplicas sizes the tempered variant's ladder to the evaluation
// parallelism: one rung per worker up to 4, at least 2 (a single-rung
// "ladder" would measure nothing).
func temperingReplicas(sc Scale) int {
	r := sc.OwanWorkers
	if r > 4 {
		r = 4
	}
	if r < 2 {
		r = 2
	}
	return r
}

// Validation reproduces the §5.1 check: flow-based simulation versus the
// chunk-level emulated testbed on Internet2, reporting the divergence of
// the average completion time (the paper reports <10%).
func Validation(sc Scale) (*figdata.Figure, error) {
	net, err := BuildTopology(Internet2, sc, 1)
	if err != nil {
		return nil, err
	}
	reqs, err := Workload(Internet2, net, sc, 1, 0, 41)
	if err != nil {
		return nil, err
	}
	mkSched := func() (sim.Scheduler, error) {
		return Scheduler("maxflow", net, sc, false, 1, 0)
	}
	s1, err := mkSched()
	if err != nil {
		return nil, err
	}
	simRes, err := sim.Run(sim.Config{
		Net: net, Initial: topology.InitialTopology(net), Scheduler: s1,
		Requests: reqs, SlotSeconds: SlotSeconds, MaxSlots: 50 * sc.HorizonSlots,
	})
	if err != nil {
		return nil, err
	}
	s2, err := mkSched()
	if err != nil {
		return nil, err
	}
	emuRes, err := emu.Run(emu.Config{Sim: sim.Config{
		Net: net, Initial: topology.InitialTopology(net), Scheduler: s2,
		Requests: reqs, SlotSeconds: SlotSeconds, MaxSlots: 50 * sc.HorizonSlots,
	}})
	if err != nil {
		return nil, err
	}
	f := figdata.NewFigure("validation", "Simulator vs emulated testbed", "metric", "seconds")
	sAvg := metrics.Mean(metrics.CompletionTimes(simRes.Transfers, SlotSeconds))
	eAvg := metrics.Mean(metrics.CompletionTimes(emuRes.Transfers, SlotSeconds))
	f.Add("simulator", 0, sAvg)
	f.Add("emulated-testbed", 0, eAvg)
	if sAvg > 0 {
		f.Add("divergence-pct", 0, 100*math.Abs(sAvg-eAvg)/sAvg)
	}
	return f, nil
}
