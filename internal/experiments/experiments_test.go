package experiments

import (
	"math"
	"testing"

	"owan/internal/metrics"
)

func quick() Scale {
	sc := QuickScale()
	sc.HorizonSlots = 4
	sc.OwanIterations = 120
	return sc
}

func TestBuildTopologies(t *testing.T) {
	sc := quick()
	for _, k := range append([]TopoKind{ISP200}, AllTopos...) {
		net, err := BuildTopology(k, sc, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Validate(); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
	if _, err := BuildTopology("nope", sc, 1); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestRunEveryApproach(t *testing.T) {
	sc := quick()
	for _, ap := range ApproachNames {
		sigma := 0.0
		if ap == "tempus" || ap == "amoeba" {
			sigma = 10
		}
		res, err := Run(RunSpec{Topo: Internet2, Approach: ap, Load: 0.5, DeadlineFactor: sigma, Seed: 1, Scale: sc})
		if err != nil {
			t.Fatalf("%s: %v", ap, err)
		}
		done := len(res.Completed())
		if done == 0 {
			t.Errorf("%s: no transfers completed", ap)
		}
	}
	if _, err := Run(RunSpec{Topo: Internet2, Approach: "nope", Load: 1, Scale: sc}); err == nil {
		t.Error("unknown approach accepted")
	}
}

func TestDemandScalesWithUtilization(t *testing.T) {
	sc := quick()
	net, _ := BuildTopology(Internet2, sc, 1)
	d1 := demandGbits(net, sc)
	sc.Utilization = 1.2
	if d2 := demandGbits(net, sc); d2 <= d1 {
		t.Error("demand should grow with utilization")
	}
}

func TestFig7QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	sc := quick()
	figs, err := Fig7(Internet2, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("got %d figures", len(figs))
	}
	fa := figs[0]
	// Every load has a factor for every baseline, and factors are positive.
	for _, load := range Loads {
		for _, base := range fig7Baselines {
			y, ok := fa.Get("vs-"+base+"-avg", load)
			if !ok || y <= 0 || math.IsNaN(y) {
				t.Errorf("missing/invalid factor for %s at load %v: %v", base, load, y)
			}
		}
	}
	// The paper's headline shape: Owan at least matches the baselines on
	// average across the sweep (factor >= ~1).
	sum, n := 0.0, 0
	for _, load := range Loads {
		for _, base := range fig7Baselines {
			if y, ok := fa.Get("vs-"+base+"-avg", load); ok && !math.IsInf(y, 1) {
				sum += y
				n++
			}
		}
	}
	if n == 0 || sum/float64(n) < 1.0 {
		t.Errorf("mean factor of improvement = %v over %d cells, want >= 1", sum/float64(n), n)
	}
}

func TestFig10dBudgetsImprove(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	sc := quick()
	f, err := Fig10d(sc)
	if err != nil {
		t.Fatal(err)
	}
	// The 5.12 s budget should be no worse than the 20 ms budget (Fig 10d:
	// quality converges with running time).
	lo, ok1 := f.Get("owan", 0.02)
	hi, ok2 := f.Get("owan", 5.12)
	if !ok1 || !ok2 {
		t.Fatal("missing budget points")
	}
	if hi > lo*1.15 {
		t.Errorf("5.12s budget avg %v much worse than 20ms budget %v", hi, lo)
	}
}

func TestValidationWithin10Pct(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	f, err := Validation(quick())
	if err != nil {
		t.Fatal(err)
	}
	d, ok := f.Get("divergence-pct", 0)
	if !ok {
		t.Fatal("no divergence recorded")
	}
	if d > 10 {
		t.Errorf("sim/emu divergence %.1f%% exceeds 10%%", d)
	}
}

func TestFig10bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	f, err := Fig10b(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Consistent update min throughput >= one-shot min throughput.
	minOf := func(series string) float64 {
		m := math.Inf(1)
		for _, x := range f.Xs() {
			if y, ok := f.Get(series, x); ok && y < m {
				m = y
			}
		}
		return m
	}
	cons, oneShot := minOf("consistent"), minOf("one-shot")
	if math.IsInf(cons, 1) || math.IsInf(oneShot, 1) {
		t.Fatal("missing series")
	}
	if cons < oneShot {
		t.Errorf("consistent min %v below one-shot min %v", cons, oneShot)
	}
}

func TestCollectDeadlineMetrics(t *testing.T) {
	sc := quick()
	st, err := collect(Internet2, "owan", 1, 10, sc)
	if err != nil {
		t.Fatal(err)
	}
	if st.deadline.TransfersMetPct < 0 || st.deadline.TransfersMetPct > 100 {
		t.Errorf("met pct out of range: %v", st.deadline.TransfersMetPct)
	}
	if st.deadline.BytesMetPct < 0 || st.deadline.BytesMetPct > 100+1e-9 {
		t.Errorf("bytes pct out of range: %v", st.deadline.BytesMetPct)
	}
}

func TestMetricsSanity(t *testing.T) {
	sc := quick()
	res, err := Run(RunSpec{Topo: ISP, Approach: "rate-routing", Load: 1, Seed: 3, Scale: sc})
	if err != nil {
		t.Fatal(err)
	}
	ct := metrics.CompletionTimes(res.Transfers, SlotSeconds)
	for _, x := range ct {
		if x <= 0 {
			t.Errorf("nonpositive completion time %v", x)
		}
	}
}
