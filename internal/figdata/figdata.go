// Package figdata renders experiment results as the rows and series the
// paper's figures plot: one column of x values and one column per series,
// in an aligned, gnuplot-friendly text format used by cmd/owan-bench and
// EXPERIMENTS.md.
package figdata

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one line of a figure.
type Series struct {
	Name string
	// Points maps x -> y. Using a map keeps adding sweep results simple;
	// rendering sorts by x.
	Points map[float64]float64
}

// Figure is one table/figure of the paper.
type Figure struct {
	ID     string // e.g. "fig7a"
	Title  string
	XLabel string
	YLabel string
	series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(id, title, xlabel, ylabel string) *Figure {
	return &Figure{ID: id, Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add records one point of a named series.
func (f *Figure) Add(series string, x, y float64) {
	for _, s := range f.series {
		if s.Name == series {
			s.Points[x] = y
			return
		}
	}
	f.series = append(f.series, &Series{Name: series, Points: map[float64]float64{x: y}})
}

// SeriesNames returns the series in insertion order.
func (f *Figure) SeriesNames() []string {
	out := make([]string, len(f.series))
	for i, s := range f.series {
		out[i] = s.Name
	}
	return out
}

// Get returns the y value of a series at x.
func (f *Figure) Get(series string, x float64) (float64, bool) {
	for _, s := range f.series {
		if s.Name == series {
			y, ok := s.Points[x]
			return y, ok
		}
	}
	return 0, false
}

// Xs returns the sorted union of x values across series.
func (f *Figure) Xs() []float64 {
	set := map[float64]bool{}
	for _, s := range f.series {
		for x := range s.Points {
			set[x] = true
		}
	}
	xs := make([]float64, 0, len(set))
	for x := range set {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	return xs
}

// Render produces the aligned text table.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "# x = %s, y = %s\n", f.XLabel, f.YLabel)
	cols := append([]string{f.XLabel}, f.SeriesNames()...)
	widths := make([]int, len(cols))
	rows := [][]string{cols}
	for _, x := range f.Xs() {
		row := []string{trimFloat(x)}
		for _, s := range f.series {
			if y, ok := s.Points[x]; ok {
				row = append(row, trimFloat(y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// trimFloat formats a float compactly (integers without decimals, other
// values with up to three significant decimals).
func trimFloat(x float64) string {
	if math.IsInf(x, 1) {
		return "inf"
	}
	if x == math.Trunc(x) && math.Abs(x) < 1e9 {
		return fmt.Sprintf("%d", int64(x))
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", x), "0"), ".")
}
