package figdata

import (
	"math"
	"strings"
	"testing"
)

func TestAddAndGet(t *testing.T) {
	f := NewFigure("fig7a", "Improvement", "load", "factor")
	f.Add("maxflow", 0.5, 2.1)
	f.Add("maxflow", 1.0, 3.4)
	f.Add("swan", 0.5, 2.5)
	if y, ok := f.Get("maxflow", 1.0); !ok || y != 3.4 {
		t.Errorf("get = %v %v", y, ok)
	}
	if _, ok := f.Get("nope", 1.0); ok {
		t.Error("missing series found")
	}
	if names := f.SeriesNames(); len(names) != 2 || names[0] != "maxflow" {
		t.Errorf("names = %v", names)
	}
}

func TestAddOverwrites(t *testing.T) {
	f := NewFigure("x", "t", "x", "y")
	f.Add("s", 1, 10)
	f.Add("s", 1, 20)
	if y, _ := f.Get("s", 1); y != 20 {
		t.Errorf("y = %v, want 20 (overwrite)", y)
	}
}

func TestXsSorted(t *testing.T) {
	f := NewFigure("x", "t", "x", "y")
	f.Add("a", 2, 1)
	f.Add("a", 0.5, 1)
	f.Add("b", 1, 1)
	xs := f.Xs()
	if len(xs) != 3 || xs[0] != 0.5 || xs[2] != 2 {
		t.Errorf("xs = %v", xs)
	}
}

func TestRender(t *testing.T) {
	f := NewFigure("fig8a", "Makespan", "load", "factor")
	f.Add("maxflow", 0.5, 1.25)
	f.Add("maxflow", 1, 2)
	f.Add("swan", 1, 1.5)
	out := f.Render()
	if !strings.Contains(out, "# fig8a: Makespan") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "maxflow") || !strings.Contains(out, "swan") {
		t.Errorf("missing series:\n%s", out)
	}
	// The missing swan@0.5 point renders as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+1+2 { // 2 comments, header, 2 data rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTrimFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{1, "1"}, {1.5, "1.5"}, {1.25, "1.25"}, {1.3333333, "1.333"},
		{math.Inf(1), "inf"}, {0, "0"},
	} {
		if got := trimFloat(tc.in); got != tc.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
