package store

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	if _, ok := s.Get("a"); ok {
		t.Error("empty store returned a value")
	}
	s.Put("a", []byte("1"))
	v, ok := s.Get("a")
	if !ok || string(v) != "1" {
		t.Errorf("got %q %v", v, ok)
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Error("deleted key still present")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Put("a", []byte("abc"))
	v, _ := s.Get("a")
	v[0] = 'z'
	v2, _ := s.Get("a")
	if string(v2) != "abc" {
		t.Error("mutation leaked into store")
	}
}

func TestKeysPrefix(t *testing.T) {
	s := New()
	s.Put("transfer/1", nil)
	s.Put("transfer/2", nil)
	s.Put("meta/slot", nil)
	ks := s.Keys("transfer/")
	if len(ks) != 2 {
		t.Errorf("keys = %v", ks)
	}
}

func TestPutBatch(t *testing.T) {
	s := New()
	s.PutBatch(nil) // no-op, no log entry
	if s.Seq() != 0 {
		t.Errorf("empty batch logged: seq = %d", s.Seq())
	}
	src := []byte("abc")
	s.PutBatch([]KV{
		{Key: "transfer/s1/1", Value: src},
		{Key: "transfer/s1/2", Value: []byte("def")},
		{Key: "meta/slot", Value: []byte("7")},
	})
	if s.Seq() != 3 {
		t.Errorf("seq = %d, want 3", s.Seq())
	}
	// Batch values are copied, not aliased.
	src[0] = 'z'
	if v, _ := s.Get("transfer/s1/1"); string(v) != "abc" {
		t.Errorf("batch aliased caller's buffer: %q", v)
	}
	// Batched entries replicate like individual Puts.
	r := New()
	if err := Sync(s, r); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Get("transfer/s1/2"); string(v) != "def" {
		t.Errorf("replica missing batched key: %q", v)
	}
}

func TestSnapshotPrefix(t *testing.T) {
	s := New()
	s.Put("transfer/s1/1", []byte("a"))
	s.Put("transfer/s1/2", []byte("b"))
	s.Put("transfer/s2/1", []byte("c"))
	s.Put("meta/slot", []byte("0"))
	snap := s.SnapshotPrefix("transfer/s1/")
	if len(snap) != 2 {
		t.Fatalf("snapshot = %v, want 2 keys", snap)
	}
	if string(snap["transfer/s1/1"]) != "a" || string(snap["transfer/s1/2"]) != "b" {
		t.Errorf("snapshot = %v", snap)
	}
	// The snapshot is a copy: later writes don't leak in, and mutating
	// the returned values doesn't corrupt the store.
	s.Put("transfer/s1/3", []byte("d"))
	if len(snap) != 2 {
		t.Error("snapshot observed a later write")
	}
	snap["transfer/s1/1"][0] = 'z'
	if v, _ := s.Get("transfer/s1/1"); string(v) != "a" {
		t.Errorf("mutation leaked into store: %q", v)
	}
	if got := s.SnapshotPrefix("nope/"); len(got) != 0 {
		t.Errorf("snapshot of absent prefix = %v", got)
	}
}

func TestReplication(t *testing.T) {
	p := New()
	r := New()
	p.Put("a", []byte("1"))
	p.Put("b", []byte("2"))
	p.Delete("a")
	if err := Sync(p, r); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("a"); ok {
		t.Error("replica has deleted key")
	}
	if v, _ := r.Get("b"); string(v) != "2" {
		t.Error("replica missing key")
	}
	// Incremental sync.
	p.Put("c", []byte("3"))
	if err := Sync(p, r); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Get("c"); string(v) != "3" {
		t.Error("incremental sync failed")
	}
	if r.Seq() != p.Seq() {
		t.Errorf("seq mismatch %d != %d", r.Seq(), p.Seq())
	}
}

func TestApplyRejectsGap(t *testing.T) {
	r := New()
	if err := r.Apply([]Entry{{Seq: 5, Key: "x", Value: []byte("1")}}); err == nil {
		t.Error("gap accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				key := fmt.Sprintf("k%d", i)
				s.Put(key, []byte{byte(j)})
				s.Get(key)
				s.Keys("k")
			}
		}(i)
	}
	wg.Wait()
	if s.Seq() != 800 {
		t.Errorf("seq = %d, want 800", s.Seq())
	}
}
