package store

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	if _, ok := s.Get("a"); ok {
		t.Error("empty store returned a value")
	}
	s.Put("a", []byte("1"))
	v, ok := s.Get("a")
	if !ok || string(v) != "1" {
		t.Errorf("got %q %v", v, ok)
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Error("deleted key still present")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Put("a", []byte("abc"))
	v, _ := s.Get("a")
	v[0] = 'z'
	v2, _ := s.Get("a")
	if string(v2) != "abc" {
		t.Error("mutation leaked into store")
	}
}

func TestKeysPrefix(t *testing.T) {
	s := New()
	s.Put("transfer/1", nil)
	s.Put("transfer/2", nil)
	s.Put("meta/slot", nil)
	ks := s.Keys("transfer/")
	if len(ks) != 2 {
		t.Errorf("keys = %v", ks)
	}
}

func TestReplication(t *testing.T) {
	p := New()
	r := New()
	p.Put("a", []byte("1"))
	p.Put("b", []byte("2"))
	p.Delete("a")
	if err := Sync(p, r); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("a"); ok {
		t.Error("replica has deleted key")
	}
	if v, _ := r.Get("b"); string(v) != "2" {
		t.Error("replica missing key")
	}
	// Incremental sync.
	p.Put("c", []byte("3"))
	if err := Sync(p, r); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Get("c"); string(v) != "3" {
		t.Error("incremental sync failed")
	}
	if r.Seq() != p.Seq() {
		t.Errorf("seq mismatch %d != %d", r.Seq(), p.Seq())
	}
}

func TestApplyRejectsGap(t *testing.T) {
	r := New()
	if err := r.Apply([]Entry{{Seq: 5, Key: "x", Value: []byte("1")}}); err == nil {
		t.Error("gap accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				key := fmt.Sprintf("k%d", i)
				s.Put(key, []byte{byte(j)})
				s.Get(key)
				s.Keys("k")
			}
		}(i)
	}
	wg.Wait()
	if s.Seq() != 800 {
		t.Errorf("seq = %d, want 800", s.Seq())
	}
}
