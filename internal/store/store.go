// Package store provides the small replicated key-value store the Owan
// controller uses for failover (§3.4): because the scheduling algorithm is
// stateless, persisting only the physical network and the set of transfers
// lets a fresh controller instance resume at the next time slot.
//
// The store keeps an append-only log of mutations; replicas apply the log
// through Sync. There is no consensus protocol — the paper assumes "a
// reliable distributed storage", so the store models a primary plus warm
// replicas that can be promoted.
package store

import (
	"fmt"
	"sync"
)

// Entry is one mutation in the log.
type Entry struct {
	Seq   uint64
	Key   string
	Value []byte // nil means delete
}

// Store is a thread-safe KV store with an append-only replication log.
type Store struct {
	mu   sync.RWMutex
	data map[string][]byte
	log  []Entry
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Put stores a copy of value under key.
func (s *Store) Put(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := append([]byte(nil), value...)
	s.data[key] = v
	s.log = append(s.log, Entry{Seq: uint64(len(s.log) + 1), Key: key, Value: v})
}

// KV is one key/value pair for batch writes.
type KV struct {
	Key   string
	Value []byte
}

// PutBatch stores every pair under a single lock acquisition and appends
// them to the replication log in order. The controller's admission
// pipeline uses this to make a whole batch of submissions durable with
// one store round trip; an empty batch is a no-op.
func (s *Store) PutBatch(kvs []KV) {
	if len(kvs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, kv := range kvs {
		v := append([]byte(nil), kv.Value...)
		s.data[kv.Key] = v
		s.log = append(s.log, Entry{Seq: uint64(len(s.log) + 1), Key: kv.Key, Value: v})
	}
}

// SnapshotPrefix returns a copy of every key/value with the given prefix
// under one lock acquisition — a consistent point-in-time view. The
// controller's snapshot resync reads a site's transfer records this way,
// so the snapshot a client converges on is exactly the durable state a
// failover successor would recover.
func (s *Store) SnapshotPrefix(prefix string) map[string][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := map[string][]byte{}
	for k, v := range s.data {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out[k] = append([]byte(nil), v...)
		}
	}
	return out
}

// Delete removes a key (a no-op if absent, still logged for replicas).
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
	s.log = append(s.log, Entry{Seq: uint64(len(s.log) + 1), Key: key, Value: nil})
}

// Get returns a copy of the value and whether it exists.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Keys returns all keys with the given prefix.
func (s *Store) Keys(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.data {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	return out
}

// Seq returns the sequence number of the latest log entry.
func (s *Store) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(len(s.log))
}

// EntriesSince returns log entries with Seq > after.
func (s *Store) EntriesSince(after uint64) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if after > uint64(len(s.log)) {
		return nil
	}
	return append([]Entry(nil), s.log[after:]...)
}

// Apply replays entries onto the store (replica side). Entries must be
// contiguous with the replica's current sequence.
func (s *Store) Apply(entries []Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		if e.Seq != uint64(len(s.log))+1 {
			return fmt.Errorf("store: gap in log: have %d, got entry %d", len(s.log), e.Seq)
		}
		if e.Value == nil {
			delete(s.data, e.Key)
		} else {
			s.data[e.Key] = append([]byte(nil), e.Value...)
		}
		s.log = append(s.log, e)
	}
	return nil
}

// Sync brings a replica up to date with the primary.
func Sync(primary, replica *Store) error {
	return replica.Apply(primary.EntriesSince(replica.Seq()))
}
