// Package te implements the network-layer-only traffic-engineering
// baselines the paper compares Owan against (§5.1): MaxFlow, MaxMinFract,
// SWAN, Tempus and Amoeba, plus the "rate only" and "rate + routing"
// ablations of Figure 10(c). All of them treat the network-layer topology
// as fixed for the slot; only Owan (internal/core) reconfigures it.
package te

import (
	"owan/internal/topology"
	"owan/internal/transfer"
)

// Input is everything an approach sees for one scheduling slot.
type Input struct {
	// Topo is the (fixed) network-layer topology for the slot.
	Topo *topology.LinkSet
	// Theta is the capacity of one circuit in Gbps.
	Theta float64
	// Active are the live transfers (arrived, not completed).
	Active []*transfer.Transfer
	// Slot is the current slot index; SlotSeconds its length.
	Slot        int
	SlotSeconds float64
}

// Approach computes the per-transfer path/rate allocation for one slot.
type Approach interface {
	Name() string
	Allocate(in *Input) map[int][]transfer.PathRate
}

// demandRate is the maximum useful rate for a transfer this slot.
func demandRate(t *transfer.Transfer, slotSeconds float64) float64 {
	return t.Remaining / slotSeconds
}

// kPaths is how many candidate paths the LP-based baselines consider per
// transfer (the usual tunnel count in SWAN-style systems).
const kPaths = 3

// candidatePaths returns up to kPaths loopless shortest paths (by hop
// count) for each active transfer on the topology. The result is indexed
// like in.Active.
func candidatePaths(in *Input) [][][]int {
	g := in.Topo.Graph()
	type pairKey struct{ s, d int }
	cache := map[pairKey][][]int{}
	out := make([][][]int, len(in.Active))
	for i, t := range in.Active {
		k := pairKey{t.Src, t.Dst}
		if ps, ok := cache[k]; ok {
			out[i] = ps
			continue
		}
		var ps [][]int
		for _, p := range g.KShortestPaths(t.Src, t.Dst, kPaths) {
			ps = append(ps, p.Vertices())
		}
		cache[k] = ps
		out[i] = ps
	}
	return out
}

// linkKey canonicalizes an undirected link.
func linkKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// pathLinks yields the canonical links of a path.
func pathLinks(path []int) [][2]int {
	out := make([][2]int, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		out = append(out, linkKey(path[i], path[i+1]))
	}
	return out
}

// varIndex assigns LP variable indices to (transfer, path) pairs.
type varIndex struct {
	// vars[i][j] is the LP variable of transfer i's j-th path.
	vars  [][]int
	count int
	// byLink collects, per link, every variable whose path crosses it.
	byLink map[[2]int][]int
}

func buildVarIndex(paths [][][]int) *varIndex {
	vi := &varIndex{byLink: map[[2]int][]int{}}
	for i := range paths {
		row := make([]int, len(paths[i]))
		for j, p := range paths[i] {
			row[j] = vi.count
			for _, lk := range pathLinks(p) {
				vi.byLink[lk] = append(vi.byLink[lk], vi.count)
			}
			vi.count++
		}
		vi.vars = append(vi.vars, row)
	}
	return vi
}

// extract converts an LP solution vector into per-transfer path rates,
// dropping numerically-zero entries.
func extract(in *Input, paths [][][]int, vi *varIndex, x []float64) map[int][]transfer.PathRate {
	const minRate = 1e-6
	out := make(map[int][]transfer.PathRate, len(in.Active))
	for i, t := range in.Active {
		for j, p := range paths[i] {
			if r := x[vi.vars[i][j]]; r > minRate {
				out[t.ID] = append(out[t.ID], transfer.PathRate{Path: p, Rate: r})
			}
		}
	}
	return out
}

// shortestPathOf returns the single shortest path for each transfer.
func shortestPathOf(in *Input) [][]int {
	g := in.Topo.Graph()
	out := make([][]int, len(in.Active))
	type pairKey struct{ s, d int }
	cache := map[pairKey][]int{}
	for i, t := range in.Active {
		k := pairKey{t.Src, t.Dst}
		if p, ok := cache[k]; ok {
			out[i] = p
			continue
		}
		if sp := g.ShortestPath(t.Src, t.Dst); sp != nil {
			out[i] = sp.Vertices()
		}
		cache[k] = out[i]
	}
	return out
}
