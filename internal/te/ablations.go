package te

import (
	"owan/internal/alloc"
	"owan/internal/transfer"
)

// RateOnly is the weakest ablation of Figure 10(c): the topology and the
// routing are fixed (single shortest path per transfer); only sending rates
// are controlled. Rates are assigned by sequential water-filling in SJF
// order on each transfer's fixed path.
type RateOnly struct {
	Policy transfer.Policy
}

// Name implements Approach.
func (RateOnly) Name() string { return "rate-only" }

// Allocate implements Approach.
func (r RateOnly) Allocate(in *Input) map[int][]transfer.PathRate {
	ordered := append([]*transfer.Transfer(nil), in.Active...)
	transfer.Order(ordered, r.Policy, in.Slot, 0)
	sp := shortestPathOfOrdered(in, ordered)
	residual := map[[2]int]float64{}
	for _, l := range in.Topo.Links() {
		residual[linkKey(l.U, l.V)] = float64(l.Count) * in.Theta
	}
	out := make(map[int][]transfer.PathRate, len(ordered))
	for i, t := range ordered {
		p := sp[i]
		if p == nil {
			continue
		}
		rate := demandRate(t, in.SlotSeconds)
		for _, lk := range pathLinks(p) {
			if f := residual[lk]; f < rate {
				rate = f
			}
		}
		if rate <= 1e-9 {
			continue
		}
		for _, lk := range pathLinks(p) {
			residual[lk] -= rate
		}
		out[t.ID] = []transfer.PathRate{{Path: p, Rate: rate}}
	}
	return out
}

// shortestPathOfOrdered computes single shortest paths for an explicit
// transfer ordering.
func shortestPathOfOrdered(in *Input, ordered []*transfer.Transfer) [][]int {
	sub := &Input{Topo: in.Topo, Theta: in.Theta, Active: ordered, Slot: in.Slot, SlotSeconds: in.SlotSeconds}
	return shortestPathOf(sub)
}

// RateRouting is the middle ablation of Figure 10(c): routing and rates are
// jointly optimized with the greedy multi-path assignment of Algorithm 3
// (lines 15–25), but the topology stays fixed.
type RateRouting struct {
	Policy transfer.Policy
	// StarveSlots is the starvation guard t̂ (0 disables).
	StarveSlots int
}

// Name implements Approach.
func (RateRouting) Name() string { return "rate-routing" }

// Allocate implements Approach.
func (rr RateRouting) Allocate(in *Input) map[int][]transfer.PathRate {
	ordered := append([]*transfer.Transfer(nil), in.Active...)
	transfer.Order(ordered, rr.Policy, in.Slot, rr.StarveSlots)
	res := alloc.Greedy(in.Topo, in.Theta, alloc.DemandsFromTransfers(ordered, in.SlotSeconds))
	return res.Alloc
}
