package te

import (
	"sort"

	"owan/internal/lp"
	"owan/internal/transfer"
)

// Tempus approximates the Tempus calendaring objective online: every
// deadline transfer's demand is spread evenly over the slots remaining
// until its deadline, then the slot LP first maximizes the minimum served
// fraction of those per-slot targets and second maximizes the total bytes
// delivered. Transfers without deadlines are treated as having a distant
// horizon.
type Tempus struct {
	// HorizonSlots is the pacing horizon for transfers without deadlines.
	HorizonSlots int
}

// Name implements Approach.
func (Tempus) Name() string { return "tempus" }

// target returns the Tempus per-slot rate target for a transfer.
func (tp Tempus) target(t *transfer.Transfer, in *Input) float64 {
	horizon := tp.HorizonSlots
	if horizon <= 0 {
		horizon = 12
	}
	slots := horizon
	if t.Deadline != transfer.NoDeadline {
		slots = t.Deadline - in.Slot + 1
		if slots < 1 {
			slots = 1
		}
	}
	return t.Remaining / float64(slots) / in.SlotSeconds
}

// Allocate implements Approach.
func (tp Tempus) Allocate(in *Input) map[int][]transfer.PathRate {
	paths := candidatePaths(in)
	vi := buildVarIndex(paths)
	if vi.count == 0 {
		return map[int][]transfer.PathRate{}
	}
	// Stage 1: maximize min fraction of the per-slot targets.
	p1 := lp.NewProblem(vi.count + 1)
	tVar := vi.count
	p1.SetObjective(tVar, 1)
	addCapacityConstraints(p1, in, vi)
	addDemandCaps(p1, in, paths, vi, 1)
	for i, t := range in.Active {
		if len(paths[i]) == 0 {
			continue
		}
		target := tp.target(t, in)
		coeffs := map[int]float64{tVar: -target}
		for _, v := range vi.vars[i] {
			coeffs[v] = 1
		}
		p1.AddConstraint(coeffs, lp.GE, 0)
	}
	p1.AddConstraint(map[int]float64{tVar: 1}, lp.LE, 1)
	sol1, err := p1.Solve()
	if err != nil || sol1.Status != lp.Optimal {
		return map[int][]transfer.PathRate{}
	}
	tStar := sol1.X[tVar]
	// Stage 2: maximize total bytes subject to the achieved fractions.
	p2 := lp.NewProblem(vi.count)
	for v := 0; v < vi.count; v++ {
		p2.SetObjective(v, 1)
	}
	addCapacityConstraints(p2, in, vi)
	addDemandCaps(p2, in, paths, vi, 1)
	for i, t := range in.Active {
		if len(paths[i]) == 0 {
			continue
		}
		target := tp.target(t, in)
		coeffs := map[int]float64{}
		for _, v := range vi.vars[i] {
			coeffs[v] = 1
		}
		p2.AddConstraint(coeffs, lp.GE, 0.999*tStar*target)
	}
	sol2, err := p2.Solve()
	if err != nil || sol2.Status != lp.Optimal {
		return extract(in, paths, vi, sol1.X)
	}
	return extract(in, paths, vi, sol2.X)
}

// Amoeba is a stateful deadline-aware approach: it admits transfers in EDF
// order by reserving capacity on candidate paths in the earliest available
// slots before the deadline (a time-expanded greedy, following Amoeba's
// graph-algorithm design). Reserved rates become the slot allocation;
// leftover capacity is shared among all transfers work-conservingly.
type Amoeba struct {
	// ledger[slot][link] = reserved Gbps.
	ledger map[int]map[[2]int]float64
	// admitted maps transfer ID -> per-slot reserved rates on paths.
	admitted map[int]map[int][]transfer.PathRate
	rejected map[int]bool
}

// Name implements Approach.
func (*Amoeba) Name() string { return "amoeba" }

// Rejected reports whether a transfer failed admission (its deadline was
// deemed unmeetable on arrival).
func (a *Amoeba) Rejected(id int) bool { return a.rejected[id] }

func (a *Amoeba) init() {
	if a.ledger == nil {
		a.ledger = map[int]map[[2]int]float64{}
		a.admitted = map[int]map[int][]transfer.PathRate{}
		a.rejected = map[int]bool{}
	}
}

// reserve books rate on a path for a slot.
func (a *Amoeba) reserve(slot int, path []int, rate float64) {
	m := a.ledger[slot]
	if m == nil {
		m = map[[2]int]float64{}
		a.ledger[slot] = m
	}
	for _, lk := range pathLinks(path) {
		m[lk] += rate
	}
}

// free returns the free capacity of a link in a slot.
func (a *Amoeba) free(in *Input, slot int, lk [2]int) float64 {
	capTotal := float64(in.Topo.Get(lk[0], lk[1])) * in.Theta
	return capTotal - a.ledger[slot][lk]
}

// Allocate implements Approach.
func (a *Amoeba) Allocate(in *Input) map[int][]transfer.PathRate {
	a.init()
	paths := candidatePaths(in)
	// Admission for transfers seen for the first time, in EDF order.
	order := make([]int, 0, len(in.Active))
	for i := range in.Active {
		t := in.Active[i]
		if _, seen := a.admitted[t.ID]; !seen && !a.rejected[t.ID] {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(x, y int) bool {
		dx, dy := in.Active[order[x]].Deadline, in.Active[order[y]].Deadline
		if dx == transfer.NoDeadline {
			dx = 1 << 30
		}
		if dy == transfer.NoDeadline {
			dy = 1 << 30
		}
		if dx != dy {
			return dx < dy
		}
		return in.Active[order[x]].ID < in.Active[order[y]].ID
	})
	for _, i := range order {
		t := in.Active[i]
		a.admit(in, t, paths[i])
	}
	// The slot allocation is this slot's reservations...
	out := make(map[int][]transfer.PathRate, len(in.Active))
	used := map[[2]int]float64{}
	for _, t := range in.Active {
		for _, pr := range a.admitted[t.ID][in.Slot] {
			out[t.ID] = append(out[t.ID], pr)
			for _, lk := range pathLinks(pr.Path) {
				used[lk] += pr.Rate
			}
		}
	}
	// ...plus work-conserving filling of leftover capacity (Amoeba does not
	// idle links; best-effort traffic including rejected transfers shares
	// the slack) in EDF order on shortest candidate paths.
	for i, t := range in.Active {
		need := demandRate(t, in.SlotSeconds)
		for _, pr := range out[t.ID] {
			need -= pr.Rate
		}
		for _, p := range paths[i] {
			if need <= 1e-9 {
				break
			}
			avail := need
			for _, lk := range pathLinks(p) {
				if f := a.free(in, in.Slot, lk) - used[lk]; f < avail {
					avail = f
				}
			}
			if avail <= 1e-9 {
				continue
			}
			out[t.ID] = append(out[t.ID], transfer.PathRate{Path: p, Rate: avail})
			for _, lk := range pathLinks(p) {
				used[lk] += avail
			}
			need -= avail
		}
	}
	return out
}

// admit tries to reserve enough capacity between now and the deadline to
// finish the transfer; on failure nothing is reserved and the transfer is
// marked rejected (paper: Amoeba only commits to deadlines it can keep).
func (a *Amoeba) admit(in *Input, t *transfer.Transfer, ps [][]int) {
	if len(ps) == 0 {
		a.rejected[t.ID] = true
		return
	}
	lastSlot := t.Deadline
	if lastSlot == transfer.NoDeadline {
		lastSlot = in.Slot + 64 // generous horizon for best-effort traffic
	}
	remaining := t.Remaining // Gbits
	type booking struct {
		slot int
		path []int
		rate float64
	}
	var plan []booking
	for slot := in.Slot; slot <= lastSlot && remaining > 1e-9; slot++ {
		for _, p := range ps {
			if remaining <= 1e-9 {
				break
			}
			avail := remaining / in.SlotSeconds
			for _, lk := range pathLinks(p) {
				if f := a.free(in, slot, lk); f < avail {
					avail = f
				}
			}
			// Account for other bookings in this tentative plan.
			for _, b := range plan {
				if b.slot != slot {
					continue
				}
				for _, lk := range pathLinks(b.path) {
					for _, lk2 := range pathLinks(p) {
						if lk == lk2 && avail > 0 {
							// Conservative: subtract overlapping booking.
							avail -= b.rate
						}
					}
				}
			}
			if avail <= 1e-9 {
				continue
			}
			plan = append(plan, booking{slot: slot, path: p, rate: avail})
			remaining -= avail * in.SlotSeconds
		}
	}
	if t.Deadline != transfer.NoDeadline && remaining > 1e-9 {
		a.rejected[t.ID] = true
		return
	}
	perSlot := map[int][]transfer.PathRate{}
	for _, b := range plan {
		a.reserve(b.slot, b.path, b.rate)
		perSlot[b.slot] = append(perSlot[b.slot], transfer.PathRate{Path: b.path, Rate: b.rate})
	}
	a.admitted[t.ID] = perSlot
}
