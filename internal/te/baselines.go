package te

import (
	"owan/internal/lp"
	"owan/internal/transfer"
)

// MaxFlow maximizes total throughput for the slot with a path-formulation
// LP: one variable per (transfer, candidate path), capacity constraints per
// link, and a demand cap per transfer.
type MaxFlow struct{}

// Name implements Approach.
func (MaxFlow) Name() string { return "maxflow" }

// Allocate implements Approach.
func (MaxFlow) Allocate(in *Input) map[int][]transfer.PathRate {
	paths := candidatePaths(in)
	vi := buildVarIndex(paths)
	if vi.count == 0 {
		return map[int][]transfer.PathRate{}
	}
	p := lp.NewProblem(vi.count)
	for v := 0; v < vi.count; v++ {
		p.SetObjective(v, 1)
	}
	addCapacityConstraints(p, in, vi)
	addDemandCaps(p, in, paths, vi, 1)
	sol, err := p.Solve()
	if err != nil || sol.Status != lp.Optimal {
		return map[int][]transfer.PathRate{}
	}
	return extract(in, paths, vi, sol.X)
}

// MaxMinFract maximizes the minimum fraction of per-slot demand served
// across transfers ("maximize the minimal fraction that a transfer can be
// served at each time slot"). It does not fill leftover capacity, which is
// exactly why the paper finds it performs worst on completion time.
type MaxMinFract struct{}

// Name implements Approach.
func (MaxMinFract) Name() string { return "maxminfract" }

// Allocate implements Approach.
func (MaxMinFract) Allocate(in *Input) map[int][]transfer.PathRate {
	paths := candidatePaths(in)
	vi := buildVarIndex(paths)
	if vi.count == 0 {
		return map[int][]transfer.PathRate{}
	}
	// Variables: path rates plus t (the min fraction) as the last variable.
	p := lp.NewProblem(vi.count + 1)
	tVar := vi.count
	p.SetObjective(tVar, 1)
	addCapacityConstraints(p, in, vi)
	addDemandCaps(p, in, paths, vi, 1)
	// For each routable transfer: sum of its rates >= t * demand.
	for i, t := range in.Active {
		if len(paths[i]) == 0 {
			continue
		}
		d := demandRate(t, in.SlotSeconds)
		coeffs := map[int]float64{tVar: -d}
		for _, v := range vi.vars[i] {
			coeffs[v] = 1
		}
		p.AddConstraint(coeffs, lp.GE, 0)
	}
	// t is a fraction.
	p.AddConstraint(map[int]float64{tVar: 1}, lp.LE, 1)
	sol, err := p.Solve()
	if err != nil || sol.Status != lp.Optimal {
		return map[int][]transfer.PathRate{}
	}
	return extract(in, paths, vi, sol.X)
}

// SWAN approximates SWAN's allocation: first find the max-min fraction t*,
// then maximize total throughput subject to every transfer retaining at
// least fraction t* of its demand. This captures SWAN's "maximize
// throughput while achieving approximate max-min fairness".
type SWAN struct{}

// Name implements Approach.
func (SWAN) Name() string { return "swan" }

// Allocate implements Approach.
func (SWAN) Allocate(in *Input) map[int][]transfer.PathRate {
	paths := candidatePaths(in)
	vi := buildVarIndex(paths)
	if vi.count == 0 {
		return map[int][]transfer.PathRate{}
	}
	// Stage 1: max-min fraction.
	p1 := lp.NewProblem(vi.count + 1)
	tVar := vi.count
	p1.SetObjective(tVar, 1)
	addCapacityConstraints(p1, in, vi)
	addDemandCaps(p1, in, paths, vi, 1)
	for i, t := range in.Active {
		if len(paths[i]) == 0 {
			continue
		}
		d := demandRate(t, in.SlotSeconds)
		coeffs := map[int]float64{tVar: -d}
		for _, v := range vi.vars[i] {
			coeffs[v] = 1
		}
		p1.AddConstraint(coeffs, lp.GE, 0)
	}
	p1.AddConstraint(map[int]float64{tVar: 1}, lp.LE, 1)
	sol1, err := p1.Solve()
	if err != nil || sol1.Status != lp.Optimal {
		return map[int][]transfer.PathRate{}
	}
	tStar := sol1.X[tVar]
	// Stage 2: maximize throughput with fractions >= t* (slightly relaxed
	// for numerical robustness).
	p2 := lp.NewProblem(vi.count)
	for v := 0; v < vi.count; v++ {
		p2.SetObjective(v, 1)
	}
	addCapacityConstraints(p2, in, vi)
	addDemandCaps(p2, in, paths, vi, 1)
	for i, t := range in.Active {
		if len(paths[i]) == 0 {
			continue
		}
		d := demandRate(t, in.SlotSeconds)
		coeffs := map[int]float64{}
		for _, v := range vi.vars[i] {
			coeffs[v] = 1
		}
		p2.AddConstraint(coeffs, lp.GE, 0.999*tStar*d)
	}
	sol2, err := p2.Solve()
	if err != nil || sol2.Status != lp.Optimal {
		return extract(in, paths, vi, sol1.X)
	}
	return extract(in, paths, vi, sol2.X)
}

// addCapacityConstraints adds one LE row per link: total rate across it is
// at most circuits × θ.
func addCapacityConstraints(p *lp.Problem, in *Input, vi *varIndex) {
	for _, l := range in.Topo.Links() {
		vars, ok := vi.byLink[linkKey(l.U, l.V)]
		if !ok {
			continue
		}
		coeffs := map[int]float64{}
		for _, v := range vars {
			coeffs[v] = 1
		}
		p.AddConstraint(coeffs, lp.LE, float64(l.Count)*in.Theta)
	}
}

// addDemandCaps bounds each transfer's total rate by scale × its demand.
func addDemandCaps(p *lp.Problem, in *Input, paths [][][]int, vi *varIndex, scale float64) {
	for i, t := range in.Active {
		if len(paths[i]) == 0 {
			continue
		}
		coeffs := map[int]float64{}
		for _, v := range vi.vars[i] {
			coeffs[v] = 1
		}
		p.AddConstraint(coeffs, lp.LE, scale*demandRate(t, in.SlotSeconds))
	}
}
