package te

import (
	"math"
	"testing"

	"owan/internal/topology"
	"owan/internal/transfer"
)

// squareInput builds the paper's 4-router example with the two transfers of
// Figure 3 (F0: R0->R1, F1: R2->R3) at 10 units each, plus any extras.
func squareInput(extra ...*transfer.Transfer) *Input {
	ls := topology.NewLinkSet(4)
	ls.Add(0, 1, 1)
	ls.Add(0, 2, 1)
	ls.Add(1, 3, 1)
	ls.Add(2, 3, 1)
	ts := []*transfer.Transfer{
		transfer.NewTransfer(transfer.Request{ID: 0, Src: 0, Dst: 1, SizeGbits: 100, Deadline: transfer.NoDeadline}),
		transfer.NewTransfer(transfer.Request{ID: 1, Src: 2, Dst: 3, SizeGbits: 100, Deadline: transfer.NoDeadline}),
	}
	ts = append(ts, extra...)
	return &Input{Topo: ls, Theta: 10, Active: ts, Slot: 0, SlotSeconds: 10}
}

func totalRate(a map[int][]transfer.PathRate) float64 {
	s := 0.0
	for _, prs := range a {
		for _, pr := range prs {
			s += pr.Rate
		}
	}
	return s
}

func rateOf(a map[int][]transfer.PathRate, id int) float64 {
	s := 0.0
	for _, pr := range a[id] {
		s += pr.Rate
	}
	return s
}

// checkCapacity asserts no link is oversubscribed.
func checkCapacity(t *testing.T, in *Input, a map[int][]transfer.PathRate) {
	t.Helper()
	use := map[[2]int]float64{}
	for _, prs := range a {
		for _, pr := range prs {
			for _, lk := range pathLinks(pr.Path) {
				use[lk] += pr.Rate
			}
		}
	}
	for lk, u := range use {
		capacity := float64(in.Topo.Get(lk[0], lk[1])) * in.Theta
		if u > capacity+1e-6 {
			t.Errorf("link %v oversubscribed: %v > %v", lk, u, capacity)
		}
	}
}

func TestMaxFlowSaturates(t *testing.T) {
	in := squareInput()
	a := MaxFlow{}.Allocate(in)
	checkCapacity(t, in, a)
	// Both transfers demand 10 Gbps (100 Gbit / 10 s); both direct links
	// free: total 20.
	if got := totalRate(a); math.Abs(got-20) > 1e-6 {
		t.Errorf("total = %v, want 20", got)
	}
}

func TestMaxFlowRespectsDemandCap(t *testing.T) {
	in := squareInput()
	in.Active = in.Active[:1] // only F0, demand rate 10
	a := MaxFlow{}.Allocate(in)
	if got := rateOf(a, 0); got > 10+1e-6 {
		t.Errorf("rate %v exceeds demand 10", got)
	}
}

func TestMaxMinFractEqualizes(t *testing.T) {
	// Two transfers share one 10-unit link: each should get fraction 1/2
	// of its 10-demand.
	ls := topology.NewLinkSet(2)
	ls.Add(0, 1, 1)
	ts := []*transfer.Transfer{
		transfer.NewTransfer(transfer.Request{ID: 0, Src: 0, Dst: 1, SizeGbits: 100, Deadline: transfer.NoDeadline}),
		transfer.NewTransfer(transfer.Request{ID: 1, Src: 0, Dst: 1, SizeGbits: 100, Deadline: transfer.NoDeadline}),
	}
	in := &Input{Topo: ls, Theta: 10, Active: ts, Slot: 0, SlotSeconds: 10}
	a := MaxMinFract{}.Allocate(in)
	checkCapacity(t, in, a)
	r0, r1 := rateOf(a, 0), rateOf(a, 1)
	if r0 < 5-1e-6 || r1 < 5-1e-6 {
		t.Errorf("rates %v/%v, want both >= 5 (max-min)", r0, r1)
	}
}

func TestSWANFairAndFilling(t *testing.T) {
	// Transfer 0 shares a link with transfer 1, but transfer 1 has an
	// alternative: SWAN should keep fairness >= max-min level and then fill.
	in := squareInput()
	a := SWAN{}.Allocate(in)
	checkCapacity(t, in, a)
	if got := totalRate(a); math.Abs(got-20) > 1e-5 {
		t.Errorf("total = %v, want 20 (filling)", got)
	}
	if r := rateOf(a, 0); r < 10-1e-5 {
		t.Errorf("F0 rate = %v, want 10", r)
	}
}

func TestSWANAtLeastMaxMin(t *testing.T) {
	ls := topology.NewLinkSet(2)
	ls.Add(0, 1, 2) // 20 capacity
	ts := []*transfer.Transfer{
		transfer.NewTransfer(transfer.Request{ID: 0, Src: 0, Dst: 1, SizeGbits: 300, Deadline: transfer.NoDeadline}), // demand 30
		transfer.NewTransfer(transfer.Request{ID: 1, Src: 0, Dst: 1, SizeGbits: 100, Deadline: transfer.NoDeadline}), // demand 10
	}
	in := &Input{Topo: ls, Theta: 10, Active: ts, Slot: 0, SlotSeconds: 10}
	a := SWAN{}.Allocate(in)
	checkCapacity(t, in, a)
	// Max-min fraction: t* where 30t + 10t <= 20 -> t = 1/2. So F0 >= 15,
	// F1 >= 5 (modulo the 0.1% stage-2 relaxation); filling raises the
	// total to 20.
	if r0, r1 := rateOf(a, 0), rateOf(a, 1); r0 < 0.998*15 || r1 < 0.998*5 || math.Abs(r0+r1-20) > 1e-5 {
		t.Errorf("rates = %v/%v, want >=15/>=5 summing to 20", r0, r1)
	}
}

func TestTempusSpreadsOverDeadline(t *testing.T) {
	ls := topology.NewLinkSet(2)
	ls.Add(0, 1, 1) // 10 Gbps
	// 400 Gbit due in 4 slots (slots 0..3) of 10 s: target 10 Gbps per slot.
	ts := []*transfer.Transfer{
		transfer.NewTransfer(transfer.Request{ID: 0, Src: 0, Dst: 1, SizeGbits: 400, Deadline: 3}),
	}
	in := &Input{Topo: ls, Theta: 10, Active: ts, Slot: 0, SlotSeconds: 10}
	a := Tempus{}.Allocate(in)
	// Tempus paces: the per-slot target is 400/4/10 = 10 Gbps, achievable.
	if r := rateOf(a, 0); math.Abs(r-10) > 1e-5 {
		t.Errorf("rate = %v, want 10", r)
	}
}

func TestTempusSecondStageFills(t *testing.T) {
	ls := topology.NewLinkSet(2)
	ls.Add(0, 1, 1)
	// Small target (spread over 10 slots => 1 Gbps) but capacity is 10:
	// stage 2 should fill up to the demand cap.
	ts := []*transfer.Transfer{
		transfer.NewTransfer(transfer.Request{ID: 0, Src: 0, Dst: 1, SizeGbits: 100, Deadline: 9}),
	}
	in := &Input{Topo: ls, Theta: 10, Active: ts, Slot: 0, SlotSeconds: 10}
	a := Tempus{}.Allocate(in)
	if r := rateOf(a, 0); math.Abs(r-10) > 1e-5 {
		t.Errorf("rate = %v, want 10 (filled to demand)", r)
	}
}

func TestAmoebaAdmitsFeasible(t *testing.T) {
	ls := topology.NewLinkSet(2)
	ls.Add(0, 1, 1) // 10 Gbps, 10 s slots -> 100 Gbit per slot
	am := &Amoeba{}
	ts := []*transfer.Transfer{
		transfer.NewTransfer(transfer.Request{ID: 0, Src: 0, Dst: 1, SizeGbits: 150, Deadline: 1}),
	}
	in := &Input{Topo: ls, Theta: 10, Active: ts, Slot: 0, SlotSeconds: 10}
	a := am.Allocate(in)
	if am.Rejected(0) {
		t.Fatal("150 Gbit over 2 slots of 100 Gbit capacity is feasible")
	}
	if r := rateOf(a, 0); r < 10-1e-6 {
		t.Errorf("slot-0 rate = %v, want 10 (full link)", r)
	}
}

func TestAmoebaRejectsInfeasible(t *testing.T) {
	ls := topology.NewLinkSet(2)
	ls.Add(0, 1, 1)
	am := &Amoeba{}
	ts := []*transfer.Transfer{
		transfer.NewTransfer(transfer.Request{ID: 0, Src: 0, Dst: 1, SizeGbits: 500, Deadline: 1}),
	}
	in := &Input{Topo: ls, Theta: 10, Active: ts, Slot: 0, SlotSeconds: 10}
	am.Allocate(in)
	if !am.Rejected(0) {
		t.Error("500 Gbit cannot fit in 2 slots of 100 Gbit: must be rejected")
	}
}

func TestAmoebaReservationsPersist(t *testing.T) {
	ls := topology.NewLinkSet(2)
	ls.Add(0, 1, 1)
	am := &Amoeba{}
	t0 := transfer.NewTransfer(transfer.Request{ID: 0, Src: 0, Dst: 1, SizeGbits: 200, Deadline: 1})
	in0 := &Input{Topo: ls, Theta: 10, Active: []*transfer.Transfer{t0}, Slot: 0, SlotSeconds: 10}
	a0 := am.Allocate(in0)
	if r := rateOf(a0, 0); r < 10-1e-6 {
		t.Fatalf("slot 0 rate = %v", r)
	}
	// A second transfer arriving at slot 1 with deadline 1 should be
	// rejected: slot 1 is fully reserved by transfer 0.
	t0.Remaining = 100
	t1 := transfer.NewTransfer(transfer.Request{ID: 1, Src: 0, Dst: 1, SizeGbits: 100, Arrival: 1, Deadline: 1})
	in1 := &Input{Topo: ls, Theta: 10, Active: []*transfer.Transfer{t0, t1}, Slot: 1, SlotSeconds: 10}
	am.Allocate(in1)
	if !am.Rejected(1) {
		t.Error("transfer 1 should be rejected: capacity reserved by transfer 0")
	}
}

func TestRateOnlySingleShortestPath(t *testing.T) {
	in := squareInput()
	a := RateOnly{Policy: transfer.SJF}.Allocate(in)
	checkCapacity(t, in, a)
	for id, prs := range a {
		if len(prs) != 1 {
			t.Errorf("transfer %d uses %d paths, want 1", id, len(prs))
		}
	}
	// Direct paths exist for both: total 20, but no multipath beyond that.
	if got := totalRate(a); math.Abs(got-20) > 1e-6 {
		t.Errorf("total = %v, want 20", got)
	}
}

func TestRateRoutingUsesMultipath(t *testing.T) {
	// Single transfer wanting 20 on the square: rate-only gives 10 (one
	// path), rate+routing gives 20 (two paths). This is the Fig 10c gap.
	ls := topology.NewLinkSet(4)
	ls.Add(0, 1, 1)
	ls.Add(0, 2, 1)
	ls.Add(1, 3, 1)
	ls.Add(2, 3, 1)
	ts := []*transfer.Transfer{
		transfer.NewTransfer(transfer.Request{ID: 0, Src: 0, Dst: 1, SizeGbits: 200, Deadline: transfer.NoDeadline}),
	}
	in := &Input{Topo: ls, Theta: 10, Active: ts, Slot: 0, SlotSeconds: 10}
	ro := RateOnly{Policy: transfer.SJF}.Allocate(in)
	rr := RateRouting{Policy: transfer.SJF}.Allocate(in)
	if r := rateOf(ro, 0); math.Abs(r-10) > 1e-6 {
		t.Errorf("rate-only = %v, want 10", r)
	}
	if r := rateOf(rr, 0); math.Abs(r-20) > 1e-6 {
		t.Errorf("rate-routing = %v, want 20", r)
	}
}

func TestApproachesHandleEmptyInput(t *testing.T) {
	ls := topology.NewLinkSet(2)
	ls.Add(0, 1, 1)
	in := &Input{Topo: ls, Theta: 10, Active: nil, Slot: 0, SlotSeconds: 10}
	for _, ap := range []Approach{MaxFlow{}, MaxMinFract{}, SWAN{}, Tempus{}, &Amoeba{}, RateOnly{}, RateRouting{}} {
		a := ap.Allocate(in)
		if len(a) != 0 {
			t.Errorf("%s returned allocations for empty input", ap.Name())
		}
	}
}

func TestApproachesHandleDisconnected(t *testing.T) {
	ls := topology.NewLinkSet(4)
	ls.Add(0, 1, 1)
	ts := []*transfer.Transfer{
		transfer.NewTransfer(transfer.Request{ID: 0, Src: 2, Dst: 3, SizeGbits: 100, Deadline: transfer.NoDeadline}),
	}
	in := &Input{Topo: ls, Theta: 10, Active: ts, Slot: 0, SlotSeconds: 10}
	for _, ap := range []Approach{MaxFlow{}, MaxMinFract{}, SWAN{}, Tempus{}, &Amoeba{}, RateOnly{}, RateRouting{}} {
		a := ap.Allocate(in)
		if rateOf(a, 0) != 0 {
			t.Errorf("%s allocated to a disconnected transfer", ap.Name())
		}
	}
}

func TestCandidatePathsDeduplicated(t *testing.T) {
	in := squareInput()
	ps := candidatePaths(in)
	for i, t0 := range in.Active {
		for _, p := range ps[i] {
			if p[0] != t0.Src || p[len(p)-1] != t0.Dst {
				t.Errorf("path endpoints wrong: %v for %d->%d", p, t0.Src, t0.Dst)
			}
		}
	}
}
