package alloc

import (
	"math/rand"
	"testing"

	"owan/internal/topology"
)

// TestClaimRepairDifferential is the claim-tree reuse differential: the same
// mixed-width case stream (single-word, generic multi-word, and four-word
// register engines) run through an allocator with claim reuse on and one with
// the knob forcing every claim onto a cold rebuild. The allocation maps must
// agree path for path and rate for rate — cold rebuilds are the from-scratch
// claimSearch the other suites pin against the reference, so equality here is
// exactly "repaired tree == fresh claimSearch". Both allocators persist
// across seeds, so stale trees from a previous load's topology are also in
// play (cGen must fence them off).
func TestClaimRepairDifferential(t *testing.T) {
	reuse, cold := NewAllocator(), NewAllocator()
	cold.SetClaimReuse(false)
	seeds := int64(300)
	if testing.Short() {
		seeds = 60
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed + 90000))
		var (
			ls    *topology.LinkSet
			ds    []Demand
			theta float64
		)
		switch seed % 3 {
		case 0:
			ls, ds, theta = randomCase(rng)
		case 1:
			ls, ds, theta = randomWideCase(rng)
		default:
			ls, ds, theta = randomQuadCase(rng)
		}
		sameResult(t, seed, cold.Greedy(ls, theta, ds), reuse.Greedy(ls, theta, ds))
	}
	st := &reuse.stat
	rebuilds := st.claim - st.claimFast - st.claimRepair - st.claimResume
	t.Logf("claim stats: calls=%d fast=%d repair=%d resume=%d cold=%d",
		st.claim, st.claimFast, st.claimRepair, st.claimResume, rebuilds)
	for _, c := range []struct {
		name string
		n    uint64
	}{
		{"chain fast-path answers", st.claimFast},
		{"subtree repairs", st.claimRepair},
		{"tree extensions", st.claimResume},
		{"cold rebuilds", rebuilds},
	} {
		if c.n == 0 {
			t.Errorf("no %s across the run — the path was never exercised", c.name)
		}
	}
	if cs := &cold.stat; cs.claimFast != 0 || cs.claimRepair != 0 || cs.claimResume != 0 {
		t.Errorf("reuse knob off still reused trees: fast=%d repair=%d resume=%d",
			cs.claimFast, cs.claimRepair, cs.claimResume)
	}
}

// TestClaimReuseMatchesReference anchors the reuse path directly against the
// map-based reference on the narrow single-word engine, where randomCase's
// tiny dense graphs produce the most takes per tree and therefore the most
// repair churn per claim.
func TestClaimReuseMatchesReference(t *testing.T) {
	al := NewAllocator()
	seeds := int64(300)
	if testing.Short() {
		seeds = 60
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed + 91000))
		ls, ds, theta := randomCase(rng)
		sameResult(t, seed, greedyReference(ls, theta, ds), al.Greedy(ls, theta, ds))
	}
	if al.stat.claimFast == 0 {
		t.Error("no chain fast-path answers across the narrow run")
	}
}

// claimRepairCase is the benchmark fixture: a 200-site spine with chords and
// a hot demand set drawn from a small endpoint pool, so successive claims
// share sources (one repaired tree serves many demands), saturate edges
// mid-run (forcing repairs rather than pure fast-path walks), and drive the
// four-word register engines.
func claimRepairCase() (*topology.LinkSet, []Demand) {
	ls := topology.NewLinkSet(200)
	for i := 0; i+1 < ls.N; i++ {
		ls.Add(i, i+1, 3)
	}
	for i := 0; i+23 < ls.N; i += 11 {
		ls.Add(i, i+23, 1)
	}
	rng := rand.New(rand.NewSource(17))
	pool := []int{0, 1, 2, 3}
	var ds []Demand
	for i := 0; i < 400; i++ {
		s, d := pool[rng.Intn(len(pool))], 20+rng.Intn(ls.N-20)
		if s == d {
			continue
		}
		ds = append(ds, Demand{ID: i, Src: s, Dst: d, RateGbps: 40 + rng.Float64()*80})
	}
	return ls, ds
}

// BenchmarkClaimRepair measures the steady-state greedy allocation with the
// claim-tree store on (the default): saturations repair the claiming tree in
// place and same-source demands share it.
func BenchmarkClaimRepair(b *testing.B) {
	ls, ds := claimRepairCase()
	al := NewAllocator()
	al.Throughput(ls, 10, ds) // warm buffers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.Throughput(ls, 10, ds)
	}
}

// BenchmarkClaimRepairCold is the same workload with claim reuse disabled —
// every claim verification rebuilds its tree from scratch. The gap to
// BenchmarkClaimRepair is what the repair path buys.
func BenchmarkClaimRepairCold(b *testing.B) {
	ls, ds := claimRepairCase()
	al := NewAllocator()
	al.SetClaimReuse(false)
	al.Throughput(ls, 10, ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.Throughput(ls, 10, ds)
	}
}
