package alloc

import (
	"math/rand"
	"testing"

	"owan/internal/topology"
)

// randomWideCase is randomCase scaled past the one-word boundary: 65–120
// sites, so every load takes the multi-word mask path. Chord probability
// drops with n to keep edge counts (and test runtime) in the same ballpark
// as real ISP topologies rather than dense graphs.
func randomWideCase(rng *rand.Rand) (*topology.LinkSet, []Demand, float64) {
	n := 65 + rng.Intn(56)
	ls := topology.NewLinkSet(n)
	for i := 0; i+1 < n; i++ {
		if rng.Float64() < 0.9 {
			ls.Add(i, i+1, 1+rng.Intn(3))
		}
	}
	chords := 2 * n
	for c := 0; c < chords; c++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		ls.Add(min(i, j), max(i, j), 1+rng.Intn(3))
	}
	var ds []Demand
	for i := 0; i < 5+rng.Intn(20); i++ {
		s, d := rng.Intn(n), rng.Intn(n)
		if s == d {
			continue
		}
		rate := rng.Float64() * 60
		if rng.Float64() < 0.1 {
			rate = 0
		}
		ds = append(ds, Demand{ID: i, Src: s, Dst: d, RateGbps: rate})
	}
	theta := []float64{1, 2.5, 10}[rng.Intn(3)]
	return ls, ds, theta
}

// TestAllocatorWideMatchesReference is the >64-site differential: the
// multi-word mask path must reproduce the map-based reference exactly —
// throughput, path lists, and rates. One Allocator is reused across all
// seeds so stale wide-mask state cannot hide.
func TestAllocatorWideMatchesReference(t *testing.T) {
	al := NewAllocator()
	seeds := int64(300)
	if testing.Short() {
		seeds = 60
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ls, ds, theta := randomWideCase(rng)
		if !al.wide {
			// First load hasn't happened yet on seed 0; check after.
			_ = al.Greedy(ls, theta, ds)
			if !al.wide {
				t.Fatalf("seed %d: n=%d did not take the multi-word path", seed, ls.N)
			}
		}
		sameResult(t, seed, greedyReference(ls, theta, ds), al.Greedy(ls, theta, ds))
	}
}

// TestAllocatorWideMatchesScalar cross-checks the multi-word mask path
// against the scalar fallback (SetScalarFallback) on the same inputs — the
// two must agree bit for bit, which is also what the ISP100 benchmark's
// speedup claim rests on.
func TestAllocatorWideMatchesScalar(t *testing.T) {
	mask, scalar := NewAllocator(), NewAllocator()
	scalar.SetScalarFallback(true)
	seeds := int64(300)
	if testing.Short() {
		seeds = 60
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ls, ds, theta := randomWideCase(rng)
		sameResult(t, seed, scalar.Greedy(ls, theta, ds), mask.Greedy(ls, theta, ds))
		if scalar.useMask {
			t.Fatal("scalar fallback allocator took a mask path")
		}
	}
}

// TestThroughputPatchedWide extends the warm-path differential past 64
// sites: ThroughputPatched on the multi-word path must equal the reference
// on the patched topology, and a cold Throughput afterwards must still be
// exact.
func TestThroughputPatchedWide(t *testing.T) {
	al := NewAllocator()
	seeds := int64(120)
	if testing.Short() {
		seeds = 30
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed + 9000))
		ls, ds, theta := randomWideCase(rng)
		al.SetBase(ls, theta)
		for trial := 0; trial < 3; trial++ {
			patched, patch := randomSwapPatch(rng, ls, 1+rng.Intn(3))
			want := greedyReference(patched, theta, ds).Throughput
			if got := al.ThroughputPatched(patch, ds); got != want {
				t.Fatalf("seed %d trial %d: wide ThroughputPatched %v != reference %v",
					seed, trial, got, want)
			}
		}
		if got, want := al.Throughput(ls, theta, ds), greedyReference(ls, theta, ds).Throughput; got != want {
			t.Fatalf("seed %d: cold Throughput after patches %v != reference %v", seed, got, want)
		}
	}
}

// TestAllocatorWideZeroAlloc: the multi-word path must stay allocation-free
// in steady state, exactly like the single-word path.
func TestAllocatorWideZeroAlloc(t *testing.T) {
	ls := topology.NewLinkSet(100)
	for i := 0; i+1 < ls.N; i++ {
		ls.Add(i, i+1, 2)
	}
	for i := 0; i+4 < ls.N; i += 3 {
		ls.Add(i, i+4, 1)
	}
	rng := rand.New(rand.NewSource(5))
	var ds []Demand
	for i := 0; i < 120; i++ {
		s, d := rng.Intn(ls.N), rng.Intn(ls.N)
		if s == d {
			continue
		}
		ds = append(ds, Demand{ID: i, Src: s, Dst: d, RateGbps: rng.Float64() * 40})
	}
	al := NewAllocator()
	al.Throughput(ls, 10, ds) // warm buffers
	if !al.wide {
		t.Fatal("expected the multi-word path")
	}
	if avg := testing.AllocsPerRun(20, func() {
		al.Throughput(ls, 10, ds)
	}); avg != 0 {
		t.Fatalf("wide Throughput allocates %.1f per run, want 0", avg)
	}
}
