package alloc

import (
	"math"

	"owan/internal/topology"
	"owan/internal/transfer"
)

// This file preserves the original map-based greedy implementation as an
// executable specification. The exported Greedy/GreedySequential/Throughput
// run on the flat, index-addressed Allocator; the differential tests in
// differential_test.go assert that the two produce bit-identical results
// (same throughput, same per-demand path/rate lists) on randomized
// topologies and demand sets. Production code must not call into this file.

// residualNet is a mutable capacity view of a network-layer topology, keyed
// by canonical (min,max) site pairs.
type residualNet struct {
	n   int
	cap map[[2]int]float64
	adj [][]int // per-site neighbor lists, fixed at construction; saturated
	// links stay listed and are skipped by the positive-residual check in
	// shortestResidual.
}

func key(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func newResidual(ls *topology.LinkSet, theta float64) *residualNet {
	r := &residualNet{n: ls.N, cap: make(map[[2]int]float64, len(ls.Count)), adj: make([][]int, ls.N)}
	for _, l := range ls.Links() {
		r.cap[key(l.U, l.V)] = float64(l.Count) * theta
		r.adj[l.U] = append(r.adj[l.U], l.V)
		r.adj[l.V] = append(r.adj[l.V], l.U)
	}
	return r
}

// shortestResidual returns the minimum-hop path from src to dst using only
// links with positive residual capacity, or nil.
func (r *residualNet) shortestResidual(src, dst int, prev, distBuf []int) []int {
	const eps = 1e-9
	for i := range distBuf {
		distBuf[i] = -1
		prev[i] = -1
	}
	distBuf[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == dst {
			break
		}
		for _, w := range r.adj[v] {
			if distBuf[w] >= 0 || r.cap[key(v, w)] <= eps {
				continue
			}
			distBuf[w] = distBuf[v] + 1
			prev[w] = v
			queue = append(queue, w)
		}
	}
	if distBuf[dst] < 0 {
		return nil
	}
	path := make([]int, 0, distBuf[dst]+1)
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// bottleneck returns the minimum residual along a path.
func (r *residualNet) bottleneck(path []int) float64 {
	b := math.Inf(1)
	for i := 0; i+1 < len(path); i++ {
		if c := r.cap[key(path[i], path[i+1])]; c < b {
			b = c
		}
	}
	return b
}

// take subtracts rate from every link of the path.
func (r *residualNet) take(path []int, rate float64) {
	for i := 0; i+1 < len(path); i++ {
		r.cap[key(path[i], path[i+1])] -= rate
	}
}

// greedyReference is the original map-based Greedy (Algorithm 3 with the
// path-length tier loop); see Greedy for the algorithm description.
func greedyReference(ls *topology.LinkSet, theta float64, demands []Demand) *Result {
	const eps = 1e-9
	r := newResidual(ls, theta)
	res := &Result{Alloc: make(map[int][]transfer.PathRate, len(demands))}
	unmet := make([]float64, len(demands))
	for i, d := range demands {
		unmet[i] = d.RateGbps
	}
	// nextTier[i]: minimal path length currently available for demand i;
	// math.MaxInt once unroutable (capacity only shrinks within a run).
	nextTier := make([]int, len(demands))
	for i := range nextTier {
		nextTier[i] = 1
	}
	prev := make([]int, ls.N)
	dist := make([]int, ls.N)

	for l := 1; l <= ls.N; l++ {
		anyUnmet := false
		for i := range demands {
			d := &demands[i]
			if unmet[i] <= eps || nextTier[i] > l {
				if unmet[i] > eps && nextTier[i] <= ls.N {
					anyUnmet = true
				}
				continue
			}
			for unmet[i] > eps {
				p := r.shortestResidual(d.Src, d.Dst, prev, dist)
				if p == nil {
					nextTier[i] = math.MaxInt
					break
				}
				if hops := len(p) - 1; hops > l {
					nextTier[i] = hops
					anyUnmet = true
					break
				}
				rate := math.Min(unmet[i], r.bottleneck(p))
				if rate <= eps {
					nextTier[i] = math.MaxInt
					break
				}
				r.take(p, rate)
				unmet[i] -= rate
				res.Alloc[d.ID] = append(res.Alloc[d.ID], transfer.PathRate{Path: p, Rate: rate})
				res.Throughput += rate
			}
		}
		if !anyUnmet {
			break
		}
	}
	return res
}

// greedySequentialReference is the original map-based GreedySequential (the
// no-tier ablation variant); see GreedySequential.
func greedySequentialReference(ls *topology.LinkSet, theta float64, demands []Demand) *Result {
	const eps = 1e-9
	r := newResidual(ls, theta)
	res := &Result{Alloc: make(map[int][]transfer.PathRate, len(demands))}
	prev := make([]int, ls.N)
	dist := make([]int, ls.N)
	for i := range demands {
		d := &demands[i]
		unmet := d.RateGbps
		for unmet > eps {
			p := r.shortestResidual(d.Src, d.Dst, prev, dist)
			if p == nil {
				break
			}
			rate := math.Min(unmet, r.bottleneck(p))
			if rate <= eps {
				break
			}
			r.take(p, rate)
			unmet -= rate
			res.Alloc[d.ID] = append(res.Alloc[d.ID], transfer.PathRate{Path: p, Rate: rate})
			res.Throughput += rate
		}
	}
	return res
}
