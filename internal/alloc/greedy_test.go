package alloc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"owan/internal/topology"
	"owan/internal/transfer"
)

// square returns the 4-node ring topology of the paper's motivating example
// (Figure 3): R0-R1, R0-R2, R1-R3, R2-R3, one circuit (10 units) each.
func square() *topology.LinkSet {
	ls := topology.NewLinkSet(4)
	ls.Add(0, 1, 1)
	ls.Add(0, 2, 1)
	ls.Add(1, 3, 1)
	ls.Add(2, 3, 1)
	return ls
}

func TestGreedySingleDemand(t *testing.T) {
	// One transfer R0->R1 wanting 20: gets 10 direct + 10 via R0-R2-R3-R1.
	res := Greedy(square(), 10, []Demand{{ID: 0, Src: 0, Dst: 1, RateGbps: 20}})
	if math.Abs(res.Throughput-20) > 1e-9 {
		t.Errorf("throughput = %v, want 20", res.Throughput)
	}
	prs := res.Alloc[0]
	if len(prs) != 2 {
		t.Fatalf("paths = %d, want 2", len(prs))
	}
	if len(prs[0].Path) != 2 || prs[0].Rate != 10 {
		t.Errorf("first path should be the 1-hop at 10: %+v", prs[0])
	}
	if len(prs[1].Path) != 4 || prs[1].Rate != 10 {
		t.Errorf("second path should be the 3-hop at 10: %+v", prs[1])
	}
}

func TestGreedyLengthTiersProtectDirectPaths(t *testing.T) {
	// F0 (R0->R1) and F1 (R2->R3) both demand 20. Algorithm 3's length-tier
	// loop hands every transfer its 1-hop path before anyone claims longer
	// paths, so F0 cannot lock F1 out by grabbing the 3-hop detour through
	// R2-R3 first: both end up with their direct 10.
	res := Greedy(square(), 10, []Demand{
		{ID: 0, Src: 0, Dst: 1, RateGbps: 20},
		{ID: 1, Src: 2, Dst: 3, RateGbps: 20},
	})
	if math.Abs(res.Throughput-20) > 1e-9 {
		t.Errorf("throughput = %v, want 20", res.Throughput)
	}
	for id := 0; id <= 1; id++ {
		if len(res.Alloc[id]) != 1 || res.Alloc[id][0].Rate != 10 || len(res.Alloc[id][0].Path) != 2 {
			t.Errorf("F%d should hold exactly its direct path at 10: %+v", id, res.Alloc[id])
		}
	}
}

func TestGreedyTiersShortPathsFirst(t *testing.T) {
	// Both transfers should get their 1-hop path before anyone claims a
	// longer path: F0 (R0->R1) and F1 (R2->R3) each demand 10 -> both direct.
	res := Greedy(square(), 10, []Demand{
		{ID: 0, Src: 0, Dst: 1, RateGbps: 10},
		{ID: 1, Src: 2, Dst: 3, RateGbps: 10},
	})
	if math.Abs(res.Throughput-20) > 1e-9 {
		t.Errorf("throughput = %v, want 20", res.Throughput)
	}
	for id, prs := range res.Alloc {
		if len(prs) != 1 || len(prs[0].Path) != 2 {
			t.Errorf("transfer %d should use its direct path only: %+v", id, prs)
		}
	}
}

func TestGreedyPlanCReconfiguredTopology(t *testing.T) {
	// Plan C topology: both R0 ports to R1, both R2 ports to R3.
	ls := topology.NewLinkSet(4)
	ls.Add(0, 1, 2)
	ls.Add(2, 3, 2)
	res := Greedy(ls, 10, []Demand{
		{ID: 0, Src: 0, Dst: 1, RateGbps: 20},
		{ID: 1, Src: 2, Dst: 3, RateGbps: 20},
	})
	if math.Abs(res.Throughput-40) > 1e-9 {
		t.Errorf("throughput = %v, want 40 (both at 20)", res.Throughput)
	}
}

func TestGreedyRespectsCapacities(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		ls := topology.NewLinkSet(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					ls.Add(i, j, 1+rng.Intn(3))
				}
			}
		}
		var ds []Demand
		for i := 0; i < 10; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s == d {
				continue
			}
			ds = append(ds, Demand{ID: i, Src: s, Dst: d, RateGbps: rng.Float64() * 40})
		}
		theta := 10.0
		res := Greedy(ls, theta, ds)
		// Sum per-link usage and compare against capacity.
		use := map[[2]int]float64{}
		alloced := map[int]float64{}
		for id, prs := range res.Alloc {
			for _, pr := range prs {
				if pr.Rate < -1e-9 {
					return false
				}
				alloced[id] += pr.Rate
				// Path endpoints must match the demand.
				for i := 0; i+1 < len(pr.Path); i++ {
					use[key(pr.Path[i], pr.Path[i+1])] += pr.Rate
				}
			}
		}
		for k, u := range use {
			if u > float64(ls.Get(k[0], k[1]))*theta+1e-6 {
				return false
			}
		}
		// No demand is over-served.
		for _, d := range ds {
			if alloced[d.ID] > d.RateGbps+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGreedyPathsAreValid(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		ls := topology.NewLinkSet(n)
		for i := 0; i < n-1; i++ {
			ls.Add(i, i+1, 1+rng.Intn(2))
		}
		var ds []Demand
		for i := 0; i < 6; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s == d {
				continue
			}
			ds = append(ds, Demand{ID: i, Src: s, Dst: d, RateGbps: 5 + rng.Float64()*20})
		}
		res := Greedy(ls, 10, ds)
		for _, d := range ds {
			for _, pr := range res.Alloc[d.ID] {
				if pr.Path[0] != d.Src || pr.Path[len(pr.Path)-1] != d.Dst {
					return false
				}
				for i := 0; i+1 < len(pr.Path); i++ {
					if ls.Get(pr.Path[i], pr.Path[i+1]) == 0 {
						return false // path uses a nonexistent link
					}
				}
				seen := map[int]bool{}
				for _, v := range pr.Path {
					if seen[v] {
						return false // loop
					}
					seen[v] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGreedyDisconnectedDemand(t *testing.T) {
	ls := topology.NewLinkSet(4)
	ls.Add(0, 1, 1)
	res := Greedy(ls, 10, []Demand{{ID: 0, Src: 2, Dst: 3, RateGbps: 10}})
	if res.Throughput != 0 || len(res.Alloc[0]) != 0 {
		t.Errorf("disconnected demand should get nothing: %+v", res)
	}
}

func TestGreedyEmptyInputs(t *testing.T) {
	res := Greedy(square(), 10, nil)
	if res.Throughput != 0 {
		t.Error("no demands -> zero throughput")
	}
	res = Greedy(topology.NewLinkSet(3), 10, []Demand{{ID: 0, Src: 0, Dst: 1, RateGbps: 5}})
	if res.Throughput != 0 {
		t.Error("empty topology -> zero throughput")
	}
}

func TestDemandsFromTransfers(t *testing.T) {
	tr := transfer.NewTransfer(transfer.Request{ID: 7, Src: 1, Dst: 2, SizeGbits: 600})
	ds := DemandsFromTransfers([]*transfer.Transfer{tr}, 300)
	if len(ds) != 1 || ds[0].ID != 7 || ds[0].RateGbps != 2 {
		t.Errorf("demands = %+v", ds)
	}
}

func BenchmarkGreedyISP40(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := topology.ISP(40, 10, 1)
	ls := topology.InitialTopology(net)
	var ds []Demand
	for i := 0; i < 200; i++ {
		s, d := rng.Intn(40), rng.Intn(40)
		if s == d {
			continue
		}
		ds = append(ds, Demand{ID: i, Src: s, Dst: d, RateGbps: rng.Float64() * 30})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(ls, 10, ds)
	}
}
