package alloc

import (
	"math/rand"
	"testing"

	"owan/internal/topology"
)

// randomQuadCase scales the differential inputs into the four-word mask range
// (129–250 sites), which the wide harness (65–120) never reaches — without it
// the register-specialized engines (resumeStamp4, claimSearch4) would be
// pinned only by benchmarks. The mix is tuned to force every engine verdict,
// not just the happy path: the spine has gaps so some components disconnect
// (frontier-exhaustion early-outs), demands are drawn from a small endpoint
// pool so pairs repeat across IDs, and rates run hot against link counts so
// claims saturate edges mid-run — which is what decays probe's stamped bounds
// and routes re-verification through the bidirectional searchBounded.
func randomQuadCase(rng *rand.Rand) (*topology.LinkSet, []Demand, float64) {
	n := 129 + rng.Intn(122)
	ls := topology.NewLinkSet(n)
	for i := 0; i+1 < n; i++ {
		if rng.Float64() < 0.88 {
			ls.Add(i, i+1, 1+rng.Intn(3))
		}
	}
	chords := n + rng.Intn(2*n)
	for c := 0; c < chords; c++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		ls.Add(min(i, j), max(i, j), 1+rng.Intn(3))
	}
	// Endpoint pool of ~8 sites: repeated pairs pile demands onto the same
	// rows and the same bottlenecks, so later demands see stamps their
	// predecessors' claims have already invalidated.
	pool := make([]int, 8)
	for i := range pool {
		pool[i] = rng.Intn(n)
	}
	var ds []Demand
	for i := 0; i < 12+rng.Intn(28); i++ {
		s := pool[rng.Intn(len(pool))]
		d := pool[rng.Intn(len(pool))]
		if rng.Float64() < 0.3 { // some pairs outside the pool
			s, d = rng.Intn(n), rng.Intn(n)
		}
		if s == d {
			continue
		}
		rate := rng.Float64() * 120
		if rng.Float64() < 0.1 {
			rate = 0
		}
		ds = append(ds, Demand{ID: i, Src: s, Dst: d, RateGbps: rate})
	}
	theta := []float64{1, 2.5, 10}[rng.Intn(3)]
	return ls, ds, theta
}

// quadStatChecks asserts, over a whole differential run, that the engine
// paths the quad cases are built to force all actually fired — both
// bidirectional meet directions, sweep exhaustion on disconnected
// components, claim-search failure cuts, and truncation-bound answers — so
// the agreement the run proves is not vacuous.
func quadStatChecks(t *testing.T, al *Allocator) {
	t.Helper()
	st := &al.stat
	t.Logf("engine stats: %+v", *st)
	for _, c := range []struct {
		name string
		n    uint64
	}{
		{"resumeStamp calls", st.resume},
		{"resume truncation-bound answers", st.resumeBound},
		{"resume exhaustion cuts", st.resumeExhaust},
		{"claimSearch calls", st.claim},
		{"claim failure cuts", st.claimCut},
		{"searchBounded calls", st.bidi},
		{"bidirectional meets on the src side", st.bidiMeetS},
		{"bidirectional meets on the dst side", st.bidiMeetD},
		{"bidirectional src-side exhaustions", st.bidiExhaustS},
		{"bidirectional dst-side exhaustions", st.bidiExhaustD},
	} {
		if c.n == 0 {
			t.Errorf("no %s across the run — the path was never exercised", c.name)
		}
	}
}

// TestAllocatorQuadMatchesReference is the 129–250-site differential: the
// four-word register engines must reproduce the map-based reference exactly.
// The site range straddles the mw==4 specialization boundary (193 sites), so
// the run also covers the generic three-word engines and the handoff between
// them, and one Allocator is reused across all seeds so resumed-row state
// from one load's topology can never leak a stale answer into the next.
func TestAllocatorQuadMatchesReference(t *testing.T) {
	al := NewAllocator()
	seeds := int64(300)
	if testing.Short() {
		seeds = 60
	}
	saw := map[int]int{}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed + 40000))
		ls, ds, theta := randomQuadCase(rng)
		sameResult(t, seed, greedyReference(ls, theta, ds), al.Greedy(ls, theta, ds))
		saw[al.mw]++
	}
	if saw[4] == 0 || saw[3] == 0 {
		t.Fatalf("mask-width coverage hole: loads per width %v, want both 3 and 4", saw)
	}
	quadStatChecks(t, al)
}

// TestAllocatorQuadMatchesScalar cross-checks the four-word register engines
// against the scalar fallback on the same inputs — the two must agree bit for
// bit, which is what the ISP200 benchmark's speedup claim rests on.
func TestAllocatorQuadMatchesScalar(t *testing.T) {
	mask, scalar := NewAllocator(), NewAllocator()
	scalar.SetScalarFallback(true)
	seeds := int64(300)
	if testing.Short() {
		seeds = 60
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed + 40000))
		ls, ds, theta := randomQuadCase(rng)
		sameResult(t, seed, scalar.Greedy(ls, theta, ds), mask.Greedy(ls, theta, ds))
		if scalar.useMask {
			t.Fatal("scalar fallback allocator took a mask path")
		}
	}
	quadStatChecks(t, mask)
}

// TestThroughputPatchedQuad extends the warm-path differential into the
// four-word range: ThroughputPatched must equal the reference on the patched
// topology, and a cold Throughput afterwards must still be exact.
func TestThroughputPatchedQuad(t *testing.T) {
	al := NewAllocator()
	seeds := int64(120)
	if testing.Short() {
		seeds = 30
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed + 41000))
		ls, ds, theta := randomQuadCase(rng)
		al.SetBase(ls, theta)
		for trial := 0; trial < 3; trial++ {
			patched, patch := randomSwapPatch(rng, ls, 1+rng.Intn(3))
			want := greedyReference(patched, theta, ds).Throughput
			if got := al.ThroughputPatched(patch, ds); got != want {
				t.Fatalf("seed %d trial %d: quad ThroughputPatched %v != reference %v",
					seed, trial, got, want)
			}
		}
		if got, want := al.Throughput(ls, theta, ds), greedyReference(ls, theta, ds).Throughput; got != want {
			t.Fatalf("seed %d: cold Throughput after patches %v != reference %v", seed, got, want)
		}
	}
}

// TestFrontierSparseDenseCrossing pins the bSparse enumeration threshold in
// resumeStampWd (65–128 sites — the four-word engine has no sparse list to
// cross). The graphs are dense enough that mid-sweep frontiers exceed bSparse
// nodes: every BFS starts sparse (a frontier of one), so sweeps must cross
// the threshold — within one call when a sweep spans several levels, or
// across a suspension when tier-truncated sweeps advance one level per call
// and the persisted sparse list carries the entry mode over. Sparse-list
// levels, word-swept levels, and threshold crossings must all be observed,
// and the results must match the reference exactly on both sides of every
// crossing.
func TestFrontierSparseDenseCrossing(t *testing.T) {
	al := NewAllocator()
	seeds := int64(150)
	if testing.Short() {
		seeds = 30
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed + 42000))
		n := 90 + rng.Intn(39)
		ls := topology.NewLinkSet(n)
		for i := 0; i+1 < n; i++ {
			ls.Add(i, i+1, 1+rng.Intn(3))
		}
		for c := 0; c < 5*n; c++ { // dense: frontiers blow past bSparse
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			ls.Add(min(i, j), max(i, j), 1+rng.Intn(2))
		}
		var ds []Demand
		for i := 0; i < 10+rng.Intn(20); i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s == d {
				continue
			}
			ds = append(ds, Demand{ID: i, Src: s, Dst: d, RateGbps: rng.Float64() * 80})
		}
		sameResult(t, seed, greedyReference(ls, 2.5, ds), al.Greedy(ls, 2.5, ds))
	}
	st := &al.stat
	t.Logf("sweep stats: sparse=%d dense=%d mixed=%d", st.sweepSparse, st.sweepDense, st.sweepMixed)
	if st.sweepSparse == 0 || st.sweepDense == 0 {
		t.Fatalf("sweep modes not both exercised: sparse=%d dense=%d", st.sweepSparse, st.sweepDense)
	}
	if st.sweepMixed == 0 {
		t.Fatal("no sweep ever crossed the bSparse threshold within one call")
	}
}

// TestAllocatorQuadZeroAlloc: the four-word register path must stay
// allocation-free in steady state, like the single- and generic multi-word
// paths.
func TestAllocatorQuadZeroAlloc(t *testing.T) {
	ls := topology.NewLinkSet(200)
	for i := 0; i+1 < ls.N; i++ {
		ls.Add(i, i+1, 2)
	}
	for i := 0; i+7 < ls.N; i += 3 {
		ls.Add(i, i+7, 1)
	}
	rng := rand.New(rand.NewSource(7))
	var ds []Demand
	for i := 0; i < 150; i++ {
		s, d := rng.Intn(ls.N), rng.Intn(ls.N)
		if s == d {
			continue
		}
		ds = append(ds, Demand{ID: i, Src: s, Dst: d, RateGbps: rng.Float64() * 40})
	}
	al := NewAllocator()
	al.Throughput(ls, 10, ds) // warm buffers
	if al.mw != 4 {
		t.Fatalf("expected the four-word path, mw=%d", al.mw)
	}
	if avg := testing.AllocsPerRun(20, func() {
		al.Throughput(ls, 10, ds)
	}); avg != 0 {
		t.Fatalf("quad Throughput allocates %.1f per run, want 0", avg)
	}
}
