package alloc

import (
	"math"
	"math/bits"
)

// Frontier-compacted and bidirectional searches (mask paths only; the scalar
// fallback keeps the canonical single-engine flow).
//
// The tiered greedy loop asks three kinds of question, and only one of them
// needs a shortest-path TREE: claiming a path. The other two — "is dst
// reachable at all?" and "is dst within this tier's hop budget?" — need just
// a hop distance, and profiling the ISP200 energy case shows they dominate:
// per evaluation roughly 280 searches end in a deferral and 30 in a failure,
// against 75 claims. The canonical BFS pays prevNode/prevEdge stores, edgeOf
// lookups and usedBy bookkeeping for every label — all of it thrown away
// when the verdict is "too far, come back at tier 16". Worse, the canonical
// engine re-walks a source's component from scratch every time a claim
// overwrote its memo row, and on ISP-class residuals a component sweep is
// expensive precisely because the graph is path-like: components run ~95% of
// the sites and diameters reach the 30s.
//
// Three engines split the work; runLoaded picks between them on two signals,
// whether probe() already holds a memo row for the source and whether the
// row's bound is decayed (older than the tier asking):
//
//   - resumeStamp (no bound for dst yet): a forward level-synchronous sweep
//     over the live-adjacency bitmaps that writes exactly one word per label
//     — the generation-stamped hop count — and SUSPENDS the moment dst is
//     labeled, keeping its visited set, frontier and level in per-source
//     rows (sVis/sFront/sLevel). The next probe miss from the same source
//     RESUMES where the sweep stopped instead of restarting, so one source
//     pays each BFS level at most once per load however many demands and
//     tiers query it; a source whose demands finish early never pays for the
//     deep tail of its component. Per level the sweep only touches words
//     containing frontier bits: members come from the compact id list the
//     previous level collected while it holds at most bSparse nodes, and
//     from a word-masked scan of the frontier bitmap otherwise (after a
//     suspension the id list is gone, so the first resumed level always
//     takes the word-masked path — the bitmap is the persistent form).
//
//     Resumed levels mix ages: earlier levels saw residuals that takes have
//     since thinned. The stamps are still sound LOWER bounds, which is
//     exactly probe()'s contract: edges only ever leave the residual graph,
//     so for any current path src=p0..pk the adjacency (p(i-1), p(i)) held
//     at every earlier moment too, and level-synchronous expansion therefore
//     stamped each p(i) no later than level i — stamp(dst) <= current
//     distance. Deferring a demand to tier stamp(dst) just re-examines it
//     early, where the claim search repeats the comparison exactly; a
//     frontier that empties proves the visited set is src's complete current
//     component (unreachability is permanent), recorded as a failure cut.
//
//   - claimSearch (bound fits the tier): a stealth forward BFS that labels
//     through a bitmap and writes ONLY the prevNode/prevEdge chains, leaving
//     rowGen, the stamps, probeFull and the rowLive/usedBy books untouched —
//     claiming no longer destroys the source's resumable row, which is what
//     forced the canonical engine's re-sweeps. Its FIFO order and ascending-
//     bit labeling are the canonical scan order, so the chain it leaves for
//     bottleneck/take is bit-identical to the canonical engine's, and its
//     exact current distance either confirms the claim or yields the exact
//     deferral tier.
//
//   - searchBounded (bound present but decayed — stamped at an earlier tier
//     than is asking): a bidirectional meet-in-the-middle sweep over the
//     same bitmaps, growing the smaller frontier each round (the residual
//     graph is undirected, so the reverse adjacency IS liveAdj). It writes
//     its levels into private generation-stamped arrays, preserving
//     whatever rows probe is still serving bounds from, and settles
//     "distance grew past this tier" and "no longer reachable" verdicts
//     without paying for prev chains: two balls of radius ~d/2 instead of
//     one of radius d, and on failure the smaller exhausted side is the
//     failure cut. On path-like ISP residuals (frontiers average ~3 nodes,
//     ball volume grows linearly with radius) that is NOT a quadratic win —
//     which is why it is reserved for decayed-bound re-verification rather
//     than used as the primary engine (measured numbers in DESIGN.md §9).
//
// Why the answers are exactly the canonical ones:
//
//   - Reachability is connectivity in the positive-residual graph.
//     resumeStamp walks it to exhaustion before reporting failure, and the
//     bidirectional sweep until a side exhausts — identical by definition.
//     On failure the exhausted side's visited set is a complete component
//     whose outgoing edges are all saturated, i.e. precisely the failure cut
//     the canonical search would record, so the doomed-word memo composes
//     unchanged; when the dst side exhausts first, src additionally learns
//     it can never reach any member of dst's component.
//
//   - Deferral tiers stay conservative and claims stay exact. resumeStamp's
//     lower bounds can re-examine a demand earlier than the canonical flow
//     would (never later), where claimSearch's exact current distance makes
//     the same claim-or-defer decision the canonical search would make; the
//     bidirectional distance is exact outright. For the latter the invariant
//     is: after a round, each side has labeled exactly the nodes within its
//     completed radius (rS resp. rD), with exact levels. A meet found while
//     expanding, say, the src side to radius rS+1 has candidate cost
//     c = rS+1+levD(w) <= rS+1+rD, and the minimum candidate of the round
//     equals the true distance d: if d < min(c), pick the node u on a
//     shortest path with levS(u) = min(rS+1, d). Either u = dst, which the
//     src side labeled — but dst is a member of the dst side's visited set
//     from initialization, so that labeling was itself a meet of cost d in
//     this round; or levD(u) = d-rS-1 < rD+1, so u was labeled by both
//     sides in earlier rounds, and whichever side labeled u second saw the
//     meet then and returned. Both contradict d < min(c).
//
//   - Claimed paths are bit-identical. claimSearch rebuilds the prev chains
//     from scratch on the current residuals in the canonical scan order;
//     that fresh tree is identical to the one the canonical flow would have
//     claimed from (whether memoized or freshly searched): a live memo tree
//     differs from a fresh search only by edges that saturated since it was
//     built, and those are all non-tree edges — edges a BFS skipped because
//     their head was already labeled earlier in scan order, whose removal
//     changes neither labels, order, nor parents (the same argument that
//     makes the rowLive memo exact in the first place).
//
// The resumable rows carry no prev chains, so the source's rowLive bit is
// cleared when one is started: probe may read the stamps, the claim-capable
// head of shortestResidual may not.
const bSparse = 64

// engineStats counts engine events at call granularity — increments live at
// function entries, returns, and one per-call mode summary, never inside a
// member loop — so the differential harnesses can assert the paths they mean
// to force (bidirectional meets from either side, exhaustion early-outs,
// sparse/dense frontier enumeration crossings) actually ran. A few hundred
// increments per evaluation; cumulative across loads, reset only by tests.
type engineStats struct {
	resume        uint64 // resumeStamp calls
	resumeExhaust uint64 // sweeps that ran the component dry (failure cut)
	resumeBound   uint64 // free truncation-bound answers (no expansion)
	claim         uint64 // claimSearch calls
	claimCut      uint64 // claim searches that exhausted (failure cut)
	bidi          uint64 // searchBounded calls
	bidiMeetS     uint64 // meets detected while expanding the src side
	bidiMeetD     uint64 // meets detected while expanding the dst side
	bidiExhaustS  uint64 // src side exhausted first
	bidiExhaustD  uint64 // dst side exhausted first
	sweepSparse   uint64 // resumeStampWd calls with >=1 sparse-list level
	sweepDense    uint64 // resumeStampWd calls with >=1 word-swept level
	sweepMixed    uint64 // calls that crossed the bSparse threshold
}

// noteSweep folds one resumeStampWd call's per-level enumeration modes into
// the sweep counters.
func (a *Allocator) noteSweep(usedSparse, usedDense bool) {
	if usedSparse {
		a.stat.sweepSparse++
	}
	if usedDense {
		a.stat.sweepDense++
	}
	if usedSparse && usedDense {
		a.stat.sweepMixed++
	}
}

// resumeStamp answers "at how many hops, at least, is dst?" from src's
// resumable sweep row, starting one if the source has none this load and
// advancing it only as far as dst. It reports unreachability exactly (the
// sweep ran the component to exhaustion) and otherwise a sound lower bound
// on the current hop count — exact at the moment dst's level was stamped.
// Two zero-expansion exits: a dst the row already stamped answers from the
// stamp, and a row whose completed levels already exceed the asking tier l
// answers sLevel+1 without expanding at all — a level-synchronous sweep
// truncated at level L stamps every node a current path of length <= L
// reaches (the same induction that makes the stamps lower bounds), so an
// unstamped dst satisfies d(src,dst) >= L+1.
func (a *Allocator) resumeStamp(src, dst, l int) (bool, int) {
	if a.cutHit(src, dst) {
		return false, 0
	}
	a.stat.resume++
	if a.wide {
		if a.mw == 4 {
			return a.resumeStamp4(src, dst, l)
		}
		return a.resumeStampWd(src, dst, l)
	}
	return a.resumeStamp1(src, dst, l)
}

// resumeStamp1 is the single-word (n <= 64) resumable sweep: the visited set
// and frontier are single machine words in the per-source rows.
func (a *Allocator) resumeStamp1(src, dst, l int) (bool, int) {
	adj := a.liveAdj
	n := a.n
	sd := a.stampDist[src*n : src*n+n]
	if a.rowGen[src] <= a.loadGen {
		a.gen++
		a.rowGen[src] = a.gen
		a.rowLive &^= 1 << uint(src) // stamps without prev chains
		a.probeFull[src] = false
		sd[src] = int64(a.gen) << 32
		a.sVis[src] = 1 << uint(src)
		a.sFront[src] = 1 << uint(src)
		a.sLevel[src] = 0
	}
	vis := a.sVis[src]
	if vis>>uint(dst)&1 == 1 {
		return true, int(int32(sd[dst]))
	}
	d := int64(a.sLevel[src])
	if int(d) >= l {
		a.stat.resumeBound++
		return true, int(d) + 1 // dst lies beyond every completed level
	}
	gen := int64(a.rowGen[src])
	fr := a.sFront[src]
	for {
		var nf uint64
		for m := fr; m != 0; m &= m - 1 {
			nf |= adj[bits.TrailingZeros64(m)]
		}
		nf &^= vis
		d++
		lv := gen<<32 | d
		for m := nf; m != 0; m &= m - 1 {
			sd[bits.TrailingZeros64(m)] = lv
		}
		vis |= nf
		fr = nf
		if vis>>uint(dst)&1 == 1 {
			a.sVis[src], a.sFront[src], a.sLevel[src] = vis, fr, int32(d)
			return true, int(d)
		}
		if nf == 0 {
			a.sVis[src], a.sFront[src], a.sLevel[src] = vis, fr, int32(d)
			a.probeFull[src] = true
			a.recordCutMask(vis)
			a.stat.resumeExhaust++
			return false, 0
		}
	}
}

// resumeStampWd is the multi-word twin of resumeStamp1. Frontier members are
// enumerated from the compact id list collected by the previous level of
// this call while it holds at most bSparse nodes, and by sweeping the
// frontier bitmap's words otherwise (always on the first level after a
// resume — the bitmap is the state that persists across suspensions).
func (a *Allocator) resumeStampWd(src, dst, l int) (bool, int) {
	mw, n := a.mw, a.n
	adj := a.liveAdjW
	vis := a.sVis[src*mw : src*mw+mw]
	fr := a.sFront[src*mw : src*mw+mw]
	sd := a.stampDist[src*n : src*n+n]
	if a.rowGen[src] <= a.loadGen {
		a.gen++
		a.rowGen[src] = a.gen
		a.rowLiveW[src>>6] &^= 1 << uint(src&63) // stamps without prev chains
		a.probeFull[src] = false
		sd[src] = int64(a.gen) << 32
		clear(vis)
		clear(fr)
		vis[src>>6] = 1 << uint(src&63)
		fr[src>>6] = 1 << uint(src&63)
		a.sLevel[src] = 0
	}
	dw, db := dst>>6, uint(dst&63)
	if vis[dw]>>db&1 == 1 {
		return true, int(int32(sd[dst]))
	}
	d := int64(a.sLevel[src])
	if int(d) >= l {
		a.stat.resumeBound++
		return true, int(d) + 1 // dst lies beyond every completed level
	}
	gen := int64(a.rowGen[src])
	nf := a.bNext[:mw]
	ids := a.bIDsS[:0]
	sparse := false
	usedSparse, usedDense := false, false
	for {
		clear(nf)
		if sparse {
			usedSparse = true
			for _, v := range ids {
				row := adj[int(v)*mw : int(v)*mw+mw]
				for wi := range nf {
					nf[wi] |= row[wi]
				}
			}
		} else {
			usedDense = true
			for wi2, fw := range fr {
				base := wi2 << 6
				for m := fw; m != 0; m &= m - 1 {
					v := base + bits.TrailingZeros64(m)
					row := adj[v*mw : v*mw+mw]
					for wi := range nf {
						nf[wi] |= row[wi]
					}
				}
			}
		}
		d++
		lv := gen<<32 | d
		cnt := 0
		ids = ids[:0]
		for wi := range nf {
			nw := nf[wi] &^ vis[wi]
			nf[wi] = nw
			if nw == 0 {
				continue
			}
			vis[wi] |= nw
			base := wi << 6
			cnt += bits.OnesCount64(nw)
			for m := nw; m != 0; m &= m - 1 {
				w := base + bits.TrailingZeros64(m)
				sd[w] = lv
				ids = append(ids, int32(w))
			}
		}
		copy(fr, nf)
		a.sLevel[src] = int32(d)
		sparse = cnt <= bSparse
		if vis[dw]>>db&1 == 1 {
			a.bIDsS = ids[:0]
			a.noteSweep(usedSparse, usedDense)
			return true, int(d)
		}
		if cnt == 0 {
			a.bIDsS = ids[:0]
			a.probeFull[src] = true
			a.recordCutMaskW(vis)
			a.noteSweep(usedSparse, usedDense)
			a.stat.resumeExhaust++
			return false, 0
		}
	}
}

// resumeStamp4 is resumeStampWd specialized to mw == 4 (129–256 sites, the
// ISP100/ISP200-class benchmark range): the visited, frontier and next-level
// bitmaps fit in four registers each, so a level costs no clears, no id-list
// maintenance and no bounds-checked accumulator stores — the frontier words
// themselves are the compact representation — and the stamp and expansion
// passes are fused, so each new label is enumerated once: stamping a node
// and folding its adjacency row into the next level's raw union happen under
// a single TrailingZeros scan. Identical labeling and results; only
// wall-clock differs.
func (a *Allocator) resumeStamp4(src, dst, l int) (bool, int) {
	const mw = 4
	n := a.n
	adj := a.liveAdjW
	svis := a.sVis[src*mw : src*mw+mw]
	sfr := a.sFront[src*mw : src*mw+mw]
	sd := a.stampDist[src*n : src*n+n]
	if a.rowGen[src] <= a.loadGen {
		a.gen++
		a.rowGen[src] = a.gen
		a.rowLiveW[src>>6] &^= 1 << uint(src&63) // stamps without prev chains
		a.probeFull[src] = false
		sd[src] = int64(a.gen) << 32
		svis[0], svis[1], svis[2], svis[3] = 0, 0, 0, 0
		sfr[0], sfr[1], sfr[2], sfr[3] = 0, 0, 0, 0
		svis[src>>6] = 1 << uint(src&63)
		sfr[src>>6] = 1 << uint(src&63)
		a.sLevel[src] = 0
	}
	dw, db := dst>>6, uint(dst&63)
	if svis[dw]>>db&1 == 1 {
		return true, int(int32(sd[dst]))
	}
	d := int64(a.sLevel[src])
	if int(d) >= l {
		a.stat.resumeBound++
		return true, int(d) + 1 // dst lies beyond every completed level
	}
	gen := int64(a.rowGen[src])
	vis0, vis1, vis2, vis3 := svis[0], svis[1], svis[2], svis[3]
	// Seed the raw neighbor union of the stored frontier (its members are
	// already stamped; only their expansion is pending).
	var nf0, nf1, nf2, nf3 uint64
	for m := sfr[0]; m != 0; m &= m - 1 {
		r := bits.TrailingZeros64(m) * mw
		nf0 |= adj[r]
		nf1 |= adj[r+1]
		nf2 |= adj[r+2]
		nf3 |= adj[r+3]
	}
	for m := sfr[1]; m != 0; m &= m - 1 {
		r := (64 + bits.TrailingZeros64(m)) * mw
		nf0 |= adj[r]
		nf1 |= adj[r+1]
		nf2 |= adj[r+2]
		nf3 |= adj[r+3]
	}
	for m := sfr[2]; m != 0; m &= m - 1 {
		r := (128 + bits.TrailingZeros64(m)) * mw
		nf0 |= adj[r]
		nf1 |= adj[r+1]
		nf2 |= adj[r+2]
		nf3 |= adj[r+3]
	}
	for m := sfr[3]; m != 0; m &= m - 1 {
		r := (192 + bits.TrailingZeros64(m)) * mw
		nf0 |= adj[r]
		nf1 |= adj[r+1]
		nf2 |= adj[r+2]
		nf3 |= adj[r+3]
	}
	for {
		cur0 := nf0 &^ vis0
		cur1 := nf1 &^ vis1
		cur2 := nf2 &^ vis2
		cur3 := nf3 &^ vis3
		if cur0|cur1|cur2|cur3 == 0 {
			// Frontier exhausted: svis is src's complete current component.
			svis[0], svis[1], svis[2], svis[3] = vis0, vis1, vis2, vis3
			sfr[0], sfr[1], sfr[2], sfr[3] = 0, 0, 0, 0
			a.sLevel[src] = int32(d)
			a.probeFull[src] = true
			a.recordCutMaskW(svis)
			a.stat.resumeExhaust++
			return false, 0
		}
		d++
		lv := gen<<32 | d
		vis0 |= cur0
		vis1 |= cur1
		vis2 |= cur2
		vis3 |= cur3
		nf0, nf1, nf2, nf3 = 0, 0, 0, 0
		for m := cur0; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			sd[w] = lv
			r := w * mw
			nf0 |= adj[r]
			nf1 |= adj[r+1]
			nf2 |= adj[r+2]
			nf3 |= adj[r+3]
		}
		for m := cur1; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			sd[64+w] = lv
			r := (64 + w) * mw
			nf0 |= adj[r]
			nf1 |= adj[r+1]
			nf2 |= adj[r+2]
			nf3 |= adj[r+3]
		}
		for m := cur2; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			sd[128+w] = lv
			r := (128 + w) * mw
			nf0 |= adj[r]
			nf1 |= adj[r+1]
			nf2 |= adj[r+2]
			nf3 |= adj[r+3]
		}
		for m := cur3; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			sd[192+w] = lv
			r := (192 + w) * mw
			nf0 |= adj[r]
			nf1 |= adj[r+1]
			nf2 |= adj[r+2]
			nf3 |= adj[r+3]
		}
		var visDst uint64
		switch dw {
		case 0:
			visDst = vis0
		case 1:
			visDst = vis1
		case 2:
			visDst = vis2
		default:
			visDst = vis3
		}
		if visDst>>db&1 == 1 {
			svis[0], svis[1], svis[2], svis[3] = vis0, vis1, vis2, vis3
			sfr[0], sfr[1], sfr[2], sfr[3] = cur0, cur1, cur2, cur3
			a.sLevel[src] = int32(d)
			return true, int(d)
		}
	}
}

// claimSearch is the stealth claiming BFS: it writes dst's prevNode/prevEdge
// chain (the only state bottleneck/take read) and reports the exact current
// hop count, touching neither the stamps nor any memo book — the source's
// resumable row survives the claim. Scan order is canonical, so the chain is
// bit-identical to the one shortestResidual would leave.
func (a *Allocator) claimSearch(src, dst int) (bool, int) {
	if a.cutHit(src, dst) {
		return false, 0
	}
	a.stat.claim++
	if a.wide {
		if a.mw == 4 {
			return a.claimSearch4(src, dst)
		}
		return a.claimSearchWd(src, dst)
	}
	return a.claimSearch1(src, dst)
}

// claimSearch1 is the single-word (n <= 64) stealth claim search.
func (a *Allocator) claimSearch1(src, dst int) (bool, int) {
	adj := a.liveAdj
	n := a.n
	edgeOf := a.edgeOf
	prevNE := a.prevNE[src*n : src*n+n]
	q := append(a.queue[:0], int32(src))
	labeled := uint64(1) << uint(src)
	depth := 0
	levelEnd := 1
	for head := 0; head < len(q); head++ {
		if head == levelEnd {
			depth++
			levelEnd = len(q)
		}
		v := q[head]
		vLow := int64(v)
		nw := adj[v] &^ labeled
		labeled |= nw
		for ; nw != 0; nw &= nw - 1 {
			w := int32(bits.TrailingZeros64(nw))
			prevNE[w] = int64(edgeOf[int(v)*n+int(w)])<<32 | vLow
			if int(w) == dst {
				a.queue = q
				return true, depth + 1
			}
			q = append(q, w)
		}
	}
	a.queue = q
	a.recordCutMask(labeled)
	a.stat.claimCut++
	return false, 0
}

// claimSearchWd is the multi-word twin of claimSearch1.
func (a *Allocator) claimSearchWd(src, dst int) (bool, int) {
	mw, n := a.mw, a.n
	edgeOf := a.edgeOf
	lab := a.labeledW[:mw]
	clear(lab)
	lab[src>>6] = 1 << uint(src&63)
	prevNE := a.prevNE[src*n : src*n+n]
	q := append(a.queue[:0], int32(src))
	depth := 0
	levelEnd := 1
	for head := 0; head < len(q); head++ {
		if head == levelEnd {
			depth++
			levelEnd = len(q)
		}
		v := q[head]
		vLow := int64(v)
		vRow := a.liveAdjW[int(v)*mw : int(v)*mw+mw]
		for wi := 0; wi < mw; wi++ {
			nw := vRow[wi] &^ lab[wi]
			if nw == 0 {
				continue
			}
			lab[wi] |= nw
			base := wi << 6
			for ; nw != 0; nw &= nw - 1 {
				w := int32(base + bits.TrailingZeros64(nw))
				prevNE[w] = int64(edgeOf[int(v)*n+int(w)])<<32 | vLow
				if int(w) == dst {
					a.queue = q
					return true, depth + 1
				}
				q = append(q, w)
			}
		}
	}
	a.queue = q
	a.recordCutMaskW(lab)
	a.stat.claimCut++
	return false, 0
}

// claimSearch4 is claimSearchWd specialized to mw == 4: the visited bitmap
// lives in four registers and the per-node word loop is unrolled, with the
// same FIFO scan order and therefore the same prev chains.
func (a *Allocator) claimSearch4(src, dst int) (bool, int) {
	const mw = 4
	n := a.n
	adj := a.liveAdjW
	edgeOf := a.edgeOf
	prevNE := a.prevNE[src*n : src*n+n]
	q := append(a.queue[:0], int32(src))
	var lab0, lab1, lab2, lab3 uint64
	switch src >> 6 {
	case 0:
		lab0 = 1 << uint(src&63)
	case 1:
		lab1 = 1 << uint(src&63)
	case 2:
		lab2 = 1 << uint(src&63)
	default:
		lab3 = 1 << uint(src&63)
	}
	depth := 0
	levelEnd := 1
	for head := 0; head < len(q); head++ {
		if head == levelEnd {
			depth++
			levelEnd = len(q)
		}
		v := int(q[head])
		vLow := int64(v)
		r := v * mw
		en := v * n
		nw0 := adj[r] &^ lab0
		lab0 |= nw0
		for ; nw0 != 0; nw0 &= nw0 - 1 {
			w := bits.TrailingZeros64(nw0)
			prevNE[w] = int64(edgeOf[en+w])<<32 | vLow
			if w == dst {
				a.queue = q
				return true, depth + 1
			}
			q = append(q, int32(w))
		}
		nw1 := adj[r+1] &^ lab1
		lab1 |= nw1
		for ; nw1 != 0; nw1 &= nw1 - 1 {
			w := 64 + bits.TrailingZeros64(nw1)
			prevNE[w] = int64(edgeOf[en+w])<<32 | vLow
			if w == dst {
				a.queue = q
				return true, depth + 1
			}
			q = append(q, int32(w))
		}
		nw2 := adj[r+2] &^ lab2
		lab2 |= nw2
		for ; nw2 != 0; nw2 &= nw2 - 1 {
			w := 128 + bits.TrailingZeros64(nw2)
			prevNE[w] = int64(edgeOf[en+w])<<32 | vLow
			if w == dst {
				a.queue = q
				return true, depth + 1
			}
			q = append(q, int32(w))
		}
		nw3 := adj[r+3] &^ lab3
		lab3 |= nw3
		for ; nw3 != 0; nw3 &= nw3 - 1 {
			w := 192 + bits.TrailingZeros64(nw3)
			prevNE[w] = int64(edgeOf[en+w])<<32 | vLow
			if w == dst {
				a.queue = q
				return true, depth + 1
			}
			q = append(q, int32(w))
		}
	}
	a.queue = q
	lab := a.labeledW[:mw]
	lab[0], lab[1], lab[2], lab[3] = lab0, lab1, lab2, lab3
	a.recordCutMaskW(lab)
	a.stat.claimCut++
	return false, 0
}

// searchBounded reports whether dst is currently reachable from src over
// positive-residual edges and, if so, the exact minimum hop count. It is a
// pure query: levels go into private arrays, so the probe memo rows of both
// endpoints survive untouched; only the doomed-word books are enriched when
// a side exhausts. Mask paths only.
func (a *Allocator) searchBounded(src, dst int) (bool, int) {
	if a.cutHit(src, dst) {
		return false, 0
	}
	a.stat.bidi++
	if a.wide {
		return a.searchBoundedWd(src, dst)
	}
	return a.searchBounded1(src, dst)
}

// searchBounded1 is the single-word (n <= 64) bidirectional sweep: both
// visited sets and frontiers live in registers.
func (a *Allocator) searchBounded1(src, dst int) (bool, int) {
	adj := a.liveAdj
	a.bGen++
	genS := int64(a.bGen)
	a.bGen++
	genD := int64(a.bGen)
	lvS, lvD := a.bLvS, a.bLvD
	lvS[src] = genS << 32
	lvD[dst] = genD << 32
	visS := uint64(1) << uint(src)
	visD := uint64(1) << uint(dst)
	frS, frD := visS, visD
	dS, dD := 0, 0
	for {
		if bits.OnesCount64(frS) <= bits.OnesCount64(frD) {
			var nf uint64
			for m := frS; m != 0; m &= m - 1 {
				nf |= adj[bits.TrailingZeros64(m)]
			}
			nf &^= visS
			dS++
			lv := genS<<32 | int64(dS)
			for m := nf; m != 0; m &= m - 1 {
				lvS[bits.TrailingZeros64(m)] = lv
			}
			if mm := nf & visD; mm != 0 {
				best := math.MaxInt
				for ; mm != 0; mm &= mm - 1 {
					w := bits.TrailingZeros64(mm)
					if lvD[w]>>32 == genD {
						if c := dS + int(int32(lvD[w])); c < best {
							best = c
						}
					}
				}
				a.stat.bidiMeetS++
				return true, best
			}
			if nf == 0 {
				a.recordCutMask(visS)
				a.stat.bidiExhaustS++
				return false, 0
			}
			visS |= nf
			frS = nf
		} else {
			var nf uint64
			for m := frD; m != 0; m &= m - 1 {
				nf |= adj[bits.TrailingZeros64(m)]
			}
			nf &^= visD
			dD++
			lv := genD<<32 | int64(dD)
			for m := nf; m != 0; m &= m - 1 {
				lvD[bits.TrailingZeros64(m)] = lv
			}
			if mm := nf & visS; mm != 0 {
				best := math.MaxInt
				for ; mm != 0; mm &= mm - 1 {
					w := bits.TrailingZeros64(mm)
					if lvS[w]>>32 == genS {
						if c := dD + int(int32(lvS[w])); c < best {
							best = c
						}
					}
				}
				a.stat.bidiMeetD++
				return true, best
			}
			if nf == 0 {
				a.recordCutMask(visD)
				a.doomed[src] |= visD // src sits outside dst's component for good
				a.stat.bidiExhaustD++
				return false, 0
			}
			visD |= nf
			frD = nf
		}
	}
}

// searchBoundedWd is the multi-word twin of searchBounded1, with the same
// sparse-list/word-sweep frontier enumeration as resumeStampWd.
func (a *Allocator) searchBoundedWd(src, dst int) (bool, int) {
	mw := a.mw
	adj := a.liveAdjW
	visS := a.bVisS[:mw]
	visD := a.bVisD[:mw]
	frS := a.bFrS[:mw]
	frD := a.bFrD[:mw]
	nf := a.bNext[:mw]
	clear(visS)
	clear(visD)
	clear(frS)
	clear(frD)
	a.bGen++
	genS := int64(a.bGen)
	a.bGen++
	genD := int64(a.bGen)
	lvS, lvD := a.bLvS, a.bLvD
	lvS[src] = genS << 32
	lvD[dst] = genD << 32
	visS[src>>6] = 1 << uint(src&63)
	visD[dst>>6] = 1 << uint(dst&63)
	frS[src>>6] = 1 << uint(src&63)
	frD[dst>>6] = 1 << uint(dst&63)
	idsS := append(a.bIDsS[:0], int32(src))
	idsD := append(a.bIDsD[:0], int32(dst))
	cntS, cntD := 1, 1
	dS, dD := 0, 0
	for {
		fromS := cntS <= cntD
		fr, vis, ovis, ids, cnt := frD, visD, visS, idsD, cntD
		lv, olv := lvD, lvS
		ogen := genS
		if fromS {
			fr, vis, ovis, ids, cnt = frS, visS, visD, idsS, cntS
			lv, olv = lvS, lvD
			ogen = genD
		}
		clear(nf)
		if cnt <= bSparse {
			for _, v := range ids {
				row := adj[int(v)*mw : int(v)*mw+mw]
				for wi := range nf {
					nf[wi] |= row[wi]
				}
			}
		} else {
			for wi2, fw := range fr {
				base := wi2 << 6
				for m := fw; m != 0; m &= m - 1 {
					v := base + bits.TrailingZeros64(m)
					row := adj[v*mw : v*mw+mw]
					for wi := range nf {
						nf[wi] |= row[wi]
					}
				}
			}
		}
		var depth int
		if fromS {
			dS++
			depth = dS
		} else {
			dD++
			depth = dD
		}
		sd := int64(genD)<<32 | int64(depth)
		if fromS {
			sd = int64(genS)<<32 | int64(depth)
		}
		cnt = 0
		ids = ids[:0]
		best := math.MaxInt
		for wi := range nf {
			nw := nf[wi] &^ vis[wi]
			nf[wi] = nw
			if nw == 0 {
				continue
			}
			vis[wi] |= nw
			base := wi << 6
			cnt += bits.OnesCount64(nw)
			for m := nw; m != 0; m &= m - 1 {
				w := base + bits.TrailingZeros64(m)
				lv[w] = sd
				ids = append(ids, int32(w))
			}
			for mm := nw & ovis[wi]; mm != 0; mm &= mm - 1 {
				w := base + bits.TrailingZeros64(mm)
				if olv[w]>>32 == ogen {
					if c := depth + int(int32(olv[w])); c < best {
						best = c
					}
				}
			}
		}
		if best != math.MaxInt {
			a.bIDsS, a.bIDsD = idsS[:0], idsD[:0]
			if fromS {
				a.stat.bidiMeetS++
			} else {
				a.stat.bidiMeetD++
			}
			return true, best
		}
		if cnt == 0 {
			if fromS {
				a.recordCutMaskW(visS)
				a.stat.bidiExhaustS++
			} else {
				a.recordCutMaskW(visD)
				row := a.doomedW[src*mw : src*mw+mw]
				for wi := range row {
					row[wi] |= visD[wi] // src sits outside dst's component for good
				}
				a.stat.bidiExhaustD++
			}
			a.bIDsS, a.bIDsD = idsS[:0], idsD[:0]
			return false, 0
		}
		if fromS {
			frS, nf = nf, frS
			idsS, cntS = ids, cnt
		} else {
			frD, nf = nf, frD
			idsD, cntD = ids, cnt
		}
	}
}
