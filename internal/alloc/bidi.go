package alloc

import (
	"math"
	"math/bits"
)

// Frontier-compacted and bidirectional searches (mask paths only; the scalar
// fallback keeps the canonical single-engine flow).
//
// The tiered greedy loop asks three kinds of question, and only one of them
// needs a shortest-path TREE: claiming a path. The other two — "is dst
// reachable at all?" and "is dst within this tier's hop budget?" — need just
// a hop distance, and profiling the ISP200 energy case shows they dominate:
// per evaluation roughly 280 searches end in a deferral and 30 in a failure,
// against 75 claims. The canonical BFS pays prevNode/prevEdge stores, edgeOf
// lookups and usedBy bookkeeping for every label — all of it thrown away
// when the verdict is "too far, come back at tier 16". Worse, the canonical
// engine re-walks a source's component from scratch every time a claim
// overwrote its memo row, and on ISP-class residuals a component sweep is
// expensive precisely because the graph is path-like: components run ~95% of
// the sites and diameters reach the 30s.
//
// Three engines split the work; runLoaded picks between them on two signals,
// whether probe() already holds a memo row for the source and whether the
// row's bound is decayed (older than the tier asking):
//
//   - resumeStamp (no bound for dst yet): a forward level-synchronous sweep
//     over the live-adjacency bitmaps that writes exactly one word per label
//     — the generation-stamped hop count — and SUSPENDS the moment dst is
//     labeled, keeping its visited set, frontier and level in per-source
//     rows (sVis/sFront/sLevel). The next probe miss from the same source
//     RESUMES where the sweep stopped instead of restarting, so one source
//     pays each BFS level at most once per load however many demands and
//     tiers query it; a source whose demands finish early never pays for the
//     deep tail of its component. Per level the sweep only touches words
//     containing frontier bits: members come from the compact id list the
//     previous level collected while it holds at most bSparse nodes, and
//     from a word-masked scan of the frontier bitmap otherwise (after a
//     suspension the id list is gone, so the first resumed level always
//     takes the word-masked path — the bitmap is the persistent form).
//
//     Resumed levels mix ages: earlier levels saw residuals that takes have
//     since thinned. The stamps are still sound LOWER bounds, which is
//     exactly probe()'s contract: edges only ever leave the residual graph,
//     so for any current path src=p0..pk the adjacency (p(i-1), p(i)) held
//     at every earlier moment too, and level-synchronous expansion therefore
//     stamped each p(i) no later than level i — stamp(dst) <= current
//     distance. Deferring a demand to tier stamp(dst) just re-examines it
//     early, where the claim search repeats the comparison exactly; a
//     frontier that empties proves the visited set is src's complete current
//     component (unreachability is permanent), recorded as a failure cut.
//
//   - claimSearch (bound fits the tier): a stealth forward BFS that labels
//     through a bitmap and writes ONLY the prevNode/prevEdge chains, leaving
//     rowGen, the stamps, probeFull and the rowLive/usedBy books untouched —
//     claiming no longer destroys the source's resumable row, which is what
//     forced the canonical engine's re-sweeps. Its FIFO order and ascending-
//     bit labeling are the canonical scan order, so the chain it leaves for
//     bottleneck/take is bit-identical to the canonical engine's, and its
//     exact current distance either confirms the claim or yields the exact
//     deferral tier.
//
//   - searchBounded (bound present but decayed — stamped at an earlier tier
//     than is asking): a bidirectional meet-in-the-middle sweep over the
//     same bitmaps, growing the smaller frontier each round (the residual
//     graph is undirected, so the reverse adjacency IS liveAdj). It writes
//     its levels into private generation-stamped arrays, preserving
//     whatever rows probe is still serving bounds from, and settles
//     "distance grew past this tier" and "no longer reachable" verdicts
//     without paying for prev chains: two balls of radius ~d/2 instead of
//     one of radius d, and on failure the smaller exhausted side is the
//     failure cut. On path-like ISP residuals (frontiers average ~3 nodes,
//     ball volume grows linearly with radius) that is NOT a quadratic win —
//     which is why it is reserved for decayed-bound re-verification rather
//     than used as the primary engine (measured numbers in DESIGN.md §9).
//
// Why the answers are exactly the canonical ones:
//
//   - Reachability is connectivity in the positive-residual graph.
//     resumeStamp walks it to exhaustion before reporting failure, and the
//     bidirectional sweep until a side exhausts — identical by definition.
//     On failure the exhausted side's visited set is a complete component
//     whose outgoing edges are all saturated, i.e. precisely the failure cut
//     the canonical search would record, so the doomed-word memo composes
//     unchanged; when the dst side exhausts first, src additionally learns
//     it can never reach any member of dst's component.
//
//   - Deferral tiers stay conservative and claims stay exact. resumeStamp's
//     lower bounds can re-examine a demand earlier than the canonical flow
//     would (never later), where claimSearch's exact current distance makes
//     the same claim-or-defer decision the canonical search would make; the
//     bidirectional distance is exact outright. For the latter the invariant
//     is: after a round, each side has labeled exactly the nodes within its
//     completed radius (rS resp. rD), with exact levels. A meet found while
//     expanding, say, the src side to radius rS+1 has candidate cost
//     c = rS+1+levD(w) <= rS+1+rD, and the minimum candidate of the round
//     equals the true distance d: if d < min(c), pick the node u on a
//     shortest path with levS(u) = min(rS+1, d). Either u = dst, which the
//     src side labeled — but dst is a member of the dst side's visited set
//     from initialization, so that labeling was itself a meet of cost d in
//     this round; or levD(u) = d-rS-1 < rD+1, so u was labeled by both
//     sides in earlier rounds, and whichever side labeled u second saw the
//     meet then and returned. Both contradict d < min(c).
//
//   - Claimed paths are bit-identical. claimSearch builds prev chains on the
//     current residuals in the canonical scan order, and what it builds is
//     identical to the tree the canonical flow would have claimed from
//     (whether memoized or freshly searched): a live memo tree differs from
//     a fresh search only by edges that saturated since it was built, and
//     those are all non-tree edges — edges a BFS skipped because their head
//     was already labeled earlier in scan order, whose removal changes
//     neither labels, order, nor parents (the same argument that makes the
//     rowLive memo exact in the first place). Since PR 9 the claim engines
//     additionally PERSIST the tree they build and repair it across takes
//     instead of rebuilding per call — see the claim-repair comment above
//     claimSearch for why the reused answers are the fresh ones bit for bit.
//
// The resumable rows carry no prev chains, so the source's rowLive bit is
// cleared when one is started: probe may read the stamps, the claim-capable
// head of shortestResidual may not.
const bSparse = 64

// engineStats counts engine events at call granularity — increments live at
// function entries, returns, and one per-call mode summary, never inside a
// member loop — so the differential harnesses can assert the paths they mean
// to force (bidirectional meets from either side, exhaustion early-outs,
// sparse/dense frontier enumeration crossings) actually ran. A few hundred
// increments per evaluation; cumulative across loads, reset only by tests.
type engineStats struct {
	resume        uint64 // resumeStamp calls
	resumeExhaust uint64 // sweeps that ran the component dry (failure cut)
	resumeBound   uint64 // free truncation-bound answers (no expansion)
	claim         uint64 // claimSearch calls
	claimCut      uint64 // claim searches that exhausted (failure cut)
	claimFast     uint64 // claims answered from a stored chain, no search
	claimRepair   uint64 // tree resumes above a saturated tree edge
	claimResume   uint64 // tree extensions past the stored levels
	bidi          uint64 // searchBounded calls
	bidiMeetS     uint64 // meets detected while expanding the src side
	bidiMeetD     uint64 // meets detected while expanding the dst side
	bidiExhaustS  uint64 // src side exhausted first
	bidiExhaustD  uint64 // dst side exhausted first
	sweepSparse   uint64 // resumeStampWd calls with >=1 sparse-list level
	sweepDense    uint64 // resumeStampWd calls with >=1 word-swept level
	sweepMixed    uint64 // calls that crossed the bSparse threshold
}

// noteSweep folds one resumeStampWd call's per-level enumeration modes into
// the sweep counters. crossed reports that the sweep crossed the bSparse
// threshold — between two levels of this call, or between the persisted
// entry mode and the frontier the call left behind (tier-truncated sweeps
// mostly advance one level per call, so the crossing usually straddles a
// suspension).
func (a *Allocator) noteSweep(usedSparse, usedDense, crossed bool) {
	if usedSparse {
		a.stat.sweepSparse++
	}
	if usedDense {
		a.stat.sweepDense++
	}
	if crossed {
		a.stat.sweepMixed++
	}
}

// suspendSparse persists a suspended frontier's compact id list when it is
// small enough to re-enter sparse enumeration on the next resume, and
// invalidates the slot otherwise. The slot is stamped with the row's
// generation, so a row that is later reinitialized (new load, gen wrap)
// can never resurrect a stale list.
func (a *Allocator) suspendSparse(src, cnt int, ids []int32) {
	if cnt > 0 && cnt <= bSparse {
		copy(a.sFrIDs[src*bSparse:], ids)
		a.sFrCnt[src] = int32(cnt)
		a.sFrGen[src] = a.rowGen[src]
		return
	}
	a.sFrCnt[src] = 0
}

// resumeStamp answers "at how many hops, at least, is dst?" from src's
// resumable sweep row, starting one if the source has none this load and
// advancing it only as far as dst or the asking tier, whichever comes
// first. It reports unreachability exactly (the
// sweep ran the component to exhaustion) and otherwise a sound lower bound
// on the current hop count — exact at the moment dst's level was stamped.
// Two zero-expansion exits: a dst the row already stamped answers from the
// stamp, and a row whose completed levels already exceed the asking tier l
// answers sLevel+1 without expanding at all — a level-synchronous sweep
// truncated at level L stamps every node a current path of length <= L
// reaches (the same induction that makes the stamps lower bounds), so an
// unstamped dst satisfies d(src,dst) >= L+1.
func (a *Allocator) resumeStamp(src, dst, l int) (bool, int) {
	if a.cutHit(src, dst) {
		return false, 0
	}
	a.stat.resume++
	if a.wide {
		if a.mw == 4 {
			return a.resumeStamp4(src, dst, l)
		}
		return a.resumeStampWd(src, dst, l)
	}
	return a.resumeStamp1(src, dst, l)
}

// resumeStamp1 is the single-word (n <= 64) resumable sweep: the visited set
// and frontier are single machine words in the per-source rows.
func (a *Allocator) resumeStamp1(src, dst, l int) (bool, int) {
	adj := a.liveAdj
	n := a.n
	sd := a.stampDist[src*n : src*n+n]
	if a.rowGen[src] <= a.loadGen {
		a.gen++
		a.rowGen[src] = a.gen
		a.rowLive &^= 1 << uint(src) // stamps without prev chains
		a.probeFull[src] = false
		sd[src] = int64(a.gen) << 32
		a.sVis[src] = 1 << uint(src)
		a.sFront[src] = 1 << uint(src)
		a.sLevel[src] = 0
	}
	vis := a.sVis[src]
	if vis>>uint(dst)&1 == 1 {
		return true, int(int32(sd[dst]))
	}
	d := int64(a.sLevel[src])
	if int(d) >= l {
		a.stat.resumeBound++
		return true, int(d) + 1 // dst lies beyond every completed level
	}
	gen := int64(a.rowGen[src])
	fr := a.sFront[src]
	for {
		var nf uint64
		for m := fr; m != 0; m &= m - 1 {
			nf |= adj[bits.TrailingZeros64(m)]
		}
		nf &^= vis
		d++
		lv := gen<<32 | d
		for m := nf; m != 0; m &= m - 1 {
			sd[bits.TrailingZeros64(m)] = lv
		}
		vis |= nf
		fr = nf
		if vis>>uint(dst)&1 == 1 {
			a.sVis[src], a.sFront[src], a.sLevel[src] = vis, fr, int32(d)
			return true, int(d)
		}
		if nf == 0 {
			a.sVis[src], a.sFront[src], a.sLevel[src] = vis, fr, int32(d)
			a.probeFull[src] = true
			a.recordCutMask(vis)
			a.stat.resumeExhaust++
			return false, 0
		}
		if int(d) >= l {
			// The asking tier is answered: dst is beyond every completed
			// level, so d(src,dst) >= d+1 > l. Suspend here instead of
			// sweeping on to dst — the caller defers the demand to tier d+1,
			// where the next resume picks up from this frontier, so no level
			// is ever expanded twice and levels beyond the deferral tier are
			// paid only if a demand actually asks for them.
			a.sVis[src], a.sFront[src], a.sLevel[src] = vis, fr, int32(d)
			a.stat.resumeBound++
			return true, int(d) + 1
		}
	}
}

// resumeStampWd is the multi-word twin of resumeStamp1. Frontier members are
// enumerated from the compact id list collected by the previous level while
// it holds at most bSparse nodes, and by sweeping the frontier bitmap's
// words otherwise. The id list survives suspensions: a sweep that suspends
// on a sparse frontier persists the list next to the bitmap (suspendSparse),
// so the next resume re-enters sparse enumeration directly instead of
// paying a word sweep to rediscover what the last level already collected.
func (a *Allocator) resumeStampWd(src, dst, l int) (bool, int) {
	mw, n := a.mw, a.n
	adj := a.liveAdjW
	vis := a.sVis[src*mw : src*mw+mw]
	fr := a.sFront[src*mw : src*mw+mw]
	sd := a.stampDist[src*n : src*n+n]
	if a.rowGen[src] <= a.loadGen {
		a.gen++
		a.rowGen[src] = a.gen
		a.rowLiveW[src>>6] &^= 1 << uint(src&63) // stamps without prev chains
		a.probeFull[src] = false
		sd[src] = int64(a.gen) << 32
		clear(vis)
		clear(fr)
		vis[src>>6] = 1 << uint(src&63)
		fr[src>>6] = 1 << uint(src&63)
		a.sLevel[src] = 0
	}
	dw, db := dst>>6, uint(dst&63)
	if vis[dw]>>db&1 == 1 {
		return true, int(int32(sd[dst]))
	}
	d := int64(a.sLevel[src])
	if int(d) >= l {
		a.stat.resumeBound++
		return true, int(d) + 1 // dst lies beyond every completed level
	}
	gen := int64(a.rowGen[src])
	nf := a.bNext[:mw]
	ids := a.bIDsS[:0]
	sparse := false
	if c := a.sFrCnt[src]; c > 0 && a.sFrGen[src] == a.rowGen[src] {
		ids = append(ids, a.sFrIDs[src*bSparse:src*bSparse+int(c)]...)
		sparse = true
	}
	usedSparse, usedDense := false, false
	crossed := false
	for {
		clear(nf)
		if sparse {
			usedSparse = true
			for _, v := range ids {
				row := adj[int(v)*mw : int(v)*mw+mw]
				for wi := range nf {
					nf[wi] |= row[wi]
				}
			}
		} else {
			usedDense = true
			for wi2, fw := range fr {
				base := wi2 << 6
				for m := fw; m != 0; m &= m - 1 {
					v := base + bits.TrailingZeros64(m)
					row := adj[v*mw : v*mw+mw]
					for wi := range nf {
						nf[wi] |= row[wi]
					}
				}
			}
		}
		d++
		lv := gen<<32 | d
		cnt := 0
		ids = ids[:0]
		for wi := range nf {
			nw := nf[wi] &^ vis[wi]
			nf[wi] = nw
			if nw == 0 {
				continue
			}
			vis[wi] |= nw
			base := wi << 6
			cnt += bits.OnesCount64(nw)
			for m := nw; m != 0; m &= m - 1 {
				w := base + bits.TrailingZeros64(m)
				sd[w] = lv
				ids = append(ids, int32(w))
			}
		}
		copy(fr, nf)
		a.sLevel[src] = int32(d)
		if cnt > 0 && (cnt <= bSparse) != sparse {
			crossed = true
		}
		sparse = cnt <= bSparse
		if vis[dw]>>db&1 == 1 {
			a.suspendSparse(src, cnt, ids)
			a.bIDsS = ids[:0]
			a.noteSweep(usedSparse, usedDense, crossed)
			return true, int(d)
		}
		if cnt == 0 {
			a.sFrCnt[src] = 0
			a.bIDsS = ids[:0]
			a.probeFull[src] = true
			a.recordCutMaskW(vis)
			a.noteSweep(usedSparse, usedDense, crossed)
			a.stat.resumeExhaust++
			return false, 0
		}
		if int(d) >= l {
			// Tier answered (see resumeStamp1): suspend rather than sweep on.
			a.suspendSparse(src, cnt, ids)
			a.bIDsS = ids[:0]
			a.noteSweep(usedSparse, usedDense, crossed)
			a.stat.resumeBound++
			return true, int(d) + 1
		}
	}
}

// resumeStamp4 is resumeStampWd specialized to mw == 4 (129–256 sites, the
// ISP100/ISP200-class benchmark range): the visited, frontier and next-level
// bitmaps fit in four registers each, so a level costs no clears, no id-list
// maintenance and no bounds-checked accumulator stores — the frontier words
// themselves are the compact representation — and the stamp and expansion
// passes are fused, so each new label is enumerated once: stamping a node
// and folding its adjacency row into the next level's raw union happen under
// a single TrailingZeros scan. Identical labeling and results; only
// wall-clock differs.
func (a *Allocator) resumeStamp4(src, dst, l int) (bool, int) {
	const mw = 4
	n := a.n
	adj := a.liveAdjW
	svis := a.sVis[src*mw : src*mw+mw]
	sfr := a.sFront[src*mw : src*mw+mw]
	sd := a.stampDist[src*n : src*n+n]
	if a.rowGen[src] <= a.loadGen {
		a.gen++
		a.rowGen[src] = a.gen
		a.rowLiveW[src>>6] &^= 1 << uint(src&63) // stamps without prev chains
		a.probeFull[src] = false
		sd[src] = int64(a.gen) << 32
		svis[0], svis[1], svis[2], svis[3] = 0, 0, 0, 0
		sfr[0], sfr[1], sfr[2], sfr[3] = 0, 0, 0, 0
		svis[src>>6] = 1 << uint(src&63)
		sfr[src>>6] = 1 << uint(src&63)
		a.sLevel[src] = 0
	}
	dw, db := dst>>6, uint(dst&63)
	if svis[dw]>>db&1 == 1 {
		return true, int(int32(sd[dst]))
	}
	d := int64(a.sLevel[src])
	if int(d) >= l {
		a.stat.resumeBound++
		return true, int(d) + 1 // dst lies beyond every completed level
	}
	gen := int64(a.rowGen[src])
	vis0, vis1, vis2, vis3 := svis[0], svis[1], svis[2], svis[3]
	// Seed the raw neighbor union of the stored frontier (its members are
	// already stamped; only their expansion is pending).
	var nf0, nf1, nf2, nf3 uint64
	for m := sfr[0]; m != 0; m &= m - 1 {
		r := bits.TrailingZeros64(m) * mw
		nf0 |= adj[r]
		nf1 |= adj[r+1]
		nf2 |= adj[r+2]
		nf3 |= adj[r+3]
	}
	for m := sfr[1]; m != 0; m &= m - 1 {
		r := (64 + bits.TrailingZeros64(m)) * mw
		nf0 |= adj[r]
		nf1 |= adj[r+1]
		nf2 |= adj[r+2]
		nf3 |= adj[r+3]
	}
	for m := sfr[2]; m != 0; m &= m - 1 {
		r := (128 + bits.TrailingZeros64(m)) * mw
		nf0 |= adj[r]
		nf1 |= adj[r+1]
		nf2 |= adj[r+2]
		nf3 |= adj[r+3]
	}
	for m := sfr[3]; m != 0; m &= m - 1 {
		r := (192 + bits.TrailingZeros64(m)) * mw
		nf0 |= adj[r]
		nf1 |= adj[r+1]
		nf2 |= adj[r+2]
		nf3 |= adj[r+3]
	}
	for {
		cur0 := nf0 &^ vis0
		cur1 := nf1 &^ vis1
		cur2 := nf2 &^ vis2
		cur3 := nf3 &^ vis3
		if cur0|cur1|cur2|cur3 == 0 {
			// Frontier exhausted: svis is src's complete current component.
			svis[0], svis[1], svis[2], svis[3] = vis0, vis1, vis2, vis3
			sfr[0], sfr[1], sfr[2], sfr[3] = 0, 0, 0, 0
			a.sLevel[src] = int32(d)
			a.probeFull[src] = true
			a.recordCutMaskW(svis)
			a.stat.resumeExhaust++
			return false, 0
		}
		d++
		lv := gen<<32 | d
		vis0 |= cur0
		vis1 |= cur1
		vis2 |= cur2
		vis3 |= cur3
		var curDst uint64
		switch dw {
		case 0:
			curDst = cur0
		case 1:
			curDst = cur1
		case 2:
			curDst = cur2
		default:
			curDst = cur3
		}
		hit := curDst>>db&1 == 1
		if hit || int(d) >= l {
			// Suspension exit — dst labels in this level, or the asking tier
			// is answered (dst beyond every completed level, so d(src,dst)
			// >= d+1 > l; see resumeStamp1). Either way the level is stamped
			// WITHOUT expanding: the raw neighbor union is discarded on
			// return — the stored frontier is cur itself, and the next
			// resume re-derives the union from it — so this level's
			// adjacency ORs would be pure waste, and on small-diameter
			// graphs the last level is most of the component.
			for m := cur0; m != 0; m &= m - 1 {
				sd[bits.TrailingZeros64(m)] = lv
			}
			for m := cur1; m != 0; m &= m - 1 {
				sd[64+bits.TrailingZeros64(m)] = lv
			}
			for m := cur2; m != 0; m &= m - 1 {
				sd[128+bits.TrailingZeros64(m)] = lv
			}
			for m := cur3; m != 0; m &= m - 1 {
				sd[192+bits.TrailingZeros64(m)] = lv
			}
			svis[0], svis[1], svis[2], svis[3] = vis0, vis1, vis2, vis3
			sfr[0], sfr[1], sfr[2], sfr[3] = cur0, cur1, cur2, cur3
			a.sLevel[src] = int32(d)
			if hit {
				return true, int(d)
			}
			a.stat.resumeBound++
			return true, int(d) + 1
		}
		nf0, nf1, nf2, nf3 = 0, 0, 0, 0
		for m := cur0; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			sd[w] = lv
			r := w * mw
			nf0 |= adj[r]
			nf1 |= adj[r+1]
			nf2 |= adj[r+2]
			nf3 |= adj[r+3]
		}
		for m := cur1; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			sd[64+w] = lv
			r := (64 + w) * mw
			nf0 |= adj[r]
			nf1 |= adj[r+1]
			nf2 |= adj[r+2]
			nf3 |= adj[r+3]
		}
		for m := cur2; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			sd[128+w] = lv
			r := (128 + w) * mw
			nf0 |= adj[r]
			nf1 |= adj[r+1]
			nf2 |= adj[r+2]
			nf3 |= adj[r+3]
		}
		for m := cur3; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			sd[192+w] = lv
			r := (192 + w) * mw
			nf0 |= adj[r]
			nf1 |= adj[r+1]
			nf2 |= adj[r+2]
			nf3 |= adj[r+3]
		}
	}
}

// claimSearch is the stealth claiming BFS: it writes dst's prevNode/prevEdge
// chain (the only state bottleneck/take read) and reports the exact current
// hop count, touching neither the stamps nor any memo book — the source's
// resumable row survives the claim. Scan order is canonical, so the chain is
// bit-identical to the one shortestResidual would leave.
//
// Claim-tree repair. Each search persists the tree it builds — the labeling
// order (cQueue), the level boundaries (cEnds), the labeled bitmap
// (cVis/cVisW) and the last complete level (cDepth) — so later claims from
// the same source reuse it instead of starting over:
//
//   - Chain fast path: if the stored tree labeled dst and every edge of
//     dst's stored prev chain still has positive residual, the chain IS the
//     answer — no search at all. Capacities only decrease within a run, so
//     live-now means the chain avoided every saturation since the tree was
//     built; such a chain is preserved verbatim by a fresh search (any
//     competitor for a clean node's parent sat at the same level before the
//     deletions — neighbor levels are within one hop and levels never
//     decrease when edges leave — so the lex-minimal parent, itself clean by
//     induction up the chain, stays the minimum), and its length is dst's
//     exact current hop count. This is also what makes same-source demand
//     batches cheap: every demand sharing the source rides one stored tree
//     until a take actually cuts the chain it needs.
//
//   - Subtree repair: otherwise the queue prefix up to the level ABOVE the
//     shallowest saturated tree edge is still exactly what a fresh search
//     would produce (levels, membership, order and parents — the same
//     argument as above applied level by level), so the search resumes by
//     re-expanding that level's stored frontier rather than from src. Only
//     the subtree hanging below the saturated edge — plus whatever shared
//     its levels — is rebuilt.
//
//   - Extension: a tree whose chains are all intact but which stopped (an
//     early exit at a shallower dst) before reaching this dst resumes from
//     its last complete level, paying only the levels it never built.
//
// A saturated NON-tree edge triggers none of this — the resume-point scan
// checks exactly the stored prev edges, which is the rowLive/usedBy
// criterion applied lazily at claim time instead of eagerly at take time.
// Validity rides on cGen (a tree is live iff cGen[src] > loadGen), and
// every claim this engine answers — fast path, repaired, resumed or cold —
// is bit-identical to a from-scratch claimSearch, which the claim-repair
// differential suite asserts over 300 seeds with the reuse knob flipped.
func (a *Allocator) claimSearch(src, dst int) (bool, int) {
	if a.cutHit(src, dst) {
		return false, 0
	}
	a.stat.claim++
	F := 0
	if !a.noClaimReuse && a.cGen[src] > a.loadGen {
		if ok, hops := a.claimFastPath(src, dst); ok {
			a.stat.claimFast++
			return true, hops
		}
		F = a.claimResumePoint(src)
		if F < int(a.cDepth[src]) {
			a.stat.claimRepair++
		} else {
			a.stat.claimResume++
		}
	} else {
		// Cold build: seed the stored tree with its level 0.
		a.cQueue[src*a.n] = int32(src)
		a.cEnds[src*(a.n+1)] = 1
	}
	if a.wide {
		if a.mw == 4 {
			return a.claimSearch4(src, dst, F)
		}
		return a.claimSearchWd(src, dst, F)
	}
	return a.claimSearch1(src, dst, F)
}

// claimFastPath answers a claim from src's stored tree when dst is labeled
// there and its stored prev chain is fully live (every edge above resEps —
// the criterion under which claimSearch documents the chain is exactly what
// a fresh search would claim). The walk doubles as the hop count.
func (a *Allocator) claimFastPath(src, dst int) (bool, int) {
	if a.wide {
		if a.cVisW[src*a.mw+dst>>6]>>uint(dst&63)&1 == 0 {
			return false, 0
		}
	} else if a.cVis[src]>>uint(dst)&1 == 0 {
		return false, 0
	}
	caps := a.caps
	prevNE := a.prevNE[src*a.n : src*a.n+a.n]
	hops := 0
	for v := int32(dst); int(v) != src; {
		pv := prevNE[v]
		if caps[int32(pv>>32)] <= resEps {
			return false, 0
		}
		v = int32(pv)
		hops++
	}
	return true, hops
}

// claimResumePoint scans src's stored labeling order — which is level order
// — for the first node whose stored prev edge has saturated, and returns the
// level above it: the deepest level at which the stored tree is still
// guaranteed to match a fresh search node for node (levels strictly above
// the shallowest dirty node are preserved verbatim by edge deletions; see
// claimSearch). A node whose whole chain is dirty but whose own prev edge is
// live is caught through its ancestor, which sits earlier in the scan. With
// no dirty node the stored tree stands in full and the search just extends
// it from its last complete level. Nodes of the partial level beyond cDepth
// are not scanned: any resume re-derives them anyway.
func (a *Allocator) claimResumePoint(src int) int {
	n := a.n
	caps := a.caps
	prevNE := a.prevNE[src*n : src*n+n]
	cq := a.cQueue[src*n : src*n+n]
	ce := a.cEnds[src*(n+1) : src*(n+1)+n+1]
	depth := int(a.cDepth[src])
	d := 1
	for i := 1; i < int(ce[depth]); i++ {
		if i == int(ce[d]) {
			d++
		}
		if caps[int32(prevNE[cq[i]]>>32)] <= resEps {
			return d - 1
		}
	}
	return depth
}

// claimSearch1 is the single-word (n <= 64) stealth claim search, resuming
// from level F of src's stored tree (F = 0 is a cold build; the dispatcher
// seeds queue[0] and ends[0]). The kept queue prefix IS the canonical
// labeling order up to level F; labels are rebuilt from it, so discarded
// deeper levels leave no trace, and the queue grows in place in the stored
// per-source row — suspending the tree costs only the bitmap, depth and gen
// stores at the exits.
func (a *Allocator) claimSearch1(src, dst, F int) (bool, int) {
	adj := a.liveAdj
	n := a.n
	edgeOf := a.edgeOf
	prevNE := a.prevNE[src*n : src*n+n]
	ce := a.cEnds[src*(n+1) : src*(n+1)+n+1]
	cq := a.cQueue[src*n : src*n+n : src*n+n]
	q := cq[:ce[F]]
	var labeled uint64
	for _, v := range q {
		labeled |= 1 << uint(v)
	}
	head := 0
	if F > 0 {
		head = int(ce[F-1])
	}
	depth := F
	levelEnd := len(q)
	for ; head < len(q); head++ {
		if head == levelEnd {
			depth++
			levelEnd = len(q)
			ce[depth] = int32(levelEnd)
		}
		v := q[head]
		vLow := int64(v)
		nw := adj[v] &^ labeled
		labeled |= nw
		for ; nw != 0; nw &= nw - 1 {
			w := int32(bits.TrailingZeros64(nw))
			prevNE[w] = int64(edgeOf[int(v)*n+int(w)])<<32 | vLow
			if int(w) == dst {
				// Bits of nw above dst were OR'd into labeled but never
				// given prev entries; the stored bitmap must not claim
				// them (the fast path walks prev chains on its say-so).
				a.cVis[src] = labeled &^ (nw & (nw - 1))
				a.cDepth[src] = int32(depth)
				a.cGen[src] = a.gen
				return true, depth + 1
			}
			q = append(q, w)
		}
	}
	a.cVis[src] = labeled
	a.cDepth[src] = int32(depth)
	a.cGen[src] = a.gen
	a.recordCutMask(labeled)
	a.stat.claimCut++
	return false, 0
}

// claimSearchWd is the multi-word twin of claimSearch1.
func (a *Allocator) claimSearchWd(src, dst, F int) (bool, int) {
	mw, n := a.mw, a.n
	edgeOf := a.edgeOf
	lab := a.labeledW[:mw]
	clear(lab)
	prevNE := a.prevNE[src*n : src*n+n]
	ce := a.cEnds[src*(n+1) : src*(n+1)+n+1]
	cq := a.cQueue[src*n : src*n+n : src*n+n]
	q := cq[:ce[F]]
	for _, v := range q {
		lab[v>>6] |= 1 << uint(v&63)
	}
	head := 0
	if F > 0 {
		head = int(ce[F-1])
	}
	depth := F
	levelEnd := len(q)
	for ; head < len(q); head++ {
		if head == levelEnd {
			depth++
			levelEnd = len(q)
			ce[depth] = int32(levelEnd)
		}
		v := q[head]
		vLow := int64(v)
		vRow := a.liveAdjW[int(v)*mw : int(v)*mw+mw]
		for wi := 0; wi < mw; wi++ {
			nw := vRow[wi] &^ lab[wi]
			if nw == 0 {
				continue
			}
			lab[wi] |= nw
			base := wi << 6
			for ; nw != 0; nw &= nw - 1 {
				w := int32(base + bits.TrailingZeros64(nw))
				prevNE[w] = int64(edgeOf[int(v)*n+int(w)])<<32 | vLow
				if int(w) == dst {
					// Bits of nw above dst never got prev entries; the
					// stored bitmap must not claim them.
					lab[wi] &^= nw & (nw - 1)
					copy(a.cVisW[src*mw:src*mw+mw], lab)
					a.cDepth[src] = int32(depth)
					a.cGen[src] = a.gen
					return true, depth + 1
				}
				q = append(q, w)
			}
		}
	}
	copy(a.cVisW[src*mw:src*mw+mw], lab)
	a.cDepth[src] = int32(depth)
	a.cGen[src] = a.gen
	a.recordCutMaskW(lab)
	a.stat.claimCut++
	return false, 0
}

// claimStore4 writes the mw == 4 claim search's labels, last complete level
// and validity stamp back into src's stored tree (the queue and level
// boundaries already grew in place).
func (a *Allocator) claimStore4(src, depth int, lab0, lab1, lab2, lab3 uint64) {
	row := a.cVisW[src*4 : src*4+4]
	row[0], row[1], row[2], row[3] = lab0, lab1, lab2, lab3
	a.cDepth[src] = int32(depth)
	a.cGen[src] = a.gen
}

// claimSearch4 is claimSearchWd specialized to mw == 4: the visited bitmap
// lives in four registers and the per-node word loop is unrolled, with the
// same FIFO scan order and therefore the same prev chains.
func (a *Allocator) claimSearch4(src, dst, F int) (bool, int) {
	const mw = 4
	n := a.n
	adj := a.liveAdjW
	edgeOf := a.edgeOf
	prevNE := a.prevNE[src*n : src*n+n]
	ce := a.cEnds[src*(n+1) : src*(n+1)+n+1]
	cq := a.cQueue[src*n : src*n+n : src*n+n]
	q := cq[:ce[F]]
	var lab0, lab1, lab2, lab3 uint64
	for _, vv := range q {
		v := int(vv)
		switch v >> 6 {
		case 0:
			lab0 |= 1 << uint(v&63)
		case 1:
			lab1 |= 1 << uint(v&63)
		case 2:
			lab2 |= 1 << uint(v&63)
		default:
			lab3 |= 1 << uint(v&63)
		}
	}
	head := 0
	if F > 0 {
		head = int(ce[F-1])
	}
	depth := F
	levelEnd := len(q)
	for ; head < len(q); head++ {
		if head == levelEnd {
			depth++
			levelEnd = len(q)
			ce[depth] = int32(levelEnd)
		}
		v := int(q[head])
		vLow := int64(v)
		r := v * mw
		en := v * n
		nw0 := adj[r] &^ lab0
		lab0 |= nw0
		for ; nw0 != 0; nw0 &= nw0 - 1 {
			w := bits.TrailingZeros64(nw0)
			prevNE[w] = int64(edgeOf[en+w])<<32 | vLow
			if w == dst {
				// Bits above dst in this word never got prev entries;
				// strip them from the stored bitmap (likewise below).
				a.claimStore4(src, depth, lab0&^(nw0&(nw0-1)), lab1, lab2, lab3)
				return true, depth + 1
			}
			q = append(q, int32(w))
		}
		nw1 := adj[r+1] &^ lab1
		lab1 |= nw1
		for ; nw1 != 0; nw1 &= nw1 - 1 {
			w := 64 + bits.TrailingZeros64(nw1)
			prevNE[w] = int64(edgeOf[en+w])<<32 | vLow
			if w == dst {
				a.claimStore4(src, depth, lab0, lab1&^(nw1&(nw1-1)), lab2, lab3)
				return true, depth + 1
			}
			q = append(q, int32(w))
		}
		nw2 := adj[r+2] &^ lab2
		lab2 |= nw2
		for ; nw2 != 0; nw2 &= nw2 - 1 {
			w := 128 + bits.TrailingZeros64(nw2)
			prevNE[w] = int64(edgeOf[en+w])<<32 | vLow
			if w == dst {
				a.claimStore4(src, depth, lab0, lab1, lab2&^(nw2&(nw2-1)), lab3)
				return true, depth + 1
			}
			q = append(q, int32(w))
		}
		nw3 := adj[r+3] &^ lab3
		lab3 |= nw3
		for ; nw3 != 0; nw3 &= nw3 - 1 {
			w := 192 + bits.TrailingZeros64(nw3)
			prevNE[w] = int64(edgeOf[en+w])<<32 | vLow
			if w == dst {
				a.claimStore4(src, depth, lab0, lab1, lab2, lab3&^(nw3&(nw3-1)))
				return true, depth + 1
			}
			q = append(q, int32(w))
		}
	}
	a.claimStore4(src, depth, lab0, lab1, lab2, lab3)
	lab := a.labeledW[:mw]
	lab[0], lab[1], lab[2], lab[3] = lab0, lab1, lab2, lab3
	a.recordCutMaskW(lab)
	a.stat.claimCut++
	return false, 0
}

// searchBounded reports whether dst is currently reachable from src over
// positive-residual edges and, if so, the exact minimum hop count. It is a
// pure query: levels go into private arrays, so the probe memo rows of both
// endpoints survive untouched; only the doomed-word books are enriched when
// a side exhausts. Mask paths only.
func (a *Allocator) searchBounded(src, dst int) (bool, int) {
	if a.cutHit(src, dst) {
		return false, 0
	}
	a.stat.bidi++
	if a.wide {
		return a.searchBoundedWd(src, dst)
	}
	return a.searchBounded1(src, dst)
}

// searchBounded1 is the single-word (n <= 64) bidirectional sweep: both
// visited sets and frontiers live in registers.
func (a *Allocator) searchBounded1(src, dst int) (bool, int) {
	adj := a.liveAdj
	a.bGen++
	genS := int64(a.bGen)
	a.bGen++
	genD := int64(a.bGen)
	lvS, lvD := a.bLvS, a.bLvD
	lvS[src] = genS << 32
	lvD[dst] = genD << 32
	visS := uint64(1) << uint(src)
	visD := uint64(1) << uint(dst)
	frS, frD := visS, visD
	dS, dD := 0, 0
	for {
		if bits.OnesCount64(frS) <= bits.OnesCount64(frD) {
			var nf uint64
			for m := frS; m != 0; m &= m - 1 {
				nf |= adj[bits.TrailingZeros64(m)]
			}
			nf &^= visS
			dS++
			lv := genS<<32 | int64(dS)
			for m := nf; m != 0; m &= m - 1 {
				lvS[bits.TrailingZeros64(m)] = lv
			}
			if mm := nf & visD; mm != 0 {
				best := math.MaxInt
				for ; mm != 0; mm &= mm - 1 {
					w := bits.TrailingZeros64(mm)
					if lvD[w]>>32 == genD {
						if c := dS + int(int32(lvD[w])); c < best {
							best = c
						}
					}
				}
				a.stat.bidiMeetS++
				return true, best
			}
			if nf == 0 {
				a.recordCutMask(visS)
				a.stat.bidiExhaustS++
				return false, 0
			}
			visS |= nf
			frS = nf
		} else {
			var nf uint64
			for m := frD; m != 0; m &= m - 1 {
				nf |= adj[bits.TrailingZeros64(m)]
			}
			nf &^= visD
			dD++
			lv := genD<<32 | int64(dD)
			for m := nf; m != 0; m &= m - 1 {
				lvD[bits.TrailingZeros64(m)] = lv
			}
			if mm := nf & visS; mm != 0 {
				best := math.MaxInt
				for ; mm != 0; mm &= mm - 1 {
					w := bits.TrailingZeros64(mm)
					if lvS[w]>>32 == genS {
						if c := dD + int(int32(lvS[w])); c < best {
							best = c
						}
					}
				}
				a.stat.bidiMeetD++
				return true, best
			}
			if nf == 0 {
				a.recordCutMask(visD)
				a.doomed[src] |= visD // src sits outside dst's component for good
				a.stat.bidiExhaustD++
				return false, 0
			}
			visD |= nf
			frD = nf
		}
	}
}

// searchBoundedWd is the multi-word twin of searchBounded1, with the same
// sparse-list/word-sweep frontier enumeration as resumeStampWd.
func (a *Allocator) searchBoundedWd(src, dst int) (bool, int) {
	mw := a.mw
	adj := a.liveAdjW
	visS := a.bVisS[:mw]
	visD := a.bVisD[:mw]
	frS := a.bFrS[:mw]
	frD := a.bFrD[:mw]
	nf := a.bNext[:mw]
	clear(visS)
	clear(visD)
	clear(frS)
	clear(frD)
	a.bGen++
	genS := int64(a.bGen)
	a.bGen++
	genD := int64(a.bGen)
	lvS, lvD := a.bLvS, a.bLvD
	lvS[src] = genS << 32
	lvD[dst] = genD << 32
	visS[src>>6] = 1 << uint(src&63)
	visD[dst>>6] = 1 << uint(dst&63)
	frS[src>>6] = 1 << uint(src&63)
	frD[dst>>6] = 1 << uint(dst&63)
	idsS := append(a.bIDsS[:0], int32(src))
	idsD := append(a.bIDsD[:0], int32(dst))
	cntS, cntD := 1, 1
	dS, dD := 0, 0
	for {
		fromS := cntS <= cntD
		fr, vis, ovis, ids, cnt := frD, visD, visS, idsD, cntD
		lv, olv := lvD, lvS
		ogen := genS
		if fromS {
			fr, vis, ovis, ids, cnt = frS, visS, visD, idsS, cntS
			lv, olv = lvS, lvD
			ogen = genD
		}
		clear(nf)
		if cnt <= bSparse {
			for _, v := range ids {
				row := adj[int(v)*mw : int(v)*mw+mw]
				for wi := range nf {
					nf[wi] |= row[wi]
				}
			}
		} else {
			for wi2, fw := range fr {
				base := wi2 << 6
				for m := fw; m != 0; m &= m - 1 {
					v := base + bits.TrailingZeros64(m)
					row := adj[v*mw : v*mw+mw]
					for wi := range nf {
						nf[wi] |= row[wi]
					}
				}
			}
		}
		var depth int
		if fromS {
			dS++
			depth = dS
		} else {
			dD++
			depth = dD
		}
		sd := int64(genD)<<32 | int64(depth)
		if fromS {
			sd = int64(genS)<<32 | int64(depth)
		}
		cnt = 0
		ids = ids[:0]
		best := math.MaxInt
		for wi := range nf {
			nw := nf[wi] &^ vis[wi]
			nf[wi] = nw
			if nw == 0 {
				continue
			}
			vis[wi] |= nw
			base := wi << 6
			cnt += bits.OnesCount64(nw)
			for m := nw; m != 0; m &= m - 1 {
				w := base + bits.TrailingZeros64(m)
				lv[w] = sd
				ids = append(ids, int32(w))
			}
			for mm := nw & ovis[wi]; mm != 0; mm &= mm - 1 {
				w := base + bits.TrailingZeros64(mm)
				if olv[w]>>32 == ogen {
					if c := depth + int(int32(olv[w])); c < best {
						best = c
					}
				}
			}
		}
		if best != math.MaxInt {
			a.bIDsS, a.bIDsD = idsS[:0], idsD[:0]
			if fromS {
				a.stat.bidiMeetS++
			} else {
				a.stat.bidiMeetD++
			}
			return true, best
		}
		if cnt == 0 {
			if fromS {
				a.recordCutMaskW(visS)
				a.stat.bidiExhaustS++
			} else {
				a.recordCutMaskW(visD)
				row := a.doomedW[src*mw : src*mw+mw]
				for wi := range row {
					row[wi] |= visD[wi] // src sits outside dst's component for good
				}
				a.stat.bidiExhaustD++
			}
			a.bIDsS, a.bIDsD = idsS[:0], idsD[:0]
			return false, 0
		}
		if fromS {
			frS, nf = nf, frS
			idsS, cntS = ids, cnt
		} else {
			frD, nf = nf, frD
			idsD, cntD = ids, cnt
		}
	}
}
