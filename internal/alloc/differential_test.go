package alloc

import (
	"math/rand"
	"testing"

	"owan/internal/topology"
)

// randomCase draws a random connected-ish topology and demand set. The
// generator deliberately produces saturated, unroutable, and zero-rate
// demands so the differential tests cover every branch of the tier loop.
func randomCase(rng *rand.Rand) (*topology.LinkSet, []Demand, float64) {
	n := 3 + rng.Intn(10)
	ls := topology.NewLinkSet(n)
	// A random spine keeps most sites connected, then random chords.
	for i := 0; i+1 < n; i++ {
		if rng.Float64() < 0.85 {
			ls.Add(i, i+1, 1+rng.Intn(3))
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.25 {
				ls.Add(i, j, 1+rng.Intn(3))
			}
		}
	}
	var ds []Demand
	for i := 0; i < rng.Intn(14); i++ {
		s, d := rng.Intn(n), rng.Intn(n)
		if s == d {
			continue
		}
		rate := rng.Float64() * 60
		if rng.Float64() < 0.1 {
			rate = 0 // already-met demand
		}
		ds = append(ds, Demand{ID: i, Src: s, Dst: d, RateGbps: rate})
	}
	theta := []float64{1, 2.5, 10}[rng.Intn(3)]
	return ls, ds, theta
}

// sameResult asserts two results are bit-identical: same throughput, same
// demand IDs, and per demand the same ordered path/rate lists.
func sameResult(t *testing.T, seed int64, want, got *Result) {
	t.Helper()
	if want.Throughput != got.Throughput {
		t.Fatalf("seed %d: throughput %v != reference %v", seed, got.Throughput, want.Throughput)
	}
	if len(want.Alloc) != len(got.Alloc) {
		t.Fatalf("seed %d: alloc map sizes differ: %d != %d", seed, len(got.Alloc), len(want.Alloc))
	}
	for id, wprs := range want.Alloc {
		gprs, ok := got.Alloc[id]
		if !ok || len(gprs) != len(wprs) {
			t.Fatalf("seed %d: demand %d: %d paths, reference %d", seed, id, len(gprs), len(wprs))
		}
		for k := range wprs {
			if wprs[k].Rate != gprs[k].Rate {
				t.Fatalf("seed %d: demand %d path %d: rate %v != reference %v", seed, id, k, gprs[k].Rate, wprs[k].Rate)
			}
			if len(wprs[k].Path) != len(gprs[k].Path) {
				t.Fatalf("seed %d: demand %d path %d: length %d != reference %d", seed, id, k, len(gprs[k].Path), len(wprs[k].Path))
			}
			for x := range wprs[k].Path {
				if wprs[k].Path[x] != gprs[k].Path[x] {
					t.Fatalf("seed %d: demand %d path %d: node %d: %d != reference %d",
						seed, id, k, x, gprs[k].Path[x], wprs[k].Path[x])
				}
			}
		}
	}
}

// TestAllocatorMatchesReferenceGreedy is the flat-vs-map differential: on
// randomized topologies and demand sets the Allocator must reproduce the
// reference implementation exactly — throughput, path lists, and rates.
// One Allocator is reused across all seeds so buffer-reuse bugs (stale
// residuals, unreset tiers) cannot hide.
func TestAllocatorMatchesReferenceGreedy(t *testing.T) {
	al := NewAllocator()
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ls, ds, theta := randomCase(rng)
		sameResult(t, seed, greedyReference(ls, theta, ds), al.Greedy(ls, theta, ds))
	}
}

// TestAllocatorMatchesReferenceSequential is the same differential for the
// no-tier ablation variant.
func TestAllocatorMatchesReferenceSequential(t *testing.T) {
	al := NewAllocator()
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ls, ds, theta := randomCase(rng)
		sameResult(t, seed, greedySequentialReference(ls, theta, ds), al.GreedySequential(ls, theta, ds))
	}
}

// TestAllocatorThroughputMatchesGreedy pins Throughput to the Greedy sum so
// the record-free fast path cannot drift from the recording path.
func TestAllocatorThroughputMatchesGreedy(t *testing.T) {
	al := NewAllocator()
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ls, ds, theta := randomCase(rng)
		want := al.Greedy(ls, theta, ds).Throughput
		if got := al.Throughput(ls, theta, ds); got != want {
			t.Fatalf("seed %d: Throughput %v != Greedy throughput %v", seed, got, want)
		}
	}
}

// TestAllocatorThroughputZeroAlloc is the steady-state zero-allocation
// claim: once the Allocator's buffers have grown to the topology size, the
// energy evaluation allocates nothing.
func TestAllocatorThroughputZeroAlloc(t *testing.T) {
	net := topology.ISP(25, 8, 1)
	ls := topology.InitialTopology(net)
	rng := rand.New(rand.NewSource(3))
	var ds []Demand
	for i := 0; i < 80; i++ {
		s, d := rng.Intn(25), rng.Intn(25)
		if s == d {
			continue
		}
		ds = append(ds, Demand{ID: i, Src: s, Dst: d, RateGbps: rng.Float64() * 30})
	}
	al := NewAllocator()
	al.Throughput(ls, net.ThetaGbps, ds) // warm the buffers
	if avg := testing.AllocsPerRun(20, func() {
		al.Throughput(ls, net.ThetaGbps, ds)
	}); avg != 0 {
		t.Errorf("Allocator.Throughput allocates %v objects/op in steady state, want 0", avg)
	}
}

// TestAllocatorReuseAcrossTopologySizes shrinks and grows the topology
// between calls on one Allocator: leftover state from a larger load must
// never leak into a smaller one.
func TestAllocatorReuseAcrossTopologySizes(t *testing.T) {
	al := NewAllocator()
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(9000 + seed))
		ls, ds, theta := randomCase(rng)
		sameResult(t, seed, greedyReference(ls, theta, ds), al.Greedy(ls, theta, ds))
		// Tiny follow-up case on the same allocator.
		tiny := topology.NewLinkSet(2)
		tiny.Add(0, 1, 1)
		d2 := []Demand{{ID: 0, Src: 0, Dst: 1, RateGbps: 25}}
		sameResult(t, seed, greedyReference(tiny, 10, d2), al.Greedy(tiny, 10, d2))
	}
}

// BenchmarkGreedyAlloc measures the steady-state energy evaluation on a
// reused Allocator (the configuration the annealing workers run).
func BenchmarkGreedyAlloc(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := topology.ISP(40, 10, 1)
	ls := topology.InitialTopology(net)
	var ds []Demand
	for i := 0; i < 200; i++ {
		s, d := rng.Intn(40), rng.Intn(40)
		if s == d {
			continue
		}
		ds = append(ds, Demand{ID: i, Src: s, Dst: d, RateGbps: rng.Float64() * 30})
	}
	al := NewAllocator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		al.Throughput(ls, 10, ds)
	}
}

// randomSwapPatch applies up to k random 2-circuit swaps (the annealing
// neighbor move) to a clone of ls and returns the patched set plus the
// (U, V)-sorted patch of NEW counts for every touched pair — exactly what
// the core delta evaluator feeds ThroughputPatched.
func randomSwapPatch(rng *rand.Rand, ls *topology.LinkSet, k int) (*topology.LinkSet, []topology.Link) {
	patched := ls.Clone()
	touched := map[[2]int]bool{}
	links := ls.Links()
	for swap := 0; swap < k; swap++ {
		if len(links) < 2 {
			break
		}
		a, b := links[rng.Intn(len(links))], links[rng.Intn(len(links))]
		u, v, p, q := a.U, a.V, b.U, b.V
		if rng.Intn(2) == 0 {
			p, q = q, p // random orientation of the second circuit
		}
		if u == p || v == q || patched.Get(u, v) == 0 || patched.Get(p, q) == 0 {
			continue
		}
		if min(p, q) == u && max(p, q) == v && patched.Get(u, v) < 2 {
			continue // same link picked twice needs two circuits
		}
		patched.Add(u, v, -1)
		patched.Add(p, q, -1)
		patched.Add(u, p, 1)
		patched.Add(v, q, 1)
		for _, pr := range [][2]int{{u, v}, {p, q}, {u, p}, {v, q}} {
			x, y := pr[0], pr[1]
			if x > y {
				x, y = y, x
			}
			touched[[2]int{x, y}] = true
		}
	}
	var patch []topology.Link
	for pr := range touched {
		patch = append(patch, topology.Link{U: pr[0], V: pr[1], Count: patched.Get(pr[0], pr[1])})
	}
	for i := 1; i < len(patch); i++ {
		for j := i; j > 0 && (patch[j].U < patch[j-1].U || (patch[j].U == patch[j-1].U && patch[j].V < patch[j-1].V)); j-- {
			patch[j], patch[j-1] = patch[j-1], patch[j]
		}
	}
	return patched, patch
}

// TestThroughputPatchedMatchesReference is the delta-path differential: a
// base topology is registered once with SetBase, then random swap patches
// are evaluated through the warm path and checked bit-identical against the
// map-based reference on the fully materialized patched topology. One
// allocator serves all seeds so stale warm-load state cannot hide.
func TestThroughputPatchedMatchesReference(t *testing.T) {
	al := NewAllocator()
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(4000 + seed))
		ls, ds, theta := randomCase(rng)
		al.SetBase(ls, theta)
		for trial := 0; trial < 3; trial++ {
			patched, patch := randomSwapPatch(rng, ls, 1+rng.Intn(3))
			want := greedyReference(patched, theta, ds).Throughput
			if got := al.ThroughputPatched(patch, ds); got != want {
				t.Fatalf("seed %d trial %d: ThroughputPatched %v != reference %v (patch %v)",
					seed, trial, got, want, patch)
			}
		}
		// The warm path must not corrupt subsequent cold evaluations.
		if got, want := al.Throughput(ls, theta, ds), greedyReference(ls, theta, ds).Throughput; got != want {
			t.Fatalf("seed %d: cold Throughput after patched runs: %v != %v", seed, got, want)
		}
	}
}

// TestThroughputPatchedZeroAlloc: the patched evaluation is the inner loop
// of delta annealing and must not allocate in steady state.
func TestThroughputPatchedZeroAlloc(t *testing.T) {
	net := topology.ISP(25, 8, 1)
	ls := topology.InitialTopology(net)
	rng := rand.New(rand.NewSource(5))
	var ds []Demand
	for i := 0; i < 80; i++ {
		s, d := rng.Intn(25), rng.Intn(25)
		if s == d {
			continue
		}
		ds = append(ds, Demand{ID: i, Src: s, Dst: d, RateGbps: rng.Float64() * 30})
	}
	al := NewAllocator()
	al.SetBase(ls, net.ThetaGbps)
	_, patch := randomSwapPatch(rng, ls, 2)
	al.ThroughputPatched(patch, ds) // warm the buffers
	if avg := testing.AllocsPerRun(20, func() {
		al.ThroughputPatched(patch, ds)
	}); avg != 0 {
		t.Errorf("ThroughputPatched allocates %v objects/op in steady state, want 0", avg)
	}
}
