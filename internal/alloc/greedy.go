// Package alloc implements the greedy multi-path routing and rate
// assignment of Owan's energy function (Algorithm 3, lines 15–25): order
// transfers by a scheduling policy, then let transfers claim paths in
// increasing path-length tiers, assigning each path the minimum of the
// transfer's unmet demand and the bottleneck residual capacity.
//
// The same routine serves three callers: the simulated-annealing energy
// function in internal/core, the "+routing" ablation baseline, and the
// controller's final allocation pass on the chosen topology.
//
// Two implementations exist: the flat, zero-allocation Allocator (the hot
// path; see allocator.go) behind the exported entry points below, and the
// original map-based routine kept as an unexported reference in
// reference.go, exercised only by the differential tests.
package alloc

import (
	"owan/internal/topology"
	"owan/internal/transfer"
)

// Demand is one transfer's allocation input for a slot.
type Demand struct {
	ID       int
	Src, Dst int
	// RateGbps is the maximum useful rate this slot (remaining bits over
	// slot seconds, typically).
	RateGbps float64
}

// Result is the outcome of a greedy assignment.
type Result struct {
	// Alloc maps demand ID to its path allocations.
	Alloc map[int][]transfer.PathRate
	// Throughput is the total allocated rate in Gbps (the SA energy).
	Throughput float64
}

// Greedy assigns paths and rates to the demands, which must already be in
// scheduling-policy order (the caller applies transfer.Order). Transfers
// are served in increasing path-length tiers: every demand gets a chance at
// length-l paths before any demand uses length l+1 (Algorithm 3's outer
// loop over l). Within a tier, demands claim bottleneck capacity greedily
// in order.
//
// Greedy constructs a throwaway Allocator; hot-path callers (the annealing
// energy function) should hold a reusable Allocator instead.
func Greedy(ls *topology.LinkSet, theta float64, demands []Demand) *Result {
	return NewAllocator().Greedy(ls, theta, demands)
}

// Throughput evaluates Greedy and returns only the total throughput; used
// as the annealing energy where the allocation itself is discarded.
func Throughput(ls *topology.LinkSet, theta float64, demands []Demand) float64 {
	return NewAllocator().Throughput(ls, theta, demands)
}

// GreedySequential is the ablation variant of Greedy without the
// path-length tier loop: each demand, in order, claims shortest residual
// paths until its demand is met before the next demand gets any capacity.
// Earlier demands can therefore lock later ones out of their direct paths
// (compare TestGreedyLengthTiersProtectDirectPaths).
func GreedySequential(ls *topology.LinkSet, theta float64, demands []Demand) *Result {
	return NewAllocator().GreedySequential(ls, theta, demands)
}

// DemandsFromTransfers builds per-slot demands from live transfers: the
// useful rate is remaining gigabits spread over one slot.
func DemandsFromTransfers(ts []*transfer.Transfer, slotSeconds float64) []Demand {
	out := make([]Demand, 0, len(ts))
	for _, t := range ts {
		out = append(out, Demand{
			ID:       t.ID,
			Src:      t.Src,
			Dst:      t.Dst,
			RateGbps: t.Remaining / slotSeconds,
		})
	}
	return out
}
