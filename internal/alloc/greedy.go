// Package alloc implements the greedy multi-path routing and rate
// assignment of Owan's energy function (Algorithm 3, lines 15–25): order
// transfers by a scheduling policy, then let transfers claim paths in
// increasing path-length tiers, assigning each path the minimum of the
// transfer's unmet demand and the bottleneck residual capacity.
//
// The same routine serves three callers: the simulated-annealing energy
// function in internal/core, the "+routing" ablation baseline, and the
// controller's final allocation pass on the chosen topology.
package alloc

import (
	"math"

	"owan/internal/topology"
	"owan/internal/transfer"
)

// Demand is one transfer's allocation input for a slot.
type Demand struct {
	ID       int
	Src, Dst int
	// RateGbps is the maximum useful rate this slot (remaining bits over
	// slot seconds, typically).
	RateGbps float64
}

// Result is the outcome of a greedy assignment.
type Result struct {
	// Alloc maps demand ID to its path allocations.
	Alloc map[int][]transfer.PathRate
	// Throughput is the total allocated rate in Gbps (the SA energy).
	Throughput float64
}

// residualNet is a mutable capacity view of a network-layer topology.
type residualNet struct {
	n   int
	cap map[[2]int]float64
	adj [][]int // neighbor lists (rebuilt lazily after saturation is fine to keep)
}

func key(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func newResidual(ls *topology.LinkSet, theta float64) *residualNet {
	r := &residualNet{n: ls.N, cap: make(map[[2]int]float64, len(ls.Count)), adj: make([][]int, ls.N)}
	for _, l := range ls.Links() {
		r.cap[key(l.U, l.V)] = float64(l.Count) * theta
		r.adj[l.U] = append(r.adj[l.U], l.V)
		r.adj[l.V] = append(r.adj[l.V], l.U)
	}
	return r
}

// shortestResidual returns the minimum-hop path from src to dst using only
// links with positive residual capacity, or nil.
func (r *residualNet) shortestResidual(src, dst int, prev, distBuf []int) []int {
	const eps = 1e-9
	for i := range distBuf {
		distBuf[i] = -1
		prev[i] = -1
	}
	distBuf[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == dst {
			break
		}
		for _, w := range r.adj[v] {
			if distBuf[w] >= 0 || r.cap[key(v, w)] <= eps {
				continue
			}
			distBuf[w] = distBuf[v] + 1
			prev[w] = v
			queue = append(queue, w)
		}
	}
	if distBuf[dst] < 0 {
		return nil
	}
	path := make([]int, 0, distBuf[dst]+1)
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// bottleneck returns the minimum residual along a path.
func (r *residualNet) bottleneck(path []int) float64 {
	b := math.Inf(1)
	for i := 0; i+1 < len(path); i++ {
		if c := r.cap[key(path[i], path[i+1])]; c < b {
			b = c
		}
	}
	return b
}

// take subtracts rate from every link of the path.
func (r *residualNet) take(path []int, rate float64) {
	for i := 0; i+1 < len(path); i++ {
		r.cap[key(path[i], path[i+1])] -= rate
	}
}

// Greedy assigns paths and rates to the demands, which must already be in
// scheduling-policy order (the caller applies transfer.Order). Transfers
// are served in increasing path-length tiers: every demand gets a chance at
// length-l paths before any demand uses length l+1 (Algorithm 3's outer
// loop over l). Within a tier, demands claim bottleneck capacity greedily
// in order.
func Greedy(ls *topology.LinkSet, theta float64, demands []Demand) *Result {
	const eps = 1e-9
	r := newResidual(ls, theta)
	res := &Result{Alloc: make(map[int][]transfer.PathRate, len(demands))}
	unmet := make([]float64, len(demands))
	for i, d := range demands {
		unmet[i] = d.RateGbps
	}
	// nextTier[i]: minimal path length currently available for demand i;
	// math.MaxInt once unroutable (capacity only shrinks within a run).
	nextTier := make([]int, len(demands))
	for i := range nextTier {
		nextTier[i] = 1
	}
	prev := make([]int, ls.N)
	dist := make([]int, ls.N)

	for l := 1; l <= ls.N; l++ {
		anyUnmet := false
		for i := range demands {
			d := &demands[i]
			if unmet[i] <= eps || nextTier[i] > l {
				if unmet[i] > eps && nextTier[i] <= ls.N {
					anyUnmet = true
				}
				continue
			}
			for unmet[i] > eps {
				p := r.shortestResidual(d.Src, d.Dst, prev, dist)
				if p == nil {
					nextTier[i] = math.MaxInt
					break
				}
				if hops := len(p) - 1; hops > l {
					nextTier[i] = hops
					anyUnmet = true
					break
				}
				rate := math.Min(unmet[i], r.bottleneck(p))
				if rate <= eps {
					nextTier[i] = math.MaxInt
					break
				}
				r.take(p, rate)
				unmet[i] -= rate
				res.Alloc[d.ID] = append(res.Alloc[d.ID], transfer.PathRate{Path: p, Rate: rate})
				res.Throughput += rate
			}
		}
		if !anyUnmet {
			break
		}
	}
	return res
}

// Throughput evaluates Greedy and returns only the total throughput; used
// as the annealing energy where the allocation itself is discarded.
func Throughput(ls *topology.LinkSet, theta float64, demands []Demand) float64 {
	return Greedy(ls, theta, demands).Throughput
}

// DemandsFromTransfers builds per-slot demands from live transfers: the
// useful rate is remaining gigabits spread over one slot.
func DemandsFromTransfers(ts []*transfer.Transfer, slotSeconds float64) []Demand {
	out := make([]Demand, 0, len(ts))
	for _, t := range ts {
		out = append(out, Demand{
			ID:       t.ID,
			Src:      t.Src,
			Dst:      t.Dst,
			RateGbps: t.Remaining / slotSeconds,
		})
	}
	return out
}

// GreedySequential is the ablation variant of Greedy without the
// path-length tier loop: each demand, in order, claims shortest residual
// paths until its demand is met before the next demand gets any capacity.
// Earlier demands can therefore lock later ones out of their direct paths
// (compare TestGreedyLengthTiersProtectDirectPaths).
func GreedySequential(ls *topology.LinkSet, theta float64, demands []Demand) *Result {
	const eps = 1e-9
	r := newResidual(ls, theta)
	res := &Result{Alloc: make(map[int][]transfer.PathRate, len(demands))}
	prev := make([]int, ls.N)
	dist := make([]int, ls.N)
	for i := range demands {
		d := &demands[i]
		unmet := d.RateGbps
		for unmet > eps {
			p := r.shortestResidual(d.Src, d.Dst, prev, dist)
			if p == nil {
				break
			}
			rate := math.Min(unmet, r.bottleneck(p))
			if rate <= eps {
				break
			}
			r.take(p, rate)
			unmet -= rate
			res.Alloc[d.ID] = append(res.Alloc[d.ID], transfer.PathRate{Path: p, Rate: rate})
			res.Throughput += rate
		}
	}
	return res
}
