package alloc

import (
	"math"
	"math/bits"

	"owan/internal/bitset"
	"owan/internal/topology"
	"owan/internal/transfer"
)

// resEps is the residual-capacity threshold below which an edge is treated
// as saturated. It must stay identical everywhere a residual is compared so
// the live-neighbor masks agree bit-for-bit with the scalar capacity tests.
const resEps = 1e-9

// Allocator runs the greedy multi-path assignment on flat, edge-id-indexed
// arrays with reusable scratch, so that the annealing energy function —
// which evaluates thousands of candidate topologies per slot — performs
// zero heap allocations in steady state.
//
// Edge ids are minted per load from the LinkSet: edge e is the e-th link of
// the (U, V)-sorted enumeration (topology.LinkSet.AppendLinks), residual
// capacities live in a dense []float64 indexed by edge id, and adjacency is
// CSR-shaped (adjOff/arcs). The BFS uses a ring-buffer queue and
// reconstructs paths by walking the prevNode/prevEdge chains, so bottleneck
// and take never look up an edge by endpoint pair.
//
// Scratch ownership rules: an Allocator owns its buffers exclusively and is
// not safe for concurrent use. Each worker of the parallel annealing engine
// owns one Allocator, exactly as it owns one cloned optical.State. Buffers
// grow monotonically and are retained across calls; results returned by
// Greedy/GreedySequential copy every path out of the scratch, so they do
// not alias it.
//
// Results are bit-identical to the map-based reference implementation in
// reference.go: the CSR adjacency preserves the reference's neighbor order
// (both enumerate links in (U, V)-sorted order), the ring-buffer BFS visits
// vertices in the same FIFO order, and rates are computed and subtracted in
// the same sequence, so every float operation sees the same operands.
type Allocator struct {
	n     int
	links []topology.Link // scratch for LinkSet.AppendLinks

	// Flat residual network (per load). Each directed arc packs its
	// neighbor site (low 32 bits) and undirected edge id (high 32 bits)
	// into one word, so the BFS inner loop issues a single sequential load
	// per arc.
	caps   []float64 // residual capacity by edge id
	adjOff []int32   // n+1 CSR offsets
	arcs   []int64   // edgeID<<32 | neighbor, per directed arc
	cur    []int32   // CSR fill cursor

	// BFS scratch, one row of n entries per source site (src-major, n*n).
	// Labels are generation-stamped: node w is labeled by src's latest
	// search iff stampDist[src*n+w]>>32 == rowGen[src], so starting a BFS is
	// O(1) instead of an O(n) re-initialization, and a finished search leaves
	// its whole distance tree in place for probe() to answer later queries
	// from the same source (valid until the next take) at zero recording
	// cost. Stamp+dist and prevEdge+prevNode are packed pairwise into int64
	// words (stamp and edge id high, dist and node low) so labeling a node is
	// two stores instead of four.
	stampDist []int64 // rowGen<<32 | hop count, per (src, node)
	prevNE    []int64 // prevEdge<<32 | prevNode, per (src, node)
	queue     []int32
	rowGen    []int32 // per src: gen of the latest search from src
	gen       int32

	// Per-demand scratch.
	unmet    []float64
	nextTier []int

	// Path materialization scratch (only used when recording allocations).
	path []int

	// Failure-cut memoization (per run). Residual capacities only ever
	// decrease within one run, so the node set a failed BFS visited is a
	// saturated cut that stays saturated: any later demand with its source
	// inside the cut and its destination outside must fail too, and
	// shortestResidual reports that without re-running the search. This is
	// exact, not heuristic — see the invariant comment on shortestResidual.
	cutW    int      // words per cut bitset: ceil(n/64)
	cuts    []uint64 // numCuts concatenated bitsets of visited nodes
	numCuts int
	visit   []uint64 // recordCut scratch: bitset of the failed BFS's labels

	// Probe memo validity. Within one run residual capacities only
	// decrease, so edges leave the positive-residual graph and never return:
	// hop distances are non-decreasing over the run, and the tree a search
	// left in src's row yields a permanent LOWER BOUND on the current hop
	// count — no invalidation on take is needed, only per load (rows are
	// live iff rowGen[src] > loadGen). probeFull[src] records whether src's
	// latest search scanned its entire residual component (a failed search,
	// whose unlabeled nodes are then unreachable for the rest of the run) or
	// early-exited (unlabeled nodes merely unknown).
	probeFull []bool
	loadGen   int32

	// BFS-tree reuse across takes. A minimum-hop tree depends only on WHICH
	// edges have positive residual, not on the residual values, so a row
	// stays exactly current — prev chains included, claims and all — until
	// an edge its search scanned as a prev edge saturates. Removing any
	// OTHER edge cannot change the tree: a skipped or unscanned edge
	// contributed nothing, and shrinking the graph preserves unreachability.
	//
	// On the mask path the books are bitmasks: usedBy[e] collects the
	// sources whose current tree holds e as a prev edge (one OR per label),
	// and a saturation clears exactly those sources from rowLive in one
	// word operation. Stale usedBy bits from superseded trees only ever
	// force a redundant re-search, never a wrong answer. The scalar path
	// (over 64 sites) keeps a coarser epoch: any saturation retires every
	// tree.
	rowLive  uint64
	usedBy   []uint64
	epoch    int32
	rowEpoch []int32

	// act is the tier loop's active-demand list (indices with unmet rate
	// and a reachable next tier), compacted in place each tier so the scan
	// cost tracks the number of live demands instead of all of them.
	act []int32

	// Bitmask BFS. liveAdj[v] holds one bit per neighbor w reachable over an
	// edge with positive residual; take clears bits as edges saturate, so
	// the BFS inner loop replaces the per-arc capacity-and-stamp scan with
	// `liveAdj[v] &^ labeled`. CSR neighbor order is ascending node id (the
	// (U, V)-sorted enumeration lists v's partners x<v then y>v, both
	// ascending), so ascending-bit iteration visits, labels, and enqueues in
	// exactly the reference order — results stay bit-identical, which the
	// differential suites assert. edgeOf[v*n+w] maps a live pair back to its
	// edge id for the prev chain; entries for non-adjacent pairs are never
	// read, so the array needs no clearing between loads.
	//
	// Topologies with at most 64 sites use the specialized single-word
	// fields below (one uint64 per row, registers end to end). Larger
	// topologies use the multi-word twins further down (bitset.Words(n)
	// words per row, internal/bitset layout) — same visit order, word-
	// ascending then bit-ascending, so the bit-identity argument carries
	// over unchanged. forceScalar disables both (benchmark/differential
	// knob; results are identical either way, only wall-clock differs).
	useMask bool
	liveAdj []uint64
	edgeOf  []int32
	// doomed[src] is the union of ^V over every failure cut V containing
	// src: bit dst set means some saturated cut separates src from dst, the
	// exact predicate cutHit scans the cut list for. Updating it costs one
	// OR per cut member at record time and answers every later query with a
	// single bit test, so the mask path needs neither the cut list nor its
	// dedup scan (monotone unions make duplicates free).
	doomed []uint64

	// Multi-word mask path (n > 64): the same books as the single-word
	// fields, each row widened to mw words. usedByW[e] is a bitset over
	// sources; rowLiveW one bitset over sources; labeledW the BFS's visited
	// bitset (reused per search).
	wide        bool
	mw          int
	liveAdjW    []uint64 // n*mw
	doomedW     []uint64 // n*mw
	usedByW     []uint64 // m*mw
	rowLiveW    []uint64 // mw
	labeledW    []uint64 // mw, per-search scratch
	forceScalar bool

	// Claim-tree store (mask paths; see the claim-repair comment in
	// bidi.go). claimSearch persists the canonical BFS tree it builds —
	// labeling order (cQueue), level boundaries (cEnds), labeled bitmap
	// (cVis/cVisW), last complete level (cDepth) — per source, alongside the
	// prev chains already living in the per-source prevNE rows. A later
	// claim from the same source answers from the stored tree when dst's
	// prev chain is still fully live, repairs just the subtree below the
	// shallowest saturated tree edge when it is not, and resumes a truncated
	// sweep where it stopped when dst lies beyond the stored levels. cGen
	// stamps validity the same way rowGen does for the probe rows: a tree is
	// live iff cGen[src] > loadGen. noClaimReuse is the differential knob
	// that forces every claim onto a cold rebuild (bit-identical results,
	// asserted by the 300-seed claim-repair differential).
	cQueue       []int32 // n*n: per-source canonical labeling order
	cEnds        []int32 // n*(n+1): per-source level boundaries, ends[d] = one past level d
	cDepth       []int32 // per source: last complete level
	cVis         []uint64
	cVisW        []uint64 // n*mw multi-word twin of cVis
	cGen         []int32
	noClaimReuse bool

	// Resumable sweep rows (see bidi.go): per-source visited and frontier
	// bitmaps plus the last completed level, so a suspended stamp sweep
	// picks up where it stopped instead of re-walking the component. One
	// word per source on the single-word path, mw words on the multi-word
	// path. Validity rides on rowGen, like the stamps the sweep writes.
	sVis, sFront []uint64
	sLevel       []int32

	// Bidirectional-search scratch (see bidi.go): visited and frontier
	// bitmaps for both ends plus the next-level accumulator (mw words
	// each), the sparse frontier id lists (capacity n, so the level sweeps
	// never allocate), and the sweep's private generation-stamped level
	// arrays — private so a pure distance query never clobbers the probe
	// memo rows.
	bVisS, bVisD []uint64
	bFrS, bFrD   []uint64
	bNext        []uint64
	bIDsS, bIDsD []int32
	bLvS, bLvD   []int64
	bGen         int32

	// Per-source persisted sparse frontier (resumeStampWd): when a sweep
	// suspends on a frontier of at most bSparse nodes, its compact id list
	// survives here so the next resume re-enters sparse enumeration instead
	// of paying a word sweep to rediscover what the last level already
	// collected. A slot is valid only while sFrGen matches the row's
	// generation; every Wd suspension rewrites it, so a reinitialized row
	// can never resurrect a stale list.
	sFrIDs []int32 // n*bSparse: persisted frontier ids
	sFrCnt []int32 // per source: persisted frontier size, 0 = none/dense
	sFrGen []int32 // per source: rowGen at persist time

	// stat counts engine events at call granularity (see engineStats); the
	// differential harnesses read it to prove the paths they force actually
	// fired. Cumulative across loads.
	stat engineStats

	// Warm-load state for ThroughputPatched: the (U, V)-sorted enumeration
	// of the base topology retained by SetBase, so a patched evaluation
	// merges a few changed pairs instead of re-enumerating and re-sorting
	// the whole LinkSet.
	baseLinks []topology.Link
	baseN     int
	baseTheta float64
}

// maxCuts bounds how many failure cuts one run retains; beyond it new
// failures still return false, they just stop enriching the memo.
const maxCuts = 64

// NewAllocator returns an empty allocator; buffers are sized lazily on
// first use and reused afterwards.
func NewAllocator() *Allocator { return &Allocator{} }

func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func grow32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func grow64(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	return buf[:n]
}

func growI(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// load rebuilds the flat residual network for a topology, reusing every
// buffer from the previous load.
func (a *Allocator) load(ls *topology.LinkSet, theta float64) {
	a.links = ls.AppendLinks(a.links[:0])
	a.loadFromLinks(ls.N, theta)
}

// loadFromLinks rebuilds the flat residual network from the (U, V)-sorted
// links already sitting in a.links.
func (a *Allocator) loadFromLinks(n int, theta float64) {
	m := len(a.links)
	a.n = n
	a.caps = growF(a.caps, m)
	a.adjOff = grow32(a.adjOff, n+1)
	a.arcs = grow64(a.arcs, 2*m)
	a.cur = grow32(a.cur, n)
	a.stampDist = grow64(a.stampDist, n*n)
	a.prevNE = grow64(a.prevNE, n*n)
	a.rowGen = grow32(a.rowGen, n)
	// gen deliberately survives loads: stale stamps can never equal a gen
	// they have not seen, so rows need no clearing between topologies. The
	// wrap guard keeps that invariant over arbitrarily long lifetimes.
	if a.gen > math.MaxInt32/2 {
		for i := range a.stampDist {
			a.stampDist[i] = 0
		}
		for i := range a.rowGen {
			a.rowGen[i] = 0
		}
		for i := range a.cGen {
			a.cGen[i] = 0
		}
		for i := range a.sFrGen {
			a.sFrGen[i] = 0
		}
		a.gen = 0
	}
	if cap(a.probeFull) < n {
		a.probeFull = make([]bool, n)
		a.rowEpoch = make([]int32, n)
	}
	a.probeFull = a.probeFull[:n]
	a.rowEpoch = a.rowEpoch[:n]
	a.loadGen = a.gen
	a.epoch = 0

	for i := range a.adjOff {
		a.adjOff[i] = 0
	}
	for _, l := range a.links {
		a.adjOff[l.U+1]++
		a.adjOff[l.V+1]++
	}
	for i := 0; i < n; i++ {
		a.adjOff[i+1] += a.adjOff[i]
	}
	copy(a.cur, a.adjOff[:n])
	a.useMask = !a.forceScalar
	a.wide = a.useMask && n > 64
	if a.useMask {
		// Private level arrays for the bidirectional distance query; gen-
		// stamped like stampDist so starting a query is O(1), with the same
		// wrap guard.
		if a.bGen > math.MaxInt32/2 {
			for i := range a.bLvS {
				a.bLvS[i] = 0
			}
			for i := range a.bLvD {
				a.bLvD[i] = 0
			}
			a.bGen = 0
		}
		a.bLvS = grow64(a.bLvS, n)
		a.bLvD = grow64(a.bLvD, n)
		a.bIDsS = grow32(a.bIDsS, n)[:0]
		a.bIDsD = grow32(a.bIDsD, n)[:0]
		a.sLevel = grow32(a.sLevel, n)
		// Claim-tree rows need no clearing: cGen gates every read, and a
		// stale stamp can never exceed the fresh loadGen (see rowGen).
		a.cQueue = grow32(a.cQueue, n*n)
		a.cEnds = grow32(a.cEnds, n*(n+1))
		a.cDepth = grow32(a.cDepth, n)
		a.cGen = grow32(a.cGen, n)
	}
	if a.useMask && !a.wide {
		if cap(a.liveAdj) < n {
			a.liveAdj = make([]uint64, n)
			a.doomed = make([]uint64, n)
		} else {
			a.liveAdj = a.liveAdj[:n]
			a.doomed = a.doomed[:n]
			clear(a.liveAdj)
			clear(a.doomed)
		}
		a.edgeOf = grow32(a.edgeOf, n*n)
		a.usedBy = growU(a.usedBy, m)
		clear(a.usedBy)
		a.rowLive = 0
		// No clearing: a resumable row is read only after resumeStamp
		// validates rowGen and (re)initializes it.
		a.sVis = growU(a.sVis, n)
		a.sFront = growU(a.sFront, n)
		a.cVis = growU(a.cVis, n)
	}
	if a.wide {
		mw := bitset.Words(n)
		a.mw = mw
		a.liveAdjW = growU(a.liveAdjW, n*mw)
		clear(a.liveAdjW)
		a.doomedW = growU(a.doomedW, n*mw)
		clear(a.doomedW)
		a.usedByW = growU(a.usedByW, m*mw)
		clear(a.usedByW)
		a.rowLiveW = growU(a.rowLiveW, mw)
		clear(a.rowLiveW)
		a.labeledW = growU(a.labeledW, mw)
		a.edgeOf = grow32(a.edgeOf, n*n)
		a.bVisS = growU(a.bVisS, mw)
		a.bVisD = growU(a.bVisD, mw)
		a.bFrS = growU(a.bFrS, mw)
		a.bFrD = growU(a.bFrD, mw)
		a.bNext = growU(a.bNext, mw)
		a.sVis = growU(a.sVis, n*mw)
		a.sFront = growU(a.sFront, n*mw)
		a.cVisW = growU(a.cVisW, n*mw)
		a.sFrIDs = grow32(a.sFrIDs, n*bSparse)
		a.sFrCnt = grow32(a.sFrCnt, n)
		a.sFrGen = grow32(a.sFrGen, n)
	}
	// Filling in link-enumeration order reproduces the reference
	// implementation's per-site neighbor order exactly.
	for e, l := range a.links {
		a.caps[e] = float64(l.Count) * theta
		a.arcs[a.cur[l.U]] = int64(e)<<32 | int64(l.V)
		a.cur[l.U]++
		a.arcs[a.cur[l.V]] = int64(e)<<32 | int64(l.U)
		a.cur[l.V]++
		if a.useMask && a.caps[e] > resEps {
			if a.wide {
				a.liveAdjW[l.U*a.mw+l.V>>6] |= 1 << uint(l.V&63)
				a.liveAdjW[l.V*a.mw+l.U>>6] |= 1 << uint(l.U&63)
			} else {
				a.liveAdj[l.U] |= 1 << uint(l.V)
				a.liveAdj[l.V] |= 1 << uint(l.U)
			}
			a.edgeOf[l.U*n+l.V] = int32(e)
			a.edgeOf[l.V*n+l.U] = int32(e)
		}
	}

	// Residuals are fresh, so cuts from the previous run no longer hold.
	a.cutW = (n + 63) / 64
	a.visit = growU(a.visit, a.cutW)
	a.numCuts = 0
	a.cuts = a.cuts[:0]
}

// SetScalarFallback forces every subsequent load onto the scalar BFS path,
// disabling both the single-word and multi-word mask fast paths. Results are
// bit-identical either way — this is the benchmark and differential-test knob
// that measures the masks' speedup and cross-checks their correctness. It
// takes effect at the next load.
func (a *Allocator) SetScalarFallback(on bool) { a.forceScalar = on }

// SetClaimReuse toggles claim-tree reuse across takes (on by default; mask
// paths only). Off forces every claim search onto a cold rebuild — results
// are bit-identical either way, only wall-clock differs — which is the knob
// the claim-repair differential suite flips. It takes effect immediately.
func (a *Allocator) SetClaimReuse(on bool) { a.noClaimReuse = !on }

// SetBase retains the enumeration of a base topology for subsequent
// ThroughputPatched calls. The LinkSet is only read during this call.
func (a *Allocator) SetBase(ls *topology.LinkSet, theta float64) {
	a.baseLinks = ls.AppendLinks(a.baseLinks[:0])
	a.baseN = ls.N
	a.baseTheta = theta
}

// SetBaseLinks is SetBase for callers that already hold the (U, V)-sorted
// enumeration (the delta evaluator shares one snapshot enumeration across
// workers; copying a flat slice avoids concurrent map walks).
func (a *Allocator) SetBaseLinks(n int, links []topology.Link, theta float64) {
	a.baseLinks = append(a.baseLinks[:0], links...)
	a.baseN = n
	a.baseTheta = theta
}

// ThroughputPatched evaluates the tiered greedy assignment on the base
// topology registered by SetBase with a small patch applied: patch entries
// are (U, V)-sorted and carry the NEW circuit count of their pair (0 removes
// it). The result is bit-identical to Throughput on the patched LinkSet —
// the merged enumeration is exactly what AppendLinks would produce (see
// topology.MergePatch) — while skipping the map iteration and sort of a full
// load. This is the allocation warm path of the annealing delta evaluator.
func (a *Allocator) ThroughputPatched(patch []topology.Link, demands []Demand) float64 {
	a.links = topology.MergePatch(a.links[:0], a.baseLinks, patch)
	a.loadFromLinks(a.baseN, a.baseTheta)
	return a.runLoaded(demands, true, nil)
}

// ThroughputLinks is Throughput for callers that already hold the (U, V)-
// sorted enumeration of the effective topology: identical result, without
// walking and sorting a LinkSet first.
func (a *Allocator) ThroughputLinks(n int, links []topology.Link, theta float64, demands []Demand) float64 {
	a.links = append(a.links[:0], links...)
	a.loadFromLinks(n, theta)
	return a.runLoaded(demands, true, nil)
}

func growU(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

// cutHit reports whether a stored failure cut already proves dst unreachable
// from src on the current residuals.
func (a *Allocator) cutHit(src, dst int) bool {
	if a.useMask {
		if a.wide {
			return a.doomedW[src*a.mw+dst>>6]>>uint(dst&63)&1 == 1
		}
		return a.doomed[src]>>uint(dst)&1 == 1
	}
	sw, sb := src>>6, uint(src&63)
	dw, db := dst>>6, uint(dst&63)
	for c := 0; c < a.numCuts; c++ {
		base := c * a.cutW
		if a.cuts[base+sw]>>sb&1 == 1 && a.cuts[base+dw]>>db&1 == 0 {
			return true
		}
	}
	return false
}

// recordCutMask folds a failed mask-BFS's visited set into the doomed
// tables: every member of the cut cannot reach any non-member for the rest
// of the run.
func (a *Allocator) recordCutMask(visited uint64) {
	out := ^visited
	for m := visited; m != 0; m &= m - 1 {
		a.doomed[bits.TrailingZeros64(m)] |= out
	}
}

// recordCutMaskW is recordCutMask for the multi-word path. Bits at positions
// >= n in the last word get set in doomedW rows, exactly as the single-word
// variant sets bits >= n of doomed; they correspond to no node and are never
// tested.
func (a *Allocator) recordCutMaskW(visited []uint64) {
	mw := a.mw
	for wi, vw := range visited {
		base := wi << 6
		for m := vw; m != 0; m &= m - 1 {
			src := base + bits.TrailingZeros64(m)
			row := a.doomedW[src*mw : src*mw+mw]
			for wj := 0; wj < mw; wj++ {
				row[wj] |= ^visited[wj]
			}
		}
	}
}

// recordCut stores the visited set of a failed BFS unless it is already
// known or the memo is full. The visited set is reconstructed from the BFS
// queue — on failure every labeled node was enqueued — so the success path
// pays nothing toward cut bookkeeping.
func (a *Allocator) recordCut() {
	if a.numCuts >= maxCuts {
		return
	}
	for i := 0; i < a.cutW; i++ {
		a.visit[i] = 0
	}
	for _, v := range a.queue {
		a.visit[v>>6] |= 1 << uint(v&63)
	}
next:
	for c := 0; c < a.numCuts; c++ {
		for w := 0; w < a.cutW; w++ {
			if a.cuts[c*a.cutW+w] != a.visit[w] {
				continue next
			}
		}
		return
	}
	a.cuts = append(a.cuts, a.visit[:a.cutW]...)
	a.numCuts++
}

// shortestResidual runs a minimum-hop BFS from src to dst over links with
// positive residual capacity, leaving the prevNode/prevEdge chain and hop
// count behind. It reports whether dst was reached.
//
// Two exact shortcuts keep it off the profile's top line without changing a
// single result:
//
//   - Failure cuts. Within one run residual capacities only decrease (take
//     subtracts, nothing adds), so when a BFS fails, every edge leaving its
//     visited set V had residual <= eps and will keep it for the rest of the
//     run. Any later query with src in V and dst outside V is doomed, and
//     cutHit answers it from two bit tests. Callers never read dist/prev
//     after a failure, so skipping the search is observationally identical.
//
//   - Early exit. The search stops the moment dst is labeled rather than
//     dequeued. dst's dist and prev chain are fixed at labeling time (the
//     scan order is identical to the full BFS up to that point), and the
//     nodes a full BFS would label afterwards influence nothing: bottleneck,
//     take and materializePath only walk dst's prev chain.
func (a *Allocator) shortestResidual(src, dst int) bool {
	const eps = 1e-9
	// Tree reuse: src's latest tree is exactly current if no prev edge of
	// it has saturated since it was built (mask path: rowLive bit; scalar
	// path: no saturation at all since the build). A labeled dst means its
	// prev chain is ready to claim as-is; an unlabeled dst in a full scan is
	// unreachable (and its cut was recorded by the search that built the
	// tree). Only a truncated tree that stopped short of dst needs a fresh
	// search.
	if a.rowGen[src] > a.loadGen {
		var live bool
		switch {
		case !a.useMask:
			live = a.rowEpoch[src] == a.epoch
		case a.wide:
			live = a.rowLiveW[src>>6]>>uint(src&63)&1 == 1
		default:
			live = a.rowLive>>uint(src&63)&1 == 1
		}
		if live {
			if int32(a.stampDist[src*a.n+dst]>>32) == a.rowGen[src] {
				return true
			}
			if a.probeFull[src] {
				return false
			}
		}
	}
	if a.cutHit(src, dst) {
		return false
	}
	a.gen++
	gen := int64(a.gen)
	r := src * a.n
	stampDist := a.stampDist[r : r+a.n]
	prevNE := a.prevNE[r : r+a.n]
	caps := a.caps
	adjOff, arcs := a.adjOff, a.arcs
	stampDist[src] = gen << 32
	a.rowGen[src] = a.gen
	a.rowEpoch[src] = a.epoch
	a.queue = append(a.queue[:0], int32(src))
	if a.wide {
		// Multi-word twin of the single-word mask walk below: per queue node
		// the neighbor words are scanned word-ascending, bits ascending via
		// TrailingZeros64, which is ascending neighbor id — the same order as
		// both the single-word walk and the scalar arc scan, so prev chains,
		// hop counts, early exit, and recorded cuts stay bit-identical.
		edgeOf, n, mw := a.edgeOf, a.n, a.mw
		lab := a.labeledW[:mw]
		clear(lab)
		sw, sb := src>>6, uint(src)&63
		a.rowLiveW[sw] |= 1 << sb
		lab[sw] |= 1 << sb
		for head := 0; head < len(a.queue); head++ {
			v := a.queue[head]
			sdv := stampDist[v] + 1
			vLow := int64(v)
			vRow := a.liveAdjW[int(v)*mw : int(v)*mw+mw]
			for wi := 0; wi < mw; wi++ {
				nw := vRow[wi] &^ lab[wi]
				if nw == 0 {
					continue
				}
				lab[wi] |= nw
				base := wi << 6
				for ; nw != 0; nw &= nw - 1 {
					w := int32(base + bits.TrailingZeros64(nw))
					e := edgeOf[int(v)*n+int(w)]
					stampDist[w] = sdv
					prevNE[w] = int64(e)<<32 | vLow
					a.usedByW[int(e)*mw+sw] |= 1 << sb
					if int(w) == dst {
						a.probeFull[src] = false
						return true
					}
					a.queue = append(a.queue, w)
				}
			}
		}
		a.probeFull[src] = true
		a.recordCutMaskW(lab)
		return false
	}
	if a.useMask {
		// The mask walk labels exactly the nodes the arc scan below would,
		// in the same order (ascending neighbor id), so prev chains, hop
		// counts, early exit, and recorded cuts are all bit-identical.
		edgeOf, usedBy, n := a.edgeOf, a.usedBy, a.n
		srcBit := uint64(1) << uint(src)
		a.rowLive |= srcBit
		labeled := srcBit
		for head := 0; head < len(a.queue); head++ {
			v := a.queue[head]
			sdv := stampDist[v] + 1
			vLow := int64(v)
			nw := a.liveAdj[v] &^ labeled
			labeled |= nw
			for nw != 0 {
				w := int32(bits.TrailingZeros64(nw))
				nw &= nw - 1
				e := edgeOf[int(v)*n+int(w)]
				stampDist[w] = sdv
				prevNE[w] = int64(e)<<32 | vLow
				usedBy[e] |= srcBit
				if int(w) == dst {
					a.probeFull[src] = false
					return true
				}
				a.queue = append(a.queue, w)
			}
		}
		a.probeFull[src] = true
		a.recordCutMask(labeled)
		return false
	}
	for head := 0; head < len(a.queue); head++ {
		v := a.queue[head]
		// dist+1 never carries into the stamp half (hop counts stay < n).
		sdv := stampDist[v] + 1
		vLow := int64(v)
		for j := adjOff[v]; j < adjOff[v+1]; j++ {
			ar := arcs[j]
			w := int32(ar)
			if stampDist[w]>>32 == gen || caps[int32(ar>>32)] <= eps {
				continue
			}
			stampDist[w] = sdv
			prevNE[w] = ar&^0xffffffff | vLow
			if int(w) == dst {
				a.probeFull[src] = false
				return true
			}
			a.queue = append(a.queue, w)
		}
	}
	a.probeFull[src] = true
	a.recordCut()
	return false
}

// probe answers (src, dst) reachability questions from the tree src's
// latest search this load left in its row. Because residuals only decrease
// within a run, a labeled dst yields a permanent lower bound on the current
// hop count, and an unlabeled dst in a full component scan is unreachable
// for the rest of the run — both hold however stale the tree is. known is
// false when the row predates this load or dst lies beyond a truncated
// early-exit tree. probe never touches the prev chains, so callers may act
// on it only for decisions that do not claim a path, and may treat hops
// only as a lower bound.
func (a *Allocator) probe(src, dst int) (found bool, hops int, known bool) {
	if a.rowGen[src] <= a.loadGen {
		return false, 0, false
	}
	sd := a.stampDist[src*a.n+dst]
	if int32(sd>>32) == a.rowGen[src] {
		return true, int(int32(sd)), true
	}
	return false, 0, a.probeFull[src]
}

// bottleneck returns the minimum residual along the found path by walking
// the prev chain (min is order-independent, so walking dst→src matches the
// reference's forward walk exactly).
func (a *Allocator) bottleneck(src, dst int) float64 {
	r := src * a.n
	b := math.Inf(1)
	for v := int32(dst); int(v) != src; {
		pv := a.prevNE[r+int(v)]
		if c := a.caps[int32(pv>>32)]; c < b {
			b = c
		}
		v = int32(pv)
	}
	return b
}

// take subtracts rate from every edge of the found path by walking the
// prev chain. Probe memos need no invalidation here: removing capacity only
// shrinks the positive-residual graph, which preserves every bound probe
// is allowed to report. Edges that saturate leave the live-neighbor masks
// immediately — the same <= resEps test the scalar BFS applies per arc, so
// the masks and the capacities never disagree.
func (a *Allocator) take(src, dst int, rate float64) {
	r := src * a.n
	for v := int32(dst); int(v) != src; {
		pv := a.prevNE[r+int(v)]
		e := int32(pv >> 32)
		a.caps[e] -= rate
		u := int32(pv)
		if a.caps[e] <= resEps {
			a.epoch++ // the positive-residual edge set shrank
			if a.wide {
				mw := a.mw
				ub := a.usedByW[int(e)*mw : int(e)*mw+mw]
				rl := a.rowLiveW[:mw]
				for wi := 0; wi < mw; wi++ {
					rl[wi] &^= ub[wi] // only trees holding e as a prev edge go stale
				}
				a.liveAdjW[int(u)*mw+int(v)>>6] &^= 1 << uint(v&63)
				a.liveAdjW[int(v)*mw+int(u)>>6] &^= 1 << uint(u&63)
			} else if a.useMask {
				a.rowLive &^= a.usedBy[e] // only trees holding e as a prev edge go stale
				a.liveAdj[u] &^= 1 << uint(v)
				a.liveAdj[v] &^= 1 << uint(u)
			}
		}
		v = u
	}
}

// materializePath rebuilds the found path src..dst into the reusable path
// buffer.
func (a *Allocator) materializePath(src, dst int) {
	r := src * a.n
	a.path = a.path[:0]
	for v := int32(dst); ; v = int32(a.prevNE[r+int(v)]) {
		a.path = append(a.path, int(v))
		if int(v) == src {
			break
		}
	}
	for i, j := 0, len(a.path)-1; i < j; i, j = i+1, j-1 {
		a.path[i], a.path[j] = a.path[j], a.path[i]
	}
}

// run executes the greedy assignment (tiered == Algorithm 3, otherwise the
// sequential ablation variant) and returns the total throughput. When rec
// is non-nil it is invoked after every claimed path with the demand index
// and rate, with the path materialized in a.path (valid until the next
// claim); when rec is nil no path is materialized and the run allocates
// nothing in steady state.
func (a *Allocator) run(ls *topology.LinkSet, theta float64, demands []Demand, tiered bool, rec func(i int, rate float64)) float64 {
	a.load(ls, theta)
	return a.runLoaded(demands, tiered, rec)
}

// runLoaded executes the greedy assignment on the residual network already
// built by load/loadFromLinks.
func (a *Allocator) runLoaded(demands []Demand, tiered bool, rec func(i int, rate float64)) float64 {
	const eps = 1e-9
	throughput := 0.0

	if !tiered {
		for i := range demands {
			d := &demands[i]
			unmet := d.RateGbps
			for unmet > eps {
				if !a.shortestResidual(d.Src, d.Dst) {
					break
				}
				rate := math.Min(unmet, a.bottleneck(d.Src, d.Dst))
				if rate <= eps {
					break
				}
				a.take(d.Src, d.Dst, rate)
				unmet -= rate
				throughput += rate
				if rec != nil {
					a.materializePath(d.Src, d.Dst)
					rec(i, rate)
				}
			}
		}
		return throughput
	}

	a.unmet = growF(a.unmet, len(demands))
	a.nextTier = growI(a.nextTier, len(demands))
	a.act = a.act[:0]
	for i, d := range demands {
		a.unmet[i] = d.RateGbps
		a.nextTier[i] = 1
		if d.RateGbps > eps {
			a.act = append(a.act, int32(i))
		}
	}
	// The active list holds exactly the demands with unmet rate and a
	// reachable next tier, in demand order; compacting it in place each tier
	// visits the same demands in the same order as rescanning all of them,
	// without the rescan.
	for l := 1; l <= a.n && len(a.act) > 0; l++ {
		out := a.act[:0]
		for _, i32 := range a.act {
			i := int(i32)
			d := &demands[i]
			if a.nextTier[i] > l {
				out = append(out, i32)
				continue
			}
			for a.unmet[i] > eps {
				// Engine selection (see bidi.go). Mask paths settle the two
				// non-claiming verdicts — unreachable, or reachable only
				// beyond this tier — without ever building a tree: a probe
				// miss advances the source's resumable sweep row just far
				// enough to bound dst (the row then feeds every later probe
				// from this source), and a probe hit whose bound decayed
				// (stamped at an earlier tier than is asking) is re-verified
				// by the bidirectional query, cheap precisely because the
				// bound was small. A bound that fits the tier falls through
				// to the stealth claim search, whose exact current distance
				// either confirms the claim — leaving the canonical prev
				// chain for bottleneck/take — or yields the exact deferral
				// tier. Lower bounds only ever re-examine a demand EARLIER
				// than the canonical flow would, where the claim search
				// repeats the comparison, so which claims happen, in which
				// order, at which rates, is bit-identical.
				if a.useMask {
					// The residual graph is undirected (arcs of an edge
					// share one capacity), so distances are symmetric and
					// dst's row answers the reverse query at the same cost.
					found, hops, known := a.probe(d.Src, d.Dst)
					if !known {
						found, hops, known = a.probe(d.Dst, d.Src)
					}
					if known {
						if !found {
							a.nextTier[i] = math.MaxInt
							break
						}
						if hops > l {
							a.nextTier[i] = hops
							break
						}
						if hops < l {
							found, hops = a.searchBounded(d.Src, d.Dst)
							if !found {
								a.nextTier[i] = math.MaxInt
								break
							}
							if hops > l {
								a.nextTier[i] = hops
								break
							}
						}
					} else {
						// Advance whichever side already holds a row; start
						// one at the source otherwise.
						rs, rd := d.Src, d.Dst
						if a.rowGen[rs] <= a.loadGen && a.rowGen[rd] > a.loadGen {
							rs, rd = rd, rs
						}
						found, bound := a.resumeStamp(rs, rd, l)
						if !found {
							a.nextTier[i] = math.MaxInt
							break
						}
						if bound > l {
							a.nextTier[i] = bound
							break
						}
					}
					found, hops = a.claimSearch(d.Src, d.Dst)
					if !found {
						a.nextTier[i] = math.MaxInt
						break
					}
					if hops > l {
						a.nextTier[i] = hops
						break
					}
				} else {
					// Scalar fallback: the canonical single-engine flow. A
					// memoized probe tree answers the non-claiming outcomes;
					// the claiming outcome needs the prev chains and current
					// hops, so it falls through to the real search.
					if found, hops, known := a.probe(d.Src, d.Dst); known {
						if !found {
							a.nextTier[i] = math.MaxInt
							break
						}
						if hops > l {
							a.nextTier[i] = hops
							break
						}
					}
					if !a.shortestResidual(d.Src, d.Dst) {
						a.nextTier[i] = math.MaxInt
						break
					}
					if hops := int(int32(a.stampDist[d.Src*a.n+d.Dst])); hops > l {
						a.nextTier[i] = hops
						break
					}
				}
				rate := math.Min(a.unmet[i], a.bottleneck(d.Src, d.Dst))
				if rate <= eps {
					a.nextTier[i] = math.MaxInt
					break
				}
				a.take(d.Src, d.Dst, rate)
				a.unmet[i] -= rate
				throughput += rate
				if rec != nil {
					a.materializePath(d.Src, d.Dst)
					rec(i, rate)
				}
			}
			if a.unmet[i] > eps && a.nextTier[i] <= a.n {
				out = append(out, i32)
			}
		}
		a.act = out
	}
	return throughput
}

// Throughput evaluates the tiered greedy assignment and returns only the
// total throughput — the annealing energy. It materializes no paths and
// performs zero allocations in steady state (asserted by
// TestAllocatorThroughputZeroAlloc).
func (a *Allocator) Throughput(ls *topology.LinkSet, theta float64, demands []Demand) float64 {
	return a.run(ls, theta, demands, true, nil)
}

// Greedy runs the tiered greedy assignment and returns the full Result.
// The paths in the result are fresh copies owned by the caller.
func (a *Allocator) Greedy(ls *topology.LinkSet, theta float64, demands []Demand) *Result {
	res := &Result{Alloc: make(map[int][]transfer.PathRate, len(demands))}
	res.Throughput = a.run(ls, theta, demands, true, func(i int, rate float64) {
		id := demands[i].ID
		res.Alloc[id] = append(res.Alloc[id], transfer.PathRate{Path: append([]int(nil), a.path...), Rate: rate})
	})
	return res
}

// GreedySequential runs the no-tier ablation variant and returns the full
// Result. The paths in the result are fresh copies owned by the caller.
func (a *Allocator) GreedySequential(ls *topology.LinkSet, theta float64, demands []Demand) *Result {
	res := &Result{Alloc: make(map[int][]transfer.PathRate, len(demands))}
	res.Throughput = a.run(ls, theta, demands, false, func(i int, rate float64) {
		id := demands[i].ID
		res.Alloc[id] = append(res.Alloc[id], transfer.PathRate{Path: append([]int(nil), a.path...), Rate: rate})
	})
	return res
}
