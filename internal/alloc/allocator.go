package alloc

import (
	"math"

	"owan/internal/topology"
	"owan/internal/transfer"
)

// Allocator runs the greedy multi-path assignment on flat, edge-id-indexed
// arrays with reusable scratch, so that the annealing energy function —
// which evaluates thousands of candidate topologies per slot — performs
// zero heap allocations in steady state.
//
// Edge ids are minted per load from the LinkSet: edge e is the e-th link of
// the (U, V)-sorted enumeration (topology.LinkSet.AppendLinks), residual
// capacities live in a dense []float64 indexed by edge id, and adjacency is
// CSR-shaped (adjOff/adjTo/adjEdge). The BFS uses a ring-buffer queue and
// reconstructs paths by walking the prevNode/prevEdge chains, so bottleneck
// and take never look up an edge by endpoint pair.
//
// Scratch ownership rules: an Allocator owns its buffers exclusively and is
// not safe for concurrent use. Each worker of the parallel annealing engine
// owns one Allocator, exactly as it owns one cloned optical.State. Buffers
// grow monotonically and are retained across calls; results returned by
// Greedy/GreedySequential copy every path out of the scratch, so they do
// not alias it.
//
// Results are bit-identical to the map-based reference implementation in
// reference.go: the CSR adjacency preserves the reference's neighbor order
// (both enumerate links in (U, V)-sorted order), the ring-buffer BFS visits
// vertices in the same FIFO order, and rates are computed and subtracted in
// the same sequence, so every float operation sees the same operands.
type Allocator struct {
	n     int
	links []topology.Link // scratch for LinkSet.AppendLinks

	// Flat residual network (per load).
	caps    []float64 // residual capacity by edge id
	adjOff  []int32   // n+1 CSR offsets
	adjTo   []int32   // neighbor site per directed arc
	adjEdge []int32   // undirected edge id per directed arc
	cur     []int32   // CSR fill cursor

	// BFS scratch.
	dist     []int32
	prevNode []int32
	prevEdge []int32
	queue    []int32

	// Per-demand scratch.
	unmet    []float64
	nextTier []int

	// Path materialization scratch (only used when recording allocations).
	path []int
}

// NewAllocator returns an empty allocator; buffers are sized lazily on
// first use and reused afterwards.
func NewAllocator() *Allocator { return &Allocator{} }

func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func grow32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growI(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// load rebuilds the flat residual network for a topology, reusing every
// buffer from the previous load.
func (a *Allocator) load(ls *topology.LinkSet, theta float64) {
	a.links = ls.AppendLinks(a.links[:0])
	n, m := ls.N, len(a.links)
	a.n = n
	a.caps = growF(a.caps, m)
	a.adjOff = grow32(a.adjOff, n+1)
	a.adjTo = grow32(a.adjTo, 2*m)
	a.adjEdge = grow32(a.adjEdge, 2*m)
	a.cur = grow32(a.cur, n)
	a.dist = grow32(a.dist, n)
	a.prevNode = grow32(a.prevNode, n)
	a.prevEdge = grow32(a.prevEdge, n)

	for i := range a.adjOff {
		a.adjOff[i] = 0
	}
	for _, l := range a.links {
		a.adjOff[l.U+1]++
		a.adjOff[l.V+1]++
	}
	for i := 0; i < n; i++ {
		a.adjOff[i+1] += a.adjOff[i]
	}
	copy(a.cur, a.adjOff[:n])
	// Filling in link-enumeration order reproduces the reference
	// implementation's per-site neighbor order exactly.
	for e, l := range a.links {
		a.caps[e] = float64(l.Count) * theta
		a.adjTo[a.cur[l.U]] = int32(l.V)
		a.adjEdge[a.cur[l.U]] = int32(e)
		a.cur[l.U]++
		a.adjTo[a.cur[l.V]] = int32(l.U)
		a.adjEdge[a.cur[l.V]] = int32(e)
		a.cur[l.V]++
	}
}

// shortestResidual runs a minimum-hop BFS from src to dst over links with
// positive residual capacity, leaving the prevNode/prevEdge chain and hop
// count behind. It reports whether dst was reached.
func (a *Allocator) shortestResidual(src, dst int) bool {
	const eps = 1e-9
	for i := 0; i < a.n; i++ {
		a.dist[i] = -1
	}
	a.dist[src] = 0
	a.queue = append(a.queue[:0], int32(src))
	for head := 0; head < len(a.queue); head++ {
		v := a.queue[head]
		if int(v) == dst {
			break
		}
		for j := a.adjOff[v]; j < a.adjOff[v+1]; j++ {
			w := a.adjTo[j]
			if a.dist[w] >= 0 || a.caps[a.adjEdge[j]] <= eps {
				continue
			}
			a.dist[w] = a.dist[v] + 1
			a.prevNode[w] = v
			a.prevEdge[w] = a.adjEdge[j]
			a.queue = append(a.queue, w)
		}
	}
	return a.dist[dst] >= 0
}

// bottleneck returns the minimum residual along the found path by walking
// the prev chain (min is order-independent, so walking dst→src matches the
// reference's forward walk exactly).
func (a *Allocator) bottleneck(src, dst int) float64 {
	b := math.Inf(1)
	for v := int32(dst); int(v) != src; v = a.prevNode[v] {
		if c := a.caps[a.prevEdge[v]]; c < b {
			b = c
		}
	}
	return b
}

// take subtracts rate from every edge of the found path.
func (a *Allocator) take(src, dst int, rate float64) {
	for v := int32(dst); int(v) != src; v = a.prevNode[v] {
		a.caps[a.prevEdge[v]] -= rate
	}
}

// materializePath rebuilds the found path src..dst into the reusable path
// buffer.
func (a *Allocator) materializePath(src, dst int) {
	a.path = a.path[:0]
	for v := int32(dst); ; v = a.prevNode[v] {
		a.path = append(a.path, int(v))
		if int(v) == src {
			break
		}
	}
	for i, j := 0, len(a.path)-1; i < j; i, j = i+1, j-1 {
		a.path[i], a.path[j] = a.path[j], a.path[i]
	}
}

// run executes the greedy assignment (tiered == Algorithm 3, otherwise the
// sequential ablation variant) and returns the total throughput. When rec
// is non-nil it is invoked after every claimed path with the demand index
// and rate, with the path materialized in a.path (valid until the next
// claim); when rec is nil no path is materialized and the run allocates
// nothing in steady state.
func (a *Allocator) run(ls *topology.LinkSet, theta float64, demands []Demand, tiered bool, rec func(i int, rate float64)) float64 {
	const eps = 1e-9
	a.load(ls, theta)
	throughput := 0.0

	if !tiered {
		for i := range demands {
			d := &demands[i]
			unmet := d.RateGbps
			for unmet > eps {
				if !a.shortestResidual(d.Src, d.Dst) {
					break
				}
				rate := math.Min(unmet, a.bottleneck(d.Src, d.Dst))
				if rate <= eps {
					break
				}
				a.take(d.Src, d.Dst, rate)
				unmet -= rate
				throughput += rate
				if rec != nil {
					a.materializePath(d.Src, d.Dst)
					rec(i, rate)
				}
			}
		}
		return throughput
	}

	a.unmet = growF(a.unmet, len(demands))
	a.nextTier = growI(a.nextTier, len(demands))
	for i, d := range demands {
		a.unmet[i] = d.RateGbps
		a.nextTier[i] = 1
	}
	for l := 1; l <= ls.N; l++ {
		anyUnmet := false
		for i := range demands {
			d := &demands[i]
			if a.unmet[i] <= eps || a.nextTier[i] > l {
				if a.unmet[i] > eps && a.nextTier[i] <= ls.N {
					anyUnmet = true
				}
				continue
			}
			for a.unmet[i] > eps {
				if !a.shortestResidual(d.Src, d.Dst) {
					a.nextTier[i] = math.MaxInt
					break
				}
				if hops := int(a.dist[d.Dst]); hops > l {
					a.nextTier[i] = hops
					anyUnmet = true
					break
				}
				rate := math.Min(a.unmet[i], a.bottleneck(d.Src, d.Dst))
				if rate <= eps {
					a.nextTier[i] = math.MaxInt
					break
				}
				a.take(d.Src, d.Dst, rate)
				a.unmet[i] -= rate
				throughput += rate
				if rec != nil {
					a.materializePath(d.Src, d.Dst)
					rec(i, rate)
				}
			}
		}
		if !anyUnmet {
			break
		}
	}
	return throughput
}

// Throughput evaluates the tiered greedy assignment and returns only the
// total throughput — the annealing energy. It materializes no paths and
// performs zero allocations in steady state (asserted by
// TestAllocatorThroughputZeroAlloc).
func (a *Allocator) Throughput(ls *topology.LinkSet, theta float64, demands []Demand) float64 {
	return a.run(ls, theta, demands, true, nil)
}

// Greedy runs the tiered greedy assignment and returns the full Result.
// The paths in the result are fresh copies owned by the caller.
func (a *Allocator) Greedy(ls *topology.LinkSet, theta float64, demands []Demand) *Result {
	res := &Result{Alloc: make(map[int][]transfer.PathRate, len(demands))}
	res.Throughput = a.run(ls, theta, demands, true, func(i int, rate float64) {
		id := demands[i].ID
		res.Alloc[id] = append(res.Alloc[id], transfer.PathRate{Path: append([]int(nil), a.path...), Rate: rate})
	})
	return res
}

// GreedySequential runs the no-tier ablation variant and returns the full
// Result. The paths in the result are fresh copies owned by the caller.
func (a *Allocator) GreedySequential(ls *topology.LinkSet, theta float64, demands []Demand) *Result {
	res := &Result{Alloc: make(map[int][]transfer.PathRate, len(demands))}
	res.Throughput = a.run(ls, theta, demands, false, func(i int, rate float64) {
		id := demands[i].ID
		res.Alloc[id] = append(res.Alloc[id], transfer.PathRate{Path: append([]int(nil), a.path...), Rate: rate})
	})
	return res
}
