// Package tcp models TCP congestion control at flow granularity (AIMD
// with slow start), sufficient to reproduce the transport-level effects
// the paper observes on its testbed: the ~10% total-throughput dip during
// one-shot updates comes from TCP backing off on the circuits that went
// dark and then recovering, not from the optical outage alone (§5.4).
//
// The model is deliberately small: flows share a single bottleneck (the
// links Owan's allocator assigns are per-flow rate limits, so the only
// shared queue that matters during an update is the disrupted link), time
// advances in RTT rounds, and loss is synchronous when demand exceeds
// capacity.
package tcp

import (
	"fmt"
	"math"
)

// Flow is one TCP connection's congestion state, in MSS units.
type Flow struct {
	// Cwnd is the congestion window (segments).
	Cwnd float64
	// SSThresh is the slow-start threshold (segments).
	SSThresh float64
	// Blocked marks a flow whose path is down (it cannot send and times
	// out back to a minimal window).
	Blocked bool
}

// NewFlow returns a flow starting in slow start.
func NewFlow() *Flow {
	return &Flow{Cwnd: 1, SSThresh: math.Inf(1)}
}

// step advances one RTT: grow the window (slow start below ssthresh,
// congestion avoidance above), or halve on loss.
func (f *Flow) step(loss bool) {
	if f.Blocked {
		// Retransmission timeouts collapse the window.
		f.SSThresh = math.Max(2, f.Cwnd/2)
		f.Cwnd = 1
		return
	}
	if loss {
		f.SSThresh = math.Max(2, f.Cwnd/2)
		f.Cwnd = f.SSThresh // fast recovery (Reno-style, no timeout)
		return
	}
	if f.Cwnd < f.SSThresh {
		f.Cwnd *= 2 // slow start
	} else {
		f.Cwnd++ // congestion avoidance
	}
}

// Bottleneck simulates n flows over one shared link.
type Bottleneck struct {
	// CapacitySegments is how many segments the link carries per RTT.
	CapacitySegments float64
	Flows            []*Flow
}

// NewBottleneck creates a bottleneck with n fresh flows.
func NewBottleneck(capacitySegments float64, n int) (*Bottleneck, error) {
	if capacitySegments <= 0 || n <= 0 {
		return nil, fmt.Errorf("tcp: capacity and flow count must be positive")
	}
	b := &Bottleneck{CapacitySegments: capacitySegments}
	for i := 0; i < n; i++ {
		b.Flows = append(b.Flows, NewFlow())
	}
	return b, nil
}

// Offered returns the total window of unblocked flows.
func (b *Bottleneck) Offered() float64 {
	t := 0.0
	for _, f := range b.Flows {
		if !f.Blocked {
			t += f.Cwnd
		}
	}
	return t
}

// Goodput returns the segments delivered this RTT: the offered load capped
// by capacity.
func (b *Bottleneck) Goodput() float64 {
	return math.Min(b.Offered(), b.CapacitySegments)
}

// Step advances one RTT. When the offered load exceeds capacity, every
// unblocked flow sees loss (synchronized drop-tail behaviour — the worst
// case the paper's TCP traffic hits during one-shot updates).
func (b *Bottleneck) Step() {
	loss := b.Offered() > b.CapacitySegments
	for _, f := range b.Flows {
		f.step(loss)
	}
}

// Sample is one point of a goodput-versus-time curve, in RTT rounds.
type Sample struct {
	Round   int
	Goodput float64
}

// OutageRecovery simulates flows reaching steady state, then an outage of
// outageRounds (flows blocked: the one-shot dark window), then recovery.
// It returns the goodput timeline from just before the outage until
// recoveryRounds after it, which is the TCP-level version of the paper's
// Figure 10(b) one-shot curve.
func OutageRecovery(capacitySegments float64, flows, warmupRounds, outageRounds, recoveryRounds int) ([]Sample, error) {
	b, err := NewBottleneck(capacitySegments, flows)
	if err != nil {
		return nil, err
	}
	if warmupRounds <= 0 || outageRounds < 0 || recoveryRounds < 0 {
		return nil, fmt.Errorf("tcp: invalid round counts")
	}
	for i := 0; i < warmupRounds; i++ {
		b.Step()
	}
	var out []Sample
	round := 0
	emit := func() {
		out = append(out, Sample{Round: round, Goodput: b.Goodput()})
		round++
	}
	emit() // steady state, pre-outage
	for _, f := range b.Flows {
		f.Blocked = true
	}
	for i := 0; i < outageRounds; i++ {
		b.Step()
		emit()
	}
	for _, f := range b.Flows {
		f.Blocked = false
	}
	for i := 0; i < recoveryRounds; i++ {
		b.Step()
		emit()
	}
	return out, nil
}

// RecoveryRounds returns how many rounds after the outage the goodput
// needs to regain the given fraction of its pre-outage level.
func RecoveryRounds(samples []Sample, outageRounds int, fraction float64) int {
	if len(samples) == 0 {
		return -1
	}
	target := samples[0].Goodput * fraction
	for i := outageRounds + 1; i < len(samples); i++ {
		if samples[i].Goodput >= target {
			return samples[i].Round - samples[outageRounds].Round
		}
	}
	return -1
}
