package tcp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSlowStartDoubles(t *testing.T) {
	f := NewFlow()
	f.step(false)
	f.step(false)
	if f.Cwnd != 4 {
		t.Errorf("cwnd = %v after two lossless RTTs, want 4", f.Cwnd)
	}
}

func TestLossHalves(t *testing.T) {
	f := NewFlow()
	f.Cwnd, f.SSThresh = 32, 8 // congestion avoidance
	f.step(true)
	if f.Cwnd != 16 || f.SSThresh != 16 {
		t.Errorf("after loss cwnd=%v ssthresh=%v, want 16/16", f.Cwnd, f.SSThresh)
	}
	f.step(false)
	if f.Cwnd != 17 {
		t.Errorf("congestion avoidance should add 1, got %v", f.Cwnd)
	}
}

func TestBlockedCollapses(t *testing.T) {
	f := NewFlow()
	f.Cwnd = 64
	f.Blocked = true
	f.step(false)
	if f.Cwnd != 1 {
		t.Errorf("blocked flow should collapse to 1, got %v", f.Cwnd)
	}
}

func TestBottleneckSawtooth(t *testing.T) {
	b, err := NewBottleneck(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up past slow start; goodput should hover near capacity with the
	// classic sawtooth: average utilization well above 50%.
	for i := 0; i < 50; i++ {
		b.Step()
	}
	sum := 0.0
	const rounds = 100
	for i := 0; i < rounds; i++ {
		b.Step()
		sum += b.Goodput()
	}
	if util := sum / rounds / 100; util < 0.6 || util > 1.0 {
		t.Errorf("average utilization = %v, want sawtooth in (0.6, 1]", util)
	}
}

func TestFairnessConverges(t *testing.T) {
	// Two synchronized flows end with equal windows (synchronous loss model).
	b, err := NewBottleneck(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Flows[0].Cwnd, b.Flows[0].SSThresh = 90, 45
	b.Flows[1].Cwnd, b.Flows[1].SSThresh = 10, 5
	for i := 0; i < 400; i++ {
		b.Step()
	}
	r := b.Flows[0].Cwnd / b.Flows[1].Cwnd
	if r > 1.8 || r < 0.55 {
		t.Errorf("window ratio = %v, want near fairness (synchronized AIMD narrows the gap)", r)
	}
}

func TestOutageRecoveryShape(t *testing.T) {
	samples, err := OutageRecovery(200, 8, 60, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	pre := samples[0].Goodput
	if pre <= 0 {
		t.Fatal("no steady-state goodput")
	}
	// During the outage goodput is zero.
	for i := 1; i <= 3; i++ {
		if samples[i].Goodput != 0 {
			t.Errorf("round %d: goodput %v during outage, want 0", i, samples[i].Goodput)
		}
	}
	// Recovery happens but not instantly: at least one post-outage round
	// below 90% of the pre-outage level, and eventually >= 90%.
	rec := RecoveryRounds(samples, 3, 0.9)
	if rec <= 0 {
		t.Fatalf("never recovered to 90%% (samples %+v)", samples[:10])
	}
	if rec == 1 {
		t.Error("recovery should take multiple RTTs after a timeout collapse")
	}
}

func TestOutageRecoveryValidation(t *testing.T) {
	if _, err := OutageRecovery(0, 1, 1, 1, 1); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := OutageRecovery(10, 0, 1, 1, 1); err == nil {
		t.Error("zero flows accepted")
	}
	if _, err := OutageRecovery(10, 1, 0, 1, 1); err == nil {
		t.Error("zero warmup accepted")
	}
}

// Property: goodput never exceeds capacity and cwnd stays positive.
func TestInvariants(t *testing.T) {
	check := func(seed int64) bool {
		capSeg := 20 + float64(seed%200)
		if capSeg < 1 {
			capSeg = 50
		}
		n := 1 + int(seed%7+7)%7
		if n < 1 {
			n = 1
		}
		b, err := NewBottleneck(capSeg, n)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			b.Step()
			if b.Goodput() > capSeg+1e-9 {
				return false
			}
			for _, f := range b.Flows {
				if f.Cwnd < 1 || math.IsNaN(f.Cwnd) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
