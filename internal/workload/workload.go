// Package workload synthesizes bulk-transfer workloads following the
// recipe of the paper's evaluation (§5.1): per-site traffic-demand sums
// (standing in for the proprietary router-counter traces), transfers with
// exponentially distributed sizes generated over a fixed horizon against a
// load factor λ, optional deadlines drawn uniformly from [T, σT], and — for
// the inter-DC topology — traffic hotspots that move from site to site.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"owan/internal/transfer"
)

// Config controls workload synthesis.
type Config struct {
	Sites int
	// MeanSizeGbits is the mean of the exponential transfer-size
	// distribution (paper: 500 GB testbed, 5 TB simulations).
	MeanSizeGbits float64
	// TotalDemandGbits is the base sum of per-site traffic demand at load
	// factor 1 (the quantity the paper obtains from traces).
	TotalDemandGbits float64
	// Load is the traffic load factor λ multiplying every site's demand sum.
	Load float64
	// DurationSlots is the arrival horizon ("we generate transfers for two
	// hours"): arrivals are uniform over [0, DurationSlots).
	DurationSlots int
	// DeadlineFactor is σ: deadlines are drawn uniformly from [T, σT] after
	// arrival, measured in slots. Zero disables deadlines.
	DeadlineFactor float64
	// Hotspots enables the inter-DC moving-hotspot behaviour.
	Hotspots bool
	// HotspotSites, if set with Hotspots, restricts hotspots to the first
	// HotspotSites site ids (e.g. super cores); otherwise any site.
	HotspotSites int
	Seed         int64
}

// GB and TB express sizes in gigabits (1 GB = 8 Gbit).
const (
	GB = 8.0
	TB = 8000.0
)

// SiteWeights derives heavy-tailed per-site demand weights (normalized to
// sum 1) deterministically from the seed. A Zipf-like tail matches the
// skewed site populations of real backbones.
func SiteWeights(sites int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, sites)
	sum := 0.0
	for i := range w {
		// Zipf over a random permutation plus noise.
		w[i] = 1 / math.Pow(float64(i+1), 0.8) * (0.5 + rng.Float64())
	}
	rng.Shuffle(sites, func(i, j int) { w[i], w[j] = w[j], w[i] })
	for _, x := range w {
		sum += x
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Generate synthesizes the transfer requests for one run.
//
// Following §5.1: each site gets a demand budget (weight × total × λ);
// transfers are drawn with exponential sizes and assigned to a random
// (src, dst) pair whose budgets are not yet exceeded; arrivals are uniform
// over the horizon; deadlines (if enabled) are uniform in [T, σT] slots
// after arrival.
func Generate(cfg Config) ([]transfer.Request, error) {
	if cfg.Sites < 2 {
		return nil, fmt.Errorf("workload: need at least 2 sites, got %d", cfg.Sites)
	}
	if cfg.MeanSizeGbits <= 0 || cfg.TotalDemandGbits <= 0 || cfg.Load <= 0 {
		return nil, fmt.Errorf("workload: sizes, demand and load must be positive")
	}
	if cfg.DurationSlots <= 0 {
		return nil, fmt.Errorf("workload: nonpositive duration")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	weights := SiteWeights(cfg.Sites, cfg.Seed+1)
	budget := make([]float64, cfg.Sites)
	for i := range budget {
		budget[i] = weights[i] * cfg.TotalDemandGbits * cfg.Load
	}
	used := make([]float64, cfg.Sites)
	// Hotspot sites draw from an extra budget pool (half the base total)
	// so bursts stay bounded by the load factor instead of growing with
	// the number of attempts.
	hotBudget := cfg.TotalDemandGbits * cfg.Load / 2
	hotUsed := 0.0

	// Hotspot schedule: the horizon is split into phases; in each phase one
	// site generates a burst of extra transfers (its budget is temporarily
	// boosted). The hotspot moves at each phase boundary.
	type phase struct {
		site       int
		start, end int
	}
	var phases []phase
	if cfg.Hotspots {
		nPhases := 4
		span := (cfg.DurationSlots + nPhases - 1) / nPhases
		limit := cfg.Sites
		if cfg.HotspotSites > 0 && cfg.HotspotSites < limit {
			limit = cfg.HotspotSites
		}
		for p := 0; p < nPhases; p++ {
			phases = append(phases, phase{
				site:  rng.Intn(limit),
				start: p * span,
				end:   (p + 1) * span,
			})
		}
	}
	hotspotAt := func(slot int) int {
		for _, p := range phases {
			if slot >= p.start && slot < p.end {
				return p.site
			}
		}
		return -1
	}

	var reqs []transfer.Request
	id := 0
	// Draw transfers until both endpoints' budgets are exhausted; cap
	// attempts to guarantee termination when budgets are tiny.
	maxAttempts := 200 * cfg.Sites * cfg.Sites
	for attempt := 0; attempt < maxAttempts; attempt++ {
		size := rng.ExpFloat64() * cfg.MeanSizeGbits
		if size < cfg.MeanSizeGbits/100 {
			size = cfg.MeanSizeGbits / 100 // avoid degenerate zero-size transfers
		}
		arrival := rng.Intn(cfg.DurationSlots)
		src, dst := rng.Intn(cfg.Sites), rng.Intn(cfg.Sites)
		// Hotspot bias: with probability 1/2 during a hotspot phase, the
		// source is the hotspot site regardless of budget state.
		hs := hotspotAt(arrival)
		isHot := hs >= 0 && rng.Float64() < 0.5 && hotUsed+size <= hotBudget
		if isHot {
			src = hs
			for dst == src {
				dst = rng.Intn(cfg.Sites)
			}
		}
		if src == dst {
			continue
		}
		if isHot {
			hotUsed += size
		} else {
			if used[src]+size > budget[src] || used[dst]+size > budget[dst] {
				// Check global exhaustion: if no pair can accept the mean
				// size, stop early.
				if exhausted(used, budget, cfg.MeanSizeGbits/4) && (len(phases) == 0 || hotUsed >= hotBudget*0.9) {
					break
				}
				continue
			}
			used[src] += size
			used[dst] += size
		}
		r := transfer.Request{
			ID: id, Src: src, Dst: dst, SizeGbits: size, Arrival: arrival,
			Deadline: transfer.NoDeadline,
		}
		if cfg.DeadlineFactor > 0 {
			// Uniform in [T, σT] slots after arrival (T = one slot).
			d := 1 + rng.Float64()*(cfg.DeadlineFactor-1)
			r.Deadline = arrival + int(math.Ceil(d))
		}
		if err := r.Validate(); err != nil {
			return nil, err
		}
		reqs = append(reqs, r)
		id++
	}
	return reqs, nil
}

func exhausted(used, budget []float64, probe float64) bool {
	free := 0
	for i := range used {
		if budget[i]-used[i] > probe {
			free++
			if free >= 2 {
				return false
			}
		}
	}
	return true
}

// TotalGbits sums the request sizes.
func TotalGbits(reqs []transfer.Request) float64 {
	t := 0.0
	for _, r := range reqs {
		t += r.SizeGbits
	}
	return t
}
