package workload

import (
	"math"
	"testing"

	"owan/internal/transfer"
)

func baseCfg() Config {
	return Config{
		Sites:            9,
		MeanSizeGbits:    500 * GB,
		TotalDemandGbits: 500 * TB,
		Load:             1,
		DurationSlots:    24,
		Seed:             42,
	}
}

func TestGenerateBasic(t *testing.T) {
	reqs, err := Generate(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 50 {
		t.Fatalf("only %d transfers generated", len(reqs))
	}
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		if r.Arrival < 0 || r.Arrival >= 24 {
			t.Errorf("arrival %d out of horizon", r.Arrival)
		}
		if r.Deadline != transfer.NoDeadline {
			t.Errorf("deadlines disabled but transfer %d has one", r.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(baseCfg())
	b, _ := Generate(baseCfg())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := baseCfg()
	a, _ := Generate(cfg)
	cfg.Seed = 43
	b, _ := Generate(cfg)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestLoadScalesVolume(t *testing.T) {
	cfg := baseCfg()
	cfg.Load = 0.5
	low, _ := Generate(cfg)
	cfg.Load = 2.0
	high, _ := Generate(cfg)
	lv, hv := TotalGbits(low), TotalGbits(high)
	if hv < 2*lv {
		t.Errorf("volume at load 2 (%v) should be well above 2x volume at load 0.5 (%v)", hv, lv)
	}
}

func TestExponentialSizes(t *testing.T) {
	cfg := baseCfg()
	cfg.TotalDemandGbits = 5000 * TB // plenty of budget for a good sample
	reqs, _ := Generate(cfg)
	if len(reqs) < 200 {
		t.Skipf("sample too small: %d", len(reqs))
	}
	mean := TotalGbits(reqs) / float64(len(reqs))
	if mean < 0.5*cfg.MeanSizeGbits || mean > 1.5*cfg.MeanSizeGbits {
		t.Errorf("empirical mean %v vs configured %v", mean, cfg.MeanSizeGbits)
	}
	// Exponential: coefficient of variation ~1.
	var ss float64
	for _, r := range reqs {
		d := r.SizeGbits - mean
		ss += d * d
	}
	cv := math.Sqrt(ss/float64(len(reqs))) / mean
	if cv < 0.6 || cv > 1.4 {
		t.Errorf("size CV = %v, want ~1 for exponential", cv)
	}
}

func TestDeadlineRange(t *testing.T) {
	cfg := baseCfg()
	cfg.DeadlineFactor = 20
	reqs, _ := Generate(cfg)
	for _, r := range reqs {
		if r.Deadline == transfer.NoDeadline {
			t.Fatal("deadline factor set but no deadline assigned")
		}
		lag := r.Deadline - r.Arrival
		if lag < 1 || lag > 20 {
			t.Errorf("deadline lag %d outside [1, 20]", lag)
		}
	}
}

func TestHotspotsBiasTraffic(t *testing.T) {
	cfg := baseCfg()
	cfg.Sites = 25
	cfg.Hotspots = true
	cfg.HotspotSites = 5
	reqs, _ := Generate(cfg)
	if len(reqs) == 0 {
		t.Fatal("no transfers")
	}
	// Hotspot sources are restricted to the first 5 sites; they should be
	// heavily over-represented as sources.
	hot := 0
	for _, r := range reqs {
		if r.Src < 5 {
			hot++
		}
	}
	if frac := float64(hot) / float64(len(reqs)); frac < 0.3 {
		t.Errorf("hotspot share = %v, want >= 0.3", frac)
	}
}

func TestSiteWeightsNormalized(t *testing.T) {
	w := SiteWeights(40, 1)
	sum := 0.0
	for _, x := range w {
		if x <= 0 {
			t.Error("nonpositive weight")
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %v", sum)
	}
	// Heavy tail: max weight should dominate min weight.
	lo, hi := w[0], w[0]
	for _, x := range w {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	if hi/lo < 3 {
		t.Errorf("weights too uniform: max/min = %v", hi/lo)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	for _, mod := range []func(*Config){
		func(c *Config) { c.Sites = 1 },
		func(c *Config) { c.MeanSizeGbits = 0 },
		func(c *Config) { c.Load = 0 },
		func(c *Config) { c.DurationSlots = 0 },
		func(c *Config) { c.TotalDemandGbits = -1 },
	} {
		cfg := baseCfg()
		mod(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}
