package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"owan/internal/transfer"
)

// Trace is a serializable transfer workload: the synthetic stand-in for
// the router-counter traces the paper collects, in a replayable form so
// experiments can be repeated bit-for-bit or edited by hand.
type Trace struct {
	// Description is free-form provenance (generator config, date).
	Description string             `json:"description,omitempty"`
	Requests    []transfer.Request `json:"requests"`
}

// WriteTrace serializes a trace as indented JSON.
func WriteTrace(w io.Writer, tr *Trace) error {
	b, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadTrace parses and validates a trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	tr := new(Trace)
	if err := json.Unmarshal(b, tr); err != nil {
		return nil, fmt.Errorf("workload: parse trace: %w", err)
	}
	seen := map[int]bool{}
	for i, req := range tr.Requests {
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("workload: trace request %d: %w", i, err)
		}
		if seen[req.ID] {
			return nil, fmt.Errorf("workload: duplicate transfer id %d", req.ID)
		}
		seen[req.ID] = true
	}
	return tr, nil
}
