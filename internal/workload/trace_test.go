package workload

import (
	"bytes"
	"strings"
	"testing"

	"owan/internal/transfer"
)

func TestTraceRoundTrip(t *testing.T) {
	reqs, err := Generate(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{Description: "unit test", Requests: reqs}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Description != "unit test" || len(back.Requests) != len(reqs) {
		t.Fatalf("header mismatch: %q %d", back.Description, len(back.Requests))
	}
	for i := range reqs {
		if back.Requests[i] != reqs[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestReadTraceValidates(t *testing.T) {
	bad := `{"requests":[{"ID":0,"Src":1,"Dst":1,"SizeGbits":10,"Arrival":0,"Deadline":-1}]}`
	if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
		t.Error("src==dst request accepted")
	}
	dup := `{"requests":[
	  {"ID":0,"Src":0,"Dst":1,"SizeGbits":10,"Arrival":0,"Deadline":-1},
	  {"ID":0,"Src":1,"Dst":2,"SizeGbits":10,"Arrival":0,"Deadline":-1}]}`
	if _, err := ReadTrace(strings.NewReader(dup)); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := ReadTrace(strings.NewReader("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestTraceEmptyOK(t *testing.T) {
	tr, err := ReadTrace(strings.NewReader(`{"requests":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 0 {
		t.Error("expected empty trace")
	}
	_ = transfer.Request{}
}
