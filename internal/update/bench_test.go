package update

import "testing"

// benchPlan measures the steady-state planner path: one persistent Scratch
// planning the same slot-to-slot reconfiguration over and over, exactly how
// sim.Run drives it. ref toggles the retained map-based engine for the
// before/after comparison.
func benchPlan(b *testing.B, sites int, ref bool) {
	g := newCaseGen(sites)
	cfg, oldS, newS := g.gen(int64(9000+sites), scenBase)
	scr := NewScratch()
	if _, err := scr.BuildPlan(cfg, oldS, newS); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if ref {
			_, err = referencePlan(cfg, oldS, newS)
		} else {
			_, err = scr.BuildPlan(cfg, oldS, newS)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdatePlanISP40(b *testing.B)  { benchPlan(b, 40, false) }
func BenchmarkUpdatePlanISP200(b *testing.B) { benchPlan(b, 200, false) }

// The retained reference engine, for the honest before/after comparison
// (the map-based reference is the pre-PR planner shape).
func BenchmarkUpdatePlanRefISP40(b *testing.B)  { benchPlan(b, 40, true) }
func BenchmarkUpdatePlanRefISP200(b *testing.B) { benchPlan(b, 200, true) }

// TestScratchPlanZeroAlloc pins the acceptance criterion directly: after
// warm-up, the flat planner's scratch path performs zero allocations per
// plan, timeline included.
func TestScratchPlanZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is skipped in -short runs")
	}
	g := newCaseGen(40)
	cfg, oldS, newS := g.gen(9040, scenBase)
	scr := NewScratch()
	plan, err := scr.BuildPlan(cfg, oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	scr.Timeline(plan, oldS)
	allocs := testing.AllocsPerRun(50, func() {
		p, err := scr.BuildPlan(cfg, oldS, newS)
		if err != nil {
			t.Fatal(err)
		}
		scr.Timeline(p, oldS)
	})
	if allocs != 0 {
		t.Fatalf("steady-state plan+timeline allocates %.1f times per run, want 0", allocs)
	}
}
