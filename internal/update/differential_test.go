package update

import (
	"errors"
	"reflect"
	"testing"
)

// TestFlatPlannerDifferential pins the flat engine bit-identical to the
// retained map-based reference across 300 randomized slot-to-slot plans at
// ISP40/ISP100/ISP200: same rounds, same op order, same forced detours,
// same timeline floats. Every third seed provisions the new state after a
// fiber failure, and every third starves spare wavelengths so the
// deadlock/forced-detour fallback fires; the test asserts both of those
// branches were actually exercised (non-vacuity).
func TestFlatPlannerDifferential(t *testing.T) {
	sizes := []struct{ sites, seeds int }{{40, 150}, {100, 100}, {200, 50}}
	if testing.Short() {
		sizes = []struct{ sites, seeds int }{{40, 30}, {100, 10}, {200, 4}}
	}
	totalDetours, failurePlans, deadlocks := 0, 0, 0
	for _, sz := range sizes {
		g := newCaseGen(sz.sites)
		scr := NewScratch()
		for s := 0; s < sz.seeds; s++ {
			scen := s % numScen
			cfg, oldS, newS := g.gen(int64(1000*sz.sites+s), scen)
			want, werr := referencePlan(cfg, oldS, newS)
			got, gerr := scr.BuildPlan(cfg, oldS, newS)
			if (werr != nil) != (gerr != nil) || (werr != nil && !errors.Is(gerr, werr)) {
				t.Fatalf("sites=%d seed=%d scen=%d: error mismatch: reference=%v flat=%v", sz.sites, s, scen, werr, gerr)
			}
			if werr != nil {
				if errors.Is(werr, ErrDeadlock) {
					deadlocks++
					// Both engines refused; they must also have walked the
					// same partial schedule — same rounds, same forced
					// detours — before giving up.
					partial := scr.lastPartial()
					if partial.ForcedDetours != want.ForcedDetours {
						t.Fatalf("sites=%d seed=%d scen=%d: partial detours: flat=%d reference=%d", sz.sites, s, scen, partial.ForcedDetours, want.ForcedDetours)
					}
					if !reflect.DeepEqual(partial.Rounds, want.Rounds) {
						t.Fatalf("sites=%d seed=%d scen=%d: partial plans before deadlock differ: %s", sz.sites, s, scen, diffRounds(partial, want))
					}
					totalDetours += partial.ForcedDetours
				}
				continue
			}
			if got.ForcedDetours != want.ForcedDetours {
				t.Fatalf("sites=%d seed=%d scen=%d: detours: flat=%d reference=%d", sz.sites, s, scen, got.ForcedDetours, want.ForcedDetours)
			}
			if !reflect.DeepEqual(got.Rounds, want.Rounds) {
				t.Fatalf("sites=%d seed=%d scen=%d: plans differ:\nflat:      %v\nreference: %v", sz.sites, s, scen, diffRounds(got, want), want.Rounds)
			}
			wtl := referenceTimeline(want, oldS)
			gtl := scr.Timeline(got, oldS)
			if !reflect.DeepEqual(gtl, wtl) {
				t.Fatalf("sites=%d seed=%d scen=%d: timelines differ:\nflat:      %v\nreference: %v", sz.sites, s, scen, gtl, wtl)
			}
			totalDetours += got.ForcedDetours
			if scen == scenFailure {
				failurePlans++
			}
		}
	}
	if totalDetours == 0 {
		t.Fatalf("no generated case forced a detour; the fallback path went untested")
	}
	if failurePlans == 0 {
		t.Fatalf("no fiber-failure case produced a plan; the failure path went untested")
	}
	t.Logf("differential: %d forced detours, %d failure-case plans, %d shared deadlocks", totalDetours, failurePlans, deadlocks)
}

// diffRounds summarizes the first diverging round for failure messages.
func diffRounds(got, want *Plan) string {
	for i := range got.Rounds {
		if i >= len(want.Rounds) || !reflect.DeepEqual(got.Rounds[i], want.Rounds[i]) {
			return "first divergence at round " + itoa(i)
		}
	}
	return "flat has fewer rounds: " + itoa(len(got.Rounds)) + " vs " + itoa(len(want.Rounds))
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// TestDuplicateRouteRejectedByBothEngines: a state carrying the same
// (TransferID, Path) twice violates the route-identity invariant; both
// engines must refuse it with ErrDuplicateRoute instead of silently
// collapsing the duplicate.
func TestDuplicateRouteRejectedByBothEngines(t *testing.T) {
	g := newCaseGen(40)
	cfg, oldS, newS := g.gen(42, scenBase)
	if len(newS.Routes) == 0 {
		t.Fatal("generated case has no routes")
	}
	newS.Routes = append(newS.Routes, newS.Routes[0])
	if _, err := referencePlan(cfg, oldS, newS); !errors.Is(err, ErrDuplicateRoute) {
		t.Fatalf("reference: got %v, want ErrDuplicateRoute", err)
	}
	if _, err := NewScratch().BuildPlan(cfg, oldS, newS); !errors.Is(err, ErrDuplicateRoute) {
		t.Fatalf("flat: got %v, want ErrDuplicateRoute", err)
	}
}

// TestTimelineStepConsistency replays flat-engine plans on realistic cases
// round by round and checks the plan and its timeline agree step for step:
// no link is oversubscribed after any round, no fiber count goes negative,
// and every timeline sample equals the live-route sum of the replayed
// state at that round boundary. The curve itself is pinned bit-identical
// to referenceTimeline by the differential; this test checks the curve is
// consistent with what the rounds actually do.
func TestTimelineStepConsistency(t *testing.T) {
	sizes := []struct{ sites, seeds int }{{40, 40}, {100, 12}}
	if testing.Short() {
		sizes = []struct{ sites, seeds int }{{40, 8}}
	}
	for _, sz := range sizes {
		g := newCaseGen(sz.sites)
		scr := NewScratch()
		for s := 0; s < sz.seeds; s++ {
			cfg, oldS, newS := g.gen(int64(7000*sz.sites+s), s%3)
			plan, err := scr.BuildPlan(cfg, oldS, newS)
			if err != nil {
				continue
			}
			tl := scr.Timeline(plan, oldS)
			if len(tl) != len(plan.Rounds)+1 {
				t.Fatalf("sites=%d seed=%d: %d samples for %d rounds", sz.sites, s, len(tl), len(plan.Rounds))
			}

			circuits := map[[2]int]int{}
			for l, c := range oldS.Circuits {
				circuits[l] = c
			}
			freeW := map[int]int{}
			for f, c := range cfg.FiberFree {
				freeW[f] = c
			}
			// Link loads replay the engine's own accounting (op-rate
			// arithmetic); the live-route table replays the timeline's
			// keyed-upsert semantics, which is what each sample sums.
			load := map[[2]int]float64{}
			live := map[rkey]float64{}
			for _, r := range oldS.Routes {
				for _, l := range routeLinks(r.Path) {
					load[l] += r.Rate
				}
				live[routeKeyOf(r.TransferID, r.Path)] = r.Rate
			}
			check := func(round int) {
				for l, ld := range load {
					if ld > float64(circuits[l])*cfg.Theta+1e-6 {
						t.Fatalf("sites=%d seed=%d round %d: link %v oversubscribed: %.3f > %d×θ", sz.sites, s, round, l, ld, circuits[l])
					}
				}
				for f, c := range freeW {
					if c < 0 {
						t.Fatalf("sites=%d seed=%d round %d: fiber %d wavelength count negative", sz.sites, s, round, f)
					}
				}
				carried := 0.0
				for _, rate := range live {
					carried += rate
				}
				if d := tl[round].Throughput - carried; d > 1e-6 || d < -1e-6 {
					t.Fatalf("sites=%d seed=%d round %d: timeline says %.6f Gbps, replay carries %.6f", sz.sites, s, round, tl[round].Throughput, carried)
				}
			}
			check(0)
			for i, round := range plan.Rounds {
				for _, o := range round.Ops {
					switch o.Kind {
					case RemoveRoute:
						for _, l := range routeLinks(o.Path) {
							load[l] -= o.Rate
						}
						delete(live, routeKeyOf(o.TransferID, o.Path))
					case AddRoute:
						for _, l := range routeLinks(o.Path) {
							load[l] += o.Rate
						}
						live[routeKeyOf(o.TransferID, o.Path)] = o.Rate
					case ChangeRoute:
						for _, l := range routeLinks(o.Path) {
							load[l] += o.Rate - o.OldRate
						}
						live[routeKeyOf(o.TransferID, o.Path)] = o.Rate
					case RemoveCircuit:
						circuits[o.Link]--
						for _, f := range o.Fibers {
							freeW[f]++
						}
					case AddCircuit:
						circuits[o.Link]++
						for _, f := range o.Fibers {
							freeW[f]--
						}
					}
				}
				check(i + 1)
			}
			// Terminal circuits must equal the target.
			for l, wantC := range newS.Circuits {
				if circuits[l] != wantC {
					t.Fatalf("sites=%d seed=%d: terminal circuits on %v: %d want %d", sz.sites, s, l, circuits[l], wantC)
				}
			}
		}
	}
}
