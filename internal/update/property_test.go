package update

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomStates builds a random but internally consistent old/new state
// pair over a small topology: capacities cover route loads on both sides.
func randomStates(rng *rand.Rand) (Config, *State, *State) {
	const n = 5
	theta := 10.0
	// Fibers: one per potential link, with random spare wavelengths.
	fiberOf := map[[2]int][]int{}
	free := map[int]int{}
	fid := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			fiberOf[[2]int{i, j}] = []int{fid}
			free[fid] = rng.Intn(4)
			fid++
		}
	}
	mkState := func() *State {
		st := &State{Circuits: map[[2]int]int{}, CircuitFibers: fiberOf}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					st.Circuits[[2]int{i, j}] = 1 + rng.Intn(3)
				}
			}
		}
		// Routes over single links only (keeps feasibility easy), loads
		// within capacity.
		id := 0
		for l, c := range st.Circuits {
			capacity := float64(c) * theta
			used := 0.0
			for used < capacity-2 && rng.Float64() < 0.6 {
				r := 1 + rng.Float64()*(capacity-used-1)
				st.Routes = append(st.Routes, Route{TransferID: id, Path: []int{l[0], l[1]}, Rate: r})
				used += r
				id += 1
			}
		}
		return st
	}
	oldS, newS := mkState(), mkState()
	// Give new-state transfers distinct ids so route diffs are clean.
	for i := range newS.Routes {
		newS.Routes[i].TransferID += 1000
	}
	return Config{Theta: theta, FiberFree: free}, oldS, newS
}

// TestPlanInvariantsRandom replays randomly generated plans and checks that
// no intermediate state oversubscribes a link or a fiber.
func TestPlanInvariantsRandom(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg, oldS, newS := randomStates(rng)
		plan, err := BuildPlan(cfg, oldS, newS)
		if err != nil {
			// Deadlocks can be genuinely unresolvable when wavelengths are
			// too scarce for the target; that is a correct refusal, not an
			// invariant violation.
			return true
		}
		// Replay with invariant checking (reusing the test helper's logic
		// inline to return bool instead of failing).
		circuits := map[[2]int]int{}
		for l, c := range oldS.Circuits {
			circuits[l] = c
		}
		freeW := map[int]int{}
		for f, c := range cfg.FiberFree {
			freeW[f] = c
		}
		load := map[[2]int]float64{}
		for _, r := range oldS.Routes {
			for _, l := range routeLinks(r.Path) {
				load[l] += r.Rate
			}
		}
		ok := func() bool {
			for l, ld := range load {
				if ld > float64(circuits[l])*cfg.Theta+1e-6 {
					return false
				}
			}
			for _, c := range freeW {
				if c < 0 {
					return false
				}
			}
			return true
		}
		if !ok() {
			return false
		}
		for _, round := range plan.Rounds {
			for _, o := range round.Ops {
				switch o.Kind {
				case RemoveRoute:
					for _, l := range routeLinks(o.Path) {
						load[l] -= o.Rate
					}
				case AddRoute:
					for _, l := range routeLinks(o.Path) {
						load[l] += o.Rate
					}
				case ChangeRoute:
					for _, l := range routeLinks(o.Path) {
						load[l] += o.Rate - o.OldRate
					}
				case RemoveCircuit:
					circuits[o.Link]--
					for _, f := range o.Fibers {
						freeW[f]++
					}
				case AddCircuit:
					circuits[o.Link]++
					for _, f := range o.Fibers {
						freeW[f]--
					}
				}
			}
			if !ok() {
				return false
			}
		}
		// Terminal state must match the target exactly.
		for l, want := range newS.Circuits {
			if circuits[l] != want {
				return false
			}
		}
		for l, have := range circuits {
			if have != 0 && newS.Circuits[l] != have {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestTimelineEndsAtNewThroughput: after the final round, the consistent
// timeline carries exactly the new state's total rate.
func TestTimelineEndsAtNewThroughput(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg, oldS, newS := randomStates(rng)
		plan, err := BuildPlan(cfg, oldS, newS)
		if err != nil {
			return true
		}
		tl := plan.Timeline(oldS)
		if len(tl) == 0 {
			return false
		}
		want := 0.0
		for _, r := range newS.Routes {
			want += r.Rate
		}
		got := tl[len(tl)-1].Throughput
		return got > want-1e-6 && got < want+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
