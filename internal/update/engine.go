package update

import "slices"

// The flat planner engine. It emits bit-identical plans to referencePlan
// (reference.go) — same rounds, same op order, same detours, same float
// results — but runs on edge-id-indexed slices with a reusable Scratch and
// replaces the reference's per-round O(pending²) rescans with a
// dependency-counting round builder:
//
//   - edge ids are minted once per plan from the sorted union of circuit
//     links and route path links, so live circuit counts, link loads and
//     the per-round needs/removals aggregates are flat slices indexed by
//     edge id instead of map[[2]int] lookups;
//   - every pending op's per-link demand is static (its rate or rate
//     delta), so the per-round aggregates are rebuilt with one O(pending)
//     pass instead of per-candidate map rebuilds;
//   - edges and fibers keep waiter lists: an op that was deferred or
//     rejected goes clean and registers on every link/fiber its decision
//     read, and is re-examined only after one of them fires (a consume,
//     release, aggregate change or victim restore touched it). A clean
//     op's inputs are unchanged since its last examination, so skipping it
//     provably reproduces the reference's full rescan — that is why waiter
//     lists preserve the greedy order (see DESIGN.md §15).
//
// Within a round, ops are still scanned in pending order and consume
// resources the moment they are selected, exactly like the reference, so
// later candidates observe earlier selections: a consume fires its edges'
// waiters immediately, marking not-yet-scanned ops dirty in the same
// round.

// flatOp is one pending operation: the public op as it will be emitted,
// plus the flat-engine metadata (edge id for circuit ops, the edge-id list
// of the path for route ops, and the alive/dirty scheduling flags).
type flatOp struct {
	pub   Op
	edge  int32 // circuit ops: edge id; route ops: -1
	lo    int32 // route ops: edge ids are lnk[lo : lo+ln]
	ln    int32
	alive bool
	dirty bool
}

// Scratch holds every buffer the flat planner and timeline need, reused
// across calls so per-slot planning performs no steady-state allocation.
// The Plan returned by BuildPlan and the samples returned by Timeline
// alias scratch-owned storage: they are valid until the next call on the
// same Scratch.
type Scratch struct {
	theta float64

	// Edge table: sorted canonical (u<<32 | v) pair keys; the index of a
	// key is the edge id.
	pairs []uint64

	// Live per-edge state.
	circuits []int32
	newC     []int32
	load     []float64

	// Per-round aggregates, epoch-stamped so resetting them is O(1): a
	// slot whose stamp is not the current epoch reads as zero.
	needs      []float64
	needStamp  []int64
	removals   []int32
	remStamp   []int64
	blockStamp []int64
	epoch      int64
	vEpoch     int64

	// Waiter lists: head node index per edge / per fiber (-1 = empty),
	// nodes in a grow-only arena.
	eWait    []int32
	fWait    []int32
	nodeOp   []int32
	nodeNext []int32

	// Fibers, dense by fiber id.
	fiberFree []int32

	// Pending ops and the alive order (pending order, compacted per
	// round). lnk is the shared edge-id arena for route paths.
	ops      []flatOp
	lnk      []int32
	order    []int32
	orderBuf []int32
	sel      []int32
	detoured []bool

	// Sorted route records of the two states.
	oldRecs []routeRec
	newRecs []routeRec

	// Output arenas.
	outOps    []Op
	roundEnds []int
	rounds    []Round
	plan      Plan

	// Timeline state: the combined (old ∪ plan) route table sorted in
	// canonical order, per-slot live rate/flag, and the sample buffer.
	tlRecs  []routeRec
	tlRate  []float64
	tlLive  []bool
	samples []Sample
}

// NewScratch returns an empty planner scratch. A Scratch is not safe for
// concurrent use.
func NewScratch() *Scratch { return &Scratch{} }

func pairKey(u, v int) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func pairOf(k uint64) [2]int {
	return [2]int{int(int32(k >> 32)), int(int32(k))}
}

// edgeOf returns the edge id of a raw (u, v) pair that is guaranteed to be
// in the minted table.
func (s *Scratch) edgeOf(u, v int) int32 {
	i, _ := slices.BinarySearch(s.pairs, pairKey(u, v))
	return int32(i)
}

// edgeOfCanon canonicalizes a path hop before the lookup.
func (s *Scratch) edgeOfCanon(u, v int) int32 {
	if u > v {
		u, v = v, u
	}
	return s.edgeOf(u, v)
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// BuildPlan computes a consistent round schedule transforming old into
// new. The returned plan aliases scratch storage and is valid until the
// next BuildPlan call on this Scratch.
func (s *Scratch) BuildPlan(cfg Config, oldState, newState *State) (*Plan, error) {
	if cfg.Theta <= 0 {
		return nil, ErrBadTheta
	}
	s.theta = cfg.Theta
	var err error
	if s.oldRecs, err = appendSortedRecs(s.oldRecs, oldState.Routes); err != nil {
		return nil, err
	}
	if s.newRecs, err = appendSortedRecs(s.newRecs, newState.Routes); err != nil {
		return nil, err
	}

	// Mint edge ids: circuit links by their raw map keys (the reference
	// diffs them as-is), route hops canonicalized (the reference's
	// routeLinks does the same), sorted and deduped. Key order equals
	// (u, v) order, so the circuit-diff scan below emits ops in exactly
	// the reference's sorted-union order.
	s.pairs = s.pairs[:0]
	for l := range oldState.Circuits {
		s.pairs = append(s.pairs, pairKey(l[0], l[1]))
	}
	for l := range newState.Circuits {
		s.pairs = append(s.pairs, pairKey(l[0], l[1]))
	}
	for _, r := range oldState.Routes {
		s.appendPathPairs(r.Path)
	}
	for _, r := range newState.Routes {
		s.appendPathPairs(r.Path)
	}
	slices.Sort(s.pairs)
	s.pairs = slices.Compact(s.pairs)
	ne := len(s.pairs)

	s.circuits = growI32(s.circuits, ne)
	s.newC = growI32(s.newC, ne)
	s.load = growF64(s.load, ne)
	s.needs = growF64(s.needs, ne)
	s.needStamp = growI64(s.needStamp, ne)
	s.removals = growI32(s.removals, ne)
	s.remStamp = growI64(s.remStamp, ne)
	s.blockStamp = growI64(s.blockStamp, ne)
	s.eWait = growI32(s.eWait, ne)
	for e := 0; e < ne; e++ {
		s.circuits[e] = 0
		s.newC[e] = 0
		s.load[e] = 0
		s.eWait[e] = -1
	}
	for l, c := range oldState.Circuits {
		s.circuits[s.edgeOf(l[0], l[1])] = int32(c)
	}
	for l, c := range newState.Circuits {
		s.newC[s.edgeOf(l[0], l[1])] = int32(c)
	}
	// Initial link loads, summed in the state's route order like the
	// reference (summation order is part of the bit-identity contract).
	for _, r := range oldState.Routes {
		for i := 0; i+1 < len(r.Path); i++ {
			s.load[s.edgeOfCanon(r.Path[i], r.Path[i+1])] += r.Rate
		}
	}

	// Pending ops: circuit diffs in sorted link order (adds before
	// removes per link), then old-side route removals/changes, then
	// new-side additions, both in canonical route order.
	s.ops = s.ops[:0]
	s.lnk = s.lnk[:0]
	s.order = s.order[:0]
	for e := 0; e < ne; e++ {
		diff := s.newC[e] - s.circuits[e]
		if diff == 0 {
			continue
		}
		l := pairOf(s.pairs[e])
		fibers, ok := newState.CircuitFibers[l]
		if !ok {
			fibers = oldState.CircuitFibers[l]
		}
		for i := int32(0); i < diff; i++ {
			s.pushOp(flatOp{pub: Op{Kind: AddCircuit, Link: l, Fibers: fibers}, edge: int32(e)})
		}
		for i := int32(0); i < -diff; i++ {
			s.pushOp(flatOp{pub: Op{Kind: RemoveCircuit, Link: l, Fibers: fibers}, edge: int32(e)})
		}
	}
	for i := range s.oldRecs {
		rec := &s.oldRecs[i]
		j, keep := slices.BinarySearchFunc(s.newRecs, *rec, cmpRouteRec)
		if !keep {
			s.pushRouteOp(Op{Kind: RemoveRoute, TransferID: rec.r.TransferID, Path: rec.r.Path, Rate: rec.r.Rate})
		} else if n := s.newRecs[j].r; n.Rate != rec.r.Rate {
			s.pushRouteOp(Op{Kind: ChangeRoute, TransferID: rec.r.TransferID, Path: rec.r.Path, Rate: n.Rate, OldRate: rec.r.Rate})
		}
	}
	for i := range s.newRecs {
		rec := &s.newRecs[i]
		if _, had := slices.BinarySearchFunc(s.oldRecs, *rec, cmpRouteRec); !had {
			s.pushRouteOp(Op{Kind: AddRoute, TransferID: rec.r.TransferID, Path: rec.r.Path, Rate: rec.r.Rate})
		}
	}

	// Fibers: dense array over every id the config or the circuit ops
	// mention; absent ids read zero spare wavelengths, like the reference
	// map's zero value.
	maxF := -1
	for f := range cfg.FiberFree {
		if f > maxF {
			maxF = f
		}
	}
	for i := range s.ops {
		for _, f := range s.ops[i].pub.Fibers {
			if f > maxF {
				maxF = f
			}
		}
	}
	s.fiberFree = growI32(s.fiberFree, maxF+1)
	s.fWait = growI32(s.fWait, maxF+1)
	for f := 0; f <= maxF; f++ {
		s.fiberFree[f] = 0
		s.fWait[f] = -1
	}
	for f, n := range cfg.FiberFree {
		if f >= 0 {
			s.fiberFree[f] = int32(n)
		}
	}

	// The round loop.
	s.nodeOp = s.nodeOp[:0]
	s.nodeNext = s.nodeNext[:0]
	s.outOps = s.outOps[:0]
	s.roundEnds = s.roundEnds[:0]
	s.detoured = growBool(s.detoured, len(newState.Routes))
	for i := range s.detoured {
		s.detoured[i] = false
	}
	detours := 0

	for len(s.order) > 0 {
		// Rebuild the round's needs/removals aggregates with one pass
		// over the alive ops in pending order. Per-op contributions are
		// static, and the summation order matches the reference's
		// per-candidate rebuild over the same round-start pending set,
		// so the float values are bit-identical.
		s.epoch++
		for _, oi := range s.order {
			op := &s.ops[oi]
			switch op.pub.Kind {
			case AddRoute:
				s.addNeeds(op, op.pub.Rate)
			case ChangeRoute:
				if d := op.pub.Rate - op.pub.OldRate; d > 0 {
					s.addNeeds(op, d)
				}
			case RemoveCircuit:
				e := op.edge
				if s.remStamp[e] != s.epoch {
					s.remStamp[e] = s.epoch
					s.removals[e] = 0
				}
				s.removals[e]++
			}
		}

		s.sel = s.sel[:0]
		for _, oi := range s.order {
			op := &s.ops[oi]
			if !op.dirty {
				continue
			}
			if op.pub.Kind == RemoveRoute && !s.removeNeeded(op) {
				op.dirty = false
				s.registerRouteEdges(oi, op)
				continue
			}
			if s.eligibleOp(op) {
				op.alive = false
				s.consumeOp(op)
				s.outOps = append(s.outOps, op.pub)
				s.sel = append(s.sel, oi)
			} else {
				op.dirty = false
				s.registerOp(oi, op)
			}
		}

		if len(s.sel) == 0 {
			allRemovals := true
			for _, oi := range s.order {
				if s.ops[oi].pub.Kind != RemoveRoute {
					allRemovals = false
					break
				}
			}
			if allRemovals {
				// Only deferred route removals left: flush them as the
				// final cleanup round (their replacements are already up).
				for _, oi := range s.order {
					op := &s.ops[oi]
					op.alive = false
					s.outOps = append(s.outOps, op.pub)
				}
				for _, oi := range s.order {
					s.releaseOp(&s.ops[oi])
				}
				s.order = s.order[:0]
				s.roundEnds = append(s.roundEnds, len(s.outOps))
				break
			}
			// Deadlock: break it with Dionysus' fallback — temporarily
			// remove a persisting route on a blocked link, restoring it
			// at the very end.
			vi, ok := s.pickVictim(newState)
			if !ok {
				// Record the partial plan (lastPartial) so the differential
				// can pin the detour path even on infeasible targets.
				s.finish(detours)
				return nil, ErrDeadlock
			}
			detours++
			s.detoured[vi] = true
			v := newState.Routes[vi]
			s.outOps = append(s.outOps, Op{Kind: RemoveRoute, TransferID: v.TransferID, Path: v.Path, Rate: v.Rate})
			s.pushRouteOp(Op{Kind: AddRoute, TransferID: v.TransferID, Path: v.Path, Rate: v.Rate})
			// The forced removal's release and the restore op's future
			// needs contribution both land on the victim's path edges:
			// apply the release now (the round is over) and wake waiters.
			restore := &s.ops[len(s.ops)-1]
			for k := restore.lo; k < restore.lo+restore.ln; k++ {
				e := s.lnk[k]
				s.load[e] -= v.Rate
				s.fireEdge(e)
			}
			s.roundEnds = append(s.roundEnds, len(s.outOps))
			continue
		}

		// Releases surface after the round, in selection order.
		for _, oi := range s.sel {
			s.releaseOp(&s.ops[oi])
		}
		s.roundEnds = append(s.roundEnds, len(s.outOps))

		// Compact the alive order, preserving pending order.
		keep := s.orderBuf[:0]
		for _, oi := range s.order {
			if s.ops[oi].alive {
				keep = append(keep, oi)
			}
		}
		s.order, s.orderBuf = keep, s.order
	}

	return s.finish(detours), nil
}

// finish materializes the plan's rounds — only now, when the outOps arena
// no longer moves — and records it as the scratch's plan.
func (s *Scratch) finish(detours int) *Plan {
	s.rounds = s.rounds[:0]
	prev := 0
	for _, end := range s.roundEnds {
		s.rounds = append(s.rounds, Round{Ops: s.outOps[prev:end]})
		prev = end
	}
	s.plan = Plan{Rounds: s.rounds, ForcedDetours: detours}
	return &s.plan
}

// lastPartial returns the plan the most recent BuildPlan call produced,
// including the partial rounds built before an ErrDeadlock return. Test
// hook: the differential uses it to compare the forced-detour path against
// the reference even when the target state is infeasible.
func (s *Scratch) lastPartial() *Plan { return &s.plan }

func (s *Scratch) appendPathPairs(path []int) {
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		if u > v {
			u, v = v, u
		}
		s.pairs = append(s.pairs, pairKey(u, v))
	}
}

func (s *Scratch) pushOp(op flatOp) {
	op.alive = true
	op.dirty = true
	op.lo, op.ln = 0, 0
	s.ops = append(s.ops, op)
	s.order = append(s.order, int32(len(s.ops)-1))
}

func (s *Scratch) pushRouteOp(o Op) {
	lo := int32(len(s.lnk))
	for i := 0; i+1 < len(o.Path); i++ {
		s.lnk = append(s.lnk, s.edgeOfCanon(o.Path[i], o.Path[i+1]))
	}
	s.ops = append(s.ops, flatOp{pub: o, edge: -1, lo: lo, ln: int32(len(s.lnk)) - lo, alive: true, dirty: true})
	s.order = append(s.order, int32(len(s.ops)-1))
}

func (s *Scratch) addNeeds(op *flatOp, v float64) {
	for k := op.lo; k < op.lo+op.ln; k++ {
		e := s.lnk[k]
		if s.needStamp[e] != s.epoch {
			s.needStamp[e] = s.epoch
			s.needs[e] = 0
		}
		s.needs[e] += v
	}
}

// removeNeeded mirrors the reference predicate: tearing the route down now
// serves a purpose if a pending RemoveCircuit sits on its path or pending
// additions need more capacity than its links have free.
func (s *Scratch) removeNeeded(op *flatOp) bool {
	for k := op.lo; k < op.lo+op.ln; k++ {
		e := s.lnk[k]
		if s.remStamp[e] == s.epoch && s.removals[e] > 0 {
			return true
		}
		free := float64(s.circuits[e])*s.theta - s.load[e]
		nd := 0.0
		if s.needStamp[e] == s.epoch {
			nd = s.needs[e]
		}
		if nd > free+1e-9 {
			return true
		}
	}
	return false
}

func (s *Scratch) eligibleOp(op *flatOp) bool {
	switch op.pub.Kind {
	case RemoveRoute:
		return true
	case ChangeRoute:
		if op.pub.Rate <= op.pub.OldRate {
			return true
		}
		delta := op.pub.Rate - op.pub.OldRate
		for k := op.lo; k < op.lo+op.ln; k++ {
			e := s.lnk[k]
			if float64(s.circuits[e])*s.theta < s.load[e]+delta-1e-9 {
				return false
			}
		}
		return true
	case AddRoute:
		for k := op.lo; k < op.lo+op.ln; k++ {
			e := s.lnk[k]
			if float64(s.circuits[e])*s.theta < s.load[e]+op.pub.Rate-1e-9 {
				return false
			}
		}
		return true
	case RemoveCircuit:
		e := op.edge
		return float64(s.circuits[e]-1)*s.theta >= s.load[e]-1e-9
	case AddCircuit:
		for _, f := range op.pub.Fibers {
			if s.fiberFree[f] <= 0 {
				return false
			}
		}
		return true
	}
	return false
}

// consumeOp applies the resources an op claims the moment it is selected,
// firing the waiters of every edge or fiber it touched so not-yet-scanned
// ops re-examine against the round's updated live state.
func (s *Scratch) consumeOp(op *flatOp) {
	switch op.pub.Kind {
	case AddRoute:
		for k := op.lo; k < op.lo+op.ln; k++ {
			e := s.lnk[k]
			s.load[e] += op.pub.Rate
			s.fireEdge(e)
		}
	case ChangeRoute:
		if d := op.pub.Rate - op.pub.OldRate; d > 0 {
			for k := op.lo; k < op.lo+op.ln; k++ {
				e := s.lnk[k]
				s.load[e] += d
				s.fireEdge(e)
			}
		}
	case RemoveCircuit:
		s.circuits[op.edge]--
		s.fireEdge(op.edge)
	case AddCircuit:
		for _, f := range op.pub.Fibers {
			s.fiberFree[f]--
			s.fireFiber(int32(f))
		}
	}
}

// releaseOp applies the resources an op frees once its round is over.
func (s *Scratch) releaseOp(op *flatOp) {
	switch op.pub.Kind {
	case RemoveRoute:
		for k := op.lo; k < op.lo+op.ln; k++ {
			e := s.lnk[k]
			s.load[e] -= op.pub.Rate
			s.fireEdge(e)
		}
	case ChangeRoute:
		if d := op.pub.Rate - op.pub.OldRate; d < 0 {
			for k := op.lo; k < op.lo+op.ln; k++ {
				e := s.lnk[k]
				s.load[e] += d
				s.fireEdge(e)
			}
		}
	case RemoveCircuit:
		for _, f := range op.pub.Fibers {
			s.fiberFree[f]++
			s.fireFiber(int32(f))
		}
	case AddCircuit:
		s.circuits[op.edge]++
		s.fireEdge(op.edge)
	}
}

// registerOp parks a rejected op on the waiter lists of every edge or
// fiber its eligibility decision read; it stays clean (skipped) until one
// of them fires.
func (s *Scratch) registerOp(oi int32, op *flatOp) {
	switch op.pub.Kind {
	case AddRoute, ChangeRoute:
		s.registerRouteEdges(oi, op)
	case RemoveCircuit:
		s.waitEdge(oi, op.edge)
	case AddCircuit:
		for _, f := range op.pub.Fibers {
			s.waitFiber(oi, int32(f))
		}
	}
}

func (s *Scratch) registerRouteEdges(oi int32, op *flatOp) {
	for k := op.lo; k < op.lo+op.ln; k++ {
		s.waitEdge(oi, s.lnk[k])
	}
}

func (s *Scratch) waitEdge(oi, e int32) {
	s.nodeOp = append(s.nodeOp, oi)
	s.nodeNext = append(s.nodeNext, s.eWait[e])
	s.eWait[e] = int32(len(s.nodeOp) - 1)
}

func (s *Scratch) waitFiber(oi, f int32) {
	s.nodeOp = append(s.nodeOp, oi)
	s.nodeNext = append(s.nodeNext, s.fWait[f])
	s.fWait[f] = int32(len(s.nodeOp) - 1)
}

func (s *Scratch) fireEdge(e int32) {
	n := s.eWait[e]
	if n < 0 {
		return
	}
	s.eWait[e] = -1
	for n >= 0 {
		if op := s.nodeOp[n]; s.ops[op].alive {
			s.ops[op].dirty = true
		}
		n = s.nodeNext[n]
	}
}

func (s *Scratch) fireFiber(f int32) {
	n := s.fWait[f]
	if n < 0 {
		return
	}
	s.fWait[f] = -1
	for n >= 0 {
		if op := s.nodeOp[n]; s.ops[op].alive {
			s.ops[op].dirty = true
		}
		n = s.nodeNext[n]
	}
}

// pickVictim mirrors the reference fallback: find the first not-yet-
// detoured new-state route (in the state's original route order) crossing
// a link whose RemoveCircuit is blocked by persisting load.
func (s *Scratch) pickVictim(newState *State) (int, bool) {
	s.vEpoch++
	any := false
	for _, oi := range s.order {
		op := &s.ops[oi]
		if op.pub.Kind != RemoveCircuit {
			continue
		}
		e := op.edge
		if float64(s.circuits[e]-1)*s.theta < s.load[e] {
			s.blockStamp[e] = s.vEpoch
			any = true
		}
	}
	if !any {
		return 0, false
	}
	for i, r := range newState.Routes {
		if s.detoured[i] {
			continue
		}
		for j := 0; j+1 < len(r.Path); j++ {
			e := s.edgeOfCanon(r.Path[j], r.Path[j+1])
			if s.blockStamp[e] == s.vEpoch && r.Rate > 0 {
				return i, true
			}
		}
	}
	return 0, false
}
