package update

import (
	"math/rand"
	"slices"

	"owan/internal/alloc"
	"owan/internal/optical"
	"owan/internal/topology"
)

// Test and benchmark harness: generates update cases the way the simulator
// produces them — provision a desired topology through the optical layer,
// allocate routes greedily, perturb the topology and the demands, provision
// and allocate again — so the differential exercises the planner on the
// exact state shapes the per-slot pipeline feeds it, multipath routes and
// partial provisioning included.

// Scenario variants for generated cases.
const (
	scenBase    = iota // plain reconfiguration between two slots
	scenFailure        // new state provisioned after a fiber failure
	scenScarce         // spare wavelengths near zero: wavelength deadlocks
	scenDetour         // doctored blocked RemoveCircuit: victim detours fire
	numScen
)

type caseGen struct {
	net     *topology.Network
	opt     *optical.State
	failNet *topology.Network // net minus one fiber
	failOpt *optical.State
	base    *topology.LinkSet

	// The old side is identical across seeds of one size (same initial
	// topology, same optical layer): cache its provisioned form.
	oldCircuits map[[2]int]int
	oldFibers   map[[2]int][]int
	effA        *topology.LinkSet
}

func newCaseGen(sites int) *caseGen {
	g := &caseGen{}
	g.net = topology.ISP(sites, 8, 11)
	g.opt = optical.NewState(g.net)
	fn := *g.net
	fn.Fibers = slices.Delete(slices.Clone(g.net.Fibers), len(fn.Fibers)/2, len(fn.Fibers)/2+1)
	g.failNet = &fn
	g.failOpt = optical.NewState(g.failNet)
	g.base = topology.InitialTopology(g.net)
	g.effA = g.opt.ProvisionEffective(g.base).Clone()
	g.oldCircuits, g.oldFibers = snapshotCircuits(g.opt, g.effA)
	return g
}

func snapshotCircuits(opt *optical.State, eff *topology.LinkSet) (map[[2]int]int, map[[2]int][]int) {
	circuits := map[[2]int]int{}
	fibers := map[[2]int][]int{}
	for _, l := range eff.Links() {
		k := [2]int{l.U, l.V}
		circuits[k] = l.Count
		fibers[k] = opt.FiberPathIDs(l.U, l.V)
	}
	return circuits, fibers
}

// routesOf flattens an allocation into routes in deterministic id order.
func routesOf(res *alloc.Result) []Route {
	ids := make([]int, 0, len(res.Alloc))
	for id := range res.Alloc {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	var rs []Route
	for _, id := range ids {
		for _, pr := range res.Alloc[id] {
			if pr.Rate > 0 {
				rs = append(rs, Route{TransferID: id, Path: pr.Path, Rate: pr.Rate})
			}
		}
	}
	return rs
}

// gen builds one (config, old, new) case. The old state is the cached
// initial slot; the new state applies a few random circuit moves (the
// elementary annealing reconfiguration), transfer progress and arrivals,
// then re-provisions and re-allocates — on the post-failure optical layer
// for scenFailure, and with spare wavelengths capped at 0–1 for scenScarce
// so the planner's deadlock fallback fires.
func (g *caseGen) gen(seed int64, scen int) (Config, *State, *State) {
	rng := rand.New(rand.NewSource(seed))
	n := g.net.NumSites()
	theta := g.net.ThetaGbps

	nd := 8 + rng.Intn(2*n)
	demands := make([]alloc.Demand, 0, nd)
	for i := 0; i < nd; i++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			dst = (dst + 1) % n
		}
		demands = append(demands, alloc.Demand{ID: i, Src: src, Dst: dst, RateGbps: 1 + 24*rng.Float64()})
	}
	resA := alloc.Greedy(g.effA, theta, demands)
	old := &State{Circuits: g.oldCircuits, CircuitFibers: g.oldFibers, Routes: routesOf(resA)}

	curB := g.base.Clone()
	for m, moves := 0, 2+rng.Intn(6); m < moves; m++ {
		links := curB.Links()
		if len(links) == 0 {
			break
		}
		l := links[rng.Intn(len(links))]
		curB.Add(l.U, l.V, -1)
		for {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				curB.Add(a, b, 1)
				break
			}
		}
	}
	optB, netB := g.opt, g.net
	if scen == scenFailure {
		optB, netB = g.failOpt, g.failNet
	}
	// ProvisionEffective returns optical scratch: snapshot it before any
	// further optical call.
	effB := optB.ProvisionEffective(curB)
	newCircuits, newFibers := snapshotCircuits(optB, effB)

	db := make([]alloc.Demand, 0, len(demands)+4)
	for _, d := range demands {
		if rng.Float64() < 0.25 {
			continue // finished during the slot
		}
		d.RateGbps *= 0.4 + rng.Float64()
		db = append(db, d)
	}
	for i, extra := 0, rng.Intn(4); i < extra; i++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			dst = (dst + 1) % n
		}
		db = append(db, alloc.Demand{ID: nd + i, Src: src, Dst: dst, RateGbps: 1 + 24*rng.Float64()})
	}
	resB := alloc.Greedy(effB, theta, db)
	newSt := &State{Circuits: newCircuits, CircuitFibers: newFibers, Routes: routesOf(resB)}

	// Spare wavelengths: φ minus what the old state holds, on the (possibly
	// reduced) fiber plant the update executes on.
	used := map[int]int{}
	for k, c := range old.Circuits {
		for _, fid := range old.CircuitFibers[k] {
			used[fid] += c
		}
	}
	free := map[int]int{}
	for _, fb := range netB.Fibers {
		f := fb.Wavelengths - used[fb.ID]
		if f < 0 {
			f = 0
		}
		if scen == scenScarce && f > 0 {
			f = rng.Intn(2)
		}
		free[fb.ID] = f
	}

	if scen == scenDetour {
		// Shrink the first old link carrying ≥2 circuits and pin a
		// persisting route across it at a rate only the old capacity can
		// carry. Its RemoveCircuit blocks on that load while nothing else
		// can free it, so the planner's victim fallback fires — a target
		// that stays infeasible, which is the only way the fallback
		// triggers (a feasible target always drains removable load first).
		for _, l := range g.effA.Links() {
			if l.Count < 2 {
				continue
			}
			k := [2]int{l.U, l.V}
			newSt.Circuits[k] = l.Count - 1
			if _, ok := newSt.CircuitFibers[k]; !ok {
				newSt.CircuitFibers[k] = g.oldFibers[k]
			}
			pinned := Route{TransferID: 1 << 20, Path: []int{l.U, l.V}, Rate: (float64(l.Count) - 0.5) * theta}
			old.Routes = append(old.Routes, pinned)
			newSt.Routes = append(newSt.Routes, pinned)
			break
		}
	}
	return Config{Theta: theta, FiberFree: free}, old, newSt
}
