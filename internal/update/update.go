// Package update schedules cross-layer network updates consistently,
// extending the Dionysus dependency-graph approach with circuit nodes as
// described in §3.3 of the paper: creating a circuit consumes a wavelength
// on each fiber it crosses and removing one frees it; a routing path cannot
// carry traffic until circuits for all of its links are up; and a circuit
// cannot be torn down while routed traffic still needs its capacity.
//
// The scheduler emits rounds of operations that can safely run in parallel.
// It also evaluates the throughput timeline during the update, which is the
// quantity Figure 10(b) compares between consistent and one-shot updates.
package update

import (
	"fmt"
	"sort"
)

// Op is a single update operation.
type Op struct {
	// Kind discriminates the union.
	Kind OpKind
	// Link is the network-layer link for circuit ops.
	Link [2]int
	// Fibers are the fiber IDs a circuit op touches (consumed on add,
	// freed on remove).
	Fibers []int
	// TransferID, Path and Rate describe route ops. OldRate is the prior
	// rate for ChangeRoute.
	TransferID int
	Path       []int
	Rate       float64
	OldRate    float64
}

// OpKind enumerates operation types.
type OpKind int

// Operation kinds.
const (
	AddCircuit OpKind = iota
	RemoveCircuit
	AddRoute
	RemoveRoute
	// ChangeRoute adjusts the rate of an existing route in place (rate
	// limiter update); decreases are always safe, increases wait for
	// capacity. OldRate holds the prior rate.
	ChangeRoute
)

func (k OpKind) String() string {
	switch k {
	case AddCircuit:
		return "add-circuit"
	case RemoveCircuit:
		return "remove-circuit"
	case AddRoute:
		return "add-route"
	case RemoveRoute:
		return "remove-route"
	case ChangeRoute:
		return "change-route"
	}
	return "unknown"
}

// Durations of operations in seconds: optical reconfiguration takes
// seconds ("three to five seconds on our testbed"); rule updates are fast.
const (
	CircuitOpSeconds = 4.0
	RouteOpSeconds   = 0.1
)

func (o Op) seconds() float64 {
	if o.Kind == AddCircuit || o.Kind == RemoveCircuit {
		return CircuitOpSeconds
	}
	return RouteOpSeconds
}

// Round is a set of operations executing in parallel; its duration is the
// longest operation in it.
type Round struct {
	Ops []Op
}

// Seconds returns the round's wall-clock duration.
func (r Round) Seconds() float64 {
	m := 0.0
	for _, o := range r.Ops {
		if s := o.seconds(); s > m {
			m = s
		}
	}
	return m
}

// Plan is an ordered sequence of rounds.
type Plan struct {
	Rounds []Round
	// ForcedDetours counts routes that had to be temporarily removed to
	// break a capacity deadlock (Dionysus' rate-reduction fallback).
	ForcedDetours int
}

// Seconds returns the total update duration.
func (p *Plan) Seconds() float64 {
	t := 0.0
	for _, r := range p.Rounds {
		t += r.Seconds()
	}
	return t
}

// NumOps returns the number of operations across rounds.
func (p *Plan) NumOps() int {
	n := 0
	for _, r := range p.Rounds {
		n += len(r.Ops)
	}
	return n
}

// State describes one side (old or new) of an update.
type State struct {
	// Circuits per network-layer link.
	Circuits map[[2]int]int
	// CircuitFibers maps a link to the fibers one of its circuits crosses
	// (used for wavelength accounting; all parallel circuits of a link are
	// assumed to share the same fiber route, which holds for shortest-path
	// provisioning).
	CircuitFibers map[[2]int][]int
	// Routes carried in this state.
	Routes []Route
}

// Route is a rate-carrying path of one transfer.
type Route struct {
	TransferID int
	Path       []int
	Rate       float64
}

func routeKey(r Route) string {
	return fmt.Sprint(r.TransferID, r.Path)
}

func linkKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func routeLinks(path []int) [][2]int {
	out := make([][2]int, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		out = append(out, linkKey(path[i], path[i+1]))
	}
	return out
}

// Config parameterizes plan construction.
type Config struct {
	// Theta is circuit capacity in Gbps.
	Theta float64
	// FiberFree is the number of spare wavelengths per fiber id at the
	// start of the update (beyond those used by current circuits).
	FiberFree map[int]int
}

// BuildPlan computes a consistent round schedule transforming old into new.
func BuildPlan(cfg Config, oldState, newState *State) (*Plan, error) {
	if cfg.Theta <= 0 {
		return nil, fmt.Errorf("update: theta must be positive")
	}
	// Pending operations.
	var pending []Op
	// Circuit diffs.
	linkSet := map[[2]int]bool{}
	for l := range oldState.Circuits {
		linkSet[l] = true
	}
	for l := range newState.Circuits {
		linkSet[l] = true
	}
	links := make([][2]int, 0, len(linkSet))
	for l := range linkSet {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	fibersOf := func(l [2]int) []int {
		if f, ok := newState.CircuitFibers[l]; ok {
			return f
		}
		return oldState.CircuitFibers[l]
	}
	for _, l := range links {
		diff := newState.Circuits[l] - oldState.Circuits[l]
		for i := 0; i < diff; i++ {
			pending = append(pending, Op{Kind: AddCircuit, Link: l, Fibers: fibersOf(l)})
		}
		for i := 0; i < -diff; i++ {
			pending = append(pending, Op{Kind: RemoveCircuit, Link: l, Fibers: fibersOf(l)})
		}
	}
	// Route diffs (by exact identity).
	oldRoutes := map[string]Route{}
	for _, r := range oldState.Routes {
		oldRoutes[routeKey(r)] = r
	}
	newRoutes := map[string]Route{}
	for _, r := range newState.Routes {
		newRoutes[routeKey(r)] = r
	}
	var routeKeys []string
	for k := range oldRoutes {
		routeKeys = append(routeKeys, k)
	}
	sort.Strings(routeKeys)
	for _, k := range routeKeys {
		r := oldRoutes[k]
		if n, keep := newRoutes[k]; !keep {
			pending = append(pending, Op{Kind: RemoveRoute, TransferID: r.TransferID, Path: r.Path, Rate: r.Rate})
		} else if n.Rate != r.Rate {
			pending = append(pending, Op{Kind: ChangeRoute, TransferID: r.TransferID, Path: r.Path, Rate: n.Rate, OldRate: r.Rate})
		}
	}
	routeKeys = routeKeys[:0]
	for k := range newRoutes {
		routeKeys = append(routeKeys, k)
	}
	sort.Strings(routeKeys)
	for _, k := range routeKeys {
		if _, had := oldRoutes[k]; !had {
			r := newRoutes[k]
			pending = append(pending, Op{Kind: AddRoute, TransferID: r.TransferID, Path: r.Path, Rate: r.Rate})
		}
	}

	// Live state during scheduling.
	circuits := map[[2]int]int{}
	for l, c := range oldState.Circuits {
		circuits[l] = c
	}
	fiberFree := map[int]int{}
	for f, n := range cfg.FiberFree {
		fiberFree[f] = n
	}
	load := map[[2]int]float64{}
	for _, r := range oldState.Routes {
		for _, l := range routeLinks(r.Path) {
			load[l] += r.Rate
		}
	}

	// removeNeeded reports whether tearing a route down now serves a
	// purpose: a circuit on its path is waiting to be removed, or pending
	// route additions need the capacity it occupies. Otherwise the route
	// keeps carrying traffic (Dionysus removes flow only to make room),
	// and the teardown lands in the final cleanup round.
	removeNeeded := func(o Op, pending []Op) bool {
		needs := map[[2]int]float64{}
		removals := map[[2]int]bool{}
		for _, p := range pending {
			switch p.Kind {
			case AddRoute:
				for _, l := range routeLinks(p.Path) {
					needs[l] += p.Rate
				}
			case ChangeRoute:
				if d := p.Rate - p.OldRate; d > 0 {
					for _, l := range routeLinks(p.Path) {
						needs[l] += d
					}
				}
			case RemoveCircuit:
				removals[p.Link] = true
			}
		}
		for _, l := range routeLinks(o.Path) {
			if removals[l] {
				return true
			}
			free := float64(circuits[l])*cfg.Theta - load[l]
			if needs[l] > free+1e-9 {
				return true
			}
		}
		return false
	}
	eligible := func(o Op) bool {
		switch o.Kind {
		case RemoveRoute:
			return true
		case ChangeRoute:
			if o.Rate <= o.OldRate {
				return true
			}
			delta := o.Rate - o.OldRate
			for _, l := range routeLinks(o.Path) {
				if float64(circuits[l])*cfg.Theta < load[l]+delta-1e-9 {
					return false
				}
			}
			return true
		case AddRoute:
			for _, l := range routeLinks(o.Path) {
				if float64(circuits[l])*cfg.Theta < load[l]+o.Rate-1e-9 {
					return false
				}
			}
			return true
		case RemoveCircuit:
			l := o.Link
			return float64(circuits[l]-1)*cfg.Theta >= load[l]-1e-9
		case AddCircuit:
			for _, f := range o.Fibers {
				if fiberFree[f] <= 0 {
					return false
				}
			}
			return true
		}
		return false
	}
	// An op's effects split in two: consumption is applied the moment the
	// op is selected into a round (so other candidates in the same round
	// cannot double-book a resource), while releases only become visible
	// after the round completes (an op must not depend on a parallel op's
	// freed resource).
	consume := func(o Op) {
		switch o.Kind {
		case AddRoute:
			for _, l := range routeLinks(o.Path) {
				load[l] += o.Rate
			}
		case ChangeRoute:
			if d := o.Rate - o.OldRate; d > 0 {
				for _, l := range routeLinks(o.Path) {
					load[l] += d
				}
			}
		case RemoveCircuit:
			circuits[o.Link]--
		case AddCircuit:
			for _, f := range o.Fibers {
				fiberFree[f]--
			}
		}
	}
	release := func(o Op) {
		switch o.Kind {
		case RemoveRoute:
			for _, l := range routeLinks(o.Path) {
				load[l] -= o.Rate
			}
		case ChangeRoute:
			if d := o.Rate - o.OldRate; d < 0 {
				for _, l := range routeLinks(o.Path) {
					load[l] += d
				}
			}
		case RemoveCircuit:
			for _, f := range o.Fibers {
				fiberFree[f]++
			}
		case AddCircuit:
			circuits[o.Link]++
		}
	}

	plan := &Plan{}
	detoured := map[string]bool{}
	for len(pending) > 0 {
		var round []Op
		var rest []Op
		// Select ops one by one, consuming resources immediately so the
		// round stays jointly feasible; releases surface after the round.
		// Route removals are deferred while their traffic can keep
		// flowing.
		for _, o := range pending {
			if o.Kind == RemoveRoute && !removeNeeded(o, pending) {
				rest = append(rest, o)
				continue
			}
			if eligible(o) {
				consume(o)
				round = append(round, o)
			} else {
				rest = append(rest, o)
			}
		}
		if len(round) == 0 {
			// Only deferred route removals left: flush them as the final
			// cleanup round (their replacement routes are already up).
			onlyRemovals := len(rest) > 0
			for _, o := range rest {
				if o.Kind != RemoveRoute {
					onlyRemovals = false
					break
				}
			}
			if onlyRemovals {
				for _, o := range rest {
					consume(o)
				}
				round, rest = rest, nil
			}
		}
		if len(round) == 0 {
			// Deadlock: some RemoveCircuit is blocked by persisting route
			// load, or an AddCircuit waits on wavelengths only freed by such
			// a removal. Break it with Dionysus' fallback: temporarily
			// remove a persisting route on the most-blocked link.
			victim, ok := pickVictim(rest, circuits, load, cfg.Theta, newState, detoured)
			if !ok {
				return nil, fmt.Errorf("update: unresolvable deadlock with %d pending ops", len(rest))
			}
			plan.ForcedDetours++
			detoured[routeKey(victim)] = true
			// Remove now, restore at the very end.
			pending = append(rest, Op{Kind: AddRoute, TransferID: victim.TransferID, Path: victim.Path, Rate: victim.Rate})
			round = []Op{{Kind: RemoveRoute, TransferID: victim.TransferID, Path: victim.Path, Rate: victim.Rate}}
		} else {
			pending = rest
		}
		for _, o := range round {
			release(o)
		}
		plan.Rounds = append(plan.Rounds, Round{Ops: round})
	}
	return plan, nil
}

// pickVictim finds a persisting route to detour: one crossing a link whose
// RemoveCircuit is blocked.
func pickVictim(pending []Op, circuits map[[2]int]int, load map[[2]int]float64, theta float64, newState *State, detoured map[string]bool) (Route, bool) {
	blocked := map[[2]int]bool{}
	for _, o := range pending {
		if o.Kind == RemoveCircuit {
			l := o.Link
			if float64(circuits[l]-1)*theta < load[l] {
				blocked[l] = true
			}
		}
	}
	for _, r := range newState.Routes {
		if detoured[routeKey(r)] {
			continue
		}
		for _, l := range routeLinks(r.Path) {
			if blocked[l] && r.Rate > 0 {
				return r, true
			}
		}
	}
	return Route{}, false
}
