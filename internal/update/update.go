// Package update schedules cross-layer network updates consistently,
// extending the Dionysus dependency-graph approach with circuit nodes as
// described in §3.3 of the paper: creating a circuit consumes a wavelength
// on each fiber it crosses and removing one frees it; a routing path cannot
// carry traffic until circuits for all of its links are up; and a circuit
// cannot be torn down while routed traffic still needs its capacity.
//
// The scheduler emits rounds of operations that can safely run in parallel.
// It also evaluates the throughput timeline during the update, which is the
// quantity Figure 10(b) compares between consistent and one-shot updates.
//
// Two planner engines share these semantics. The flat engine (engine.go)
// works on edge-id-indexed slices with a reusable Scratch and re-examines a
// pending op only when a link it waits on changes; it is the one behind
// BuildPlan and the per-slot pipeline in internal/sim. The retained
// map-based engine (reference.go) is the executable specification; the two
// are pinned bit-identical — rounds, op order, detours, timelines — by the
// 300-seed differential in differential_test.go (`make update`).
package update

import (
	"cmp"
	"errors"
	"slices"

	"owan/internal/topology"
)

// Static planner errors (errors.Is-comparable; none of them allocates on
// the per-slot planning path).
var (
	// ErrBadTheta rejects non-positive circuit capacities.
	ErrBadTheta = errors.New("update: theta must be positive")
	// ErrDeadlock is returned when no consistent schedule exists even
	// after the forced-detour fallback (the target state itself is
	// infeasible).
	ErrDeadlock = errors.New("update: unresolvable deadlock")
	// ErrDuplicateRoute rejects a state carrying the same (transfer, path)
	// route twice: route identity is the (TransferID, Path) pair, and every
	// caller (allocator results) produces distinct paths per transfer. The
	// planner asserts the invariant instead of silently collapsing
	// duplicates the way the old string-keyed maps did.
	ErrDuplicateRoute = errors.New("update: duplicate (transfer, path) route in state")
	// ErrBadRTT rejects non-positive RTTs in OneShotTCPTimeline.
	ErrBadRTT = errors.New("update: rtt must be positive")
	// ErrDegenerateTCP is returned when the TCP model's steady state
	// carries no goodput.
	ErrDegenerateTCP = errors.New("update: degenerate TCP steady state")
)

// Op is a single update operation.
type Op struct {
	// Kind discriminates the union.
	Kind OpKind
	// Link is the network-layer link for circuit ops.
	Link [2]int
	// Fibers are the fiber IDs a circuit op touches (consumed on add,
	// freed on remove).
	Fibers []int
	// TransferID, Path and Rate describe route ops. OldRate is the prior
	// rate for ChangeRoute.
	TransferID int
	Path       []int
	Rate       float64
	OldRate    float64
}

// OpKind enumerates operation types.
type OpKind int

// Operation kinds.
const (
	AddCircuit OpKind = iota
	RemoveCircuit
	AddRoute
	RemoveRoute
	// ChangeRoute adjusts the rate of an existing route in place (rate
	// limiter update); decreases are always safe, increases wait for
	// capacity. OldRate holds the prior rate.
	ChangeRoute
)

func (k OpKind) String() string {
	switch k {
	case AddCircuit:
		return "add-circuit"
	case RemoveCircuit:
		return "remove-circuit"
	case AddRoute:
		return "add-route"
	case RemoveRoute:
		return "remove-route"
	case ChangeRoute:
		return "change-route"
	}
	return "unknown"
}

// Durations of operations in seconds: optical reconfiguration takes
// seconds ("three to five seconds on our testbed"); rule updates are fast.
const (
	CircuitOpSeconds = 4.0
	RouteOpSeconds   = 0.1
)

func (o Op) seconds() float64 {
	if o.Kind == AddCircuit || o.Kind == RemoveCircuit {
		return CircuitOpSeconds
	}
	return RouteOpSeconds
}

// Round is a set of operations executing in parallel; its duration is the
// longest operation in it.
type Round struct {
	Ops []Op
}

// Seconds returns the round's wall-clock duration.
func (r Round) Seconds() float64 {
	m := 0.0
	for _, o := range r.Ops {
		if s := o.seconds(); s > m {
			m = s
		}
	}
	return m
}

// Plan is an ordered sequence of rounds.
type Plan struct {
	Rounds []Round
	// ForcedDetours counts routes that had to be temporarily removed to
	// break a capacity deadlock (Dionysus' rate-reduction fallback).
	ForcedDetours int
}

// Seconds returns the total update duration.
func (p *Plan) Seconds() float64 {
	t := 0.0
	for _, r := range p.Rounds {
		t += r.Seconds()
	}
	return t
}

// NumOps returns the number of operations across rounds.
func (p *Plan) NumOps() int {
	n := 0
	for _, r := range p.Rounds {
		n += len(r.Ops)
	}
	return n
}

// State describes one side (old or new) of an update.
type State struct {
	// Circuits per network-layer link.
	Circuits map[[2]int]int
	// CircuitFibers maps a link to the fibers one of its circuits crosses
	// (used for wavelength accounting; all parallel circuits of a link are
	// assumed to share the same fiber route, which holds for shortest-path
	// provisioning).
	CircuitFibers map[[2]int][]int
	// Routes carried in this state. Route identity is the (TransferID,
	// Path) pair and must be unique within a state; the planner returns
	// ErrDuplicateRoute otherwise.
	Routes []Route

	// links is the SetTopology enumeration scratch, retained so per-slot
	// state rebuilds reuse AppendLinks without allocating.
	links []topology.Link
}

// Reset clears the state for reuse, keeping the map storage and slice
// capacity so a per-slot rebuild allocates nothing in steady state.
func (st *State) Reset() {
	if st.Circuits == nil {
		st.Circuits = map[[2]int]int{}
	} else {
		clear(st.Circuits)
	}
	if st.CircuitFibers == nil {
		st.CircuitFibers = map[[2]int][]int{}
	} else {
		clear(st.CircuitFibers)
	}
	st.Routes = st.Routes[:0]
}

// SetTopology fills Circuits and CircuitFibers from a topology snapshot:
// one entry per aggregated link of ls, with the fiber route returned by
// fiberIDs (typically optical.(*State).FiberPathIDs; the returned slices
// are stored as-is and must stay immutable). The enumeration reuses
// AppendLinks into retained scratch, so after Reset a slot rebuild is
// allocation-free once the maps have reached capacity.
func (st *State) SetTopology(ls *topology.LinkSet, fiberIDs func(u, v int) []int) {
	if st.Circuits == nil {
		st.Circuits = map[[2]int]int{}
	}
	if st.CircuitFibers == nil {
		st.CircuitFibers = map[[2]int][]int{}
	}
	st.links = ls.AppendLinks(st.links[:0])
	for _, l := range st.links {
		k := [2]int{l.U, l.V}
		st.Circuits[k] = l.Count
		st.CircuitFibers[k] = fiberIDs(l.U, l.V)
	}
}

// AppendRoute adds one route to the state.
func (st *State) AppendRoute(transferID int, path []int, rate float64) {
	st.Routes = append(st.Routes, Route{TransferID: transferID, Path: path, Rate: rate})
}

// Route is a rate-carrying path of one transfer.
type Route struct {
	TransferID int
	Path       []int
	Rate       float64
}

// rkey is the integer route identity both engines key detour and live-route
// tables by: the transfer id plus an FNV-1a hash of the path. It replaces
// the old fmt.Sprint(id, path) string keys. Hash collisions between two
// distinct paths of the same transfer are possible in principle but are
// 2⁻⁶⁴-scale events; the flat engine additionally uses dense route indices,
// so a collision would surface loudly in the engine differential.
type rkey struct {
	id   int
	hash uint64
}

func routeKeyOf(transferID int, path []int) rkey {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range path {
		h ^= uint64(v)
		h *= prime64
	}
	return rkey{id: transferID, hash: h}
}

// cmpRoute is the canonical deterministic route order — transfer id, then
// path lexicographically. Both engines emit route-diff ops in this order
// (the old code ordered by the string form of fmt.Sprint keys, which sorted
// id 10 before id 2; the canonical order is numeric).
func cmpRoute(a, b Route) int {
	if c := cmp.Compare(a.TransferID, b.TransferID); c != 0 {
		return c
	}
	return slices.Compare(a.Path, b.Path)
}

// routeRec pairs a route with its integer key for sorted diffing.
type routeRec struct {
	r   Route
	key rkey
}

func cmpRouteRec(a, b routeRec) int { return cmpRoute(a.r, b.r) }

// appendSortedRecs appends one rec per route to dst[:0], sorts them into
// the canonical order and asserts the (TransferID, Path) uniqueness
// invariant. Shared by both engines so they agree on op ordering by
// construction; the scheduling loops stay fully independent.
func appendSortedRecs(dst []routeRec, routes []Route) ([]routeRec, error) {
	dst = dst[:0]
	for _, r := range routes {
		dst = append(dst, routeRec{r: r, key: routeKeyOf(r.TransferID, r.Path)})
	}
	slices.SortFunc(dst, cmpRouteRec)
	for i := 1; i < len(dst); i++ {
		if dst[i].r.TransferID == dst[i-1].r.TransferID && slices.Equal(dst[i].r.Path, dst[i-1].r.Path) {
			return dst, ErrDuplicateRoute
		}
	}
	return dst, nil
}

func linkKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func routeLinks(path []int) [][2]int {
	out := make([][2]int, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		out = append(out, linkKey(path[i], path[i+1]))
	}
	return out
}

// Config parameterizes plan construction.
type Config struct {
	// Theta is circuit capacity in Gbps.
	Theta float64
	// FiberFree is the number of spare wavelengths per fiber id at the
	// start of the update (beyond those used by current circuits).
	FiberFree map[int]int
}

// BuildPlan computes a consistent round schedule transforming old into new.
// It runs the flat engine on a throwaway Scratch; per-slot callers should
// hold a Scratch and call its BuildPlan to avoid reallocating.
func BuildPlan(cfg Config, oldState, newState *State) (*Plan, error) {
	return NewScratch().BuildPlan(cfg, oldState, newState)
}
