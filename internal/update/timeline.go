package update

import (
	"fmt"

	"owan/internal/tcp"
)

// Sample is one point of the throughput-versus-time curve during an update.
type Sample struct {
	T          float64 // seconds since the update began
	Throughput float64 // Gbps carried at that instant
}

// Timeline evaluates the throughput carried while a consistent plan
// executes: routes contribute their rate from the moment they are added
// until the moment they are removed; circuit operations by construction
// never strand a live route, so they do not interrupt traffic.
func (p *Plan) Timeline(oldState *State) []Sample {
	live := map[string]Route{}
	for _, r := range oldState.Routes {
		live[routeKey(r)] = r
	}
	total := func() float64 {
		t := 0.0
		for _, r := range live {
			t += r.Rate
		}
		return t
	}
	now := 0.0
	samples := []Sample{{T: 0, Throughput: total()}}
	for _, round := range p.Rounds {
		for _, o := range round.Ops {
			switch o.Kind {
			case RemoveRoute:
				delete(live, routeKey(Route{TransferID: o.TransferID, Path: o.Path, Rate: o.Rate}))
			case AddRoute, ChangeRoute:
				r := Route{TransferID: o.TransferID, Path: o.Path, Rate: o.Rate}
				live[routeKey(r)] = r
			}
		}
		now += round.Seconds()
		samples = append(samples, Sample{T: now, Throughput: total()})
	}
	return samples
}

// OneShotTimeline evaluates the throughput of the naive update that pushes
// every change simultaneously: the routers switch to the new routes almost
// immediately, but every link whose circuits are being reconfigured goes
// dark for CircuitOpSeconds, so new routes crossing a changed link carry
// nothing during that window (their packets are dropped; with TCP the
// effect the paper measures is a ~10% dip in total throughput).
func OneShotTimeline(oldState, newState *State) []Sample {
	changed := map[[2]int]bool{}
	linkSet := map[[2]int]bool{}
	for l := range oldState.Circuits {
		linkSet[l] = true
	}
	for l := range newState.Circuits {
		linkSet[l] = true
	}
	for l := range linkSet {
		if oldState.Circuits[l] != newState.Circuits[l] {
			changed[l] = true
		}
	}
	during, after := 0.0, 0.0
	for _, r := range newState.Routes {
		after += r.Rate
		dark := false
		for _, l := range routeLinks(r.Path) {
			if changed[l] {
				dark = true
				break
			}
		}
		if !dark {
			during += r.Rate
		}
	}
	before := 0.0
	for _, r := range oldState.Routes {
		before += r.Rate
	}
	return []Sample{
		{T: 0, Throughput: before},
		{T: RouteOpSeconds, Throughput: during},
		{T: CircuitOpSeconds, Throughput: during},
		{T: CircuitOpSeconds + 1e-3, Throughput: after},
	}
}

// MinThroughput returns the lowest throughput in a timeline.
func MinThroughput(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	m := samples[0].Throughput
	for _, s := range samples {
		if s.Throughput < m {
			m = s.Throughput
		}
	}
	return m
}

// StateFromAlloc is a convenience for building update states from a
// topology snapshot (circuits per link with their fiber routes) and an
// allocation (transfer id -> path rates).
func StateFromAlloc(circuits map[[2]int]int, fibers map[[2]int][]int, routes []Route) *State {
	return &State{Circuits: circuits, CircuitFibers: fibers, Routes: routes}
}

// OneShotTCPTimeline refines OneShotTimeline with transport behaviour:
// the routes crossing reconfigured links are TCP flows that time out
// during the dark window and then recover through slow start, so total
// throughput climbs back gradually instead of snapping to the new level
// the moment circuits are up — the effect the paper measures on its
// testbed ("packets get lost on these links, affecting the overall TCP
// performance"). rttSeconds is the round-trip time driving the recovery
// clock.
func OneShotTCPTimeline(oldState, newState *State, rttSeconds float64) ([]Sample, error) {
	if rttSeconds <= 0 {
		return nil, fmt.Errorf("update: rtt must be positive")
	}
	changed := map[[2]int]bool{}
	linkSet := map[[2]int]bool{}
	for l := range oldState.Circuits {
		linkSet[l] = true
	}
	for l := range newState.Circuits {
		linkSet[l] = true
	}
	for l := range linkSet {
		if oldState.Circuits[l] != newState.Circuits[l] {
			changed[l] = true
		}
	}
	unaffected, affected := 0.0, 0.0
	nAffected := 0
	for _, r := range newState.Routes {
		dark := false
		for _, l := range routeLinks(r.Path) {
			if changed[l] {
				dark = true
				break
			}
		}
		if dark {
			affected += r.Rate
			nAffected++
		} else {
			unaffected += r.Rate
		}
	}
	before := 0.0
	for _, r := range oldState.Routes {
		before += r.Rate
	}
	samples := []Sample{{T: 0, Throughput: before}}
	if nAffected == 0 {
		samples = append(samples, Sample{T: RouteOpSeconds, Throughput: unaffected + affected})
		return samples, nil
	}
	outageRounds := int(CircuitOpSeconds/rttSeconds + 0.5)
	recoveryRounds := 40 * outageRounds
	// Scale: the affected flows together fill `affected` Gbps at steady
	// state; OutageRecovery works in segments, so use its own steady level
	// as the 100% mark.
	flowSamples, err := tcp.OutageRecovery(float64(nAffected)*32, nAffected, 60, outageRounds, recoveryRounds)
	if err != nil {
		return nil, err
	}
	steady := flowSamples[0].Goodput
	if steady <= 0 {
		return nil, fmt.Errorf("update: degenerate TCP steady state")
	}
	for i, fs := range flowSamples {
		if i == 0 {
			continue // the pre-outage point is already emitted as t=0
		}
		t := RouteOpSeconds + float64(fs.Round-1)*rttSeconds
		samples = append(samples, Sample{
			T:          t,
			Throughput: unaffected + affected*fs.Goodput/steady,
		})
		// Stop once recovered to steady state.
		if fs.Round > outageRounds && fs.Goodput >= steady {
			break
		}
	}
	return samples, nil
}
