package update

import (
	"slices"

	"owan/internal/tcp"
)

// Sample is one point of the throughput-versus-time curve during an update.
type Sample struct {
	T          float64 // seconds since the update began
	Throughput float64 // Gbps carried at that instant
}

// Timeline evaluates the throughput carried while a consistent plan
// executes: routes contribute their rate from the moment they are added
// until the moment they are removed; circuit operations by construction
// never strand a live route, so they do not interrupt traffic. It runs the
// flat evaluator on a throwaway Scratch; per-slot callers should reuse a
// Scratch and call its Timeline to avoid reallocating.
func (p *Plan) Timeline(oldState *State) []Sample {
	return NewScratch().Timeline(p, oldState)
}

func eqRouteRec(a, b routeRec) bool { return cmpRoute(a.r, b.r) == 0 }

// Timeline is the flat, allocation-free timeline evaluator. Every route the
// curve can ever see — the old state's plus those the plan's route ops name
// — gets a dense slot in a canonically-sorted table; rounds toggle slots
// and each sample sums the live slots in ascending order, which is exactly
// the canonical-order summation referenceTimeline performs, so the two
// produce bit-identical curves. The returned samples alias scratch storage
// and are valid until the next Timeline call on this Scratch.
func (s *Scratch) Timeline(p *Plan, oldState *State) []Sample {
	s.tlRecs = s.tlRecs[:0]
	for _, r := range oldState.Routes {
		s.tlRecs = append(s.tlRecs, routeRec{r: r})
	}
	for _, round := range p.Rounds {
		for _, o := range round.Ops {
			switch o.Kind {
			case AddRoute, RemoveRoute, ChangeRoute:
				s.tlRecs = append(s.tlRecs, routeRec{r: Route{TransferID: o.TransferID, Path: o.Path, Rate: o.Rate}})
			}
		}
	}
	slices.SortFunc(s.tlRecs, cmpRouteRec)
	s.tlRecs = slices.CompactFunc(s.tlRecs, eqRouteRec)
	n := len(s.tlRecs)
	s.tlRate = growF64(s.tlRate, n)
	s.tlLive = growBool(s.tlLive, n)
	for i := 0; i < n; i++ {
		s.tlLive[i] = false
	}
	slotOf := func(id int, path []int) int {
		i, _ := slices.BinarySearchFunc(s.tlRecs, routeRec{r: Route{TransferID: id, Path: path}}, cmpRouteRec)
		return i
	}
	// Initial live set, in the state's route order (last write wins, like
	// the reference's map upserts — a duplicate-free state never hits this).
	for _, r := range oldState.Routes {
		i := slotOf(r.TransferID, r.Path)
		s.tlRate[i] = r.Rate
		s.tlLive[i] = true
	}
	total := func() float64 {
		t := 0.0
		for i := 0; i < n; i++ {
			if s.tlLive[i] {
				t += s.tlRate[i]
			}
		}
		return t
	}
	now := 0.0
	s.samples = s.samples[:0]
	s.samples = append(s.samples, Sample{T: 0, Throughput: total()})
	for _, round := range p.Rounds {
		for _, o := range round.Ops {
			switch o.Kind {
			case RemoveRoute:
				s.tlLive[slotOf(o.TransferID, o.Path)] = false
			case AddRoute, ChangeRoute:
				i := slotOf(o.TransferID, o.Path)
				s.tlRate[i] = o.Rate
				s.tlLive[i] = true
			}
		}
		now += round.Seconds()
		s.samples = append(s.samples, Sample{T: now, Throughput: total()})
	}
	return s.samples
}

// OneShotTimeline evaluates the throughput of the naive update that pushes
// every change simultaneously: the routers switch to the new routes almost
// immediately, but every link whose circuits are being reconfigured goes
// dark for CircuitOpSeconds, so new routes crossing a changed link carry
// nothing during that window (their packets are dropped; with TCP the
// effect the paper measures is a ~10% dip in total throughput).
func OneShotTimeline(oldState, newState *State) []Sample {
	changed := map[[2]int]bool{}
	linkSet := map[[2]int]bool{}
	for l := range oldState.Circuits {
		linkSet[l] = true
	}
	for l := range newState.Circuits {
		linkSet[l] = true
	}
	for l := range linkSet {
		if oldState.Circuits[l] != newState.Circuits[l] {
			changed[l] = true
		}
	}
	during, after := 0.0, 0.0
	for _, r := range newState.Routes {
		after += r.Rate
		dark := false
		for _, l := range routeLinks(r.Path) {
			if changed[l] {
				dark = true
				break
			}
		}
		if !dark {
			during += r.Rate
		}
	}
	before := 0.0
	for _, r := range oldState.Routes {
		before += r.Rate
	}
	return []Sample{
		{T: 0, Throughput: before},
		{T: RouteOpSeconds, Throughput: during},
		{T: CircuitOpSeconds, Throughput: during},
		{T: CircuitOpSeconds + 1e-3, Throughput: after},
	}
}

// MinThroughput returns the lowest throughput in a timeline.
func MinThroughput(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	m := samples[0].Throughput
	for _, s := range samples {
		if s.Throughput < m {
			m = s.Throughput
		}
	}
	return m
}

// StateFromAlloc is a convenience for building update states from a
// topology snapshot (circuits per link with their fiber routes) and an
// allocation (transfer id -> path rates).
func StateFromAlloc(circuits map[[2]int]int, fibers map[[2]int][]int, routes []Route) *State {
	return &State{Circuits: circuits, CircuitFibers: fibers, Routes: routes}
}

// OneShotTCPTimeline refines OneShotTimeline with transport behaviour:
// the routes crossing reconfigured links are TCP flows that time out
// during the dark window and then recover through slow start, so total
// throughput climbs back gradually instead of snapping to the new level
// the moment circuits are up — the effect the paper measures on its
// testbed ("packets get lost on these links, affecting the overall TCP
// performance"). rttSeconds is the round-trip time driving the recovery
// clock.
func OneShotTCPTimeline(oldState, newState *State, rttSeconds float64) ([]Sample, error) {
	if rttSeconds <= 0 {
		return nil, ErrBadRTT
	}
	changed := map[[2]int]bool{}
	linkSet := map[[2]int]bool{}
	for l := range oldState.Circuits {
		linkSet[l] = true
	}
	for l := range newState.Circuits {
		linkSet[l] = true
	}
	for l := range linkSet {
		if oldState.Circuits[l] != newState.Circuits[l] {
			changed[l] = true
		}
	}
	unaffected, affected := 0.0, 0.0
	nAffected := 0
	for _, r := range newState.Routes {
		dark := false
		for _, l := range routeLinks(r.Path) {
			if changed[l] {
				dark = true
				break
			}
		}
		if dark {
			affected += r.Rate
			nAffected++
		} else {
			unaffected += r.Rate
		}
	}
	before := 0.0
	for _, r := range oldState.Routes {
		before += r.Rate
	}
	samples := []Sample{{T: 0, Throughput: before}}
	if nAffected == 0 {
		samples = append(samples, Sample{T: RouteOpSeconds, Throughput: unaffected + affected})
		return samples, nil
	}
	outageRounds := int(CircuitOpSeconds/rttSeconds + 0.5)
	recoveryRounds := 40 * outageRounds
	// Scale: the affected flows together fill `affected` Gbps at steady
	// state; OutageRecovery works in segments, so use its own steady level
	// as the 100% mark.
	flowSamples, err := tcp.OutageRecovery(float64(nAffected)*32, nAffected, 60, outageRounds, recoveryRounds)
	if err != nil {
		return nil, err
	}
	steady := flowSamples[0].Goodput
	if steady <= 0 {
		return nil, ErrDegenerateTCP
	}
	for i, fs := range flowSamples {
		if i == 0 {
			continue // the pre-outage point is already emitted as t=0
		}
		t := RouteOpSeconds + float64(fs.Round-1)*rttSeconds
		samples = append(samples, Sample{
			T:          t,
			Throughput: unaffected + affected*fs.Goodput/steady,
		})
		// Stop once recovered to steady state.
		if fs.Round > outageRounds && fs.Goodput >= steady {
			break
		}
	}
	return samples, nil
}
