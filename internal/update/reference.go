package update

import "slices"

// This file retains the original map-based planner as the executable
// specification the flat engine (engine.go) is pinned against. It is the
// pre-PR code with exactly three deliberate deltas, shared with the flat
// engine so both sides of the differential agree by construction:
//
//   - route ops are keyed and ordered by the integer (TransferID, Path)
//     identity (appendSortedRecs) instead of sorted fmt.Sprint strings;
//   - duplicate (TransferID, Path) routes are an error instead of being
//     silently collapsed by map upserts;
//   - timeline totals sum live routes in the canonical route order instead
//     of nondeterministic map-iteration order, so throughput curves are
//     bit-reproducible.
//
// Everything that makes the scheduler interesting — the greedy round
// construction with consume-on-select / release-after-round resource
// semantics, deferred route removals, and the forced-detour fallback — is
// untouched, and implemented twice: here with per-round full rescans over
// maps, in engine.go with waiter lists over flat arrays. The 300-seed
// differential (`make update`) proves the two emit bit-identical plans.

// referencePlan computes a consistent round schedule transforming old into
// new using the retained map-based algorithm.
func referencePlan(cfg Config, oldState, newState *State) (*Plan, error) {
	if cfg.Theta <= 0 {
		return nil, ErrBadTheta
	}
	oldRecs, err := appendSortedRecs(nil, oldState.Routes)
	if err != nil {
		return nil, err
	}
	newRecs, err := appendSortedRecs(nil, newState.Routes)
	if err != nil {
		return nil, err
	}
	// Pending operations.
	var pending []Op
	// Circuit diffs.
	linkSet := map[[2]int]bool{}
	for l := range oldState.Circuits {
		linkSet[l] = true
	}
	for l := range newState.Circuits {
		linkSet[l] = true
	}
	links := make([][2]int, 0, len(linkSet))
	for l := range linkSet {
		links = append(links, l)
	}
	slices.SortFunc(links, func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})
	fibersOf := func(l [2]int) []int {
		if f, ok := newState.CircuitFibers[l]; ok {
			return f
		}
		return oldState.CircuitFibers[l]
	}
	for _, l := range links {
		diff := newState.Circuits[l] - oldState.Circuits[l]
		for i := 0; i < diff; i++ {
			pending = append(pending, Op{Kind: AddCircuit, Link: l, Fibers: fibersOf(l)})
		}
		for i := 0; i < -diff; i++ {
			pending = append(pending, Op{Kind: RemoveCircuit, Link: l, Fibers: fibersOf(l)})
		}
	}
	// Route diffs (by exact identity): old-side removals and rate changes
	// first, then new-side additions, each in canonical route order.
	for _, rec := range oldRecs {
		r := rec.r
		j, ok := slices.BinarySearchFunc(newRecs, rec, cmpRouteRec)
		if !ok {
			pending = append(pending, Op{Kind: RemoveRoute, TransferID: r.TransferID, Path: r.Path, Rate: r.Rate})
		} else if n := newRecs[j].r; n.Rate != r.Rate {
			pending = append(pending, Op{Kind: ChangeRoute, TransferID: r.TransferID, Path: r.Path, Rate: n.Rate, OldRate: r.Rate})
		}
	}
	for _, rec := range newRecs {
		if _, had := slices.BinarySearchFunc(oldRecs, rec, cmpRouteRec); !had {
			r := rec.r
			pending = append(pending, Op{Kind: AddRoute, TransferID: r.TransferID, Path: r.Path, Rate: r.Rate})
		}
	}

	// Live state during scheduling.
	circuits := map[[2]int]int{}
	for l, c := range oldState.Circuits {
		circuits[l] = c
	}
	fiberFree := map[int]int{}
	for f, n := range cfg.FiberFree {
		fiberFree[f] = n
	}
	load := map[[2]int]float64{}
	for _, r := range oldState.Routes {
		for _, l := range routeLinks(r.Path) {
			load[l] += r.Rate
		}
	}

	// removeNeeded reports whether tearing a route down now serves a
	// purpose: a circuit on its path is waiting to be removed, or pending
	// route additions need the capacity it occupies. Otherwise the route
	// keeps carrying traffic (Dionysus removes flow only to make room),
	// and the teardown lands in the final cleanup round.
	removeNeeded := func(o Op, pending []Op) bool {
		needs := map[[2]int]float64{}
		removals := map[[2]int]bool{}
		for _, p := range pending {
			switch p.Kind {
			case AddRoute:
				for _, l := range routeLinks(p.Path) {
					needs[l] += p.Rate
				}
			case ChangeRoute:
				if d := p.Rate - p.OldRate; d > 0 {
					for _, l := range routeLinks(p.Path) {
						needs[l] += d
					}
				}
			case RemoveCircuit:
				removals[p.Link] = true
			}
		}
		for _, l := range routeLinks(o.Path) {
			if removals[l] {
				return true
			}
			free := float64(circuits[l])*cfg.Theta - load[l]
			if needs[l] > free+1e-9 {
				return true
			}
		}
		return false
	}
	eligible := func(o Op) bool {
		switch o.Kind {
		case RemoveRoute:
			return true
		case ChangeRoute:
			if o.Rate <= o.OldRate {
				return true
			}
			delta := o.Rate - o.OldRate
			for _, l := range routeLinks(o.Path) {
				if float64(circuits[l])*cfg.Theta < load[l]+delta-1e-9 {
					return false
				}
			}
			return true
		case AddRoute:
			for _, l := range routeLinks(o.Path) {
				if float64(circuits[l])*cfg.Theta < load[l]+o.Rate-1e-9 {
					return false
				}
			}
			return true
		case RemoveCircuit:
			l := o.Link
			return float64(circuits[l]-1)*cfg.Theta >= load[l]-1e-9
		case AddCircuit:
			for _, f := range o.Fibers {
				if fiberFree[f] <= 0 {
					return false
				}
			}
			return true
		}
		return false
	}
	// An op's effects split in two: consumption is applied the moment the
	// op is selected into a round (so other candidates in the same round
	// cannot double-book a resource), while releases only become visible
	// after the round completes (an op must not depend on a parallel op's
	// freed resource).
	consume := func(o Op) {
		switch o.Kind {
		case AddRoute:
			for _, l := range routeLinks(o.Path) {
				load[l] += o.Rate
			}
		case ChangeRoute:
			if d := o.Rate - o.OldRate; d > 0 {
				for _, l := range routeLinks(o.Path) {
					load[l] += d
				}
			}
		case RemoveCircuit:
			circuits[o.Link]--
		case AddCircuit:
			for _, f := range o.Fibers {
				fiberFree[f]--
			}
		}
	}
	release := func(o Op) {
		switch o.Kind {
		case RemoveRoute:
			for _, l := range routeLinks(o.Path) {
				load[l] -= o.Rate
			}
		case ChangeRoute:
			if d := o.Rate - o.OldRate; d < 0 {
				for _, l := range routeLinks(o.Path) {
					load[l] += d
				}
			}
		case RemoveCircuit:
			for _, f := range o.Fibers {
				fiberFree[f]++
			}
		case AddCircuit:
			circuits[o.Link]++
		}
	}

	plan := &Plan{}
	detoured := map[rkey]bool{}
	for len(pending) > 0 {
		var round []Op
		var rest []Op
		// Select ops one by one, consuming resources immediately so the
		// round stays jointly feasible; releases surface after the round.
		// Route removals are deferred while their traffic can keep
		// flowing.
		for _, o := range pending {
			if o.Kind == RemoveRoute && !removeNeeded(o, pending) {
				rest = append(rest, o)
				continue
			}
			if eligible(o) {
				consume(o)
				round = append(round, o)
			} else {
				rest = append(rest, o)
			}
		}
		if len(round) == 0 {
			// Only deferred route removals left: flush them as the final
			// cleanup round (their replacement routes are already up).
			onlyRemovals := len(rest) > 0
			for _, o := range rest {
				if o.Kind != RemoveRoute {
					onlyRemovals = false
					break
				}
			}
			if onlyRemovals {
				for _, o := range rest {
					consume(o)
				}
				round, rest = rest, nil
			}
		}
		if len(round) == 0 {
			// Deadlock: some RemoveCircuit is blocked by persisting route
			// load, or an AddCircuit waits on wavelengths only freed by such
			// a removal. Break it with Dionysus' fallback: temporarily
			// remove a persisting route on the most-blocked link.
			victim, ok := pickVictim(rest, circuits, load, cfg.Theta, newState, detoured)
			if !ok {
				// Return the partial plan alongside the error: the
				// differential pins the engines' detour paths against each
				// other even when the target is genuinely infeasible.
				return plan, ErrDeadlock
			}
			plan.ForcedDetours++
			detoured[routeKeyOf(victim.TransferID, victim.Path)] = true
			// Remove now, restore at the very end.
			pending = append(rest, Op{Kind: AddRoute, TransferID: victim.TransferID, Path: victim.Path, Rate: victim.Rate})
			round = []Op{{Kind: RemoveRoute, TransferID: victim.TransferID, Path: victim.Path, Rate: victim.Rate}}
		} else {
			pending = rest
		}
		for _, o := range round {
			release(o)
		}
		plan.Rounds = append(plan.Rounds, Round{Ops: round})
	}
	return plan, nil
}

// pickVictim finds a persisting route to detour: one crossing a link whose
// RemoveCircuit is blocked.
func pickVictim(pending []Op, circuits map[[2]int]int, load map[[2]int]float64, theta float64, newState *State, detoured map[rkey]bool) (Route, bool) {
	blocked := map[[2]int]bool{}
	for _, o := range pending {
		if o.Kind == RemoveCircuit {
			l := o.Link
			if float64(circuits[l]-1)*theta < load[l] {
				blocked[l] = true
			}
		}
	}
	for _, r := range newState.Routes {
		if detoured[routeKeyOf(r.TransferID, r.Path)] {
			continue
		}
		for _, l := range routeLinks(r.Path) {
			if blocked[l] && r.Rate > 0 {
				return r, true
			}
		}
	}
	return Route{}, false
}

// referenceTimeline is the map-based throughput timeline the flat
// Scratch.Timeline is pinned against. Live routes are keyed by the integer
// route identity; the per-sample total sums them in canonical route order
// so the curve is deterministic and bit-comparable across engines.
func referenceTimeline(p *Plan, oldState *State) []Sample {
	live := map[rkey]Route{}
	for _, r := range oldState.Routes {
		live[routeKeyOf(r.TransferID, r.Path)] = r
	}
	var scratch []Route
	total := func() float64 {
		scratch = scratch[:0]
		for _, r := range live {
			scratch = append(scratch, r)
		}
		slices.SortFunc(scratch, cmpRoute)
		t := 0.0
		for _, r := range scratch {
			t += r.Rate
		}
		return t
	}
	now := 0.0
	samples := []Sample{{T: 0, Throughput: total()}}
	for _, round := range p.Rounds {
		for _, o := range round.Ops {
			switch o.Kind {
			case RemoveRoute:
				delete(live, routeKeyOf(o.TransferID, o.Path))
			case AddRoute, ChangeRoute:
				live[routeKeyOf(o.TransferID, o.Path)] = Route{TransferID: o.TransferID, Path: o.Path, Rate: o.Rate}
			}
		}
		now += round.Seconds()
		samples = append(samples, Sample{T: now, Throughput: total()})
	}
	return samples
}
