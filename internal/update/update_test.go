package update

import (
	"math"
	"testing"
)

// twoLinkStates builds a simple scenario: link (0,1) loses a circuit, link
// (0,2) gains one, with a route moving accordingly.
func twoLinkStates() (*State, *State) {
	oldS := &State{
		Circuits:      map[[2]int]int{{0, 1}: 2, {0, 2}: 1},
		CircuitFibers: map[[2]int][]int{{0, 1}: {0}, {0, 2}: {1}},
		Routes: []Route{
			{TransferID: 1, Path: []int{0, 1}, Rate: 15},
		},
	}
	newS := &State{
		Circuits:      map[[2]int]int{{0, 1}: 1, {0, 2}: 2},
		CircuitFibers: map[[2]int][]int{{0, 1}: {0}, {0, 2}: {1}},
		Routes: []Route{
			{TransferID: 1, Path: []int{0, 1}, Rate: 10},
			{TransferID: 2, Path: []int{0, 2}, Rate: 15},
		},
	}
	return oldS, newS
}

func cfg() Config {
	return Config{Theta: 10, FiberFree: map[int]int{0: 5, 1: 5, 2: 5}}
}

func TestBuildPlanCompletes(t *testing.T) {
	oldS, newS := twoLinkStates()
	plan, err := BuildPlan(cfg(), oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumOps() < 4 {
		t.Errorf("ops = %d, want at least remove-circuit, add-circuit, and route changes", plan.NumOps())
	}
}

// replay re-executes the plan checking invariants at every step: no link
// ever carries more load than its live circuits provide, and fiber budgets
// never go negative.
func replay(t *testing.T, plan *Plan, oldS *State, c Config) {
	t.Helper()
	circuits := map[[2]int]int{}
	for l, n := range oldS.Circuits {
		circuits[l] = n
	}
	free := map[int]int{}
	for f, n := range c.FiberFree {
		free[f] = n
	}
	load := map[[2]int]float64{}
	for _, r := range oldS.Routes {
		for _, l := range routeLinks(r.Path) {
			load[l] += r.Rate
		}
	}
	check := func(stage string) {
		for l, ld := range load {
			if ld > float64(circuits[l])*c.Theta+1e-6 {
				t.Fatalf("%s: link %v overloaded: %v > %v circuits", stage, l, ld, circuits[l])
			}
		}
		for f, n := range free {
			if n < 0 {
				t.Fatalf("%s: fiber %d wavelength budget negative", stage, f)
			}
		}
	}
	check("initial")
	for ri, round := range plan.Rounds {
		for _, o := range round.Ops {
			switch o.Kind {
			case RemoveRoute:
				for _, l := range routeLinks(o.Path) {
					load[l] -= o.Rate
				}
			case AddRoute:
				for _, l := range routeLinks(o.Path) {
					load[l] += o.Rate
				}
			case ChangeRoute:
				for _, l := range routeLinks(o.Path) {
					load[l] += o.Rate - o.OldRate
				}
			case RemoveCircuit:
				circuits[o.Link]--
				for _, f := range o.Fibers {
					free[f]++
				}
			case AddCircuit:
				circuits[o.Link]++
				for _, f := range o.Fibers {
					free[f]--
				}
			}
		}
		check("after round")
		_ = ri
	}
}

func TestPlanInvariants(t *testing.T) {
	oldS, newS := twoLinkStates()
	plan, err := BuildPlan(cfg(), oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	replay(t, plan, oldS, cfg())
}

func TestWavelengthDependency(t *testing.T) {
	// Fiber 0 has no spare wavelength: the AddCircuit on it must wait for
	// the RemoveCircuit that frees one.
	oldS := &State{
		Circuits:      map[[2]int]int{{0, 1}: 1},
		CircuitFibers: map[[2]int][]int{{0, 1}: {0}, {0, 2}: {0}},
		Routes:        nil,
	}
	newS := &State{
		Circuits:      map[[2]int]int{{0, 2}: 1},
		CircuitFibers: map[[2]int][]int{{0, 1}: {0}, {0, 2}: {0}},
		Routes:        nil,
	}
	c := Config{Theta: 10, FiberFree: map[int]int{0: 0}}
	plan, err := BuildPlan(c, oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	// The remove must come in an earlier round than the add.
	removeRound, addRound := -1, -1
	for i, r := range plan.Rounds {
		for _, o := range r.Ops {
			if o.Kind == RemoveCircuit {
				removeRound = i
			}
			if o.Kind == AddCircuit {
				addRound = i
			}
		}
	}
	if removeRound < 0 || addRound < 0 || removeRound >= addRound {
		t.Errorf("remove in round %d, add in round %d: add must wait for freed wavelength", removeRound, addRound)
	}
	replay(t, plan, oldS, c)
}

func TestRouteWaitsForCircuit(t *testing.T) {
	// New route needs a new link: the AddRoute must come after AddCircuit.
	oldS := &State{
		Circuits:      map[[2]int]int{{0, 1}: 1},
		CircuitFibers: map[[2]int][]int{{0, 1}: {0}, {1, 2}: {1}},
	}
	newS := &State{
		Circuits:      map[[2]int]int{{0, 1}: 1, {1, 2}: 1},
		CircuitFibers: map[[2]int][]int{{0, 1}: {0}, {1, 2}: {1}},
		Routes: []Route{
			{TransferID: 1, Path: []int{0, 1, 2}, Rate: 10},
		},
	}
	plan, err := BuildPlan(cfg(), oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	circuitRound, routeRound := -1, -1
	for i, r := range plan.Rounds {
		for _, o := range r.Ops {
			if o.Kind == AddCircuit {
				circuitRound = i
			}
			if o.Kind == AddRoute {
				routeRound = i
			}
		}
	}
	if circuitRound < 0 || routeRound < 0 || circuitRound >= routeRound {
		t.Errorf("circuit round %d, route round %d: route must wait", circuitRound, routeRound)
	}
}

func TestInfeasibleTargetRefused(t *testing.T) {
	// Link (0,1) shrinks from 2 to 1 circuits but the new state still
	// routes 15 > 10 over it: the target itself is infeasible, and after
	// the detour fallback exhausts its options the scheduler must refuse
	// rather than emit an oversubscribed plan.
	oldS := &State{
		Circuits:      map[[2]int]int{{0, 1}: 2},
		CircuitFibers: map[[2]int][]int{{0, 1}: {0}, {0, 2}: {0}},
		Routes: []Route{
			{TransferID: 1, Path: []int{0, 1}, Rate: 15},
		},
	}
	newS := &State{
		Circuits:      map[[2]int]int{{0, 1}: 1, {0, 2}: 1},
		CircuitFibers: map[[2]int][]int{{0, 1}: {0}, {0, 2}: {0}},
		Routes: []Route{
			{TransferID: 1, Path: []int{0, 1}, Rate: 15}, // still 15: infeasible on 1 circuit
		},
	}
	c := Config{Theta: 10, FiberFree: map[int]int{0: 0}}
	if _, err := BuildPlan(c, oldS, newS); err == nil {
		t.Error("infeasible target state must be refused")
	}
}

func TestMigrationNeedsNoDetour(t *testing.T) {
	// A feasible migration — route moves from (0,1) to (0,2), wavelength
	// freed by the circuit teardown — schedules without forced detours:
	// remove route, remove circuit, add circuit, add route, in dependency
	// order.
	oldS := &State{
		Circuits:      map[[2]int]int{{0, 1}: 1},
		CircuitFibers: map[[2]int][]int{{0, 1}: {0}, {0, 2}: {0}},
		Routes: []Route{
			{TransferID: 1, Path: []int{0, 1}, Rate: 8},
		},
	}
	newS := &State{
		Circuits:      map[[2]int]int{{0, 2}: 1},
		CircuitFibers: map[[2]int][]int{{0, 1}: {0}, {0, 2}: {0}},
		Routes: []Route{
			{TransferID: 1, Path: []int{0, 2}, Rate: 8},
		},
	}
	c := Config{Theta: 10, FiberFree: map[int]int{0: 0}}
	plan, err := BuildPlan(c, oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ForcedDetours != 0 {
		t.Errorf("feasible migration used %d forced detours", plan.ForcedDetours)
	}
	replay(t, plan, oldS, c)
	if got := len(plan.Rounds); got < 4 {
		t.Errorf("rounds = %d, want >= 4 (strictly serialized dependency chain)", got)
	}
}

func TestConsistentTimelineNoDip(t *testing.T) {
	// A topology change where every moved route has an alternative: the
	// consistent plan should never drop below the old throughput minus the
	// routes being migrated (here: route moves after its circuit is up, so
	// only the brief remove/add gap shows; with disjoint links there is no
	// dip at all).
	oldS := &State{
		Circuits:      map[[2]int]int{{0, 1}: 1, {0, 2}: 1},
		CircuitFibers: map[[2]int][]int{{0, 1}: {0}, {0, 2}: {1}, {1, 2}: {2}},
		Routes: []Route{
			{TransferID: 1, Path: []int{0, 1}, Rate: 10},
			{TransferID: 2, Path: []int{0, 2}, Rate: 10},
		},
	}
	newS := &State{
		Circuits:      map[[2]int]int{{0, 1}: 1, {0, 2}: 1, {1, 2}: 1},
		CircuitFibers: map[[2]int][]int{{0, 1}: {0}, {0, 2}: {1}, {1, 2}: {2}},
		Routes: []Route{
			{TransferID: 1, Path: []int{0, 1}, Rate: 10},
			{TransferID: 2, Path: []int{0, 2}, Rate: 10},
			{TransferID: 3, Path: []int{1, 2}, Rate: 10},
		},
	}
	plan, err := BuildPlan(cfg(), oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	tl := plan.Timeline(oldS)
	if MinThroughput(tl) < 20-1e-9 {
		t.Errorf("consistent update dipped to %v, want >= 20", MinThroughput(tl))
	}
	// One-shot: route 3 crosses the changed link (1,2) and cannot carry
	// during reconfiguration; existing routes keep flowing, so throughput
	// during the window is 20 of an eventual 30.
	os := OneShotTimeline(oldS, newS)
	if MinThroughput(os) > 20+1e-9 {
		t.Errorf("one-shot min = %v, expected the dip to 20", MinThroughput(os))
	}
	if last := os[len(os)-1].Throughput; math.Abs(last-30) > 1e-9 {
		t.Errorf("one-shot final = %v, want 30", last)
	}
}

func TestOneShotDipsBelowConsistent(t *testing.T) {
	// Migrating a route between links: one-shot drops it during the window.
	oldS, newS := twoLinkStates()
	plan, err := BuildPlan(cfg(), oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	cons := MinThroughput(plan.Timeline(oldS))
	oneShot := MinThroughput(OneShotTimeline(oldS, newS))
	if oneShot >= cons {
		t.Errorf("one-shot min %v should be below consistent min %v", oneShot, cons)
	}
}

func TestEmptyUpdate(t *testing.T) {
	oldS, _ := twoLinkStates()
	plan, err := BuildPlan(cfg(), oldS, oldS)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumOps() != 0 || plan.Seconds() != 0 {
		t.Errorf("no-op update should be empty, got %d ops", plan.NumOps())
	}
}

func TestBadConfig(t *testing.T) {
	oldS, newS := twoLinkStates()
	if _, err := BuildPlan(Config{Theta: 0}, oldS, newS); err == nil {
		t.Error("zero theta should be rejected")
	}
}

func TestOneShotTCPTimeline(t *testing.T) {
	oldS, newS := twoLinkStates()
	samples, err := OneShotTCPTimeline(oldS, newS, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 3 {
		t.Fatalf("too few samples: %d", len(samples))
	}
	// The TCP dip is at least as deep as the fluid one-shot dip, and
	// recovery is gradual: strictly increasing tail after the window.
	fluid := MinThroughput(OneShotTimeline(oldS, newS))
	if m := MinThroughput(samples); m > fluid+1e-9 {
		t.Errorf("tcp min %v should be <= fluid one-shot min %v", m, fluid)
	}
	// Find a post-window sample still below the final level: gradual ramp.
	final := samples[len(samples)-1].Throughput
	gradual := false
	for _, s := range samples {
		if s.T > CircuitOpSeconds && s.Throughput < 0.95*final {
			gradual = true
			break
		}
	}
	if !gradual {
		t.Error("expected a gradual TCP recovery after the dark window")
	}
}

func TestOneShotTCPNoAffectedRoutes(t *testing.T) {
	st := &State{
		Circuits:      map[[2]int]int{{0, 1}: 1},
		CircuitFibers: map[[2]int][]int{{0, 1}: {0}},
		Routes:        []Route{{TransferID: 1, Path: []int{0, 1}, Rate: 10}},
	}
	samples, err := OneShotTCPTimeline(st, st, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Throughput != 10 {
			t.Errorf("no-op update should keep throughput at 10, got %v", s.Throughput)
		}
	}
}

func TestOneShotTCPRejectsBadRTT(t *testing.T) {
	oldS, newS := twoLinkStates()
	if _, err := OneShotTCPTimeline(oldS, newS, 0); err == nil {
		t.Error("zero rtt accepted")
	}
}
