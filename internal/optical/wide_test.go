package optical

import (
	"math/rand"
	"testing"

	"owan/internal/topology"
)

// TestWideMaskRoutingMatchesMaterialized is the >64-site optical
// differential: on ISP100-class networks, provisioning with the multi-word
// reach masks (reachMaskW, the default) must produce exactly the effective
// topology the materialized transit-graph path does. The materialized
// reference is obtained by nil-ing the mask on a sibling State — the
// findRegenRoute branch falls through to building the regenerator graph.
func TestWideMaskRoutingMatchesMaterialized(t *testing.T) {
	nets := []*topology.Network{
		topology.ISP(100, 10, 1),
		topology.ISP(80, 8, 2),
	}
	for ni, net := range nets {
		n := net.NumSites()
		mask := NewState(net)
		if mask.reachMaskW == nil || mask.reachMask != nil {
			t.Fatalf("net %d: expected the multi-word mask on %d sites", ni, n)
		}
		plain := NewState(net)
		plain.SetScalarFallback(true) // force the materialized transit-graph path
		if plain.reachMaskW != nil {
			t.Fatal("SetScalarFallback left the multi-word mask live")
		}
		rng := rand.New(rand.NewSource(int64(ni)))
		cases := []*topology.LinkSet{topology.InitialTopology(net)}
		for c := 0; c < 6; c++ {
			ls := topology.NewLinkSet(n)
			for i := 0; i < 3+rng.Intn(3*n); i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				ls.Add(u, v, 1+rng.Intn(4))
			}
			cases = append(cases, ls)
		}
		for ci, ls := range cases {
			want := plain.ProvisionEffective(ls).Clone()
			got := mask.ProvisionEffective(ls)
			sameLinkSet(t, "mask vs materialized", want, got)
			_ = ci
		}
	}
}

// TestWideStaticFeasibleMatchesBFS recomputes static regenerator
// reachability naively on a >64-site network and pins the bitset rows to it.
func TestWideStaticFeasibleMatchesBFS(t *testing.T) {
	net := topology.ISP(100, 10, 3)
	ns := net.NumSites()
	s := NewState(net)
	for u := 0; u < ns; u++ {
		seen := make([]bool, ns)
		seen[u] = true
		queue := []int{u}
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for v := 0; v < ns; v++ {
				if seen[v] || !s.inReach[x*ns+v] {
					continue
				}
				seen[v] = true
				if net.Sites[v].Regenerators > 0 {
					queue = append(queue, v)
				}
			}
		}
		for v := 0; v < ns; v++ {
			want := seen[v] && v != u
			if got := s.staticFeasible(u, v); got != want {
				t.Fatalf("staticFeasible(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}
