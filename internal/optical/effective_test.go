package optical

import (
	"math/rand"
	"testing"

	"owan/internal/topology"
)

// sameLinkSet asserts two LinkSets carry identical capacities.
func sameLinkSet(t *testing.T, ctx string, want, got *topology.LinkSet) {
	t.Helper()
	if want.N != got.N {
		t.Fatalf("%s: N %d != %d", ctx, got.N, want.N)
	}
	for _, l := range want.Links() {
		if g := got.Get(l.U, l.V); g != l.Count {
			t.Fatalf("%s: link %d-%d: %d circuits, want %d", ctx, l.U, l.V, g, l.Count)
		}
	}
	for _, l := range got.Links() {
		if want.Get(l.U, l.V) == 0 {
			t.Fatalf("%s: unexpected link %d-%d (%d circuits)", ctx, l.U, l.V, l.Count)
		}
	}
}

// TestProvisionEffectiveMatchesPlan pins the record-free provisioning mode
// to the recording one: for the same requested topology both must produce
// identical effective capacities, because provisioning decisions depend only
// on the wavelength/regenerator occupancy, never on the Circuit records.
// One State serves all ProvisionEffective calls so scratch-reuse bugs
// (stale effective sets, leftover transit graphs) cannot hide.
func TestProvisionEffectiveMatchesPlan(t *testing.T) {
	nets := []*topology.Network{
		topology.Internet2(15),
		topology.ISP(30, 8, 5),
		topology.Square(),
	}
	for ni, net := range nets {
		n := net.NumSites()
		lean := NewState(net)
		rng := rand.New(rand.NewSource(int64(ni)))
		cases := []*topology.LinkSet{topology.InitialTopology(net)}
		// Random topologies, including over-subscribed ones that exhaust
		// wavelengths (Built < Want) and long links that need regenerators.
		for c := 0; c < 8; c++ {
			ls := topology.NewLinkSet(n)
			for i := 0; i < 3+rng.Intn(3*n); i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				ls.Add(u, v, 1+rng.Intn(6))
			}
			cases = append(cases, ls)
		}
		for ci, ls := range cases {
			want := NewState(net).ProvisionTopology(ls).Effective(n)
			got := lean.ProvisionEffective(ls)
			sameLinkSet(t, "lean vs plan", want, got)
			_ = ci
		}
	}
}

// TestProvisionEffectiveReusesResult documents the ownership contract: the
// returned LinkSet belongs to the State and is overwritten by the next call.
func TestProvisionEffectiveReusesResult(t *testing.T) {
	net := topology.Internet2(15)
	s := NewState(net)
	ls := topology.InitialTopology(net)
	a := s.ProvisionEffective(ls)
	snapshot := a.Clone()
	b := s.ProvisionEffective(ls)
	if a != b {
		t.Error("ProvisionEffective should reuse its result LinkSet across calls")
	}
	sameLinkSet(t, "second call", snapshot, b)
}

// TestProvisionEffectiveSteadyStateAllocs asserts the energy hot path stays
// (nearly) allocation-free: after warm-up, realizing a topology allocates
// nothing on the direct-segment fast path. Map writes into the effective
// LinkSet and rare regenerator-graph paths are the only permitted sources.
func TestProvisionEffectiveSteadyStateAllocs(t *testing.T) {
	net := topology.ISP(25, 8, 1)
	s := NewState(net)
	ls := topology.InitialTopology(net)
	s.ProvisionEffective(ls) // warm the scratch buffers
	if avg := testing.AllocsPerRun(10, func() {
		s.ProvisionEffective(ls)
	}); avg > 2 {
		t.Errorf("ProvisionEffective allocates %v objects/op in steady state, want <= 2", avg)
	}
}

// BenchmarkProvisionTopology measures topology realization with circuit
// records on the quick-scale ISP network (the configuration the paper's
// figures use for search-quality experiments).
func BenchmarkProvisionTopology(b *testing.B) {
	net := topology.ISP(25, 8, 1)
	ls := topology.InitialTopology(net)
	s := NewState(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ProvisionTopology(ls)
	}
}

// BenchmarkProvisionEffective measures the record-free realization used by
// the annealing energy function.
func BenchmarkProvisionEffective(b *testing.B) {
	net := topology.ISP(25, 8, 1)
	ls := topology.InitialTopology(net)
	s := NewState(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ProvisionEffective(ls)
	}
}
