package optical

import (
	"fmt"
	"math/rand"
	"testing"

	"owan/internal/topology"
)

// checkLambdaIndex asserts the wavelength-availability index invariant the
// hot paths rely on: for every live fiber, fiberFree is exactly the capacity
// mask with the occupancy knocked out (fiberFree == fiberFree0 &^ fiberUse),
// word for word. Every mutation funnels through claimWave/freeWave, so any
// drift here means a mutation path bypassed them.
func checkLambdaIndex(t *testing.T, ctx string, s *State) {
	t.Helper()
	for id, use := range s.fiberUse {
		if use == nil {
			continue
		}
		f0, ff := s.fiberFree0[id], s.fiberFree[id]
		for j := range use {
			if want := f0[j] &^ use[j]; ff[j] != want {
				t.Fatalf("%s: fiber %d word %d: index %#x, capacity&^use %#x",
					ctx, id, j, ff[j], want)
			}
		}
	}
}

// checkRouteLambda cross-checks the word-ascending intersection against the
// bit-by-bit reference on the pair's whole candidate table (primary plus
// alternates): routeLambda over the free-word summaries must equal
// firstCommonFree over the raw occupancy sets, capped at the tightest
// fiber's wavelength count.
func checkRouteLambda(t *testing.T, ctx string, s *State, u, v int) {
	t.Helper()
	routes := [][]int{s.pairPath[u][v]}
	for _, alt := range s.pairAlts[u][v] {
		routes = append(routes, alt.ids)
	}
	for ri, ids := range routes {
		if len(ids) == 0 {
			continue
		}
		phi := s.fiberWaves[ids[0]]
		sets := make([]waveSet, 0, len(ids))
		for _, id := range ids {
			if w := s.fiberWaves[id]; w < phi {
				phi = w
			}
			sets = append(sets, s.fiberUse[id])
		}
		if got, want := s.routeLambda(ids), firstCommonFree(sets, phi); got != want {
			t.Fatalf("%s: pair (%d,%d) route %d: routeLambda %d, firstCommonFree %d",
				ctx, u, v, ri, got, want)
		}
	}
}

// TestLambdaIndexMatchesOccupancy is the randomized property test for the
// wavelength-availability index: arbitrary interleavings of every mutation
// path — circuit provisioning, circuit release, delta provisioning, delta
// revert, and full resets — must leave the free-word summaries exactly
// consistent with a from-scratch scan of the occupancy sets, and the cached
// route intersections exactly equal to the bit-by-bit reference. Networks
// with a removed fiber (the WithoutFiber failure shape, which leaves a nil
// hole in the id-indexed tables) are covered by the reduced-net pass.
func TestLambdaIndexMatchesOccupancy(t *testing.T) {
	steps := 140
	if testing.Short() {
		steps = 40
	}
	for ni, net := range deltaTestNets() {
		nets := []*topology.Network{net}
		if len(net.Fibers) > 4 {
			// Reduced variant: drop one mid-list fiber, as a fiber failure
			// does, so the index runs with a nil id slot in its tables.
			clone := *net
			cut := len(net.Fibers) / 2
			clone.Fibers = append(append([]topology.Fiber(nil), net.Fibers[:cut]...), net.Fibers[cut+1:]...)
			nets = append(nets, &clone)
		}
		for vi, n := range nets {
			rng := rand.New(rand.NewSource(int64(9000 + 10*ni + vi)))
			s := NewState(n)
			ns := n.NumSites()
			ctx := func(step int) string { return fmt.Sprintf("net %d/%d step %d", ni, vi, step) }

			// Phase 1: circuit churn. Provisions claim wavelengths along
			// primaries, alternates, and regenerated segments; releases free
			// them in arbitrary order.
			var live []int
			for step := 0; step < steps; step++ {
				if len(live) > 0 && rng.Intn(5) < 2 {
					k := rng.Intn(len(live))
					if err := s.Release(live[k]); err != nil {
						t.Fatalf("%s: release: %v", ctx(step), err)
					}
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
				} else {
					u, v := rng.Intn(ns), rng.Intn(ns)
					if u == v {
						continue
					}
					if c, err := s.Provision(u, v); err == nil {
						live = append(live, c.ID)
					}
				}
				checkLambdaIndex(t, ctx(step), s)
				checkRouteLambda(t, ctx(step), s, rng.Intn(ns), rng.Intn(ns))
			}

			// Phase 2: delta churn against a snapshot — applies and reverts
			// interleave, with occasional re-baselining on the moved set.
			base := topology.InitialTopology(n)
			var snap Snapshot
			s.BuildSnapshot(&snap, base)
			checkLambdaIndex(t, "post-snapshot", s)
			var j Journal
			for step := 0; step < steps/2; step++ {
				cand, removed, added, ok := randomSwapDelta(rng, base)
				if !ok {
					break
				}
				s.ProvisionDelta(&snap, removed, added, &j)
				checkLambdaIndex(t, ctx(step)+" delta", s)
				checkRouteLambda(t, ctx(step)+" delta", s, rng.Intn(ns), rng.Intn(ns))
				if rng.Intn(3) == 0 {
					base = cand
					s.BuildSnapshot(&snap, base)
				} else {
					s.RevertDelta(&j)
				}
				checkLambdaIndex(t, ctx(step)+" revert", s)
			}

			// Phase 3: a reset must restore the full capacity masks.
			s.Reset()
			checkLambdaIndex(t, "post-reset", s)
			for f := range s.fiberFree {
				if s.fiberFree[f] == nil {
					continue
				}
				for w := range s.fiberFree[f] {
					if s.fiberFree[f][w] != s.fiberFree0[f][w] {
						t.Fatalf("net %d/%d: post-reset fiber %d word %d not full: %#x != %#x",
							ni, vi, f, w, s.fiberFree[f][w], s.fiberFree0[f][w])
					}
				}
			}
		}
	}
}
