package optical

import (
	"math/bits"

	"owan/internal/bitset"
	"owan/internal/topology"
)

// This file implements the incremental (delta) provisioning path behind
// core.Config.DeltaEval: a frozen per-batch Snapshot of the fully
// provisioned base topology, against which a candidate that differs by a
// few swapped circuits is evaluated by releasing only the removed links'
// circuits and provisioning only the added ones, with an undo Journal so
// the worker's state returns to the snapshot in O(delta).
//
// Order-dependence and the trust rule. Cold provisioning walks all links in
// (U, V)-sorted order, so wavelength and regenerator choices depend on
// everything provisioned before; a delta necessarily replays only part of
// that order. The saving grace is that the annealing energy consumes only
// the EFFECTIVE CIRCUIT COUNTS, not the wavelength assignment: when the
// base snapshot built every requested circuit (clean), no resource is near
// exhaustion (not tight), and every added circuit provisions successfully
// without touching a contended or alternate resource, both the cold path
// and the delta path realize exactly the requested counts — so their
// energies are bit-identical even though their occupancies differ. Every
// condition that could break that equality is detected and reported as
// !trusted, and the caller re-runs the cold path (a counted fallback, never
// a silent divergence). The ≥300-seed differential harness in internal/core
// asserts exactly this contract.

// tightWaveMargin is the wavelength scarcity guard: a snapshot is "tight" —
// and every delta against it falls back to cold evaluation — unless every
// fiber keeps at least min(tightWaveMargin, capacity) free wavelengths.
//
// The guard is calibrated against the divergence mechanism, not against
// occupancy equality: cold and delta provisioning may assign different
// wavelengths and regenerator sites to the same circuits without the energy
// noticing (only effective counts feed it), so the gate only has to rule
// out a circuit FAILING in one order but not the other. A wavelength failure
// needs a fiber within a handful of λ of exhaustion (a delta adds at most a
// few circuits, each claiming one λ per fiber), hence the per-snapshot
// margin. Regenerators need no snapshot-level margin: the 1/remaining
// weighting in findRegenRoute actively balances pools and the k-shortest
// enumeration detours around dry sites, so order can only flip a circuit
// between routes — never between success and failure — unless some pool
// runs near dry, where the weighting is at its steepest and a cold-order
// cascade can empty a pool the delta never did. That is gated per delta
// instead: any delta that consumes a regenerator leaving its pool below
// tightRegenMargin, or releases one from a pool the base had already drawn
// down that far, is flagged regenScarce and recomputed cold. The ≥300-seed
// differential harnesses in internal/optical and internal/core — which
// include ISP40-scale and regenerator-starved networks — assert that this
// gate leaves zero silent divergence.
const tightWaveMargin = 8

// tightRegenMargin is the regenerator analogue of tightWaveMargin, applied
// per delta (see above): pools at or below it are close enough to empty
// that provisioning order can decide between success and failure.
const tightRegenMargin = 2

// snapCircuit is one provisioned circuit of the snapshot, stored as spans
// into the Snapshot's flat segment/regenerator arrays.
type snapCircuit struct {
	segOff, segLen     int32
	regenOff, regenLen int32
}

// snapLink mirrors LinkCircuits with circuits as a span into the flat
// circuit array.
type snapLink struct {
	u, v        int
	want, built int
	circOff     int32
}

// Snapshot freezes the optical realization of one base topology: the
// per-link circuit records (segments aliasing the State's immutable route
// tables) plus the resulting occupancy. It is immutable after Build and may
// be shared read-only across worker goroutines; its buffers are reused by
// the next Build, so consumers must be done with generation g before
// generation g+1 is built (the evaluator's batch barrier guarantees that).
type Snapshot struct {
	n     int
	links []snapLink
	circs []snapCircuit
	segs  []Segment
	regs  []int

	fiberUse  []waveSet
	regenFree []int
	// Frozen images of the State's persistent regenerator caches (see
	// State.regenAvail/wRegen), so LoadSnapshot restores them with copies
	// instead of an O(n) recompute.
	regenAvail bitset.Set
	wRegen     []float64
	nextID     int

	eff      *topology.LinkSet
	effLinks []topology.Link // (U, V)-sorted, Count == built

	clean    bool // every link built == want
	tight    bool // scarcity margin violated (or an alternate route was needed)
	resShort bool // some shortfall was resource-driven, not static
}

// N returns the number of network-layer sites of the snapshot's topology.
func (sn *Snapshot) N() int { return sn.n }

// Clean reports whether the base provisioning built every requested circuit.
func (sn *Snapshot) Clean() bool { return sn.clean }

// Tight reports whether the scarcity guard tripped (see tightWaveMargin).
func (sn *Snapshot) Tight() bool { return sn.tight }

// TrustedBase reports whether deltas against this snapshot are eligible for
// trust at all. A base qualifies when no resource is near exhaustion (not
// tight) and every circuit it failed to build was STATICALLY infeasible —
// no in-reach hop sequence through regenerator sites exists for the pair,
// so the circuit fails identically in every provisioning order. Such pairs
// contribute zero effective capacity on both the cold and the delta path
// and therefore cannot diverge; a resource-driven shortfall, by contrast,
// means some pool or fiber is exhausted and order starts to matter.
func (sn *Snapshot) TrustedBase() bool { return !sn.resShort && !sn.tight }

// Eff returns the effective base topology. Read-only for consumers.
func (sn *Snapshot) Eff() *topology.LinkSet { return sn.eff }

// EffLinks returns the (U, V)-sorted effective links. Read-only; valid until
// the next Build on this Snapshot.
func (sn *Snapshot) EffLinks() []topology.Link { return sn.effLinks }

// findLink binary-searches the snapshot's sorted links for canonical (u, v).
func (sn *Snapshot) findLink(u, v int) *snapLink {
	if u > v {
		u, v = v, u
	}
	lo, hi := 0, len(sn.links)
	for lo < hi {
		mid := (lo + hi) / 2
		l := &sn.links[mid]
		if l.u < u || (l.u == u && l.v < v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(sn.links) && sn.links[lo].u == u && sn.links[lo].v == v {
		return &sn.links[lo]
	}
	return nil
}

// BuildSnapshot provisions the topology from scratch — making exactly the
// same decisions as ProvisionTopology/ProvisionEffective — and freezes the
// result into snap, reusing snap's buffers. The receiver State is left
// holding precisely the snapshot occupancy, i.e. already "loaded".
func (s *State) BuildSnapshot(snap *Snapshot, ls *topology.LinkSet) {
	s.Reset()
	sc := s.scratchBuf()
	sc.links = ls.AppendLinks(sc.links[:0])

	snap.n = ls.N
	snap.links = snap.links[:0]
	snap.circs = snap.circs[:0]
	snap.segs = snap.segs[:0]
	snap.regs = snap.regs[:0]
	snap.effLinks = snap.effLinks[:0]
	snap.clean = true
	snap.tight = false
	snap.resShort = false
	if snap.eff == nil || snap.eff.N != ls.N {
		snap.eff = topology.NewLinkSet(ls.N)
	} else {
		snap.eff.Clear()
	}

	for _, l := range sc.links {
		sl := snapLink{u: l.U, v: l.V, want: l.Count, circOff: int32(len(snap.circs))}
		for k := 0; k < l.Count; k++ {
			if !s.provisionSnap(snap, l.U, l.V) {
				break
			}
			sl.built++
		}
		if sl.built < sl.want {
			snap.clean = false
			// A statically infeasible pair (no regenerator-site hop sequence
			// within reach exists at all) builds zero circuits in every order;
			// only a shortfall on a statically feasible pair — or a partial
			// build — signals resource exhaustion and poisons delta trust.
			if sl.built > 0 || s.staticFeasible(l.U, l.V) {
				snap.resShort = true
			}
		}
		if sl.built > 0 {
			snap.eff.Add(l.U, l.V, sl.built)
			snap.effLinks = append(snap.effLinks, topology.Link{U: l.U, V: l.V, Count: sl.built})
		}
		snap.links = append(snap.links, sl)
	}

	// Freeze occupancy.
	if len(snap.fiberUse) != len(s.fiberUse) {
		snap.fiberUse = make([]waveSet, len(s.fiberUse))
	}
	for id, w := range s.fiberUse {
		if w == nil {
			snap.fiberUse[id] = nil
			continue
		}
		if len(snap.fiberUse[id]) != len(w) {
			snap.fiberUse[id] = make(waveSet, len(w))
		}
		copy(snap.fiberUse[id], w)
	}
	snap.regenFree = append(snap.regenFree[:0], s.regenFree...)
	snap.regenAvail = append(snap.regenAvail[:0], s.regenAvail...)
	snap.wRegen = append(snap.wRegen[:0], s.wRegen...)
	snap.nextID = s.nextID

	// Scarcity guard.
	for id, w := range s.fiberUse {
		if w == nil {
			continue
		}
		phi := s.fiberWaves[id]
		if phi-w.popcount() < min(tightWaveMargin, phi) {
			snap.tight = true
			break
		}
	}
}

// provisionSnap provisions one circuit with the same decision sequence as
// provision(), recording segments and regenerator sites into the snapshot's
// flat arrays. An alternate fiber route marks the snapshot tight: alternate
// usage means some primary route had no common free wavelength, which is a
// congestion signal the margins may not see. Reports success.
func (s *State) provisionSnap(snap *Snapshot, src, dst int) bool {
	hops, err := s.findRegenRoute(src, dst)
	if err != nil {
		return false
	}
	c := snapCircuit{segOff: int32(len(snap.segs)), regenOff: int32(len(snap.regs))}
	for i := 0; i+1 < len(hops); i++ {
		u, v := hops[i], hops[i+1]
		route, lambda := s.segmentFeasible(u, v)
		if lambda < 0 {
			return false // unreachable: findRegenRoute verified feasibility
		}
		if len(route.ids) == 0 || s.canReach(u, v) && &route.ids[0] != &s.pairPath[u][v][0] {
			snap.tight = true
		}
		for _, id := range route.ids {
			s.claimWave(id, lambda)
		}
		snap.segs = append(snap.segs, Segment{FiberIDs: route.ids, Wavelength: lambda, LengthKm: route.km})
		c.segLen++
		if i+1 < len(hops)-1 {
			s.setRegen(v, s.regenFree[v]-1)
			snap.regs = append(snap.regs, v)
			c.regenLen++
		}
	}
	s.nextID++
	snap.circs = append(snap.circs, c)
	return true
}

// LoadSnapshot copies the snapshot occupancy into the State, which must
// belong to the same Network. After this the State is positioned exactly as
// if it had just provisioned the snapshot's base topology.
func (s *State) LoadSnapshot(snap *Snapshot) {
	for id, w := range snap.fiberUse {
		if w == nil {
			continue
		}
		copy(s.fiberUse[id], w)
		// The availability index follows in the same pass: free is the
		// capacity mask minus the snapshot occupancy (the invariant
		// claimWave/freeWave maintain incrementally).
		f0, ff := s.fiberFree0[id], s.fiberFree[id]
		for j := range w {
			ff[j] = f0[j] &^ w[j]
		}
	}
	s.waveEpoch++
	copy(s.regenFree, snap.regenFree)
	s.regenAvail.Copy(snap.regenAvail)
	copy(s.wRegen, snap.wRegen)
	s.nextID = snap.nextID
}

// waveOp is one journaled wavelength-bit mutation.
type waveOp struct {
	fiber  int32
	lambda int32
}

// Journal records the mutations of one ProvisionDelta so RevertDelta can
// restore the snapshot occupancy exactly. It also carries the per-delta
// trust verdict and the patch scratch. A Journal belongs to one worker.
type Journal struct {
	claims    []waveOp // bits set by added circuits
	releases  []waveOp // bits cleared by removed circuits
	regenTook []int32  // sites debited by added circuits
	regenGave []int32  // sites credited by removed circuits
	nextID    int

	patch []topology.Link

	// Trust flags (see the file comment for why each forces a fallback).
	contended   bool // an added circuit had no λ choice but one this delta released
	usedAlt     bool // an added circuit needed an alternate fiber route
	shortfall   bool // an added circuit failed, or a removal exceeded the base
	regenScarce bool // the delta touched a regenerator pool near empty (< tightRegenMargin)
	regenPath   bool // informational: an added circuit used regeneration
}

func (j *Journal) reset(nextID int) {
	j.claims = j.claims[:0]
	j.releases = j.releases[:0]
	j.regenTook = j.regenTook[:0]
	j.regenGave = j.regenGave[:0]
	j.patch = j.patch[:0]
	j.nextID = nextID
	j.contended, j.usedAlt, j.shortfall, j.regenScarce, j.regenPath = false, false, false, false, false
}

// releasedHere reports whether this delta released exactly (fiber, λ) —
// the wavelength-contention condition of the fallback rule.
func (j *Journal) releasedHere(fiber, lambda int32) bool {
	for _, op := range j.releases {
		if op.fiber == fiber && op.lambda == lambda {
			return true
		}
	}
	return false
}

// releasedOnRoute reports whether λ was released by this delta on any fiber
// of the route.
func (j *Journal) releasedOnRoute(ids []int, lambda int) bool {
	for _, id := range ids {
		if j.releasedHere(int32(id), int32(lambda)) {
			return true
		}
	}
	return false
}

// lambdaAvoiding returns the lowest wavelength that is free on every fiber
// of the route AND was not released by this delta on any of them, or -1 when
// no such wavelength exists. The λ an added circuit occupies never feeds the
// energy (only effective counts do), so steering around freshly released
// wavelengths is free — it just reserves the contention fallback for the
// genuinely ambiguous case where the released λ is the only option left.
func (s *State) lambdaAvoiding(ids []int, j *Journal) int {
	if len(ids) == 0 {
		return 0 // vacuous route, nothing to avoid
	}
	// Ascending set bits of the free-word intersection are exactly the
	// common free wavelengths in ascending order (see routeLambda), so the
	// released-λ filter walks only candidates instead of the whole range.
	first := s.fiberFree[ids[0]]
	nw := len(first)
	rest := ids[1:]
	for _, id := range rest {
		if l := len(s.fiberFree[id]); l < nw {
			nw = l
		}
	}
	for w := 0; w < nw; w++ {
		acc := first[w]
		for _, id := range rest {
			acc &= s.fiberFree[id][w]
		}
		for ; acc != 0; acc &= acc - 1 {
			l := w<<6 + bits.TrailingZeros64(acc)
			if !j.releasedOnRoute(ids, l) {
				return l
			}
		}
	}
	return -1
}

// ProvisionDelta evaluates a candidate topology that differs from the
// snapshot base by the given net link changes: removed[i].Count circuits
// torn down per removed pair, added[i].Count provisioned per added pair (a
// pair must not appear in both). The State must hold the snapshot occupancy
// (LoadSnapshot or a fresh Build). It returns the (U, V)-sorted patch of
// NEW effective counts for every touched pair — the exact shape
// alloc.(*Allocator).ThroughputPatched consumes — plus whether the result
// is trusted to be bit-identical to cold provisioning of the candidate.
// Untrusted results must be recomputed on the cold path; either way the
// caller must RevertDelta afterwards to restore the snapshot occupancy.
func (s *State) ProvisionDelta(snap *Snapshot, removed, added []topology.Link, j *Journal) ([]topology.Link, bool) {
	j.reset(s.nextID)
	trusted := snap.TrustedBase()

	// Phase 1: release the last Count circuits of every removed link.
	for _, r := range removed {
		sl := snap.findLink(r.U, r.V)
		rel := r.Count
		if sl == nil || sl.built < rel {
			if sl == nil {
				j.shortfall = true
				j.patch = append(j.patch, topology.Link{U: r.U, V: r.V, Count: 0})
				continue
			}
			// Removing circuits a statically infeasible pair never built is
			// order-independent: the candidate's remaining count builds zero
			// on the cold path too. Only a statically feasible pair that fell
			// short signals resource pressure.
			if s.staticFeasible(r.U, r.V) {
				j.shortfall = true
			}
			rel = sl.built
		}
		for k := sl.built - rel; k < sl.built; k++ {
			c := &snap.circs[int(sl.circOff)+k]
			for _, seg := range snap.segs[c.segOff : c.segOff+c.segLen] {
				for _, fid := range seg.FiberIDs {
					s.freeWave(fid, seg.Wavelength)
					j.releases = append(j.releases, waveOp{fiber: int32(fid), lambda: int32(seg.Wavelength)})
				}
			}
			for _, site := range snap.regs[c.regenOff : c.regenOff+c.regenLen] {
				// Crediting a nearly-dry pool means the base leaned on this
				// site hard; cold provisioning (which never drained it this
				// way) routes through the steepest part of the 1/free
				// weighting and may cascade into a different failure set.
				if s.regenFree[site] < tightRegenMargin {
					j.regenScarce = true
				}
				s.setRegen(site, s.regenFree[site]+1)
				j.regenGave = append(j.regenGave, int32(site))
			}
		}
		j.patch = append(j.patch, topology.Link{U: r.U, V: r.V, Count: sl.built - rel})
	}

	// Phase 2: provision the added circuits against the patched occupancy.
	for _, a := range added {
		base := 0
		if sl := snap.findLink(a.U, a.V); sl != nil {
			base = sl.built
		}
		built := 0
		for k := 0; k < a.Count; k++ {
			if !s.provisionDelta(a.U, a.V, j) {
				// A statically infeasible addition fails identically on the
				// cold path (zero circuits either way); a feasible pair that
				// fails here hit a resource wall and the delta cannot be
				// trusted to match cold ordering.
				if s.staticFeasible(a.U, a.V) {
					j.shortfall = true
				}
				break
			}
			built++
		}
		j.patch = append(j.patch, topology.Link{U: a.U, V: a.V, Count: base + built})
	}

	// The patch came out in caller list order; ThroughputPatched and
	// MergePatch need (U, V)-sorted.
	for i := 1; i < len(j.patch); i++ {
		for k := i; k > 0 && (j.patch[k].U < j.patch[k-1].U ||
			(j.patch[k].U == j.patch[k-1].U && j.patch[k].V < j.patch[k-1].V)); k-- {
			j.patch[k], j.patch[k-1] = j.patch[k-1], j.patch[k]
		}
	}

	trusted = trusted && !j.shortfall && !j.contended && !j.usedAlt && !j.regenScarce
	return j.patch, trusted
}

// provisionDelta provisions one circuit like provision(), journaling every
// mutation and flagging the conditions that invalidate trust. Reports
// success; on failure the partial claims remain journaled (RevertDelta
// cleans them up with everything else).
func (s *State) provisionDelta(src, dst int, j *Journal) bool {
	hops, err := s.findRegenRoute(src, dst)
	if err != nil {
		return false
	}
	if len(hops) > 2 {
		j.regenPath = true
	}
	for i := 0; i+1 < len(hops); i++ {
		u, v := hops[i], hops[i+1]
		route, lambda := s.segmentFeasible(u, v)
		if lambda < 0 {
			return false
		}
		if len(route.ids) == 0 || s.canReach(u, v) && &route.ids[0] != &s.pairPath[u][v][0] {
			j.usedAlt = true
		}
		// First-fit lands exactly on the λ the removed circuits just freed;
		// steer to the next common free wavelength instead, and flag
		// contention only when the released λ is the last one standing.
		if j.releasedOnRoute(route.ids, lambda) {
			if l := s.lambdaAvoiding(route.ids, j); l >= 0 {
				lambda = l
			} else {
				j.contended = true
			}
		}
		for _, id := range route.ids {
			s.claimWave(id, lambda)
			j.claims = append(j.claims, waveOp{fiber: int32(id), lambda: int32(lambda)})
		}
		if i+1 < len(hops)-1 {
			s.setRegen(v, s.regenFree[v]-1)
			if s.regenFree[v] < tightRegenMargin {
				j.regenScarce = true
			}
			j.regenTook = append(j.regenTook, int32(v))
		}
	}
	s.nextID++
	return true
}

// RevertDelta undoes a ProvisionDelta, restoring the State bit-identically
// to the snapshot occupancy it started from. Claims are undone before
// releases: a claim may have re-taken a wavelength this delta released (the
// contention case), and clearing claims first leaves the release-undo free
// to restore the original set bit.
func (s *State) RevertDelta(j *Journal) {
	for _, op := range j.claims {
		s.freeWave(int(op.fiber), int(op.lambda))
	}
	for _, op := range j.releases {
		s.claimWave(int(op.fiber), int(op.lambda))
	}
	for _, site := range j.regenTook {
		s.setRegen(int(site), s.regenFree[site]+1)
	}
	for _, site := range j.regenGave {
		s.setRegen(int(site), s.regenFree[site]-1)
	}
	s.nextID = j.nextID
}
