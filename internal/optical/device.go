package optical

import "fmt"

// This file models the ROADM datapath of the paper's hardware prototype
// (§4.1, Figure 6): MUX → splitter → fiber → WSS → EDFA → DEMUX. The only
// behaviour that matters for correctness is the optical power budget: the
// end-to-end loss must not exceed the transceiver budget after amplifier
// gain, otherwise a provisioned circuit would not actually carry packets.
// internal/emu uses this to sanity-check emulated circuits.

// Typical per-element losses in dB from the paper.
const (
	LossMuxDB      = 5.0
	LossSplitterDB = 10.5
	LossFiberDB    = 0.5
	LossWSSDB      = 7.0
	LossDemuxDB    = 5.0

	// TransceiverBudgetDB is the optical power budget of the short-reach
	// transceivers (~16 dB): the maximum loss a signal can survive.
	TransceiverBudgetDB = 16.0

	// DefaultEDFAGainDB is the fixed-gain setting compensating the loss.
	DefaultEDFAGainDB = 18.0
)

// ROADMPath describes one traversal of the emulated ROADM datapath.
type ROADMPath struct {
	EDFAGainDB float64
}

// LossDB returns the total element loss of the path before amplification.
func (r ROADMPath) LossDB() float64 {
	return LossMuxDB + LossSplitterDB + LossFiberDB + LossWSSDB + LossDemuxDB
}

// NetLossDB returns loss after EDFA gain.
func (r ROADMPath) NetLossDB() float64 {
	return r.LossDB() - r.EDFAGainDB
}

// Validate reports an error if the net loss exceeds the transceiver power
// budget, i.e. the receiving transceiver could not recover the signal.
func (r ROADMPath) Validate() error {
	if n := r.NetLossDB(); n > TransceiverBudgetDB {
		return fmt.Errorf("optical: net loss %.1f dB exceeds transceiver budget %.1f dB", n, TransceiverBudgetDB)
	}
	return nil
}
