package optical

import (
	"testing"

	"owan/internal/topology"
)

// tinyTriangle builds a 3-site triangle with very scarce wavelengths on
// the direct A-B fiber so circuit provisioning must fall back to the
// two-hop alternate fiber route.
func tinyTriangle() *topology.Network {
	n := &topology.Network{
		Name:      "tri",
		ThetaGbps: 10,
		ReachKm:   5000,
		Sites: []topology.Site{
			{ID: 0, Name: "A", RouterPorts: 8, HasRouter: true},
			{ID: 1, Name: "B", RouterPorts: 8, HasRouter: true},
			{ID: 2, Name: "C", RouterPorts: 8, HasRouter: true},
		},
		Fibers: []topology.Fiber{
			{ID: 0, A: 0, B: 1, LengthKm: 100, Wavelengths: 1}, // scarce direct
			{ID: 1, A: 0, B: 2, LengthKm: 100, Wavelengths: 8},
			{ID: 2, A: 1, B: 2, LengthKm: 100, Wavelengths: 8},
		},
	}
	return n
}

func TestAlternateFiberRouteUsed(t *testing.T) {
	net := tinyTriangle()
	s := NewState(net)
	// First circuit takes the only direct wavelength.
	c1, err := s.Provision(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Segments[0].FiberIDs) != 1 || c1.Segments[0].FiberIDs[0] != 0 {
		t.Fatalf("first circuit should use the direct fiber, got %v", c1.Segments[0].FiberIDs)
	}
	// Second circuit must detour via C on fibers 1+2.
	c2, err := s.Provision(0, 1)
	if err != nil {
		t.Fatalf("second circuit should use the alternate fiber route: %v", err)
	}
	ids := c2.Segments[0].FiberIDs
	if len(ids) != 2 {
		t.Fatalf("alternate route fibers = %v, want the 2-fiber detour", ids)
	}
	if c2.Segments[0].LengthKm != 200 {
		t.Errorf("alternate length = %v, want 200", c2.Segments[0].LengthKm)
	}
	// Releases restore both routes.
	if err := s.Release(c1.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(c2.ID); err != nil {
		t.Fatal(err)
	}
	for f := range net.Fibers {
		if s.WavelengthsUsed(f) != 0 {
			t.Errorf("fiber %d not clean after release", f)
		}
	}
}

func TestAlternateRespectsReach(t *testing.T) {
	// Alternate route longer than reach must NOT be used.
	net := tinyTriangle()
	net.ReachKm = 150 // direct (100) ok; detour (200) too long
	s := NewState(net)
	if _, err := s.Provision(0, 1); err != nil {
		t.Fatal(err)
	}
	// No wavelengths left on the direct fiber, and the detour exceeds
	// reach with no regenerators anywhere: provisioning must fail.
	if _, err := s.Provision(0, 1); err == nil {
		t.Error("out-of-reach alternate should not be used")
	}
}

func TestAlternateWithRegenerator(t *testing.T) {
	// With a regenerator at C, the out-of-reach detour becomes feasible as
	// two regenerated segments A-C, C-B.
	net := tinyTriangle()
	net.ReachKm = 150
	net.Sites[2].Regenerators = 2
	s := NewState(net)
	if _, err := s.Provision(0, 1); err != nil {
		t.Fatal(err)
	}
	c2, err := s.Provision(0, 1)
	if err != nil {
		t.Fatalf("regenerated detour should work: %v", err)
	}
	if len(c2.RegenSites) != 1 || c2.RegenSites[0] != 2 {
		t.Errorf("regen sites = %v, want [2]", c2.RegenSites)
	}
	if len(c2.Segments) != 2 {
		t.Errorf("segments = %d, want 2 (regenerated at C)", len(c2.Segments))
	}
}

// TestFiberIDsSurviveRemoval is a regression test: optical state must key
// fibers by ID, not slice position, because failure handling removes
// fibers from the middle of the slice while the survivors keep their ids.
func TestFiberIDsSurviveRemoval(t *testing.T) {
	net := topology.Internet2(15)
	// Remove fiber 3 (LOSA-HOUS): ids 4..11 now live at earlier indices.
	clone := *net
	clone.Fibers = append(append([]topology.Fiber(nil), net.Fibers[:3]...), net.Fibers[4:]...)
	s := NewState(&clone)
	// Provision across the network; before the fix this panicked with an
	// index out of range on fiber id 11. Some distant pairs may now be
	// unreachable (regenerator coverage was placed for the full fiber
	// map); errors are fine, panics are not.
	provisioned := 0
	for u := 0; u < clone.NumSites(); u++ {
		for v := u + 1; v < clone.NumSites(); v++ {
			if _, err := s.Provision(u, v); err == nil {
				provisioned++
			}
		}
	}
	if provisioned == 0 {
		t.Fatal("nothing provisioned on the surviving fibers")
	}
	// Wavelength accounting still keyed correctly: the removed fiber id
	// reports zero usage.
	if s.WavelengthsUsed(3) != 0 {
		t.Error("removed fiber shows usage")
	}
	used := 0
	for _, f := range clone.Fibers {
		used += s.WavelengthsUsed(f.ID)
	}
	if used == 0 {
		t.Error("no wavelength usage recorded on surviving fibers")
	}
}
