// Package optical models the optical layer of a software-defined WAN: the
// per-fiber wavelength inventory, per-site regenerator pools, and the
// provisioning of optical circuits under the three WAN-specific constraints
// the paper identifies (ROADM port budgets, optical reach with regenerators,
// and wavelength capacity/distinctness per fiber).
//
// Circuit provisioning follows Algorithm 3 of the paper: build a
// "regenerator graph" whose nodes are the circuit endpoints plus every site
// with spare regenerators and whose edges connect sites whose shortest fiber
// path is within optical reach; weight nodes by the inverse of their
// remaining regenerators (to balance consumption); transform node weights to
// edge weights in a directed graph; and pick feasible shortest paths,
// checking wavelength availability hop by hop.
//
// Because the annealing search provisions thousands of candidate topologies
// per slot, the mutable occupancy is kept flat (wavelength bitsets and
// regenerator counts in dense slices indexed by fiber/site id), the static
// reach adjacency is precomputed once in NewState, and every per-circuit
// working buffer (regenerator transit graph, Dijkstra scratch, wavelength
// scan sets) lives in a per-State scratch area that is reused across calls.
package optical

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"owan/internal/bitset"
	"owan/internal/graph"
	"owan/internal/topology"
)

// Static errors for the provisioning hot path: annealing probes millions of
// infeasible candidates, and a fmt.Errorf per failure was a measurable slice
// of the tempered benchmarks' allocations. The pair is recoverable from the
// call site; no caller dispatches on the message.
var (
	errSegmentInfeasible = errors.New("optical: segment became infeasible")
	errNoRegenRoute      = errors.New("optical: no regenerator route within reach")
	errExhausted         = errors.New("optical: no buildable circuit (wavelengths exhausted)")
)

// waveSet is a bitset over wavelength indices of a fiber.
type waveSet []uint64

func newWaveSet(n int) waveSet { return make(waveSet, (n+63)/64) }

func (w waveSet) has(i int) bool { return w[i/64]&(1<<(i%64)) != 0 }
func (w waveSet) set(i int)      { w[i/64] |= 1 << (i % 64) }
func (w waveSet) clear(i int)    { w[i/64] &^= 1 << (i % 64) }

// popcount returns the number of set bits.
func (w waveSet) popcount() int {
	c := 0
	for _, x := range w {
		c += bits.OnesCount64(x)
	}
	return c
}

// firstCommonFree returns the lowest wavelength index free in every given
// fiber set, or -1. It is the bit-by-bit reference the wavelength-
// availability index (State.fiberFree) is differentially tested against;
// the hot paths answer from the free-word summaries instead.
func firstCommonFree(sets []waveSet, phi int) int {
	for i := 0; i < phi; i++ {
		free := true
		for _, s := range sets {
			if s.has(i) {
				free = false
				break
			}
		}
		if free {
			return i
		}
	}
	return -1
}

// Segment is one regeneration-free span of a circuit: a fiber path and the
// wavelength it occupies on every fiber of that path.
type Segment struct {
	// FiberIDs aliases the State's immutable precomputed fiber-route
	// tables; callers must treat it as read-only.
	FiberIDs   []int
	Wavelength int
	LengthKm   float64
}

// Circuit is a provisioned optical circuit realizing one network-layer link.
type Circuit struct {
	ID         int
	Src, Dst   int
	Segments   []Segment
	RegenSites []int // intermediate sites where the signal is regenerated
}

// LengthKm returns the total fiber length of the circuit.
func (c *Circuit) LengthKm() float64 {
	t := 0.0
	for _, s := range c.Segments {
		t += s.LengthKm
	}
	return t
}

// State is the mutable occupancy of the optical layer for one Network.
type State struct {
	net *topology.Network
	// fiberUse and fiberWaves are indexed by fiber ID (ids survive
	// removals, so the slices are sized to the maximum id; removed ids
	// hold a nil set and zero wavelengths).
	fiberUse   []waveSet
	fiberWaves []int
	// fiberFree is the wavelength-availability index: bit λ of fiberFree[f]
	// is set iff λ < fiberWaves[f] and fiberUse[f] does not hold λ — the
	// free wavelengths of the fiber as ready-to-intersect words. fiberFree0
	// is its empty-network image (the per-fiber capacity mask), immutable
	// and shared by clones; free = fiberFree0 &^ fiberUse always. Both are
	// maintained at the single wavelength mutation points claimWave/freeWave
	// (plus the bulk images in Reset/LoadSnapshot), mirroring how setRegen
	// maintains regenAvail/wRegen, so routeLambda intersects a handful of
	// words instead of probing fiberUse bit by bit. waveEpoch counts
	// wavelength-bit mutations; the per-pair segment cache in provScratch
	// validates against it (an unchanged epoch means no recompute can
	// disagree with the cached answer).
	fiberFree  []waveSet
	fiberFree0 []waveSet
	waveEpoch  uint64
	regenFree  []int // remaining regenerators per site
	// regenAvail and wRegen are the persistent compacted form of the
	// regenerator-transit-graph vertex set that findRegenRoute's mask
	// Dijkstras consume: bit v of regenAvail is set iff regenFree[v] > 0,
	// and wRegen[v] caches that site's node weight (1/regenFree[v] + 1e-6,
	// or 1 under the unit-weights ablation; garbage where the bit is clear).
	// Both are maintained incrementally at every pool mutation (setRegen and
	// the bulk images below), so a route query no longer rebuilds the vertex
	// set and weights with an O(n) scan — the same persistent-frontier idea
	// as the allocator's resumable rows in internal/alloc.
	// regenAvail0/wRegen0 are the Reset images, precomputed from the static
	// pools so Reset restores the caches with two copies.
	regenAvail  bitset.Set
	wRegen      []float64
	regenAvail0 bitset.Set
	wRegen0     []float64
	// directOnly is a provisioning audit flag: true while every
	// findRegenRoute call since the last Reset was answered by the
	// direct-segment fast path on the pair's PRIMARY fiber route (a single
	// unregenerated span, no alternate route, no regenerator graph). Such a
	// run consulted nothing but the primary route tables and the wavelength
	// occupancy those same routes produced — the property the provision-cache
	// migration on fiber failure needs (see SameDirectRouting).
	directOnly bool
	// segmentOnly is the weaker audit tier: true while every findRegenRoute
	// call since the last Reset was answered by the direct-segment fast path
	// — on the pair's PRIMARY route or one of its precomputed ALTERNATES —
	// without ever consulting the regenerator graph. Such a run's decisions
	// depend only on the pair route tables and the wavelength occupancy those
	// routes produced, so it stays replayable across a fiber removal whenever
	// both tables survive intact (see SameSegmentRouting). directOnly implies
	// segmentOnly.
	segmentOnly bool
	circuits    map[int]*Circuit
	nextID      int
	// unitRegenWeights disables the inverse-remaining regenerator
	// balancing (ablation knob): every regenerator site weighs 1.
	unitRegenWeights bool
	fiberGraph       *graph.Graph
	// pairDist[u][v] is the shortest fiber distance; pairPath[u][v] the
	// corresponding fiber-ID sequence; pairAlts[u][v] up to kFiberPaths-1
	// in-reach alternative fiber routes tried when the primary has no free
	// wavelength. Precomputed once: the fiber layer is static.
	pairDist [][]float64
	pairPath [][][]int
	pairAlts [][][]fiberRoute
	// inReach[u*ns+v] caches pairDist[u][v] <= ReachKm && pairPath[u][v]
	// != nil: whether a single unregenerated segment u->v can exist. This
	// is the static reach adjacency of the regenerator transit graph,
	// probed O(n²) times per findRegenRoute.
	inReach []bool
	// regenReach holds one maskW-word bitset row per source site: bit v of
	// row u reports whether a circuit u->v can be provisioned on an EMPTY
	// network — some hop sequence exists in which every hop is within
	// optical reach and every interior site has a nonzero static regenerator
	// pool. A pair failing this test fails in every provisioning order and
	// under any occupancy, which the delta trust gate exploits: a statically
	// infeasible circuit is an order-independent shortfall, not a resource
	// signal.
	regenReach bitset.Set
	// reachMask[u] packs row u of inReach into one word when the network has
	// at most 64 sites (nil otherwise): the transit-graph adjacency as
	// bitmasks, consumed by graph.MaskShortestNodeWeighted so the common
	// regenerator-route query never materializes the transit graph.
	// reachMaskW is its multi-word twin for larger networks (maskW words per
	// row, consumed by MaskShortestNodeWeightedW); exactly one of the two is
	// non-nil.
	reachMask  []uint64
	reachMaskW bitset.Set
	maskW      int // words per bitset row (bitset.Words(ns))
	// savedMask/savedMaskW park the reach masks while SetScalarFallback(true)
	// is in effect, so the fast paths can be restored afterwards.
	savedMask  []uint64
	savedMaskW bitset.Set
	// scratch holds the reusable per-circuit working buffers. It is owned
	// by this State alone: Clone gives each clone a fresh lazy scratch, so
	// clones stay safe to use concurrently.
	scratch *provScratch
}

// provScratch is the per-State scratch area for provisioning. Everything
// here is working memory whose contents are dead between exported calls;
// buffers grow monotonically and are reused.
type provScratch struct {
	nodes     []int           // regenerator-graph node list
	nodeMaskW bitset.Set      // multi-word node mask (>64-site mask Dijkstra)
	need      []int           // per-site regenerator need (routeBuildable)
	hops      []int           // hopsOf result buffer
	tg        *graph.Graph    // regenerator transit graph, Reset per route
	sp        graph.Scratch   // Dijkstra/Yen scratch for tg
	links     []topology.Link // AppendLinks buffer (ProvisionEffective)
	eff       *topology.LinkSet
	effLinks  []topology.Link // effective enumeration (ProvisionEffectiveEnum)
	// Per-ordered-pair segment-feasibility cache over the precomputed
	// primary/alternate fiber routes: segStamp[u*ns+v] holds the waveEpoch
	// at which segAns[u*ns+v] was computed, and the answer is valid exactly
	// while the epoch is unchanged (no wavelength bit flipped anywhere, so a
	// recompute would gather the same free words). segAns packs the route
	// choice and wavelength as (routeIdx+2)<<16 | λ, routeIdx -1 = primary,
	// k >= 0 = alternate k, -2 = infeasible (λ field 0). Allocated lazily on
	// first segmentFeasible call; scratch-resident, so clones start cold.
	segStamp []uint64
	segAns   []int32
}

// fiberRoute is one candidate fiber realization of a segment.
type fiberRoute struct {
	ids []int
	km  float64
}

// kFiberPaths is how many fiber routes per site pair a segment may try.
const kFiberPaths = 3

// routeTables is the immutable fiber-layer precomputation of one network:
// all-pairs shortest fiber distances, the primary and alternate fiber routes
// per site pair, and the static reach adjacency. Everything here is a pure
// function of the Network, read-only after construction, and shared by every
// State built on that network.
type routeTables struct {
	fiberGraph *graph.Graph
	pairDist   [][]float64
	pairPath   [][][]int
	pairAlts   [][][]fiberRoute
	inReach    []bool
	regenReach bitset.Set
	reachMask  []uint64
	reachMaskW bitset.Set
	maskW      int
}

// The route-table cache: building the tables runs an all-pairs k-shortest-
// path sweep, which dominates NewState, yet callers routinely rebuild states
// on the same network (the controller re-provisions every slot; experiments
// evaluate many algorithms per topology cell). A small LRU keyed by Network
// identity makes every rebuild after the first free. The cache is bounded so
// transient networks (one per figure cell) cannot accumulate; identical
// results from racing builders make the race benign, so the lock is dropped
// during the expensive build.
const routeCacheSize = 8

var (
	routeMu    sync.Mutex
	routeCache []*struct {
		net *topology.Network
		rt  *routeTables
	}
)

func lookupRouteTables(net *topology.Network) *routeTables {
	routeMu.Lock()
	for i, e := range routeCache {
		if e.net == net {
			copy(routeCache[1:i+1], routeCache[:i])
			routeCache[0] = e
			routeMu.Unlock()
			return e.rt
		}
	}
	routeMu.Unlock()
	rt := buildRouteTables(net)
	routeMu.Lock()
	if len(routeCache) == routeCacheSize {
		routeCache = routeCache[:routeCacheSize-1]
	}
	routeCache = append([]*struct {
		net *topology.Network
		rt  *routeTables
	}{{net, rt}}, routeCache...)
	routeMu.Unlock()
	return rt
}

func buildRouteTables(net *topology.Network) *routeTables {
	ns := net.NumSites()
	rt := &routeTables{
		fiberGraph: net.FiberGraph(),
		pairDist:   make([][]float64, ns),
		pairPath:   make([][][]int, ns),
		pairAlts:   make([][][]fiberRoute, ns),
		inReach:    make([]bool, ns*ns),
	}
	var sc graph.Scratch
	for u := 0; u < ns; u++ {
		rt.pairDist[u] = rt.fiberGraph.ShortestDistances(u)
		rt.pairPath[u] = make([][]int, ns)
		rt.pairAlts[u] = make([][]fiberRoute, ns)
		for v := 0; v < ns; v++ {
			if u == v || math.IsInf(rt.pairDist[u][v], 1) {
				continue
			}
			paths := rt.fiberGraph.KShortestPathsScratch(&sc, u, v, kFiberPaths)
			for pi, p := range paths {
				ids := make([]int, len(p.Edges))
				for i, e := range p.Edges {
					ids[i] = e.ID
				}
				if pi == 0 {
					rt.pairPath[u][v] = ids
				} else if p.Weight <= net.ReachKm {
					// Alternates are only useful if they themselves stay
					// within optical reach.
					rt.pairAlts[u][v] = append(rt.pairAlts[u][v], fiberRoute{ids: ids, km: p.Weight})
				}
			}
			rt.inReach[u*ns+v] = rt.pairDist[u][v] <= net.ReachKm && rt.pairPath[u][v] != nil
		}
	}
	rt.maskW = bitset.Words(ns)
	if ns <= 64 {
		rt.reachMask = make([]uint64, ns)
		for u := 0; u < ns; u++ {
			for v := 0; v < ns; v++ {
				if rt.inReach[u*ns+v] {
					rt.reachMask[u] |= 1 << uint(v)
				}
			}
		}
	} else {
		rt.reachMaskW = make(bitset.Set, ns*rt.maskW)
		for u := 0; u < ns; u++ {
			row := rt.reachMaskW[u*rt.maskW : (u+1)*rt.maskW]
			for v := 0; v < ns; v++ {
				if rt.inReach[u*ns+v] {
					row.Set(v)
				}
			}
		}
	}
	// Static regenerator reachability: one BFS per source over the reach
	// adjacency, expanding only through sites whose static regenerator pool
	// is nonzero (the source itself needs no regenerator to transmit).
	rt.regenReach = make(bitset.Set, ns*rt.maskW)
	queue := make([]int, 0, ns)
	seen := make([]bool, ns)
	for u := 0; u < ns; u++ {
		row := rt.regenReach[u*rt.maskW : (u+1)*rt.maskW]
		clear(seen)
		seen[u] = true
		queue = append(queue[:0], u)
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for v := 0; v < ns; v++ {
				if seen[v] || !rt.inReach[x*ns+v] {
					continue
				}
				seen[v] = true
				row.Set(v)
				if net.Sites[v].Regenerators > 0 {
					queue = append(queue, v)
				}
			}
		}
	}
	return rt
}

// NewState builds an empty optical state for the network.
func NewState(net *topology.Network) *State {
	ns := net.NumSites()
	maxID := 0
	for _, f := range net.Fibers {
		if f.ID > maxID {
			maxID = f.ID
		}
	}
	rt := lookupRouteTables(net)
	s := &State{
		net:        net,
		fiberUse:   make([]waveSet, maxID+1),
		fiberWaves: make([]int, maxID+1),
		regenFree:  make([]int, ns),
		circuits:   make(map[int]*Circuit),
		fiberGraph: rt.fiberGraph,
		pairDist:   rt.pairDist,
		pairPath:   rt.pairPath,
		pairAlts:   rt.pairAlts,
		inReach:    rt.inReach,
		regenReach: rt.regenReach,
		reachMask:  rt.reachMask,
		reachMaskW: rt.reachMaskW,
		maskW:      rt.maskW,
	}
	s.fiberFree = make([]waveSet, maxID+1)
	s.fiberFree0 = make([]waveSet, maxID+1)
	for _, f := range net.Fibers {
		s.fiberUse[f.ID] = newWaveSet(f.Wavelengths)
		s.fiberWaves[f.ID] = f.Wavelengths
		mask := newWaveSet(f.Wavelengths)
		for l := 0; l < f.Wavelengths; l++ {
			mask.set(l)
		}
		s.fiberFree0[f.ID] = mask
		s.fiberFree[f.ID] = append(waveSet(nil), mask...)
	}
	s.waveEpoch = 1 // nonzero so zero-valued cache stamps never validate
	for i, site := range net.Sites {
		s.regenFree[i] = site.Regenerators
	}
	s.regenAvail = bitset.New(ns)
	s.wRegen = make([]float64, ns)
	s.regenAvail0 = bitset.New(ns)
	s.wRegen0 = make([]float64, ns)
	s.rebuildRegenCaches()
	s.directOnly = true
	s.segmentOnly = true
	return s
}

// claimWave is the single incremental mutation point for occupying a
// wavelength: it keeps the occupancy set and the free-word index in sync and
// advances the availability epoch that invalidates the per-pair segment
// cache. Every wavelength claim in the package — cold provisioning, snapshot
// builds, delta applies and reverts — funnels through here or freeWave, so
// fiberFree == fiberFree0 &^ fiberUse is a package invariant (asserted by
// the randomized index property test).
func (s *State) claimWave(f, l int) {
	s.fiberUse[f].set(l)
	s.fiberFree[f].clear(l)
	s.waveEpoch++
}

// freeWave is claimWave's inverse: the single mutation point for returning a
// wavelength to the pool.
func (s *State) freeWave(f, l int) {
	s.fiberUse[f].clear(l)
	s.fiberFree[f].set(l)
	s.waveEpoch++
}

// setRegen is the single incremental mutation point for a site's regenerator
// pool: it keeps regenFree, the availability mask, and the weight cache in
// sync. Bulk pool updates (Reset, LoadSnapshot) restore the caches from
// precomputed or snapshotted images instead.
func (s *State) setRegen(v, n int) {
	s.regenFree[v] = n
	if n > 0 {
		s.regenAvail.Set(v)
		if s.unitRegenWeights {
			s.wRegen[v] = 1
		} else {
			s.wRegen[v] = 1/float64(n) + 1e-6
		}
	} else {
		s.regenAvail.Clear(v)
	}
}

// rebuildRegenCaches recomputes the live availability mask and weight cache
// from the current pools, and the Reset images from the static pools. Called
// from NewState and when the weight formula changes (SetUnitRegenWeights);
// everything else maintains the caches incrementally.
func (s *State) rebuildRegenCaches() {
	s.regenAvail.Zero()
	for v, n := range s.regenFree {
		if n > 0 {
			s.regenAvail.Set(v)
			if s.unitRegenWeights {
				s.wRegen[v] = 1
			} else {
				s.wRegen[v] = 1/float64(n) + 1e-6
			}
		}
	}
	s.regenAvail0.Zero()
	for v, site := range s.net.Sites {
		if site.Regenerators > 0 {
			s.regenAvail0.Set(v)
			if s.unitRegenWeights {
				s.wRegen0[v] = 1
			} else {
				s.wRegen0[v] = 1/float64(site.Regenerators) + 1e-6
			}
		}
	}
}

// scratchBuf returns the State's scratch area, allocating it on first use
// (clones start without one, so cloning stays cheap).
func (s *State) scratchBuf() *provScratch {
	if s.scratch == nil {
		s.scratch = &provScratch{
			need: make([]int, s.net.NumSites()),
			tg:   graph.New(0),
		}
	}
	return s.scratch
}

// Clone returns an independent copy of the optical state: mutable occupancy
// (wavelength bitsets, regenerator pools, live circuits) is deep-copied,
// while the immutable precomputed fiber-layer route tables are shared with
// the receiver and the per-State scratch is left behind (each clone grows
// its own lazily). A clone may provision and release circuits concurrently
// with other clones, which is what the parallel annealing engine's worker
// pool in internal/core relies on: each worker owns a clone and evaluates
// candidate topologies without touching shared mutable state.
func (s *State) Clone() *State {
	c := &State{
		net:              s.net,
		fiberUse:         make([]waveSet, len(s.fiberUse)),
		fiberFree:        make([]waveSet, len(s.fiberFree)),
		fiberFree0:       s.fiberFree0,
		waveEpoch:        s.waveEpoch,
		fiberWaves:       s.fiberWaves,
		regenFree:        append([]int(nil), s.regenFree...),
		regenAvail:       append(bitset.Set(nil), s.regenAvail...),
		wRegen:           append([]float64(nil), s.wRegen...),
		regenAvail0:      append(bitset.Set(nil), s.regenAvail0...),
		wRegen0:          append([]float64(nil), s.wRegen0...),
		directOnly:       s.directOnly,
		segmentOnly:      s.segmentOnly,
		circuits:         make(map[int]*Circuit, len(s.circuits)),
		nextID:           s.nextID,
		unitRegenWeights: s.unitRegenWeights,
		fiberGraph:       s.fiberGraph,
		pairDist:         s.pairDist,
		pairPath:         s.pairPath,
		pairAlts:         s.pairAlts,
		inReach:          s.inReach,
		regenReach:       s.regenReach,
		reachMask:        s.reachMask,
		reachMaskW:       s.reachMaskW,
		maskW:            s.maskW,
		savedMask:        s.savedMask,
		savedMaskW:       s.savedMaskW,
	}
	for id, w := range s.fiberUse {
		if w != nil {
			c.fiberUse[id] = append(waveSet(nil), w...)
			c.fiberFree[id] = append(waveSet(nil), s.fiberFree[id]...)
		}
	}
	for id, circ := range s.circuits {
		c.circuits[id] = circ // circuits are immutable once provisioned
	}
	return c
}

// Reset releases every circuit and restores all regenerator pools.
func (s *State) Reset() {
	for id := range s.fiberUse {
		for j := range s.fiberUse[id] {
			s.fiberUse[id][j] = 0
		}
		copy(s.fiberFree[id], s.fiberFree0[id])
	}
	s.waveEpoch++
	for i, site := range s.net.Sites {
		s.regenFree[i] = site.Regenerators
	}
	s.regenAvail.Copy(s.regenAvail0)
	copy(s.wRegen, s.wRegen0)
	s.directOnly = true
	s.segmentOnly = true
	clear(s.circuits)
}

// DirectOnly reports whether every route query since the last Reset was
// answered by the direct-segment fast path on a primary fiber route.
// Consumers use it to mark provision-cache entries whose provisioning
// depended only on the primary per-pair route tables, making them eligible
// for migration across a fiber removal.
func (s *State) DirectOnly() bool { return s.directOnly }

// SegmentOnly reports whether every route query since the last Reset was
// answered by the direct-segment fast path — on a primary route or one of
// its precomputed alternates — without consulting the regenerator graph.
// The weaker of the two audit tiers (DirectOnly implies SegmentOnly);
// entries in this class migrate across a fiber removal when the alternate-
// aware SameSegmentRouting holds for every link.
func (s *State) SegmentOnly() bool { return s.segmentOnly }

// RegenFree returns the number of spare regenerators at site v.
func (s *State) RegenFree(v int) int { return s.regenFree[v] }

// WavelengthsUsed returns the number of wavelengths in use on fiber f.
func (s *State) WavelengthsUsed(f int) int {
	if f < 0 || f >= len(s.fiberUse) {
		return 0
	}
	return s.fiberUse[f].popcount()
}

// Circuits returns the number of live circuits.
func (s *State) Circuits() int { return len(s.circuits) }

// Circuit returns a live circuit by id.
func (s *State) Circuit(id int) (*Circuit, bool) {
	c, ok := s.circuits[id]
	return c, ok
}

// FiberDistKm returns the shortest fiber distance between two sites.
func (s *State) FiberDistKm(u, v int) float64 { return s.pairDist[u][v] }

// SetUnitRegenWeights toggles the regenerator-balancing ablation: when
// true, regenerator-graph nodes weigh 1 instead of the inverse of their
// remaining pool.
func (s *State) SetUnitRegenWeights(on bool) {
	s.unitRegenWeights = on
	s.rebuildRegenCaches() // the cached node weights embed the formula
}

// SetScalarFallback disables (or restores) the bitmask regenerator-routing
// fast paths, forcing every route query onto the materialized transit-graph
// path. Results are bit-identical either way — like the allocator knob of the
// same name, this exists so benchmarks can measure the masks' speedup and
// differential tests can cross-check the two implementations.
func (s *State) SetScalarFallback(on bool) {
	if on {
		if s.reachMask != nil || s.reachMaskW != nil {
			s.savedMask, s.savedMaskW = s.reachMask, s.reachMaskW
			s.reachMask, s.reachMaskW = nil, nil
		}
		return
	}
	if s.savedMask != nil || s.savedMaskW != nil {
		s.reachMask, s.reachMaskW = s.savedMask, s.savedMaskW
		s.savedMask, s.savedMaskW = nil, nil
	}
}

// FiberPathIDs returns the fiber ids of the shortest fiber path between two
// sites (nil if none). The slice is shared; callers must not mutate it.
func (s *State) FiberPathIDs(u, v int) []int { return s.pairPath[u][v] }

// canReach reports whether a single unregenerated segment u->v can exist
// (precomputed reach adjacency).
func (s *State) canReach(u, v int) bool { return s.inReach[u*s.net.NumSites()+v] }

// SameDirectRouting reports whether the PRIMARY direct-segment routing for
// the ordered pair (u, v) is identical between s and t: the same reach
// verdict and, when in reach, the same primary fiber route (ids, distance,
// and per-fiber wavelength counts). When this holds for every link of a
// topology whose provisioning was answered entirely by the direct fast path
// on primary routes (State.DirectOnly), replaying that provisioning on t
// makes exactly the same decisions: by induction over the circuit sequence
// the wavelength occupancy evolves identically on the identical fibers, so
// each primary first-fit scan returns the same wavelength, succeeds before
// any alternate is consulted — which is why the alternate tables need no
// comparison — and yields identical effective capacities. This is the
// validity predicate of the provision-cache migration across a fiber
// removal in internal/core.
func (s *State) SameDirectRouting(t *State, u, v int) bool {
	ns := s.net.NumSites()
	if t.net.NumSites() != ns {
		return false
	}
	if s.inReach[u*ns+v] != t.inReach[u*ns+v] {
		return false
	}
	if s.inReach[u*ns+v] {
		if s.pairDist[u][v] != t.pairDist[u][v] ||
			!sameFiberIDs(s, t, s.pairPath[u][v], t.pairPath[u][v]) {
			return false
		}
	}
	return true
}

// sameFiberIDs reports whether two fiber-id sequences are identical AND each
// shared id carries the same wavelength capacity in both states — the two
// inputs routeLambda's first-fit scan depends on.
func sameFiberIDs(s, t *State, a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, id := range a {
		if id != b[i] || s.fiberWaves[id] != t.fiberWaves[b[i]] {
			return false
		}
	}
	return true
}

// SameSegmentRouting reports whether the COMPLETE direct-segment routing for
// the ordered pair (u, v) — the primary fiber route and the full alternate
// table, in table order — is identical between s and t. It is the
// alternate-aware extension of SameDirectRouting: when it holds for every
// link of a topology whose provisioning never consulted the regenerator
// graph (State.SegmentOnly), replaying that provisioning on t makes exactly
// the same decisions. The induction is SameDirectRouting's, one candidate
// deeper — segmentFeasible scans primary-then-alternates in table order and
// takes the first route with a common free wavelength, so identical
// candidate sequences over fibers of identical wavelength capacity, with
// the occupancy evolving identically by induction over the circuit
// sequence, yield the same route and wavelength choice for every circuit.
func (s *State) SameSegmentRouting(t *State, u, v int) bool {
	if !s.SameDirectRouting(t, u, v) {
		return false
	}
	sa, ta := s.pairAlts[u][v], t.pairAlts[u][v]
	if len(sa) != len(ta) {
		return false
	}
	for i := range sa {
		if sa[i].km != ta[i].km || !sameFiberIDs(s, t, sa[i].ids, ta[i].ids) {
			return false
		}
	}
	return true
}

// staticFeasible reports whether a circuit u->v could be provisioned on an
// empty network (precomputed; see the regenReach field). False means the
// pair fails in every provisioning order, independent of occupancy.
func (s *State) staticFeasible(u, v int) bool {
	return s.regenReach[u*s.maskW+v>>6]>>(uint(v)&63)&1 == 1
}

// segmentFeasible checks that some in-reach fiber route u->v has a common
// free wavelength; it returns the route and wavelength, or a nil route.
// The shortest fiber path is tried first, then the precomputed in-reach
// alternates (the paper's canBeBuilt check walks candidate paths the same
// way). The answer per ordered pair is cached against the availability
// epoch: findRegenRoute probes a segment and provision realizes it moments
// later, and between the two probes no wavelength moved, so the second is a
// stamp compare instead of a route scan. The cached route is rebuilt from
// the route tables (not stored), preserving the alias identity the
// directOnly audit's pointer test depends on.
func (s *State) segmentFeasible(u, v int) (fiberRoute, int) {
	sc := s.scratchBuf()
	ns := s.net.NumSites()
	if sc.segStamp == nil {
		sc.segStamp = make([]uint64, ns*ns)
		sc.segAns = make([]int32, ns*ns)
	}
	pi := u*ns + v
	if sc.segStamp[pi] == s.waveEpoch {
		code := sc.segAns[pi]
		switch ri := int(code>>16) - 2; {
		case ri == -2:
			return fiberRoute{}, -1
		case ri == -1:
			return fiberRoute{ids: s.pairPath[u][v], km: s.pairDist[u][v]}, int(code & 0xffff)
		default:
			return s.pairAlts[u][v][ri], int(code & 0xffff)
		}
	}
	route, ri, l := fiberRoute{}, -2, -1
	if s.canReach(u, v) {
		if l = s.routeLambda(s.pairPath[u][v]); l >= 0 {
			route, ri = fiberRoute{ids: s.pairPath[u][v], km: s.pairDist[u][v]}, -1
		}
	}
	if ri == -2 {
		for k, alt := range s.pairAlts[u][v] {
			if l = s.routeLambda(alt.ids); l >= 0 {
				route, ri = alt, k
				break
			}
		}
	}
	sc.segStamp[pi] = s.waveEpoch
	if ri == -2 {
		sc.segAns[pi] = 0 // (-2+2)<<16 | 0
		return fiberRoute{}, -1
	}
	sc.segAns[pi] = int32(ri+2)<<16 | int32(l)
	return route, l
}

// routeLambda returns the lowest wavelength free on every fiber of the
// route, or -1: the word-ascending intersection of the fibers' free-word
// summaries. A set bit of fiberFree[id] exists only below fiberWaves[id],
// so the intersection is implicitly capped at the tightest fiber — the
// lowest surviving bit is exactly firstCommonFree's answer over the
// occupancy sets (the property test cross-checks the two).
func (s *State) routeLambda(ids []int) int {
	if len(ids) == 0 {
		return 0 // vacuous route: every wavelength is common-free
	}
	first := s.fiberFree[ids[0]]
	nw := len(first)
	rest := ids[1:]
	for _, id := range rest {
		if l := len(s.fiberFree[id]); l < nw {
			nw = l
		}
	}
	for j := 0; j < nw; j++ {
		acc := first[j]
		for _, id := range rest {
			acc &= s.fiberFree[id][j]
		}
		if acc != 0 {
			return j<<6 + bits.TrailingZeros64(acc)
		}
	}
	return -1
}

// Provision establishes a circuit between src and dst, consuming wavelengths
// and regenerators. It returns the circuit or an error if no feasible
// combination of regenerator sites and wavelengths exists.
func (s *State) Provision(src, dst int) (*Circuit, error) {
	return s.provision(src, dst, true)
}

// provision implements Provision. With record == false it applies exactly
// the same state mutations (wavelength claims, regenerator consumption, id
// sequencing) but materializes no Circuit — the allocation-free mode behind
// ProvisionEffective, where the annealing energy function only needs the
// effective capacities.
func (s *State) provision(src, dst int, record bool) (*Circuit, error) {
	if src == dst {
		return nil, fmt.Errorf("optical: circuit endpoints equal (%d)", src)
	}
	hops, err := s.findRegenRoute(src, dst)
	if err != nil {
		return nil, err
	}
	// Realize every hop as a segment on a feasible fiber route.
	var c *Circuit
	if record {
		c = &Circuit{ID: s.nextID, Src: src, Dst: dst}
	}
	for i := 0; i+1 < len(hops); i++ {
		u, v := hops[i], hops[i+1]
		route, lambda := s.segmentFeasible(u, v)
		if lambda < 0 {
			// findRegenRoute verified feasibility, so this is unreachable
			// unless state changed concurrently.
			return nil, errSegmentInfeasible
		}
		for _, id := range route.ids {
			s.claimWave(id, lambda)
		}
		if record {
			c.Segments = append(c.Segments, Segment{FiberIDs: route.ids, Wavelength: lambda, LengthKm: route.km})
		}
		if i+1 < len(hops)-1 { // interior node regenerates
			s.setRegen(v, s.regenFree[v]-1)
			if record {
				c.RegenSites = append(c.RegenSites, v)
			}
		}
	}
	s.nextID++
	if record {
		s.circuits[c.ID] = c
	}
	return c, nil
}

// Release tears down a circuit, returning its wavelengths and regenerators
// to the pools.
func (s *State) Release(id int) error {
	c, ok := s.circuits[id]
	if !ok {
		return fmt.Errorf("optical: unknown circuit %d", id)
	}
	for _, seg := range c.Segments {
		for _, fid := range seg.FiberIDs {
			s.freeWave(fid, seg.Wavelength)
		}
	}
	for _, r := range c.RegenSites {
		s.setRegen(r, s.regenFree[r]+1)
	}
	delete(s.circuits, id)
	return nil
}

// findRegenRoute picks the sequence of sites (src, regenerators..., dst)
// for a new circuit. It builds the regenerator graph, weights nodes by
// 1/remaining-regenerators (endpoints weigh zero), transforms node weights
// into edge weights on a directed graph (each directed edge carries the
// weight of its head node, Figure 5 of the paper), and then iterates the
// shortest feasible paths, checking per-segment wavelength availability.
//
// The transit graph, node list, and path scratch are reused from the
// State's scratch area; the returned hop slice is also scratch-owned and
// valid only until the next findRegenRoute call.
func (s *State) findRegenRoute(src, dst int) ([]int, error) {
	// Fast path: a direct segment within reach with a free wavelength needs
	// no regenerator graph at all. This covers the vast majority of circuits
	// on continental topologies and keeps the annealing energy function fast.
	if route, l := s.segmentFeasible(src, dst); l >= 0 {
		if len(route.ids) == 0 || !s.canReach(src, dst) || &route.ids[0] != &s.pairPath[src][dst][0] {
			// An alternate fiber route answered: the run's decisions now
			// depend on the alternate tables, not just the primaries.
			s.directOnly = false
		}
		sc := s.scratchBuf()
		sc.hops = append(sc.hops[:0], src, dst)
		return sc.hops, nil
	}
	s.directOnly = false
	s.segmentOnly = false // this query needs the regenerator graph
	ns := s.net.NumSites()
	sc := s.scratchBuf()
	// Mask fast path (networks of at most 64 sites): run the node-weighted
	// Dijkstra directly on the reach bitmasks — bit-identical to building
	// the transit graph and searching it (see MaskShortestNodeWeighted) —
	// and only fall through to the materialized graph when the shortest
	// route is not buildable and Yen's enumeration is needed.
	if s.reachMask != nil {
		// The vertex set and weights come straight from the persistent
		// regenAvail/wRegen caches (maintained at every pool mutation), so
		// the per-query O(n) rebuild the loop here used to do is gone. The
		// endpoints join the set for the duration of the query with weight
		// 0, exactly as the scan set them: w[src] is never read (no
		// relaxation can beat dist[src] = 0 with non-negative weights) and
		// w[dst] must be 0. Where the availability bit is clear the cached
		// weight is stale, but such vertices are outside nodeMask and the
		// Dijkstra never reads them.
		w := s.wRegen
		nodeMask := s.regenAvail[0] | 1<<uint(src) | 1<<uint(dst)
		wSrc, wDst := w[src], w[dst]
		w[src], w[dst] = 0, 0
		hops, ok := graph.MaskShortestNodeWeighted(&sc.sp, s.reachMask, nodeMask, w, src, dst, sc.hops[:0])
		w[src], w[dst] = wSrc, wDst
		if !ok {
			return nil, errNoRegenRoute
		}
		sc.hops = hops
		if s.routeBuildable(hops) {
			return hops, nil
		}
	} else if s.reachMaskW != nil {
		// Multi-word twin of the branch above for networks past 64 sites:
		// identical node weights and relaxation order, so the same route
		// falls out (see MaskShortestNodeWeightedW). The vertex set is the
		// persistent availability mask plus the endpoints — a word copy, not
		// an O(n) scan.
		w := s.wRegen
		sc.nodeMaskW = bitset.Grow(sc.nodeMaskW, ns)
		sc.nodeMaskW.Copy(s.regenAvail)
		sc.nodeMaskW.Set(src)
		sc.nodeMaskW.Set(dst)
		wSrc, wDst := w[src], w[dst]
		w[src], w[dst] = 0, 0
		hops, ok := graph.MaskShortestNodeWeightedW(&sc.sp, s.reachMaskW, s.maskW, sc.nodeMaskW, w, src, dst, sc.hops[:0])
		w[src], w[dst] = wSrc, wDst
		if !ok {
			return nil, errNoRegenRoute
		}
		sc.hops = hops
		if s.routeBuildable(hops) {
			return hops, nil
		}
	}
	// Nodes of the regenerator graph: src, dst, and sites with spare regens.
	sc.nodes = sc.nodes[:0]
	srcIdx, dstIdx := -1, -1
	for v := 0; v < ns; v++ {
		if v == src || v == dst || s.regenFree[v] > 0 {
			if v == src {
				srcIdx = len(sc.nodes)
			}
			if v == dst {
				dstIdx = len(sc.nodes)
			}
			sc.nodes = append(sc.nodes, v)
		}
	}
	nodes := sc.nodes
	weight := func(v int) float64 {
		if v == src || v == dst {
			return 0
		}
		if s.unitRegenWeights {
			return 1
		}
		// Inverse of remaining regenerators balances consumption across
		// concentration sites. A tiny epsilon keeps paths short when all
		// weights are equal.
		return 1/float64(s.regenFree[v]) + 1e-6
	}
	tg := sc.tg
	tg.Reset(len(nodes))
	for i, u := range nodes {
		for j, v := range nodes {
			if i == j {
				continue
			}
			if s.canReach(u, v) {
				tg.AddEdge(i, j, weight(v), 0)
			}
		}
	}
	// Try the single shortest path first (cheap), then fall back to Yen's
	// k-shortest enumeration only when it is not buildable: wavelengths may
	// be exhausted on some segment, or an interior site may be short of
	// regenerators for a path that revisits it.
	sp := tg.ShortestPathScratch(&sc.sp, srcIdx, dstIdx)
	if sp == nil {
		return nil, errNoRegenRoute
	}
	if hops := s.hopsOf(sp, nodes); s.routeBuildable(hops) {
		return hops, nil
	}
	const kPaths = 6
	paths := tg.KShortestPathsScratch(&sc.sp, srcIdx, dstIdx, kPaths)
	for _, p := range paths {
		hops := s.hopsOf(p, nodes)
		if hops != nil && s.routeBuildable(hops) {
			return hops, nil
		}
	}
	return nil, errExhausted
}

// hopsOf maps a path in the transformed regenerator graph back to site ids.
// The result lives in the State scratch and is valid until the next hopsOf
// or findRegenRoute call.
func (s *State) hopsOf(p *graph.Path, nodes []int) []int {
	verts := p.Vertices()
	if verts == nil {
		return nil
	}
	sc := s.scratchBuf()
	sc.hops = sc.hops[:0]
	for _, vi := range verts {
		sc.hops = append(sc.hops, nodes[vi])
	}
	return sc.hops
}

// routeBuildable verifies wavelengths for every hop and regenerator
// availability at interior nodes.
func (s *State) routeBuildable(hops []int) bool {
	sc := s.scratchBuf()
	ok := true
	filled := 0
	for i := 0; i+1 < len(hops); i++ {
		if _, l := s.segmentFeasible(hops[i], hops[i+1]); l < 0 {
			ok = false
			break
		}
		if i+1 < len(hops)-1 {
			sc.need[hops[i+1]]++
			filled = i + 1
		}
	}
	if ok {
		for i := 1; i+1 < len(hops); i++ {
			if s.regenFree[hops[i]] < sc.need[hops[i]] {
				ok = false
				break
			}
		}
	}
	for i := 1; i <= filled; i++ {
		sc.need[hops[i]] = 0
	}
	return ok
}
