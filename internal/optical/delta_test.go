package optical

import (
	"math/rand"
	"testing"

	"owan/internal/topology"
)

// deltaTestNets returns a mix of comfortable and scarce networks so the
// delta tests cover both the trusted path and every fallback flag: the
// benchmark-scale ISP40 exercises the trusted path on realistic geometry,
// and the regenerator-starved ISP (two regenerators per concentration
// site) forces the regenScarce gate and its near-empty-pool margin.
func deltaTestNets() []*topology.Network {
	regenStarved := topology.ISP(16, 8, 3)
	regenStarved.PlaceRegenerators(2)
	return []*topology.Network{
		topology.Internet2(6),
		topology.ISP(12, 6, 1),
		topology.ISP(20, 8, 2),
		topology.ISP(40, 10, 1),
		regenStarved,
		topology.Square(), // 4 wavelengths per fiber: always tight
	}
}

// occupancyDump serializes the mutable occupancy of a State so tests can
// assert bit-identical restoration.
func occupancyDump(s *State) ([]uint64, []int, int) {
	var waves []uint64
	for _, w := range s.fiberUse {
		waves = append(waves, w...)
	}
	return waves, append([]int(nil), s.regenFree...), s.nextID
}

func sameOccupancy(t *testing.T, ctx string, s *State, waves []uint64, regen []int, nextID int) {
	t.Helper()
	w2, r2, id2 := occupancyDump(s)
	if len(w2) != len(waves) {
		t.Fatalf("%s: wavelength word count changed: %d != %d", ctx, len(w2), len(waves))
	}
	for i := range waves {
		if w2[i] != waves[i] {
			t.Fatalf("%s: wavelength word %d differs: %#x != %#x", ctx, i, w2[i], waves[i])
		}
	}
	for i := range regen {
		if r2[i] != regen[i] {
			t.Fatalf("%s: regen pool at site %d differs: %d != %d", ctx, i, r2[i], regen[i])
		}
	}
	if id2 != nextID {
		t.Fatalf("%s: nextID differs: %d != %d", ctx, id2, nextID)
	}
}

// randomSwapDelta applies one random 2-circuit swap to a clone of base and
// returns the patched set plus the net removed/added lists ProvisionDelta
// takes. Returns ok=false when no valid swap was found.
func randomSwapDelta(rng *rand.Rand, base *topology.LinkSet) (*topology.LinkSet, []topology.Link, []topology.Link, bool) {
	links := base.Links()
	if len(links) < 2 {
		return nil, nil, nil, false
	}
	for try := 0; try < 64; try++ {
		a, b := links[rng.Intn(len(links))], links[rng.Intn(len(links))]
		u, v, p, q := a.U, a.V, b.U, b.V
		if rng.Intn(2) == 0 {
			p, q = q, p
		}
		if u == p || v == q {
			continue
		}
		if min(p, q) == u && max(p, q) == v && base.Get(u, v) < 2 {
			continue
		}
		cand := base.Clone()
		cand.Add(u, v, -1)
		cand.Add(p, q, -1)
		cand.Add(u, p, 1)
		cand.Add(v, q, 1)

		// Net deltas per touched pair.
		touched := map[[2]int]bool{}
		for _, pr := range [][2]int{{u, v}, {p, q}, {u, p}, {v, q}} {
			x, y := pr[0], pr[1]
			if x > y {
				x, y = y, x
			}
			touched[[2]int{x, y}] = true
		}
		var removed, added []topology.Link
		for pr := range touched {
			d := cand.Get(pr[0], pr[1]) - base.Get(pr[0], pr[1])
			if d < 0 {
				removed = append(removed, topology.Link{U: pr[0], V: pr[1], Count: -d})
			} else if d > 0 {
				added = append(added, topology.Link{U: pr[0], V: pr[1], Count: d})
			}
		}
		return cand, removed, added, true
	}
	return nil, nil, nil, false
}

// TestSnapshotMatchesProvisionEffective pins BuildSnapshot's provisioning
// decisions to the cold path: same effective capacities, same occupancy.
func TestSnapshotMatchesProvisionEffective(t *testing.T) {
	for _, net := range deltaTestNets() {
		s := NewState(net)
		ls := topology.InitialTopology(net)
		var snap Snapshot
		s.BuildSnapshot(&snap, ls)
		waves, regen, _ := occupancyDump(s)

		s2 := NewState(net)
		eff := s2.ProvisionEffective(ls)
		if !snap.Eff().Equal(eff) {
			t.Fatalf("%s: snapshot effective differs from ProvisionEffective", net.Name)
		}
		w2, r2, _ := occupancyDump(s2)
		for i := range waves {
			if waves[i] != w2[i] {
				t.Fatalf("%s: snapshot occupancy differs from cold provisioning at word %d", net.Name, i)
			}
		}
		for i := range regen {
			if regen[i] != r2[i] {
				t.Fatalf("%s: regen pools differ from cold provisioning at site %d", net.Name, i)
			}
		}
		// EffLinks mirrors Eff in sorted order.
		var buf []topology.Link
		buf = snap.Eff().AppendLinks(buf)
		if len(buf) != len(snap.EffLinks()) {
			t.Fatalf("%s: EffLinks length mismatch", net.Name)
		}
		for i := range buf {
			if buf[i] != snap.EffLinks()[i] {
				t.Fatalf("%s: EffLinks[%d] = %v, want %v", net.Name, i, snap.EffLinks()[i], buf[i])
			}
		}
	}
}

// TestProvisionDeltaRevertRestoresOccupancy is the satellite property test:
// across 100 random swap sequences, apply→revert must restore the full
// optical occupancy (wavelength bitsets, regenerator pools, id counter)
// bit-identically, trusted or not.
func TestProvisionDeltaRevertRestoresOccupancy(t *testing.T) {
	nets := deltaTestNets()
	var snap Snapshot
	var j Journal
	for seq := 0; seq < 100; seq++ {
		rng := rand.New(rand.NewSource(int64(seq)))
		net := nets[seq%len(nets)]
		s := NewState(net)
		base := topology.InitialTopology(net)
		// Random walk a few swaps away from the initial topology so the
		// snapshots differ across sequences.
		for k := 0; k < rng.Intn(4); k++ {
			if cand, _, _, ok := randomSwapDelta(rng, base); ok {
				base = cand
			}
		}
		s.BuildSnapshot(&snap, base)
		waves, regen, nextID := occupancyDump(s)

		for step := 0; step < 6; step++ {
			_, removed, added, ok := randomSwapDelta(rng, base)
			if !ok {
				continue
			}
			s.ProvisionDelta(&snap, removed, added, &j)
			s.RevertDelta(&j)
			sameOccupancy(t, net.Name, s, waves, regen, nextID)
		}
	}
}

// TestProvisionDeltaSteadyStateAllocs pins the delta evaluation's zero-alloc
// steady state: after warmup, an apply→revert cycle reuses the journal's
// buffers entirely.
func TestProvisionDeltaSteadyStateAllocs(t *testing.T) {
	net := topology.ISP(20, 8, 2)
	s := NewState(net)
	base := topology.InitialTopology(net)
	var snap Snapshot
	s.BuildSnapshot(&snap, base)
	rng := rand.New(rand.NewSource(1))
	_, removed, added, ok := randomSwapDelta(rng, base)
	if !ok {
		t.Fatal("no valid swap on the initial ISP20 topology")
	}
	var j Journal
	for i := 0; i < 3; i++ {
		s.ProvisionDelta(&snap, removed, added, &j)
		s.RevertDelta(&j)
	}
	if avg := testing.AllocsPerRun(50, func() {
		s.ProvisionDelta(&snap, removed, added, &j)
		s.RevertDelta(&j)
	}); avg != 0 {
		t.Fatalf("ProvisionDelta+RevertDelta allocates %v objects per cycle in steady state, want 0", avg)
	}
}

// TestProvisionDeltaTrustedMatchesCold: whenever ProvisionDelta declares a
// result trusted, the patched effective links must equal cold provisioning
// of the candidate exactly; untrusted results are allowed to diverge (the
// caller re-runs cold). Divergence while trusted is the one failure mode
// the delta path must never have.
func TestProvisionDeltaTrustedMatchesCold(t *testing.T) {
	var snap Snapshot
	var j Journal
	trusted, fallbacks := 0, 0
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nets := deltaTestNets()
		net := nets[int(seed)%len(nets)]
		s := NewState(net)
		cold := NewState(net)
		base := topology.InitialTopology(net)
		for k := 0; k < rng.Intn(5); k++ {
			if cand, _, _, ok := randomSwapDelta(rng, base); ok {
				base = cand
			}
		}
		s.BuildSnapshot(&snap, base)

		for step := 0; step < 4; step++ {
			cand, removed, added, ok := randomSwapDelta(rng, base)
			if !ok {
				continue
			}
			patch, ok2 := s.ProvisionDelta(&snap, removed, added, &j)
			if ok2 {
				trusted++
				got := topology.MergePatch(nil, snap.EffLinks(), patch)
				var want []topology.Link
				want = cold.ProvisionEffective(cand).AppendLinks(want)
				if len(got) != len(want) {
					t.Fatalf("net %s seed %d: trusted delta link count %d != cold %d", net.Name, seed, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("net %s seed %d: trusted delta diverged at link %d: %v != %v (patch %v)",
							net.Name, seed, i, got[i], want[i], patch)
					}
				}
			} else {
				fallbacks++
			}
			s.RevertDelta(&j)
		}
	}
	if trusted == 0 {
		t.Fatal("no trusted deltas across 300 seeds — the trust gate is vacuous")
	}
	if fallbacks == 0 {
		t.Fatal("no fallbacks across 300 seeds — the scarce-network coverage is vacuous")
	}
	t.Logf("trusted=%d fallbacks=%d", trusted, fallbacks)
}
