package optical

import (
	"math/rand"
	"testing"
	"testing/quick"

	"owan/internal/topology"
)

func TestProvisionShortCircuit(t *testing.T) {
	net := topology.Internet2(15)
	s := NewState(net)
	// WASH(7)-NEWY(8): 330 km, within reach, no regenerator needed.
	c, err := s.Provision(7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Segments) != 1 || len(c.RegenSites) != 0 {
		t.Errorf("segments=%d regens=%v, want 1 segment no regens", len(c.Segments), c.RegenSites)
	}
	if c.LengthKm() != 330 {
		t.Errorf("length = %v, want 330", c.LengthKm())
	}
}

func TestProvisionLongCircuitUsesRegenerators(t *testing.T) {
	net := topology.Internet2(15)
	s := NewState(net)
	// SEAT(0)->NEWY(8) is far beyond 2000 km reach: must regenerate.
	c, err := s.Provision(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.RegenSites) == 0 {
		t.Error("cross-country circuit should use regenerators")
	}
	for _, r := range c.RegenSites {
		if net.Sites[r].Regenerators == 0 {
			t.Errorf("regen site %d has no regenerator pool", r)
		}
	}
	// Every segment must respect reach.
	for _, seg := range c.Segments {
		if seg.LengthKm > net.ReachKm {
			t.Errorf("segment length %v exceeds reach %v", seg.LengthKm, net.ReachKm)
		}
	}
}

func TestProvisionConsumesRegenerators(t *testing.T) {
	net := topology.Internet2(15)
	s := NewState(net)
	before := make(map[int]int)
	for i := range net.Sites {
		before[i] = s.RegenFree(i)
	}
	c, err := s.Provision(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	for i := range net.Sites {
		used += before[i] - s.RegenFree(i)
	}
	if used != len(c.RegenSites) {
		t.Errorf("consumed %d regens, circuit records %d", used, len(c.RegenSites))
	}
	if err := s.Release(c.ID); err != nil {
		t.Fatal(err)
	}
	for i := range net.Sites {
		if s.RegenFree(i) != before[i] {
			t.Errorf("site %d regens not restored: %d != %d", i, s.RegenFree(i), before[i])
		}
	}
}

func TestWavelengthExhaustion(t *testing.T) {
	net := topology.Square() // 4 wavelengths per fiber
	s := NewState(net)
	// R0-R1 fiber is direct. Provision until the fiber is full.
	n := 0
	for ; n < 10; n++ {
		if _, err := s.Provision(0, 1); err != nil {
			break
		}
	}
	// Circuits can route either directly (4 λ) or around 0-2-3-1 (4 λ,
	// limited by the same count on each hop): at most 8 total.
	if n < 4 || n > 8 {
		t.Errorf("provisioned %d circuits, want between 4 and 8", n)
	}
	// After exhaustion provisioning must keep failing.
	if _, err := s.Provision(0, 1); err == nil {
		t.Error("expected failure after wavelength exhaustion")
	}
}

func TestReleaseRestoresWavelengths(t *testing.T) {
	net := topology.Square()
	s := NewState(net)
	var ids []int
	for {
		c, err := s.Provision(0, 1)
		if err != nil {
			break
		}
		ids = append(ids, c.ID)
	}
	for _, id := range ids {
		if err := s.Release(id); err != nil {
			t.Fatal(err)
		}
	}
	for f := range net.Fibers {
		if s.WavelengthsUsed(f) != 0 {
			t.Errorf("fiber %d still has %d wavelengths in use", f, s.WavelengthsUsed(f))
		}
	}
	if s.Circuits() != 0 {
		t.Errorf("still %d circuits", s.Circuits())
	}
}

func TestReleaseUnknown(t *testing.T) {
	s := NewState(topology.Square())
	if err := s.Release(42); err == nil {
		t.Error("releasing unknown circuit should fail")
	}
}

func TestProvisionSelfLoop(t *testing.T) {
	s := NewState(topology.Square())
	if _, err := s.Provision(1, 1); err == nil {
		t.Error("self circuit should fail")
	}
}

func TestRegeneratorBalancing(t *testing.T) {
	// Provision many long circuits; the inverse-weight rule should spread
	// regenerator usage across concentration sites rather than draining one.
	net := topology.Internet2(15)
	s := NewState(net)
	for i := 0; i < 6; i++ {
		if _, err := s.Provision(0, 8); err != nil {
			t.Fatalf("circuit %d: %v", i, err)
		}
	}
	// No concentration site should be fully drained while another is
	// untouched, unless only one site exists.
	var pools []int
	for i, site := range net.Sites {
		if site.Regenerators > 0 {
			pools = append(pools, site.Regenerators-s.RegenFree(i))
		}
	}
	if len(pools) >= 2 {
		minUse, maxUse := pools[0], pools[0]
		for _, u := range pools {
			if u < minUse {
				minUse = u
			}
			if u > maxUse {
				maxUse = u
			}
		}
		if maxUse > 0 && maxUse-minUse > maxUse {
			t.Errorf("unbalanced regen usage: %v", pools)
		}
	}
}

func TestProvisionTopologyInternet2(t *testing.T) {
	net := topology.Internet2(15)
	s := NewState(net)
	ls := topology.InitialTopology(net)
	plan := s.ProvisionTopology(ls)
	if plan.TotalBuilt() == 0 {
		t.Fatal("no circuits built")
	}
	eff := plan.Effective(net.NumSites())
	// Effective capacity never exceeds the request.
	for _, l := range eff.Links() {
		if l.Count > ls.Get(l.U, l.V) {
			t.Errorf("link %d-%d effective %d > requested %d", l.U, l.V, l.Count, ls.Get(l.U, l.V))
		}
	}
	// With 80 wavelengths per fiber and modest port counts, the full initial
	// topology should be realizable.
	if plan.TotalBuilt() != ls.TotalCircuits() {
		t.Errorf("built %d of %d circuits", plan.TotalBuilt(), ls.TotalCircuits())
	}
}

func TestProvisionTopologyIsDeterministic(t *testing.T) {
	net := topology.ISP(30, 8, 5)
	ls := topology.InitialTopology(net)
	a := NewState(net).ProvisionTopology(ls)
	b := NewState(net).ProvisionTopology(ls)
	if a.TotalBuilt() != b.TotalBuilt() || len(a.Links) != len(b.Links) {
		t.Fatal("provisioning not deterministic")
	}
	for i := range a.Links {
		if a.Links[i].U != b.Links[i].U || a.Links[i].Built != b.Links[i].Built {
			t.Errorf("link %d differs", i)
		}
	}
}

// Property: wavelength occupancy on every fiber never exceeds φ and is
// exactly restored by releases.
func TestWavelengthAccounting(t *testing.T) {
	net := topology.Internet2(15)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewState(net)
		var live []int
		for op := 0; op < 40; op++ {
			if len(live) > 0 && rng.Float64() < 0.4 {
				i := rng.Intn(len(live))
				if s.Release(live[i]) != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			} else {
				u, v := rng.Intn(9), rng.Intn(9)
				if u == v {
					continue
				}
				c, err := s.Provision(u, v)
				if err != nil {
					continue
				}
				live = append(live, c.ID)
			}
			for f, fb := range net.Fibers {
				if s.WavelengthsUsed(f) > fb.Wavelengths {
					return false
				}
			}
			for i := range net.Sites {
				if s.RegenFree(i) < 0 {
					return false
				}
			}
		}
		for _, id := range live {
			if s.Release(id) != nil {
				return false
			}
		}
		for f := range net.Fibers {
			if s.WavelengthsUsed(f) != 0 {
				return false
			}
		}
		for i, site := range net.Sites {
			if s.RegenFree(i) != site.Regenerators {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestROADMPowerBudget(t *testing.T) {
	p := ROADMPath{EDFAGainDB: DefaultEDFAGainDB}
	if p.LossDB() != 28 {
		t.Errorf("loss = %v dB, want 28 (5+10.5+0.5+7+5)", p.LossDB())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default gain should satisfy budget: %v", err)
	}
	bad := ROADMPath{EDFAGainDB: 0}
	if err := bad.Validate(); err == nil {
		t.Error("no gain should exceed the 16 dB budget (28 dB loss)")
	}
}

func BenchmarkProvisionTopologyISP40(b *testing.B) {
	net := topology.ISP(40, 10, 1)
	ls := topology.InitialTopology(net)
	s := NewState(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ProvisionTopology(ls)
	}
}
