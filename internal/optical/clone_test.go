package optical

import (
	"sync"
	"testing"

	"owan/internal/topology"
)

func TestCloneIsIndependent(t *testing.T) {
	net := topology.Internet2(8)
	s := NewState(net)
	if _, err := s.Provision(0, 1); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if c.Circuits() != s.Circuits() {
		t.Fatalf("clone has %d circuits, want %d", c.Circuits(), s.Circuits())
	}

	// Mutating the clone must not leak into the original.
	before := make(map[int]int)
	for _, f := range net.Fibers {
		before[f.ID] = s.WavelengthsUsed(f.ID)
	}
	regenBefore := make([]int, net.NumSites())
	for v := range regenBefore {
		regenBefore[v] = s.RegenFree(v)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Provision(2, 3); err != nil {
			t.Fatal(err)
		}
	}
	c.Reset()
	for _, f := range net.Fibers {
		if got := s.WavelengthsUsed(f.ID); got != before[f.ID] {
			t.Fatalf("fiber %d: original wavelength use changed %d -> %d", f.ID, before[f.ID], got)
		}
	}
	for v := range regenBefore {
		if got := s.RegenFree(v); got != regenBefore[v] {
			t.Fatalf("site %d: original regen pool changed %d -> %d", v, regenBefore[v], got)
		}
	}
	if _, ok := s.Circuit(0); !ok {
		t.Error("original lost its circuit after clone Reset")
	}
}

func TestClonesProvisionIdentically(t *testing.T) {
	net := topology.ISP(20, 6, 3)
	base := NewState(net)
	ls := topology.InitialTopology(net)

	want := base.ProvisionTopology(ls)
	clone := base.Clone()
	got := clone.ProvisionTopology(ls)
	if len(want.Links) != len(got.Links) {
		t.Fatalf("plan size differs: %d vs %d", len(want.Links), len(got.Links))
	}
	for i := range want.Links {
		w, g := want.Links[i], got.Links[i]
		if w.U != g.U || w.V != g.V || w.Built != g.Built {
			t.Fatalf("link %d differs: %+v vs %+v", i, w, g)
		}
	}
}

func TestClonesAreConcurrencySafe(t *testing.T) {
	net := topology.ISP(15, 6, 3)
	base := NewState(net)
	ls := topology.InitialTopology(net)
	want := base.ProvisionTopology(ls).TotalBuilt()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := base.Clone()
			for i := 0; i < 20; i++ {
				if got := c.ProvisionTopology(ls).TotalBuilt(); got != want {
					errs <- "clone provisioned a different circuit count"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
