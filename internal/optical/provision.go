package optical

import (
	"owan/internal/topology"
)

// LinkCircuits records the circuits provisioned for one network-layer link.
type LinkCircuits struct {
	U, V     int
	Want     int   // requested parallel circuits
	Built    int   // circuits actually provisioned
	Circuits []int // circuit ids
}

// TopologyPlan is the result of realizing a network-layer topology in the
// optical layer: per-link circuit counts after applying wavelength, reach
// and regenerator constraints (Algorithm 3, lines 2–14 of the paper).
type TopologyPlan struct {
	Links []LinkCircuits
}

// Effective returns the effective link capacities (in circuits) as a
// LinkSet: the requested topology with capacities reduced where the optical
// layer could not satisfy them.
func (tp *TopologyPlan) Effective(n int) *topology.LinkSet {
	ls := topology.NewLinkSet(n)
	for _, lc := range tp.Links {
		if lc.Built > 0 {
			ls.Add(lc.U, lc.V, lc.Built)
		}
	}
	return ls
}

// TotalBuilt returns the number of circuits provisioned across all links.
func (tp *TopologyPlan) TotalBuilt() int {
	t := 0
	for _, lc := range tp.Links {
		t += lc.Built
	}
	return t
}

// ProvisionTopology provisions circuits for every link of the desired
// network-layer topology on a fresh optical state. Links are processed in
// deterministic (U, V)-sorted order — exactly the order LinkSet.Links
// returns them. If the optical layer cannot supply all requested circuits
// for a link, the link's capacity is decreased (paper Alg 3 lines 13–14)
// rather than failing the whole topology.
//
// The state is Reset first: topology realization is evaluated from scratch,
// matching the stateless energy computation of the annealing search.
func (s *State) ProvisionTopology(ls *topology.LinkSet) *TopologyPlan {
	s.Reset()
	links := ls.Links()
	plan := &TopologyPlan{}
	for _, l := range links {
		lc := LinkCircuits{U: l.U, V: l.V, Want: l.Count}
		for k := 0; k < l.Count; k++ {
			c, err := s.Provision(l.U, l.V)
			if err != nil {
				break
			}
			lc.Built++
			lc.Circuits = append(lc.Circuits, c.ID)
		}
		plan.Links = append(plan.Links, lc)
	}
	return plan
}

// ProvisionEffective realizes the desired topology exactly like
// ProvisionTopology but materializes no Circuit records and no plan: it
// returns only the effective link capacities, which is all the annealing
// energy function consumes. The provisioning decisions — and therefore the
// resulting capacities — are identical to ProvisionTopology's, because
// decisions depend only on the mutable occupancy (wavelength bitsets and
// regenerator pools), never on the recorded circuits.
//
// The returned LinkSet is owned by the State's scratch area and is valid
// only until the next ProvisionEffective call on this State; callers that
// need to keep it must Clone it.
func (s *State) ProvisionEffective(ls *topology.LinkSet) *topology.LinkSet {
	s.Reset()
	sc := s.scratchBuf()
	sc.links = ls.AppendLinks(sc.links[:0])
	if sc.eff == nil || sc.eff.N != ls.N {
		sc.eff = topology.NewLinkSet(ls.N)
	} else {
		sc.eff.Clear()
	}
	for _, l := range sc.links {
		built := 0
		for k := 0; k < l.Count; k++ {
			if _, err := s.provision(l.U, l.V, false); err != nil {
				break
			}
			built++
		}
		if built > 0 {
			sc.eff.Add(l.U, l.V, built)
		}
	}
	return sc.eff
}

// ProvisionEffectiveEnum realizes ls exactly like ProvisionEffective but
// hands back the effective (U, V)-sorted link enumeration instead of a
// LinkSet: the serial energy path consumes the result only through the
// allocator's ThroughputLinks, so building a Count map and patching a sorted
// view per effective link (LinkSet.Add) just to enumerate it straight back
// out was pure overhead — about 26µs per evaluation on the 200-site ISP.
// The returned slice lives in the State's scratch area and is valid until
// the next ProvisionEffective/ProvisionEffectiveEnum call on this State.
func (s *State) ProvisionEffectiveEnum(ls *topology.LinkSet) []topology.Link {
	sc := s.scratchBuf()
	sc.links = ls.AppendLinks(sc.links[:0])
	sc.effLinks = s.ProvisionEffectiveLinks(sc.links, sc.effLinks[:0])
	return sc.effLinks
}

// ProvisionEffectiveLinks is ProvisionEffective for callers that already
// hold the (U, V)-sorted enumeration of the requested topology: it provisions
// the same circuit sequence and appends the effective enumeration to effOut —
// exactly what AppendLinks of ProvisionEffective's result would yield — with
// no LinkSet walked on the way in or materialized on the way out. This is the
// cold-fallback path of the annealing delta evaluator, which evaluates
// candidates as merged enumerations without ever building them as LinkSets.
func (s *State) ProvisionEffectiveLinks(links []topology.Link, effOut []topology.Link) []topology.Link {
	s.Reset()
	for _, l := range links {
		built := 0
		for k := 0; k < l.Count; k++ {
			if _, err := s.provision(l.U, l.V, false); err != nil {
				break
			}
			built++
		}
		if built > 0 {
			effOut = append(effOut, topology.Link{U: l.U, V: l.V, Count: built})
		}
	}
	return effOut
}
