package optical

import (
	"sort"

	"owan/internal/topology"
)

// LinkCircuits records the circuits provisioned for one network-layer link.
type LinkCircuits struct {
	U, V     int
	Want     int   // requested parallel circuits
	Built    int   // circuits actually provisioned
	Circuits []int // circuit ids
}

// TopologyPlan is the result of realizing a network-layer topology in the
// optical layer: per-link circuit counts after applying wavelength, reach
// and regenerator constraints (Algorithm 3, lines 2–14 of the paper).
type TopologyPlan struct {
	Links []LinkCircuits
}

// Effective returns the effective link capacities (in circuits) as a
// LinkSet: the requested topology with capacities reduced where the optical
// layer could not satisfy them.
func (tp *TopologyPlan) Effective(n int) *topology.LinkSet {
	ls := topology.NewLinkSet(n)
	for _, lc := range tp.Links {
		if lc.Built > 0 {
			ls.Add(lc.U, lc.V, lc.Built)
		}
	}
	return ls
}

// TotalBuilt returns the number of circuits provisioned across all links.
func (tp *TopologyPlan) TotalBuilt() int {
	t := 0
	for _, lc := range tp.Links {
		t += lc.Built
	}
	return t
}

// ProvisionTopology provisions circuits for every link of the desired
// network-layer topology on a fresh optical state. Links are processed in
// deterministic sorted order. If the optical layer cannot supply all
// requested circuits for a link, the link's capacity is decreased (paper
// Alg 3 lines 13–14) rather than failing the whole topology.
//
// The state is Reset first: topology realization is evaluated from scratch,
// matching the stateless energy computation of the annealing search.
func (s *State) ProvisionTopology(ls *topology.LinkSet) *TopologyPlan {
	s.Reset()
	links := ls.Links()
	sort.Slice(links, func(i, j int) bool {
		if links[i].U != links[j].U {
			return links[i].U < links[j].U
		}
		return links[i].V < links[j].V
	})
	plan := &TopologyPlan{}
	for _, l := range links {
		lc := LinkCircuits{U: l.U, V: l.V, Want: l.Count}
		for k := 0; k < l.Count; k++ {
			c, err := s.Provision(l.U, l.V)
			if err != nil {
				break
			}
			lc.Built++
			lc.Circuits = append(lc.Circuits, c.ID)
		}
		plan.Links = append(plan.Links, lc)
	}
	return plan
}
