// Package topology models the two layers of a software-defined optical WAN:
// the physical (fiber) layer of sites, fibers, ROADM ports, and regenerator
// pools, and the network (packet) layer of router-to-router links realized
// by optical circuits.
//
// Builders are provided for the three evaluation topologies from the Owan
// paper: Internet2 (9 sites), a synthetic ISP backbone (~40 sites, irregular
// mesh), and an inter-datacenter WAN (~25 sites, super cores in a ring).
package topology

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"owan/internal/graph"
)

// Site is a point of presence: one ROADM, an optional router, a pool of
// regenerators, and a number of WAN-facing router ports.
type Site struct {
	ID           int
	Name         string
	RouterPorts  int // fp_v: router ports connected to ROADM add/drop ports
	Regenerators int // rg_v: pre-deployed regenerators
	HasRouter    bool
}

// Fiber is an undirected fiber pair between two sites carrying up to
// Wavelengths wavelengths in each direction.
type Fiber struct {
	ID          int
	A, B        int
	LengthKm    float64
	Wavelengths int // φ
}

// Network is the physical infrastructure plus the optical constants.
type Network struct {
	Name      string
	Sites     []Site
	Fibers    []Fiber
	ThetaGbps float64 // θ: capacity of one wavelength (== one circuit == one port)
	ReachKm   float64 // η: optical reach before regeneration is required
}

// NumSites returns the number of sites.
func (n *Network) NumSites() int { return len(n.Sites) }

// FiberGraph returns the fiber-layer graph weighted by fiber length. Edge
// IDs are fiber IDs.
func (n *Network) FiberGraph() *graph.Graph {
	g := graph.New(len(n.Sites))
	for _, f := range n.Fibers {
		g.AddUndirected(f.A, f.B, f.LengthKm, f.ID)
	}
	return g
}

// Validate checks structural invariants: fiber endpoints in range, positive
// lengths and wavelength counts, connectivity, and at least one router port
// per router site.
func (n *Network) Validate() error {
	for _, f := range n.Fibers {
		if f.A < 0 || f.A >= len(n.Sites) || f.B < 0 || f.B >= len(n.Sites) || f.A == f.B {
			return fmt.Errorf("fiber %d has bad endpoints (%d,%d)", f.ID, f.A, f.B)
		}
		if f.LengthKm <= 0 {
			return fmt.Errorf("fiber %d has nonpositive length", f.ID)
		}
		if f.Wavelengths <= 0 {
			return fmt.Errorf("fiber %d has nonpositive wavelength count", f.ID)
		}
	}
	if n.ThetaGbps <= 0 {
		return fmt.Errorf("theta must be positive, got %v", n.ThetaGbps)
	}
	if n.ReachKm <= 0 {
		return fmt.Errorf("optical reach must be positive, got %v", n.ReachKm)
	}
	if !n.FiberGraph().Connected() {
		return fmt.Errorf("fiber graph is not connected")
	}
	for _, s := range n.Sites {
		if s.HasRouter && s.RouterPorts <= 0 {
			return fmt.Errorf("site %s has a router but no WAN ports", s.Name)
		}
	}
	return nil
}

// TotalPorts returns the sum of WAN-facing router ports over all sites.
func (n *Network) TotalPorts() int {
	t := 0
	for _, s := range n.Sites {
		t += s.RouterPorts
	}
	return t
}

// LinkSet is a network-layer topology: a multiset of undirected router-to-
// router links, each carrying one circuit's worth of capacity (θ). The
// simulated-annealing search in internal/core uses LinkSet as its state.
type LinkSet struct {
	N     int
	Count map[[2]int]int
	// view is the (U, V)-sorted enumeration of Count, maintained
	// incrementally: built (with one sort) on the first AppendLinks and
	// patched in place by Add, so steady-state enumeration — the annealing
	// hot path keys and loads every candidate topology from it — is a plain
	// copy with no map walk and no sort. The sorted order over distinct
	// (U, V) keys is unique, so the view is byte-identical to a from-scratch
	// sort at all times (pinned by TestViewMatchesScratchSort). viewOK is
	// false until the view is built; mutations that bypass Add must
	// invalidate it (see Clear and UnmarshalJSON).
	view   []Link
	viewOK bool
}

// NewLinkSet returns an empty link multiset over n routers.
func NewLinkSet(n int) *LinkSet {
	return &LinkSet{N: n, Count: make(map[[2]int]int)}
}

func canon(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// Add inserts k parallel circuits between u and v.
func (ls *LinkSet) Add(u, v, k int) {
	if u == v {
		panic("topology: self link")
	}
	key := canon(u, v)
	c := ls.Count[key] + k
	if c < 0 {
		panic(fmt.Sprintf("topology: negative link count on %v", key))
	}
	if c == 0 {
		delete(ls.Count, key)
	} else {
		ls.Count[key] = c
	}
	if !ls.viewOK {
		return
	}
	// Patch the sorted view: binary-search the pair's slot, then update,
	// delete, or insert. The view stays exactly the (U, V)-sorted
	// enumeration of the map.
	i, found := slices.BinarySearchFunc(ls.view, Link{U: key[0], V: key[1]}, func(a, b Link) int {
		if a.U != b.U {
			return a.U - b.U
		}
		return a.V - b.V
	})
	switch {
	case found && c == 0:
		ls.view = append(ls.view[:i], ls.view[i+1:]...)
	case found:
		ls.view[i].Count = c
	case c != 0:
		ls.view = slices.Insert(ls.view, i, Link{U: key[0], V: key[1], Count: c})
	}
}

// Clear removes every link, retaining the map and view buffers. Mutating
// Count directly would desynchronize the sorted view; this is the supported
// way to empty a reused LinkSet (optical's effective-topology scratch does).
func (ls *LinkSet) Clear() {
	clear(ls.Count)
	ls.view = ls.view[:0]
	ls.viewOK = true
}

// Get returns the number of parallel circuits between u and v.
func (ls *LinkSet) Get(u, v int) int { return ls.Count[canon(u, v)] }

// Degree returns the total number of circuits incident to v (== router
// ports in use at v).
func (ls *LinkSet) Degree(v int) int {
	d := 0
	for key, c := range ls.Count {
		if key[0] == v || key[1] == v {
			d += c
		}
	}
	return d
}

// Clone returns a deep copy. A built sorted view is copied too: annealing
// neighbors clone and then apply a few Adds, so the clone's enumerations
// stay sort-free.
func (ls *LinkSet) Clone() *LinkSet {
	c := NewLinkSet(ls.N)
	for k, v := range ls.Count {
		c.Count[k] = v
	}
	if ls.viewOK {
		c.view = append([]Link(nil), ls.view...)
		c.viewOK = true
	}
	return c
}

// CopyFrom makes ls an exact copy of src, reusing ls's map and view
// storage: the allocation-free Clone behind the core package's candidate
// recycling pool. The sorted-view state carries over exactly, so a recycled
// copy enumerates byte-identically to a fresh Clone.
func (ls *LinkSet) CopyFrom(src *LinkSet) {
	ls.N = src.N
	clear(ls.Count)
	for k, v := range src.Count {
		ls.Count[k] = v
	}
	ls.view = append(ls.view[:0], src.view...)
	ls.viewOK = src.viewOK
}

// Link is one aggregated network-layer adjacency with its circuit count.
type Link struct {
	U, V  int
	Count int
}

// Links returns the aggregated links in deterministic order, sorted by
// (U, V) ascending.
//
// Ownership contract: the returned slice is freshly allocated on every call
// and owned by the caller, who may sort, truncate, or otherwise mutate it
// freely without affecting the LinkSet or any other caller
// (optical.ProvisionTopology relies on this when it orders the links it
// provisions). Callers on an allocation-sensitive path should use
// AppendLinks with a reused buffer instead.
func (ls *LinkSet) Links() []Link {
	return ls.AppendLinks(make([]Link, 0, len(ls.Count)))
}

// AppendLinks appends the aggregated links to buf in the same deterministic
// (U, V)-sorted order as Links and returns the extended slice. Passing
// buf[:0] of a retained buffer makes the enumeration allocation-free once
// the buffer has grown to the topology's link count, which is what the flat
// allocators in internal/alloc and internal/optical rely on in the
// annealing energy hot path. The first call builds the sorted view (one map
// walk and one sort); every later call — and every call on a Clone, however
// many Adds happened in between — is a plain copy.
func (ls *LinkSet) AppendLinks(buf []Link) []Link {
	if !ls.viewOK {
		ls.view = ls.view[:0]
		for k, c := range ls.Count {
			ls.view = append(ls.view, Link{U: k[0], V: k[1], Count: c})
		}
		slices.SortFunc(ls.view, func(a, b Link) int {
			if a.U != b.U {
				return a.U - b.U
			}
			return a.V - b.V
		})
		ls.viewOK = true
	}
	return append(buf, ls.view...)
}

// TotalCircuits returns the number of circuits summed over all links.
func (ls *LinkSet) TotalCircuits() int {
	t := 0
	for _, c := range ls.Count {
		t += c
	}
	return t
}

// Graph returns the network-layer graph with one edge per adjacency (not
// per circuit) and unit weights; edge IDs index into Links().
func (ls *LinkSet) Graph() *graph.Graph {
	g := graph.New(ls.N)
	for i, l := range ls.Links() {
		g.AddUndirected(l.U, l.V, 1, i)
	}
	return g
}

// Equal reports whether two link sets contain exactly the same multiset.
func (ls *LinkSet) Equal(o *LinkSet) bool {
	if ls.N != o.N || len(ls.Count) != len(o.Count) {
		return false
	}
	for k, v := range ls.Count {
		if o.Count[k] != v {
			return false
		}
	}
	return true
}

// Diff returns the number of circuit additions plus removals needed to turn
// ls into o. This is the "optical churn" a reconfiguration would incur.
func (ls *LinkSet) Diff(o *LinkSet) int {
	d := 0
	seen := map[[2]int]bool{}
	for k, v := range ls.Count {
		seen[k] = true
		d += abs(v - o.Count[k])
	}
	for k, v := range o.Count {
		if !seen[k] {
			d += v
		}
	}
	return d
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// PortViolations counts circuits exceeding any site's port budget.
func (ls *LinkSet) PortViolations(net *Network) int {
	v := 0
	for i, s := range net.Sites {
		if d := ls.Degree(i); d > s.RouterPorts {
			v += d - s.RouterPorts
		}
	}
	return v
}

// CircuitLengthKm returns the shortest fiber-path length between two sites,
// or +Inf if disconnected. It is the minimum unregenerated span a circuit
// between them would need.
func (n *Network) CircuitLengthKm(u, v int) float64 {
	d := n.FiberGraph().ShortestDistances(u)
	return d[v]
}

// PlaceRegenerators greedily selects regenerator concentration sites and
// assigns pools of the given size so that between any two sites there is a
// path in the "reach graph" (sites within optical reach of each other via
// shortest fiber paths) that only stops at concentration sites. This follows
// the regenerator-site-concentration practice the paper cites (Bathula et
// al.): operators pre-deploy regenerators at a few hub sites.
//
// Sites are considered in decreasing fiber-degree order (hubs first); a site
// is added until the reach property holds for all pairs.
func (n *Network) PlaceRegenerators(poolSize int) {
	ns := len(n.Sites)
	fg := n.FiberGraph()
	// dist[i][j]: shortest fiber distance.
	dist := make([][]float64, ns)
	for i := 0; i < ns; i++ {
		dist[i] = fg.ShortestDistances(i)
	}
	deg := make([]int, ns)
	for _, f := range n.Fibers {
		deg[f.A]++
		deg[f.B]++
	}
	order := make([]int, ns)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if deg[order[a]] != deg[order[b]] {
			return deg[order[a]] > deg[order[b]]
		}
		return order[a] < order[b]
	})

	for i := range n.Sites {
		n.Sites[i].Regenerators = 0
	}
	// reachable reports whether all pairs can be connected stopping only at
	// the chosen concentration sites.
	reachOK := func(chosen map[int]bool) bool {
		// Build reach graph over all sites, but intermediate hops must be
		// chosen sites. Check pairwise via BFS allowing only chosen interior
		// nodes.
		for s := 0; s < ns; s++ {
			visited := make([]bool, ns)
			queue := []int{s}
			visited[s] = true
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for w := 0; w < ns; w++ {
					if visited[w] || dist[v][w] > n.ReachKm {
						continue
					}
					visited[w] = true
					if chosen[w] { // may continue through a regenerator site
						queue = append(queue, w)
					}
				}
			}
			for tgt := 0; tgt < ns; tgt++ {
				if !visited[tgt] {
					return false
				}
			}
		}
		return true
	}

	chosen := map[int]bool{}
	if !reachOK(chosen) {
		for _, cand := range order {
			chosen[cand] = true
			if reachOK(chosen) {
				break
			}
		}
	}
	for s := range chosen {
		n.Sites[s].Regenerators = poolSize
	}
}

// MaxFiberKm returns the longest single fiber span.
func (n *Network) MaxFiberKm() float64 {
	m := 0.0
	for _, f := range n.Fibers {
		m = math.Max(m, f.LengthKm)
	}
	return m
}
