package topology

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNetworkJSONRoundTrip(t *testing.T) {
	for _, n := range []*Network{Internet2(15), ISP(25, 8, 3), InterDC(20, 5, 6, 4), Square()} {
		var buf bytes.Buffer
		if _, err := n.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadNetwork(&buf)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if back.Name != n.Name || back.ThetaGbps != n.ThetaGbps || back.ReachKm != n.ReachKm {
			t.Errorf("%s: header mismatch", n.Name)
		}
		if len(back.Sites) != len(n.Sites) || len(back.Fibers) != len(n.Fibers) {
			t.Fatalf("%s: size mismatch", n.Name)
		}
		for i := range n.Sites {
			if back.Sites[i] != n.Sites[i] {
				t.Errorf("%s: site %d: %+v != %+v", n.Name, i, back.Sites[i], n.Sites[i])
			}
		}
		for i := range n.Fibers {
			if back.Fibers[i] != n.Fibers[i] {
				t.Errorf("%s: fiber %d differs", n.Name, i)
			}
		}
	}
}

func TestReadNetworkValidates(t *testing.T) {
	// Disconnected network must be rejected on read.
	bad := `{"name":"x","theta_gbps":10,"reach_km":2000,
	  "sites":[{"name":"a","router_ports":2},{"name":"b","router_ports":2},{"name":"c","router_ports":2}],
	  "fibers":[{"a":0,"b":1,"length_km":100,"wavelengths":8}]}`
	if _, err := ReadNetwork(strings.NewReader(bad)); err == nil {
		t.Error("disconnected network accepted")
	}
	if _, err := ReadNetwork(strings.NewReader("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestLinkSetJSONRoundTrip(t *testing.T) {
	ls := NewLinkSet(5)
	ls.Add(0, 1, 2)
	ls.Add(3, 4, 1)
	ls.Add(1, 2, 3)
	b, err := json.Marshal(ls)
	if err != nil {
		t.Fatal(err)
	}
	back := new(LinkSet)
	if err := json.Unmarshal(b, back); err != nil {
		t.Fatal(err)
	}
	if !ls.Equal(back) {
		t.Errorf("round trip mismatch: %v vs %v", ls.Links(), back.Links())
	}
}

func TestLinkSetJSONRejectsBad(t *testing.T) {
	for _, bad := range []string{
		`{"n":3,"links":[{"u":0,"v":0,"count":1}]}`,  // self link
		`{"n":3,"links":[{"u":0,"v":5,"count":1}]}`,  // out of range
		`{"n":3,"links":[{"u":0,"v":1,"count":-2}]}`, // negative count
	} {
		ls := new(LinkSet)
		if err := json.Unmarshal([]byte(bad), ls); err == nil {
			t.Errorf("accepted %s", bad)
		}
	}
}
