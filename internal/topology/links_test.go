package topology

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
)

// TestLinksOwnership pins the Links ownership contract: every call returns a
// fresh slice the caller may reorder or mutate without affecting the LinkSet
// or later calls (optical.ProvisionTopology historically sorted the result
// in place, which would corrupt a shared slice).
func TestLinksOwnership(t *testing.T) {
	ls := NewLinkSet(5)
	ls.Add(0, 1, 2)
	ls.Add(1, 3, 1)
	ls.Add(2, 4, 3)

	a := ls.Links()
	// Mutate the returned slice aggressively.
	sort.Slice(a, func(i, j int) bool { return a[i].V > a[j].V })
	for i := range a {
		a[i].U, a[i].V, a[i].Count = 99, 99, 99
	}

	b := ls.Links()
	if len(b) != 3 {
		t.Fatalf("second Links() call has %d links, want 3", len(b))
	}
	want := []Link{{U: 0, V: 1, Count: 2}, {U: 1, V: 3, Count: 1}, {U: 2, V: 4, Count: 3}}
	for i, l := range b {
		if l != want[i] {
			t.Errorf("link %d = %+v after mutating a prior result, want %+v", i, l, want[i])
		}
	}
	if ls.Get(0, 1) != 2 || ls.Get(1, 3) != 1 || ls.Get(2, 4) != 3 {
		t.Error("mutating a Links() result changed the LinkSet")
	}
}

// TestLinksSorted pins the (U, V)-sorted enumeration order that both the
// optical provisioning order and the flat allocator's edge-id minting rely
// on for determinism.
func TestLinksSorted(t *testing.T) {
	ls := NewLinkSet(6)
	// Insert in scrambled order; Links must still come out sorted.
	ls.Add(4, 5, 1)
	ls.Add(0, 3, 1)
	ls.Add(2, 3, 1)
	ls.Add(0, 1, 1)
	ls.Add(1, 5, 1)
	out := ls.Links()
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		if a.U > b.U || (a.U == b.U && a.V >= b.V) {
			t.Fatalf("links not (U,V)-sorted: %+v before %+v", a, b)
		}
	}
}

// TestAppendLinksReusesBuffer documents AppendLinks: it appends onto the
// given buffer (sorting only the appended region) so hot-path callers can
// amortize the slice.
func TestAppendLinksReusesBuffer(t *testing.T) {
	ls := NewLinkSet(4)
	ls.Add(2, 3, 1)
	ls.Add(0, 1, 2)

	buf := make([]Link, 0, 8)
	out := ls.AppendLinks(buf)
	if len(out) != 2 || &out[0] != &buf[:1][0] {
		t.Fatal("AppendLinks should append into the provided buffer")
	}
	// Reuse with truncation, as the allocator does.
	out2 := ls.AppendLinks(out[:0])
	if len(out2) != 2 || out2[0] != (Link{U: 0, V: 1, Count: 2}) || out2[1] != (Link{U: 2, V: 3, Count: 1}) {
		t.Fatalf("AppendLinks reuse produced %+v", out2)
	}
	// Appending after a prefix leaves the prefix untouched and sorts only
	// the new region.
	prefix := []Link{{U: 9, V: 9, Count: 9}}
	out3 := ls.AppendLinks(prefix)
	if out3[0] != (Link{U: 9, V: 9, Count: 9}) {
		t.Fatalf("AppendLinks disturbed the existing prefix: %+v", out3)
	}
	if out3[1] != (Link{U: 0, V: 1, Count: 2}) || out3[2] != (Link{U: 2, V: 3, Count: 1}) {
		t.Fatalf("AppendLinks appended region wrong: %+v", out3[1:])
	}
}

// scratchSorted builds the enumeration the pre-view way — a full map walk
// plus a from-scratch sort — bypassing the incremental sorted view entirely.
// It is the reference TestViewMatchesScratchSort compares against.
func scratchSorted(ls *LinkSet) []Link {
	out := make([]Link, 0, len(ls.Count))
	for k, c := range ls.Count {
		out = append(out, Link{U: k[0], V: k[1], Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// TestViewMatchesScratchSort is the property the incrementally patched view
// rides on (see the LinkSet.view comment): after ANY sequence of mutations —
// inserts, count updates, removals down to zero, Clear, Clone, JSON
// round-trips that replace the map wholesale — the view-backed enumeration is
// element-identical to a from-scratch sort of the Count map. The check runs
// after every operation, so a patch that desynchronizes the view is caught at
// the operation that broke it, not at the end of the walk.
func TestViewMatchesScratchSort(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 60
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) + 7700))
		n := 4 + rng.Intn(90)
		ls := NewLinkSet(n)
		if rng.Intn(2) == 0 {
			ls.Links() // half the walks patch the view from the very start
		}
		for op := 0; op < 80; op++ {
			switch r := rng.Float64(); {
			case r < 0.50: // insert or bump
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				ls.Add(u, v, 1+rng.Intn(3))
			case r < 0.72: // decrement, sometimes down to removal
				links := scratchSorted(ls)
				if len(links) == 0 {
					continue
				}
				l := links[rng.Intn(len(links))]
				ls.Add(l.U, l.V, -(1 + rng.Intn(l.Count)))
			case r < 0.78:
				ls.Clear()
			case r < 0.85: // continue the walk on a clone; the original must
				// be unaffected by everything that follows
				c := ls.Clone()
				frozen := scratchSorted(ls)
				old := ls
				ls = c
				defer func(old *LinkSet, frozen []Link, seed int) {
					got := old.AppendLinks(nil)
					if len(got) != len(frozen) {
						t.Errorf("seed %d: clone mutations leaked into original (len %d != %d)",
							seed, len(got), len(frozen))
						return
					}
					for i := range got {
						if got[i] != frozen[i] {
							t.Errorf("seed %d: clone mutations leaked into original at %d: %+v != %+v",
								seed, i, got[i], frozen[i])
							return
						}
					}
				}(old, frozen, seed)
			case r < 0.92: // JSON round-trip replaces the map wholesale and
				// must invalidate the view
				data, err := json.Marshal(ls)
				if err != nil {
					t.Fatalf("seed %d op %d: marshal: %v", seed, op, err)
				}
				if err := json.Unmarshal(data, ls); err != nil {
					t.Fatalf("seed %d op %d: unmarshal: %v", seed, op, err)
				}
			default:
				ls.Links() // build or exercise the view mid-walk
			}
			want := scratchSorted(ls)
			got := ls.AppendLinks(nil)
			if len(got) != len(want) {
				t.Fatalf("seed %d op %d: view has %d links, scratch sort %d",
					seed, op, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d op %d: view[%d] = %+v, scratch sort %+v",
						seed, op, i, got[i], want[i])
				}
			}
		}
	}
}
