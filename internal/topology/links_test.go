package topology

import (
	"sort"
	"testing"
)

// TestLinksOwnership pins the Links ownership contract: every call returns a
// fresh slice the caller may reorder or mutate without affecting the LinkSet
// or later calls (optical.ProvisionTopology historically sorted the result
// in place, which would corrupt a shared slice).
func TestLinksOwnership(t *testing.T) {
	ls := NewLinkSet(5)
	ls.Add(0, 1, 2)
	ls.Add(1, 3, 1)
	ls.Add(2, 4, 3)

	a := ls.Links()
	// Mutate the returned slice aggressively.
	sort.Slice(a, func(i, j int) bool { return a[i].V > a[j].V })
	for i := range a {
		a[i].U, a[i].V, a[i].Count = 99, 99, 99
	}

	b := ls.Links()
	if len(b) != 3 {
		t.Fatalf("second Links() call has %d links, want 3", len(b))
	}
	want := []Link{{U: 0, V: 1, Count: 2}, {U: 1, V: 3, Count: 1}, {U: 2, V: 4, Count: 3}}
	for i, l := range b {
		if l != want[i] {
			t.Errorf("link %d = %+v after mutating a prior result, want %+v", i, l, want[i])
		}
	}
	if ls.Get(0, 1) != 2 || ls.Get(1, 3) != 1 || ls.Get(2, 4) != 3 {
		t.Error("mutating a Links() result changed the LinkSet")
	}
}

// TestLinksSorted pins the (U, V)-sorted enumeration order that both the
// optical provisioning order and the flat allocator's edge-id minting rely
// on for determinism.
func TestLinksSorted(t *testing.T) {
	ls := NewLinkSet(6)
	// Insert in scrambled order; Links must still come out sorted.
	ls.Add(4, 5, 1)
	ls.Add(0, 3, 1)
	ls.Add(2, 3, 1)
	ls.Add(0, 1, 1)
	ls.Add(1, 5, 1)
	out := ls.Links()
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		if a.U > b.U || (a.U == b.U && a.V >= b.V) {
			t.Fatalf("links not (U,V)-sorted: %+v before %+v", a, b)
		}
	}
}

// TestAppendLinksReusesBuffer documents AppendLinks: it appends onto the
// given buffer (sorting only the appended region) so hot-path callers can
// amortize the slice.
func TestAppendLinksReusesBuffer(t *testing.T) {
	ls := NewLinkSet(4)
	ls.Add(2, 3, 1)
	ls.Add(0, 1, 2)

	buf := make([]Link, 0, 8)
	out := ls.AppendLinks(buf)
	if len(out) != 2 || &out[0] != &buf[:1][0] {
		t.Fatal("AppendLinks should append into the provided buffer")
	}
	// Reuse with truncation, as the allocator does.
	out2 := ls.AppendLinks(out[:0])
	if len(out2) != 2 || out2[0] != (Link{U: 0, V: 1, Count: 2}) || out2[1] != (Link{U: 2, V: 3, Count: 1}) {
		t.Fatalf("AppendLinks reuse produced %+v", out2)
	}
	// Appending after a prefix leaves the prefix untouched and sorts only
	// the new region.
	prefix := []Link{{U: 9, V: 9, Count: 9}}
	out3 := ls.AppendLinks(prefix)
	if out3[0] != (Link{U: 9, V: 9, Count: 9}) {
		t.Fatalf("AppendLinks disturbed the existing prefix: %+v", out3)
	}
	if out3[1] != (Link{U: 0, V: 1, Count: 2}) || out3[2] != (Link{U: 2, V: 3, Count: 1}) {
		t.Fatalf("AppendLinks appended region wrong: %+v", out3[1:])
	}
}
