package topology

import (
	"math"
	"math/rand"
	"sort"
)

// Defaults for the optical constants (paper §2.1 and §5.1).
const (
	DefaultThetaGbps   = 10.0   // one wavelength / one router port
	DefaultWavelengths = 80     // φ per fiber pair
	DefaultReachKm     = 2000.0 // η
	DefaultRegenPool   = 8      // regenerators per concentration site
)

// internet2Site pairs a name with approximate great-circle neighbor
// distances; the 9-site Internet2 layer-1 footprint from Figure 1.
var internet2Names = []string{
	"SEAT", "LOSA", "SALT", "KANS", "HOUS", "CHIC", "ATLA", "WASH", "NEWY",
}

type fiberSpec struct {
	a, b string
	km   float64
}

var internet2Fibers = []fiberSpec{
	{"SEAT", "SALT", 1130},
	{"SEAT", "LOSA", 1540},
	{"LOSA", "SALT", 930},
	{"LOSA", "HOUS", 2200},
	{"SALT", "KANS", 1480},
	{"KANS", "HOUS", 1180},
	{"KANS", "CHIC", 660},
	{"HOUS", "ATLA", 1130},
	{"CHIC", "ATLA", 950},
	{"CHIC", "NEWY", 1150},
	{"ATLA", "WASH", 870},
	{"WASH", "NEWY", 330},
}

// Internet2 builds the 9-site Internet2 topology used by the paper's testbed
// (Figure 1). ports is the number of WAN-facing router ports per site (the
// testbed uses 15 transceivers; simulations typically use 8–16).
func Internet2(ports int) *Network {
	idx := map[string]int{}
	n := &Network{
		Name:      "internet2",
		ThetaGbps: DefaultThetaGbps,
		ReachKm:   DefaultReachKm,
	}
	for i, name := range internet2Names {
		idx[name] = i
		n.Sites = append(n.Sites, Site{ID: i, Name: name, RouterPorts: ports, HasRouter: true})
	}
	for i, f := range internet2Fibers {
		n.Fibers = append(n.Fibers, Fiber{
			ID: i, A: idx[f.a], B: idx[f.b], LengthKm: f.km, Wavelengths: DefaultWavelengths,
		})
	}
	n.PlaceRegenerators(DefaultRegenPool)
	return n
}

// ISP builds a synthetic ISP backbone of about 40 sites connected in an
// irregular mesh, the shape the paper describes for its ISP simulations. The
// construction is deterministic for a given seed: sites are scattered on a
// 4000x2500 km plane, connected by a spanning structure plus extra short
// edges until the average degree is ~3.2.
func ISP(sites, ports int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	n := &Network{
		Name:      "isp",
		ThetaGbps: DefaultThetaGbps,
		ReachKm:   DefaultReachKm,
	}
	type pt struct{ x, y float64 }
	pos := make([]pt, sites)
	for i := 0; i < sites; i++ {
		pos[i] = pt{rng.Float64() * 4000, rng.Float64() * 2500}
		n.Sites = append(n.Sites, Site{ID: i, Name: ispName(i), RouterPorts: ports, HasRouter: true})
	}
	dist := func(a, b int) float64 {
		dx, dy := pos[a].x-pos[b].x, pos[a].y-pos[b].y
		d := dx*dx + dy*dy
		// Fiber routes are never straight lines; apply a 1.3 routing factor.
		return 1.3 * math.Sqrt(d)
	}
	// Greedy spanning tree by nearest neighbor (Prim) for connectivity.
	inTree := make([]bool, sites)
	inTree[0] = true
	fid := 0
	added := map[[2]int]bool{}
	addFiber := func(a, b int) {
		key := [2]int{min(a, b), max(a, b)}
		if added[key] {
			return
		}
		added[key] = true
		n.Fibers = append(n.Fibers, Fiber{ID: fid, A: a, B: b, LengthKm: math.Max(50, dist(a, b)), Wavelengths: DefaultWavelengths})
		fid++
	}
	for count := 1; count < sites; count++ {
		bi, bj, bd := -1, -1, 1e18
		for i := 0; i < sites; i++ {
			if !inTree[i] {
				continue
			}
			for j := 0; j < sites; j++ {
				if inTree[j] {
					continue
				}
				if d := dist(i, j); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		inTree[bj] = true
		addFiber(bi, bj)
	}
	// Add short extra edges until average degree reaches ~3.2.
	type cand struct {
		a, b int
		d    float64
	}
	var cands []cand
	for i := 0; i < sites; i++ {
		for j := i + 1; j < sites; j++ {
			if !added[[2]int{i, j}] {
				cands = append(cands, cand{i, j, dist(i, j)})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	target := int(3.2 * float64(sites) / 2)
	for _, c := range cands {
		if len(n.Fibers) >= target {
			break
		}
		addFiber(c.a, c.b)
	}
	n.PlaceRegenerators(DefaultRegenPool)
	return n
}

// InterDC builds the inter-datacenter topology the paper describes: a few
// "super core" sites connected in a ring, each smaller site dual-homed to
// two super cores. sites includes the superCores.
func InterDC(sites, superCores, ports int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	n := &Network{
		Name:      "interdc",
		ThetaGbps: DefaultThetaGbps,
		ReachKm:   DefaultReachKm,
	}
	for i := 0; i < sites; i++ {
		name := dcName(i, superCores)
		p := ports
		if i < superCores {
			p = ports * 3 // super cores have bigger routers
		}
		n.Sites = append(n.Sites, Site{ID: i, Name: name, RouterPorts: p, HasRouter: true})
	}
	fid := 0
	addFiber := func(a, b int, km float64) {
		n.Fibers = append(n.Fibers, Fiber{ID: fid, A: a, B: b, LengthKm: km, Wavelengths: DefaultWavelengths})
		fid++
	}
	// Super-core ring.
	for i := 0; i < superCores; i++ {
		addFiber(i, (i+1)%superCores, 800+rng.Float64()*800)
	}
	// Each leaf dual-homed to two consecutive super cores.
	for i := superCores; i < sites; i++ {
		h := rng.Intn(superCores)
		addFiber(i, h, 200+rng.Float64()*600)
		addFiber(i, (h+1)%superCores, 200+rng.Float64()*600)
	}
	n.PlaceRegenerators(DefaultRegenPool)
	return n
}

// Square builds the 4-router example network from the paper's §2.2
// motivating example: R0..R3 in a cycle, 2 ports each, one wavelength of 10
// units per port.
func Square() *Network {
	n := &Network{
		Name:      "square",
		ThetaGbps: 10,
		ReachKm:   DefaultReachKm,
	}
	for i := 0; i < 4; i++ {
		n.Sites = append(n.Sites, Site{ID: i, Name: squareNames[i], RouterPorts: 2, HasRouter: true})
	}
	fibers := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}
	for i, f := range fibers {
		n.Fibers = append(n.Fibers, Fiber{ID: i, A: f[0], B: f[1], LengthKm: 500, Wavelengths: 4})
	}
	n.PlaceRegenerators(DefaultRegenPool)
	return n
}

var squareNames = [4]string{"R0", "R1", "R2", "R3"}

// InitialTopology builds a network-layer starting topology by spreading each
// site's router ports across its fiber-adjacent neighbors round-robin. This
// mirrors operational practice: the IP topology initially follows the fiber
// map. The result respects per-site port budgets.
func InitialTopology(n *Network) *LinkSet {
	ls := NewLinkSet(len(n.Sites))
	free := make([]int, len(n.Sites))
	for i, s := range n.Sites {
		free[i] = s.RouterPorts
	}
	neighbors := make([][]int, len(n.Sites))
	for _, f := range n.Fibers {
		neighbors[f.A] = append(neighbors[f.A], f.B)
		neighbors[f.B] = append(neighbors[f.B], f.A)
	}
	for i := range neighbors {
		sort.Ints(neighbors[i])
	}
	// Phase 1: one circuit per fiber adjacency (in fiber order) so the
	// network layer starts out mirroring the fiber map and is connected.
	for _, f := range n.Fibers {
		if free[f.A] > 0 && free[f.B] > 0 && ls.Get(f.A, f.B) == 0 {
			ls.Add(f.A, f.B, 1)
			free[f.A]--
			free[f.B]--
		}
	}
	// Phase 2: repeatedly sweep sites, adding one circuit to the next
	// neighbor with a free port, until no more circuits can be placed.
	next := make([]int, len(n.Sites))
	progress := true
	for progress {
		progress = false
		for v := 0; v < len(n.Sites); v++ {
			if free[v] == 0 || len(neighbors[v]) == 0 {
				continue
			}
			for try := 0; try < len(neighbors[v]); try++ {
				w := neighbors[v][next[v]%len(neighbors[v])]
				next[v]++
				if w != v && free[w] > 0 {
					ls.Add(v, w, 1)
					free[v]--
					free[w]--
					progress = true
					break
				}
			}
		}
	}
	return ls
}

func ispName(i int) string {
	return "POP" + itoa(i)
}

func dcName(i, superCores int) string {
	if i < superCores {
		return "CORE" + itoa(i)
	}
	return "DC" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// RandomTopology builds a random network-layer topology respecting every
// site's port budget via the configuration model: each port becomes a stub,
// stubs are shuffled and paired. Self-pairs are skipped. Used by the
// cold-start ablation of the annealing search.
func RandomTopology(n *Network, seed int64) *LinkSet {
	rng := rand.New(rand.NewSource(seed))
	var stubs []int
	for i, s := range n.Sites {
		for p := 0; p < s.RouterPorts; p++ {
			stubs = append(stubs, i)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	ls := NewLinkSet(len(n.Sites))
	for i := 0; i+1 < len(stubs); i += 2 {
		if stubs[i] != stubs[i+1] {
			ls.Add(stubs[i], stubs[i+1], 1)
		}
	}
	return ls
}
