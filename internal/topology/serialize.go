package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// wireNetwork is the JSON representation of a Network.
type wireNetwork struct {
	Name      string      `json:"name"`
	ThetaGbps float64     `json:"theta_gbps"`
	ReachKm   float64     `json:"reach_km"`
	Sites     []wireSite  `json:"sites"`
	Fibers    []wireFiber `json:"fibers"`
}

type wireSite struct {
	Name         string `json:"name"`
	RouterPorts  int    `json:"router_ports"`
	Regenerators int    `json:"regenerators,omitempty"`
	NoRouter     bool   `json:"no_router,omitempty"`
}

type wireFiber struct {
	A           int     `json:"a"`
	B           int     `json:"b"`
	LengthKm    float64 `json:"length_km"`
	Wavelengths int     `json:"wavelengths"`
}

// MarshalJSON implements json.Marshaler for Network, producing a stable,
// human-editable format (site and fiber ids are positional).
func (n *Network) MarshalJSON() ([]byte, error) {
	w := wireNetwork{Name: n.Name, ThetaGbps: n.ThetaGbps, ReachKm: n.ReachKm}
	for _, s := range n.Sites {
		w.Sites = append(w.Sites, wireSite{
			Name: s.Name, RouterPorts: s.RouterPorts,
			Regenerators: s.Regenerators, NoRouter: !s.HasRouter,
		})
	}
	for _, f := range n.Fibers {
		w.Fibers = append(w.Fibers, wireFiber{
			A: f.A, B: f.B, LengthKm: f.LengthKm, Wavelengths: f.Wavelengths,
		})
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler for Network.
func (n *Network) UnmarshalJSON(b []byte) error {
	var w wireNetwork
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	n.Name = w.Name
	n.ThetaGbps = w.ThetaGbps
	n.ReachKm = w.ReachKm
	n.Sites = nil
	n.Fibers = nil
	for i, s := range w.Sites {
		n.Sites = append(n.Sites, Site{
			ID: i, Name: s.Name, RouterPorts: s.RouterPorts,
			Regenerators: s.Regenerators, HasRouter: !s.NoRouter,
		})
	}
	for i, f := range w.Fibers {
		n.Fibers = append(n.Fibers, Fiber{
			ID: i, A: f.A, B: f.B, LengthKm: f.LengthKm, Wavelengths: f.Wavelengths,
		})
	}
	return nil
}

// WriteTo serializes the network as indented JSON.
func (n *Network) WriteTo(w io.Writer) (int64, error) {
	b, err := json.MarshalIndent(n, "", "  ")
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	m, err := w.Write(b)
	return int64(m), err
}

// ReadNetwork parses and validates a JSON network description.
func ReadNetwork(r io.Reader) (*Network, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	n := new(Network)
	if err := json.Unmarshal(b, n); err != nil {
		return nil, fmt.Errorf("topology: parse network: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// wireLinkSet is the JSON form of a LinkSet.
type wireLinkSet struct {
	N     int        `json:"n"`
	Links []wireLink `json:"links"`
}

type wireLink struct {
	U     int `json:"u"`
	V     int `json:"v"`
	Count int `json:"count"`
}

// MarshalJSON implements json.Marshaler for LinkSet with deterministic
// link ordering.
func (ls *LinkSet) MarshalJSON() ([]byte, error) {
	w := wireLinkSet{N: ls.N}
	for _, l := range ls.Links() {
		w.Links = append(w.Links, wireLink{U: l.U, V: l.V, Count: l.Count})
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler for LinkSet.
func (ls *LinkSet) UnmarshalJSON(b []byte) error {
	var w wireLinkSet
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	ls.N = w.N
	ls.Count = make(map[[2]int]int, len(w.Links))
	ls.view, ls.viewOK = ls.view[:0], false // the map was replaced wholesale
	for _, l := range w.Links {
		if l.U < 0 || l.U >= w.N || l.V < 0 || l.V >= w.N || l.U == l.V || l.Count <= 0 {
			return fmt.Errorf("topology: bad link %+v", l)
		}
		ls.Add(l.U, l.V, l.Count)
	}
	return nil
}
