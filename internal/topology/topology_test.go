package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInternet2Valid(t *testing.T) {
	n := Internet2(15)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.NumSites() != 9 {
		t.Errorf("sites = %d, want 9", n.NumSites())
	}
	if len(n.Fibers) != 12 {
		t.Errorf("fibers = %d, want 12", len(n.Fibers))
	}
	if n.TotalPorts() != 9*15 {
		t.Errorf("ports = %d", n.TotalPorts())
	}
}

func TestISPValid(t *testing.T) {
	n := ISP(40, 10, 1)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.NumSites() != 40 {
		t.Errorf("sites = %d", n.NumSites())
	}
	avgDeg := 2 * float64(len(n.Fibers)) / float64(n.NumSites())
	if avgDeg < 2.5 || avgDeg > 4.5 {
		t.Errorf("average fiber degree = %v, want irregular mesh ~3.2", avgDeg)
	}
}

func TestISPDeterministic(t *testing.T) {
	a, b := ISP(40, 10, 7), ISP(40, 10, 7)
	if len(a.Fibers) != len(b.Fibers) {
		t.Fatal("fiber count differs across identical seeds")
	}
	for i := range a.Fibers {
		if a.Fibers[i] != b.Fibers[i] {
			t.Fatalf("fiber %d differs: %+v vs %+v", i, a.Fibers[i], b.Fibers[i])
		}
	}
}

func TestInterDCValid(t *testing.T) {
	n := InterDC(25, 5, 8, 2)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// Super cores have triple ports.
	if n.Sites[0].RouterPorts != 24 || n.Sites[10].RouterPorts != 8 {
		t.Errorf("super-core/leaf ports = %d/%d", n.Sites[0].RouterPorts, n.Sites[10].RouterPorts)
	}
	// Leaves are dual homed: 2 fibers each; ring has superCores fibers.
	if want := 5 + 2*20; len(n.Fibers) != want {
		t.Errorf("fibers = %d, want %d", len(n.Fibers), want)
	}
}

func TestSquareValid(t *testing.T) {
	n := Square()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRegeneratorPlacementCoversReach(t *testing.T) {
	n := Internet2(15)
	// With 2000 km reach and the longest path SEAT->NEWY, some pairs exceed
	// reach so at least one concentration site must exist.
	total := 0
	for _, s := range n.Sites {
		total += s.Regenerators
	}
	if total == 0 {
		t.Error("no regenerators placed although some site pairs exceed optical reach")
	}
}

func TestCircuitLength(t *testing.T) {
	n := Internet2(15)
	// WASH-NEWY direct fiber is 330 km.
	if got := n.CircuitLengthKm(7, 8); got != 330 {
		t.Errorf("WASH-NEWY = %v, want 330", got)
	}
	// SEAT->NEWY must be over 2000 km (cross country).
	if got := n.CircuitLengthKm(0, 8); got < 2000 {
		t.Errorf("SEAT-NEWY = %v, want > 2000", got)
	}
}

func TestLinkSetBasics(t *testing.T) {
	ls := NewLinkSet(4)
	ls.Add(0, 1, 2)
	ls.Add(1, 0, 1) // canonicalized onto the same key
	if ls.Get(0, 1) != 3 || ls.Get(1, 0) != 3 {
		t.Errorf("get = %d, want 3", ls.Get(0, 1))
	}
	if ls.Degree(0) != 3 || ls.Degree(1) != 3 || ls.Degree(2) != 0 {
		t.Errorf("degrees = %d %d %d", ls.Degree(0), ls.Degree(1), ls.Degree(2))
	}
	ls.Add(0, 1, -3)
	if ls.Get(0, 1) != 0 {
		t.Errorf("after removal get = %d", ls.Get(0, 1))
	}
	if len(ls.Count) != 0 {
		t.Error("zero-count key not deleted")
	}
}

func TestLinkSetCloneIndependent(t *testing.T) {
	ls := NewLinkSet(3)
	ls.Add(0, 1, 2)
	c := ls.Clone()
	c.Add(0, 1, 5)
	if ls.Get(0, 1) != 2 {
		t.Error("clone mutated original")
	}
	if !ls.Equal(ls.Clone()) {
		t.Error("clone should equal original")
	}
}

func TestLinkSetDiff(t *testing.T) {
	a := NewLinkSet(4)
	a.Add(0, 1, 2)
	a.Add(2, 3, 1)
	b := NewLinkSet(4)
	b.Add(0, 1, 1)
	b.Add(1, 2, 2)
	// |2-1| + |1-0| + |0-2| = 1+1+2 = 4.
	if d := a.Diff(b); d != 4 {
		t.Errorf("diff = %d, want 4", d)
	}
	if a.Diff(a) != 0 {
		t.Error("self diff should be 0")
	}
}

func TestLinkSetLinksSorted(t *testing.T) {
	ls := NewLinkSet(5)
	ls.Add(3, 4, 1)
	ls.Add(0, 2, 1)
	ls.Add(0, 1, 1)
	links := ls.Links()
	for i := 1; i < len(links); i++ {
		a, b := links[i-1], links[i]
		if a.U > b.U || (a.U == b.U && a.V >= b.V) {
			t.Errorf("links not sorted: %+v", links)
		}
	}
}

func TestInitialTopologyRespectsPorts(t *testing.T) {
	for _, n := range []*Network{Internet2(15), ISP(40, 10, 3), InterDC(25, 5, 8, 4), Square()} {
		ls := InitialTopology(n)
		if v := ls.PortViolations(n); v != 0 {
			t.Errorf("%s: %d port violations", n.Name, v)
		}
		// Ports should be nearly saturated: every site with a fiber neighbor
		// that has spare ports should be connected.
		if ls.TotalCircuits() == 0 {
			t.Errorf("%s: empty initial topology", n.Name)
		}
		if !ls.Graph().Connected() {
			t.Errorf("%s: initial topology disconnected", n.Name)
		}
	}
}

func TestInitialTopologySquareMatchesPaper(t *testing.T) {
	// The square example of Figure 2(b): each router is connected to its two
	// fiber neighbors with one circuit each.
	ls := InitialTopology(Square())
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if ls.Get(pair[0], pair[1]) != 1 {
			t.Errorf("link %v = %d, want 1", pair, ls.Get(pair[0], pair[1]))
		}
	}
}

func TestPortViolationsDetected(t *testing.T) {
	n := Square() // 2 ports per site
	ls := NewLinkSet(4)
	ls.Add(0, 1, 3) // 3 circuits but only 2 ports at each end
	if v := ls.PortViolations(n); v != 2 {
		t.Errorf("violations = %d, want 2 (one excess at each endpoint)", v)
	}
}

func TestLinkSetDiffSymmetric(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *LinkSet {
			ls := NewLinkSet(6)
			for i := 0; i < 8; i++ {
				a, b := rng.Intn(6), rng.Intn(6)
				if a != b {
					ls.Add(a, b, 1+rng.Intn(3))
				}
			}
			return ls
		}
		a, b := mk(), mk()
		return a.Diff(b) == b.Diff(a) && (a.Diff(b) == 0) == a.Equal(b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesBadInputs(t *testing.T) {
	n := Internet2(15)
	n.Fibers[0].LengthKm = -1
	if err := n.Validate(); err == nil {
		t.Error("negative length not caught")
	}
	n = Internet2(15)
	n.ThetaGbps = 0
	if err := n.Validate(); err == nil {
		t.Error("zero theta not caught")
	}
	n = Internet2(15)
	n.Fibers = n.Fibers[:2] // disconnect
	if err := n.Validate(); err == nil {
		t.Error("disconnected fiber graph not caught")
	}
}
