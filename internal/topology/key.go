package topology

import (
	"encoding/binary"
	"hash/fnv"
)

// Key returns a canonical byte string uniquely identifying the link multiset
// (two LinkSets have equal keys iff Equal reports true). The encoding is the
// site count followed by the sorted links as (u, v, count) uvarint triples,
// mirroring the deterministic ordering of Links() and MarshalJSON. The key is
// compact enough to serve as a map key for energy memoization in
// internal/core.
func (ls *LinkSet) Key() string {
	links := ls.Links()
	buf := make([]byte, 0, 2+9*len(links))
	var tmp [binary.MaxVarintLen64]byte
	put := func(x int) {
		n := binary.PutUvarint(tmp[:], uint64(x))
		buf = append(buf, tmp[:n]...)
	}
	put(ls.N)
	for _, l := range links {
		put(l.U)
		put(l.V)
		put(l.Count)
	}
	return string(buf)
}

// Hash returns a 64-bit FNV-1a hash of Key(). Unlike Key it can collide, so
// it suits fingerprinting and sharding; exact lookups should compare Key.
func (ls *LinkSet) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(ls.Key()))
	return h.Sum64()
}
