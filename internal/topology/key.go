package topology

import (
	"encoding/binary"
)

// Key returns a canonical byte string uniquely identifying the link multiset
// (two LinkSets have equal keys iff Equal reports true). The encoding is the
// site count followed by the sorted links as (u, v, count) uvarint triples,
// mirroring the deterministic ordering of Links() and MarshalJSON. The key is
// compact enough to serve as a map key for energy memoization in
// internal/core.
func (ls *LinkSet) Key() string {
	return string(ls.AppendKey(nil))
}

// AppendKey appends the canonical key bytes (see Key) to buf and returns the
// extended slice. Passing buf[:0] of a retained buffer keeps the encoding
// itself allocation-free; the link enumeration still allocates, so callers on
// the energy hot path should enumerate with AppendLinks into their own
// scratch and use AppendKeyFromLinks directly.
func (ls *LinkSet) AppendKey(buf []byte) []byte {
	return AppendKeyFromLinks(buf, ls.N, ls.Links())
}

// AppendKeyFromLinks appends the canonical key encoding of a topology with n
// sites and the given (U, V)-sorted aggregated links to buf. The result is
// byte-identical to AppendKey on a LinkSet holding exactly those links, which
// is what lets internal/core key patched candidate topologies without
// materializing them.
func AppendKeyFromLinks(buf []byte, n int, links []Link) []byte {
	var tmp [binary.MaxVarintLen64]byte
	put := func(x int) {
		k := binary.PutUvarint(tmp[:], uint64(x))
		buf = append(buf, tmp[:k]...)
	}
	put(n)
	for _, l := range links {
		put(l.U)
		put(l.V)
		put(l.Count)
	}
	return buf
}

// KeyHash returns the 64-bit FNV-1a hash of a key produced by AppendKey /
// AppendKeyFromLinks. Unlike the key it can collide, so exact lookups must
// verify the full key bytes on a hash match (internal/core's energy cache
// does).
func KeyHash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Hash returns a 64-bit FNV-1a hash of Key(). Unlike Key it can collide, so
// it suits fingerprinting and sharding; exact lookups should compare Key.
func (ls *LinkSet) Hash() uint64 {
	return KeyHash(ls.AppendKey(nil))
}

// MergePatch merges a sorted patch into a sorted base link list, appending
// the result to dst and returning the extended slice. Both inputs are
// (U, V)-sorted aggregated links; a patch entry carries the NEW count for its
// pair (Count 0 deletes the pair). Pairs absent from the patch keep their
// base count. The output is byte-for-byte the enumeration AppendLinks would
// produce for the patched multiset, so a retained base list plus a small
// patch substitutes for re-enumerating (and re-sorting) a whole LinkSet —
// the warm-load trick behind alloc.(*Allocator).ThroughputPatched.
func MergePatch(dst []Link, base []Link, patch []Link) []Link {
	i, j := 0, 0
	for i < len(base) && j < len(patch) {
		b, p := base[i], patch[j]
		switch {
		case b.U < p.U || (b.U == p.U && b.V < p.V):
			dst = append(dst, b)
			i++
		case b.U == p.U && b.V == p.V:
			if p.Count > 0 {
				dst = append(dst, p)
			}
			i++
			j++
		default:
			if p.Count > 0 {
				dst = append(dst, p)
			}
			j++
		}
	}
	for ; i < len(base); i++ {
		dst = append(dst, base[i])
	}
	for ; j < len(patch); j++ {
		if patch[j].Count > 0 {
			dst = append(dst, patch[j])
		}
	}
	return dst
}

// DecodeKey parses a key produced by AppendKey / AppendKeyFromLinks back
// into the site count and the (U, V)-sorted link list, appending the links
// to dst. ok is false if the bytes are not a well-formed key. This is the
// inverse the provision-cache migration needs: cached entries are keyed by
// the encoded topology, and deciding whether an entry survives a network
// change requires walking its links.
func DecodeKey(key []byte, dst []Link) (n int, _ []Link, ok bool) {
	u64, k := binary.Uvarint(key)
	if k <= 0 {
		return 0, dst, false
	}
	key = key[k:]
	n = int(u64)
	for len(key) > 0 {
		var l Link
		for _, p := range []*int{&l.U, &l.V, &l.Count} {
			u64, k = binary.Uvarint(key)
			if k <= 0 {
				return 0, dst, false
			}
			key = key[k:]
			*p = int(u64)
		}
		dst = append(dst, l)
	}
	return n, dst, true
}
