package topology

import (
	"math/rand"
	"slices"
	"testing"
)

// randomLinkSet builds a LinkSet by insertion in random order, so map
// iteration cannot accidentally align between two equal sets.
func randomLinkSet(rng *rand.Rand, n, links int) *LinkSet {
	ls := NewLinkSet(n)
	for i := 0; i < links; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		ls.Add(u, v, 1+rng.Intn(3))
	}
	return ls
}

func TestKeyMatchesEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := randomLinkSet(rng, 2+rng.Intn(12), rng.Intn(20))
		b := a.Clone()
		if a.Key() != b.Key() {
			t.Fatalf("clone key differs: %v", a.Links())
		}
		if a.Hash() != b.Hash() {
			t.Fatalf("clone hash differs: %v", a.Links())
		}
		c := randomLinkSet(rng, a.N, rng.Intn(20))
		if a.Equal(c) != (a.Key() == c.Key()) {
			t.Fatalf("Key disagrees with Equal:\n a=%v\n c=%v", a.Links(), c.Links())
		}
	}
}

func TestKeyInsertionOrderIndependent(t *testing.T) {
	a := NewLinkSet(6)
	a.Add(0, 1, 2)
	a.Add(3, 4, 1)
	a.Add(2, 5, 3)
	b := NewLinkSet(6)
	b.Add(5, 2, 3) // reversed endpoints, different order
	b.Add(4, 3, 1)
	b.Add(1, 0, 1)
	b.Add(0, 1, 1)
	if a.Key() != b.Key() {
		t.Error("keys differ for equal multisets built in different orders")
	}
}

func TestKeyDistinguishes(t *testing.T) {
	base := NewLinkSet(5)
	base.Add(0, 1, 2)
	base.Add(1, 2, 1)

	diffCount := base.Clone()
	diffCount.Add(0, 1, 1)
	diffLink := base.Clone()
	diffLink.Add(3, 4, 1)
	diffN := base.Clone()
	diffN.N = 6
	empty := NewLinkSet(5)

	for name, other := range map[string]*LinkSet{
		"count": diffCount, "link": diffLink, "sites": diffN, "empty": empty,
	} {
		if base.Key() == other.Key() {
			t.Errorf("%s: key collision between different sets", name)
		}
	}
}

func TestKeySwapMoveChangesKey(t *testing.T) {
	// The annealing neighbor move (remove (u,v)+(p,q), add (u,p)+(v,q))
	// preserves degrees; the key must still tell the states apart.
	a := NewLinkSet(4)
	a.Add(0, 1, 1)
	a.Add(2, 3, 1)
	b := NewLinkSet(4)
	b.Add(0, 2, 1)
	b.Add(1, 3, 1)
	if a.Key() == b.Key() {
		t.Error("degree-preserving rewiring produced identical keys")
	}
}

// TestAppendKeyFromLinksMatchesKey pins the flat encoding used by the delta
// evaluator (scratch links + AppendKeyFromLinks) to the canonical Key().
func TestAppendKeyFromLinksMatchesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var links []Link
	var buf []byte
	for trial := 0; trial < 200; trial++ {
		ls := randomLinkSet(rng, 2+rng.Intn(12), rng.Intn(20))
		links = ls.AppendLinks(links[:0])
		buf = AppendKeyFromLinks(buf[:0], ls.N, links)
		if string(buf) != ls.Key() {
			t.Fatalf("AppendKeyFromLinks diverges from Key for %v", links)
		}
		if KeyHash(buf) != ls.Hash() {
			t.Fatalf("KeyHash diverges from Hash for %v", links)
		}
	}
}

// TestMergePatchMatchesRebuild checks that merging a patch into a retained
// sorted base enumeration equals re-enumerating the patched LinkSet.
func TestMergePatchMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var base, patch, merged, want []Link
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(10)
		ls := randomLinkSet(rng, n, rng.Intn(16))
		base = ls.AppendLinks(base[:0])

		// Mutate a clone with random set/remove/insert operations and record
		// the NEW counts of every touched pair as the patch.
		patched := ls.Clone()
		touched := map[[2]int]bool{}
		for op := 0; op < 1+rng.Intn(5); op++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			cur := patched.Get(u, v)
			next := rng.Intn(4) // 0 deletes
			patched.Add(u, v, next-cur)
			touched[canon(u, v)] = true
		}
		patch = patch[:0]
		for k := range touched {
			patch = append(patch, Link{U: k[0], V: k[1], Count: patched.Get(k[0], k[1])})
		}
		slices.SortFunc(patch, func(a, b Link) int {
			if a.U != b.U {
				return a.U - b.U
			}
			return a.V - b.V
		})

		merged = MergePatch(merged[:0], base, patch)
		want = patched.AppendLinks(want[:0])
		if !slices.Equal(merged, want) {
			t.Fatalf("MergePatch mismatch:\n base=%v\n patch=%v\n got=%v\n want=%v", base, patch, merged, want)
		}
	}
}
