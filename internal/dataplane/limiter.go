// Package dataplane implements the host side of Owan's rate enforcement:
// the paper's clients apply the controller's per-path rates with Linux
// Traffic Control; here a token-bucket limiter throttles real TCP streams
// between site agents. It exists so the control loop can be demonstrated
// end to end — allocation messages in, actual bytes on the wire out.
package dataplane

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Limiter is a token-bucket rate limiter. The zero value is unusable; use
// NewLimiter. Rate changes take effect immediately, which is what the
// per-slot allocation updates need.
type Limiter struct {
	mu         sync.Mutex
	bytesPerS  float64
	burstBytes float64
	tokens     float64
	last       time.Time
	now        func() time.Time
}

// NewLimiter creates a limiter with the given rate (bytes/second) and
// burst capacity (bytes). A nil clock uses time.Now.
func NewLimiter(bytesPerSecond, burstBytes float64, clock func() time.Time) (*Limiter, error) {
	if bytesPerSecond <= 0 || burstBytes <= 0 {
		return nil, fmt.Errorf("dataplane: rate and burst must be positive")
	}
	if clock == nil {
		clock = time.Now
	}
	return &Limiter{
		bytesPerS:  bytesPerSecond,
		burstBytes: burstBytes,
		tokens:     burstBytes,
		last:       clock(),
		now:        clock,
	}, nil
}

// SetRate updates the rate in bytes/second; nonpositive pauses the flow.
func (l *Limiter) SetRate(bytesPerSecond float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refill()
	l.bytesPerS = bytesPerSecond
}

// Rate returns the current rate in bytes/second.
func (l *Limiter) Rate() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesPerS
}

// refill accrues tokens since last; caller holds the lock.
func (l *Limiter) refill() {
	now := l.now()
	dt := now.Sub(l.last).Seconds()
	l.last = now
	if l.bytesPerS > 0 && dt > 0 {
		l.tokens += dt * l.bytesPerS
		if l.tokens > l.burstBytes {
			l.tokens = l.burstBytes
		}
	}
}

// reserve consumes n tokens, returning how long the caller must wait
// before proceeding (0 if tokens were available). n may exceed the burst;
// the wait then covers the deficit.
func (l *Limiter) reserve(n float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.refill()
	l.tokens -= n
	if l.tokens >= 0 {
		return 0
	}
	if l.bytesPerS <= 0 {
		return -1 // paused
	}
	return time.Duration(-l.tokens / l.bytesPerS * float64(time.Second))
}

// WaitN blocks until n bytes may be sent or the context is done. When the
// limiter is paused (rate 0), it polls for a rate change.
func (l *Limiter) WaitN(ctx context.Context, n int) error {
	if n <= 0 {
		return nil
	}
	for {
		d := l.reserve(float64(n))
		if d == 0 {
			return nil
		}
		if d < 0 {
			// Paused: return the tokens and retry shortly.
			l.mu.Lock()
			l.tokens += float64(n)
			l.mu.Unlock()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Millisecond):
			}
			continue
		}
		select {
		case <-ctx.Done():
			// Give the tokens back so a future sender is not penalized.
			l.mu.Lock()
			l.tokens += float64(n)
			l.mu.Unlock()
			return ctx.Err()
		case <-time.After(d):
			return nil
		}
	}
}
