package dataplane

import (
	"context"
	"net"
	"testing"
	"time"
)

// fakeClock is a deterministic clock for limiter unit tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time { return f.t }

func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestLimiterAccrual(t *testing.T) {
	fc := &fakeClock{t: time.Unix(0, 0)}
	lim, err := NewLimiter(1000, 100, fc.now) // 1000 B/s, 100 B burst
	if err != nil {
		t.Fatal(err)
	}
	// Burst available immediately.
	if d := lim.reserve(100); d != 0 {
		t.Fatalf("initial burst should be free, wait %v", d)
	}
	// Next 100 bytes need 100ms of accrual.
	if d := lim.reserve(100); d != 100*time.Millisecond {
		t.Fatalf("wait = %v, want 100ms", d)
	}
	// After advancing the clock, tokens accrue (but never beyond burst).
	fc.advance(time.Second)
	lim.mu.Lock()
	lim.refill()
	tokens := lim.tokens
	lim.mu.Unlock()
	if tokens != 100 {
		t.Fatalf("tokens = %v, want capped at burst 100", tokens)
	}
}

func TestLimiterRejectsBadConfig(t *testing.T) {
	if _, err := NewLimiter(0, 10, nil); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewLimiter(10, 0, nil); err == nil {
		t.Error("zero burst accepted")
	}
}

func TestLimiterPauseResume(t *testing.T) {
	lim, err := NewLimiter(1e6, 1e4, nil)
	if err != nil {
		t.Fatal(err)
	}
	lim.SetRate(0) // pause
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = lim.WaitN(ctx, 1<<20)
	if err == nil {
		t.Fatal("paused limiter should block until cancellation")
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Error("returned too early")
	}
	// Resume and verify progress.
	lim.SetRate(1e9)
	if err := lim.WaitN(context.Background(), 1<<10); err != nil {
		t.Fatal(err)
	}
}

func TestSendReceiveOverTCP(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	recv := NewReceiver(lis)
	defer recv.Close()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// 1 MiB at a generous rate: completes fast, counts must match.
	lim, err := NewLimiter(1e9, 1e6, nil)
	if err != nil {
		t.Fatal(err)
	}
	const total = 1 << 20
	sent, err := Send(context.Background(), conn, 7, total, lim)
	if err != nil {
		t.Fatal(err)
	}
	if sent != total {
		t.Fatalf("sent %d, want %d", sent, total)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec, ok := recv.Receipt(7)
		if ok && rec.Complete {
			if rec.Bytes != total {
				t.Fatalf("received %d, want %d", rec.Bytes, total)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("receiver never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRateEnforcedApproximately(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	recv := NewReceiver(lis)
	defer recv.Close()
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// 2 MB at 10 MB/s should take ~200 ms (burst shaves the first chunk).
	lim, err := NewLimiter(10e6, 64<<10, nil)
	if err != nil {
		t.Fatal(err)
	}
	const total = 2 << 20
	start := time.Now()
	if _, err := Send(context.Background(), conn, 1, total, lim); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Loopback is effectively infinite bandwidth, so the limiter is the
	// only governor: expect 2 MiB / 10 MB/s ≈ 210 ms, within a loose band
	// to keep CI happy.
	if elapsed < 120*time.Millisecond || elapsed > 600*time.Millisecond {
		t.Errorf("elapsed %v, want ~200ms (rate limiting off?)", elapsed)
	}
}

func TestMidStreamRateChange(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	recv := NewReceiver(lis)
	defer recv.Close()
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	lim, err := NewLimiter(1e6, 32<<10, nil) // slow start: 1 MB/s
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := Send(context.Background(), conn, 2, 4<<20, lim)
		done <- err
	}()
	// After 50 ms, crank the rate up: the transfer must finish promptly.
	time.Sleep(50 * time.Millisecond)
	lim.SetRate(1e9)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("transfer did not speed up after rate increase")
	}
}

func TestSendCancelled(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	recv := NewReceiver(lis)
	defer recv.Close()
	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	lim, err := NewLimiter(1e3, 1e3, nil) // crawl
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	sent, err := Send(ctx, conn, 3, 10<<20, lim)
	if err == nil {
		t.Fatal("expected cancellation")
	}
	if sent >= 10<<20 {
		t.Fatal("sent everything despite crawl rate")
	}
}
