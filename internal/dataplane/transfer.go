package dataplane

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// The wire format between site agents is minimal: a 16-byte header with
// the transfer id and total payload length, then the payload itself in
// rate-limited chunks. Receivers count bytes per transfer id.

// header is the stream preamble.
type header struct {
	TransferID uint64
	Length     uint64
}

func writeHeader(w io.Writer, h header) error {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], h.TransferID)
	binary.BigEndian.PutUint64(buf[8:16], h.Length)
	_, err := w.Write(buf[:])
	return err
}

func readHeader(r io.Reader) (header, error) {
	var buf [16]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return header{}, err
	}
	return header{
		TransferID: binary.BigEndian.Uint64(buf[0:8]),
		Length:     binary.BigEndian.Uint64(buf[8:16]),
	}, nil
}

// chunkBytes is the sender's write granularity. Small enough that rate
// changes take effect quickly, large enough to keep syscall overhead low.
const chunkBytes = 32 << 10

// Send streams length dummy bytes for a transfer over conn at the rate
// enforced by lim. It returns the bytes actually sent (all of them unless
// the context was cancelled or the connection failed).
func Send(ctx context.Context, conn net.Conn, transferID uint64, length int64, lim *Limiter) (int64, error) {
	if length < 0 {
		return 0, fmt.Errorf("dataplane: negative length")
	}
	if err := writeHeader(conn, header{TransferID: transferID, Length: uint64(length)}); err != nil {
		return 0, err
	}
	payload := make([]byte, chunkBytes)
	var sent int64
	for sent < length {
		n := int64(len(payload))
		if rem := length - sent; rem < n {
			n = rem
		}
		if err := lim.WaitN(ctx, int(n)); err != nil {
			return sent, err
		}
		m, err := conn.Write(payload[:n])
		sent += int64(m)
		if err != nil {
			return sent, err
		}
	}
	return sent, nil
}

// Receipt reports one received transfer stream.
type Receipt struct {
	TransferID uint64
	Bytes      int64
	Complete   bool
}

// Receiver accepts transfer streams and tallies received bytes.
type Receiver struct {
	lis net.Listener

	mu       sync.Mutex
	received map[uint64]*Receipt
	wg       sync.WaitGroup
	closed   bool
}

// NewReceiver starts a receiver on the listener.
func NewReceiver(lis net.Listener) *Receiver {
	r := &Receiver{lis: lis, received: map[uint64]*Receipt{}}
	r.wg.Add(1)
	go r.acceptLoop()
	return r
}

func (r *Receiver) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.lis.Accept()
		if err != nil {
			return
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			r.handle(conn)
		}()
	}
}

func (r *Receiver) handle(conn net.Conn) {
	h, err := readHeader(conn)
	if err != nil {
		return
	}
	r.mu.Lock()
	rec, ok := r.received[h.TransferID]
	if !ok {
		rec = &Receipt{TransferID: h.TransferID}
		r.received[h.TransferID] = rec
	}
	r.mu.Unlock()
	buf := make([]byte, chunkBytes)
	var got int64
	for got < int64(h.Length) {
		n, err := conn.Read(buf)
		if n > 0 {
			got += int64(n)
			r.mu.Lock()
			rec.Bytes += int64(n)
			r.mu.Unlock()
		}
		if err != nil {
			break
		}
	}
	r.mu.Lock()
	rec.Complete = got >= int64(h.Length)
	r.mu.Unlock()
}

// Receipt returns the receipt for a transfer id.
func (r *Receiver) Receipt(transferID uint64) (Receipt, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.received[transferID]
	if !ok {
		return Receipt{}, false
	}
	return *rec, true
}

// Close stops accepting and waits for in-flight streams.
func (r *Receiver) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.lis.Close()
	r.wg.Wait()
}
