package controlplane

import (
	"fmt"
	"net"
	"sync"
)

// Client is the site agent: it submits transfer requests and receives rate
// allocations, which a real deployment would translate into host rate
// limits (the paper uses Linux Traffic Control).
type Client struct {
	conn net.Conn

	mu      sync.Mutex
	acks    chan *Message
	onRates func([]WireRate)
	closed  bool
	readErr error
	done    chan struct{}
}

// Dial connects to the controller and registers the client's site.
func Dial(addr string, site int, onRates func([]WireRate)) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		acks:    make(chan *Message, 8),
		onRates: onRates,
		done:    make(chan struct{}),
	}
	if err := WriteMsg(conn, &Message{Type: MsgHello, Site: site}); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		m, err := ReadMsg(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			c.mu.Unlock()
			close(c.acks)
			return
		}
		switch m.Type {
		case MsgRates:
			if c.onRates != nil {
				c.onRates(m.Rates)
			}
		case MsgSubmitAck, MsgError, MsgStatusReply:
			c.acks <- m
		}
	}
}

// Submit sends a transfer request and waits for its id.
func (c *Client) Submit(r WireRequest) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, fmt.Errorf("controlplane: client closed")
	}
	err := WriteMsg(c.conn, &Message{Type: MsgSubmit, Request: &r})
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	m, ok := <-c.acks
	if !ok {
		return 0, fmt.Errorf("controlplane: connection lost: %v", c.readErr)
	}
	if m.Type == MsgError {
		return 0, fmt.Errorf("controlplane: %s", m.Err)
	}
	return m.ID, nil
}

// Status queries controller status.
func (c *Client) Status() (*WireStatus, error) {
	c.mu.Lock()
	err := WriteMsg(c.conn, &Message{Type: MsgStatus})
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	m, ok := <-c.acks
	if !ok {
		return nil, fmt.Errorf("controlplane: connection lost: %v", c.readErr)
	}
	if m.Type == MsgError {
		return nil, fmt.Errorf("controlplane: %s", m.Err)
	}
	return m.Status, nil
}

// ReportFiberFailure notifies the controller of a failed fiber.
func (c *Client) ReportFiberFailure(fiberID int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return WriteMsg(c.conn, &Message{Type: MsgLinkFailure, FiberID: fiberID})
}

// Close terminates the connection.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.conn.Close()
	c.mu.Unlock()
	<-c.done
}
