package controlplane

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	mrand "math/rand"
	"net"
	"sync"
	"time"
)

// Client is the site agent's control-plane endpoint: it submits transfer
// requests and receives rate allocations, which a real deployment would
// translate into host rate limits (the paper uses Linux Traffic Control).
//
// The client is resilient by construction (§3.4: "applications and
// brokers deal with a controller failure by retrying"): every RPC carries
// a context whose deadline maps onto socket deadlines, a lost connection
// is re-dialed with capped exponential backoff and jitter, in-flight
// submissions are retried under an idempotency token so a retry can never
// create a duplicate transfer, and periodic heartbeats detect a dead
// controller even when no RPC is outstanding.
type Client struct {
	addr string
	o    options

	mu       sync.Mutex
	cur      *liveConn     // nil while disconnected
	curCh    chan struct{} // closed+replaced whenever cur or terminal changes
	closed   bool
	terminal error // set when reconnecting can never succeed

	closeCh chan struct{}
	wg      sync.WaitGroup

	// rpcMu serializes RPCs: the protocol correlates replies by Seq, and
	// one-at-a-time keeps retry/reconnect interleavings simple.
	rpcMu sync.Mutex
	seq   uint64

	tokenPrefix string
	tokenSeq    uint64

	// rng drives backoff and retry-after jitter; rngMu serializes it
	// between the manager goroutine and RPC callers backing off after an
	// overloaded rejection.
	rngMu sync.Mutex
	rng   *mrand.Rand

	disconnects int           // guarded by mu; observable via Disconnects
	overloads   int           // guarded by mu; observable via Overloads
	lastSnap    *WireSnapshot // guarded by mu; most recent resync snapshot
}

// liveConn is one TCP connection's lifetime: its write lock, reply
// channel, and failure latch.
type liveConn struct {
	conn net.Conn
	ver  int // negotiated protocol version (welcome reply)

	wmu sync.Mutex // serializes writes (RPCs vs heartbeats)

	replies chan *Message

	failOnce sync.Once
	down     chan struct{}
	err      error

	beatMu   sync.Mutex
	lastBeat time.Time
}

func newLiveConn(conn net.Conn) *liveConn {
	return &liveConn{
		conn:     conn,
		replies:  make(chan *Message, 8),
		down:     make(chan struct{}),
		lastBeat: time.Now(),
	}
}

// fail latches the connection's fatal error and closes it; the first
// caller wins.
func (lc *liveConn) fail(err error) {
	lc.failOnce.Do(func() {
		lc.err = err
		lc.conn.Close()
		close(lc.down)
	})
}

func (lc *liveConn) touch() {
	lc.beatMu.Lock()
	lc.lastBeat = time.Now()
	lc.beatMu.Unlock()
}

func (lc *liveConn) sinceBeat() time.Duration {
	lc.beatMu.Lock()
	defer lc.beatMu.Unlock()
	return time.Since(lc.lastBeat)
}

// send writes one frame under the write lock with a write deadline; a
// failed write kills the connection.
func (lc *liveConn) send(m *Message, deadline time.Time) error {
	lc.wmu.Lock()
	defer lc.wmu.Unlock()
	lc.conn.SetWriteDeadline(deadline)
	if err := WriteMsg(lc.conn, m); err != nil {
		lc.fail(fmt.Errorf("controlplane: write: %w", err))
		return err
	}
	return nil
}

// Dial connects to the controller and performs the hello/welcome
// handshake. If ctx carries a deadline, transient connection failures are
// retried with backoff until it expires; without a deadline Dial makes a
// single attempt (fail-fast for interactive use). A version mismatch is
// terminal either way.
func Dial(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	var pre [6]byte
	if _, err := rand.Read(pre[:]); err != nil {
		return nil, fmt.Errorf("controlplane: token prefix: %w", err)
	}
	c := &Client{
		addr:        addr,
		o:           o,
		curCh:       make(chan struct{}),
		closeCh:     make(chan struct{}),
		tokenPrefix: hex.EncodeToString(pre[:]),
		rng:         mrand.New(mrand.NewSource(o.jitterSeed)),
	}
	_, hasDeadline := ctx.Deadline()
	attempt := 0
	var lc *liveConn
	for {
		var err error
		lc, err = c.connect(ctx)
		if err == nil {
			break
		}
		if !hasDeadline || isTerminal(err) || ctx.Err() != nil {
			return nil, err
		}
		attempt++
		select {
		case <-time.After(c.backoff(attempt)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c.setCur(lc)
	c.wg.Add(1)
	go c.manage(lc)
	return c, nil
}

// DialLegacy keeps the pre-context signature alive for old callers.
//
// Deprecated: use Dial with WithSite and WithOnRates.
func DialLegacy(addr string, site int, onRates func([]WireRate)) (*Client, error) {
	return Dial(context.Background(), addr, WithSite(site), WithOnRates(onRates))
}

// connect dials and runs the handshake, then starts the connection's read
// and heartbeat goroutines.
func (c *Client) connect(ctx context.Context) (*liveConn, error) {
	hctx := ctx
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		hctx, cancel = context.WithTimeout(ctx, c.o.rpcTimeout)
		defer cancel()
	}
	conn, err := c.o.dialer(hctx, c.addr)
	if err != nil {
		return nil, err
	}
	if dl, ok := hctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	hello := &Message{Type: MsgHello, Site: c.o.site, Version: ProtoVersion}
	if err := WriteMsg(conn, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("controlplane: hello: %w", err)
	}
	m, err := ReadMsg(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("controlplane: handshake: %w", err)
	}
	switch m.Type {
	case MsgWelcome:
	case MsgError:
		conn.Close()
		return nil, newServerError(m)
	default:
		conn.Close()
		return nil, fmt.Errorf("controlplane: unexpected handshake reply %q", m.Type)
	}
	ver := m.Version
	if ver <= 0 {
		ver = 1 // a pre-negotiation controller omits the version field
	}
	// Snapshot resync (v2): replay our pending-transfer state in the same
	// round-trip budget as the handshake, so a reconnect (or a failover to
	// a promoted standby) converges without resubmitting anything. The
	// handshake deadline still covers this exchange.
	if ver >= 2 {
		if err := WriteMsg(conn, &Message{Type: MsgResync, Seq: c.nextSeq(), Site: c.o.site}); err != nil {
			conn.Close()
			return nil, fmt.Errorf("controlplane: resync: %w", err)
		}
		sm, err := ReadMsg(conn)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("controlplane: resync reply: %w", err)
		}
		if sm.Type != MsgSnapshot {
			conn.Close()
			if sm.Type == MsgError {
				return nil, newServerError(sm)
			}
			return nil, fmt.Errorf("controlplane: unexpected resync reply %q", sm.Type)
		}
		c.mu.Lock()
		c.lastSnap = sm.Snapshot
		c.mu.Unlock()
		if c.o.onResync != nil && sm.Snapshot != nil {
			c.o.onResync(sm.Snapshot)
		}
	}
	conn.SetDeadline(time.Time{})
	lc := newLiveConn(conn)
	lc.ver = ver
	c.wg.Add(1)
	go c.readLoop(lc)
	if c.o.heartbeat > 0 {
		c.wg.Add(1)
		go c.heartbeatLoop(lc)
	}
	return lc, nil
}

// newServerError converts a MsgError into the typed client-side error,
// carrying the controller's retry-after hint when present.
func newServerError(m *Message) *ServerError {
	return &ServerError{
		Code:       m.Code,
		Msg:        m.Err,
		RetryAfter: time.Duration(m.RetryAfterMs) * time.Millisecond,
	}
}

// isTerminal reports whether an error means reconnecting can never help.
func isTerminal(err error) bool {
	var se *ServerError
	if errors.As(err, &se) {
		return se.Terminal()
	}
	return false
}

// readLoop demultiplexes inbound frames until the connection dies. Frame
// decode errors are NOT swallowed: they latch into lc.err and surface
// exactly once through the WithOnDisconnect hook when the manager observes
// the dead connection.
func (c *Client) readLoop(lc *liveConn) {
	defer c.wg.Done()
	for {
		m, err := ReadMsg(lc.conn)
		if err != nil {
			lc.fail(err)
			return
		}
		lc.touch()
		switch m.Type {
		case MsgRates:
			if c.o.onRates != nil {
				c.o.onRates(m.Rates)
			}
		case MsgPong:
			// touch above is the whole point.
		case MsgPing:
			// The controller may probe us; answer so its read deadline
			// sees a live client.
			lc.send(&Message{Type: MsgPong, Seq: m.Seq}, time.Now().Add(5*time.Second))
		case MsgSubmitAck, MsgStatusReply, MsgAck, MsgError, MsgSnapshot:
			select {
			case lc.replies <- m:
			default: // no RPC waiting; stale reply
			}
		}
	}
}

// heartbeatLoop pings the controller every interval and declares the
// connection dead after 3 silent intervals.
func (c *Client) heartbeatLoop(lc *liveConn) {
	defer c.wg.Done()
	t := time.NewTicker(c.o.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-lc.down:
			return
		case <-c.closeCh:
			return
		case <-t.C:
			if lc.sinceBeat() > 3*c.o.heartbeat {
				lc.fail(fmt.Errorf("controlplane: heartbeat timeout (no traffic for %s)", lc.sinceBeat().Round(time.Millisecond)))
				return
			}
			lc.send(&Message{Type: MsgPing, Seq: c.nextSeq()}, time.Now().Add(c.o.heartbeat))
		}
	}
}

// manage owns the reconnection loop: it waits for the current connection
// to die, reports the disconnect once, and re-dials with capped
// exponential backoff and jitter until it succeeds, Close is called, the
// error is terminal, or WithRetryMax attempts are exhausted.
func (c *Client) manage(lc *liveConn) {
	defer c.wg.Done()
	for {
		select {
		case <-lc.down:
		case <-c.closeCh:
			return
		}
		c.clearCur()
		if c.isClosed() {
			return
		}
		c.noteDisconnect(lc.err)

		attempt := 0
		for {
			attempt++
			if c.o.retryMax > 0 && attempt > c.o.retryMax {
				c.setTerminal(fmt.Errorf("controlplane: gave up after %d reconnect attempts: %w", c.o.retryMax, lc.err))
				return
			}
			select {
			case <-time.After(c.backoff(attempt)):
			case <-c.closeCh:
				return
			}
			cctx, cancel := context.WithTimeout(context.Background(), c.o.rpcTimeout)
			nlc, err := c.connect(cctx)
			cancel()
			if c.isClosed() {
				if err == nil {
					nlc.fail(fmt.Errorf("controlplane: client closed"))
				}
				return
			}
			if err != nil {
				if isTerminal(err) {
					c.setTerminal(err)
					return
				}
				continue
			}
			lc = nlc
			c.setCur(nlc)
			break
		}
	}
}

// backoff returns the wait before reconnection attempt n (1-based):
// base·2^(n-1) capped at max, jittered to 50–150%.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.o.backoffBase
	for i := 1; i < attempt && d < c.o.backoffMax; i++ {
		d *= 2
	}
	if d > c.o.backoffMax {
		d = c.o.backoffMax
	}
	half := d / 2
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d) + 1))
	c.rngMu.Unlock()
	return half + j
}

// overloadDelay turns a controller backpressure rejection into the wait
// before the retry: at least the server's retry-after hint (or the
// backoff base when the hint is missing), plus up to 50% jitter so a
// fleet of shed clients does not return in one synchronized wave.
func (c *Client) overloadDelay(se *ServerError) time.Duration {
	d := se.RetryAfter
	if d <= 0 {
		d = c.o.backoffBase
	}
	c.rngMu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.rngMu.Unlock()
	return d + j
}

func (c *Client) setCur(lc *liveConn) {
	c.mu.Lock()
	c.cur = lc
	close(c.curCh)
	c.curCh = make(chan struct{})
	c.mu.Unlock()
}

func (c *Client) clearCur() {
	c.mu.Lock()
	c.cur = nil
	c.mu.Unlock()
}

func (c *Client) setTerminal(err error) {
	c.mu.Lock()
	c.terminal = err
	close(c.curCh)
	c.curCh = make(chan struct{})
	c.mu.Unlock()
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// noteDisconnect surfaces a dead connection exactly once: through the
// WithOnDisconnect hook when registered, otherwise a single log line (so
// a frame-decode error never spams per-frame and never vanishes).
func (c *Client) noteDisconnect(err error) {
	c.mu.Lock()
	c.disconnects++
	c.mu.Unlock()
	if c.o.onDisconnect != nil {
		c.o.onDisconnect(err)
		return
	}
	log.Printf("controlplane: connection to %s lost: %v (reconnecting)", c.addr, err)
}

// Disconnects reports how many times the connection has been lost.
func (c *Client) Disconnects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disconnects
}

// Overloads reports how many times an RPC was shed by controller
// backpressure (and retried after the retry-after hint).
func (c *Client) Overloads() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.overloads
}

// LastSnapshot returns the most recent resync snapshot (nil before the
// first v2 connect).
func (c *Client) LastSnapshot() *WireSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastSnap
}

func (c *Client) nextSeq() uint64 {
	c.mu.Lock()
	c.seq++
	s := c.seq
	c.mu.Unlock()
	return s
}

func (c *Client) nextToken() string {
	c.mu.Lock()
	c.tokenSeq++
	n := c.tokenSeq
	c.mu.Unlock()
	return fmt.Sprintf("%s-%d", c.tokenPrefix, n)
}

// waitConn blocks until a live connection other than `not` exists or the
// context, Close, or a terminal error intervenes. Passing the connection
// a caller just watched die avoids spinning on the corpse before the
// manager replaces it.
func (c *Client) waitConn(ctx context.Context, not *liveConn) (*liveConn, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, fmt.Errorf("controlplane: client closed")
		}
		if c.terminal != nil {
			err := c.terminal
			c.mu.Unlock()
			return nil, err
		}
		if c.cur != nil && c.cur != not {
			lc := c.cur
			c.mu.Unlock()
			return lc, nil
		}
		ch := c.curCh
		c.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.closeCh:
			return nil, fmt.Errorf("controlplane: client closed")
		}
	}
}

// rpc performs one request/reply exchange, transparently retrying across
// reconnections until the context expires. The context deadline maps to
// the socket write deadline; the reply wait is bounded by the same
// context. Requests must be idempotent (Submit carries a token for this).
func (c *Client) rpc(ctx context.Context, req *Message, want MsgType) (*Message, error) {
	c.rpcMu.Lock()
	defer c.rpcMu.Unlock()
	if _, ok := ctx.Deadline(); !ok && c.o.rpcTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.o.rpcTimeout)
		defer cancel()
	}
	req.Seq = c.nextSeq()
	wdl, _ := ctx.Deadline()
	var last *liveConn
	for {
		lc, err := c.waitConn(ctx, last)
		if err != nil {
			return nil, err
		}
		last = lc
	send:
		if err := lc.send(req, wdl); err != nil {
			continue // connection died; waitConn blocks until reconnect
		}
	recv:
		for {
			select {
			case m := <-lc.replies:
				if m.Seq != req.Seq {
					continue recv // stale reply from an earlier attempt
				}
				if m.Type == MsgError {
					se := newServerError(m)
					if se.Code == ErrCodeOverloaded {
						// Backpressure: honor the controller's retry-after
						// hint (with jitter), then resend on the same
						// connection — idempotency tokens make the resend
						// safe even if it raced a commit.
						c.mu.Lock()
						c.overloads++
						c.mu.Unlock()
						select {
						case <-time.After(c.overloadDelay(se)):
							goto send
						case <-ctx.Done():
							return nil, ctx.Err()
						case <-c.closeCh:
							return nil, fmt.Errorf("controlplane: client closed")
						}
					}
					return nil, se
				}
				if m.Type != want {
					return nil, fmt.Errorf("controlplane: unexpected reply %q to %q", m.Type, req.Type)
				}
				return m, nil
			case <-lc.down:
				break recv // retry on the next connection
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-c.closeCh:
				return nil, fmt.Errorf("controlplane: client closed")
			}
		}
	}
}

// Submit sends a transfer request and waits for its controller-assigned
// id. Submission is idempotent across retries and controller failovers: a
// client-generated token identifies the request, so a resubmission after
// a lost ack returns the original id instead of creating a duplicate.
func (c *Client) Submit(ctx context.Context, r WireRequest) (int, error) {
	m, err := c.rpc(ctx, &Message{Type: MsgSubmit, Request: &r, Token: c.nextToken()}, MsgSubmitAck)
	if err != nil {
		return 0, err
	}
	return m.ID, nil
}

// Resync asks the controller to replay this site's pending-transfer state
// from its replicated store (protocol v2). The client also resyncs
// automatically inside every reconnect handshake; this explicit form is
// for callers that want a fresh snapshot on demand.
func (c *Client) Resync(ctx context.Context) (*WireSnapshot, error) {
	m, err := c.rpc(ctx, &Message{Type: MsgResync, Site: c.o.site}, MsgSnapshot)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.lastSnap = m.Snapshot
	c.mu.Unlock()
	return m.Snapshot, nil
}

// Status queries controller status.
func (c *Client) Status(ctx context.Context) (*WireStatus, error) {
	m, err := c.rpc(ctx, &Message{Type: MsgStatus}, MsgStatusReply)
	if err != nil {
		return nil, err
	}
	return m.Status, nil
}

// ReportFiberFailure notifies the controller of a failed fiber and waits
// for the acknowledgement. Reporting an already-failed fiber succeeds
// (the report is idempotent), so retries after a lost ack are safe.
func (c *Client) ReportFiberFailure(ctx context.Context, fiberID int) error {
	_, err := c.rpc(ctx, &Message{Type: MsgLinkFailure, FiberID: fiberID}, MsgAck)
	return err
}

// Close terminates the client: the connection is torn down, reconnection
// stops, and pending RPCs fail promptly.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	lc := c.cur
	c.mu.Unlock()
	close(c.closeCh)
	if lc != nil {
		lc.fail(fmt.Errorf("controlplane: client closed"))
	}
	c.wg.Wait()
}
