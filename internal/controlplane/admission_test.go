package controlplane

import (
	"context"
	"net"
	"testing"
	"time"

	"owan/internal/core"
	"owan/internal/topology"
	"owan/internal/transfer"
)

// gatedServer starts a controller whose shard workers stall on the
// returned gate channel before draining each batch, making "queue full"
// reproducible: with one shard of depth d, at most d+1 submissions are
// in flight (one held by the stalled worker) before overload.
func gatedServer(t *testing.T, depth int, extra ...ServerOption) (*Controller, string, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	opts := append([]ServerOption{
		WithCoreConfig(core.Config{
			Net: topology.Internet2(8), Policy: transfer.SJF, Seed: 1, MaxIterations: 60,
		}),
		WithSlotSeconds(10),
		WithShards(1),
		WithQueueDepth(depth),
		withAdmitGate(gate),
	}, extra...)
	ctrl, err := NewServer(context.Background(), nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ctrl.Serve(lis)
	t.Cleanup(ctrl.Close)
	return ctrl, lis.Addr().String(), gate
}

// rawHello dials a raw connection and completes the handshake at the
// given protocol version, returning the connection and the welcome.
func rawHello(t *testing.T, addr string, version int) (net.Conn, *Message) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := WriteMsg(conn, &Message{Type: MsgHello, Seq: 1, Site: 1, Version: version}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	return conn, m
}

// TestBackpressureQueueFull: with a stalled worker and a bounded queue,
// excess submissions draw a typed overloaded error carrying a positive
// retry-after hint, and every queued submission is still admitted once
// the worker resumes — nothing is silently dropped.
func TestBackpressureQueueFull(t *testing.T) {
	_, addr, gate := gatedServer(t, 2)
	conn, w := rawHello(t, addr, ProtoVersion)
	if w.Type != MsgWelcome {
		t.Fatalf("handshake reply %+v", w)
	}

	const n = 6 // > depth(2) + 1 held by the stalled worker
	for seq := uint64(2); seq < 2+n; seq++ {
		if err := WriteMsg(conn, &Message{Type: MsgSubmit, Seq: seq,
			Request: &WireRequest{Src: 1, Dst: 2, SizeGbits: 10}}); err != nil {
			t.Fatal(err)
		}
	}
	// Overload rejections arrive immediately; acks only after the gate
	// opens. Read the rejections first.
	overloads := 0
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for overloads < n-3 { // n submits, 2 queued + 1 in worker can succeed
		m, err := ReadMsg(conn)
		if err != nil {
			t.Fatalf("after %d overloads: %v", overloads, err)
		}
		if m.Type != MsgError || m.Code != ErrCodeOverloaded {
			t.Fatalf("pre-gate reply %+v, want overloaded error", m)
		}
		if m.RetryAfterMs <= 0 {
			t.Errorf("overloaded error without retry-after hint: %+v", m)
		}
		overloads++
	}
	close(gate) // resume the worker
	acks := 0
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for acks+overloads < n {
		m, err := ReadMsg(conn)
		if err != nil {
			t.Fatalf("after %d acks + %d overloads: %v", acks, overloads, err)
		}
		switch {
		case m.Type == MsgSubmitAck:
			acks++
		case m.Type == MsgError && m.Code == ErrCodeOverloaded:
			overloads++
		default:
			t.Fatalf("unexpected reply %+v", m)
		}
	}
	if acks == 0 {
		t.Error("no submission was admitted after the gate opened")
	}
}

// TestClientHonorsRetryAfter: the real client absorbs an overloaded
// rejection, waits out the hint, and retries the same submission on the
// same connection until admitted — the caller sees one successful RPC.
func TestClientHonorsRetryAfter(t *testing.T) {
	ctrl, addr, gate := gatedServer(t, 1)
	// Fill the pipeline: one job stalls in the worker, one fills the queue.
	fill, w := rawHello(t, addr, ProtoVersion)
	if w.Type != MsgWelcome {
		t.Fatalf("handshake reply %+v", w)
	}
	for seq := uint64(2); seq <= 3; seq++ {
		if err := WriteMsg(fill, &Message{Type: MsgSubmit, Seq: seq,
			Request: &WireRequest{Src: 1, Dst: 2, SizeGbits: 10}}); err != nil {
			t.Fatal(err)
		}
	}

	cl, err := Dial(context.Background(), addr, WithSite(3), WithJitterSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Open the gate once the client has had time to collect at least one
	// rejection.
	go func() {
		for cl.Overloads() == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		close(gate)
	}()
	id, err := cl.Submit(context.Background(), WireRequest{Src: 3, Dst: 4, SizeGbits: 10})
	if err != nil {
		t.Fatalf("submit through backpressure: %v", err)
	}
	if id < 0 {
		t.Errorf("id = %d", id)
	}
	if cl.Overloads() == 0 {
		t.Error("client never observed an overload rejection")
	}
	if ctrl.Counters().Overloads == 0 {
		t.Error("server counted no overloads")
	}
}

// TestMaxClientsRefusal: hellos beyond the registration cap draw a
// typed overloaded error with a retry-after hint; a slot freed by a
// disconnect admits the next hello.
func TestMaxClientsRefusal(t *testing.T) {
	ctrl, addr, gate := gatedServer(t, 8, WithMaxClients(1))
	close(gate)

	first, w := rawHello(t, addr, ProtoVersion)
	if w.Type != MsgWelcome {
		t.Fatalf("first hello reply %+v", w)
	}
	_, m := rawHello(t, addr, ProtoVersion)
	if m.Type != MsgError || m.Code != ErrCodeOverloaded || m.RetryAfterMs <= 0 {
		t.Fatalf("over-cap hello reply %+v, want overloaded error with hint", m)
	}
	if got := ctrl.Counters().RefusedClients; got != 1 {
		t.Errorf("RefusedClients = %d, want 1", got)
	}

	first.Close()
	// The slot frees once the server reaps the closed connection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		WriteMsg(conn, &Message{Type: MsgHello, Seq: 1, Site: 2, Version: ProtoVersion})
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		m, err := ReadMsg(conn)
		conn.Close()
		if err == nil && m.Type == MsgWelcome {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("freed slot never admitted a new client (last reply %+v, err %v)", m, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fixedClock pins the server's deadline clock.
type fixedClock struct{ at time.Time }

func (f fixedClock) Now() time.Time { return f.at }

// TestWithClockReapsInstantly: with the server clock pinned far in the
// past, every armed read deadline is already expired, so even a fresh
// connection is reaped on its first read — proof the deadlines run off
// the injectable clock, not the wall.
func TestWithClockReapsInstantly(t *testing.T) {
	ctrl, err := NewServer(context.Background(), nil,
		WithCoreConfig(core.Config{
			Net: topology.Internet2(8), Policy: transfer.SJF, Seed: 1, MaxIterations: 60,
		}),
		WithSlotSeconds(10),
		WithReadTimeout(time.Hour), // irrelevant: now+1h is still the past
		WithClock(fixedClock{at: time.Unix(0, 0)}),
	)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ctrl.Serve(lis)
	t.Cleanup(ctrl.Close)

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ReadMsg(conn); err == nil {
		t.Fatal("connection survived an expired server-side deadline")
	}
}

// TestVersionNegotiation covers the v1/v2 compatibility matrix: a v1
// client negotiates down and keeps working (minus resync), a v0 client
// is rejected with a typed error, and a futuristic client is capped at
// the controller's version.
func TestVersionNegotiation(t *testing.T) {
	_, addr, gate := gatedServer(t, 8)
	close(gate)

	t.Run("v1-interop", func(t *testing.T) {
		conn, w := rawHello(t, addr, 1)
		if w.Type != MsgWelcome || w.Version != 1 {
			t.Fatalf("v1 hello reply %+v, want welcome at version 1", w)
		}
		if err := WriteMsg(conn, &Message{Type: MsgSubmit, Seq: 2,
			Request: &WireRequest{Src: 1, Dst: 2, SizeGbits: 10}}); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		m, err := ReadMsg(conn)
		if err != nil || m.Type != MsgSubmitAck {
			t.Fatalf("v1 submit reply %+v (err %v), want ack", m, err)
		}
		// Resync is a v2 exchange: a v1 connection asking for it violated
		// the negotiated protocol.
		if err := WriteMsg(conn, &Message{Type: MsgResync, Seq: 3, Site: 1}); err != nil {
			t.Fatal(err)
		}
		m, err = ReadMsg(conn)
		if err != nil || m.Type != MsgError || m.Code != ErrCodeProtocol {
			t.Fatalf("v1 resync reply %+v (err %v), want protocol error", m, err)
		}
	})

	t.Run("v0-rejected", func(t *testing.T) {
		_, m := rawHello(t, addr, 0)
		if m.Type != MsgError || m.Code != ErrCodeVersionMismatch {
			t.Fatalf("v0 hello reply %+v, want version-mismatch", m)
		}
	})

	t.Run("v3-capped", func(t *testing.T) {
		conn, w := rawHello(t, addr, 3)
		if w.Type != MsgWelcome || w.Version != ProtoVersion {
			t.Fatalf("v3 hello reply %+v, want welcome at version %d", w, ProtoVersion)
		}
		if err := WriteMsg(conn, &Message{Type: MsgResync, Seq: 2, Site: 1}); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		m, err := ReadMsg(conn)
		if err != nil || m.Type != MsgSnapshot || m.Snapshot == nil {
			t.Fatalf("v3 resync reply %+v (err %v), want snapshot", m, err)
		}
	})
}

// TestDeprecatedConstructorCompat: the positional NewController shim
// still builds a working server.
func TestDeprecatedConstructorCompat(t *testing.T) {
	ctrl, err := NewController(core.Config{
		Net: topology.Internet2(8), Policy: transfer.SJF, Seed: 1, MaxIterations: 60,
	}, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if _, err := ctrl.Submit(WireRequest{Src: 0, Dst: 1, SizeGbits: 5}); err != nil {
		t.Fatal(err)
	}
}
