package controlplane

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"sync"
	"testing"
	"time"

	"owan/internal/core"
	"owan/internal/store"
	"owan/internal/topology"
	"owan/internal/transfer"
)

// promote simulates §3.4 failover: sync a replica of the dead controller's
// store and spawn a fresh controller from it.
func promote(t *testing.T, st *store.Store, seed int64) *Controller {
	t.Helper()
	replica := store.New()
	if err := store.Sync(st, replica); err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewServer(context.Background(), replica,
		WithCoreConfig(core.Config{
			Net: topology.Internet2(8), Policy: transfer.SJF, Seed: seed, MaxIterations: 60,
		}),
		WithSlotSeconds(10),
	)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// TestFailoverInvariants kills a controller against a populated store and
// asserts the takeover preserves the slot counter, transfer progress, and
// next-id monotonicity — the invariants that make ids unique and progress
// monotone across controller generations.
func TestFailoverInvariants(t *testing.T) {
	st := store.New()
	ctrl, addr := newTestController(t, st)
	cl, err := Dial(context.Background(), addr, WithSite(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var ids []int
	for i := 0; i < 3; i++ {
		id, err := cl.Submit(context.Background(), WireRequest{Src: 0, Dst: 8, SizeGbits: 200000})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctrl.Tick()
	ctrl.Tick()
	slotBefore := ctrl.Slot()
	nextBefore := ctrl.NextID()
	progressBefore := map[int]float64{}
	ctrl.mu.Lock()
	for id, tr := range ctrl.transfers {
		progressBefore[id] = tr.Remaining
	}
	ctrl.mu.Unlock()
	ctrl.Close()

	ctrl2 := promote(t, st, 2)
	if got := ctrl2.Slot(); got != slotBefore {
		t.Errorf("slot counter: recovered %d, want %d", got, slotBefore)
	}
	if got := ctrl2.NextID(); got != nextBefore {
		t.Errorf("next id: recovered %d, want %d", got, nextBefore)
	}
	ctrl2.mu.Lock()
	for id, want := range progressBefore {
		tr, ok := ctrl2.transfers[id]
		if !ok {
			t.Errorf("transfer %d lost in takeover", id)
			continue
		}
		if tr.Remaining != want {
			t.Errorf("transfer %d progress: recovered remaining=%v, want %v", id, tr.Remaining, want)
		}
	}
	ctrl2.mu.Unlock()

	// New submissions on the successor continue the id sequence — no reuse.
	id, err := ctrl2.Submit(WireRequest{Src: 1, Dst: 2, SizeGbits: 10})
	if err != nil {
		t.Fatal(err)
	}
	if id != nextBefore {
		t.Errorf("first post-failover id = %d, want %d", id, nextBefore)
	}
	for _, old := range ids {
		if id == old {
			t.Errorf("post-failover id %d collides with pre-failover id", id)
		}
	}
}

// TestSubmitTokenIdempotentAcrossFailover: a submission whose ack was lost
// is retried against the successor controller with the same token and must
// map to the original transfer, not a duplicate.
func TestSubmitTokenIdempotentAcrossFailover(t *testing.T) {
	st := store.New()
	ctrl, _ := newTestController(t, st)
	id1, err := ctrl.submit(WireRequest{Src: 0, Dst: 5, SizeGbits: 1000}, 0, "tok-abc")
	if err != nil {
		t.Fatal(err)
	}
	// Same token on the same controller: same id, no new transfer.
	id2, err := ctrl.submit(WireRequest{Src: 0, Dst: 5, SizeGbits: 1000}, 0, "tok-abc")
	if err != nil || id2 != id1 {
		t.Fatalf("same-controller resubmit: got (%d, %v), want (%d, nil)", id2, err, id1)
	}
	ctrl.Close()

	ctrl2 := promote(t, st, 3)
	id3, err := ctrl2.submit(WireRequest{Src: 0, Dst: 5, SizeGbits: 1000}, 0, "tok-abc")
	if err != nil || id3 != id1 {
		t.Fatalf("post-failover resubmit: got (%d, %v), want (%d, nil)", id3, err, id1)
	}
	ctrl2.mu.Lock()
	n := len(ctrl2.transfers)
	ctrl2.mu.Unlock()
	if n != 1 {
		t.Errorf("duplicate transfer created: %d transfers, want 1", n)
	}
}

// TestReconnectReadoption: a client that reconnects — e.g. to a standby
// controller that took over the store — is re-adopted at its hello and
// keeps receiving rate pushes for transfers it submitted before the
// failover.
func TestReconnectReadoption(t *testing.T) {
	st := store.New()
	net9 := topology.Internet2(8)
	ctrl, err := NewServer(context.Background(), st,
		WithCoreConfig(core.Config{
			Net: net9, Policy: transfer.SJF, Seed: 1, MaxIterations: 60,
		}),
		WithSlotSeconds(10),
	)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	go ctrl.Serve(lis)

	var mu sync.Mutex
	var got []WireRate
	cl, err := Dial(context.Background(), addr,
		WithSite(0),
		WithHeartbeatInterval(30*time.Millisecond),
		WithBackoff(10*time.Millisecond, 100*time.Millisecond),
		WithOnDisconnect(func(error) {}),
		WithOnRates(func(rs []WireRate) {
			mu.Lock()
			got = append(got, rs...)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	id, err := cl.Submit(context.Background(), WireRequest{Src: 0, Dst: 8, SizeGbits: 500000})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the controller and promote a standby on the same address.
	ctrl.Close()
	ctrl2 := promote(t, st, 2)
	var lis2 net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		lis2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	go ctrl2.Serve(lis2)
	t.Cleanup(ctrl2.Close)

	// The client reconnects on its own; the successor's ticks must reach
	// it with allocations for the pre-failover transfer.
	sawRate := func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range got {
			if r.TransferID == id && r.RateGbps > 0 {
				return true
			}
		}
		return false
	}
	deadline = time.Now().Add(10 * time.Second)
	for !sawRate() {
		if time.Now().After(deadline) {
			t.Fatal("reconnected client never received a rate push from the successor controller")
		}
		ctrl2.Tick()
		time.Sleep(20 * time.Millisecond)
	}
	if cl.Disconnects() == 0 {
		t.Error("client claims it never disconnected, but the controller was killed")
	}
}

// TestVersionMismatchTypedError: an old-version client (no version field
// in its hello) must receive a typed version-mismatch error — not a hang,
// not a silent close.
func TestVersionMismatchTypedError(t *testing.T) {
	_, addr := newTestController(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A protocol-version-0 hello: exactly what the pre-resilience client
	// sent (site only, no version field).
	if err := WriteMsg(conn, &Message{Type: MsgHello, Site: 3}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	m, err := ReadMsg(conn)
	if err != nil {
		t.Fatalf("no reply to old-version hello (hang or drop): %v", err)
	}
	if m.Type != MsgError || m.Code != ErrCodeVersionMismatch {
		t.Errorf("reply = %+v, want MsgError with code %q", m, ErrCodeVersionMismatch)
	}
	// The connection is then closed by the controller.
	if _, err := ReadMsg(conn); err == nil {
		t.Error("connection stayed open after version mismatch")
	}

	// The high-level client surfaces the mismatch as a terminal typed
	// error too (simulated here by a hello-first protocol violation:
	// submitting before hello).
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := WriteMsg(conn2, &Message{Type: MsgStatus}); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	m2, err := ReadMsg(conn2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Type != MsgError || m2.Code != ErrCodeProtocol {
		t.Errorf("pre-hello request reply = %+v, want MsgError with code %q", m2, ErrCodeProtocol)
	}
}

// TestDecodeErrorSurfacedOnce: a corrupt frame from the controller must
// surface exactly once through WithOnDisconnect, not be swallowed (the old
// readLoop dropped the error on the floor) and not spam per-frame.
func TestDecodeErrorSurfacedOnce(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	// A fake controller that handshakes correctly, then emits garbage.
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := ReadMsg(conn); err != nil { // hello
			return
		}
		// Speak v1: this fake doesn't implement the v2 resync exchange,
		// and the garbage must reach the read loop, not the handshake.
		WriteMsg(conn, &Message{Type: MsgWelcome, Version: 1})
		// A well-framed, checksum-valid but undecodable payload.
		body := []byte("junk")
		hdr := make([]byte, 8)
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
		conn.Write(append(hdr, body...))
		time.Sleep(200 * time.Millisecond)
	}()

	var mu sync.Mutex
	var surfaced []error
	cl, err := Dial(context.Background(), lis.Addr().String(),
		WithSite(0),
		WithBackoff(20*time.Millisecond, 50*time.Millisecond),
		WithRetryMax(2), // the fake controller won't accept again; give up fast
		WithOnDisconnect(func(e error) {
			mu.Lock()
			surfaced = append(surfaced, e)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(surfaced)
		mu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(surfaced) != 1 {
		t.Fatalf("decode error surfaced %d times, want exactly once: %v", len(surfaced), surfaced)
	}
	if surfaced[0] == nil || !errors.Is(surfaced[0], surfaced[0]) || surfaced[0].Error() == "" {
		t.Errorf("surfaced error is empty: %v", surfaced[0])
	}
}

// TestHeartbeatDetectsDeadController: a controller that stops reading and
// writing (without closing) is detected by the client's heartbeat and the
// connection is reported down.
func TestHeartbeatDetectsDeadController(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		if _, err := ReadMsg(conn); err != nil {
			return
		}
		// Speak v1 so the client skips the v2 resync exchange this fake
		// doesn't implement.
		WriteMsg(conn, &Message{Type: MsgWelcome, Version: 1})
		// Go silent: never answer pings, never close. Only a heartbeat
		// timeout can notice this.
		select {}
	}()

	down := make(chan error, 1)
	cl, err := Dial(context.Background(), lis.Addr().String(),
		WithSite(0),
		WithHeartbeatInterval(25*time.Millisecond),
		WithRetryMax(1),
		WithBackoff(10*time.Millisecond, 20*time.Millisecond),
		WithOnDisconnect(func(e error) {
			select {
			case down <- e:
			default:
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	select {
	case e := <-down:
		if e == nil {
			t.Error("disconnect hook got nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("heartbeat never detected the silent controller")
	}
}

// TestServerDetectsDeadClient: the controller's read deadline reaps a
// client that goes silent (no requests, no pings).
func TestServerDetectsDeadClient(t *testing.T) {
	ctrl, err := NewServer(context.Background(), nil,
		WithCoreConfig(core.Config{
			Net: topology.Internet2(8), Policy: transfer.SJF, Seed: 1, MaxIterations: 60,
		}),
		WithSlotSeconds(10),
		WithReadTimeout(80*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ctrl.Serve(lis)
	t.Cleanup(ctrl.Close)
	addr := lis.Addr().String()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMsg(conn, &Message{Type: MsgHello, Site: 1, Version: ProtoVersion}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if m, err := ReadMsg(conn); err != nil || m.Type != MsgWelcome {
		t.Fatalf("handshake: (%+v, %v)", m, err)
	}
	// Go silent. The controller must close the connection.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := ReadMsg(conn); err == nil {
		t.Fatal("controller kept a silent client alive past its read timeout")
	}
	// A pinging client stays alive over the same wall-clock span.
	cl, err := Dial(context.Background(), addr, WithSite(2), WithHeartbeatInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(250 * time.Millisecond) // > 3 read timeouts
	if _, err := cl.Status(context.Background()); err != nil {
		t.Errorf("heartbeating client was reaped: %v", err)
	}
	if cl.Disconnects() != 0 {
		t.Errorf("heartbeating client disconnected %d times", cl.Disconnects())
	}
}
