package controlplane

import (
	"context"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"owan/internal/core"
	"owan/internal/faultnet"
	"owan/internal/store"
	"owan/internal/topology"
	"owan/internal/transfer"
)

// pipeListener serves in-memory net.Pipe connections. Pipes are
// unbuffered, so a peer that stops reading blocks the writer — the
// exact condition the per-client write timeout exists for, and one a
// loopback TCP socket's kernel buffers would hide.
type pipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{ch: make(chan net.Conn, 8), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

func (l *pipeListener) dial(t *testing.T) net.Conn {
	t.Helper()
	client, server := net.Pipe()
	select {
	case l.ch <- server:
	case <-time.After(2 * time.Second):
		t.Fatal("pipe listener not accepting")
	}
	t.Cleanup(func() { client.Close() })
	return client
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// TestPushFailureMarksResync: a client that stops reading stalls its
// rate push until the write timeout, after which the controller drops
// the connection, counts the failure, and marks the site for resync;
// the site's next snapshot resync clears the mark and replays the
// pending transfer.
func TestPushFailureMarksResync(t *testing.T) {
	ctrl, err := NewServer(context.Background(), nil,
		WithCoreConfig(core.Config{
			Net: topology.Internet2(8), Policy: transfer.SJF, Seed: 1, MaxIterations: 60,
		}),
		WithSlotSeconds(10),
		WithWriteTimeout(100*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	lis := newPipeListener()
	go ctrl.Serve(lis)
	t.Cleanup(ctrl.Close)

	conn := lis.dial(t)
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteMsg(conn, &Message{Type: MsgHello, Seq: 1, Site: 1, Version: ProtoVersion}); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadMsg(conn); err != nil || m.Type != MsgWelcome {
		t.Fatalf("handshake reply %+v (err %v)", m, err)
	}
	if err := WriteMsg(conn, &Message{Type: MsgSubmit, Seq: 2, Token: "push-fail-1",
		Request: &WireRequest{Src: 1, Dst: 5, SizeGbits: 5000}}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMsg(conn)
	if err != nil || m.Type != MsgSubmitAck {
		t.Fatalf("submit reply %+v (err %v)", m, err)
	}
	id := m.ID

	// Stop reading. The tick's rate push blocks on the unbuffered pipe
	// until the write deadline, then fails.
	ctrl.Tick()
	if got := ctrl.Counters().PushFailures; got == 0 {
		t.Fatal("push to a non-reading client never failed")
	}
	if got := ctrl.ResyncPending(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("ResyncPending = %v, want [1]", got)
	}

	// Reconnect and resync: the snapshot replays the still-pending
	// transfer (with progress from the tick) and clears the mark.
	conn2 := lis.dial(t)
	conn2.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteMsg(conn2, &Message{Type: MsgHello, Seq: 1, Site: 1, Version: ProtoVersion}); err != nil {
		t.Fatal(err)
	}
	if m, err := ReadMsg(conn2); err != nil || m.Type != MsgWelcome {
		t.Fatalf("reconnect handshake reply %+v (err %v)", m, err)
	}
	if err := WriteMsg(conn2, &Message{Type: MsgResync, Seq: 2, Site: 1}); err != nil {
		t.Fatal(err)
	}
	m, err = ReadMsg(conn2)
	if err != nil || m.Type != MsgSnapshot || m.Snapshot == nil {
		t.Fatalf("resync reply %+v (err %v)", m, err)
	}
	if len(m.Snapshot.Pending) != 1 {
		t.Fatalf("snapshot pending = %+v, want the one live transfer", m.Snapshot.Pending)
	}
	p := m.Snapshot.Pending[0]
	if p.ID != id || p.Token != "push-fail-1" || p.Src != 1 || p.Dst != 5 {
		t.Errorf("snapshot entry %+v, want id %d token push-fail-1", p, id)
	}
	if p.RemainingGbits >= p.SizeGbits || p.RemainingGbits <= 0 {
		t.Errorf("remaining %.1f of %.1f: want mid-flight progress", p.RemainingGbits, p.SizeGbits)
	}
	if got := ctrl.ResyncPending(); len(got) != 0 {
		t.Errorf("ResyncPending after resync = %v, want empty", got)
	}
	if ctrl.Counters().Resyncs == 0 {
		t.Error("resync not counted")
	}
}

// TestResyncAfterPartitionE2E runs the full client/controller stack
// under faultnet across three seeds: a partitioned client loses its
// connection mid-transfer, the unaffected client keeps receiving rates,
// and after the heal the partitioned client reconnects on its own and
// converges through the automatic snapshot resync — its durable
// transfers replayed with ids, tokens, and progress intact — then
// resumes receiving rate pushes.
func TestResyncAfterPartitionE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("partition e2e waits out reconnect backoff")
	}
	for _, seed := range []int64{1, 2, 3} {
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			st := store.New()
			ctrl, err := NewServer(context.Background(), st,
				WithCoreConfig(core.Config{
					Net: topology.Internet2(8), Policy: transfer.SJF, Seed: seed, MaxIterations: 60,
				}),
				WithSlotSeconds(10),
				WithWriteTimeout(300*time.Millisecond),
			)
			if err != nil {
				t.Fatal(err)
			}
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go ctrl.Serve(lis)
			t.Cleanup(ctrl.Close)
			addr := lis.Addr().String()

			inj := faultnet.New(faultnet.Config{Seed: seed, DelayProb: 0.2, MaxDelay: time.Millisecond})
			var mu sync.Mutex
			ratesA, ratesB := 0, 0
			disconnected := make(chan struct{}, 4)
			clA, err := Dial(context.Background(), addr,
				WithSite(1),
				WithDialer(inj.Dialer()),
				WithHeartbeatInterval(25*time.Millisecond),
				WithBackoff(10*time.Millisecond, 50*time.Millisecond),
				WithJitterSeed(seed),
				WithOnDisconnect(func(error) {
					select {
					case disconnected <- struct{}{}:
					default:
					}
				}),
				WithOnRates(func(rs []WireRate) { mu.Lock(); ratesA += len(rs); mu.Unlock() }),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer clA.Close()
			clB, err := Dial(context.Background(), addr, WithSite(2),
				WithOnRates(func(rs []WireRate) { mu.Lock(); ratesB += len(rs); mu.Unlock() }),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer clB.Close()

			idA1, err := clA.Submit(context.Background(), WireRequest{Src: 1, Dst: 4, SizeGbits: 4000})
			if err != nil {
				t.Fatal(err)
			}
			idA2, err := clA.Submit(context.Background(), WireRequest{Src: 1, Dst: 6, SizeGbits: 3000})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := clB.Submit(context.Background(), WireRequest{Src: 2, Dst: 7, SizeGbits: 2000}); err != nil {
				t.Fatal(err)
			}

			// Sever A and wait until its client notices.
			inj.Partition(true)
			select {
			case <-disconnected:
			case <-time.After(5 * time.Second):
				t.Fatal("partitioned client never noticed the cut")
			}

			// A slot during the partition: the unaffected client still
			// gets its allocation (delivery is async: tick, then poll).
			ctrl.Tick()
			bDeadline := time.Now().Add(5 * time.Second)
			for {
				mu.Lock()
				gotB := ratesB
				mu.Unlock()
				if gotB > 0 {
					break
				}
				if time.Now().After(bDeadline) {
					t.Error("unaffected client received no rates during the partition")
					break
				}
				ctrl.Tick()
				time.Sleep(5 * time.Millisecond)
			}

			// Heal; A reconnects on its own and auto-resyncs (protocol
			// v2), replaying both pending transfers.
			inj.Partition(false)
			var snap *WireSnapshot
			deadline := time.Now().Add(10 * time.Second)
			for {
				snap = clA.LastSnapshot()
				if snap != nil && len(snap.Pending) == 2 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("no post-heal resync snapshot with 2 pending (last %+v)", snap)
				}
				time.Sleep(10 * time.Millisecond)
			}
			want := map[int]bool{idA1: true, idA2: true}
			for _, p := range snap.Pending {
				if !want[p.ID] {
					t.Errorf("snapshot replayed unexpected transfer %+v", p)
				}
				delete(want, p.ID)
				if p.Token == "" {
					t.Errorf("snapshot entry %d lost its idempotency token", p.ID)
				}
				if p.RemainingGbits <= 0 || p.RemainingGbits > p.SizeGbits {
					t.Errorf("snapshot entry %d remaining %.1f of %.1f", p.ID, p.RemainingGbits, p.SizeGbits)
				}
			}
			if len(want) != 0 {
				t.Errorf("snapshot missing transfers %v", want)
			}

			// Rates resume for the resynced client on the next slot.
			mu.Lock()
			baseA := ratesA
			mu.Unlock()
			deadline = time.Now().Add(10 * time.Second)
			for {
				ctrl.Tick()
				mu.Lock()
				gotA := ratesA
				mu.Unlock()
				if gotA > baseA {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("resynced client never received rates after the heal")
				}
				time.Sleep(10 * time.Millisecond)
			}
			if ctrl.Counters().Resyncs == 0 {
				t.Error("no resync counted")
			}
			if pend := ctrl.ResyncPending(); len(pend) != 0 {
				t.Errorf("ResyncPending after convergence = %v, want empty", pend)
			}
		})
	}
}

// TestSnapshotSkipsDoneAndOrdersIds: a site's snapshot excludes
// finished transfers and lists the rest in ascending id order.
func TestSnapshotSkipsDoneAndOrdersIds(t *testing.T) {
	ctrl, err := NewServer(context.Background(), nil,
		WithCoreConfig(core.Config{
			Net: topology.Internet2(8), Policy: transfer.SJF, Seed: 1, MaxIterations: 60,
		}),
		WithSlotSeconds(10),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// One tiny transfer that finishes in a slot, then two big ones.
	if _, err := ctrl.submit(WireRequest{Src: 5, Dst: 6, SizeGbits: 1}, 5, "tiny"); err != nil {
		t.Fatal(err)
	}
	big1, err := ctrl.submit(WireRequest{Src: 5, Dst: 7, SizeGbits: 8000}, 5, "big1")
	if err != nil {
		t.Fatal(err)
	}
	big2, err := ctrl.submit(WireRequest{Src: 5, Dst: 3, SizeGbits: 9000}, 5, "big2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && ctrl.Completed() == 0; i++ {
		ctrl.Tick()
	}
	if ctrl.Completed() == 0 {
		t.Fatal("tiny transfer never completed")
	}

	snap := ctrl.snapshotSite(5)
	if len(snap.Pending) != 2 {
		t.Fatalf("pending = %+v, want the two big transfers", snap.Pending)
	}
	if snap.Pending[0].ID != big1 || snap.Pending[1].ID != big2 {
		t.Errorf("pending order = [%d %d], want [%d %d]",
			snap.Pending[0].ID, snap.Pending[1].ID, big1, big2)
	}
	if snap.Truncated {
		t.Error("snapshot claims truncation")
	}
	if snap.Slot != ctrl.Slot() {
		t.Errorf("snapshot slot = %d, want %d", snap.Slot, ctrl.Slot())
	}
}
